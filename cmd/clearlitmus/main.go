// Command clearlitmus runs the litmus corpus and the axiomatic memory-model
// conformance checker over the simulator's trace stream.
//
// Usage:
//
//	clearlitmus list                                   # corpus with docs
//	clearlitmus run                                    # full conformance sweep
//	clearlitmus run -tests sb+ar,mp+ar -configs BC -seeds 8
//	clearlitmus run -faults storm                      # sweep under a preset
//	clearlitmus run -trace-out dir/                    # keep the raw traces
//	clearlitmus run -inject lost-inv -expect-catch     # planted-bug check
//	clearlitmus run -update-golden                     # rewrite testdata goldens
//	clearlitmus check run.trace [more.trace ...]       # check recorded traces
//
// Exit codes follow the repo-wide cliutil policy: 0 conformant, 1 a
// violation or forbidden outcome was found (or, under -expect-catch, the
// planted bug was NOT found), 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/trace"
)

func main() {
	cliutil.SetTool("clearlitmus")
	if len(os.Args) < 2 {
		usage()
		cliutil.Exit(cliutil.ExitUsage)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList(args)
	case "run":
		err = cmdRun(args)
	case "check":
		err = cmdCheck(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "clearlitmus: unknown command %q\n\n", cmd)
		usage()
		cliutil.Exit(cliutil.ExitUsage)
	}
	if err != nil {
		cliutil.Fatal(err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `clearlitmus runs litmus tests and checks memory-model conformance.

commands:
  list    print the corpus: test names, shapes, forbidden outcomes
  run     sweep tests x configs x seeds; diff outcome sets and check axioms
  check   run the axiomatic checker over recorded trace files

run 'clearlitmus <command> -h' for the command's flags.
`)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also print the SC-allowed outcome sets")
	fs.Parse(args)
	for _, t := range litmus.Corpus() {
		fmt.Printf("%-10s %s\n", t.Name, t.Doc)
		fmt.Printf("%-10s forbidden: %s\n", "", strings.Join(t.Forbidden, " | "))
		if *verbose {
			fmt.Printf("%-10s allowed:   %s\n", "", strings.Join(t.Allowed(), " | "))
		}
	}
	return nil
}

// resolveTests expands the -tests flag ("" or "all" = full corpus).
func resolveTests(spec string) ([]*litmus.Test, error) {
	if spec == "" || spec == "all" {
		return litmus.Corpus(), nil
	}
	var out []*litmus.Test
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		t := litmus.Lookup(name)
		if t == nil {
			return nil, fmt.Errorf("unknown litmus test %q (see 'clearlitmus list')", name)
		}
		out = append(out, t)
	}
	return out, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	tests := fs.String("tests", "all", "comma-separated test names, or 'all'")
	configs := fs.String("configs", "BPCW", "configuration letters to sweep")
	seeds := fs.Int("seeds", litmus.DefaultSeedCount, "seeds per (test, config) cell (1..N)")
	faults := fs.String("faults", "off", "fault preset applied to every run ("+strings.Join(fault.Presets(), ", ")+", off)")
	traceOut := fs.String("trace-out", "", "directory receiving one binary trace per run (inspect with cleartrace)")
	inject := fs.String("inject", "", "plant a bug: 'lost-inv' drops invalidation aborts")
	expectCatch := fs.Bool("expect-catch", false, "with -inject: exit 0 only if the checker catches the planted bug")
	updateGolden := fs.Bool("update-golden", false, "rewrite internal/litmus/testdata outcome-set goldens from this sweep")
	quiet := fs.Bool("q", false, "only print failures and the final summary")
	policyFlag := cliutil.AddPolicyFlags(fs)
	fs.Parse(args)

	ts, err := resolveTests(*tests)
	if err != nil {
		cliutil.Usage(err)
	}
	cfgs, err := harness.ParseConfigs(*configs)
	if err != nil {
		cliutil.Usage(err)
	}
	if *seeds < 1 {
		cliutil.Usagef("-seeds %d: need at least one seed", *seeds)
	}
	switch *inject {
	case "", "lost-inv":
	default:
		cliutil.Usagef("-inject %q: only 'lost-inv' is known", *inject)
	}
	if *expectCatch && *inject == "" {
		cliutil.Usagef("-expect-catch needs -inject")
	}
	pol, err := policyFlag.Spec()
	if err != nil {
		cliutil.Usage(err)
	}
	if *updateGolden && (*inject != "" || (*faults != "off" && *faults != "") ||
		*tests != "all" || *configs != "BPCW" || *seeds != litmus.DefaultSeedCount || !pol.IsDefault()) {
		cliutil.Usagef("-update-golden pins the default sweep: full corpus, -configs BPCW, -seeds %d, clean, default policy", litmus.DefaultSeedCount)
	}

	opts := litmus.SweepOpts{
		Tests:                  ts,
		Configs:                cfgs,
		Seeds:                  litmus.DefaultSeeds(*seeds),
		Fault:                  *faults,
		InjectLostInvalidation: *inject == "lost-inv",
		Policy:                 pol,
	}
	if *traceOut != "" {
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			return err
		}
		dir := *traceOut
		opts.TraceSink = func(test string, cfg harness.ConfigID, seed uint64) io.WriteCloser {
			f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s_%s_%d.trace", test, cfg, seed)))
			if err != nil {
				cliutil.Fatal(err)
			}
			return f
		}
	}

	cells := litmus.Sweep(opts)
	failures := 0
	for _, cell := range cells {
		failures += len(cell.Failures)
		if !*quiet || cell.Failed() {
			status := "ok"
			if cell.Failed() {
				status = fmt.Sprintf("FAIL (%d runs)", len(cell.Failures))
			}
			fmt.Printf("%-10s %s  %-16s %s\n", cell.Test.Name, cell.Config, status,
				strings.Join(cell.ObservedOutcomes(), " | "))
		}
		for _, f := range cell.Failures {
			fmt.Println("  " + strings.ReplaceAll(f.String(), "\n", "\n  "))
		}
	}
	runs := len(ts) * len(cfgs) * *seeds

	if *expectCatch {
		if failures == 0 {
			fmt.Printf("planted bug NOT caught over %d runs\n", runs)
			cliutil.Exit(cliutil.ExitFailure)
		}
		fmt.Printf("planted bug caught: %d of %d runs flagged\n", failures, runs)
		return nil
	}
	if *updateGolden {
		if failures > 0 {
			cliutil.Fatalf("refusing to write goldens from a failing sweep (%d failures)", failures)
		}
		if err := writeGoldens(cfgs, cells); err != nil {
			return err
		}
	}
	if failures > 0 {
		fmt.Printf("%d of %d runs failed\n", failures, runs)
		cliutil.Exit(cliutil.ExitFailure)
	}
	if !*quiet {
		fmt.Printf("all %d runs conformant\n", runs)
	}
	return nil
}

// goldenDir locates internal/litmus/testdata relative to the module root so
// -update-golden works from any working directory inside the repo.
func goldenDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "internal", "litmus", "testdata"), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("-update-golden: no go.mod above %s (run inside the repo)", dir)
		}
		dir = parent
	}
}

func writeGoldens(cfgs []harness.ConfigID, cells []litmus.CellResult) error {
	dir, err := goldenDir()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cfg := range cfgs {
		path := litmus.GoldenPath(dir, cfg)
		if err := os.WriteFile(path, []byte(litmus.GoldenContent(cfg, cells)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	path := litmus.AllowedGoldenPath(dir)
	if err := os.WriteFile(path, []byte(litmus.AllowedGoldenContent()), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	quiet := fs.Bool("q", false, "only print failing traces")
	fs.Parse(args)
	if fs.NArg() == 0 {
		cliutil.Usagef("check needs at least one trace file")
	}
	bad := 0
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rd, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		if !rd.Meta().MemAccesses {
			f.Close()
			return fmt.Errorf("%s: trace has no memory-access events (record with -trace-mem / MemAccesses)", path)
		}
		events, err := rd.ReadAll()
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		var copts litmus.CheckOpts
		if name := strings.TrimPrefix(rd.Meta().Benchmark, "litmus:"); name != rd.Meta().Benchmark {
			if t := litmus.Lookup(name); t != nil {
				copts.AddrName = t.AddrName
			}
		}
		v := litmus.CheckEvents(events, copts)
		if !v.OK() {
			bad++
		}
		if !*quiet || !v.OK() {
			fmt.Printf("%s: %s\n", path, v)
		}
	}
	if bad > 0 {
		cliutil.Exit(cliutil.ExitFailure)
	}
	return nil
}
