package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/htm"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// loadProfile decodes the trace file at path and builds its profile.
func loadProfile(path string) (*trace.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return nil, err
	}
	evs, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	return trace.BuildProfile(rd.Meta(), evs), nil
}

// isTraceFile sniffs the CLRT magic.
func isTraceFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [4]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(hdr[:]) == trace.Magic
}

// jsonProfile is the machine-readable rendering of a profile (the bench
// trajectory script consumes .retry_latency).
type jsonProfile struct {
	Benchmark    string              `json:"benchmark"`
	Config       string              `json:"config"`
	Cores        int                 `json:"cores"`
	Seed         uint64              `json:"seed"`
	LastTick     uint64              `json:"last_tick"`
	Invocations  int                 `json:"invocations"`
	Attempts     int                 `json:"attempts"`
	Commits      int                 `json:"commits"`
	Aborts       int                 `json:"aborts"`
	CommitsBy    map[string]int      `json:"commits_by_mode"`
	AbortsBy     map[string]int      `json:"aborts_by_reason"`
	TicksLostBy  map[string]uint64   `json:"ticks_lost_by_reason"`
	AbortedTicks uint64              `json:"aborted_ticks"`
	LockWait     uint64              `json:"lock_wait_ticks"`
	Attributed   int                 `json:"attributed"`
	Unattributed int                 `json:"unattributed"`
	Edges        []jsonEdge          `json:"edges"`
	Lines        []jsonLine          `json:"lines"`
	ARs          []trace.ARProfile   `json:"ars"`
	RetryLatency metrics.HistSummary `json:"retry_latency"`
}

type jsonEdge struct {
	Aborter   int    `json:"aborter"`
	Victim    int    `json:"victim"`
	Reason    string `json:"reason"`
	Mode      string `json:"mode"`
	Via       string `json:"via"`
	Count     int    `json:"count"`
	TicksLost uint64 `json:"ticks_lost"`
}

type jsonLine struct {
	Line      string `json:"line"`
	Acquires  int    `json:"acquires"`
	Retries   int    `json:"retries"`
	Nacks     int    `json:"nacks"`
	Conflicts int    `json:"conflicts"`
	WaitTicks uint64 `json:"wait_ticks"`
	MaxWait   uint64 `json:"max_wait"`
	Waiters   int    `json:"waiters"`
}

func toJSONProfile(p *trace.Profile) jsonProfile {
	jp := jsonProfile{
		Benchmark:    p.Meta.Benchmark,
		Config:       p.Meta.Config,
		Cores:        p.Meta.Cores,
		Seed:         p.Meta.Seed,
		LastTick:     uint64(p.LastTick),
		Invocations:  p.Invocations,
		Attempts:     p.Attempts,
		Commits:      p.Commits,
		Aborts:       p.Aborts,
		CommitsBy:    map[string]int{},
		AbortsBy:     map[string]int{},
		TicksLostBy:  map[string]uint64{},
		AbortedTicks: uint64(p.AbortedTicks),
		LockWait:     uint64(p.LockWaitTicks),
		Attributed:   p.Attributed,
		Unattributed: p.Unattributed,
		ARs:          p.ARs,
		RetryLatency: p.RetryLatency,
	}
	for m, n := range p.CommitsByMode {
		jp.CommitsBy[m.String()] = n
	}
	for r, n := range p.AbortsByReason {
		jp.AbortsBy[r.String()] = n
	}
	for r, t := range p.TicksLostByReason {
		jp.TicksLostBy[r.String()] = uint64(t)
	}
	for _, e := range p.Edges {
		jp.Edges = append(jp.Edges, jsonEdge{
			Aborter: e.Aborter, Victim: e.Victim,
			Reason: e.Reason.String(), Mode: e.Mode.String(), Via: e.Via,
			Count: e.Count, TicksLost: uint64(e.TicksLost),
		})
	}
	for _, l := range p.Lines {
		jp.Lines = append(jp.Lines, jsonLine{
			Line: l.Line.String(), Acquires: l.Acquires, Retries: l.Retries,
			Nacks: l.Nacks, Conflicts: l.Conflicts,
			WaitTicks: uint64(l.WaitTicks), MaxWait: uint64(l.MaxWait), Waiters: l.Waiters,
		})
	}
	return jp
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("clearprof profile", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the machine-readable report")
	topN := fs.Int("n", 20, "rows per ranked table (text output)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("profile: want exactly one trace file argument")
	}
	p, err := loadProfile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(toJSONProfile(p))
	}
	printHeadline(p)
	printEdges(p, *topN)
	printLines(p, *topN)
	printARs(p, *topN)
	return nil
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("clearprof top", flag.ExitOnError)
	topN := fs.Int("n", 10, "rows per ranked table")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("top: want exactly one trace file argument")
	}
	p, err := loadProfile(fs.Arg(0))
	if err != nil {
		return err
	}
	printEdges(p, *topN)
	printLines(p, *topN)
	printARs(p, *topN)
	return nil
}

func printHeadline(p *trace.Profile) {
	fmt.Printf("trace: %s/%s cores=%d seed=%d, %d ticks\n",
		p.Meta.Benchmark, p.Meta.Config, p.Meta.Cores, p.Meta.Seed, uint64(p.LastTick))
	fmt.Printf("invocations %d, attempts %d, commits %d, aborts %d (%d attributed, %d unattributed)\n",
		p.Invocations, p.Attempts, p.Commits, p.Aborts, p.Attributed, p.Unattributed)
	if len(p.CommitsByMode) > 0 {
		fmt.Printf("commits by mode:")
		for m := stats.CommitMode(0); m < stats.NumCommitModes; m++ {
			if n := p.CommitsByMode[m]; n > 0 {
				fmt.Printf(" %s=%d", m, n)
			}
		}
		fmt.Println()
	}
	if len(p.AbortsByReason) > 0 {
		fmt.Printf("aborts by reason:")
		for _, r := range sortedReasons(p.AbortsByReason) {
			fmt.Printf(" %s=%d(%d ticks)", r, p.AbortsByReason[r], uint64(p.TicksLostByReason[r]))
		}
		fmt.Println()
	}
	coreTicks := uint64(p.LastTick) * uint64(p.Meta.Cores)
	pct := 0.0
	if coreTicks > 0 {
		pct = 100 * float64(p.AbortedTicks) / float64(coreTicks)
	}
	fmt.Printf("ticks lost to aborted attempts: %d (%.2f%% of core-ticks), lock-wait ticks: %d\n",
		uint64(p.AbortedTicks), pct, uint64(p.LockWaitTicks))
	rl := p.RetryLatency
	if rl.Count > 0 {
		fmt.Printf("retry-to-commit latency (ticks): count=%d p50<=%d p90<=%d p99<=%d max=%d\n",
			rl.Count, rl.P50, rl.P90, rl.P99, rl.Max)
	}
}

func sortedReasons(m map[htm.AbortReason]int) []htm.AbortReason {
	out := make([]htm.AbortReason, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func printEdges(p *trace.Profile, n int) {
	if len(p.Edges) == 0 {
		return
	}
	fmt.Printf("\nabort attribution (aborter -> victim, top %d by ticks lost):\n", n)
	fmt.Printf("  %-8s %-7s %-18s %-16s %-11s %8s %12s\n",
		"aborter", "victim", "reason", "mode", "via", "count", "ticks-lost")
	for i, e := range p.Edges {
		if i >= n {
			fmt.Printf("  ... %d more edges\n", len(p.Edges)-n)
			break
		}
		ab := "?"
		if e.Aborter >= 0 {
			ab = fmt.Sprintf("core %d", e.Aborter)
		}
		fmt.Printf("  %-8s core %-2d %-18s %-16s %-11s %8d %12d\n",
			ab, e.Victim, e.Reason, e.Mode, e.Via, e.Count, uint64(e.TicksLost))
	}
}

func printLines(p *trace.Profile, n int) {
	if len(p.Lines) == 0 {
		return
	}
	fmt.Printf("\nhot cachelines (top %d by wait ticks):\n", n)
	fmt.Printf("  %-14s %8s %8s %6s %9s %11s %9s %7s\n",
		"line", "acquires", "retries", "nacks", "conflicts", "wait-ticks", "max-wait", "waiters")
	for i, l := range p.Lines {
		if i >= n {
			fmt.Printf("  ... %d more lines\n", len(p.Lines)-n)
			break
		}
		fmt.Printf("  %-14s %8d %8d %6d %9d %11d %9d %7d\n",
			l.Line, l.Acquires, l.Retries, l.Nacks, l.Conflicts,
			uint64(l.WaitTicks), uint64(l.MaxWait), l.Waiters)
	}
}

func printARs(p *trace.Profile, n int) {
	if len(p.ARs) == 0 {
		return
	}
	type ranked struct{ trace.ARProfile }
	rs := make([]ranked, 0, len(p.ARs))
	for _, a := range p.ARs {
		rs = append(rs, ranked{a})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].AbortedTicks != rs[j].AbortedTicks {
			return rs[i].AbortedTicks > rs[j].AbortedTicks
		}
		return rs[i].ProgID < rs[j].ProgID
	})
	fmt.Printf("\natomic regions (top %d by aborted ticks):\n", n)
	fmt.Printf("  %-4s %-20s %6s %6s %7s %7s %12s %12s %11s\n",
		"id", "name", "inv", "att", "commit", "abort", "commit-tick", "abort-tick", "wait-tick")
	for i, a := range rs {
		if i >= n {
			fmt.Printf("  ... %d more ARs\n", len(rs)-n)
			break
		}
		fmt.Printf("  %-4d %-20s %6d %6d %7d %7d %12d %12d %11d\n",
			a.ProgID, a.Name, a.Invocations, a.Attempts, a.Commits, a.Aborts,
			uint64(a.CommittedTicks), uint64(a.AbortedTicks), uint64(a.LockWaitTicks))
	}
}
