// Command clearprof is the offline contention-attribution profiler: it
// turns recorded binary traces (internal/trace) and runstore-cached run
// summaries into ranked contention reports and regression diffs.
//
// Usage:
//
//	clearprof profile run.trace             # full attribution report
//	clearprof profile -json run.trace       # machine-readable report
//	clearprof top -n 10 run.trace           # hottest locks/ARs/edges only
//	clearprof diff a.trace b.trace          # compare two recorded traces
//	clearprof diff -cache-dir d 97052b 3fa9 # compare two cached runs (key prefixes)
//
// diff exits 0 and prints nothing when the runs agree on every compared
// metric, and exits 1 with one line per differing metric otherwise —
// making regression detection across sweeps a one-command operation.
// Trace files and runstore record files are distinguished by content
// (the CLRT magic), so the two argument forms can be mixed; mixed-kind
// diffs compare the metric intersection.
package main

import (
	"fmt"
	"os"

	"repro/internal/cliutil"
)

func main() {
	cliutil.SetTool("clearprof")
	if len(os.Args) < 2 {
		usage()
		cliutil.Exit(cliutil.ExitUsage)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "profile":
		err = cmdProfile(args)
	case "top":
		err = cmdTop(args)
	case "diff":
		err = cmdDiff(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "clearprof: unknown command %q\n\n", cmd)
		usage()
		cliutil.Exit(cliutil.ExitUsage)
	}
	if err != nil {
		cliutil.Fatal(err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `clearprof profiles contention in recorded traces and diffs runs.

commands:
  profile   full report: abort attribution, hot lines, per-AR costs,
            ticks-lost-to-retry accounting (-json for machine output)
  top       only the top-N hottest edges, lines, and ARs
  diff      compare two runs (trace files or runstore records); silent
            and exit 0 when identical, one line per difference and exit 1

inputs: a binary trace file (cleartrace record), a runstore record file
(<cache-dir>/<aa>/<key>.json), or with -cache-dir an abbreviated key prefix.

run 'clearprof <command> -h' for the command's flags.
`)
}
