package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/runstore"
	"repro/internal/stats"
	"repro/internal/trace"
)

// metric is one named scalar of a run summary. Values are float64 so traces
// (tick counts) and cached records (energy) share one comparison path;
// every integer a run can produce round-trips exactly through float64.
type metric struct {
	name string
	val  float64
}

// summary is the comparable view of one diff input, with the metric order
// preserved for stable output.
type summary struct {
	label   string
	kind    string // "trace" or "record"
	metrics []metric
}

func (s *summary) add(name string, val float64) {
	s.metrics = append(s.metrics, metric{name: name, val: val})
}

func (s *summary) index() map[string]float64 {
	m := make(map[string]float64, len(s.metrics))
	for _, mt := range s.metrics {
		m[mt.name] = mt.val
	}
	return m
}

// summarizeProfile flattens a trace profile into named metrics. Per-reason
// abort counts are additionally grouped into the coarse buckets a cached
// stats record carries, so trace↔record diffs still compare abort structure.
func summarizeProfile(label string, p *trace.Profile) *summary {
	s := &summary{label: label, kind: "trace"}
	s.add("invocations", float64(p.Invocations))
	s.add("attempts", float64(p.Attempts))
	s.add("commits", float64(p.Commits))
	s.add("aborts", float64(p.Aborts))
	for m := stats.CommitMode(0); m < stats.NumCommitModes; m++ {
		s.add("commits/"+m.String(), float64(p.CommitsByMode[m]))
	}
	var byBucket [htm.NumBuckets]int
	for r, n := range p.AbortsByReason {
		byBucket[htm.BucketOf(r)] += n
	}
	for b := htm.Bucket(0); b < htm.NumBuckets; b++ {
		s.add("aborts/"+b.String(), float64(byBucket[b]))
	}
	for r := htm.AbortReason(0); r <= htm.AbortSpurious; r++ {
		if n, ok := p.AbortsByReason[r]; ok {
			s.add("aborts-by-reason/"+r.String(), float64(n))
		}
	}
	s.add("last-tick", float64(p.LastTick))
	s.add("aborted-ticks", float64(p.AbortedTicks))
	s.add("lock-wait-ticks", float64(p.LockWaitTicks))
	s.add("retry-latency/count", float64(p.RetryLatency.Count))
	s.add("retry-latency/sum", float64(p.RetryLatency.Sum))
	s.add("retry-latency/p50", float64(p.RetryLatency.P50))
	s.add("retry-latency/p99", float64(p.RetryLatency.P99))
	s.add("retry-latency/max", float64(p.RetryLatency.Max))
	return s
}

// summarizeRecord flattens a runstore cache record into named metrics,
// sharing names with summarizeProfile where the quantities coincide.
func summarizeRecord(label string, rec *harness.CacheRecord) *summary {
	s := &summary{label: label, kind: "record"}
	run := rec.Stats
	s.add("commits", float64(run.Commits))
	s.add("aborts", float64(run.Aborts))
	for m := stats.CommitMode(0); m < stats.NumCommitModes; m++ {
		s.add("commits/"+m.String(), float64(run.CommitsByMode[m]))
	}
	for b := htm.Bucket(0); b < htm.NumBuckets; b++ {
		s.add("aborts/"+b.String(), float64(run.AbortsByBucket[b]))
	}
	s.add("cycles", float64(run.Cycles))
	s.add("instructions", float64(run.Instructions))
	s.add("aborted-instructions", float64(run.AbortedInstructions))
	s.add("discovery-cycles", float64(run.DiscoveryCycles))
	s.add("lines-locked", float64(run.LinesLocked))
	s.add("lock-retries", float64(run.LockRetries))
	s.add("fallback-acquisitions", float64(run.FallbackAcquisitions))
	s.add("energy", rec.Energy)
	return s
}

// loadInput resolves one diff argument: an existing file is sniffed by
// content (CLRT magic → trace, otherwise a runstore record file); a
// non-file argument is treated as an abbreviated cache key when -cache-dir
// was given.
func loadInput(arg string, st *runstore.Store) (*summary, error) {
	if _, err := os.Stat(arg); err == nil {
		if isTraceFile(arg) {
			p, err := loadProfile(arg)
			if err != nil {
				return nil, err
			}
			return summarizeProfile(arg, p), nil
		}
		payload, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		rec, err := harness.DecodeCacheRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("%s: not a trace and %w", arg, err)
		}
		return summarizeRecord(arg, rec), nil
	}
	if st == nil {
		return nil, fmt.Errorf("%s: no such file (pass -cache-dir to resolve cache keys)", arg)
	}
	key, err := st.Resolve(arg)
	if err != nil {
		return nil, err
	}
	payload, ok, err := st.Get(key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("runstore: record %s vanished", key)
	}
	rec, err := harness.DecodeCacheRecord(payload)
	if err != nil {
		return nil, err
	}
	return summarizeRecord(key[:12], rec), nil
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("clearprof diff", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", "", "runstore directory for resolving abbreviated cache keys")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two inputs (trace files, record files, or cache keys)")
	}
	var st *runstore.Store
	if *cacheDir != "" {
		var err error
		if st, err = runstore.Open(*cacheDir); err != nil {
			return err
		}
	}
	a, err := loadInput(fs.Arg(0), st)
	if err != nil {
		return err
	}
	b, err := loadInput(fs.Arg(1), st)
	if err != nil {
		return err
	}

	// Compare the metric intersection in a's order. Silence means equal:
	// scripts assert on the exit status alone.
	bvals := b.index()
	var differ int
	for _, m := range a.metrics {
		bv, ok := bvals[m.name]
		if !ok {
			continue
		}
		if m.val != bv {
			if differ == 0 {
				fmt.Printf("%-28s %20s %20s\n", "metric", a.label, b.label)
			}
			fmt.Printf("%-28s %20s %20s\n", m.name, fmtVal(m.val), fmtVal(bv))
			differ++
		}
	}
	if differ > 0 {
		return fmt.Errorf("%d metric(s) differ", differ)
	}
	return nil
}
