// Command digestcheck prints the stats digest and energy figure for a
// representative benchmark × config slice of the run matrix. It is the
// gate for host-performance work: capture the output before an optimisation,
// diff it after — any difference means the change altered simulated
// behaviour, not just host constant factors (see DESIGN.md "Host
// performance"). Exits non-zero if any run fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/harness"
)

func main() {
	cliutil.SetTool("digestcheck")
	policyFlag := cliutil.AddPolicyFlags(flag.CommandLine)
	flag.Parse()
	pol, err := policyFlag.Spec()
	if err != nil {
		cliutil.Usage(err)
	}
	benchmarks := []string{
		"intruder", "hashmap", "sorted-list", "vacation-h", "bayes", "labyrinth",
	}
	failed := false
	for _, wl := range benchmarks {
		for _, cfg := range []harness.ConfigID{harness.ConfigC, harness.ConfigW} {
			p := harness.DefaultRunParams(wl, cfg)
			p.Policy = pol
			res, err := harness.Run(p)
			if err != nil {
				fmt.Printf("%s/%v ERR %v\n", wl, cfg, err)
				failed = true
				continue
			}
			fmt.Printf("%s/%v %s energy=%.9f\n", wl, cfg, res.Stats.Digest(), res.Energy)
		}
	}
	if failed {
		os.Exit(1)
	}
}
