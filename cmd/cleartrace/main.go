// Command cleartrace records and inspects structured simulation traces
// (the internal/trace binary event stream).
//
// Usage:
//
//	cleartrace record -bench hashmap -config C -o run.trace   # run + record
//	cleartrace summary run.trace                              # headline counts
//	cleartrace dump [-core N] [-ar name] [-kind k] [-from T] [-to T] run.trace
//	cleartrace timeline run.trace                             # attempt spans
//	cleartrace export -format perfetto -o run.json run.trace  # Perfetto JSON
//	cleartrace export -format csv -o spans.csv run.trace      # span CSV
//	cleartrace metrics -interval 10000 run.trace              # interval CSV
//	cleartrace verify run.trace                               # schema checks
//
// Flags come before the trace-file argument (standard flag parsing).
//
// Filters compose: -core restricts to one core, -ar to one atomic region
// (by name or id, with per-core attribution of lock/mem events), -reason to
// one abort reason, -from/-to to a tick window, -kind to one event kind.
package main

import (
	"fmt"
	"os"

	"repro/internal/cliutil"
)

func main() {
	cliutil.SetTool("cleartrace")
	if len(os.Args) < 2 {
		usage()
		cliutil.Exit(cliutil.ExitUsage)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "record":
		err = cmdRecord(args)
	case "summary":
		err = cmdSummary(args)
	case "dump":
		err = cmdDump(args)
	case "timeline":
		err = cmdTimeline(args)
	case "export":
		err = cmdExport(args)
	case "metrics":
		err = cmdMetrics(args)
	case "verify":
		err = cmdVerify(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cleartrace: unknown command %q\n\n", cmd)
		usage()
		cliutil.Exit(cliutil.ExitUsage)
	}
	if err != nil {
		cliutil.Fatal(err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `cleartrace records and inspects simulation traces.

commands:
  record    run a simulation and write its binary trace
  summary   print headline event/commit/abort counts of a trace
  dump      print events as text (filterable)
  timeline  print reconstructed per-core attempt spans
  export    write Perfetto trace-event JSON or CSV
  metrics   print interval activity samples as CSV
  verify    validate a trace end to end (schema, timeline, exports)

run 'cleartrace <command> -h' for the command's flags.
`)
}
