package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// cmdRecord runs one simulation with the tracer attached and writes the
// binary stream.
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("cleartrace record", flag.ExitOnError)
	run := cliutil.AddRunFlags(fs, cliutil.RunDefaults{
		Bench: "hashmap", Config: "C", Cores: 8, Ops: 40, Retries: 4, Seed: 1,
	})
	var (
		out      = fs.String("o", "run.trace", "output trace file")
		withMem  = fs.Bool("mem", false, "record per-memory-operation events (verbose)")
		withDir  = fs.Bool("dir", false, "record directory transaction events (verbose)")
		withOrcl = fs.Bool("oracle", false, "also attach the invariant oracle")
	)
	fs.Parse(args)
	p, err := run.Params()
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	p.TraceWriter = f
	p.TraceMem = *withMem
	p.TraceDir = *withDir
	p.Oracle = *withOrcl
	res, err := harness.Run(p)
	if err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, _ := os.Stat(*out)
	fmt.Fprintf(os.Stderr, "cleartrace: recorded %s (%d bytes): %s/%s cores=%d ops=%d seed=%d: %d cycles, %d commits, %d aborts\n",
		*out, st.Size(), p.Benchmark, p.Config, p.Cores, p.OpsPerThread, p.Seed,
		res.Stats.Cycles, res.Stats.Commits, res.Stats.Aborts)
	return nil
}

// loadTrace opens and fully decodes the trace file named by the last
// positional argument of fs.
func loadTrace(fs *flag.FlagSet) (trace.Meta, []trace.Event, error) {
	if fs.NArg() != 1 {
		return trace.Meta{}, nil, fmt.Errorf("want exactly one trace file argument")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return trace.Meta{}, nil, err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return trace.Meta{}, nil, err
	}
	evs, err := rd.ReadAll()
	if err != nil {
		return trace.Meta{}, nil, err
	}
	return rd.Meta(), evs, nil
}

// filterFlags registers the shared filter flags on fs and returns a
// closure resolving them to a trace.Filter once parsed.
func filterFlags(fs *flag.FlagSet) func(meta trace.Meta) (trace.Filter, error) {
	var (
		core   = fs.Int("core", -1, "restrict to one core")
		ar     = fs.String("ar", "", "restrict to one atomic region (name or id)")
		reason = fs.String("reason", "", "restrict aborts to one reason (e.g. memory-conflict)")
		from   = fs.Uint64("from", 0, "restrict to ticks >= from")
		to     = fs.Uint64("to", 0, "restrict to ticks < to (0 = unbounded)")
		kind   = fs.String("kind", "", "restrict to one event kind (e.g. lock, abort, commit)")
	)
	return func(meta trace.Meta) (trace.Filter, error) {
		f := trace.NewFilter()
		f.Core = *core
		f.From = sim.Tick(*from)
		f.To = sim.Tick(*to)
		if *ar != "" {
			id := -1
			if n, err := strconv.Atoi(*ar); err == nil {
				id = n
			} else {
				for pid, name := range meta.ARNames {
					if name == *ar {
						id = pid
						break
					}
				}
			}
			if id < 0 {
				return f, fmt.Errorf("unknown atomic region %q (known: %s)", *ar, knownARs(meta))
			}
			f.ProgID = id
		}
		if *reason != "" {
			r, ok := reasonFromString(*reason)
			if !ok {
				return f, fmt.Errorf("unknown abort reason %q", *reason)
			}
			f.Reason = r
			// Reason filtering implies abort events only, unless -kind
			// overrides it.
			if *kind == "" {
				f.Kinds = map[trace.Kind]bool{trace.KindAttemptEnd: true}
			}
		}
		if *kind != "" {
			k, ok := trace.KindFromString(*kind)
			if !ok {
				return f, fmt.Errorf("unknown event kind %q", *kind)
			}
			f.Kinds = map[trace.Kind]bool{k: true}
		}
		return f, nil
	}
}

func knownARs(meta trace.Meta) string {
	ids := make([]int, 0, len(meta.ARNames))
	for id := range meta.ARNames {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	names := make([]string, 0, len(ids))
	for _, id := range ids {
		names = append(names, meta.ARNames[id])
	}
	return strings.Join(names, ", ")
}

func reasonFromString(s string) (htm.AbortReason, bool) {
	for r := htm.AbortReason(1); r <= htm.AbortDeviation; r++ {
		if r.String() == s {
			return r, true
		}
	}
	return htm.AbortNone, false
}

// cmdSummary prints headline counts.
func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("cleartrace summary", flag.ExitOnError)
	fs.Parse(args)
	meta, evs, err := loadTrace(fs)
	if err != nil {
		return err
	}
	tl := trace.BuildTimeline(meta, evs)
	fmt.Printf("trace            %s\n", fs.Arg(0))
	fmt.Printf("benchmark        %s   config %s   cores %d   seed %d\n",
		meta.Benchmark, meta.Config, meta.Cores, meta.Seed)
	fmt.Printf("events           %d   last tick %d\n", len(evs), uint64(tl.LastTick))
	kinds := make(map[trace.Kind]int)
	for _, e := range evs {
		kinds[e.Kind]++
	}
	fmt.Println("events by kind:")
	for k := trace.KindInvocationStart; k <= trace.KindEvict; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-14s %8d\n", k, kinds[k])
		}
	}
	fmt.Println("commits by mode:")
	cm := tl.CommitsByMode()
	modes := make([]int, 0, len(cm))
	for m := range cm {
		modes = append(modes, int(m))
	}
	sort.Ints(modes)
	for _, m := range modes {
		fmt.Printf("  %-14s %8d\n", stats.CommitMode(m), cm[stats.CommitMode(m)])
	}
	fmt.Println("aborts by reason:")
	ab := tl.AbortsByReason()
	rs := make([]int, 0, len(ab))
	for r := range ab {
		rs = append(rs, int(r))
	}
	sort.Ints(rs)
	for _, r := range rs {
		fmt.Printf("  %-18s %8d\n", htm.AbortReason(r), ab[htm.AbortReason(r)])
	}
	fmt.Println("per atomic region:")
	for _, a := range tl.PerAR() {
		fmt.Printf("  %-28s attempts %6d  commits %6d  aborts %6d  ticks %10d  lock-wait %8d\n",
			a.Name, a.Attempts, a.Commits, a.Aborts, uint64(a.TotalTicks), uint64(a.LockWaitTicks))
	}
	return nil
}

// cmdDump prints filtered events as text.
func cmdDump(args []string) error {
	fs := flag.NewFlagSet("cleartrace dump", flag.ExitOnError)
	mkFilter := filterFlags(fs)
	fs.Parse(args)
	meta, evs, err := loadTrace(fs)
	if err != nil {
		return err
	}
	f, err := mkFilter(meta)
	if err != nil {
		return err
	}
	evs = trace.FilterEvents(evs, meta.Cores, f)
	return trace.WriteText(os.Stdout, meta, evs)
}

// cmdTimeline prints reconstructed attempt spans.
func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("cleartrace timeline", flag.ExitOnError)
	core := fs.Int("core", -1, "restrict to one core")
	fs.Parse(args)
	meta, evs, err := loadTrace(fs)
	if err != nil {
		return err
	}
	tl := trace.BuildTimeline(meta, evs)
	for _, s := range tl.Spans {
		if *core >= 0 && s.Core != *core {
			continue
		}
		line := fmt.Sprintf("[%8d..%8d] core %2d %-24s attempt %d %-10s -> %s",
			uint64(s.Start), uint64(s.End), s.Core, meta.ARName(s.ProgID),
			s.Attempt, s.StartMode, s.Outcome)
		if s.Outcome == trace.OutcomeAbort {
			line += fmt.Sprintf(" (%s, next %s)", s.Reason, s.NextMode)
		}
		fmt.Println(line)
		for _, w := range s.Waits {
			state := "gave up"
			if w.Acquired {
				state = "acquired"
			}
			holder := "?"
			if w.Holder >= 0 {
				holder = fmt.Sprint(w.Holder)
			}
			fmt.Printf("    wait [%8d..%8d] line %s held by core %s (%s)\n",
				uint64(w.Start), uint64(w.End), w.Line, holder, state)
		}
	}
	return nil
}

// cmdExport writes Perfetto JSON or CSV.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("cleartrace export", flag.ExitOnError)
	var (
		format   = fs.String("format", "perfetto", "perfetto | csv | events-csv")
		out      = fs.String("o", "", "output file (default stdout)")
		interval = fs.Uint64("interval", 0, "also embed counter samples of this tick width (perfetto)")
	)
	fs.Parse(args)
	meta, evs, err := loadTrace(fs)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "perfetto":
		tl := trace.BuildTimeline(meta, evs)
		var samples []trace.IntervalSample
		if *interval > 0 {
			samples = trace.SampleIntervals(meta, evs, sim.Tick(*interval))
		}
		return trace.WritePerfetto(w, tl, samples)
	case "csv":
		tl := trace.BuildTimeline(meta, evs)
		return trace.WriteSpanCSV(w, tl)
	case "events-csv":
		return trace.WriteEventCSV(w, meta, evs)
	}
	return fmt.Errorf("unknown format %q (want perfetto, csv or events-csv)", *format)
}

// cmdMetrics prints interval samples as CSV.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("cleartrace metrics", flag.ExitOnError)
	interval := fs.Uint64("interval", 10_000, "sample interval width in ticks")
	fs.Parse(args)
	meta, evs, err := loadTrace(fs)
	if err != nil {
		return err
	}
	if *interval == 0 {
		return fmt.Errorf("-interval must be > 0")
	}
	samples := trace.SampleIntervals(meta, evs, sim.Tick(*interval))
	return trace.WriteIntervalCSV(os.Stdout, samples)
}

// cmdVerify validates a trace end to end: header decodes, every record is
// well-formed and non-decreasing in tick, the timeline reconstructs, and
// the Perfetto export parses as trace-event JSON. Exit status 0 means the
// file passed; CI uses this as the round-trip gate.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("cleartrace verify", flag.ExitOnError)
	fs.Parse(args)
	meta, evs, err := loadTrace(fs)
	if err != nil {
		return err
	}
	var last sim.Tick
	for i, e := range evs {
		if e.Tick < last {
			return fmt.Errorf("record %d: tick %d < previous %d (stream not time-ordered)", i, e.Tick, last)
		}
		last = e.Tick
		if int(e.Core) >= meta.Cores {
			return fmt.Errorf("record %d: core %d out of range (header says %d cores)", i, e.Core, meta.Cores)
		}
	}
	tl := trace.BuildTimeline(meta, evs)
	open := 0
	for _, s := range tl.Spans {
		if s.Outcome == trace.OutcomeOpen {
			open++
		}
	}
	// Round-trip the Perfetto export through the JSON decoder and check the
	// trace-event schema shape.
	var buf strings.Builder
	if err := trace.WritePerfetto(&buf, tl, trace.SampleIntervals(meta, evs, 10_000)); err != nil {
		return fmt.Errorf("perfetto export: %w", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Pid   *int   `json:"pid"`
			Tid   *int   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		return fmt.Errorf("perfetto export is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("perfetto export has no traceEvents")
	}
	for i, te := range doc.TraceEvents {
		if te.Name == "" || te.Phase == "" || te.Pid == nil || te.Tid == nil {
			return fmt.Errorf("perfetto event %d missing required fields (name/ph/pid/tid)", i)
		}
		switch te.Phase {
		case "X", "M", "C":
		default:
			return fmt.Errorf("perfetto event %d has unexpected phase %q", i, te.Phase)
		}
	}
	// CSV exports must render without error.
	var csvBuf strings.Builder
	if err := trace.WriteSpanCSV(&csvBuf, tl); err != nil {
		return fmt.Errorf("span CSV export: %w", err)
	}
	if err := trace.WriteEventCSV(&csvBuf, meta, evs); err != nil {
		return fmt.Errorf("event CSV export: %w", err)
	}
	fmt.Printf("ok: %d events, %d spans (%d open), %d perfetto events, last tick %d\n",
		len(evs), len(tl.Spans), open, len(doc.TraceEvents), uint64(tl.LastTick))
	return nil
}
