// Command clearchaos runs randomized fault-injection campaigns against the
// simulator: every run perturbs one (benchmark, configuration) pair with a
// seed-deterministic fault plan — NACK storms, directory stalls, power-token
// denial windows, spurious aborts, lock-holder preemption — while the
// invariant oracle and the forward-progress watchdog verify that faults only
// ever delay or refuse, never corrupt, and that CLEAR's single-retry bound
// holds under every perturbation. A failing run shrinks its plan to the
// minimal set of fault kinds (and the gentlest rates) that still reproduce
// the failure, then prints the exact flags that replay it.
//
// Usage:
//
//	clearchaos -runs 200 -seed 1             # campaign, "default" plan
//	clearchaos -plan storm -configs CW       # NACK storms on CLEAR configs
//	clearchaos -faults nack,dir-stall        # restrict the plan to two kinds
//	clearchaos -plan planted -expect-catch   # prove the watchdog catches a
//	                                         # planted second-spec-retry fault
//	clearchaos -list-plans                   # show the named presets
//	clearchaos -cache-dir .clearcache        # replay: clean cached runs are
//	                                         # skipped, only new cells execute
//	clearchaos -axiom                        # also check every run's committed
//	                                         # execution against the axiomatic
//	                                         # memory model
//
// Exit status is 0 iff every run survived with zero oracle violations and
// zero watchdog detections (with -expect-catch: iff a planted fault was
// caught and shrunk); 2 = usage error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/policy"
	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/trace"
)

// campaignBenches is the default benchmark rotation: small, contended
// structures that exercise speculation, conversion, and the fallback path.
var campaignBenches = []string{"hashmap", "bst", "queue", "intruder"}

func main() {
	cliutil.SetTool("clearchaos")
	var (
		runs      = flag.Int("runs", 64, "number of campaign runs")
		seed      = flag.Uint64("seed", 1, "base seed (run i uses seed+i for both workload and faults)")
		planName  = flag.String("plan", "default", "fault-plan preset (see -list-plans)")
		faults    = flag.String("faults", "", "comma-separated fault kinds to keep from the plan (empty = all)")
		configs   = flag.String("configs", "BPCW", "configurations to rotate through (subset of BPCW)")
		bench     = flag.String("bench", "", "single benchmark to run (empty = rotate "+strings.Join(campaignBenches, ",")+")")
		cores     = flag.Int("cores", 8, "simulated cores per run")
		ops       = flag.Int("ops", 24, "operations per thread per run")
		retry     = flag.Int("retry", 4, "retry limit")
		deadline  = flag.Duration("deadline", 30*time.Second, "host wall-time deadline per run (0 = none)")
		doShrink  = flag.Bool("shrink", true, "shrink a failing run's fault plan to a minimal reproducer")
		axiom     = flag.Bool("axiom", false, "record each run's memory-access trace and check it against the axiomatic memory model (slower, uncacheable)")
		expect    = flag.Bool("expect-catch", false, "invert: exit 0 iff at least one run fails and is caught (planted-fault proof)")
		verbose   = flag.Bool("v", false, "print every run result, not just failures")
		listPlans = flag.Bool("list-plans", false, "list the named fault-plan presets and exit")
	)
	sweepFlags := cliutil.AddSweepFlags(flag.CommandLine)
	policyFlag := cliutil.AddPolicyFlags(flag.CommandLine)
	flag.Parse()

	if *listPlans {
		for _, name := range fault.Presets() {
			p, _ := fault.PresetPlan(name)
			fmt.Printf("%-10s %s\n", name, p)
		}
		return
	}

	base, err := fault.PresetPlan(*planName)
	if err != nil {
		cliutil.Usage(err)
	}
	if *faults != "" {
		keep := make(map[fault.Kind]bool)
		for _, name := range strings.Split(*faults, ",") {
			k, ok := fault.KindFromString(strings.TrimSpace(name))
			if !ok {
				cliutil.Usagef("unknown fault kind %q", name)
			}
			keep[k] = true
		}
		base = base.Restrict(keep)
	}
	if err := base.Validate(); err != nil {
		cliutil.Usage(err)
	}
	cfgs, err := harness.ParseConfigs(*configs)
	if err != nil {
		cliutil.Usage(err)
	}
	for _, c := range cfgs {
		if c == harness.ConfigM {
			cliutil.Usagef("config M is not part of chaos campaigns (want subset of BPCW)")
		}
	}
	benches := campaignBenches
	if *bench != "" {
		benches = []string{*bench}
	}
	pol, err := policyFlag.Spec()
	if err != nil {
		cliutil.Usage(err)
	}
	store, err := sweepFlags.Store()
	if err != nil {
		cliutil.Usage(err)
	}
	// Guarded assignment: a typed-nil *Store inside the Backend interface
	// would read as attached.
	var backend runstore.Backend
	if store != nil {
		backend = store
	}

	os.Exit(campaign(campaignOpts{
		runs:     *runs,
		seed:     *seed,
		plan:     base,
		planName: *planName,
		cfgs:     cfgs,
		benches:  benches,
		cores:    *cores,
		ops:      *ops,
		retry:    *retry,
		policy:   pol,
		deadline: *deadline,
		shrink:   *doShrink,
		axiom:    *axiom,
		expect:   *expect,
		verbose:  *verbose,
		store:    backend,
	}))
}

type campaignOpts struct {
	runs     int
	seed     uint64
	plan     *fault.Plan
	planName string
	cfgs     []harness.ConfigID
	benches  []string
	cores    int
	ops      int
	retry    int
	policy   policy.Spec
	deadline time.Duration
	shrink   bool
	// axiom records every run's memory-access trace in memory and checks
	// the committed execution against the axiomatic memory model
	// (internal/litmus), turning the whole chaos campaign into a
	// memory-model conformance sweep. Tracing makes runs uncacheable, so
	// every cell simulates even with -cache-dir.
	axiom   bool
	expect  bool
	verbose bool
	// store, when non-nil, is the content-addressed run cache: a campaign
	// replay skips the simulation of every run whose (plan, seed, machine)
	// tuple already has a clean cached record — only failures (never
	// cached) and new cells execute.
	store runstore.Backend
}

// report accumulates campaign-wide degradation statistics.
type report struct {
	runs             int
	cached           int
	fired            [fault.NumKinds]uint64
	extraTicks       sim.Tick
	commits          uint64
	degradations     uint64
	maxRetries       int
	maxRetriesAt     string
	maxCommitLat     sim.Tick
	maxCommitLatAt   string
	retryViolations  uint64
	oracleViolations int
}

func (r *report) absorb(res *harness.RunResult, at string) {
	r.runs++
	if res.Faults != nil {
		for k, n := range res.Faults.Fired {
			r.fired[k] += n
		}
		r.extraTicks += res.Faults.ExtraTicks
	}
	if res.Watch != nil {
		r.commits += res.Watch.Commits
		r.degradations += res.Watch.Degradations
		r.retryViolations += res.Watch.RetryBoundViolations
		if res.Watch.MaxConflictRetries > r.maxRetries {
			r.maxRetries = res.Watch.MaxConflictRetries
			r.maxRetriesAt = at
		}
		if res.Watch.MaxCommitLatency > r.maxCommitLat {
			r.maxCommitLat = res.Watch.MaxCommitLatency
			r.maxCommitLatAt = at
		}
	}
}

func (r *report) print() {
	fmt.Printf("\ncampaign report (%d surviving runs):\n", r.runs)
	fmt.Printf("  faults fired:")
	total := uint64(0)
	for k := fault.Kind(0); k < fault.NumKinds; k++ {
		if r.fired[k] > 0 {
			fmt.Printf(" %s=%d", k, r.fired[k])
			total += r.fired[k]
		}
	}
	if total == 0 {
		fmt.Printf(" none")
	}
	fmt.Printf(" (total %d, %d injected ticks)\n", total, r.extraTicks)
	fmt.Printf("  commits: %d, fallback degradations: %d\n", r.commits, r.degradations)
	fmt.Printf("  worst conflict-retry count: %d (%s)\n", r.maxRetries, orDash(r.maxRetriesAt))
	fmt.Printf("  worst commit latency: %d ticks (%s)\n", r.maxCommitLat, orDash(r.maxCommitLatAt))
	fmt.Printf("  single-retry-bound violations: %d\n", r.retryViolations)
	if r.cached > 0 {
		fmt.Printf("  runs served from the run cache: %d of %d\n", r.cached, r.runs)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func campaign(o campaignOpts) int {
	start := time.Now()
	rep := &report{}
	for i := 0; i < o.runs; i++ {
		benchName := o.benches[i%len(o.benches)]
		cfg := o.cfgs[(i/len(o.benches))%len(o.cfgs)]
		plan := o.plan.Clone()
		plan.Seed = o.seed + uint64(i)
		p := harness.RunParams{
			Benchmark:    benchName,
			Config:       cfg,
			Cores:        o.cores,
			OpsPerThread: o.ops,
			RetryLimit:   o.retry,
			Seed:         o.seed + uint64(i),
			MaxTicks:     400_000_000,
			Oracle:       true,
			Watchdog:     &harness.WatchdogConfig{},
			FaultPlan:    plan,
			Policy:       o.policy,
			Deadline:     o.deadline,
		}
		var axiomBuf bytes.Buffer
		if o.axiom {
			// Record the full memory-access stream in memory; tracing makes
			// the run uncacheable, so the simulation always actually runs.
			p.TraceWriter = &axiomBuf
			p.TraceMem = true
		}
		res, fail, hit := harness.RunCheckedCached(o.store, p)
		if fail == nil && o.axiom {
			if err := axiomCheck(p, axiomBuf.Bytes()); err != nil {
				fmt.Printf("run %d %s/%s seed=%d FAILED axiomatic check: %v\n", i, benchName, cfg, p.Seed, err)
				if o.expect {
					fmt.Printf("clearchaos: planted fault caught after %d run(s) in %v\n", i+1, time.Since(start).Round(time.Millisecond))
					return 0
				}
				return 1
			}
		}
		if fail == nil {
			if hit {
				rep.cached++
			}
			if o.verbose {
				from := ""
				if hit {
					from = ", cached"
				}
				fmt.Printf("run %3d %s/%s seed=%d: ok (%d faults, %d commits, %d degradations%s)\n",
					i, benchName, cfg, p.Seed, res.Faults.Total(), res.Watch.Commits, res.Watch.Degradations, from)
			}
			rep.absorb(res, fmt.Sprintf("%s/%s seed=%d", benchName, cfg, p.Seed))
			continue
		}

		fmt.Printf("run %d FAILED: %s\n", i, fail)
		if fail.Stack != "" {
			fmt.Printf("  stack:\n%s\n", indent(fail.Stack, "    "))
		}
		if o.shrink {
			failing := func(cand *fault.Plan) bool {
				p2 := p
				p2.FaultPlan = cand
				_, f2 := harness.RunChecked(p2)
				return f2 != nil
			}
			min := fault.ShrinkPlan(plan, failing)
			fmt.Printf("  minimal failing plan: {%s}\n", min)
			fmt.Printf("  replay: clearchaos -runs 1 -seed %d -bench %s -configs %s -cores %d -ops %d -plan %s",
				p.Seed, benchName, cfg, o.cores, o.ops, o.planName)
			if kinds := enabledKinds(min); kinds != "" {
				fmt.Printf(" -faults %s", kinds)
			}
			if !o.policy.IsDefault() {
				fmt.Printf(" -policy %s", o.policy.Canonical())
			}
			fmt.Println()
		}
		if o.expect {
			fmt.Printf("clearchaos: planted fault caught after %d run(s) in %v\n", i+1, time.Since(start).Round(time.Millisecond))
			return 0
		}
		return 1
	}
	rep.print()
	if o.expect {
		fmt.Printf("clearchaos: expected a caught fault but all %d runs survived — detectors are blind\n", o.runs)
		return 1
	}
	ok := rep.retryViolations == 0
	fmt.Printf("clearchaos: %d runs x plan {%s} in %v: all invariant-clean, single-retry bound held\n",
		o.runs, o.plan, time.Since(start).Round(time.Millisecond))
	if !ok {
		return 1
	}
	return 0
}

// axiomCheck runs the axiomatic memory-model checker over one run's
// recorded event stream. The initial-memory image comes from replaying the
// workload's deterministic setup, so loads of never-overwritten locations
// resolve instead of being counted ambiguous.
func axiomCheck(p harness.RunParams, raw []byte) error {
	rd, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	events, err := rd.ReadAll()
	if err != nil {
		return err
	}
	initial, err := harness.SetupImage(p)
	if err != nil {
		return err
	}
	v := litmus.CheckEvents(events, litmus.CheckOpts{Initial: initial})
	if !v.OK() {
		return fmt.Errorf("%s", v)
	}
	return nil
}

// enabledKinds renders the plan's active fault kinds as a -faults argument;
// replaying the campaign preset restricted to the surviving kinds reproduces
// the kind set (the shrunk rates may be gentler, but the seed pins the run).
func enabledKinds(p *fault.Plan) string {
	var names []string
	for k := fault.Kind(0); k < fault.NumKinds; k++ {
		if p.Enabled(k) {
			names = append(names, k.String())
		}
	}
	return strings.Join(names, ",")
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
