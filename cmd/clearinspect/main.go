// Command clearinspect inspects workload atomic regions: it disassembles
// every AR of a benchmark, prints the static mutability analysis behind
// Table 1, and optionally runs a small traced simulation so the execution
// modes (speculative, failed-mode discovery, S-CL, NS-CL, fallback) can be
// watched instruction by instruction.
//
// Usage:
//
//	clearinspect -bench sorted-list            # disassembly + analysis
//	clearinspect -bench mwobject -trace -ops 5 # traced mini-run (config W)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark to inspect (empty: list all)")
		trace = flag.Bool("trace", false, "run a small traced simulation")
		cores = flag.Int("cores", 4, "cores for -trace")
		ops   = flag.Int("ops", 10, "ops per thread for -trace")
		cfg   = flag.String("config", "W", "configuration for -trace (B, P, C, W)")
	)
	flag.Parse()

	if *bench == "" {
		fmt.Println("benchmarks:")
		for _, n := range workload.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	w, err := workload.New(*bench)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark %s: %d atomic regions\n\n", w.Name(), len(w.ARs()))
	for _, p := range w.ARs() {
		a := isa.Analyze(p)
		fmt.Print(isa.Disassemble(p))
		fmt.Printf("   classification: %s", a.Mutability)
		if a.HasIndirection {
			fmt.Print(" (has indirection)")
		}
		if a.WritesIndirection {
			fmt.Print(" (modifies its own indirection chain)")
		}
		fmt.Printf("\n   static loads=%d stores=%d branches=%d\n\n", a.Loads, a.Stores, a.Branches)
	}

	if !*trace {
		return
	}

	var config harness.ConfigID
	switch *cfg {
	case "B":
		config = harness.ConfigB
	case "P":
		config = harness.ConfigP
	case "C":
		config = harness.ConfigC
	case "W":
		config = harness.ConfigW
	default:
		fatal(fmt.Errorf("unknown config %q", *cfg))
	}

	memory := mem.NewMemory(0x100000)
	rng := sim.NewRNG(1)
	if err := w.Setup(memory, rng, *cores); err != nil {
		fatal(err)
	}
	p := harness.DefaultRunParams(*bench, config)
	p.Cores = *cores
	sys := p.SystemConfig()
	sys.Cores = *cores
	machine, err := cpu.NewMachine(sys, memory)
	if err != nil {
		fatal(err)
	}
	machine.SetTrace(os.Stdout)
	feeds := make([]cpu.InvocationSource, *cores)
	for tid := 0; tid < *cores; tid++ {
		feeds[tid] = w.Source(tid, rng.Split(), *ops)
	}
	machine.AttachFeeds(feeds)
	fmt.Printf("--- traced run: %d cores x %d ops, config %s ---\n", *cores, *ops, config)
	if err := machine.Run(100_000_000); err != nil {
		fatal(err)
	}
	if err := w.Verify(memory); err != nil {
		fatal(err)
	}
	s := machine.Stats
	fmt.Printf("--- done: %d cycles, %d commits (spec %d, S-CL %d, NS-CL %d, fallback %d), %d aborts ---\n",
		s.Cycles, s.Commits, s.CommitsByMode[0], s.CommitsByMode[1], s.CommitsByMode[2], s.CommitsByMode[3], s.Aborts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clearinspect:", err)
	os.Exit(1)
}
