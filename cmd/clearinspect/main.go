// Command clearinspect inspects workload atomic regions: it disassembles
// every AR of a benchmark, prints the static mutability analysis behind
// Table 1, and optionally runs a small traced simulation so the execution
// modes (speculative, failed-mode discovery, S-CL, NS-CL, fallback) can be
// watched instruction by instruction.
//
// The traced run records the structured binary event stream of
// internal/trace and renders it through the text compatibility view; use
// -trace-out to keep the binary stream for cleartrace.
//
// Usage:
//
//	clearinspect -bench sorted-list            # disassembly + analysis
//	clearinspect -bench mwobject -trace -ops 5 # traced mini-run (config W)
//	clearinspect -bench hashmap -trace -trace-out run.trace
//
// Exit status follows the uniform policy: 1 = the run failed, 2 = usage
// error (unknown benchmark/config, bad flags).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cliutil.SetTool("clearinspect")
	var (
		bench    = flag.String("bench", "", "benchmark to inspect (empty: list all)")
		traced   = flag.Bool("trace", false, "run a small traced simulation")
		cores    = flag.Int("cores", 4, "cores for -trace")
		ops      = flag.Int("ops", 10, "ops per thread for -trace")
		cfg      = flag.String("config", "W", "configuration for -trace (B, P, C, W or M)")
		text     = flag.Bool("trace-text", true, "render the traced run as text (the classic view)")
		traceOut = flag.String("trace-out", "", "also save the binary trace stream to this file")
		traceMem = flag.Bool("trace-mem", true, "include per-memory-operation events in the trace")
	)
	flag.Parse()

	if *bench == "" {
		fmt.Println("benchmarks:")
		for _, n := range workload.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	// Validate everything before producing any output, so a typo'd
	// benchmark or configuration fails fast with a usage message instead
	// of a partial report.
	w, err := workload.New(*bench)
	if err != nil {
		cliutil.Usagef("unknown benchmark %q (run clearinspect with no -bench to list)", *bench)
	}
	config, err := harness.ParseConfig(*cfg)
	if err != nil {
		cliutil.Usage(err)
	}

	fmt.Printf("benchmark %s: %d atomic regions\n\n", w.Name(), len(w.ARs()))
	for _, p := range w.ARs() {
		a := isa.Analyze(p)
		fmt.Print(isa.Disassemble(p))
		fmt.Printf("   classification: %s", a.Mutability)
		if a.HasIndirection {
			fmt.Print(" (has indirection)")
		}
		if a.WritesIndirection {
			fmt.Print(" (modifies its own indirection chain)")
		}
		fmt.Printf("\n   static loads=%d stores=%d branches=%d\n\n", a.Loads, a.Stores, a.Branches)
	}

	if !*traced {
		return
	}

	p := harness.DefaultRunParams(*bench, config)
	p.Cores = *cores
	p.OpsPerThread = *ops
	var buf bytes.Buffer
	p.TraceWriter = &buf
	p.TraceMem = *traceMem
	p.TraceDir = false

	fmt.Printf("--- traced run: %d cores x %d ops, config %s ---\n", *cores, *ops, config)
	res, err := harness.Run(p)
	if err != nil {
		cliutil.Fatal(err)
	}

	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, buf.Bytes(), 0o644); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clearinspect: wrote %s (%d bytes)\n", *traceOut, buf.Len())
	}

	if *text {
		rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			cliutil.Fatal(err)
		}
		evs, err := rd.ReadAll()
		if err != nil {
			cliutil.Fatal(err)
		}
		if err := trace.WriteText(os.Stdout, rd.Meta(), evs); err != nil {
			cliutil.Fatal(err)
		}
	}

	s := res.Stats
	fmt.Printf("--- done: %d cycles, %d commits (spec %d, S-CL %d, NS-CL %d, fallback %d), %d aborts ---\n",
		s.Cycles, s.Commits, s.CommitsByMode[0], s.CommitsByMode[1], s.CommitsByMode[2], s.CommitsByMode[3], s.Aborts)
}
