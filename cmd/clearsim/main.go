// Command clearsim runs one benchmark under one configuration and dumps the
// full metric set: execution time, commit breakdowns by mode and by retry
// count, abort taxonomy, discovery overhead, lock activity, directory
// traffic, and modelled energy.
//
// Usage:
//
//	clearsim -bench hashmap -config W -cores 32 -ops 200 -retries 4 -seed 1
//
// Exit status follows the uniform policy: 1 = the run failed, 2 = usage
// error (unknown benchmark/config, bad flags).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/harness"
	"repro/internal/prof"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	cliutil.SetTool("clearsim")
	run := cliutil.AddRunFlags(flag.CommandLine, cliutil.RunDefaults{
		Bench: "hashmap", Config: "B", Cores: 32, Ops: 120, Retries: 4, Seed: 1,
	})
	tr := cliutil.AddTraceFlags(flag.CommandLine, false)
	pol := cliutil.AddPolicyFlags(flag.CommandLine)
	var (
		list    = flag.Bool("list", false, "list benchmarks and exit")
		sle     = flag.Bool("sle", false, "in-core speculation (SLE) instead of HTM")
		meshNet = flag.Bool("mesh", false, "2D mesh interconnect instead of the crossbar")
		altSize = flag.Int("alt", 0, "ALT entries (0 = paper's 32)")
		ertSize = flag.Int("ert", 0, "ERT entries (0 = paper's 16)")
		noDisc  = flag.Bool("no-discovery-continuation", false, "ablation: abort at first conflict instead of continuing discovery")
		lockAll = flag.Bool("scl-lock-all", false, "ablation: S-CL locks the whole learned footprint")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		cliutil.Fatal(err)
	}
	cliutil.OnExit(stopProfiles)
	defer stopProfiles()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	p, err := run.Params()
	if err != nil {
		cliutil.Usage(err)
	}
	p.Policy, err = pol.Resolve(p.Policy)
	if err != nil {
		cliutil.Usage(err)
	}
	p.SLE = *sle
	p.Mesh = *meshNet
	p.ALTEntries = *altSize
	p.ERTEntries = *ertSize
	p.DisableDiscoveryContinuation = *noDisc
	p.SCLLockAllReads = *lockAll

	closeTrace, err := tr.Apply(&p)
	if err != nil {
		cliutil.Fatal(err)
	}

	res, err := harness.Run(p)
	if err != nil {
		cliutil.Fatal(err)
	}
	if err := closeTrace(); err != nil {
		cliutil.Fatal(err)
	}
	if *tr.Out != "" {
		fmt.Fprintf(os.Stderr, "clearsim: wrote trace %s\n", *tr.Out)
	}
	printResult(res)
}

func printResult(r *harness.RunResult) {
	s := r.Stats
	p := r.Params
	fmt.Printf("benchmark        %s\n", p.Benchmark)
	fmt.Printf("configuration    %s (%s)\n", p.Config, p.Config.Description())
	fmt.Printf("cores            %d   ops/thread %d   retry limit %d   seed %d\n",
		p.Cores, p.OpsPerThread, p.RetryLimit, p.Seed)
	fmt.Printf("policy           %s\n", p.Policy.Canonical())
	fmt.Println()
	fmt.Printf("cycles           %d\n", s.Cycles)
	fmt.Printf("energy (a.u.)    %.0f\n", r.Energy)
	fmt.Printf("commits          %d\n", s.Commits)
	fmt.Printf("aborts           %d   (%.2f per commit)\n", s.Aborts, s.AbortsPerCommit())
	fmt.Println()
	fmt.Println("commit modes:")
	for m := stats.CommitSpeculative; m < stats.NumCommitModes; m++ {
		fmt.Printf("  %-12s %7d  (%5.1f%%)\n", m, s.CommitsByMode[m],
			pct(s.CommitsByMode[m], s.Commits))
	}
	fmt.Println("commits by retry count (non-fallback):")
	for i, n := range s.CommitsByRetries {
		if n == 0 {
			continue
		}
		label := fmt.Sprintf("%d", i)
		if i == stats.MaxRetryTrack {
			label += "+"
		}
		fmt.Printf("  retry %-6s %7d\n", label, n)
	}
	fmt.Printf("  first-retry share %.1f%%   fallback share %.1f%%  (of retrying commits)\n",
		100*s.FirstRetryShare(), 100*s.FallbackShare())
	fmt.Println()
	fmt.Println("per atomic region:")
	ids := make([]int, 0, len(s.PerAR))
	for id := range s.PerAR {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ar := s.PerAR[id]
		fmt.Printf("  %-28s commits %6d (spec %d, S-CL %d, NS-CL %d, fb %d)  aborts %6d\n",
			ar.Name, ar.Commits, ar.CommitsByMode[0], ar.CommitsByMode[1], ar.CommitsByMode[2],
			ar.CommitsByMode[3], ar.Aborts)
	}
	fmt.Println()
	fmt.Println("abort types:")
	for b := 0; b < len(s.AbortsByBucket); b++ {
		fmt.Printf("  %-18s %7d\n", bucketName(b), s.AbortsByBucket[b])
	}
	fmt.Println()
	fmt.Printf("discovery runs   %d   overhead %.2f%% of core-cycles\n",
		s.DiscoveryRuns, 100*s.DiscoveryOverhead(p.Cores))
	fmt.Printf("S-CL attempts    %d   NS-CL attempts %d\n", s.SCLAttempts, s.NSCLAttempts)
	fmt.Printf("lines locked     %d   lock retries %d   CRT insertions %d\n",
		s.LinesLocked, s.LockRetries, s.CRTInsertions)
	fmt.Printf("power claims     %d   fallback acquisitions %d\n", s.PowerClaims, s.FallbackAcquisitions)
	if s.PolicyOverrides+s.PolicyBackoffTicks+s.PolicyNonSpecEntries > 0 {
		fmt.Printf("policy           overrides %d   backoff ticks %d   static NS-CL entries %d\n",
			s.PolicyOverrides, s.PolicyBackoffTicks, s.PolicyNonSpecEntries)
	}
	fmt.Println()
	fmt.Printf("instructions     %d committed + %d aborted (%.1f%% wasted)\n",
		s.Instructions, s.AbortedInstructions,
		pct(s.AbortedInstructions, s.Instructions+s.AbortedInstructions))
	d := r.Dir
	fmt.Printf("directory        reads %d  writes %d  inval %d  nacks %d  retries %d  mem %d  hops %d\n",
		d.Reads, d.Writes, d.Invalidations, d.Nacks, d.Retries, d.MemoryFetches, d.Hops)
	fmt.Printf("invocation latency (cycles, upper bounds): p50 %d  p95 %d  p99 %d\n",
		s.LatencyPercentile(0.50), s.LatencyPercentile(0.95), s.LatencyPercentile(0.99))
	eb := stats.DefaultEnergyModel().EnergyBreakdown(s, d, p.Cores)
	fmt.Printf("energy breakdown static %.0f  instr %.0f  L1 %.0f  dir %.0f  mem %.0f  net %.0f\n",
		eb.Static, eb.Instr, eb.L1, eb.Directory, eb.Memory, eb.Network)
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

func bucketName(b int) string {
	switch b {
	case 0:
		return "memory-conflict"
	case 1:
		return "explicit-fallback"
	case 2:
		return "other-fallback"
	case 3:
		return "others"
	}
	return "?"
}
