// Command clearfuzz drives the randomized litmus harness: it generates
// seeded random atomic-region programs over a small pool of shared
// cachelines, runs every case under the selected configurations (B, P, C, W)
// with the invariant oracle attached, and differentially validates the final
// memory state against a serial replay in the observed commit order. Any
// failure shrinks to a minimal reproducer and prints the seed, the program
// dump, and the oracle's findings; replays are bit-identical, so the seed
// alone reproduces a failure.
//
// Usage:
//
//	clearfuzz -runs 1000 -seed 1            # 1000 cases, all four configs
//	clearfuzz -configs CW -runs 200         # CLEAR configs only
//	clearfuzz -replay 42                    # re-run one seed verbosely
//	clearfuzz -inject bug                   # prove the oracle catches a
//	                                        # planted single-retry bug
//	clearfuzz -inject storm -runs 200       # fuzz under the "storm" fault
//	                                        # plan (see -inject list)
//
// Exit status is 0 iff every case is invariant-clean and serializable
// (respectively, with -inject bug, iff the planted bug is caught and shrunk).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/check/fuzz"
	"repro/internal/cliutil"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/policy"
)

func main() {
	cliutil.SetTool("clearfuzz")
	var (
		runs    = flag.Int("runs", 256, "number of random cases to run")
		seed    = flag.Uint64("seed", 1, "first case seed (cases use seed..seed+runs-1)")
		configs = flag.String("configs", "BPCW", "configurations to run each case under (subset of BPCW)")
		replay  = flag.Uint64("replay", 0, "replay this single seed verbosely and exit")
		inject  = flag.String("inject", "", "\"bug\" plants the second-speculative-retry bug and requires the oracle to catch and shrink it; a fault-plan preset name runs the fuzz loop under that plan; \"list\" prints the presets")
		verbose = flag.Bool("v", false, "print every case result, not just failures")
	)
	policyFlag := cliutil.AddPolicyFlags(flag.CommandLine)
	flag.Parse()

	ids, err := harness.ParseConfigs(*configs)
	if err != nil {
		cliutil.Usage(err)
	}
	pol, err := policyFlag.Spec()
	if err != nil {
		cliutil.Usage(err)
	}
	cfgs := make([]fuzz.Config, 0, len(ids))
	for _, id := range ids {
		switch id {
		case harness.ConfigB:
			cfgs = append(cfgs, fuzz.ConfigB)
		case harness.ConfigP:
			cfgs = append(cfgs, fuzz.ConfigP)
		case harness.ConfigC:
			cfgs = append(cfgs, fuzz.ConfigC)
		case harness.ConfigW:
			cfgs = append(cfgs, fuzz.ConfigW)
		default:
			cliutil.Usagef("config %s is not fuzzable (want subset of BPCW)", id)
		}
	}

	if *replay != 0 {
		os.Exit(replayOne(*replay, cfgs, pol))
	}
	switch *inject {
	case "":
		os.Exit(fuzzRun(*seed, *runs, cfgs, *verbose, fuzz.Opts{Policy: pol}))
	case "bug":
		os.Exit(injectHunt(*seed, *runs, cfgs))
	case "list":
		for _, name := range fault.Presets() {
			p, _ := fault.PresetPlan(name)
			fmt.Printf("%-10s %s\n", name, p)
		}
		os.Exit(0)
	default:
		plan, err := fault.PresetPlan(*inject)
		if err != nil {
			cliutil.Usagef("-inject: %v (use \"bug\", \"list\", or a preset)", err)
		}
		os.Exit(fuzzRun(*seed, *runs, cfgs, *verbose, fuzz.Opts{Plan: plan, Policy: pol}))
	}
}

// fuzzRun is the main loop: run cases, stop and shrink on the first failure.
// A non-nil opts.Plan runs every case under the fault injector — the oracle
// and the serial-replay differential must hold under perturbation too.
func fuzzRun(first uint64, runs int, cfgs []fuzz.Config, verbose bool, opts fuzz.Opts) int {
	start := time.Now()
	programs := 0
	under := ""
	if opts.Plan != nil {
		under = fmt.Sprintf(" under fault plan {%s}", opts.Plan)
	}
	for i := 0; i < runs; i++ {
		seed := first + uint64(i)
		c := fuzz.Gen(seed)
		programs += len(c.Progs)
		results := fuzz.RunAll(c, cfgs, opts)
		if verbose {
			for _, r := range results {
				fmt.Printf("seed %d %s\n", seed, r)
			}
		}
		if fuzz.AnyFailed(results) {
			fmt.Printf("seed %d FAILED%s:\n", seed, under)
			for _, r := range results {
				if r.Failed() {
					fmt.Printf("  %s\n", r)
				}
			}
			failing := func(cand *fuzz.Case) bool {
				return fuzz.AnyFailed(fuzz.RunAll(cand, cfgs, opts))
			}
			shrunk := fuzz.Shrink(c, failing)
			fmt.Printf("\nshrunk reproducer (%d effective instructions, %d cores) — replay with `clearfuzz -replay %d`:\n%s\n",
				shrunk.EffectiveInstrs(), shrunk.Cores(), seed, shrunk.Dump())
			return 1
		}
	}
	fmt.Printf("clearfuzz: %d cases (%d AR programs) x %d configs%s in %v: all invariant-clean and serializable\n",
		runs, programs, len(cfgs), under, time.Since(start).Round(time.Millisecond))
	return 0
}

// replayOne re-runs a single seed with full result output.
func replayOne(seed uint64, cfgs []fuzz.Config, pol policy.Spec) int {
	c := fuzz.Gen(seed)
	fmt.Printf("case:\n%s\n", c.Dump())
	code := 0
	for _, r := range fuzz.RunAll(c, cfgs, fuzz.Opts{Policy: pol}) {
		fmt.Println(r)
		if r.Failed() {
			code = 1
		}
	}
	return code
}

// injectHunt proves the oracle end to end: with the planted bug enabled, a
// CLEAR configuration must trip the single-retry invariant, and the failing
// case must shrink to a small reproducer. Exit 0 means the bug was caught.
func injectHunt(first uint64, runs int, cfgs []fuzz.Config) int {
	clearCfgs := make([]fuzz.Config, 0, len(cfgs))
	for _, c := range cfgs {
		if c == fuzz.ConfigC || c == fuzz.ConfigW {
			clearCfgs = append(clearCfgs, c)
		}
	}
	if len(clearCfgs) == 0 {
		cliutil.Usagef("-inject needs a CLEAR configuration (C or W) in -configs")
	}
	caught := func(c *fuzz.Case) bool {
		for _, r := range fuzz.RunAll(c, clearCfgs, fuzz.Opts{Inject: true}) {
			for _, v := range r.Violations {
				if v.Property == check.PropSingleRetry {
					return true
				}
			}
		}
		return false
	}
	for i := 0; i < runs; i++ {
		seed := first + uint64(i)
		c := fuzz.Gen(seed)
		if !caught(c) {
			continue
		}
		shrunk := fuzz.Shrink(c, caught)
		fmt.Printf("planted single-retry bug caught at seed %d; shrunk to %d effective instruction(s), %d core(s):\n%s\n",
			seed, shrunk.EffectiveInstrs(), shrunk.Cores(), shrunk.Dump())
		for _, r := range fuzz.RunAll(shrunk, clearCfgs, fuzz.Opts{Inject: true}) {
			if r.ViolationCount > 0 {
				fmt.Println(r)
			}
		}
		return 0
	}
	fmt.Printf("clearfuzz: planted bug NOT caught in %d seeds — the oracle is blind\n", runs)
	return 1
}
