// Command clearbench regenerates every table and figure of the paper's
// evaluation section. Without flags it runs the full matrix (all benchmarks,
// all four configurations, retry sweep, multi-seed) and prints every
// experiment; -table/-fig select one.
//
// Usage:
//
//	clearbench                    # everything (takes a few minutes)
//	clearbench -fig 8             # just Figure 8
//	clearbench -table 1           # just Table 1 (static, fast)
//	clearbench -quick             # reduced sweep for a fast look
//	clearbench -ablation discovery|lockall
//	clearbench -cache-dir .clearcache          # memoize every cell run
//	clearbench -cache-dir .clearcache -resume  # resume a cancelled sweep
//
// With -cache-dir, every (benchmark, config, retry, seed) run is served from
// the content-addressed run cache when its parameters match a previous run
// bit-for-bit; a sweep interrupted by SIGINT (or a crash) re-run with the
// same -cache-dir recomputes only the missing cells. -no-cache bypasses the
// store entirely.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/trace"
)

func main() {
	cliutil.SetTool("clearbench")
	var (
		table    = flag.Int("table", 0, "print only this table (1 or 2)")
		fig      = flag.Int("fig", 0, "print only this figure (1, 8..13)")
		quick    = flag.Bool("quick", false, "reduced sweep (8 cores, 1 seed)")
		cores    = flag.Int("cores", 0, "override simulated core count")
		ops      = flag.Int("ops", 0, "override operations per thread")
		seeds    = flag.Int("seeds", 0, "override seed count")
		ablation = flag.String("ablation", "", "run an ablation: 'discovery' (no failed-mode continuation) or 'lockall' (S-CL locks all reads)")
		sweep    = flag.Bool("sweep", false, "print the retry-limit design-space exploration instead of the figures")
		csvPath  = flag.String("csv", "", "also write the matrix cells as CSV to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		serve    = flag.String("serve", "", "serve live run telemetry on this address (e.g. localhost:6070); endpoints: /telemetry, /metrics, /metrics.json, /debug/vars")
		deadline = flag.Duration("run-deadline", 0, "host wall-time deadline per individual run; an exceeding run becomes an isolated failure instead of hanging the sweep (0 = none)")
	)
	sweepFlags := cliutil.AddSweepFlags(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		cliutil.Fatal(err)
	}
	cliutil.OnExit(stop)
	defer stop()

	// The static tables need no simulation.
	if *table == 1 {
		if err := harness.PrintTable1(os.Stdout); err != nil {
			cliutil.Fatal(err)
		}
		return
	}
	if *table == 2 {
		harness.PrintTable2(os.Stdout, 32)
		return
	}
	if *table != 0 {
		cliutil.Usagef("unknown table %d", *table)
	}

	if *fig != 0 {
		switch *fig {
		case 1, 8, 9, 10, 11, 12, 13:
		default:
			// Validate before the (minutes-long) matrix run.
			cliutil.Usagef("unknown figure %d (want 1 or 8..13)", *fig)
		}
	}

	opts := harness.DefaultMatrixOptions()
	if *quick {
		opts = harness.QuickMatrixOptions()
	}
	if *cores > 0 {
		opts.Cores = *cores
	}
	if *ops > 0 {
		opts.OpsPerThread = *ops
	}
	if *seeds > 0 {
		opts.Seeds = opts.Seeds[:0]
		for s := 1; s <= *seeds; s++ {
			opts.Seeds = append(opts.Seeds, uint64(s))
		}
	}
	switch strings.ToLower(*ablation) {
	case "":
	case "discovery":
		opts.DisableDiscoveryContinuation = true
	case "lockall":
		opts.SCLLockAllReads = true
	default:
		cliutil.Usagef("unknown ablation %q", *ablation)
	}

	opts.RunDeadline = *deadline

	store, err := sweepFlags.Store()
	if err != nil {
		cliutil.Usage(err)
	}
	opts.Store = store
	if store != nil {
		fmt.Fprintf(os.Stderr, "clearbench: run cache at %s\n", store.Dir())
	}

	var srv *http.Server
	if *serve != "" {
		live := trace.NewLive()
		live.Publish() // expvar: /debug/vars
		opts.Telemetry = live
		reg := metrics.NewRegistry()
		opts.Metrics = reg
		mux := http.NewServeMux()
		mux.Handle("/telemetry", live.Handler())
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/metrics.json", reg.JSONHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		srv = &http.Server{
			Addr:              *serve,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "clearbench: telemetry server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "clearbench: live telemetry on http://%s/telemetry, metrics on /metrics\n", *serve)
	}

	if *sweep {
		sw, err := harness.RunRetrySweep(opts)
		if err != nil {
			cliutil.Fatal(err)
		}
		sw.Print(os.Stdout)
		return
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops dispatching new
	// matrix cells (runs in flight finish) and the partial matrix is still
	// reported — and, with -cache-dir, every completed cell is already
	// persisted, so re-running with -resume picks up where this left off; a
	// second signal kills the process through the default handler.
	cancel := make(chan struct{})
	opts.Cancel = cancel
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "\nclearbench: %s — finishing runs in flight, reporting the partial matrix (send again to kill)\n", sig)
		signal.Stop(sigCh)
		close(cancel)
	}()
	shutdown := func() {
		signal.Stop(sigCh)
		if srv != nil {
			ctx, done := context.WithTimeout(context.Background(), 3*time.Second)
			defer done()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "clearbench: telemetry shutdown:", err)
			}
		}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "clearbench: running matrix: %d benchmarks x %d configs x %d retry limits x %d seeds (%d cores, %d ops/thread)\n",
		len(opts.Benchmarks), len(opts.Configs), len(opts.RetryLimits), len(opts.Seeds), opts.Cores, opts.OpsPerThread)
	m, err := harness.RunMatrix(opts)
	if err != nil {
		cliutil.Fatal(err)
	}
	shutdown()
	interrupted := false
	select {
	case <-cancel:
		interrupted = true
	default:
	}
	fmt.Fprintf(os.Stderr, "clearbench: matrix done in %v\n", time.Since(start).Round(time.Millisecond))
	if store != nil {
		lookups := m.CacheHits + m.CacheMisses
		rate := 0.0
		if lookups > 0 {
			rate = 100 * float64(m.CacheHits) / float64(lookups)
		}
		fmt.Fprintf(os.Stderr, "clearbench: run cache: %d hits, %d misses (%.1f%% hits) in %s\n",
			m.CacheHits, m.CacheMisses, rate, store.Dir())
		if *sweepFlags.Resume {
			fmt.Fprintf(os.Stderr, "clearbench: resumed %d of %d cell runs from cache\n", m.CacheHits, lookups)
		}
	}
	fmt.Fprintln(os.Stderr)

	if len(m.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "clearbench: %d run(s) failed in isolation (cells aggregate the surviving seeds):\n", len(m.Failures))
		for _, fl := range m.Failures {
			fmt.Fprintf(os.Stderr, "  %s\n", fl.String())
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			cliutil.Fatal(err)
		}
		if err := m.WriteCSV(f); err != nil {
			cliutil.Fatal(err)
		}
		if err := f.Close(); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clearbench: wrote %s\n", *csvPath)
		if len(m.Failures) > 0 {
			failPath := *csvPath + ".failures.csv"
			ff, err := os.Create(failPath)
			if err != nil {
				cliutil.Fatal(err)
			}
			if err := m.WriteFailuresCSV(ff); err != nil {
				cliutil.Fatal(err)
			}
			if err := ff.Close(); err != nil {
				cliutil.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "clearbench: wrote %s\n", failPath)
		}
	}

	printers := map[int]func(){
		1:  func() { m.PrintFigure1(os.Stdout) },
		8:  func() { m.PrintFigure8(os.Stdout) },
		9:  func() { m.PrintFigure9(os.Stdout) },
		10: func() { m.PrintFigure10(os.Stdout) },
		11: func() { m.PrintFigure11(os.Stdout) },
		12: func() { m.PrintFigure12(os.Stdout) },
		13: func() { m.PrintFigure13(os.Stdout) },
	}
	if *fig != 0 {
		printers[*fig]()
	} else {
		if err := harness.PrintTable1(os.Stdout); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Println()
		harness.PrintTable2(os.Stdout, opts.Cores)
		for _, f := range []int{1, 8, 9, 10, 11, 12, 13} {
			fmt.Println()
			printers[f]()
		}
	}
	if interrupted {
		cliutil.Exit(130)
	}
	if len(m.Failures) > 0 {
		cliutil.Exit(cliutil.ExitFailure)
	}
}
