// Command clearbench regenerates every table and figure of the paper's
// evaluation section. Without flags it runs the full matrix (all benchmarks,
// all four configurations, retry sweep, multi-seed) and prints every
// experiment; -table/-fig select one.
//
// Usage:
//
//	clearbench                    # everything (takes a few minutes)
//	clearbench -fig 8             # just Figure 8
//	clearbench -table 1           # just Table 1 (static, fast)
//	clearbench -quick             # reduced sweep for a fast look
//	clearbench -ablation discovery|lockall
//	clearbench -cache-dir .clearcache          # memoize every cell run
//	clearbench -cache-dir .clearcache -resume  # resume a cancelled sweep
//	clearbench -serve :6070 -cache-dir .farm   # sweep-farm server
//	clearbench -quick -remote localhost:6070   # run the sweep on that farm
//
// With -cache-dir, every (benchmark, config, retry, seed) run is served from
// the content-addressed run cache when its parameters match a previous run
// bit-for-bit; a sweep interrupted by SIGINT (or a crash) re-run with the
// same -cache-dir recomputes only the missing cells. -no-cache bypasses the
// store entirely.
//
// -serve turns the process into a farm server (internal/farm): an HTTP job
// queue whose workers execute submitted runs through the same cache, with
// bounded retry/backoff for host-side flakiness, quarantine for specs that
// exhaust their budget, and graceful drain on SIGINT/SIGTERM. A killed
// server restarted with the same -cache-dir resumes its campaigns. -remote
// points a sweep at such a server: cells execute farm-side, progress streams
// from the farm's telemetry, and the tables, figures, and CSVs come out
// byte-identical to a local run.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cliutil.SetTool("clearbench")
	var (
		table    = flag.Int("table", 0, "print only this table (1 or 2)")
		fig      = flag.Int("fig", 0, "print only this figure (1, 8..13)")
		quick    = flag.Bool("quick", false, "reduced sweep (8 cores, 1 seed)")
		cores    = flag.Int("cores", 0, "override simulated core count")
		ops      = flag.Int("ops", 0, "override operations per thread")
		seeds    = flag.Int("seeds", 0, "override seed count")
		ablation = flag.String("ablation", "", "run an ablation: 'discovery' (no failed-mode continuation) or 'lockall' (S-CL locks all reads)")
		sweep    = flag.Bool("sweep", false, "print the retry-limit design-space exploration instead of the figures")
		csvPath  = flag.String("csv", "", "also write the matrix cells as CSV to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		serve    = flag.String("serve", "", "run as a sweep-farm server on this address (e.g. localhost:6070) instead of sweeping locally; endpoints: /jobs, /matrix, /quarantine, /farm, /telemetry, /metrics, /debug/vars")
		deadline = flag.Duration("run-deadline", 0, "host wall-time deadline per individual run; an exceeding run becomes an isolated failure instead of hanging the sweep (0 = none)")

		benchList   = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		configsFlag = flag.String("configs", "", "configuration subset, compact or separated (e.g. BPCW or B,C; default: B,P,C,W)")

		frontier      = flag.Bool("frontier", false, "run the policy-frontier sweep: every -policies entry over the benchmark x config matrix, optionally doubled under -frontier-fault; prints the per-cell verdict and where the paper's single-retry policy wins or loses")
		policiesFlag  = flag.String("policies", "", "policy list for -frontier, separated by ';' or whitespace (default: all built-ins)")
		frontierFault = flag.String("frontier-fault", "", "fault preset for the under-faults half of -frontier (empty = clean only)")
	)
	sweepFlags := cliutil.AddSweepFlags(flag.CommandLine)
	serviceFlags := cliutil.AddServiceFlags(flag.CommandLine)
	policyFlag := cliutil.AddPolicyFlags(flag.CommandLine)
	flag.Parse()

	if err := serviceFlags.Validate(*serve, sweepFlags); err != nil {
		cliutil.Usage(err)
	}

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		cliutil.Fatal(err)
	}
	cliutil.OnExit(stop)
	defer stop()

	// Farm server mode: serve the job queue until drained; no local sweep.
	if *serve != "" {
		runFarmServer(*serve, sweepFlags, *deadline)
		return
	}

	// The static tables need no simulation.
	if *table == 1 {
		if err := harness.PrintTable1(os.Stdout); err != nil {
			cliutil.Fatal(err)
		}
		return
	}
	if *table == 2 {
		harness.PrintTable2(os.Stdout, 32)
		return
	}
	if *table != 0 {
		cliutil.Usagef("unknown table %d", *table)
	}

	if *fig != 0 {
		switch *fig {
		case 1, 8, 9, 10, 11, 12, 13:
		default:
			// Validate before the (minutes-long) matrix run.
			cliutil.Usagef("unknown figure %d (want 1 or 8..13)", *fig)
		}
	}

	opts := harness.DefaultMatrixOptions()
	if *quick {
		opts = harness.QuickMatrixOptions()
	}
	if *cores > 0 {
		opts.Cores = *cores
	}
	if *ops > 0 {
		opts.OpsPerThread = *ops
	}
	if *seeds > 0 {
		opts.Seeds = opts.Seeds[:0]
		for s := 1; s <= *seeds; s++ {
			opts.Seeds = append(opts.Seeds, uint64(s))
		}
	}
	switch strings.ToLower(*ablation) {
	case "":
	case "discovery":
		opts.DisableDiscoveryContinuation = true
	case "lockall":
		opts.SCLLockAllReads = true
	default:
		cliutil.Usagef("unknown ablation %q", *ablation)
	}
	if *benchList != "" {
		names, err := benchSubset(*benchList)
		if err != nil {
			cliutil.Usage(err)
		}
		opts.Benchmarks = names
	}
	if *configsFlag != "" {
		cfgs, err := harness.ParseConfigs(*configsFlag)
		if err != nil {
			cliutil.Usage(err)
		}
		opts.Configs = cfgs
	}
	opts.Policy, err = policyFlag.Spec()
	if err != nil {
		cliutil.Usage(err)
	}

	opts.RunDeadline = *deadline

	store, err := sweepFlags.Store()
	if err != nil {
		cliutil.Usage(err)
	}
	if store != nil {
		// Guarded assignment: a typed-nil *Store inside the Backend
		// interface would read as attached.
		opts.Store = store
		fmt.Fprintf(os.Stderr, "clearbench: run cache at %s\n", store.Dir())
	}

	// Remote mode: every cell executes on the farm server; the local process
	// keeps only the aggregation, best-of selection, and rendering — which is
	// exactly what makes the remote output byte-identical to a local run.
	remoteStop := func() {}
	if *serviceFlags.Remote != "" {
		client := farm.NewClient(*serviceFlags.Remote)
		opts.Runner = client.Runner()
		remoteStop = startRemoteProgress(client)
		fmt.Fprintf(os.Stderr, "clearbench: executing on farm at %s\n", *serviceFlags.Remote)
	}
	defer remoteStop()

	if *frontier {
		if !opts.Policy.IsDefault() {
			cliutil.Usagef("-policy conflicts with -frontier: select the comparison set with -policies")
		}
		runFrontier(opts, *policiesFlag, *frontierFault, *csvPath)
		return
	}

	if *sweep {
		sw, err := harness.RunRetrySweep(opts)
		if err != nil {
			cliutil.Fatal(err)
		}
		sw.Print(os.Stdout)
		return
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops dispatching new
	// matrix cells (runs in flight finish) and the partial matrix is still
	// reported — and, with -cache-dir, every completed cell is already
	// persisted, so re-running with -resume picks up where this left off; a
	// second signal kills the process through the default handler.
	cancel := make(chan struct{})
	opts.Cancel = cancel
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "\nclearbench: %s — finishing runs in flight, reporting the partial matrix (send again to kill)\n", sig)
		signal.Stop(sigCh)
		close(cancel)
	}()
	start := time.Now()
	fmt.Fprintf(os.Stderr, "clearbench: running matrix: %d benchmarks x %d configs x %d retry limits x %d seeds (%d cores, %d ops/thread)\n",
		len(opts.Benchmarks), len(opts.Configs), len(opts.RetryLimits), len(opts.Seeds), opts.Cores, opts.OpsPerThread)
	m, err := harness.RunMatrix(opts)
	if err != nil {
		cliutil.Fatal(err)
	}
	signal.Stop(sigCh)
	remoteStop()
	interrupted := false
	select {
	case <-cancel:
		interrupted = true
	default:
	}
	fmt.Fprintf(os.Stderr, "clearbench: matrix done in %v\n", time.Since(start).Round(time.Millisecond))
	if store != nil {
		lookups := m.CacheHits + m.CacheMisses
		rate := 0.0
		if lookups > 0 {
			rate = 100 * float64(m.CacheHits) / float64(lookups)
		}
		fmt.Fprintf(os.Stderr, "clearbench: run cache: %d hits, %d misses (%.1f%% hits) in %s\n",
			m.CacheHits, m.CacheMisses, rate, store.Dir())
		if *sweepFlags.Resume {
			fmt.Fprintf(os.Stderr, "clearbench: resumed %d of %d cell runs from cache\n", m.CacheHits, lookups)
		}
	}
	fmt.Fprintln(os.Stderr)

	if len(m.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "clearbench: %d run(s) failed in isolation (cells aggregate the surviving seeds):\n", len(m.Failures))
		for _, fl := range m.Failures {
			fmt.Fprintf(os.Stderr, "  %s\n", fl.String())
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			cliutil.Fatal(err)
		}
		if err := m.WriteCSV(f); err != nil {
			cliutil.Fatal(err)
		}
		if err := f.Close(); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clearbench: wrote %s\n", *csvPath)
		if len(m.Failures) > 0 {
			failPath := *csvPath + ".failures.csv"
			ff, err := os.Create(failPath)
			if err != nil {
				cliutil.Fatal(err)
			}
			if err := m.WriteFailuresCSV(ff); err != nil {
				cliutil.Fatal(err)
			}
			if err := ff.Close(); err != nil {
				cliutil.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "clearbench: wrote %s\n", failPath)
		}
	}

	printers := map[int]func(){
		1:  func() { m.PrintFigure1(os.Stdout) },
		8:  func() { m.PrintFigure8(os.Stdout) },
		9:  func() { m.PrintFigure9(os.Stdout) },
		10: func() { m.PrintFigure10(os.Stdout) },
		11: func() { m.PrintFigure11(os.Stdout) },
		12: func() { m.PrintFigure12(os.Stdout) },
		13: func() { m.PrintFigure13(os.Stdout) },
	}
	if *fig != 0 {
		printers[*fig]()
	} else {
		if err := harness.PrintTable1(os.Stdout); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Println()
		harness.PrintTable2(os.Stdout, opts.Cores)
		for _, f := range []int{1, 8, 9, 10, 11, 12, 13} {
			fmt.Println()
			printers[f]()
		}
	}
	if interrupted {
		cliutil.Exit(130)
	}
	if len(m.Failures) > 0 {
		cliutil.Exit(cliutil.ExitFailure)
	}
}

// benchSubset validates a comma-separated benchmark list against the
// workload registry.
func benchSubset(arg string) ([]string, error) {
	known := make(map[string]bool)
	for _, n := range workload.Names() {
		known[n] = true
	}
	var names []string
	for _, n := range strings.Split(arg, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !known[n] {
			return nil, fmt.Errorf("unknown benchmark %q (see clearsim -list)", n)
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-benchmarks %q selects nothing", arg)
	}
	return names, nil
}

// runFrontier executes the policy-frontier sweep and renders its CSV and
// verdict.
func runFrontier(base harness.MatrixOptions, policiesArg, faultPreset, csvPath string) {
	fo := harness.FrontierOptions{
		Policies:    harness.DefaultFrontierPolicies(),
		Base:        base,
		FaultPreset: faultPreset,
	}
	if policiesArg != "" {
		specs, err := policy.ParseList(policiesArg)
		if err != nil {
			cliutil.Usage(err)
		}
		fo.Policies = specs
	}
	halves := 1
	if faultPreset != "" {
		halves = 2
	}
	fmt.Fprintf(os.Stderr, "clearbench: policy frontier: %d policies x %d benchmarks x %d configs x %d halves (%d cores, %d ops/thread)\n",
		len(fo.Policies), len(base.Benchmarks), len(base.Configs), halves, base.Cores, base.OpsPerThread)
	start := time.Now()
	f, err := harness.RunFrontier(fo)
	if err != nil {
		cliutil.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "clearbench: frontier done in %v\n", time.Since(start).Round(time.Millisecond))
	if base.Store != nil {
		fmt.Fprintf(os.Stderr, "clearbench: run cache: %d hits, %d misses\n", f.CacheHits, f.CacheMisses)
	}
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			cliutil.Fatal(err)
		}
		if err := f.WriteCSV(out); err != nil {
			cliutil.Fatal(err)
		}
		if err := out.Close(); err != nil {
			cliutil.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clearbench: wrote %s\n", csvPath)
	}
	if err := f.Summary(os.Stdout); err != nil {
		cliutil.Fatal(err)
	}
	if len(f.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "clearbench: %d frontier run(s) failed:\n", len(f.Failures))
		for _, fl := range f.Failures {
			fmt.Fprintf(os.Stderr, "  %s\n", fl.String())
		}
		cliutil.Exit(cliutil.ExitFailure)
	}
}

// runFarmServer runs the process as a sweep-farm server (internal/farm):
// an HTTP job queue over the run cache selected by the sweep flags. The
// first SIGINT/SIGTERM drains gracefully — no new jobs, accepted ones
// finish (jobs waiting out a retry backoff run immediately) — and the
// process exits once the queue is empty; a second signal kills it through
// the default handler, which with -cache-dir loses nothing but in-flight
// work: a restart over the same directory resumes the campaign.
func runFarmServer(addr string, sweepFlags *cliutil.SweepFlags, jobDeadline time.Duration) {
	store, err := sweepFlags.Store()
	if err != nil {
		cliutil.Usage(err)
	}
	live := trace.NewLive()
	live.Publish() // expvar: /debug/vars
	cfg := farm.Config{
		Retry:       farm.DefaultRetryPolicy(),
		JobDeadline: jobDeadline,
		Telemetry:   live,
		Metrics:     metrics.NewRegistry(),
	}
	if store != nil {
		cfg.Store = store
		fmt.Fprintf(os.Stderr, "clearbench: farm result store at %s\n", store.Dir())
	} else {
		fmt.Fprintln(os.Stderr, "clearbench: farm has no -cache-dir: results are not durable, a restart recomputes everything")
	}
	fs := farm.NewServer(cfg)

	mux := http.NewServeMux()
	mux.Handle("/", fs.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		signal.Stop(sigCh) // a second signal kills via the default handler
		fmt.Fprintf(os.Stderr, "\nclearbench: %s — draining farm: rejecting new jobs, finishing accepted ones (send again to kill)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		if err := fs.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "clearbench: drain:", err)
		}
		fs.Close()
		shutCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		_ = srv.Shutdown(shutCtx)
	}()

	fmt.Fprintf(os.Stderr, "clearbench: farm serving on http://%s (POST /matrix, GET /farm, /quarantine, /telemetry, /metrics)\n", addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		cliutil.Fatal(err)
	}
	st := fs.Stats()
	fmt.Fprintf(os.Stderr, "clearbench: farm drained: %d done, %d failed, %d quarantined | %d executions, %d cache hits, %d retries scheduled, %d dedup attaches\n",
		st.Done, st.Failed, st.Quarantined, st.Executed, st.CacheHits, st.RetriesScheduled, st.DedupAttached)
}

// startRemoteProgress streams sweep progress from the farm's live telemetry
// to stderr until the returned (idempotent) stop function is called.
func startRemoteProgress(client *farm.Client) func() {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				st, err := client.FarmStats()
				if err != nil {
					continue
				}
				snap, err := client.Telemetry()
				if err != nil {
					continue
				}
				fmt.Fprintf(os.Stderr, "clearbench: farm %d/%d jobs done (%d running, %d queued, %d backoff, %d quarantined) | %d runs finished, %d cache hits\n",
					st.Done, st.Total(), st.Running, st.Queued, st.Backoff, st.Quarantined,
					snap.RunsFinished, snap.CacheHits)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
