// Package mem models the simulated physical address space: a word-addressed
// backing store organised in 64-byte cachelines, plus the address arithmetic
// shared by the cache, directory, and CLEAR's lock tables.
package mem

import "fmt"

const (
	// LineSize is the cacheline size in bytes, matching the Icelake-like
	// configuration of the paper (Table 2).
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// WordSize is the access granularity of the mini-ISA (8 bytes).
	WordSize = 8
	// WordsPerLine is the number of 64-bit words in a cacheline.
	WordsPerLine = LineSize / WordSize
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// LineAddr identifies a cacheline (the address with the offset bits
// stripped); all coherence and locking state is keyed by LineAddr.
type LineAddr uint64

// Line returns the cacheline containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// Offset returns the byte offset of a within its cacheline.
func (a Addr) Offset() uint64 { return uint64(a) & (LineSize - 1) }

// WordIndex returns the index of the 64-bit word containing a within its
// line.
func (a Addr) WordIndex() int { return int(a.Offset() / WordSize) }

// Aligned reports whether a is 8-byte aligned. The mini-ISA only issues
// aligned accesses; the CPU checks this invariant.
func (a Addr) Aligned() bool { return a%WordSize == 0 }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Base returns the first byte address of the line.
func (l LineAddr) Base() Addr { return Addr(l << LineShift) }

func (l LineAddr) String() string { return fmt.Sprintf("L0x%x", uint64(l)) }

// SetIndex returns the cache/directory set this line maps to, for a
// structure with numSets sets (numSets must be a power of two).
func (l LineAddr) SetIndex(numSets int) int {
	return int(uint64(l) & uint64(numSets-1))
}
