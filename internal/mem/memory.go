package mem

import "fmt"

// Memory is the simulated physical memory: a sparse map from cacheline to
// its 8 words. Functional state lives here; timing and coherence live in the
// cache and directory models. Reads of never-written lines return zeros,
// like zero-filled pages.
type Memory struct {
	lines map[LineAddr]*[WordsPerLine]uint64

	// next is the allocation cursor used by Alloc.
	next Addr
}

// NewMemory returns an empty memory whose allocator starts at base. Keeping
// workload data away from address zero makes accidental nil-style addresses
// detectable.
func NewMemory(base Addr) *Memory {
	if !base.Aligned() {
		panic("mem: unaligned allocator base")
	}
	return &Memory{
		lines: make(map[LineAddr]*[WordsPerLine]uint64),
		next:  base,
	}
}

// ReadWord returns the 64-bit word at a, which must be aligned.
func (m *Memory) ReadWord(a Addr) uint64 {
	if !a.Aligned() {
		panic(fmt.Sprintf("mem: unaligned read at %s", a))
	}
	line, ok := m.lines[a.Line()]
	if !ok {
		return 0
	}
	return line[a.WordIndex()]
}

// WriteWord stores a 64-bit word at a, which must be aligned.
func (m *Memory) WriteWord(a Addr, v uint64) {
	if !a.Aligned() {
		panic(fmt.Sprintf("mem: unaligned write at %s", a))
	}
	line, ok := m.lines[a.Line()]
	if !ok {
		line = new([WordsPerLine]uint64)
		m.lines[a.Line()] = line
	}
	line[a.WordIndex()] = v
}

// Alloc reserves size bytes (rounded up to a whole number of words) and
// returns the base address. The alignment argument must be a power of two
// no smaller than WordSize; pass LineSize to get line-aligned (padded)
// allocations, which workloads use to place contended objects on distinct
// cachelines.
func (m *Memory) Alloc(size int, alignment int) Addr {
	if size <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	if alignment < WordSize || alignment&(alignment-1) != 0 {
		panic("mem: Alloc alignment must be a power of two >= WordSize")
	}
	mask := Addr(alignment - 1)
	base := (m.next + mask) &^ mask
	words := (size + WordSize - 1) / WordSize
	m.next = base + Addr(words*WordSize)
	return base
}

// AllocWords reserves n 64-bit words with the given alignment.
func (m *Memory) AllocWords(n int, alignment int) Addr {
	return m.Alloc(n*WordSize, alignment)
}

// AllocLine reserves one full line-aligned cacheline and returns its base.
func (m *Memory) AllocLine() Addr {
	return m.Alloc(LineSize, LineSize)
}

// FootprintLines reports how many distinct cachelines have been written.
func (m *Memory) FootprintLines() int { return len(m.lines) }

// Snapshot copies the content of the given lines; used by the HTM model to
// roll back speculative state on aborts when stores were drained (only the
// non-speculative NS-CL path writes memory directly, so in practice this is
// exercised by tests).
func (m *Memory) Snapshot(lines []LineAddr) map[LineAddr][WordsPerLine]uint64 {
	out := make(map[LineAddr][WordsPerLine]uint64, len(lines))
	for _, l := range lines {
		if data, ok := m.lines[l]; ok {
			out[l] = *data
		} else {
			out[l] = [WordsPerLine]uint64{}
		}
	}
	return out
}

// Restore writes back a snapshot taken with Snapshot.
func (m *Memory) Restore(snap map[LineAddr][WordsPerLine]uint64) {
	for l, data := range snap {
		copy := data
		m.lines[l] = &copy
	}
}
