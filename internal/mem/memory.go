package mem

import (
	"fmt"
	"math/bits"
)

// Memory is the simulated physical memory. Functional state lives here;
// timing and coherence live in the cache and directory models. Reads of
// never-written lines return zeros, like zero-filled pages.
//
// Storage is a dense word array covering the allocator's arena [origin,
// next): workloads allocate a contiguous region up front, so a flat slice
// indexed by (addr-origin)/8 replaces the per-line map-of-pointer-to-array
// layout that cost one heap node per touched cacheline and a hash probe per
// access. Writes outside the arena (nothing in-tree produces them, but the
// API allows any address) fall back to a sparse overflow map.
type Memory struct {
	// origin is the line-aligned start of the dense region; words[i] backs
	// the address origin + i*WordSize.
	origin Addr
	words  []uint64
	// lineW has one bit per dense line (set once the line has been written),
	// so FootprintLines stays exact without a per-line structure.
	lineW []uint64
	// overflow holds lines written below origin or past the grown dense
	// region; nil until needed.
	overflow map[LineAddr]*[WordsPerLine]uint64

	// next is the allocation cursor used by Alloc.
	next Addr
}

// NewMemory returns an empty memory whose allocator starts at base. Keeping
// workload data away from address zero makes accidental nil-style addresses
// detectable.
func NewMemory(base Addr) *Memory {
	if !base.Aligned() {
		panic("mem: unaligned allocator base")
	}
	return &Memory{
		origin: base &^ Addr(LineSize-1),
		next:   base,
	}
}

const wordsPerLineShift = 3 // log2(WordsPerLine)

// denseIndex returns the word index of a within the dense region, or ok=false
// when a precedes the origin.
func (m *Memory) denseIndex(a Addr) (int, bool) {
	if a < m.origin {
		return 0, false
	}
	return int((a - m.origin) / WordSize), true
}

// ensure grows the dense region to cover word index i (whole lines).
func (m *Memory) ensure(i int) {
	need := (i + WordsPerLine) &^ (WordsPerLine - 1)
	if need <= len(m.words) {
		return
	}
	if c := 2 * len(m.words); need < c {
		need = c
	}
	if need < 8*WordsPerLine {
		need = 8 * WordsPerLine
	}
	words := make([]uint64, need)
	copy(words, m.words)
	m.words = words
	lineW := make([]uint64, (need>>wordsPerLineShift+63)/64)
	copy(lineW, m.lineW)
	m.lineW = lineW
}

// ReadWord returns the 64-bit word at a, which must be aligned.
func (m *Memory) ReadWord(a Addr) uint64 {
	if !a.Aligned() {
		panic(fmt.Sprintf("mem: unaligned read at %s", a))
	}
	if i, ok := m.denseIndex(a); ok {
		if i < len(m.words) {
			return m.words[i]
		}
		return 0
	}
	if line, ok := m.overflow[a.Line()]; ok {
		return line[a.WordIndex()]
	}
	return 0
}

// WriteWord stores a 64-bit word at a, which must be aligned.
func (m *Memory) WriteWord(a Addr, v uint64) {
	if !a.Aligned() {
		panic(fmt.Sprintf("mem: unaligned write at %s", a))
	}
	if i, ok := m.denseIndex(a); ok {
		if i >= len(m.words) {
			m.ensure(i)
		}
		m.words[i] = v
		li := i >> wordsPerLineShift
		m.lineW[li>>6] |= 1 << (uint(li) & 63)
		return
	}
	if m.overflow == nil {
		m.overflow = make(map[LineAddr]*[WordsPerLine]uint64)
	}
	line, ok := m.overflow[a.Line()]
	if !ok {
		line = new([WordsPerLine]uint64)
		m.overflow[a.Line()] = line
	}
	line[a.WordIndex()] = v
}

// Alloc reserves size bytes (rounded up to a whole number of words) and
// returns the base address. The alignment argument must be a power of two
// no smaller than WordSize; pass LineSize to get line-aligned (padded)
// allocations, which workloads use to place contended objects on distinct
// cachelines.
func (m *Memory) Alloc(size int, alignment int) Addr {
	if size <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	if alignment < WordSize || alignment&(alignment-1) != 0 {
		panic("mem: Alloc alignment must be a power of two >= WordSize")
	}
	mask := Addr(alignment - 1)
	base := (m.next + mask) &^ mask
	words := (size + WordSize - 1) / WordSize
	m.next = base + Addr(words*WordSize)
	// Pre-size the dense region to the arena high-water mark so steady-state
	// writes never grow it.
	if i, ok := m.denseIndex(m.next - WordSize); ok {
		m.ensure(i)
	}
	return base
}

// AllocWords reserves n 64-bit words with the given alignment.
func (m *Memory) AllocWords(n int, alignment int) Addr {
	return m.Alloc(n*WordSize, alignment)
}

// AllocLine reserves one full line-aligned cacheline and returns its base.
func (m *Memory) AllocLine() Addr {
	return m.Alloc(LineSize, LineSize)
}

// FootprintLines reports how many distinct cachelines have been written.
func (m *Memory) FootprintLines() int {
	n := len(m.overflow)
	for _, w := range m.lineW {
		n += bits.OnesCount64(w)
	}
	return n
}

// Snapshot copies the content of the given lines; used by the HTM model to
// roll back speculative state on aborts when stores were drained (only the
// non-speculative NS-CL path writes memory directly, so in practice this is
// exercised by tests).
func (m *Memory) Snapshot(lines []LineAddr) map[LineAddr][WordsPerLine]uint64 {
	out := make(map[LineAddr][WordsPerLine]uint64, len(lines))
	for _, l := range lines {
		var data [WordsPerLine]uint64
		a := l.Base()
		for w := 0; w < WordsPerLine; w++ {
			data[w] = m.ReadWord(a + Addr(w*WordSize))
		}
		out[l] = data
	}
	return out
}

// Restore writes back a snapshot taken with Snapshot.
func (m *Memory) Restore(snap map[LineAddr][WordsPerLine]uint64) {
	for l, data := range snap {
		a := l.Base()
		for w := 0; w < WordsPerLine; w++ {
			m.WriteWord(a+Addr(w*WordSize), data[w])
		}
	}
}
