package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrLineArithmetic(t *testing.T) {
	cases := []struct {
		addr Addr
		line LineAddr
		off  uint64
		word int
	}{
		{0, 0, 0, 0},
		{63, 0, 63, 7},
		{64, 1, 0, 0},
		{0x1238, 0x48, 0x38, 7},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("%s.Line() = %v, want %v", c.addr, got, c.line)
		}
		if got := c.addr.Offset(); got != c.off {
			t.Errorf("%s.Offset() = %d, want %d", c.addr, got, c.off)
		}
		if got := c.addr.WordIndex(); got != c.word {
			t.Errorf("%s.WordIndex() = %d, want %d", c.addr, got, c.word)
		}
	}
}

// TestAddrRoundTrip: line base + offset reconstructs the address.
func TestAddrRoundTrip(t *testing.T) {
	prop := func(raw uint64) bool {
		a := Addr(raw)
		return Addr(uint64(a.Line().Base())+a.Offset()) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSetIndexBounded: set indices stay within [0, numSets).
func TestSetIndexBounded(t *testing.T) {
	prop := func(raw uint64, setsExp uint8) bool {
		sets := 1 << (setsExp % 14)
		idx := LineAddr(raw).SetIndex(sets)
		return idx >= 0 && idx < sets
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory(0x1000)
	if got := m.ReadWord(0x2000); got != 0 {
		t.Fatalf("unwritten word = %d, want 0", got)
	}
	m.WriteWord(0x2000, 0xdeadbeef)
	if got := m.ReadWord(0x2000); got != 0xdeadbeef {
		t.Fatalf("read back %#x", got)
	}
	// Neighbouring words are independent.
	m.WriteWord(0x2008, 7)
	if got := m.ReadWord(0x2000); got != 0xdeadbeef {
		t.Fatalf("neighbour write clobbered word: %#x", got)
	}
}

func TestMemoryUnalignedPanics(t *testing.T) {
	m := NewMemory(0x1000)
	for _, f := range []func(){
		func() { m.ReadWord(0x2001) },
		func() { m.WriteWord(0x2003, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestAllocAlignment(t *testing.T) {
	m := NewMemory(0x1000)
	a := m.Alloc(8, 8)
	b := m.AllocLine()
	c := m.Alloc(24, 8)
	d := m.AllocLine()
	if a%8 != 0 || c%8 != 0 {
		t.Fatal("word allocations unaligned")
	}
	if b%LineSize != 0 || d%LineSize != 0 {
		t.Fatal("line allocations unaligned")
	}
	if b.Line() == d.Line() {
		t.Fatal("distinct line allocations share a cacheline")
	}
	if c >= d || b >= c {
		t.Fatal("allocator not monotonic")
	}
}

// TestAllocNoOverlap: random allocation sequences never overlap.
func TestAllocNoOverlap(t *testing.T) {
	prop := func(sizes []uint8) bool {
		m := NewMemory(0x1000)
		type region struct{ lo, hi Addr }
		var regions []region
		for _, s := range sizes {
			size := int(s%200) + 1
			align := 8
			if s%2 == 0 {
				align = LineSize
			}
			base := m.Alloc(size, align)
			words := (size + WordSize - 1) / WordSize
			regions = append(regions, region{base, base + Addr(words*WordSize)})
		}
		for i := 1; i < len(regions); i++ {
			if regions[i].lo < regions[i-1].hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := NewMemory(0x1000)
	a := m.AllocLine()
	b := m.AllocLine()
	m.WriteWord(a, 1)
	m.WriteWord(b, 2)
	snap := m.Snapshot([]LineAddr{a.Line(), b.Line()})
	m.WriteWord(a, 100)
	m.WriteWord(b+8, 200)
	m.Restore(snap)
	if m.ReadWord(a) != 1 || m.ReadWord(b) != 2 || m.ReadWord(b+8) != 0 {
		t.Fatal("restore did not reinstate snapshot")
	}
}
