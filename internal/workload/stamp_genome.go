package workload

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("genome", func() Benchmark { return newGenome() }) }

// genome: gene-sequence assembly. The kernel keeps the five mutable ARs of
// Table 1: segment-table deduplication (insert/remove/scan on one hot chain)
// and per-contig gene insertion over sharded chains, plus draining the
// construction worklist. Balanced insert/remove traffic keeps the chains at
// steady-state length, like genome's dedup phase.
type genome struct {
	kit
	insSegment, remSegment, scanSegment *isa.Program
	insGene, popWork                    *isa.Program

	segments []mem.Addr // sharded dedup chains
	genes    []mem.Addr // sharded per-contig chains
	worklist mem.Addr
	led      ledgers // 0 segNet, 1 geneInserts, 2 workPops
	results  []mem.Addr

	initialSegs, initialGenes, initialWork int
	keyRange                               int
}

func newGenome() *genome {
	return &genome{
		insSegment:  arListInsertSorted(1, "genome/insertSegment"),
		remSegment:  arListRemoveKey(2, "genome/removeSegment"),
		scanSegment: arListSearchCount(3, "genome/scanSegments"),
		insGene:     arListInsertSorted(4, "genome/insertGene"),
		popWork:     arListPopHead(5, "genome/popConstruct"),
		keyRange:    48,
	}
}

func (g *genome) Name() string { return "genome" }

func (g *genome) ARs() []*isa.Program {
	return []*isa.Program{g.insSegment, g.remSegment, g.scanSegment, g.insGene, g.popWork}
}

func (g *genome) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	g.mm = mm
	seedSorted := func(n int) mem.Addr {
		keys := make([]uint64, n)
		prev := uint64(0)
		for i := range keys {
			prev += uint64(1 + rng.Intn(3))
			keys[i] = prev
		}
		return buildSortedList(mm, keys)
	}
	// The dedup table is sharded like genome's wide hash table: conflicts
	// are rare, but chain traversals plus the segment payload give the ARs
	// footprints the discovery window often cannot hold.
	const segShards = 48
	g.segments = make([]mem.Addr, segShards)
	for i := range g.segments {
		g.segments[i] = seedSorted(8)
	}
	g.initialSegs = segShards * 8
	const shards = 16
	g.genes = make([]mem.Addr, shards)
	for i := range g.genes {
		g.genes[i] = seedSorted(8)
	}
	g.initialGenes = shards * 8
	g.initialWork = 8192
	g.worklist = buildUnitList(mm, rng, g.initialWork, g.keyRange)
	g.led = newLedgers(mm, threads)
	g.results = make([]mem.Addr, threads)
	for i := range g.results {
		g.results[i] = mm.AllocLine()
	}
	return nil
}

func (g *genome) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	segNet := g.led.slot(tid, 0)
	geneIns := g.led.slot(tid, 1)
	workPop := g.led.slot(tid, 2)
	res := g.results[tid]
	shardGen := func(inner func(header mem.Addr) opGen) opGen {
		return func(rng *sim.RNG) cpu.Invocation {
			return inner(g.segments[rng.Intn(len(g.segments))])(rng)
		}
	}
	geneGen := func(rng *sim.RNG) cpu.Invocation {
		shard := g.genes[rng.Intn(len(g.genes))]
		return g.genListInsert(g.insGene, shard, geneIns, g.keyRange, new(uint64))(rng)
	}
	return buildMix(rng, ops, 220, []mixEntry{
		{weight: 25, gen: shardGen(func(h mem.Addr) opGen {
			return g.genListInsert(g.insSegment, h, segNet, g.keyRange, new(uint64))
		})},
		{weight: 25, gen: shardGen(func(h mem.Addr) opGen {
			return g.genListRemove(g.remSegment, h, segNet, g.keyRange)
		})},
		{weight: 20, gen: shardGen(func(h mem.Addr) opGen {
			return g.genListScan(g.scanSegment, h, res, g.keyRange)
		})},
		{weight: 20, gen: geneGen},
		{weight: 10, gen: g.genPop(g.popWork, g.worklist, workPop)},
	})
}

func (g *genome) Verify(mm *mem.Memory) error {
	segs := 0
	for _, shard := range g.segments {
		n, err := listLen(mm, shard)
		if err != nil {
			return err
		}
		segs += n
	}
	if err := verifyCount("genome: segment chains", int64(segs), int64(g.initialSegs)+int64(g.led.sum(mm, 0))); err != nil {
		return err
	}
	genes := 0
	for _, shard := range g.genes {
		n, err := listLen(mm, shard)
		if err != nil {
			return err
		}
		genes += n
	}
	if err := verifyCount("genome: gene chains", int64(genes), int64(g.initialGenes)+int64(g.led.sum(mm, 1))); err != nil {
		return err
	}
	work, err := plainListLen(mm, g.worklist)
	if err != nil {
		return err
	}
	return verifyCount("genome: worklist", int64(work), int64(g.initialWork)-int64(g.led.sum(mm, 2)))
}
