package workload

import (
	"repro/internal/cpu"
	"repro/internal/sim"
)

// opGen generates one invocation of a particular AR with fresh parameters.
type opGen func(rng *sim.RNG) cpu.Invocation

// mixEntry pairs an operation generator with its relative weight in the
// benchmark's operation mix.
type mixEntry struct {
	weight int
	gen    opGen
}

// buildMix pre-generates ops invocations drawn from the weighted mix. The
// stream is pre-generated (not lazy) so the benchmark can record exact
// per-operation expectations for Verify before the run starts.
func buildMix(rng *sim.RNG, ops int, thinkMax int, entries []mixEntry) *cpu.SliceSource {
	total := 0
	for _, e := range entries {
		total += e.weight
	}
	invs := make([]cpu.Invocation, 0, ops)
	for i := 0; i < ops; i++ {
		pick := rng.Intn(total)
		var gen opGen
		for _, e := range entries {
			if pick < e.weight {
				gen = e.gen
				break
			}
			pick -= e.weight
		}
		inv := gen(rng)
		if thinkMax > 0 {
			inv.Think = sim.Tick(rng.Intn(thinkMax))
		}
		invs = append(invs, inv)
	}
	return &cpu.SliceSource{Invs: invs}
}

// regs is shorthand for building an invocation's register presets.
func regs(pairs ...cpu.RegInit) []cpu.RegInit { return pairs }
