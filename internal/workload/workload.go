// Package workload provides the nineteen benchmarks of the paper's
// evaluation (§6) rebuilt over the simulated memory: the data-structure
// microbenchmarks (arrayswap, bst, deque, hashmap, queue, stack,
// sorted-list), the two applications (bitcoin, mwobject), and synthetic
// equivalents of the STAMP suite. Each benchmark constructs its data
// structures in simulated memory, exposes its atomic regions as mini-ISA
// programs whose static mutability matches Table 1, generates per-thread
// invocation streams, and verifies an end-to-end invariant after the run.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Benchmark is one workload instance. Instances are single-use: Setup,
// Source (once per thread), run, Verify.
type Benchmark interface {
	// Name is the registry key, matching the paper's label.
	Name() string
	// ARs returns every atomic-region program the benchmark can execute
	// (the Table 1 population).
	ARs() []*isa.Program
	// Setup builds the benchmark's data structures in simulated memory.
	Setup(mm *mem.Memory, rng *sim.RNG, threads int) error
	// Source returns thread tid's invocation stream of ops operations.
	// Setup must have run first.
	Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource
	// Verify checks the benchmark's end-to-end invariant against the final
	// memory image; every generated invocation is guaranteed to have
	// committed exactly once.
	Verify(mm *mem.Memory) error
}

// Factory creates a fresh benchmark instance.
type Factory func() Benchmark

var registry = map[string]Factory{}

// register adds a benchmark factory; called from init functions.
func register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate benchmark %q", name))
	}
	registry[name] = f
}

// New instantiates a registered benchmark.
func New(name string) (Benchmark, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return f(), nil
}

// Names returns all registered benchmark names in the paper's presentation
// order (data structures, applications, then STAMP).
func Names() []string {
	order := []string{
		"arrayswap", "bitcoin", "bst", "deque", "hashmap", "mwobject",
		"queue", "stack", "sorted-list",
		"bayes", "genome", "intruder", "kmeans-h", "kmeans-l", "labyrinth",
		"ssca2", "vacation-h", "vacation-l", "yada",
	}
	seen := make(map[string]bool, len(order))
	var out []string
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range registry {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
