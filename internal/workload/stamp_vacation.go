package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() {
	register("vacation-h", func() Benchmark { return newVacation("vacation-h", 768, 512) })
	register("vacation-l", func() Benchmark { return newVacation("vacation-l", 3072, 2048) })
}

// vacation: a travel reservation system over in-memory trees. Table 1: two
// mutable ARs (reserve = tree update, add-resource = tree insert) and one
// likely-immutable AR (customer-balance update through the read-only
// customer pointer table). The -h variant uses a narrower key range,
// touching a hotter region of the tree.
type vacation struct {
	kit
	name     string
	keyRange int
	seedSize int

	reserve *isa.Program
	addRes  *isa.Program
	updCust *isa.Program

	header    mem.Addr
	customers ptrTable
	led       ledgers // 0: inserts

	initialSize int
	inserts     uint64
	custExpect  uint64
}

func newVacation(name string, keyRange, seedSize int) *vacation {
	return &vacation{
		name:     name,
		keyRange: keyRange,
		seedSize: seedSize,
		reserve:  arTreeUpdate(1, name+"/reserve"),
		addRes:   arTreeInsert(2, name+"/addResource"),
		updCust:  arPtrRMW(3, name+"/updateCustomer", 1, true),
	}
}

func (v *vacation) Name() string        { return v.name }
func (v *vacation) ARs() []*isa.Program { return []*isa.Program{v.reserve, v.addRes, v.updCust} }

func (v *vacation) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	v.mm = mm
	v.header = mm.AllocLine()
	root := allocTreeNode(mm, uint64(v.keyRange/2))
	mm.WriteWord(v.header, uint64(root))
	for i := 0; i < v.seedSize-1; i++ {
		k := uint64(1 + rng.Intn(v.keyRange))
		goInsert(mm, root, allocTreeNode(mm, k), k)
	}
	v.initialSize = v.seedSize
	v.customers = buildPtrTable(mm, 64)
	v.led = newLedgers(mm, threads)
	return nil
}

func (v *vacation) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	sizeLedger := uint64(v.led.slot(tid, 0))
	src := buildMix(rng, ops, 200, []mixEntry{
		{weight: 45, gen: func(rng *sim.RNG) cpu.Invocation {
			return cpu.Invocation{Prog: v.reserve, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(v.header)},
				cpu.RegInit{Reg: isa.R1, Val: uint64(1 + rng.Intn(v.keyRange))},
				cpu.RegInit{Reg: isa.R5, Val: uint64(1 + rng.Intn(4))},
			)}
		}},
		{weight: 25, gen: func(rng *sim.RNG) cpu.Invocation {
			k := uint64(1 + rng.Intn(v.keyRange))
			return cpu.Invocation{Prog: v.addRes, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(v.header)},
				cpu.RegInit{Reg: isa.R1, Val: k},
				cpu.RegInit{Reg: isa.R2, Val: uint64(0)}, // node; filled below
				cpu.RegInit{Reg: isa.R3, Val: sizeLedger},
			)}
		}},
		{weight: 30, gen: v.genPtrRMW(v.updCust, v.customers, 1, 16, &v.custExpect)},
	})
	for i := range src.Invs {
		inv := &src.Invs[i]
		if inv.Prog == v.addRes {
			k := inv.Regs[1].Val
			inv.Regs[2].Val = uint64(allocTreeNode(v.mm, k))
			v.inserts++
		}
	}
	return src
}

func (v *vacation) Verify(mm *mem.Memory) error {
	root := mem.Addr(mm.ReadWord(v.header))
	count := 0
	var walk func(n mem.Addr, lo, hi uint64) error
	walk = func(n mem.Addr, lo, hi uint64) error {
		if n == 0 {
			return nil
		}
		if count++; count > 1<<22 {
			return fmt.Errorf("%s: tree appears cyclic", v.name)
		}
		k := mm.ReadWord(n + offKey)
		if k < lo || k > hi {
			return fmt.Errorf("%s: key %d violates BST bounds [%d,%d]", v.name, k, lo, hi)
		}
		if err := walk(mem.Addr(mm.ReadWord(n+offLeft)), lo, k-1); err != nil {
			return err
		}
		return walk(mem.Addr(mm.ReadWord(n+offRight)), k, hi)
	}
	if err := walk(root, 0, ^uint64(0)); err != nil {
		return err
	}
	if err := verifyCount(v.name+": tree size", int64(count), int64(v.initialSize)+int64(v.inserts)); err != nil {
		return err
	}
	if err := verifyCount(v.name+": insert ledger", int64(v.led.sum(mm, 0)), int64(v.inserts)); err != nil {
		return err
	}
	return verifyCount(v.name+": customer balances", int64(v.customers.targetSum(mm)), int64(v.custExpect))
}
