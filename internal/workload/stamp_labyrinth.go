package workload

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("labyrinth", func() Benchmark { return newLabyrinth() }) }

// labyrinth: maze routing. The dominant AR claims a privately-computed route
// of 36..72 grid cells in one atomic region — far past the 32-entry ALT, so
// discovery marks it non-convertible and the region lives on the
// speculative-retry/fallback path, reproducing the paper's fallback-heavy,
// serialisation-prone profile. The two list ARs manage the pending-work and
// results lists.
type labyrinth struct {
	kit
	claim      *isa.Program
	popWork    *isa.Program
	pushResult *isa.Program

	cells    []mem.Addr
	worklist mem.Addr
	results  mem.Addr
	led      ledgers // 0 workPops, 1 resultPushes

	initialWork int
	claimExpect uint64
	pushes      uint64
}

func newLabyrinth() *labyrinth {
	return &labyrinth{
		claim:      arBulkRoute(1, "labyrinth/claimRoute"),
		popWork:    arListPopHead(2, "labyrinth/popWork"),
		pushResult: arListPushHead(3, "labyrinth/pushResult", false),
	}
}

func (l *labyrinth) Name() string        { return "labyrinth" }
func (l *labyrinth) ARs() []*isa.Program { return []*isa.Program{l.claim, l.popWork, l.pushResult} }

func (l *labyrinth) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	l.mm = mm
	const grid = 512
	l.cells = make([]mem.Addr, grid)
	for i := range l.cells {
		l.cells[i] = mm.AllocLine()
	}
	l.initialWork = 4096
	l.worklist = buildUnitList(mm, rng, l.initialWork, 256)
	l.results = mm.AllocLine()
	l.led = newLedgers(mm, threads)
	return nil
}

func (l *labyrinth) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	workPop := l.led.slot(tid, 0)
	resPush := l.led.slot(tid, 1)
	return buildMix(rng, ops, 300, []mixEntry{
		{weight: 50, gen: l.genBulkRoute(l.claim, l.cells, 36, 72, &l.claimExpect)},
		{weight: 25, gen: l.genPop(l.popWork, l.worklist, workPop)},
		{weight: 25, gen: l.genPush(l.pushResult, l.results, resPush, &l.pushes)},
	})
}

func (l *labyrinth) Verify(mm *mem.Memory) error {
	var cellSum uint64
	for _, c := range l.cells {
		cellSum += mm.ReadWord(c)
	}
	if err := verifyCount("labyrinth: claimed cells", int64(cellSum), int64(l.claimExpect)); err != nil {
		return err
	}
	work, err := plainListLen(mm, l.worklist)
	if err != nil {
		return err
	}
	if err := verifyCount("labyrinth: worklist", int64(work), int64(l.initialWork)-int64(l.led.sum(mm, 0))); err != nil {
		return err
	}
	res, err := plainListLen(mm, l.results)
	if err != nil {
		return err
	}
	return verifyCount("labyrinth: results list", int64(res), int64(l.led.sum(mm, 1)))
}
