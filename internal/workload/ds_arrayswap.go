package workload

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("arrayswap", func() Benchmark { return newArrayswap() }) }

// arrayswap [15]: threads atomically exchange (or rotate) elements of a
// shared array. Both ARs access only preset addresses — the Immutable
// archetype of Listing 1.
type arrayswap struct {
	swap    *isa.Program
	rotate  *isa.Program
	slots   []mem.Addr
	initial []uint64
}

func newArrayswap() *arrayswap {
	return &arrayswap{
		swap:   arSwap(1),
		rotate: arRotate3(2),
	}
}

func (a *arrayswap) Name() string        { return "arrayswap" }
func (a *arrayswap) ARs() []*isa.Program { return []*isa.Program{a.swap, a.rotate} }

func (a *arrayswap) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	const n = 96 // hot enough for conflicts at 32 threads
	a.slots = make([]mem.Addr, n)
	a.initial = make([]uint64, n)
	for i := range a.slots {
		a.slots[i] = mm.AllocLine()
		a.initial[i] = 1000 + uint64(i)
		mm.WriteWord(a.slots[i], a.initial[i])
	}
	return nil
}

func (a *arrayswap) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	pick := func(rng *sim.RNG, exclude ...int) int {
		for {
			i := rng.Intn(len(a.slots))
			ok := true
			for _, e := range exclude {
				if i == e {
					ok = false
					break
				}
			}
			if ok {
				return i
			}
		}
	}
	return buildMix(rng, ops, 120, []mixEntry{
		{weight: 70, gen: func(rng *sim.RNG) cpu.Invocation {
			i := pick(rng)
			j := pick(rng, i)
			return cpu.Invocation{Prog: a.swap, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(a.slots[i])},
				cpu.RegInit{Reg: isa.R1, Val: uint64(a.slots[j])},
			)}
		}},
		{weight: 30, gen: func(rng *sim.RNG) cpu.Invocation {
			i := pick(rng)
			j := pick(rng, i)
			k := pick(rng, i, j)
			return cpu.Invocation{Prog: a.rotate, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(a.slots[i])},
				cpu.RegInit{Reg: isa.R1, Val: uint64(a.slots[j])},
				cpu.RegInit{Reg: isa.R2, Val: uint64(a.slots[k])},
			)}
		}},
	})
}

func (a *arrayswap) Verify(mm *mem.Memory) error {
	got := make([]uint64, len(a.slots))
	for i, s := range a.slots {
		got[i] = mm.ReadWord(s)
	}
	want := append([]uint64(nil), a.initial...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("arrayswap: element multiset changed at rank %d: got %d want %d", i, got[i], want[i])
		}
	}
	return nil
}
