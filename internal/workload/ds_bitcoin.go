package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("bitcoin", func() Benchmark { return newBitcoin() }) }

// bitcoin [23]: transfers between wallets reached through a pointer table —
// Listing 2's conditionally-immutable AR: the wallet addresses are loaded
// inside the region, but no concurrent AR ever rewrites the pointer table.
type bitcoin struct {
	transfer *isa.Program
	table    mem.Addr
	wallets  []mem.Addr
	total    uint64
}

func newBitcoin() *bitcoin { return &bitcoin{transfer: arPtrTransfer(1)} }

func (b *bitcoin) Name() string        { return "bitcoin" }
func (b *bitcoin) ARs() []*isa.Program { return []*isa.Program{b.transfer} }

func (b *bitcoin) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	const n = 64
	const initialBalance = 1_000_000
	b.table = mm.AllocWords(n, mem.LineSize)
	b.wallets = make([]mem.Addr, n)
	for i := 0; i < n; i++ {
		w := mm.AllocLine()
		b.wallets[i] = w
		mm.WriteWord(w, initialBalance)
		mm.WriteWord(b.table+mem.Addr(i*8), uint64(w))
	}
	b.total = uint64(n) * initialBalance
	return nil
}

func (b *bitcoin) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	n := len(b.wallets)
	return buildMix(rng, ops, 150, []mixEntry{
		{weight: 1, gen: func(rng *sim.RNG) cpu.Invocation {
			from := rng.Intn(n)
			to := rng.Intn(n - 1)
			if to >= from {
				to++
			}
			amount := uint64(1 + rng.Intn(50))
			return cpu.Invocation{Prog: b.transfer, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(b.table + mem.Addr(from*8))},
				cpu.RegInit{Reg: isa.R1, Val: uint64(b.table + mem.Addr(to*8))},
				cpu.RegInit{Reg: isa.R2, Val: amount},
			)}
		}},
	})
}

func (b *bitcoin) Verify(mm *mem.Memory) error {
	var sum uint64
	for _, w := range b.wallets {
		sum += mm.ReadWord(w)
	}
	if sum != b.total {
		return fmt.Errorf("bitcoin: total balance %d, want %d (coins created or destroyed)", sum, b.total)
	}
	return nil
}
