package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("bst", func() Benchmark { return newBST() }) }

// bst [20, 33]: a binary search tree exercised with inserts, in-place
// updates, and lookups. All three ARs traverse loaded pointers — Mutable in
// Table 1 — yet while the tree is small they convert to S-CL at runtime,
// the surprise the paper notes for Figure 12.
type bst struct {
	insert *isa.Program
	update *isa.Program
	search *isa.Program

	mm          *mem.Memory
	header      mem.Addr
	rootKey     uint64
	led         ledgers
	results     []mem.Addr
	initialSize int
	inserts     uint64
	keyRange    int
}

func newBST() *bst {
	return &bst{
		insert:   arTreeInsert(1, "bst/insert"),
		update:   arTreeUpdate(2, "bst/update"),
		search:   arTreeSearch(3, "bst/search"),
		keyRange: 1024,
	}
}

func (b *bst) Name() string        { return "bst" }
func (b *bst) ARs() []*isa.Program { return []*isa.Program{b.insert, b.update, b.search} }

// goInsert mirrors arTreeInsert's semantics for host-side seeding: duplicate
// or larger keys descend right, smaller descend left.
func goInsert(mm *mem.Memory, root mem.Addr, node mem.Addr, key uint64) {
	cur := root
	for {
		ck := mm.ReadWord(cur + offKey)
		if key < ck {
			l := mm.ReadWord(cur + offLeft)
			if l == 0 {
				mm.WriteWord(cur+offLeft, uint64(node))
				return
			}
			cur = mem.Addr(l)
		} else {
			r := mm.ReadWord(cur + offRight)
			if r == 0 {
				mm.WriteWord(cur+offRight, uint64(node))
				return
			}
			cur = mem.Addr(r)
		}
	}
}

func allocTreeNode(mm *mem.Memory, key uint64) mem.Addr {
	n := mm.AllocLine()
	mm.WriteWord(n+offKey, key)
	return n
}

func (b *bst) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	b.mm = mm
	b.header = mm.AllocLine()
	b.rootKey = uint64(b.keyRange / 2)
	root := allocTreeNode(mm, b.rootKey)
	mm.WriteWord(b.header, uint64(root))

	const seedNodes = 255
	for i := 0; i < seedNodes; i++ {
		k := uint64(1 + rng.Intn(b.keyRange))
		goInsert(mm, root, allocTreeNode(mm, k), k)
	}
	b.initialSize = 1 + seedNodes

	b.led = newLedgers(mm, threads)
	b.results = make([]mem.Addr, threads)
	for i := range b.results {
		b.results[i] = mm.AllocLine()
	}
	return nil
}

func (b *bst) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	sizeLedger := uint64(b.led.slot(tid, 0))
	result := uint64(b.results[tid])
	key := func(rng *sim.RNG) uint64 { return uint64(1 + rng.Intn(b.keyRange)) }
	src := buildMix(rng, ops, 150, []mixEntry{
		{weight: 35, gen: func(rng *sim.RNG) cpu.Invocation {
			k := key(rng)
			return cpu.Invocation{Prog: b.insert, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(b.header)},
				cpu.RegInit{Reg: isa.R1, Val: k},
				cpu.RegInit{Reg: isa.R2, Val: uint64(0)}, // node; filled below
				cpu.RegInit{Reg: isa.R3, Val: sizeLedger},
			)}
		}},
		{weight: 35, gen: func(rng *sim.RNG) cpu.Invocation {
			return cpu.Invocation{Prog: b.update, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(b.header)},
				cpu.RegInit{Reg: isa.R1, Val: key(rng)},
				cpu.RegInit{Reg: isa.R5, Val: uint64(1 + rng.Intn(9))},
			)}
		}},
		{weight: 30, gen: func(rng *sim.RNG) cpu.Invocation {
			return cpu.Invocation{Prog: b.search, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(b.header)},
				cpu.RegInit{Reg: isa.R1, Val: key(rng)},
				cpu.RegInit{Reg: isa.R2, Val: result},
			)}
		}},
	})
	// Pre-allocate a fresh node for every insert invocation (the node
	// address must be fixed across retries, like the host code's malloc
	// before the atomic region).
	for i := range src.Invs {
		inv := &src.Invs[i]
		if inv.Prog == b.insert {
			k := inv.Regs[1].Val
			inv.Regs[2].Val = uint64(allocTreeNode(b.mm, k))
			b.inserts++
		}
	}
	return src
}

func (b *bst) Verify(mm *mem.Memory) error {
	root := mem.Addr(mm.ReadWord(b.header))
	count := 0
	var walk func(n mem.Addr, lo, hi uint64) error
	walk = func(n mem.Addr, lo, hi uint64) error {
		if n == 0 {
			return nil
		}
		count++
		if count > 1<<22 {
			return fmt.Errorf("bst: tree appears cyclic")
		}
		k := mm.ReadWord(n + offKey)
		if k < lo || k > hi {
			return fmt.Errorf("bst: key %d at %s violates BST bounds [%d,%d]", k, n, lo, hi)
		}
		if err := walk(mem.Addr(mm.ReadWord(n+offLeft)), lo, k-1); err != nil {
			return err
		}
		return walk(mem.Addr(mm.ReadWord(n+offRight)), k, hi)
	}
	if err := walk(root, 0, ^uint64(0)); err != nil {
		return err
	}
	want := b.initialSize + int(b.inserts)
	if count != want {
		return fmt.Errorf("bst: %d nodes reachable, want %d", count, want)
	}
	if got := b.led.sum(mm, 0); got != b.inserts {
		return fmt.Errorf("bst: insert ledger %d, want %d", got, b.inserts)
	}
	return nil
}
