package workload

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("yada", func() Benchmark { return newYada() }) }

// yada: Delaunay mesh refinement. Table 1: one immutable AR (the
// bad-triangle counter) and five mutable ARs (work-heap push/pop, triangle
// insert/remove, and the cavity walk, whose footprint of up to ~40 lines
// frequently overflows the ALT — yada commits mostly on the first try or in
// fallback, so the paper notes its discovery is rarely useful).
type yada struct {
	kit
	incBad     *isa.Program
	pushWork   *isa.Program
	popWork    *isa.Program
	insTri     *isa.Program
	remTri     *isa.Program
	cavityWalk *isa.Program

	badCounter mem.Addr
	workHeap   mem.Addr
	triangles  mem.Addr
	cavCells   []mem.Addr
	led        ledgers // 0 workPush, 1 workPop, 2 triNet

	initialWork, initialTris int
	badExpect                uint64
	pushes                   uint64
	cavityExpect             uint64
	keyRange                 int
}

func newYada() *yada {
	return &yada{
		incBad:     arAddDirect(1, "yada/incBadCount"),
		pushWork:   arListPushHead(2, "yada/pushWork", false),
		popWork:    arListPopHead(3, "yada/popWork"),
		insTri:     arListInsertSorted(4, "yada/insertTriangle"),
		remTri:     arListRemoveKey(5, "yada/removeTriangle"),
		cavityWalk: arBulkRoute(6, "yada/cavityWalk"),
		keyRange:   80,
	}
}

func (y *yada) Name() string { return "yada" }

func (y *yada) ARs() []*isa.Program {
	return []*isa.Program{y.incBad, y.pushWork, y.popWork, y.insTri, y.remTri, y.cavityWalk}
}

func (y *yada) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	y.mm = mm
	y.badCounter = mm.AllocLine()
	y.initialWork = 128
	y.workHeap = buildUnitList(mm, rng, y.initialWork, y.keyRange)
	keys := make([]uint64, 64)
	prev := uint64(0)
	for i := range keys {
		prev += uint64(1 + rng.Intn(2*y.keyRange/len(keys)))
		keys[i] = prev
	}
	y.triangles = buildSortedList(mm, keys)
	y.initialTris = len(keys)
	y.cavCells = make([]mem.Addr, 256)
	for i := range y.cavCells {
		y.cavCells[i] = mm.AllocLine()
	}
	y.led = newLedgers(mm, threads)
	return nil
}

func (y *yada) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	workPush := y.led.slot(tid, 0)
	workPop := y.led.slot(tid, 1)
	triNet := y.led.slot(tid, 2)
	return buildMix(rng, ops, 260, []mixEntry{
		{weight: 10, gen: y.genAddDirect(y.incBad, []mem.Addr{y.badCounter}, 1, &y.badExpect)},
		{weight: 20, gen: y.genPush(y.pushWork, y.workHeap, workPush, &y.pushes)},
		{weight: 20, gen: y.genPop(y.popWork, y.workHeap, workPop)},
		{weight: 15, gen: y.genListInsert(y.insTri, y.triangles, triNet, y.keyRange, new(uint64))},
		{weight: 15, gen: y.genListRemove(y.remTri, y.triangles, triNet, y.keyRange)},
		{weight: 20, gen: y.genBulkRoute(y.cavityWalk, y.cavCells, 24, 40, &y.cavityExpect)},
	})
}

func (y *yada) Verify(mm *mem.Memory) error {
	if err := verifyCount("yada: bad counter", int64(mm.ReadWord(y.badCounter)), int64(y.badExpect)); err != nil {
		return err
	}
	work, err := plainListLen(mm, y.workHeap)
	if err != nil {
		return err
	}
	pushes := int64(y.led.sum(mm, 0))
	pops := int64(y.led.sum(mm, 1))
	if err := verifyCount("yada: work heap", int64(work), int64(y.initialWork)+pushes-pops); err != nil {
		return err
	}
	tris, err := listLen(mm, y.triangles)
	if err != nil {
		return err
	}
	if err := verifyCount("yada: triangle list", int64(tris), int64(y.initialTris)+int64(y.led.sum(mm, 2))); err != nil {
		return err
	}
	var cavSum uint64
	for _, c := range y.cavCells {
		cavSum += mm.ReadWord(c)
	}
	return verifyCount("yada: cavity cells", int64(cavSum), int64(y.cavityExpect))
}
