package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("deque", func() Benchmark { return newDeque() }) }

const (
	dequeCap  = 1024
	dequeMask = dequeCap - 1
)

// deque [7, 11, 20, 24, 25]: per-thread Chase-Lev work-stealing deques. The
// owner's pushBottom indirects through its own bottom index
// (likely-immutable); steal races on the shared top index — Mutable.
type deque struct {
	push  *isa.Program
	steal *isa.Program

	mm      *mem.Memory
	headers []mem.Addr
	buffers []mem.Addr
	led     ledgers // word 0: pushed-sum, word 1: taken-sum
	threads int
}

func newDeque() *deque {
	return &deque{
		push:  arDequePushBottom(1, "deque/pushBottom", dequeMask),
		steal: arDequeSteal(2, "deque/steal", dequeMask),
	}
}

func (d *deque) Name() string        { return "deque" }
func (d *deque) ARs() []*isa.Program { return []*isa.Program{d.push, d.steal} }

func (d *deque) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	d.mm = mm
	d.threads = threads
	d.headers = make([]mem.Addr, threads)
	d.buffers = make([]mem.Addr, threads)
	for i := 0; i < threads; i++ {
		d.headers[i] = mm.AllocLine()
		d.buffers[i] = mm.AllocWords(dequeCap, mem.LineSize)
	}
	d.led = newLedgers(mm, threads)
	return nil
}

func (d *deque) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	if ops > dequeCap {
		// The ring is not resizable; the owner never pushes more than its
		// capacity in one run.
		ops = dequeCap
	}
	pushed := uint64(d.led.slot(tid, 0))
	taken := uint64(d.led.slot(tid, 1))
	return buildMix(rng, ops, 120, []mixEntry{
		{weight: 50, gen: func(rng *sim.RNG) cpu.Invocation {
			val := uint64(1 + rng.Intn(100))
			return cpu.Invocation{Prog: d.push, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(d.headers[tid])},
				cpu.RegInit{Reg: isa.R1, Val: val},
				cpu.RegInit{Reg: isa.R3, Val: pushed},
				cpu.RegInit{Reg: isa.R4, Val: uint64(d.buffers[tid])},
			)}
		}},
		{weight: 50, gen: func(rng *sim.RNG) cpu.Invocation {
			victim := rng.Intn(d.threads)
			return cpu.Invocation{Prog: d.steal, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(d.headers[victim])},
				cpu.RegInit{Reg: isa.R3, Val: taken},
				cpu.RegInit{Reg: isa.R4, Val: uint64(d.buffers[victim])},
			)}
		}},
	})
}

func (d *deque) Verify(mm *mem.Memory) error {
	var remaining uint64
	for i := range d.headers {
		top := mm.ReadWord(d.headers[i] + 0)
		bottom := mm.ReadWord(d.headers[i] + 8)
		if top > bottom {
			return fmt.Errorf("deque %d: top %d > bottom %d", i, top, bottom)
		}
		if bottom-top > dequeCap {
			return fmt.Errorf("deque %d: %d items exceed capacity", i, bottom-top)
		}
		for idx := top; idx < bottom; idx++ {
			remaining += mm.ReadWord(d.buffers[i] + mem.Addr((idx&dequeMask)*8))
		}
	}
	pushed := d.led.sum(mm, 0)
	taken := d.led.sum(mm, 1)
	if pushed-taken != remaining {
		return fmt.Errorf("deque: pushed %d - taken %d = %d, but %d remains",
			pushed, taken, pushed-taken, remaining)
	}
	return nil
}
