package workload

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("ssca2", func() Benchmark { return newSSCA2() }) }

// ssca2: graph kernels with tiny atomic regions spread over large arrays —
// low contention and small footprints. Table 1: two immutable ARs (direct
// edge-weight and degree updates) and one likely-immutable AR (adjacency
// touch-up through a read-only pointer table).
type ssca2 struct {
	kit
	addWeight *isa.Program
	incDegree *isa.Program
	updAdj    *isa.Program

	weights []mem.Addr
	degrees []mem.Addr
	adj     ptrTable

	weightExpect uint64
	degreeExpect uint64
	adjExpect    uint64
}

func newSSCA2() *ssca2 {
	return &ssca2{
		addWeight: arAddDirect(1, "ssca2/addEdgeWeight"),
		incDegree: arAddDirect(2, "ssca2/incDegree"),
		updAdj:    arPtrRMW(3, "ssca2/updateAdjacency", 1, true),
	}
}

func (s *ssca2) Name() string        { return "ssca2" }
func (s *ssca2) ARs() []*isa.Program { return []*isa.Program{s.addWeight, s.incDegree, s.updAdj} }

func (s *ssca2) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	s.mm = mm
	const vertices = 1024
	s.weights = make([]mem.Addr, vertices)
	s.degrees = make([]mem.Addr, vertices)
	for i := 0; i < vertices; i++ {
		s.weights[i] = mm.AllocLine()
		s.degrees[i] = mm.AllocLine()
	}
	s.adj = buildPtrTable(mm, vertices/2)
	return nil
}

func (s *ssca2) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	return buildMix(rng, ops, 60, []mixEntry{
		{weight: 40, gen: s.genAddDirect(s.addWeight, s.weights, 16, &s.weightExpect)},
		{weight: 35, gen: s.genAddDirect(s.incDegree, s.degrees, 1, &s.degreeExpect)},
		{weight: 25, gen: s.genPtrRMW(s.updAdj, s.adj, 1, 8, &s.adjExpect)},
	})
}

func (s *ssca2) Verify(mm *mem.Memory) error {
	var wsum, dsum uint64
	for i := range s.weights {
		wsum += mm.ReadWord(s.weights[i])
		dsum += mm.ReadWord(s.degrees[i])
	}
	if err := verifyCount("ssca2: edge weights", int64(wsum), int64(s.weightExpect)); err != nil {
		return err
	}
	if err := verifyCount("ssca2: degrees", int64(dsum), int64(s.degreeExpect)); err != nil {
		return err
	}
	return verifyCount("ssca2: adjacency sum", int64(s.adj.targetSum(mm)), int64(s.adjExpect))
}
