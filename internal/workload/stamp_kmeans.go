package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() {
	register("kmeans-h", func() Benchmark { return newKmeans("kmeans-h", 4) })
	register("kmeans-l", func() Benchmark { return newKmeans("kmeans-l", 24) })
}

// kmeans: clustering; threads fold points into shared centroid accumulators.
// Table 1: one immutable AR (the multi-word centroid-chunk update — all
// addresses preset) and two likely-immutable ARs (count and delta updates
// through a read-only pointer table). kmeans-h uses few clusters (high
// contention); kmeans-l many (low contention).
type kmeans struct {
	kit
	name     string
	clusters int

	updCentroid *isa.Program
	updCount    *isa.Program
	updDelta    *isa.Program

	centroids []mem.Addr // one strided region per cluster
	counts    ptrTable
	deltas    ptrTable

	centroidWords  int
	centroidExpect uint64
	countExpect    uint64
	deltaExpect    uint64
}

func newKmeans(name string, clusters int) *kmeans {
	const words = 16 // two cachelines of per-cluster partial sums
	return &kmeans{
		name:          name,
		clusters:      clusters,
		updCentroid:   arStridedUpdate(1, name+"/updateCentroid", words, 8),
		updCount:      arPtrRMW(2, name+"/updateCount", 1, true),
		updDelta:      arPtrRMW(3, name+"/accumDelta", 1, true),
		centroidWords: words,
	}
}

func (k *kmeans) Name() string        { return k.name }
func (k *kmeans) ARs() []*isa.Program { return []*isa.Program{k.updCentroid, k.updCount, k.updDelta} }

func (k *kmeans) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	k.mm = mm
	k.centroids = make([]mem.Addr, k.clusters)
	for i := range k.centroids {
		k.centroids[i] = mm.AllocWords(k.centroidWords, mem.LineSize)
	}
	k.counts = buildPtrTable(mm, k.clusters)
	k.deltas = buildPtrTable(mm, k.clusters)
	return nil
}

func (k *kmeans) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	return buildMix(rng, ops, 140, []mixEntry{
		{weight: 50, gen: k.genStrided(k.updCentroid, k.centroids, k.centroidWords, 8, &k.centroidExpect)},
		{weight: 25, gen: k.genPtrRMW(k.updCount, k.counts, 1, 2, &k.countExpect)},
		{weight: 25, gen: k.genPtrRMW(k.updDelta, k.deltas, 1, 8, &k.deltaExpect)},
	})
}

func (k *kmeans) Verify(mm *mem.Memory) error {
	var centroidSum uint64
	for _, base := range k.centroids {
		for w := 0; w < k.centroidWords; w++ {
			centroidSum += mm.ReadWord(base + mem.Addr(w*8))
		}
	}
	if centroidSum != k.centroidExpect {
		return fmt.Errorf("%s: centroid sum %d, want %d", k.name, centroidSum, k.centroidExpect)
	}
	if err := verifyCount(k.name+": count sum", int64(k.counts.targetSum(mm)), int64(k.countExpect)); err != nil {
		return err
	}
	return verifyCount(k.name+": delta sum", int64(k.deltas.targetSum(mm)), int64(k.deltaExpect))
}
