package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("stack", func() Benchmark { return newStack() }) }

// stack [20]: a Treiber-style stack. Push's footprint (header + new node)
// only changes across the empty/non-empty transition, so Table 1 judges it
// likely-immutable; pop unlinks through the loaded head — Mutable.
type stack struct {
	push *isa.Program
	pop  *isa.Program

	mm     *mem.Memory
	header mem.Addr
	led    ledgers // word 0: pushed-sum, word 1: taken-sum
}

func newStack() *stack {
	return &stack{
		push: arListPushHead(1, "stack/push", true),
		pop:  arListPopHead(2, "stack/pop"),
	}
}

func (s *stack) Name() string        { return "stack" }
func (s *stack) ARs() []*isa.Program { return []*isa.Program{s.push, s.pop} }

func (s *stack) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	s.mm = mm
	keys := make([]uint64, 32)
	for i := range keys {
		keys[i] = uint64(1 + rng.Intn(100))
	}
	s.header = buildList(mm, keys)
	// buildList stored values = keys; the conservation baseline counts them
	// as pre-pushed value.
	s.led = newLedgers(mm, threads)
	var pre uint64
	for _, k := range keys {
		pre += k
	}
	mm.WriteWord(s.led.slot(0, 0), pre) // seed pushed-sum with initial content
	return nil
}

func (s *stack) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	pushed := uint64(s.led.slot(tid, 0))
	taken := uint64(s.led.slot(tid, 1))
	return buildMix(rng, ops, 100, []mixEntry{
		{weight: 50, gen: func(rng *sim.RNG) cpu.Invocation {
			val := uint64(1 + rng.Intn(100))
			node := allocNode(s.mm, val, 0, val)
			return cpu.Invocation{Prog: s.push, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(s.header)},
				cpu.RegInit{Reg: isa.R1, Val: val},
				cpu.RegInit{Reg: isa.R2, Val: uint64(node)},
				cpu.RegInit{Reg: isa.R3, Val: pushed},
			)}
		}},
		{weight: 50, gen: func(rng *sim.RNG) cpu.Invocation {
			return cpu.Invocation{Prog: s.pop, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(s.header)},
				cpu.RegInit{Reg: isa.R3, Val: taken},
			)}
		}},
	})
}

func (s *stack) Verify(mm *mem.Memory) error {
	nodes, err := walkList(mm, s.header)
	if err != nil {
		return err
	}
	var remaining uint64
	for _, n := range nodes {
		remaining += mm.ReadWord(n + offVal)
	}
	pushed := s.led.sum(mm, 0)
	taken := s.led.sum(mm, 1)
	if pushed-taken != remaining {
		return fmt.Errorf("stack: pushed %d - taken %d = %d, but %d remains on the stack",
			pushed, taken, pushed-taken, remaining)
	}
	return nil
}
