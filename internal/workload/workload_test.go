package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// paperTable1 is Table 1 of the paper: per benchmark, the number of ARs in
// each mutability class (immutable, likely immutable, mutable).
var paperTable1 = map[string][3]int{
	"arrayswap":   {2, 0, 0},
	"bitcoin":     {0, 1, 0},
	"bst":         {0, 0, 3},
	"deque":       {0, 1, 1},
	"hashmap":     {0, 0, 3},
	"mwobject":    {1, 0, 0},
	"queue":       {0, 1, 1},
	"stack":       {0, 1, 1},
	"sorted-list": {1, 0, 2},
	"bayes":       {0, 5, 9},
	"genome":      {0, 0, 5},
	"intruder":    {0, 2, 1},
	"kmeans-h":    {1, 2, 0},
	"kmeans-l":    {1, 2, 0},
	"labyrinth":   {0, 0, 3},
	"ssca2":       {2, 1, 0},
	"vacation-h":  {0, 1, 2},
	"vacation-l":  {0, 1, 2},
	"yada":        {1, 0, 5},
}

// TestTable1MatchesPaper: the static analyzer classifies every benchmark's
// ARs exactly as the paper's Table 1 does.
func TestTable1MatchesPaper(t *testing.T) {
	if len(Names()) != len(paperTable1) {
		t.Fatalf("%d benchmarks registered, want %d", len(Names()), len(paperTable1))
	}
	for _, name := range Names() {
		want, ok := paperTable1[name]
		if !ok {
			t.Errorf("benchmark %q not in Table 1", name)
			continue
		}
		bench, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		var got [3]int
		for _, p := range bench.ARs() {
			switch isa.Analyze(p).Mutability {
			case isa.Immutable:
				got[0]++
			case isa.LikelyImmutable:
				got[1]++
			default:
				got[2]++
			}
		}
		if got != want {
			t.Errorf("%s: classification %v, want %v", name, got, want)
		}
		if n := got[0] + got[1] + got[2]; n != len(bench.ARs()) {
			t.Errorf("%s: %d ARs classified, have %d", name, n, len(bench.ARs()))
		}
	}
}

// TestARProgramsValid: every AR of every benchmark validates and has a
// unique ID within its benchmark.
func TestARProgramsValid(t *testing.T) {
	for _, name := range Names() {
		bench, _ := New(name)
		ids := map[int]bool{}
		for _, p := range bench.ARs() {
			if err := p.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			if ids[p.ID] {
				t.Errorf("%s: duplicate AR id %d", name, p.ID)
			}
			ids[p.ID] = true
			if p.Name == "" {
				t.Errorf("%s: AR %d unnamed", name, p.ID)
			}
		}
	}
}

// TestSetupSourceDeterminism: the same seed produces identical invocation
// streams.
func TestSetupSourceDeterminism(t *testing.T) {
	for _, name := range []string{"hashmap", "bayes", "deque"} {
		gen := func() []uint64 {
			bench, _ := New(name)
			mm := mem.NewMemory(0x100000)
			rng := sim.NewRNG(5)
			if err := bench.Setup(mm, rng, 4); err != nil {
				t.Fatal(err)
			}
			var sig []uint64
			for tid := 0; tid < 4; tid++ {
				src := bench.Source(tid, rng.Split(), 20)
				for {
					inv, ok := src.Next()
					if !ok {
						break
					}
					sig = append(sig, uint64(inv.Prog.ID), uint64(inv.Think))
					for _, r := range inv.Regs {
						sig = append(sig, uint64(r.Reg), r.Val)
					}
				}
			}
			return sig
		}
		a, b := gen(), gen()
		if len(a) != len(b) {
			t.Fatalf("%s: stream lengths differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: streams diverge at %d", name, i)
			}
		}
	}
}

// TestVerifyDetectsCorruption: Verify must fail when the final memory image
// violates the benchmark invariant (here: a counterfeit bitcoin balance).
func TestVerifyDetectsCorruption(t *testing.T) {
	bench, _ := New("bitcoin")
	mm := mem.NewMemory(0x100000)
	rng := sim.NewRNG(1)
	if err := bench.Setup(mm, rng, 2); err != nil {
		t.Fatal(err)
	}
	if err := bench.Verify(mm); err != nil {
		t.Fatalf("pristine state failed verification: %v", err)
	}
	// Counterfeit coins.
	b := bench.(*bitcoin)
	mm.WriteWord(b.wallets[0], mm.ReadWord(b.wallets[0])+1)
	if err := bench.Verify(mm); err == nil {
		t.Fatal("verification accepted counterfeit coins")
	}
}

// TestVerifyDetectsStructuralDamage: a broken sorted-list order is caught.
func TestVerifyDetectsStructuralDamage(t *testing.T) {
	bench, _ := New("sorted-list")
	mm := mem.NewMemory(0x100000)
	rng := sim.NewRNG(1)
	if err := bench.Setup(mm, rng, 2); err != nil {
		t.Fatal(err)
	}
	s := bench.(*sortedList)
	nodes, err := walkList(mm, s.header)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) < 3 {
		t.Fatal("seed list too short")
	}
	// Swap two keys to break the order.
	k1 := mm.ReadWord(nodes[1] + offKey)
	k2 := mm.ReadWord(nodes[2] + offKey)
	mm.WriteWord(nodes[1]+offKey, k2)
	mm.WriteWord(nodes[2]+offKey, k1)
	if err := bench.Verify(mm); err == nil {
		t.Fatal("verification accepted an unsorted list")
	}
}

// TestWalkListDetectsCycle: the safety guard trips on cyclic lists.
func TestWalkListDetectsCycle(t *testing.T) {
	mm := mem.NewMemory(0x100000)
	header := buildList(mm, []uint64{1, 2, 3})
	nodes, err := walkList(mm, header)
	if err != nil || len(nodes) != 3 {
		t.Fatalf("straight list walk: %v, %d nodes", err, len(nodes))
	}
	// Close the loop.
	mm.WriteWord(nodes[2]+offNext, uint64(nodes[0]))
	if _, err := walkList(mm, header); err == nil {
		t.Fatal("cyclic list not detected")
	}
}

// TestLedgerSlots: ledger lines are private per thread and sum correctly.
func TestLedgerSlots(t *testing.T) {
	mm := mem.NewMemory(0x100000)
	l := newLedgers(mm, 4)
	for tid := 0; tid < 4; tid++ {
		for w := 0; w < 8; w++ {
			mm.WriteWord(l.slot(tid, w), uint64(tid*10+w))
		}
	}
	if got := l.sum(mm, 3); got != 3+13+23+33 {
		t.Fatalf("sum(word 3) = %d", got)
	}
	for i := 0; i < 3; i++ {
		if l.lines[i].Line() == l.lines[i+1].Line() {
			t.Fatal("thread ledgers share a cacheline")
		}
	}
}

// TestDequeSourceCapsOps: the ring-buffer deque cannot accept more pushes
// than its capacity per thread.
func TestDequeSourceCapsOps(t *testing.T) {
	bench, _ := New("deque")
	mm := mem.NewMemory(0x100000)
	rng := sim.NewRNG(1)
	if err := bench.Setup(mm, rng, 2); err != nil {
		t.Fatal(err)
	}
	src := bench.Source(0, rng.Split(), dequeCap*2)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n > dequeCap {
		t.Fatalf("deque source emitted %d ops, capacity %d", n, dequeCap)
	}
}

// TestMixWeightsRoughlyHonored: the weighted mix produces operations in
// approximately the requested proportions.
func TestMixWeightsRoughlyHonored(t *testing.T) {
	bench, _ := New("hashmap")
	mm := mem.NewMemory(0x100000)
	rng := sim.NewRNG(3)
	if err := bench.Setup(mm, rng, 1); err != nil {
		t.Fatal(err)
	}
	h := bench.(*hashmap)
	src := bench.Source(0, rng.Split(), 4000)
	counts := map[int]int{}
	for {
		inv, ok := src.Next()
		if !ok {
			break
		}
		counts[inv.Prog.ID]++
	}
	// insert 40%, remove 30%, lookup 30% (±5 points).
	within := func(got, wantPct int) bool {
		pct := got * 100 / 4000
		return pct >= wantPct-5 && pct <= wantPct+5
	}
	if !within(counts[h.insert.ID], 40) || !within(counts[h.remove.ID], 30) || !within(counts[h.lookup.ID], 30) {
		t.Fatalf("mix proportions off: %v", counts)
	}
}
