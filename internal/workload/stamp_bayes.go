package workload

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("bayes", func() Benchmark { return newBayes() }) }

// bayes: Bayesian-network structure learning. The synthetic kernel keeps the
// shape Table 1 reports — fourteen ARs, five likely-immutable (score/count
// updates through a read-only node-pointer table) and nine mutable (task
// list and adjacency/candidate list manipulation).
type bayes struct {
	kit
	// Mutable ARs.
	pushTask, popTask, scanTask *isa.Program
	insEdge, remEdge, scanEdge  *isa.Program
	insCand, remCand, scanCand  *isa.Program
	// Likely-immutable ARs.
	updScore, updLogLik, incParent *isa.Program
	touchNode, refreshPrior        *isa.Program

	taskList, edgeList, candList mem.Addr
	scores                       ptrTable
	led                          ledgers // 0 taskPush, 1 taskPop, 2 edgeNet, 3 candNet
	results                      []mem.Addr

	initialTasks, initialEdges, initialCands int
	pushes                                   uint64
	ptrExpect                                uint64
	keyRange                                 int
}

func newBayes() *bayes {
	return &bayes{
		pushTask:     arListPushHead(1, "bayes/pushTask", false),
		popTask:      arListPopHead(2, "bayes/popTask"),
		scanTask:     arListSearchCount(3, "bayes/scanTasks"),
		insEdge:      arListInsertSorted(4, "bayes/insertEdge"),
		remEdge:      arListRemoveKey(5, "bayes/removeEdge"),
		scanEdge:     arListSearchCount(6, "bayes/scanEdges"),
		insCand:      arListInsertSorted(7, "bayes/insertCandidate"),
		remCand:      arListRemoveKey(8, "bayes/removeCandidate"),
		scanCand:     arListSearchCount(9, "bayes/scanCandidates"),
		updScore:     arPtrRMW(10, "bayes/updateScore", 1, true),
		updLogLik:    arPtrRMW(11, "bayes/updateLogLik", 2, true),
		incParent:    arPtrRMW(12, "bayes/incParentCount", 1, true),
		touchNode:    arPtrRMW(13, "bayes/touchNode", 3, true),
		refreshPrior: arPtrRMW(14, "bayes/refreshPrior", 2, true),
		keyRange:     96,
	}
}

func (b *bayes) Name() string { return "bayes" }

func (b *bayes) ARs() []*isa.Program {
	return []*isa.Program{
		b.pushTask, b.popTask, b.scanTask,
		b.insEdge, b.remEdge, b.scanEdge,
		b.insCand, b.remCand, b.scanCand,
		b.updScore, b.updLogLik, b.incParent, b.touchNode, b.refreshPrior,
	}
}

func (b *bayes) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	b.mm = mm
	b.taskList = buildUnitList(mm, rng, 48, b.keyRange)
	b.initialTasks = 48

	seedSorted := func(n int) ([]uint64, mem.Addr) {
		keys := make([]uint64, n)
		prev := uint64(0)
		for i := range keys {
			prev += uint64(1 + rng.Intn(2*b.keyRange/n))
			keys[i] = prev
		}
		return keys, buildSortedList(mm, keys)
	}
	_, b.edgeList = seedSorted(40)
	b.initialEdges = 40
	_, b.candList = seedSorted(40)
	b.initialCands = 40

	b.scores = buildPtrTable(mm, 48)
	b.led = newLedgers(mm, threads)
	b.results = make([]mem.Addr, threads)
	for i := range b.results {
		b.results[i] = mm.AllocLine()
	}
	return nil
}

func (b *bayes) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	taskPush := b.led.slot(tid, 0)
	taskPop := b.led.slot(tid, 1)
	edgeNet := b.led.slot(tid, 2)
	candNet := b.led.slot(tid, 3)
	res := b.results[tid]
	return buildMix(rng, ops, 250, []mixEntry{
		{weight: 10, gen: b.genPush(b.pushTask, b.taskList, taskPush, &b.pushes)},
		{weight: 10, gen: b.genPop(b.popTask, b.taskList, taskPop)},
		{weight: 5, gen: b.genListScan(b.scanTask, b.taskList, res, b.keyRange)},
		{weight: 8, gen: b.genListInsert(b.insEdge, b.edgeList, edgeNet, b.keyRange, new(uint64))},
		{weight: 8, gen: b.genListRemove(b.remEdge, b.edgeList, edgeNet, b.keyRange)},
		{weight: 7, gen: b.genListScan(b.scanEdge, b.edgeList, res, b.keyRange)},
		{weight: 7, gen: b.genListInsert(b.insCand, b.candList, candNet, b.keyRange, new(uint64))},
		{weight: 7, gen: b.genListRemove(b.remCand, b.candList, candNet, b.keyRange)},
		{weight: 6, gen: b.genListScan(b.scanCand, b.candList, res, b.keyRange)},
		{weight: 8, gen: b.genPtrRMW(b.updScore, b.scores, 1, 16, &b.ptrExpect)},
		{weight: 6, gen: b.genPtrRMW(b.updLogLik, b.scores, 2, 16, &b.ptrExpect)},
		{weight: 6, gen: b.genPtrRMW(b.incParent, b.scores, 1, 4, &b.ptrExpect)},
		{weight: 6, gen: b.genPtrRMW(b.touchNode, b.scores, 3, 8, &b.ptrExpect)},
		{weight: 6, gen: b.genPtrRMW(b.refreshPrior, b.scores, 2, 8, &b.ptrExpect)},
	})
}

func (b *bayes) Verify(mm *mem.Memory) error {
	tasks, err := plainListLen(mm, b.taskList)
	if err != nil {
		return err
	}
	pushes := int64(b.led.sum(mm, 0))
	pops := int64(b.led.sum(mm, 1))
	if err := verifyCount("bayes: task list length", int64(tasks), int64(b.initialTasks)+pushes-pops); err != nil {
		return err
	}
	edges, err := listLen(mm, b.edgeList)
	if err != nil {
		return err
	}
	if err := verifyCount("bayes: edge list length", int64(edges), int64(b.initialEdges)+int64(b.led.sum(mm, 2))); err != nil {
		return err
	}
	cands, err := listLen(mm, b.candList)
	if err != nil {
		return err
	}
	if err := verifyCount("bayes: candidate list length", int64(cands), int64(b.initialCands)+int64(b.led.sum(mm, 3))); err != nil {
		return err
	}
	return verifyCount("bayes: score table sum", int64(b.scores.targetSum(mm)), int64(b.ptrExpect))
}
