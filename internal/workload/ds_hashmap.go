package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("hashmap", func() Benchmark { return newHashmap() }) }

// hashmap [8, 18]: a chained hash table; the bucket is picked (hashed)
// outside the AR, and the chain — a sentinel-headed sorted list — is
// traversed inside it. All three ARs are Mutable.
type hashmap struct {
	insert *isa.Program
	remove *isa.Program
	lookup *isa.Program

	mm          *mem.Memory
	buckets     []mem.Addr // chain headers
	led         ledgers    // word 0: net inserted (insert +1, remove -1)
	results     []mem.Addr
	initialSize int
	keyRange    int
	nbuckets    int
}

func newHashmap() *hashmap {
	return &hashmap{
		insert:   arListInsertSorted(1, "hashmap/insert"),
		remove:   arListRemoveKey(2, "hashmap/remove"),
		lookup:   arListSearchCount(3, "hashmap/lookup"),
		keyRange: 512,
		nbuckets: 32,
	}
}

func (h *hashmap) Name() string        { return "hashmap" }
func (h *hashmap) ARs() []*isa.Program { return []*isa.Program{h.insert, h.remove, h.lookup} }

func (h *hashmap) bucketOf(key uint64) int { return int(key) % h.nbuckets }

func (h *hashmap) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	h.mm = mm
	h.buckets = make([]mem.Addr, h.nbuckets)
	perBucket := make([][]uint64, h.nbuckets)
	const seed = 192
	for i := 0; i < seed; i++ {
		k := uint64(1 + rng.Intn(h.keyRange))
		b := h.bucketOf(k)
		perBucket[b] = append(perBucket[b], k)
	}
	for b := range h.buckets {
		keys := perBucket[b]
		// Chains must be sorted for arListInsertSorted.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		h.buckets[b] = buildSortedList(mm, keys)
	}
	h.initialSize = seed
	h.led = newLedgers(mm, threads)
	h.results = make([]mem.Addr, threads)
	for i := range h.results {
		h.results[i] = mm.AllocLine()
	}
	return nil
}

func (h *hashmap) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	net := uint64(h.led.slot(tid, 0))
	result := uint64(h.results[tid])
	key := func(rng *sim.RNG) uint64 { return uint64(1 + rng.Intn(h.keyRange)) }
	src := buildMix(rng, ops, 160, []mixEntry{
		{weight: 40, gen: func(rng *sim.RNG) cpu.Invocation {
			k := key(rng)
			return cpu.Invocation{Prog: h.insert, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(h.buckets[h.bucketOf(k)])},
				cpu.RegInit{Reg: isa.R1, Val: k},
				cpu.RegInit{Reg: isa.R2, Val: uint64(0)}, // node; filled below
				cpu.RegInit{Reg: isa.R3, Val: net},
			)}
		}},
		{weight: 30, gen: func(rng *sim.RNG) cpu.Invocation {
			k := key(rng)
			return cpu.Invocation{Prog: h.remove, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(h.buckets[h.bucketOf(k)])},
				cpu.RegInit{Reg: isa.R1, Val: k},
				cpu.RegInit{Reg: isa.R3, Val: net},
			)}
		}},
		{weight: 30, gen: func(rng *sim.RNG) cpu.Invocation {
			k := key(rng)
			return cpu.Invocation{Prog: h.lookup, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(h.buckets[h.bucketOf(k)])},
				cpu.RegInit{Reg: isa.R1, Val: k},
				cpu.RegInit{Reg: isa.R2, Val: result},
			)}
		}},
	})
	for i := range src.Invs {
		inv := &src.Invs[i]
		if inv.Prog == h.insert {
			k := inv.Regs[1].Val
			inv.Regs[2].Val = uint64(allocNode(h.mm, k, 0, k))
		}
	}
	return src
}

func (h *hashmap) Verify(mm *mem.Memory) error {
	total := 0
	for b, header := range h.buckets {
		nodes, err := walkList(mm, header)
		if err != nil {
			return err
		}
		prev := uint64(0)
		for i, n := range nodes {
			k := mm.ReadWord(n + offKey)
			if k < prev {
				return fmt.Errorf("hashmap: bucket %d unsorted at node %d", b, i)
			}
			if i > 0 && h.bucketOf(k) != b {
				return fmt.Errorf("hashmap: key %d found in bucket %d, hashes to %d", k, b, h.bucketOf(k))
			}
			prev = k
		}
		total += len(nodes) - 1 // exclude sentinel
	}
	net := int64(h.led.sum(mm, 0))
	if int64(total) != int64(h.initialSize)+net {
		return fmt.Errorf("hashmap: %d nodes, want initial %d + net %d", total, h.initialSize, net)
	}
	return nil
}
