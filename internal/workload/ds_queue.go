package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("queue", func() Benchmark { return newQueue() }) }

// queue [20, 33]: a Michael-Scott-style two-lock-free queue with a sentinel
// node. Enqueue links through the loaded tail pointer (likely-immutable per
// Table 1); dequeue advances the sentinel — Mutable.
type queue struct {
	enq *isa.Program
	deq *isa.Program

	mm     *mem.Memory
	header mem.Addr // +0 sentinel pointer, +8 tail pointer
	led    ledgers  // word 0: pushed-sum, word 1: taken-sum
}

func newQueue() *queue {
	return &queue{
		enq: arQueueEnqueue(1, "queue/enqueue"),
		deq: arQueueDequeue(2, "queue/dequeue"),
	}
}

func (q *queue) Name() string        { return "queue" }
func (q *queue) ARs() []*isa.Program { return []*isa.Program{q.enq, q.deq} }

func (q *queue) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	q.mm = mm
	q.header = mm.AllocLine()
	sentinel := allocNode(mm, 0, 0, 0)
	mm.WriteWord(q.header+0, uint64(sentinel))
	mm.WriteWord(q.header+8, uint64(sentinel))
	q.led = newLedgers(mm, threads)
	return nil
}

func (q *queue) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	pushed := uint64(q.led.slot(tid, 0))
	taken := uint64(q.led.slot(tid, 1))
	return buildMix(rng, ops, 100, []mixEntry{
		{weight: 55, gen: func(rng *sim.RNG) cpu.Invocation {
			val := uint64(1 + rng.Intn(100))
			node := allocNode(q.mm, val, 0, 0)
			return cpu.Invocation{Prog: q.enq, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(q.header)},
				cpu.RegInit{Reg: isa.R1, Val: val},
				cpu.RegInit{Reg: isa.R2, Val: uint64(node)},
				cpu.RegInit{Reg: isa.R3, Val: pushed},
			)}
		}},
		{weight: 45, gen: func(rng *sim.RNG) cpu.Invocation {
			return cpu.Invocation{Prog: q.deq, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(q.header)},
				cpu.RegInit{Reg: isa.R3, Val: taken},
			)}
		}},
	})
}

func (q *queue) Verify(mm *mem.Memory) error {
	sentinel := mem.Addr(mm.ReadWord(q.header + 0))
	var remaining uint64
	last := sentinel
	cur := mem.Addr(mm.ReadWord(sentinel + offNext))
	steps := 0
	for cur != 0 {
		remaining += mm.ReadWord(cur + offVal)
		last = cur
		cur = mem.Addr(mm.ReadWord(cur + offNext))
		if steps++; steps > 1<<22 {
			return fmt.Errorf("queue: list appears cyclic")
		}
	}
	if tail := mem.Addr(mm.ReadWord(q.header + 8)); tail != last {
		return fmt.Errorf("queue: tail %s does not point at last node %s", tail, last)
	}
	pushed := q.led.sum(mm, 0)
	taken := q.led.sum(mm, 1)
	if pushed-taken != remaining {
		return fmt.Errorf("queue: pushed %d - taken %d = %d, but %d remains queued",
			pushed, taken, pushed-taken, remaining)
	}
	return nil
}
