package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Register conventions shared by all AR programs:
//
//	R0..R5  invocation inputs (addresses, keys, amounts)
//	R8..R13 temporaries
//	R14     always zero (never written)
//
// Node layout for linked structures (one line-aligned node per element):
//
//	+0  key
//	+8  next (or left)
//	+16 val  (or right)
//	+24 aux
const (
	offKey  = 0
	offNext = 8
	offVal  = 16
	offAux  = 24

	// BST node layout.
	offLeft  = 8
	offRight = 16
)

// allocNode allocates a line-aligned node and initialises its fields.
func allocNode(mm *mem.Memory, key, next, val uint64) mem.Addr {
	n := mm.AllocLine()
	mm.WriteWord(n+offKey, key)
	mm.WriteWord(n+offNext, next)
	mm.WriteWord(n+offVal, val)
	return n
}

// buildList builds a singly-linked list (header line holding the head
// pointer at +0 and a size/aux word at +8) with the given keys in order.
// It returns the header address.
func buildList(mm *mem.Memory, keys []uint64) mem.Addr {
	header := mm.AllocLine()
	var head uint64
	for i := len(keys) - 1; i >= 0; i-- {
		head = uint64(allocNode(mm, keys[i], head, keys[i]))
	}
	mm.WriteWord(header+0, head)
	mm.WriteWord(header+8, uint64(len(keys)))
	return header
}

// walkList returns the node addresses of the list at header, guarding
// against cycles.
func walkList(mm *mem.Memory, header mem.Addr) ([]mem.Addr, error) {
	var nodes []mem.Addr
	cur := mem.Addr(mm.ReadWord(header))
	for cur != 0 {
		nodes = append(nodes, cur)
		if len(nodes) > 1<<22 {
			return nil, fmt.Errorf("workload: list at %s appears cyclic", header)
		}
		cur = mem.Addr(mm.ReadWord(cur + offNext))
	}
	return nodes, nil
}

// buildSortedList builds a sentinel-headed sorted list: header+0 points to a
// permanent sentinel node with key 0; the given keys (all >= 1, ascending)
// follow it. Returns the header address.
func buildSortedList(mm *mem.Memory, keys []uint64) mem.Addr {
	header := mm.AllocLine()
	var head uint64
	for i := len(keys) - 1; i >= 0; i-- {
		head = uint64(allocNode(mm, keys[i], head, keys[i]))
	}
	sentinel := allocNode(mm, 0, head, 0)
	mm.WriteWord(header+0, uint64(sentinel))
	return header
}

// --- Immutable-footprint AR templates -----------------------------------

// arSwap builds the arrayswap AR of Listing 1: exchange the words at the
// two preset addresses in R0 and R1. No indirection: Immutable.
func arSwap(id int) *isa.Program {
	b := isa.NewBuilder("arrayswap/swap")
	b.Load(isa.R8, isa.R0, 0)
	b.Load(isa.R9, isa.R1, 0)
	b.Store(isa.R0, 0, isa.R9)
	b.Store(isa.R1, 0, isa.R8)
	b.Halt()
	return b.Build(id)
}

// arRotate3 rotates the words at three preset addresses (R0<-R1<-R2<-R0);
// like arSwap it preserves the array's multiset. Immutable.
func arRotate3(id int) *isa.Program {
	b := isa.NewBuilder("arrayswap/rotate3")
	b.Load(isa.R8, isa.R0, 0)
	b.Load(isa.R9, isa.R1, 0)
	b.Load(isa.R10, isa.R2, 0)
	b.Store(isa.R0, 0, isa.R9)
	b.Store(isa.R1, 0, isa.R10)
	b.Store(isa.R2, 0, isa.R8)
	b.Halt()
	return b.Build(id)
}

// arAddDirect builds name: an atomic add of R1 to the word at preset
// address R0. Immutable.
func arAddDirect(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0)
	b.Add(isa.R8, isa.R8, isa.R1)
	b.Store(isa.R0, 0, isa.R8)
	b.Halt()
	return b.Build(id)
}

// arMWObject builds the mwobject AR: four additions to four words in the
// same cacheline at preset base R0 [12, 13]. Immutable.
func arMWObject(id int) *isa.Program {
	b := isa.NewBuilder("mwobject/add4")
	for w := 0; w < 4; w++ {
		off := int64(w * 8)
		b.Load(isa.R8, isa.R0, off)
		b.Addi(isa.R8, isa.R8, 1)
		b.Store(isa.R0, off, isa.R8)
	}
	b.Halt()
	return b.Build(id)
}

// arStridedUpdate builds name: add R2 to n words starting at preset base R0
// with the given stride. Loop bounds are immediates, so there is no
// indirection: Immutable (the kmeans centroid-style update).
func arStridedUpdate(id int, name string, n int, stride int64) *isa.Program {
	b := isa.NewBuilder(name)
	for i := 0; i < n; i++ {
		off := int64(i) * stride
		b.Load(isa.R8, isa.R0, off)
		b.Add(isa.R8, isa.R8, isa.R2)
		b.Store(isa.R0, off, isa.R8)
	}
	b.Halt()
	return b.Build(id)
}

// --- Likely-immutable AR templates ---------------------------------------

// arPtrTransfer builds the bitcoin AR of Listing 2: move R2 coins between
// the wallets whose pointers sit in the slots at preset addresses R0 (from)
// and R1 (to). The wallet pointers are loaded (an indirection), but no
// concurrent AR ever rewrites the pointer table: LikelyImmutable.
func arPtrTransfer(id int) *isa.Program {
	b := isa.NewBuilder("bitcoin/transfer").DeclareIndirectionsImmutable()
	b.Load(isa.R8, isa.R0, 0) // from-wallet pointer
	b.Load(isa.R9, isa.R8, 0) // from-balance
	b.Sub(isa.R9, isa.R9, isa.R2)
	b.Store(isa.R8, 0, isa.R9)
	b.Load(isa.R10, isa.R1, 0) // to-wallet pointer
	b.Load(isa.R11, isa.R10, 0)
	b.Add(isa.R11, isa.R11, isa.R2)
	b.Store(isa.R10, 0, isa.R11)
	b.Halt()
	return b.Build(id)
}

// arPtrRMW builds name: follow nPtrs pointers from the preset slot
// addresses in R0..R(nPtrs-1) and add R5 to the word each one targets.
// Marked likely-immutable when the pointer slots are never rewritten by
// concurrent ARs.
func arPtrRMW(id int, name string, nPtrs int, likely bool) *isa.Program {
	if nPtrs < 1 || nPtrs > 4 {
		panic("workload: arPtrRMW supports 1..4 pointers")
	}
	b := isa.NewBuilder(name)
	if likely {
		b.DeclareIndirectionsImmutable()
	}
	for i := 0; i < nPtrs; i++ {
		slot := isa.Reg(i) // R0..R3
		b.Load(isa.R8, slot, 0)
		b.Load(isa.R9, isa.R8, 0)
		b.Add(isa.R9, isa.R9, isa.R5)
		b.Store(isa.R8, 0, isa.R9)
	}
	b.Halt()
	return b.Build(id)
}

// --- Mutable AR templates -------------------------------------------------

// arListSearchCount builds name, Listing 3's traversal: walk the list at
// header R0 counting nodes with key R1, then store the count to the preset
// result slot R2. Addresses come from loaded next pointers: Mutable.
func arListSearchCount(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Li(isa.R9, 0)           // count
	b.Load(isa.R8, isa.R0, 0) // cur = head
	b.Label("loop")
	b.Beq(isa.R8, isa.R14, "done")
	b.Load(isa.R10, isa.R8, offKey)
	b.Bne(isa.R10, isa.R1, "next")
	b.Addi(isa.R9, isa.R9, 1)
	b.Label("next")
	b.Load(isa.R8, isa.R8, offNext)
	b.Jump("loop")
	b.Label("done")
	b.Store(isa.R2, 0, isa.R9)
	b.Halt()
	return b.Build(id)
}

// arListInsertSorted builds name: insert the pre-allocated node R2 (key R1,
// key >= 1) into the sorted list at header R0, keeping ascending key order,
// and add 1 to the size ledger at preset R3. The list keeps a permanent
// sentinel first node (key 0), so the predecessor is always a real node.
// Mutable (the AR modifies its own indirection chain).
func arListInsertSorted(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0)       // prev = sentinel
	b.Load(isa.R9, isa.R8, offNext) // cur = sentinel.next
	b.Label("loop")
	b.Beq(isa.R9, isa.R14, "attach")
	b.Load(isa.R10, isa.R9, offKey)
	b.Bge(isa.R10, isa.R1, "attach") // cur.key >= key: insert before cur
	b.Mov(isa.R8, isa.R9)
	b.Load(isa.R9, isa.R9, offNext)
	b.Jump("loop")
	b.Label("attach")
	b.Store(isa.R2, offNext, isa.R9) // node.next = cur
	b.Store(isa.R8, offNext, isa.R2) // prev.next = node
	b.Load(isa.R11, isa.R3, 0)       // size ledger at preset R3
	b.Addi(isa.R11, isa.R11, 1)
	b.Store(isa.R3, 0, isa.R11)
	b.Halt()
	return b.Build(id)
}

// arListInsertUnique builds name: insert the pre-allocated node R2 (key R1
// >= 1) into the sentinel-headed sorted list at header R0 only if the key is
// absent, bumping the size ledger at R3 on a real insert. Keys stay unique,
// so the list is bounded by the key range. Mutable.
func arListInsertUnique(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0)       // prev = sentinel
	b.Load(isa.R9, isa.R8, offNext) // cur
	b.Label("loop")
	b.Beq(isa.R9, isa.R14, "attach")
	b.Load(isa.R10, isa.R9, offKey)
	b.Beq(isa.R10, isa.R1, "done") // already present
	b.Bge(isa.R10, isa.R1, "attach")
	b.Mov(isa.R8, isa.R9)
	b.Load(isa.R9, isa.R9, offNext)
	b.Jump("loop")
	b.Label("attach")
	b.Store(isa.R2, offNext, isa.R9)
	b.Store(isa.R8, offNext, isa.R2)
	b.Load(isa.R11, isa.R3, 0)
	b.Addi(isa.R11, isa.R11, 1)
	b.Store(isa.R3, 0, isa.R11)
	b.Label("done")
	b.Halt()
	return b.Build(id)
}

// arListPushHead builds name: push the pre-allocated node R2 onto the list
// at header R0, with an emptiness check branch on the loaded head (a control
// dependence). The footprint (header line + node line) only changes when the
// stack flips between empty and non-empty, so benchmarks may declare it
// likely-immutable.
func arListPushHead(id int, name string, likely bool) *isa.Program {
	b := isa.NewBuilder(name)
	if likely {
		b.DeclareIndirectionsImmutable()
	}
	b.Load(isa.R8, isa.R0, 0) // head
	b.Beq(isa.R8, isa.R14, "empty")
	b.Store(isa.R2, offNext, isa.R8)
	b.Jump("link")
	b.Label("empty")
	b.Store(isa.R2, offNext, isa.R14)
	b.Label("link")
	b.Store(isa.R0, 0, isa.R2) // head = node
	b.Load(isa.R9, isa.R3, 0)  // pushed-sum ledger at preset R3
	b.Add(isa.R9, isa.R9, isa.R1)
	b.Store(isa.R3, 0, isa.R9) // ledger += value (R1)
	b.Store(isa.R2, offVal, isa.R1)
	b.Halt()
	return b.Build(id)
}

// arListPopHead builds name: pop the head node of the list at header R0; if
// non-empty, unlink it and add its value to the taken-sum ledger at preset
// R3. Mutable: the unlink address comes from the loaded head pointer.
func arListPopHead(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0) // head
	b.Beq(isa.R8, isa.R14, "done")
	b.Load(isa.R9, isa.R8, offNext)
	b.Store(isa.R0, 0, isa.R9) // head = head.next
	b.Load(isa.R10, isa.R8, offVal)
	b.Load(isa.R11, isa.R3, 0)
	b.Add(isa.R11, isa.R11, isa.R10)
	b.Store(isa.R3, 0, isa.R11) // ledger += node.val
	b.Label("done")
	b.Halt()
	return b.Build(id)
}

// arListRemoveKey builds name: remove the first node with key R1 (>= 1)
// from the sentinel-headed list at header R0, decrementing the size ledger
// at R3 when a node is unlinked. Mutable.
func arListRemoveKey(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0)       // prev = sentinel
	b.Load(isa.R9, isa.R8, offNext) // cur = sentinel.next
	b.Label("loop")
	b.Beq(isa.R9, isa.R14, "done")
	b.Load(isa.R10, isa.R9, offKey)
	b.Beq(isa.R10, isa.R1, "unlink")
	b.Mov(isa.R8, isa.R9)
	b.Load(isa.R9, isa.R9, offNext)
	b.Jump("loop")
	b.Label("unlink")
	b.Load(isa.R11, isa.R9, offNext)
	b.Store(isa.R8, offNext, isa.R11) // prev.next = cur.next
	b.Load(isa.R12, isa.R3, 0)
	b.Addi(isa.R12, isa.R12, -1)
	b.Store(isa.R3, 0, isa.R12)
	b.Label("done")
	b.Halt()
	return b.Build(id)
}

// arBulkRoute builds name, the labyrinth-style claim: R0 points at a route
// array of R1 cell addresses; each cell is read and incremented. The cell
// addresses are loaded (indirection) and the loop bound is a register, so
// the AR is Mutable; with long routes its footprint overflows the ALT and
// becomes non-convertible — the paper's "too big to allow for discovery"
// case.
func arBulkRoute(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Li(isa.R9, 0) // i = 0
	b.Label("loop")
	b.Bge(isa.R9, isa.R1, "done")
	b.Muli(isa.R10, isa.R9, 8)
	b.Add(isa.R10, isa.R10, isa.R0)
	b.Load(isa.R11, isa.R10, 0) // cell address
	b.Load(isa.R12, isa.R11, 0)
	b.Addi(isa.R12, isa.R12, 1)
	b.Store(isa.R11, 0, isa.R12)
	b.Addi(isa.R9, isa.R9, 1)
	b.Jump("loop")
	b.Label("done")
	b.Halt()
	return b.Build(id)
}

// arQueueEnqueue builds name: Michael-Scott-style enqueue into the queue at
// header R0 (sentinel pointer at +0, tail pointer at +8): link the
// pre-allocated node R2 carrying value R1 after the current tail and swing
// the tail, adding R1 to the pushed-sum ledger at R3. The link address comes
// from the loaded tail pointer (an indirection); following Table 1's
// judgement the benchmark declares it likely-immutable — between the retries
// of one enqueue the tail only moves when another enqueue commits.
func arQueueEnqueue(id int, name string) *isa.Program {
	b := isa.NewBuilder(name).DeclareIndirectionsImmutable()
	b.Store(isa.R2, offNext, isa.R14) // node.next = nil
	b.Store(isa.R2, offVal, isa.R1)
	b.Load(isa.R8, isa.R0, 8)        // tail
	b.Store(isa.R8, offNext, isa.R2) // tail.next = node
	b.Store(isa.R0, 8, isa.R2)       // tail = node
	b.Load(isa.R9, isa.R3, 0)
	b.Add(isa.R9, isa.R9, isa.R1)
	b.Store(isa.R3, 0, isa.R9)
	b.Halt()
	return b.Build(id)
}

// arQueueDequeue builds name: dequeue from the queue at header R0: the
// sentinel's successor (if any) yields its value — added to the taken-sum
// ledger at R3 — and becomes the new sentinel. Mutable.
func arQueueDequeue(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0)       // sentinel
	b.Load(isa.R9, isa.R8, offNext) // first real node
	b.Beq(isa.R9, isa.R14, "done")
	b.Load(isa.R10, isa.R9, offVal)
	b.Store(isa.R0, 0, isa.R9) // first becomes the new sentinel
	b.Load(isa.R11, isa.R3, 0)
	b.Add(isa.R11, isa.R11, isa.R10)
	b.Store(isa.R3, 0, isa.R11)
	b.Label("done")
	b.Halt()
	return b.Build(id)
}

// arDequePushBottom builds name: Chase-Lev-style owner push into the
// work-stealing deque with header R0 (top at +0, bottom at +8) and buffer
// base R4: write value R1 to slot bottom&mask and advance bottom, adding R1
// to the pushed-sum ledger at R3. The slot address comes from the loaded
// bottom index, but only the owner thread ever writes bottom, so the
// indirection source is not concurrently modified: LikelyImmutable.
func arDequePushBottom(id int, name string, mask int64) *isa.Program {
	b := isa.NewBuilder(name).DeclareIndirectionsImmutable()
	b.Load(isa.R8, isa.R0, 8) // bottom
	b.Andi(isa.R9, isa.R8, mask)
	b.Muli(isa.R9, isa.R9, 8)
	b.Add(isa.R9, isa.R9, isa.R4)
	b.Store(isa.R9, 0, isa.R1) // buffer[bottom&mask] = val
	b.Addi(isa.R8, isa.R8, 1)
	b.Store(isa.R0, 8, isa.R8) // bottom++
	b.Load(isa.R10, isa.R3, 0)
	b.Add(isa.R10, isa.R10, isa.R1)
	b.Store(isa.R3, 0, isa.R10)
	b.Halt()
	return b.Build(id)
}

// arDequeSteal builds name: steal from the top of the deque with header R0
// and buffer base R4: if top < bottom, take buffer[top&mask] (added to the
// taken-sum ledger at R3) and advance top. Mutable: top and bottom are
// modified by concurrent ARs.
func arDequeSteal(id int, name string, mask int64) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0) // top
	b.Load(isa.R9, isa.R0, 8) // bottom
	b.Bge(isa.R8, isa.R9, "empty")
	b.Andi(isa.R10, isa.R8, mask)
	b.Muli(isa.R10, isa.R10, 8)
	b.Add(isa.R10, isa.R10, isa.R4)
	b.Load(isa.R11, isa.R10, 0) // stolen value
	b.Addi(isa.R8, isa.R8, 1)
	b.Store(isa.R0, 0, isa.R8) // top++
	b.Load(isa.R12, isa.R3, 0)
	b.Add(isa.R12, isa.R12, isa.R11)
	b.Store(isa.R3, 0, isa.R12)
	b.Label("empty")
	b.Halt()
	return b.Build(id)
}

// arTreeInsert builds name: insert pre-allocated node R2 (key R1) into the
// BST whose root pointer lives in the header slot R0+0. The tree keeps a
// permanent root node, so descent always starts from a real node. Mutable.
func arTreeInsert(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0) // cur = root (never nil)
	b.Label("loop")
	b.Load(isa.R9, isa.R8, offKey)
	b.Blt(isa.R1, isa.R9, "left")
	b.Load(isa.R10, isa.R8, offRight)
	b.Beq(isa.R10, isa.R14, "attachRight")
	b.Mov(isa.R8, isa.R10)
	b.Jump("loop")
	b.Label("left")
	b.Load(isa.R10, isa.R8, offLeft)
	b.Beq(isa.R10, isa.R14, "attachLeft")
	b.Mov(isa.R8, isa.R10)
	b.Jump("loop")
	b.Label("attachRight")
	b.Store(isa.R8, offRight, isa.R2)
	b.Jump("count")
	b.Label("attachLeft")
	b.Store(isa.R8, offLeft, isa.R2)
	b.Label("count")
	b.Load(isa.R11, isa.R3, 0) // size ledger
	b.Addi(isa.R11, isa.R11, 1)
	b.Store(isa.R3, 0, isa.R11)
	b.Halt()
	return b.Build(id)
}

// arTreeUpdate builds name: find key R1 in the BST at header R0 and, when
// the match is a leaf, add R5 to its aux word; no-op otherwise. Restricting
// writes to leaves matches the leaf-oriented record updates of the BST
// benchmarks [20, 33] — interior nodes (and in particular the root, which
// every traversal reads) are never written, so one update cannot invalidate
// the whole system's read sets. Mutable.
func arTreeUpdate(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Load(isa.R8, isa.R0, 0)
	b.Label("loop")
	b.Beq(isa.R8, isa.R14, "done")
	b.Load(isa.R9, isa.R8, offKey)
	b.Beq(isa.R9, isa.R1, "found")
	b.Blt(isa.R1, isa.R9, "left")
	b.Load(isa.R8, isa.R8, offRight)
	b.Jump("loop")
	b.Label("left")
	b.Load(isa.R8, isa.R8, offLeft)
	b.Jump("loop")
	b.Label("found")
	b.Load(isa.R11, isa.R8, offLeft)
	b.Bne(isa.R11, isa.R14, "done")
	b.Load(isa.R11, isa.R8, offRight)
	b.Bne(isa.R11, isa.R14, "done")
	b.Load(isa.R10, isa.R8, offAux)
	b.Add(isa.R10, isa.R10, isa.R5)
	b.Store(isa.R8, offAux, isa.R10)
	b.Label("done")
	b.Halt()
	return b.Build(id)
}

// arTreeSearch builds name: look up key R1 in the BST at header R0, storing
// 1/0 (found) into the preset result slot R2. Mutable (traversal).
func arTreeSearch(id int, name string) *isa.Program {
	b := isa.NewBuilder(name)
	b.Li(isa.R11, 0)
	b.Load(isa.R8, isa.R0, 0)
	b.Label("loop")
	b.Beq(isa.R8, isa.R14, "done")
	b.Load(isa.R9, isa.R8, offKey)
	b.Bne(isa.R9, isa.R1, "descend")
	b.Li(isa.R11, 1)
	b.Jump("done")
	b.Label("descend")
	b.Blt(isa.R1, isa.R9, "left")
	b.Load(isa.R8, isa.R8, offRight)
	b.Jump("loop")
	b.Label("left")
	b.Load(isa.R8, isa.R8, offLeft)
	b.Jump("loop")
	b.Label("done")
	b.Store(isa.R2, 0, isa.R11)
	b.Halt()
	return b.Build(id)
}
