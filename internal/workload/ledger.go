package workload

import "repro/internal/mem"

// ledgers gives each simulated thread one private cacheline of counter
// words. ARs update ledger words *inside* the atomic region, so after the
// run the ledgers and the data structures form a closed system that Verify
// can check exactly (conservation), regardless of interleaving.
type ledgers struct {
	lines []mem.Addr
}

func newLedgers(mm *mem.Memory, threads int) ledgers {
	l := ledgers{lines: make([]mem.Addr, threads)}
	for i := range l.lines {
		l.lines[i] = mm.AllocLine()
	}
	return l
}

// slot returns the address of word w (0..7) of thread tid's ledger line.
func (l ledgers) slot(tid, w int) mem.Addr {
	return l.lines[tid] + mem.Addr(w*8)
}

// sum adds word w across all threads (modular uint64 arithmetic, so
// decrements recorded as two's-complement work out).
func (l ledgers) sum(mm *mem.Memory, w int) uint64 {
	var s uint64
	for tid := range l.lines {
		s += mm.ReadWord(l.slot(tid, w))
	}
	return s
}
