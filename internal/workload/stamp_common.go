package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The STAMP benchmarks [30] cannot be run natively (they are pthread/x86
// programs driven by gem5 in the paper); each is rebuilt as a synthetic
// kernel over the simulated memory that preserves what CLEAR is sensitive
// to: the AR count and Table 1 mutability classes, the footprint sizes
// (small convertible regions vs. ALT/SQ-overflowing ones), and the
// contention structure (hot shared queues vs. wide tables). This file is the
// toolkit those kernels share.

// ptrTable is a pointer table whose slots are written once at setup — the
// "indirection values not modified by concurrent ARs" pattern behind every
// likely-immutable classification.
type ptrTable struct {
	table   mem.Addr
	targets []mem.Addr
}

func buildPtrTable(mm *mem.Memory, n int) ptrTable {
	pt := ptrTable{
		table:   mm.AllocWords(n, mem.LineSize),
		targets: make([]mem.Addr, n),
	}
	for i := 0; i < n; i++ {
		t := mm.AllocLine()
		pt.targets[i] = t
		mm.WriteWord(pt.table+mem.Addr(i*8), uint64(t))
	}
	return pt
}

func (p ptrTable) slotAddr(i int) mem.Addr { return p.table + mem.Addr(i*8) }

// targetSum sums all target words.
func (p ptrTable) targetSum(mm *mem.Memory) uint64 {
	var s uint64
	for _, t := range p.targets {
		s += mm.ReadWord(t)
	}
	return s
}

// kit carries the per-run memory handle and builds operation generators that
// also maintain the benchmark's verification expectations.
type kit struct {
	mm *mem.Memory
	// regBuf chunk-allocates the register-preset slices the generators
	// produce. Every invocation of a run is retained together by the
	// pre-generated SliceSource and dropped together, so carving presets out
	// of shared chunks trades one heap node per invocation for one per
	// regArenaChunk presets without changing any lifetime.
	regBuf []cpu.RegInit
}

const regArenaChunk = 4096

// regs copies the presets into the kit's arena and returns the stable
// chunk-backed slice (capped so later appends cannot clobber a neighbour).
func (k *kit) regs(pairs ...cpu.RegInit) []cpu.RegInit {
	if len(k.regBuf)+len(pairs) > cap(k.regBuf) {
		k.regBuf = make([]cpu.RegInit, 0, regArenaChunk)
	}
	n := len(k.regBuf)
	k.regBuf = append(k.regBuf, pairs...)
	return k.regBuf[n : n+len(pairs) : n+len(pairs)]
}

// genListInsert inserts a fresh node (val 1, for pop counting) into a
// sentinel-headed sorted list; *count tracks generated inserts.
func (k *kit) genListInsert(prog *isa.Program, header mem.Addr, ledSlot mem.Addr, keyRange int, count *uint64) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		key := uint64(1 + rng.Intn(keyRange))
		node := allocNode(k.mm, key, 0, 1)
		*count++
		return cpu.Invocation{Prog: prog, Regs: k.regs(
			cpu.RegInit{Reg: isa.R0, Val: uint64(header)},
			cpu.RegInit{Reg: isa.R1, Val: key},
			cpu.RegInit{Reg: isa.R2, Val: uint64(node)},
			cpu.RegInit{Reg: isa.R3, Val: uint64(ledSlot)},
		)}
	}
}

// genListRemove removes a random key from a sentinel-headed sorted list,
// decrementing the net ledger when it unlinks.
func (k *kit) genListRemove(prog *isa.Program, header mem.Addr, ledSlot mem.Addr, keyRange int) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		return cpu.Invocation{Prog: prog, Regs: k.regs(
			cpu.RegInit{Reg: isa.R0, Val: uint64(header)},
			cpu.RegInit{Reg: isa.R1, Val: uint64(1 + rng.Intn(keyRange))},
			cpu.RegInit{Reg: isa.R3, Val: uint64(ledSlot)},
		)}
	}
}

// genListScan runs the Listing 3 counting traversal.
func (k *kit) genListScan(prog *isa.Program, header mem.Addr, resultSlot mem.Addr, keyRange int) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		return cpu.Invocation{Prog: prog, Regs: k.regs(
			cpu.RegInit{Reg: isa.R0, Val: uint64(header)},
			cpu.RegInit{Reg: isa.R1, Val: uint64(1 + rng.Intn(keyRange))},
			cpu.RegInit{Reg: isa.R2, Val: uint64(resultSlot)},
		)}
	}
}

// genPush pushes a fresh unit-value node onto a headerless (non-sentinel)
// list; the push ledger accumulates +1 per push.
func (k *kit) genPush(prog *isa.Program, header mem.Addr, ledSlot mem.Addr, count *uint64) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		node := allocNode(k.mm, uint64(1+rng.Intn(64)), 0, 1)
		*count++
		return cpu.Invocation{Prog: prog, Regs: k.regs(
			cpu.RegInit{Reg: isa.R0, Val: uint64(header)},
			cpu.RegInit{Reg: isa.R1, Val: 1}, // unit value for counting
			cpu.RegInit{Reg: isa.R2, Val: uint64(node)},
			cpu.RegInit{Reg: isa.R3, Val: uint64(ledSlot)},
		)}
	}
}

// genPop pops the head of a headerless list; the taken ledger accumulates
// the node's (unit) value.
func (k *kit) genPop(prog *isa.Program, header mem.Addr, ledSlot mem.Addr) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		return cpu.Invocation{Prog: prog, Regs: k.regs(
			cpu.RegInit{Reg: isa.R0, Val: uint64(header)},
			cpu.RegInit{Reg: isa.R3, Val: uint64(ledSlot)},
		)}
	}
}

// genPtrRMW adds a random amount through nPtrs random pointer slots;
// *expect accumulates the total added across all targets.
func (k *kit) genPtrRMW(prog *isa.Program, pt ptrTable, nPtrs, amountMax int, expect *uint64) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		amount := uint64(1 + rng.Intn(amountMax))
		var buf [1 + isa.NumRegs]cpu.RegInit
		buf[0] = cpu.RegInit{Reg: isa.R5, Val: amount}
		for i := 0; i < nPtrs; i++ {
			slot := rng.Intn(len(pt.targets))
			buf[1+i] = cpu.RegInit{Reg: isa.Reg(i), Val: uint64(pt.slotAddr(slot))}
		}
		*expect += amount * uint64(nPtrs)
		return cpu.Invocation{Prog: prog, Regs: k.regs(buf[:1+nPtrs]...)}
	}
}

// genAddDirect adds a random amount to a random slot of a direct-addressed
// array; *expect accumulates the total.
func (k *kit) genAddDirect(prog *isa.Program, slots []mem.Addr, amountMax int, expect *uint64) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		amount := uint64(1 + rng.Intn(amountMax))
		*expect += amount
		return cpu.Invocation{Prog: prog, Regs: k.regs(
			cpu.RegInit{Reg: isa.R0, Val: uint64(slots[rng.Intn(len(slots))])},
			cpu.RegInit{Reg: isa.R1, Val: amount},
		)}
	}
}

// genStrided adds a random amount to every word of a strided region at a
// random base; *expect accumulates amount × n.
func (k *kit) genStrided(prog *isa.Program, bases []mem.Addr, n, amountMax int, expect *uint64) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		amount := uint64(1 + rng.Intn(amountMax))
		*expect += amount * uint64(n)
		return cpu.Invocation{Prog: prog, Regs: k.regs(
			cpu.RegInit{Reg: isa.R0, Val: uint64(bases[rng.Intn(len(bases))])},
			cpu.RegInit{Reg: isa.R2, Val: amount},
		)}
	}
}

// genBulkRoute builds a fresh random route (a per-invocation array of cell
// addresses, like labyrinth's privately-computed path) and claims every
// cell; *expect accumulates the route length.
func (k *kit) genBulkRoute(prog *isa.Program, cells []mem.Addr, minLen, maxLen int, expect *uint64) opGen {
	return func(rng *sim.RNG) cpu.Invocation {
		n := minLen + rng.Intn(maxLen-minLen+1)
		route := k.mm.AllocWords(n, mem.LineSize)
		for i := 0; i < n; i++ {
			k.mm.WriteWord(route+mem.Addr(i*8), uint64(cells[rng.Intn(len(cells))]))
		}
		*expect += uint64(n)
		return cpu.Invocation{Prog: prog, Regs: k.regs(
			cpu.RegInit{Reg: isa.R0, Val: uint64(route)},
			cpu.RegInit{Reg: isa.R1, Val: uint64(n)},
		)}
	}
}

// buildUnitList builds a non-sentinel list of n nodes whose values are all 1
// (so pop ledgers count nodes), with random keys below keyRange.
func buildUnitList(mm *mem.Memory, rng *sim.RNG, n, keyRange int) mem.Addr {
	header := mm.AllocLine()
	var head uint64
	for i := 0; i < n; i++ {
		head = uint64(allocNode(mm, uint64(1+rng.Intn(keyRange)), head, 1))
	}
	mm.WriteWord(header, head)
	return header
}

// verifyCount checks a counted invariant with a uniform error format.
func verifyCount(what string, got, want int64) error {
	if got != want {
		return fmt.Errorf("%s: got %d, want %d", what, got, want)
	}
	return nil
}

// listLen returns the number of real nodes in a sentinel-headed list.
func listLen(mm *mem.Memory, header mem.Addr) (int, error) {
	nodes, err := walkList(mm, header)
	if err != nil {
		return 0, err
	}
	return len(nodes) - 1, nil
}

// plainListLen returns the node count of a non-sentinel list.
func plainListLen(mm *mem.Memory, header mem.Addr) (int, error) {
	nodes, err := walkList(mm, header)
	if err != nil {
		return 0, err
	}
	return len(nodes), nil
}
