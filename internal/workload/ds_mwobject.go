package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("mwobject", func() Benchmark { return newMWObject() }) }

// mwobject [12, 13]: every thread performs four additions to four words that
// share one cacheline. The single AR is Immutable and tiny, and contention
// is maximal — the paper's best case for NS-CL (Figure 12).
type mwobject struct {
	add4   *isa.Program
	object mem.Addr
	ops    uint64
}

func newMWObject() *mwobject { return &mwobject{add4: arMWObject(1)} }

func (m *mwobject) Name() string        { return "mwobject" }
func (m *mwobject) ARs() []*isa.Program { return []*isa.Program{m.add4} }

func (m *mwobject) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	m.object = mm.AllocLine()
	return nil
}

func (m *mwobject) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	m.ops += uint64(ops)
	return buildMix(rng, ops, 80, []mixEntry{
		{weight: 1, gen: func(rng *sim.RNG) cpu.Invocation {
			return cpu.Invocation{Prog: m.add4, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(m.object)},
			)}
		}},
	})
}

func (m *mwobject) Verify(mm *mem.Memory) error {
	for w := 0; w < 4; w++ {
		got := mm.ReadWord(m.object + mem.Addr(w*8))
		if got != m.ops {
			return fmt.Errorf("mwobject: word %d is %d, want %d (lost updates)", w, got, m.ops)
		}
	}
	return nil
}
