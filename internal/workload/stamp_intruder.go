package workload

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("intruder", func() Benchmark { return newIntruder() }) }

// intruder: network intrusion detection. Table 1: one mutable AR (the hot
// shared packet queue pop) and two likely-immutable ARs (per-flow and
// decoder statistics updated through read-only pointer tables). Contention
// on the packet queue is fierce, so the paper sees intruder gain the most
// from CLEAR (Figure 8) while paying the largest discovery overhead.
type intruder struct {
	kit
	popPacket *isa.Program
	flowStats *isa.Program
	decStats  *isa.Program

	packets mem.Addr
	flows   ptrTable
	led     ledgers // 0: packet pops

	initialPackets int
	ptrExpect      uint64
}

func newIntruder() *intruder {
	return &intruder{
		popPacket: arListPopHead(1, "intruder/popPacket"),
		flowStats: arPtrRMW(2, "intruder/updateFlowStats", 2, true),
		decStats:  arPtrRMW(3, "intruder/updateDecoderState", 1, true),
	}
}

func (in *intruder) Name() string { return "intruder" }
func (in *intruder) ARs() []*isa.Program {
	return []*isa.Program{in.popPacket, in.flowStats, in.decStats}
}

func (in *intruder) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	in.mm = mm
	// The packet queue must outlast the run: size it to the worst case.
	in.initialPackets = 8192
	in.packets = buildUnitList(mm, rng, in.initialPackets, 256)
	in.flows = buildPtrTable(mm, 24)
	in.led = newLedgers(mm, threads)
	return nil
}

func (in *intruder) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	pops := in.led.slot(tid, 0)
	return buildMix(rng, ops, 90, []mixEntry{
		{weight: 45, gen: in.genPop(in.popPacket, in.packets, pops)},
		{weight: 30, gen: in.genPtrRMW(in.flowStats, in.flows, 2, 8, &in.ptrExpect)},
		{weight: 25, gen: in.genPtrRMW(in.decStats, in.flows, 1, 8, &in.ptrExpect)},
	})
}

func (in *intruder) Verify(mm *mem.Memory) error {
	n, err := plainListLen(mm, in.packets)
	if err != nil {
		return err
	}
	if err := verifyCount("intruder: packet queue", int64(n), int64(in.initialPackets)-int64(in.led.sum(mm, 0))); err != nil {
		return err
	}
	return verifyCount("intruder: stats sum", int64(in.flows.targetSum(mm)), int64(in.ptrExpect))
}
