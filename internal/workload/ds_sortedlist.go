package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func init() { register("sorted-list", func() Benchmark { return newSortedList() }) }

// sorted-list [20]: an ordered linked list. The traversal of Listing 3
// (count) and the sorted insert are Mutable; a third AR updates the
// benchmark's operation counter directly — the one Immutable region Table 1
// reports.
type sortedList struct {
	count   *isa.Program
	insert  *isa.Program
	bumpOps *isa.Program

	mm          *mem.Memory
	header      mem.Addr
	opsCounter  mem.Addr
	led         ledgers // word 0: inserts
	results     []mem.Addr
	initialSize int
	bumps       uint64
	keyRange    int
}

func newSortedList() *sortedList {
	return &sortedList{
		count:    arListSearchCount(1, "sorted-list/count"),
		insert:   arListInsertUnique(2, "sorted-list/insert"),
		bumpOps:  arAddDirect(3, "sorted-list/op-counter"),
		keyRange: 56,
	}
}

func (s *sortedList) Name() string { return "sorted-list" }
func (s *sortedList) ARs() []*isa.Program {
	return []*isa.Program{s.count, s.insert, s.bumpOps}
}

func (s *sortedList) Setup(mm *mem.Memory, rng *sim.RNG, threads int) error {
	s.mm = mm
	// Seed with half the key space, keys unique (the insert AR preserves
	// uniqueness, bounding the list by the key range).
	var keys []uint64
	for k := 1; k <= s.keyRange; k++ {
		if rng.Intn(2) == 0 {
			keys = append(keys, uint64(k))
		}
	}
	s.header = buildSortedList(mm, keys)
	s.initialSize = len(keys)
	s.opsCounter = mm.AllocLine()
	s.led = newLedgers(mm, threads)
	s.results = make([]mem.Addr, threads)
	for i := range s.results {
		s.results[i] = mm.AllocLine()
	}
	return nil
}

func (s *sortedList) Source(tid int, rng *sim.RNG, ops int) cpu.InvocationSource {
	sizeLedger := uint64(s.led.slot(tid, 0))
	result := uint64(s.results[tid])
	src := buildMix(rng, ops, 180, []mixEntry{
		{weight: 40, gen: func(rng *sim.RNG) cpu.Invocation {
			return cpu.Invocation{Prog: s.count, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(s.header)},
				cpu.RegInit{Reg: isa.R1, Val: uint64(1 + rng.Intn(s.keyRange))},
				cpu.RegInit{Reg: isa.R2, Val: result},
			)}
		}},
		{weight: 40, gen: func(rng *sim.RNG) cpu.Invocation {
			k := uint64(1 + rng.Intn(s.keyRange))
			return cpu.Invocation{Prog: s.insert, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(s.header)},
				cpu.RegInit{Reg: isa.R1, Val: k},
				cpu.RegInit{Reg: isa.R2, Val: uint64(0)}, // node; filled below
				cpu.RegInit{Reg: isa.R3, Val: sizeLedger},
			)}
		}},
		{weight: 20, gen: func(rng *sim.RNG) cpu.Invocation {
			return cpu.Invocation{Prog: s.bumpOps, Regs: regs(
				cpu.RegInit{Reg: isa.R0, Val: uint64(s.opsCounter)},
				cpu.RegInit{Reg: isa.R1, Val: 1},
			)}
		}},
	})
	for i := range src.Invs {
		inv := &src.Invs[i]
		switch inv.Prog {
		case s.insert:
			k := inv.Regs[1].Val
			inv.Regs[2].Val = uint64(allocNode(s.mm, k, 0, k))
		case s.bumpOps:
			s.bumps++
		}
	}
	return src
}

func (s *sortedList) Verify(mm *mem.Memory) error {
	nodes, err := walkList(mm, s.header)
	if err != nil {
		return err
	}
	// nodes[0] is the sentinel (key 0); real keys must be strictly
	// ascending (unique-insert discipline).
	prev := uint64(0)
	for i, n := range nodes {
		k := mm.ReadWord(n + offKey)
		if i > 0 && k <= prev {
			return fmt.Errorf("sorted-list: order/uniqueness violated at node %d: %d after %d", i, k, prev)
		}
		prev = k
	}
	got := len(nodes) - 1 // exclude sentinel
	want := s.initialSize + int(s.led.sum(mm, 0))
	if got != want {
		return fmt.Errorf("sorted-list: %d nodes, want %d (initial %d + ledger)", got, want, s.initialSize)
	}
	if c := mm.ReadWord(s.opsCounter); c != s.bumps {
		return fmt.Errorf("sorted-list: op counter %d, want %d", c, s.bumps)
	}
	return nil
}
