package workload

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// runSequential executes a benchmark on a single simulated core (no
// concurrency, no conflicts) — a reference check that every AR program's
// semantics agree with the benchmark's Verify invariant.
func runSequential(t *testing.T, name string, ops int) {
	t.Helper()
	bench, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	mm := mem.NewMemory(0x100000)
	rng := sim.NewRNG(7)
	if err := bench.Setup(mm, rng, 1); err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultSystemConfig()
	cfg.Cores = 1
	m, err := cpu.NewMachine(cfg, mm)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachFeeds([]cpu.InvocationSource{bench.Source(0, rng.Split(), ops)})
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Aborts != 0 {
		t.Fatalf("%s: %d aborts on a single core", name, m.Stats.Aborts)
	}
	if err := bench.Verify(mm); err != nil {
		t.Fatalf("%s: sequential reference run failed verification: %v", name, err)
	}
}

// TestSequentialReference: every benchmark, conflict-free.
func TestSequentialReference(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runSequential(t, name, 80)
		})
	}
}

// corrupt runs Setup, applies damage, and expects Verify to fail.
func expectVerifyFailure(t *testing.T, name string, damage func(Benchmark, *mem.Memory)) {
	t.Helper()
	bench, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	mm := mem.NewMemory(0x100000)
	rng := sim.NewRNG(1)
	if err := bench.Setup(mm, rng, 2); err != nil {
		t.Fatal(err)
	}
	if err := bench.Verify(mm); err != nil {
		t.Fatalf("%s: pristine state failed: %v", name, err)
	}
	damage(bench, mm)
	if err := bench.Verify(mm); err == nil {
		t.Fatalf("%s: verification accepted corrupted state", name)
	}
}

func TestVerifyCatchesDamage(t *testing.T) {
	t.Run("arrayswap", func(t *testing.T) {
		expectVerifyFailure(t, "arrayswap", func(b Benchmark, mm *mem.Memory) {
			a := b.(*arrayswap)
			mm.WriteWord(a.slots[0], 999999) // value not in the multiset
		})
	})
	t.Run("mwobject", func(t *testing.T) {
		expectVerifyFailure(t, "mwobject", func(b Benchmark, mm *mem.Memory) {
			m := b.(*mwobject)
			mm.WriteWord(m.object, 5) // counters must equal op count (0 here)
		})
	})
	t.Run("stack", func(t *testing.T) {
		expectVerifyFailure(t, "stack", func(b Benchmark, mm *mem.Memory) {
			s := b.(*stack)
			// Drop the whole stack without adjusting the ledgers.
			mm.WriteWord(s.header, 0)
		})
	})
	t.Run("queue", func(t *testing.T) {
		expectVerifyFailure(t, "queue", func(b Benchmark, mm *mem.Memory) {
			q := b.(*queue)
			// Detach the tail: tail pointer no longer reachable.
			mm.WriteWord(q.header+8, uint64(mm.AllocLine()))
		})
	})
	t.Run("deque", func(t *testing.T) {
		expectVerifyFailure(t, "deque", func(b Benchmark, mm *mem.Memory) {
			d := b.(*deque)
			// Manufacture an item without a matching push ledger entry.
			mm.WriteWord(d.headers[0]+8, 1) // bottom = 1
			mm.WriteWord(d.buffers[0], 7)   // slot value
		})
	})
	t.Run("bst", func(t *testing.T) {
		expectVerifyFailure(t, "bst", func(b Benchmark, mm *mem.Memory) {
			tree := b.(*bst)
			root := mem.Addr(mm.ReadWord(tree.header))
			left := mem.Addr(mm.ReadWord(root + offLeft))
			if left == 0 {
				t.Skip("seeded root has no left child")
			}
			// A left-subtree key above the root key violates the BST bound.
			mm.WriteWord(left+offKey, mm.ReadWord(root+offKey)+100)
		})
	})
	t.Run("hashmap", func(t *testing.T) {
		expectVerifyFailure(t, "hashmap", func(b Benchmark, mm *mem.Memory) {
			h := b.(*hashmap)
			// Splice a node whose key hashes elsewhere into bucket 0.
			sentinel := mem.Addr(mm.ReadWord(h.buckets[0]))
			bad := allocNode(mm, uint64(1+h.nbuckets), mm.ReadWord(sentinel+offNext), 1)
			mm.WriteWord(sentinel+offNext, uint64(bad))
		})
	})
	t.Run("labyrinth", func(t *testing.T) {
		expectVerifyFailure(t, "labyrinth", func(b Benchmark, mm *mem.Memory) {
			l := b.(*labyrinth)
			mm.WriteWord(l.cells[0], 3) // claims nobody made
		})
	})
	t.Run("kmeans-h", func(t *testing.T) {
		expectVerifyFailure(t, "kmeans-h", func(b Benchmark, mm *mem.Memory) {
			k := b.(*kmeans)
			mm.WriteWord(k.centroids[0], 1)
		})
	})
	t.Run("ssca2", func(t *testing.T) {
		expectVerifyFailure(t, "ssca2", func(b Benchmark, mm *mem.Memory) {
			s := b.(*ssca2)
			mm.WriteWord(s.degrees[0], 1)
		})
	})
	t.Run("yada", func(t *testing.T) {
		expectVerifyFailure(t, "yada", func(b Benchmark, mm *mem.Memory) {
			y := b.(*yada)
			mm.WriteWord(y.badCounter, 1)
		})
	})
	t.Run("vacation-h", func(t *testing.T) {
		expectVerifyFailure(t, "vacation-h", func(b Benchmark, mm *mem.Memory) {
			v := b.(*vacation)
			mm.WriteWord(v.customers.targets[0], 1)
		})
	})
	t.Run("genome", func(t *testing.T) {
		expectVerifyFailure(t, "genome", func(b Benchmark, mm *mem.Memory) {
			g := b.(*genome)
			// Remove a worklist node without a pop ledger entry.
			head := mem.Addr(mm.ReadWord(g.worklist))
			mm.WriteWord(g.worklist, mm.ReadWord(head+offNext))
		})
	})
	t.Run("bayes", func(t *testing.T) {
		expectVerifyFailure(t, "bayes", func(b Benchmark, mm *mem.Memory) {
			bb := b.(*bayes)
			mm.WriteWord(bb.scores.targets[0], 1)
		})
	})
	t.Run("intruder", func(t *testing.T) {
		expectVerifyFailure(t, "intruder", func(b Benchmark, mm *mem.Memory) {
			in := b.(*intruder)
			head := mem.Addr(mm.ReadWord(in.packets))
			mm.WriteWord(in.packets, mm.ReadWord(head+offNext))
		})
	})
}
