package cliutil

import (
	"flag"
	"io"
	"testing"

	"repro/internal/harness"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestRunFlagsParams(t *testing.T) {
	fs := newFlagSet()
	run := AddRunFlags(fs, RunDefaults{Bench: "hashmap", Config: "C", Cores: 8, Ops: 40, Retries: 4, Seed: 1})
	if err := fs.Parse([]string{"-bench", "bst", "-config", "w", "-cores", "16", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	p, err := run.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Benchmark != "bst" || p.Config != harness.ConfigW || p.Cores != 16 || p.OpsPerThread != 40 || p.RetryLimit != 4 || p.Seed != 9 {
		t.Fatalf("params = %+v", p)
	}

	fs = newFlagSet()
	run = AddRunFlags(fs, RunDefaults{Bench: "hashmap", Config: "C", Cores: 8, Ops: 40, Retries: 4, Seed: 1})
	if err := fs.Parse([]string{"-config", "Z"}); err != nil {
		t.Fatal(err)
	}
	if _, err := run.Params(); err == nil {
		t.Fatal("config Z did not error")
	}
}

func TestSweepFlagsStore(t *testing.T) {
	parse := func(t *testing.T, args ...string) *SweepFlags {
		t.Helper()
		fs := newFlagSet()
		sf := AddSweepFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return sf
	}

	// No flags: caching off, no error.
	if st, err := parse(t).Store(); err != nil || st != nil {
		t.Fatalf("no flags: store=%v err=%v, want nil/nil", st, err)
	}
	// -no-cache wins over -cache-dir.
	if st, err := parse(t, "-cache-dir", t.TempDir(), "-no-cache").Store(); err != nil || st != nil {
		t.Fatalf("-no-cache: store=%v err=%v, want nil/nil", st, err)
	}
	// -cache-dir alone opens (and creates) the store.
	dir := t.TempDir() + "/cache"
	st, err := parse(t, "-cache-dir", dir).Store()
	if err != nil || st == nil {
		t.Fatalf("-cache-dir: store=%v err=%v", st, err)
	}
	if st.Dir() != dir {
		t.Fatalf("store dir %q, want %q", st.Dir(), dir)
	}
	// -resume without -cache-dir is a usage error.
	if _, err := parse(t, "-resume").Store(); err == nil {
		t.Fatal("-resume without -cache-dir did not error")
	}
	// -resume with a missing directory is a usage error (typo guard)...
	if _, err := parse(t, "-cache-dir", t.TempDir()+"/missing", "-resume").Store(); err == nil {
		t.Fatal("-resume on a missing directory did not error")
	}
	// ...but with the directory of a previous sweep it opens normally.
	if st, err := parse(t, "-cache-dir", dir, "-resume").Store(); err != nil || st == nil {
		t.Fatalf("-resume on an existing cache: store=%v err=%v", st, err)
	}
}

func TestServiceFlagsValidate(t *testing.T) {
	parse := func(t *testing.T, args ...string) (*ServiceFlags, *SweepFlags) {
		t.Helper()
		fs := newFlagSet()
		sw := AddSweepFlags(fs)
		sv := AddServiceFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return sv, sw
	}

	// No -remote: everything is allowed, including -serve.
	if sv, sw := parse(t, "-no-cache"); sv.Validate("localhost:6070", sw) != nil {
		t.Fatal("validation rejected a server-mode flag set")
	}
	// -remote alone is fine.
	if sv, sw := parse(t, "-remote", "localhost:6070"); sv.Validate("", sw) != nil {
		t.Fatal("validation rejected a plain -remote")
	}
	// -remote + -serve: one process cannot be client and server.
	if sv, sw := parse(t, "-remote", "a:1"); sv.Validate("b:2", sw) == nil {
		t.Fatal("-remote with -serve did not error")
	}
	// -remote rejects every local cache flag rather than ignoring it.
	for _, args := range [][]string{
		{"-remote", "a:1", "-no-cache"},
		{"-remote", "a:1", "-cache-dir", "x"},
		{"-remote", "a:1", "-resume"},
	} {
		if sv, sw := parse(t, args...); sv.Validate("", sw) == nil {
			t.Fatalf("%v did not error", args)
		}
	}
}
