// Package cliutil centralises what the six command-line tools (clearsim,
// clearbench, clearfuzz, clearchaos, clearinspect, cleartrace) used to
// hand-roll independently: the shared flag groups (RunFlags, SweepFlags,
// TraceFlags), uniform config-string decoding through harness.ParseConfig,
// and one exit-code policy.
//
// Exit-code policy (uniform across all tools):
//
//	0  success
//	1  run failure — the tool did its job and the result is bad (a failed
//	   simulation, an invariant violation, a campaign that found a bug)
//	2  usage error — bad flags, unknown benchmark/config/preset; the run
//	   never started (this matches package flag's own convention)
//
// Fatal/Usage run the cleanups registered with OnExit (profile flushes,
// graceful shutdowns) before exiting, because os.Exit skips deferred calls.
package cliutil

import (
	"fmt"
	"os"
)

// Uniform exit codes (see the package comment).
const (
	ExitOK      = 0
	ExitFailure = 1
	ExitUsage   = 2
)

var (
	tool     = "clear"
	cleanups []func()
)

// SetTool sets the program name prefixed to every diagnostic (call first in
// main).
func SetTool(name string) { tool = name }

// OnExit registers a cleanup run by Exit/Fatal/Usage before the process
// exits, in registration order. Register anything a deferred call would
// normally handle (profile flushes, servers to shut down): os.Exit skips
// defers.
func OnExit(f func()) { cleanups = append(cleanups, f) }

// Exit runs the cleanups and exits with code.
func Exit(code int) {
	for _, f := range cleanups {
		f()
	}
	os.Exit(code)
}

// Fatal reports a run failure to stderr and exits 1.
func Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	Exit(ExitFailure)
}

// Fatalf is Fatal with formatting.
func Fatalf(format string, args ...any) {
	Fatal(fmt.Errorf(format, args...))
}

// Usage reports a usage error to stderr and exits 2.
func Usage(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	Exit(ExitUsage)
}

// Usagef is Usage with formatting.
func Usagef(format string, args ...any) {
	Usage(fmt.Errorf(format, args...))
}
