package cliutil

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/policy"
	"repro/internal/runstore"
)

// RunFlags is the single-run flag group shared by every tool that executes
// one simulation: the (benchmark, config, cores, ops, retries, seed) tuple
// with uniform names, help strings, and config decoding.
type RunFlags struct {
	Bench   *string
	Config  *string
	Cores   *int
	Ops     *int
	Retries *int
	Seed    *uint64
}

// RunDefaults carries the per-tool default values of the RunFlags group.
type RunDefaults struct {
	Bench   string
	Config  string
	Cores   int
	Ops     int
	Retries int
	Seed    uint64
}

// AddRunFlags registers the single-run flag group on fs.
func AddRunFlags(fs *flag.FlagSet, d RunDefaults) *RunFlags {
	return &RunFlags{
		Bench:   fs.String("bench", d.Bench, "benchmark name"),
		Config:  fs.String("config", d.Config, "configuration: B, P, C, W or M"),
		Cores:   fs.Int("cores", d.Cores, "simulated cores (= threads)"),
		Ops:     fs.Int("ops", d.Ops, "AR invocations per thread"),
		Retries: fs.Int("retries", d.Retries, "conflict-retries before fallback"),
		Seed:    fs.Uint64("seed", d.Seed, "workload seed"),
	}
}

// Params resolves the parsed group into run parameters; a bad config token
// is a usage error. The -config value accepts the config+policy grammar
// ("C", "C+ewma:alpha=0.5"), so single-run tools get the policy axis even
// without a -policy flag.
func (r *RunFlags) Params() (harness.RunParams, error) {
	cp, err := harness.ParseConfigPolicy(*r.Config)
	if err != nil {
		return harness.RunParams{}, err
	}
	p := harness.DefaultRunParams(*r.Bench, cp.Config)
	p.Cores = *r.Cores
	p.OpsPerThread = *r.Ops
	p.RetryLimit = *r.Retries
	p.Seed = *r.Seed
	p.Policy = cp.Policy
	return p, nil
}

// PolicyFlags is the retry-policy flag group (-policy) shared by every tool
// with a policy axis; the flag value uses the internal/policy grammar.
type PolicyFlags struct {
	Policy *string
}

// AddPolicyFlags registers the retry-policy flag group on fs.
func AddPolicyFlags(fs *flag.FlagSet) *PolicyFlags {
	return &PolicyFlags{
		Policy: fs.String("policy", "", "retry policy: "+policy.Grammar+" (default: the paper-exact clear policy)"),
	}
}

// Spec resolves the parsed -policy value; a bad spec is a usage error.
func (p *PolicyFlags) Spec() (policy.Spec, error) {
	return policy.Parse(*p.Policy)
}

// Resolve merges the -policy flag with a policy carried by a config+policy
// token: setting both to different policies is ambiguous and a usage error,
// either alone (or neither) wins.
func (p *PolicyFlags) Resolve(fromConfig policy.Spec) (policy.Spec, error) {
	flagSpec, err := p.Spec()
	if err != nil {
		return policy.Spec{}, err
	}
	switch {
	case flagSpec.IsDefault():
		return fromConfig, nil
	case fromConfig.IsDefault() || fromConfig.Canonical() == flagSpec.Canonical():
		return flagSpec, nil
	}
	return policy.Spec{}, fmt.Errorf("-policy %s conflicts with config+policy suffix %s: pick one",
		flagSpec.Canonical(), fromConfig.Canonical())
}

// TraceFlags is the trace-recording flag group (-trace-out/-trace-mem/
// -trace-dir) shared by the tools that can stream a binary event trace.
type TraceFlags struct {
	Out *string
	Mem *bool
	Dir *bool
}

// AddTraceFlags registers the trace flag group on fs; memDefault sets the
// default of -trace-mem (clearinspect's classic text view wants memory
// events, the perf-sensitive tools do not).
func AddTraceFlags(fs *flag.FlagSet, memDefault bool) *TraceFlags {
	return &TraceFlags{
		Out: fs.String("trace-out", "", "record the run's binary event trace to this file (inspect with cleartrace)"),
		Mem: fs.Bool("trace-mem", memDefault, "include per-memory-operation events in the trace"),
		Dir: fs.Bool("trace-dir", false, "include directory transaction events in the trace"),
	}
}

// Apply wires the tracer fields of p: when -trace-out is set it creates the
// file, attaches it as the trace writer, and returns a closer to run after
// the simulation. Without -trace-out it is a no-op returning a nil-safe
// closer.
func (t *TraceFlags) Apply(p *harness.RunParams) (closeTrace func() error, err error) {
	if *t.Out == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(*t.Out)
	if err != nil {
		return nil, err
	}
	p.TraceWriter = f
	p.TraceMem = *t.Mem
	p.TraceDir = *t.Dir
	return f.Close, nil
}

// SweepFlags is the run-cache flag group (-cache-dir/-resume/-no-cache)
// shared by the sweep drivers (clearbench, clearchaos).
type SweepFlags struct {
	CacheDir *string
	Resume   *bool
	NoCache  *bool
}

// AddSweepFlags registers the run-cache flag group on fs.
func AddSweepFlags(fs *flag.FlagSet) *SweepFlags {
	return &SweepFlags{
		CacheDir: fs.String("cache-dir", "", "content-addressed run cache directory: runs consult it before simulating and persist their summaries, so re-running a cancelled sweep only recomputes missing cells"),
		Resume:   fs.Bool("resume", false, "require -cache-dir to exist (a previous sweep's cache) and resume from it; usage error otherwise"),
		NoCache:  fs.Bool("no-cache", false, "ignore -cache-dir entirely: neither consult nor fill the run cache"),
	}
}

// ServiceFlags is the farm flag group (-remote) shared by the sweep drivers
// that can hand execution to a farm server (internal/farm).
type ServiceFlags struct {
	Remote *string
}

// AddServiceFlags registers the farm flag group on fs.
func AddServiceFlags(fs *flag.FlagSet) *ServiceFlags {
	return &ServiceFlags{
		Remote: fs.String("remote", "", "execute every run on the farm server at this address (host:port or URL) instead of locally; see -serve"),
	}
}

// Validate enforces the service flag algebra at parse time, before any
// simulation runs. A process is either a farm client (-remote) or a farm
// server (-serve), never both; and a farm client has no say over caching —
// the store lives server-side — so the local cache flags are rejected
// rather than silently ignored. Callers route the error through Usage
// (exit 2).
func (s *ServiceFlags) Validate(serve string, sweep *SweepFlags) error {
	if *s.Remote == "" {
		return nil
	}
	if serve != "" {
		return fmt.Errorf("-remote and -serve are mutually exclusive: one process is a farm client or a farm server, not both")
	}
	if sweep != nil {
		switch {
		case *sweep.NoCache:
			return fmt.Errorf("-remote with -no-cache: caching is the farm server's decision; start the server without -cache-dir instead")
		case *sweep.Resume:
			return fmt.Errorf("-remote with -resume: resume happens server-side (restart the farm with its -cache-dir)")
		case *sweep.CacheDir != "":
			return fmt.Errorf("-remote with -cache-dir: the run cache lives on the farm server (pass -cache-dir to -serve)")
		}
	}
	return nil
}

// Store opens the run cache selected by the flags; nil (with nil error)
// means caching is off. A missing directory is only an error under -resume —
// resuming from a cache that does not exist is a typo, not a cold start.
func (s *SweepFlags) Store() (*runstore.Store, error) {
	if *s.NoCache || (*s.CacheDir == "" && !*s.Resume) {
		return nil, nil
	}
	if *s.CacheDir == "" {
		return nil, fmt.Errorf("-resume needs -cache-dir (the directory of the sweep to resume)")
	}
	if *s.Resume {
		if st, err := os.Stat(*s.CacheDir); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("-resume: cache directory %q does not exist (drop -resume for a cold start)", *s.CacheDir)
		}
	}
	return runstore.Open(*s.CacheDir)
}
