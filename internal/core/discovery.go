package core

import (
	"repro/internal/cache"
	"repro/internal/mem"
)

// RetryMode is the outcome of the §4.3 decision tree: how a failed AR
// re-executes.
type RetryMode int

const (
	// RetryFallback: speculative resources cannot even support a
	// speculative retry, or the retry budget is exhausted; take the
	// fallback lock (decision 0).
	RetryFallback RetryMode = iota
	// RetrySpeculative: plain conflict-detection retry, as baseline
	// SLE/HTM would do (decision 1).
	RetrySpeculative
	// RetrySCL: speculative cacheline-locked execution — the learned
	// critical footprint is locked, conflict detection stays on
	// (decision 2).
	RetrySCL
	// RetryNSCL: non-speculative cacheline-locked execution — the whole
	// immutable footprint is locked; completion is guaranteed
	// (decision 3).
	RetryNSCL
)

func (m RetryMode) String() string {
	switch m {
	case RetryFallback:
		return "fallback"
	case RetrySpeculative:
		return "speculative"
	case RetrySCL:
		return "S-CL"
	case RetryNSCL:
		return "NS-CL"
	}
	return "unknown"
}

// Discovery accumulates what the discovery phase learns about one AR
// invocation (§4.1). The CPU feeds it as instructions retire; Assess turns
// it into a retry decision.
type Discovery struct {
	// Active: discovery is running for the current attempt.
	Active bool
	// Failed: a conflict occurred and the attempt continues in failed mode
	// (holding the abort signal until the end of the AR).
	Failed bool
	// ALT is the learned footprint.
	ALT *ALT
	// SawIndirection: a retired memory operation or conditional branch had
	// a source register with the indirection bit set.
	SawIndirection bool
	// SQOverflow: the store queue filled before the AR ended.
	SQOverflow bool
	// CacheOverflow: a tracked line was evicted from the private cache, so
	// the footprint cannot be held simultaneously.
	CacheOverflow bool
	// ReachedEnd: the (possibly failed) attempt saw the whole AR.
	ReachedEnd bool
	// NonMemAbort: the attempt ended for a non-memory-conflict reason
	// (explicit XAbort, fallback lock); such ARs are marked
	// non-discoverable (§4.4.2).
	NonMemAbort bool
}

// NewDiscovery returns a discovery tracker backed by a fresh ALT with the
// paper's capacity.
func NewDiscovery() *Discovery {
	return &Discovery{ALT: NewALT()}
}

// NewDiscoverySized returns a discovery tracker whose ALT holds altEntries
// lines (zero selects the paper's 32).
func NewDiscoverySized(altEntries int) *Discovery {
	return &Discovery{ALT: NewALTSized(altEntries)}
}

// Begin starts a discovery phase for a new AR attempt.
func (d *Discovery) Begin() {
	d.Active = true
	d.Failed = false
	d.ALT.Reset()
	d.SawIndirection = false
	d.SQOverflow = false
	d.CacheOverflow = false
	d.ReachedEnd = false
	d.NonMemAbort = false
}

// Disable turns discovery off for the attempt (AR marked non-convertible in
// the ERT, or SQ-full counter saturated).
func (d *Discovery) Disable() { d.Active = false }

// RecordAccess notes a retired memory access: the touched line, its
// directory set, whether it was a store, and whether any source register of
// the instruction carried the indirection bit.
func (d *Discovery) RecordAccess(line mem.LineAddr, dirSet int, isWrite, indirection bool) {
	if !d.Active {
		return
	}
	if indirection {
		d.SawIndirection = true
	}
	d.ALT.Record(line, dirSet, isWrite)
}

// RecordBranch notes a retired conditional branch whose sources carry the
// indirection bit: control dependence counts as indirection (§3).
func (d *Discovery) RecordBranch(indirection bool) {
	if !d.Active {
		return
	}
	if indirection {
		d.SawIndirection = true
	}
}

// Assessment is the §4.1 hierarchical assessment result.
type Assessment struct {
	// Convertible: the footprint was fully observed and can be
	// simultaneously locked in the cache.
	Convertible bool
	// Immutable: no indirections nor loaded-value-dependent branches.
	Immutable bool
	// Mode is the resulting retry decision (before retry-budget and
	// fallback considerations, which the CPU applies).
	Mode RetryMode
}

// Assess runs the hierarchical discovery assessment against the private
// cache geometry:
//
//  1. Did the AR fit the speculation window? (SQ overflow, ALT overflow,
//     tracked-line eviction, or not reaching the end ⇒ non-convertible.)
//  2. Can the learned cachelines be locked simultaneously? (per-set
//     associativity check.)
//  3. Is the footprint immutable? (no indirection bits observed.)
func (d *Discovery) Assess(geom cache.Geometry) Assessment {
	a := Assessment{Mode: RetrySpeculative}
	if !d.Active || d.SQOverflow || d.CacheOverflow || d.ALT.Overflowed || !d.ReachedEnd || d.NonMemAbort {
		return a
	}
	if !cache.FitsSimultaneously(geom, d.ALT.Lines()) {
		return a
	}
	a.Convertible = true
	if d.SawIndirection {
		a.Mode = RetrySCL
		return a
	}
	a.Immutable = true
	a.Mode = RetryNSCL
	return a
}

// StorageOverheadBytes returns the per-core storage cost of CLEAR's
// structures, matching the paper's accounting (§5: 988.5 bytes total with
// 180 physical registers).
func StorageOverheadBytes(physicalRegisters int) float64 {
	indirectionBits := float64(physicalRegisters) / 8
	return indirectionBits + ERTStorageBytesSpec + ALTStorageBytesSpec + CRTStorageBytesSpec
}
