package core

import (
	"fmt"
	"sort"

	"repro/internal/lineset"
	"repro/internal/mem"
)

// ALT sizing from §5: 32 entries, organised as a CAM with priority search.
const (
	ALTEntries          = 32
	altEntryBits        = 1 + 58 + 1 + 1 + 1 + 1 + 6 // valid, addr, needs/locked/hit/conflict, priority
	ALTStorageBytes     = ALTEntries * altEntryBits / 8
	ALTStorageBytesSpec = 276 // the paper's quoted figure
)

// ALTEntry is one Addresses-to-Lock Table row (Figure 7).
type ALTEntry struct {
	Addr mem.LineAddr
	// Set is the directory set index of Addr — the lexicographic lock
	// order key (§5: "the set index of the smallest shared structure").
	Set int
	// NeedsLocking: this line must be locked before re-execution. Always
	// set for written lines; set for read lines present in the CRT.
	NeedsLocking bool
	// Locked: the lock has been acquired (used during the locking walk).
	Locked bool
	// Hit: during group locking, the line was present in the private cache
	// with exclusive permission.
	Hit bool
	// Conflict marks lexicographic-conflict group membership: every entry
	// of a group except the last carries the bit, delimiting the group.
	Conflict bool
	// Written records whether the discovery phase saw a store to the line
	// (drives NeedsLocking for S-CL).
	Written bool
}

// ALT is the per-core Addresses-to-Lock Table: the cacheline footprint
// learned during discovery, kept sorted by (directory set, line address) so
// that the locking walk follows the deadlock-free lexicographic order.
type ALT struct {
	entries []ALTEntry
	// index maps a learned line to its row, in an epoch-cleared table so
	// Reset (once per discovery attempt) is O(1) and allocation-free.
	index lineset.LineMap
	// lines is the scratch buffer Lines() refills; reused across attempts.
	lines []mem.LineAddr
	cap   int
	// Overflowed is set when the footprint exceeded the table capacity;
	// the AR is then non-convertible for this invocation.
	Overflowed bool
}

// NewALT returns an empty table with the paper's 32 entries.
func NewALT() *ALT { return NewALTSized(ALTEntries) }

// NewALTSized returns an empty table holding up to capacity lines (the
// sizing-ablation hook); capacity < 1 falls back to the paper default.
func NewALTSized(capacity int) *ALT {
	if capacity < 1 {
		capacity = ALTEntries
	}
	return &ALT{cap: capacity}
}

// Cap returns the table capacity.
func (t *ALT) Cap() int { return t.cap }

// Reset clears the table for a new discovery phase. The entry array, the
// index table, and the Lines scratch buffer are all retained as arenas for
// the next AR.
func (t *ALT) Reset() {
	t.entries = t.entries[:0]
	t.Overflowed = false
	t.index.Clear()
}

// Len returns the number of learned lines.
func (t *ALT) Len() int { return len(t.entries) }

// Lines returns the learned line addresses in lock order. The slice aliases
// a scratch buffer reused by the next Lines call — callers must not retain
// it (consumers are the discovery assessment and tests).
func (t *ALT) Lines() []mem.LineAddr {
	t.lines = t.lines[:0]
	for _, e := range t.entries {
		t.lines = append(t.lines, e.Addr)
	}
	return t.lines
}

// Entries exposes the table rows in lock order; the locking walk iterates
// this slice. Callers must not reorder it.
func (t *ALT) Entries() []ALTEntry { return t.entries }

// EntryAt returns a pointer to row i for lock-walk mutation.
func (t *ALT) EntryAt(i int) *ALTEntry { return &t.entries[i] }

// Contains reports whether line was learned.
func (t *ALT) Contains(line mem.LineAddr) bool {
	_, ok := t.index.Get(line)
	return ok
}

// Written reports whether line was learned as written.
func (t *ALT) Written(line mem.LineAddr) bool {
	if i, ok := t.index.Get(line); ok {
		return t.entries[i].Written
	}
	return false
}

// Record inserts (or updates) a line observed during discovery, keeping the
// table sorted by (set, address). written marks a store. It returns false —
// and sets Overflowed — when the footprint no longer fits.
func (t *ALT) Record(line mem.LineAddr, set int, written bool) bool {
	if t.Overflowed {
		return false
	}
	if i, ok := t.index.Get(line); ok {
		if written {
			t.entries[i].Written = true
		}
		return true
	}
	if len(t.entries) >= t.cap {
		t.Overflowed = true
		return false
	}
	e := ALTEntry{Addr: line, Set: set, Written: written}
	pos := sort.Search(len(t.entries), func(i int) bool {
		if t.entries[i].Set != e.Set {
			return t.entries[i].Set > e.Set
		}
		return t.entries[i].Addr > e.Addr
	})
	t.entries = append(t.entries, ALTEntry{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = e
	// Rebuild the index positions at and after the insertion point.
	for i := pos; i < len(t.entries); i++ {
		t.index.Set(t.entries[i].Addr, uint64(i))
	}
	return true
}

// FinalizeForMode prepares the lock walk for the chosen retry mode: NS-CL
// locks every learned line; S-CL locks the written lines plus any line found
// in the CRT (§4.4.2). Conflict bits are set for every member of a
// lexicographic group (same directory set) except the last, delimiting the
// group (§5).
func (t *ALT) FinalizeForMode(mode RetryMode, crt *CRT) {
	for i := range t.entries {
		e := &t.entries[i]
		e.Locked = false
		e.Hit = false
		switch mode {
		case RetryNSCL:
			e.NeedsLocking = true
		case RetrySCL:
			e.NeedsLocking = e.Written || (crt != nil && crt.Contains(e.Addr))
		default:
			e.NeedsLocking = false
		}
	}
	for i := range t.entries {
		last := i == len(t.entries)-1 || t.entries[i+1].Set != t.entries[i].Set
		t.entries[i].Conflict = !last
	}
}

// LockOrderValid verifies the (set, addr) sort invariant; property tests
// call it after random insertion sequences.
func (t *ALT) LockOrderValid() error {
	for i := 1; i < len(t.entries); i++ {
		a, b := t.entries[i-1], t.entries[i]
		if a.Set > b.Set || (a.Set == b.Set && a.Addr >= b.Addr) {
			return fmt.Errorf("core: ALT order violated at %d: (%d,%s) then (%d,%s)",
				i, a.Set, a.Addr, b.Set, b.Addr)
		}
	}
	return nil
}
