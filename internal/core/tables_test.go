package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
)

// --- ERT -------------------------------------------------------------------

func TestERTAllocatesWithDefaults(t *testing.T) {
	ert := NewERT()
	e := ert.Lookup(42)
	if !e.Valid || e.PC != 42 || !e.IsConvertible || !e.IsImmutable || e.SQFull != 0 {
		t.Fatalf("fresh entry %+v lacks §5 defaults", *e)
	}
	if !e.DiscoveryEnabled() {
		t.Fatal("fresh entry should enable discovery")
	}
}

func TestERTPersistence(t *testing.T) {
	ert := NewERT()
	ert.Lookup(1).IsConvertible = false
	if ert.Lookup(1).IsConvertible {
		t.Fatal("entry state lost across lookups")
	}
}

func TestERTLRUReplacement(t *testing.T) {
	ert := NewERT()
	for pc := 0; pc < ERTEntries; pc++ {
		ert.Lookup(pc).IsConvertible = false
	}
	ert.Lookup(0) // refresh PC 0
	ert.Lookup(1000)
	if ert.Peek(0) == nil {
		t.Fatal("recently used entry evicted")
	}
	if ert.Peek(1) != nil {
		t.Fatal("LRU entry (PC 1) survived replacement")
	}
	// The replacement allocates with defaults again.
	if !ert.Lookup(1).IsConvertible {
		t.Fatal("re-allocated entry did not reset to defaults")
	}
}

func TestSQFullSaturatingCounter(t *testing.T) {
	ert := NewERT()
	e := ert.Lookup(7)
	for i := 0; i < 10; i++ {
		e.NoteSQOverflow()
	}
	if e.SQFull != SQFullCounterMax {
		t.Fatalf("counter %d, want saturation at %d", e.SQFull, SQFullCounterMax)
	}
	if e.DiscoveryEnabled() {
		t.Fatal("saturated counter should disable discovery")
	}
	e.NoteCommit()
	if e.SQFull != SQFullCounterMax-1 {
		t.Fatal("commit did not decrement counter")
	}
	if !e.DiscoveryEnabled() {
		t.Fatal("discovery should re-enable below saturation")
	}
	for i := 0; i < 10; i++ {
		e.NoteCommit()
	}
	if e.SQFull != 0 {
		t.Fatal("counter went negative")
	}
}

// --- ALT -------------------------------------------------------------------

func TestALTSortedInsertion(t *testing.T) {
	alt := NewALT()
	// Insert in a scrambled order; sets chosen to collide.
	lines := []struct {
		line mem.LineAddr
		set  int
	}{{0x50, 3}, {0x10, 1}, {0x30, 3}, {0x20, 1}, {0x40, 2}}
	for _, l := range lines {
		if !alt.Record(l.line, l.set, false) {
			t.Fatalf("record %v failed", l.line)
		}
	}
	if err := alt.LockOrderValid(); err != nil {
		t.Fatal(err)
	}
	got := alt.Lines()
	want := []mem.LineAddr{0x10, 0x20, 0x40, 0x30, 0x50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lock order %v, want %v", got, want)
		}
	}
}

func TestALTConflictGroups(t *testing.T) {
	alt := NewALT()
	alt.Record(0x10, 1, true)
	alt.Record(0x20, 1, true)
	alt.Record(0x30, 1, true)
	alt.Record(0x40, 2, true)
	alt.FinalizeForMode(RetryNSCL, nil)
	// Group of three in set 1: first two carry the Conflict bit, the last
	// delimits the group (§5); the singleton in set 2 carries none.
	wantConflict := []bool{true, true, false, false}
	for i, w := range wantConflict {
		if alt.EntryAt(i).Conflict != w {
			t.Fatalf("entry %d conflict=%v, want %v", i, alt.EntryAt(i).Conflict, w)
		}
	}
}

func TestALTOverflow(t *testing.T) {
	alt := NewALT()
	for i := 0; i < ALTEntries; i++ {
		if !alt.Record(mem.LineAddr(i), i, false) {
			t.Fatalf("record %d failed before capacity", i)
		}
	}
	if alt.Record(0x1000, 5, false) {
		t.Fatal("record beyond capacity succeeded")
	}
	if !alt.Overflowed {
		t.Fatal("overflow not flagged")
	}
	// Re-recording an existing line is still fine for bookkeeping purposes.
	if alt.Len() != ALTEntries {
		t.Fatalf("len %d, want %d", alt.Len(), ALTEntries)
	}
}

func TestALTDuplicateUpgradesWritten(t *testing.T) {
	alt := NewALT()
	alt.Record(0x10, 1, false)
	alt.Record(0x10, 1, true)
	if alt.Len() != 1 || !alt.Written(0x10) {
		t.Fatal("duplicate record did not upgrade to written")
	}
}

func TestALTFinalizeNeedsLocking(t *testing.T) {
	crt := NewCRT()
	crt.Insert(0x30)
	alt := NewALT()
	alt.Record(0x10, 1, true)  // written
	alt.Record(0x20, 2, false) // read-only
	alt.Record(0x30, 3, false) // read-only but in CRT

	alt.FinalizeForMode(RetrySCL, crt)
	want := map[mem.LineAddr]bool{0x10: true, 0x20: false, 0x30: true}
	for _, e := range alt.Entries() {
		if e.NeedsLocking != want[e.Addr] {
			t.Fatalf("S-CL NeedsLocking(%v)=%v, want %v", e.Addr, e.NeedsLocking, want[e.Addr])
		}
	}

	alt.FinalizeForMode(RetryNSCL, crt)
	for _, e := range alt.Entries() {
		if !e.NeedsLocking {
			t.Fatalf("NS-CL must lock everything; %v unlocked", e.Addr)
		}
	}
}

// TestALTOrderProperty: any insertion sequence keeps the table sorted by
// (set, address) — the deadlock-freedom invariant of the lock walk.
func TestALTOrderProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		alt := NewALT()
		for _, r := range raw {
			alt.Record(mem.LineAddr(r), int(r%64), r%3 == 0)
		}
		return alt.LockOrderValid() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- CRT -------------------------------------------------------------------

func TestCRTInsertContains(t *testing.T) {
	crt := NewCRT()
	if crt.Contains(0x10) {
		t.Fatal("empty CRT claims containment")
	}
	crt.Insert(0x10)
	if !crt.Contains(0x10) || crt.Len() != 1 {
		t.Fatal("insert lost")
	}
	crt.Insert(0x10)
	if crt.Len() != 1 {
		t.Fatal("duplicate insert grew the table")
	}
}

func TestCRTSetAssociativeEviction(t *testing.T) {
	crt := NewCRT()
	// Fill one set (lines congruent mod crtSets) past its ways.
	for i := 0; i <= CRTWays; i++ {
		crt.Insert(mem.LineAddr(i * crtSets))
	}
	if crt.Len() != CRTWays {
		t.Fatalf("set holds %d, want %d", crt.Len(), CRTWays)
	}
	if crt.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", crt.Evictions)
	}
	// The LRU victim is the first inserted line.
	if crt.Contains(0) {
		t.Fatal("LRU entry survived")
	}
	if !crt.Contains(mem.LineAddr(CRTWays * crtSets)) {
		t.Fatal("newest entry missing")
	}
}

func TestCRTLRURefreshOnContains(t *testing.T) {
	crt := NewCRT()
	crt.Insert(0) // oldest
	for i := 1; i < CRTWays; i++ {
		crt.Insert(mem.LineAddr(i * crtSets))
	}
	crt.Contains(0) // refresh
	crt.Insert(mem.LineAddr(CRTWays * crtSets))
	if !crt.Contains(0) {
		t.Fatal("refreshed entry evicted")
	}
	if crt.Contains(mem.LineAddr(1 * crtSets)) {
		t.Fatal("true LRU survived")
	}
}

// --- Discovery / decision tree ---------------------------------------------

var testGeom = cache.Geometry{SizeBytes: 8 * 2 * mem.LineSize, Ways: 2}

func TestAssessNSCL(t *testing.T) {
	d := NewDiscovery()
	d.Begin()
	d.RecordAccess(0x10, 1, true, false)
	d.RecordAccess(0x20, 2, false, false)
	d.ReachedEnd = true
	a := d.Assess(testGeom)
	if !a.Convertible || !a.Immutable || a.Mode != RetryNSCL {
		t.Fatalf("assessment %+v, want convertible immutable NS-CL", a)
	}
}

func TestAssessSCLOnIndirection(t *testing.T) {
	d := NewDiscovery()
	d.Begin()
	d.RecordAccess(0x10, 1, true, true) // indirection
	d.ReachedEnd = true
	a := d.Assess(testGeom)
	if !a.Convertible || a.Immutable || a.Mode != RetrySCL {
		t.Fatalf("assessment %+v, want convertible mutable S-CL", a)
	}
}

func TestAssessBranchIndirection(t *testing.T) {
	d := NewDiscovery()
	d.Begin()
	d.RecordAccess(0x10, 1, true, false)
	d.RecordBranch(true)
	d.ReachedEnd = true
	if a := d.Assess(testGeom); a.Mode != RetrySCL {
		t.Fatalf("control dependence ignored: mode %v", a.Mode)
	}
}

func TestAssessSpeculativeOnSetConflict(t *testing.T) {
	d := NewDiscovery()
	d.Begin()
	// Three lines in the same 2-way set: not simultaneously lockable.
	sets := testGeom.Sets()
	for i := 0; i < 3; i++ {
		d.RecordAccess(mem.LineAddr(1+i*sets), 1, true, false)
	}
	d.ReachedEnd = true
	a := d.Assess(testGeom)
	if a.Convertible || a.Mode != RetrySpeculative {
		t.Fatalf("assessment %+v, want non-convertible speculative retry", a)
	}
}

func TestAssessFailuresForceSpeculative(t *testing.T) {
	for _, tweak := range []func(*Discovery){
		func(d *Discovery) { d.SQOverflow = true },
		func(d *Discovery) { d.CacheOverflow = true },
		func(d *Discovery) { d.NonMemAbort = true },
		func(d *Discovery) { d.ReachedEnd = false },
		func(d *Discovery) { d.Disable() },
	} {
		d := NewDiscovery()
		d.Begin()
		d.RecordAccess(0x10, 1, true, false)
		d.ReachedEnd = true
		tweak(d)
		if a := d.Assess(testGeom); a.Convertible || a.Mode != RetrySpeculative {
			t.Fatalf("impaired discovery still convertible: %+v", a)
		}
	}
}

func TestDiscoveryInactiveRecordsNothing(t *testing.T) {
	d := NewDiscovery()
	d.Begin()
	d.Disable()
	d.RecordAccess(0x10, 1, true, true)
	d.RecordBranch(true)
	if d.ALT.Len() != 0 || d.SawIndirection {
		t.Fatal("disabled discovery recorded state")
	}
}

func TestStorageOverheadMatchesPaper(t *testing.T) {
	if got := StorageOverheadBytes(180); got != 988.5 {
		t.Fatalf("storage overhead %.1f bytes, want the paper's 988.5", got)
	}
}
