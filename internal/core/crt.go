package core

import "repro/internal/mem"

// CRT sizing from §5: 64 entries, 8-way set associative.
const (
	CRTEntries          = 64
	CRTWays             = 8
	crtSets             = CRTEntries / CRTWays
	crtEntryBits        = 1 + 58 + 3 + 6 // valid, addr, lru, tag padding
	CRTStorageBytes     = CRTEntries * crtEntryBits / 8
	CRTStorageBytesSpec = 544 // the paper's quoted figure
)

type crtEntry struct {
	valid bool
	addr  mem.LineAddr
	lru   uint64
}

// CRT is the Conflicting Reads Table (Figure 7): cachelines that were read —
// not written — during discovery and that caused a conflict-and-abort in a
// previous execution. Before an S-CL retry, CRT hits upgrade the
// corresponding ALT entries to NeedsLocking so the same conflict cannot
// recur (§4.4.2, §5.1).
type CRT struct {
	sets  [][]crtEntry
	ways  int
	clock uint64
	// Inserts and Evictions feed the stats report.
	Inserts   uint64
	Evictions uint64
}

// NewCRT returns an empty table with the paper's 64-entry 8-way geometry.
func NewCRT() *CRT { return NewCRTSized(CRTEntries, CRTWays) }

// NewCRTSized returns an empty table with the given entry count and
// associativity (the sizing-ablation hook); invalid values fall back to the
// paper defaults. entries/ways must leave a power-of-two set count.
func NewCRTSized(entries, ways int) *CRT {
	if entries < 1 || ways < 1 || entries%ways != 0 {
		entries, ways = CRTEntries, CRTWays
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		entries, ways = CRTEntries, CRTWays
		nsets = entries / ways
	}
	t := &CRT{sets: make([][]crtEntry, nsets), ways: ways}
	for i := range t.sets {
		t.sets[i] = make([]crtEntry, ways)
	}
	return t
}

// Size returns the total entry count.
func (t *CRT) Size() int { return len(t.sets) * t.ways }

func (t *CRT) setOf(line mem.LineAddr) []crtEntry {
	return t.sets[line.SetIndex(len(t.sets))]
}

// Contains reports whether line is recorded, refreshing its LRU age.
func (t *CRT) Contains(line mem.LineAddr) bool {
	set := t.setOf(line)
	for i := range set {
		if set[i].valid && set[i].addr == line {
			t.clock++
			set[i].lru = t.clock
			return true
		}
	}
	return false
}

// Insert records line, evicting the LRU way of its set if necessary.
func (t *CRT) Insert(line mem.LineAddr) {
	t.clock++
	set := t.setOf(line)
	var victim *crtEntry
	for i := range set {
		e := &set[i]
		if e.valid && e.addr == line {
			e.lru = t.clock
			return
		}
		if victim == nil || !e.valid || (victim.valid && e.lru < victim.lru) {
			if victim == nil || victim.valid {
				victim = e
			}
		}
	}
	if victim.valid {
		t.Evictions++
	}
	t.Inserts++
	*victim = crtEntry{valid: true, addr: line, lru: t.clock}
}

// Remove drops line from the table. S-CL consumes a CRT hint once the
// re-execution that locked the line commits: the conflict the entry guarded
// against has been avoided, and keeping read-shared lines permanently in the
// lock set would defeat §4.4.2's reason for not locking all reads (a single
// early conflict on a hot read-mostly line — a tree root — would otherwise
// serialise every later S-CL through that lock).
func (t *CRT) Remove(line mem.LineAddr) {
	set := t.setOf(line)
	for i := range set {
		if set[i].valid && set[i].addr == line {
			set[i] = crtEntry{}
			return
		}
	}
}

// Len returns the number of valid entries.
func (t *CRT) Len() int {
	n := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}
