// Package core implements the paper's contribution: CLEAR, the
// CacheLine-locked Executed Atomic Region technique. It provides the three
// hardware tables of Figure 7 — the Explored Region Table (ERT), the
// Addresses-to-Lock Table (ALT), and the Conflicting Reads Table (CRT) —
// the discovery-phase bookkeeping, and the §4.3 decision tree that picks the
// re-execution mode after an abort. The per-core execution engine that
// drives these structures lives in internal/cpu.
package core

// ERT sizing from §5: 16 entries, fully associative, with a 2-bit saturating
// SQ-full counter and 4-bit LRU per entry.
const (
	ERTEntries          = 16
	SQFullCounterMax    = 3 // 2-bit saturating counter
	ertEntryBits        = 1 + 64 + 1 + 1 + 2 + 4
	ERTStorageBytes     = ERTEntries * ertEntryBits / 8
	ERTStorageBytesSpec = 146 // the paper's quoted figure, checked by tests
)

// ERTEntry is one Explored Region Table row (Figure 7).
type ERTEntry struct {
	Valid bool
	// PC identifies the AR by the address of its first instruction; the
	// simulator uses the workload-assigned AR ID.
	PC int
	// IsConvertible: cacheline locking can be employed on a retry.
	IsConvertible bool
	// IsImmutable: a retry can start in NS-CL mode (S-CL if convertible but
	// not immutable).
	IsImmutable bool
	// SQFull is the 2-bit saturating counter of failed discoveries that ran
	// out of store-queue resources; at saturation discovery is disabled for
	// the AR.
	SQFull int
	lru    uint64
}

// DiscoveryEnabled reports whether a new invocation of this AR should run
// discovery: the AR must still be considered convertible and the SQ-full
// counter must not have saturated (§5.1).
func (e *ERTEntry) DiscoveryEnabled() bool {
	return e.IsConvertible && e.SQFull < SQFullCounterMax
}

// NoteSQOverflow increments the saturating counter (failed discovery ran out
// of SQ entries).
func (e *ERTEntry) NoteSQOverflow() {
	if e.SQFull < SQFullCounterMax {
		e.SQFull++
	}
}

// NoteCommit decrements the saturating counter (§5: "decreased when the
// transaction commits").
func (e *ERTEntry) NoteCommit() {
	if e.SQFull > 0 {
		e.SQFull--
	}
}

// ERT is the per-core Explored Region Table.
type ERT struct {
	entries []ERTEntry
	clock   uint64
	// Misses counts replacements, a measure of AR working-set pressure.
	Misses uint64
}

// NewERT returns an empty table with the paper's 16 entries.
func NewERT() *ERT { return NewERTSized(ERTEntries) }

// NewERTSized returns an empty table with n entries (the sizing-ablation
// hook); n < 1 falls back to the paper default.
func NewERTSized(n int) *ERT {
	if n < 1 {
		n = ERTEntries
	}
	return &ERT{entries: make([]ERTEntry, n)}
}

// Size returns the entry count.
func (t *ERT) Size() int { return len(t.entries) }

// Lookup returns the entry for AR pc, allocating (with the §5 defaults:
// convertible, immutable, counter zero) and evicting the LRU entry if
// needed. The returned pointer stays valid until the entry is evicted.
func (t *ERT) Lookup(pc int) *ERTEntry {
	t.clock++
	var victim *ERTEntry
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.PC == pc {
			e.lru = t.clock
			return e
		}
		if victim == nil || !e.Valid || (victim.Valid && e.lru < victim.lru) {
			if victim == nil || victim.Valid {
				victim = e
			}
		}
	}
	if victim.Valid {
		t.Misses++
	}
	*victim = ERTEntry{
		Valid:         true,
		PC:            pc,
		IsConvertible: true,
		IsImmutable:   true,
		lru:           t.clock,
	}
	return victim
}

// Peek returns the entry for pc without allocating, or nil.
func (t *ERT) Peek(pc int) *ERTEntry {
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.PC == pc {
			return e
		}
	}
	return nil
}

// ValidCount returns the number of valid entries.
func (t *ERT) ValidCount() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
	}
	return n
}
