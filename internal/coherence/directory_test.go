package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// recorderHook is a scripted CoreHook for directory tests.
type recorderHook struct {
	response HolderResponse
	calls    []hookCall
}

type hookCall struct {
	line      mem.LineAddr
	isWrite   bool
	requester int
}

func (h *recorderHook) OnRemoteRequest(line mem.LineAddr, isWrite bool, requester int, attrs ReqAttrs) HolderResponse {
	h.calls = append(h.calls, hookCall{line, isWrite, requester})
	return h.response
}

func newTestDir(cores int) (*Directory, []*recorderHook) {
	cfg := DefaultConfig()
	cfg.NumCores = cores
	d := NewDirectory(cfg)
	hooks := make([]*recorderHook, cores)
	for i := range hooks {
		hooks[i] = &recorderHook{response: HolderYields}
		d.RegisterHook(i, hooks[i])
	}
	return d, hooks
}

const testLine = mem.LineAddr(0x100)

func TestColdReadThenWrite(t *testing.T) {
	d, _ := newTestDir(4)
	res := d.Read(0, testLine, ReqAttrs{})
	if res.Nacked || res.Retry {
		t.Fatal("cold read refused")
	}
	if !d.Sharers(testLine).Has(0) {
		t.Fatal("reader not registered as sharer")
	}
	res = d.Write(0, testLine, ReqAttrs{})
	if res.Nacked || res.Retry {
		t.Fatal("upgrade refused")
	}
	if d.Owner(testLine) != 0 || !d.Sharers(testLine).Empty() {
		t.Fatalf("owner=%d sharers=%v after upgrade", d.Owner(testLine), d.Sharers(testLine))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d, hooks := newTestDir(4)
	d.Read(1, testLine, ReqAttrs{})
	d.Read(2, testLine, ReqAttrs{})
	d.Write(0, testLine, ReqAttrs{})
	if len(hooks[1].calls) != 1 || len(hooks[2].calls) != 1 {
		t.Fatalf("sharers asked %d/%d times, want 1/1", len(hooks[1].calls), len(hooks[2].calls))
	}
	if !hooks[1].calls[0].isWrite || hooks[1].calls[0].requester != 0 {
		t.Fatalf("bad invalidation %+v", hooks[1].calls[0])
	}
	if d.Owner(testLine) != 0 {
		t.Fatal("writer did not become owner")
	}
}

func TestReadDowngradesOwner(t *testing.T) {
	d, hooks := newTestDir(4)
	d.Write(0, testLine, ReqAttrs{})
	res := d.Read(1, testLine, ReqAttrs{})
	if res.Nacked || res.Retry {
		t.Fatal("read from owned line refused")
	}
	if len(hooks[0].calls) != 1 || hooks[0].calls[0].isWrite {
		t.Fatal("owner not asked to downgrade")
	}
	if d.Owner(testLine) != -1 {
		t.Fatal("owner not cleared on downgrade")
	}
	sh := d.Sharers(testLine)
	if !sh.Has(0) || !sh.Has(1) {
		t.Fatalf("sharers %v, want {0,1}", sh)
	}
}

func TestHolderNackRefusesWrite(t *testing.T) {
	d, hooks := newTestDir(4)
	d.Read(1, testLine, ReqAttrs{})
	hooks[1].response = HolderNacks
	res := d.Write(0, testLine, ReqAttrs{})
	if !res.Nacked {
		t.Fatal("write not nacked by refusing holder")
	}
	if d.Owner(testLine) != -1 {
		t.Fatal("nacked writer became owner")
	}
	if !d.Sharers(testLine).Has(1) {
		t.Fatal("refusing holder lost its copy")
	}
}

// TestNackPreservesRequesterSharer is the regression test for the lost-
// update bug: when a sharer's upgrade is nacked, the requester must remain a
// registered sharer (its cached copy is still valid).
func TestNackPreservesRequesterSharer(t *testing.T) {
	d, hooks := newTestDir(4)
	d.Read(0, testLine, ReqAttrs{})
	d.Read(1, testLine, ReqAttrs{})
	hooks[1].response = HolderNacks
	res := d.Write(0, testLine, ReqAttrs{})
	if !res.Nacked {
		t.Fatal("expected nack")
	}
	if !d.Sharers(testLine).Has(0) {
		t.Fatal("requester dropped from sharers after nacked upgrade")
	}
}

func TestFailedModeReadIsInvisible(t *testing.T) {
	d, hooks := newTestDir(4)
	d.Write(1, testLine, ReqAttrs{})
	res := d.Read(0, testLine, ReqAttrs{FailedMode: true})
	if res.Nacked || res.Retry {
		t.Fatal("failed-mode read refused")
	}
	if len(hooks[1].calls) != 0 {
		t.Fatal("failed-mode read disturbed the owner")
	}
	if d.Owner(testLine) != 1 || d.Sharers(testLine).Has(0) {
		t.Fatal("failed-mode read changed directory state")
	}
}

func TestLockUnlock(t *testing.T) {
	d, _ := newTestDir(4)
	res := d.Lock(0, testLine, ReqAttrs{})
	if res.Retry || res.Nacked {
		t.Fatal("cold lock refused")
	}
	if d.LockedBy(testLine) != 0 {
		t.Fatal("lock not recorded")
	}
	// A second core's lock request must be told to retry.
	res = d.Lock(1, testLine, ReqAttrs{})
	if !res.Retry {
		t.Fatal("competing lock not retried")
	}
	// Plain requests are retried; nackable loads are nacked; power
	// requests are nacked (§5.2).
	if r := d.Read(1, testLine, ReqAttrs{}); !r.Retry {
		t.Fatal("plain read of locked line not retried")
	}
	if r := d.Read(1, testLine, ReqAttrs{NackableLoad: true}); !r.Nacked {
		t.Fatal("nackable load of locked line not nacked")
	}
	if r := d.Write(1, testLine, ReqAttrs{Power: true}); !r.Nacked {
		t.Fatal("power write to locked line not nacked")
	}
	d.Unlock(0, testLine)
	if d.LockedBy(testLine) != -1 {
		t.Fatal("unlock did not clear")
	}
	if r := d.Lock(1, testLine, ReqAttrs{}); r.Retry || r.Nacked {
		t.Fatal("lock after unlock refused")
	}
}

func TestLockOwnedFastPath(t *testing.T) {
	d, _ := newTestDir(4)
	d.Write(0, testLine, ReqAttrs{})
	res := d.Lock(0, testLine, ReqAttrs{})
	if res.Retry || res.Nacked {
		t.Fatal("lock of owned line refused")
	}
	if res.Latency != d.Config().Lat.L1Hit {
		t.Fatalf("owned-line lock latency %d, want L1 hit %d (the §5 Hit path)",
			res.Latency, d.Config().Lat.L1Hit)
	}
}

func TestUnlockAllBulk(t *testing.T) {
	d, _ := newTestDir(4)
	lines := []mem.LineAddr{0x10, 0x20, 0x30}
	for _, l := range lines {
		d.Lock(0, l, ReqAttrs{})
	}
	d.Lock(1, 0x40, ReqAttrs{})
	if n := d.UnlockAll(0); n != 3 {
		t.Fatalf("UnlockAll released %d, want 3", n)
	}
	if d.LockedLines() != 1 {
		t.Fatalf("%d lines locked, want core 1's single line", d.LockedLines())
	}
}

func TestUnlockWrongCorePanics(t *testing.T) {
	d, _ := newTestDir(4)
	d.Lock(0, testLine, ReqAttrs{})
	defer func() {
		if recover() == nil {
			t.Error("unlock by non-holder did not panic")
		}
	}()
	d.Unlock(1, testLine)
}

func TestHoldOnLockedQueues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCores = 4
	cfg.HoldOnLocked = true
	d := NewDirectory(cfg)
	d.Lock(0, testLine, ReqAttrs{})
	d.Read(1, testLine, ReqAttrs{})
	d.Write(2, testLine, ReqAttrs{})
	if d.HeldCount(testLine) != 2 {
		t.Fatalf("held %d requests, want 2 (the Fig. 6 deadlock ingredient)", d.HeldCount(testLine))
	}
	// Nackable loads still get nacked even in hold mode.
	if r := d.Read(3, testLine, ReqAttrs{NackableLoad: true}); !r.Nacked {
		t.Fatal("nackable load held instead of nacked")
	}
}

func TestEvictClearsPresence(t *testing.T) {
	d, _ := newTestDir(4)
	d.Read(0, testLine, ReqAttrs{})
	d.Evict(0, testLine)
	if d.Sharers(testLine).Has(0) {
		t.Fatal("evicted core still a sharer")
	}
	d.Write(1, testLine, ReqAttrs{})
	d.Evict(1, testLine)
	if d.Owner(testLine) != -1 {
		t.Fatal("evicted owner still recorded")
	}
}

func TestEvictLockedPanics(t *testing.T) {
	d, _ := newTestDir(4)
	d.Lock(0, testLine, ReqAttrs{})
	defer func() {
		if recover() == nil {
			t.Error("evicting a locked line did not panic")
		}
	}()
	d.Evict(0, testLine)
}

// TestDirectoryInvariants: under random request sequences with yielding
// holders, the single-writer/multiple-reader invariant holds for every line.
func TestDirectoryInvariants(t *testing.T) {
	prop := func(ops []uint16) bool {
		d, _ := newTestDir(4)
		lines := []mem.LineAddr{0x1, 0x2, 0x3}
		for _, op := range ops {
			core := int(op) % 4
			line := lines[int(op>>2)%len(lines)]
			switch (op >> 4) % 4 {
			case 0:
				d.Read(core, line, ReqAttrs{})
			case 1:
				d.Write(core, line, ReqAttrs{})
			case 2:
				if d.LockedBy(line) == core {
					d.Unlock(core, line)
				} else {
					d.Lock(core, line, ReqAttrs{})
				}
			case 3:
				if d.LockedBy(line) != core {
					d.Evict(core, line)
				}
			}
			for _, l := range lines {
				owner := d.Owner(l)
				if owner >= 0 && !d.Sharers(l).Empty() {
					return false // owner and sharers coexist
				}
				if lk := d.LockedBy(l); lk >= 0 && owner >= 0 && lk != owner {
					return false // locked by a non-owner
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreSet(t *testing.T) {
	var s CoreSet
	s = s.Add(3).Add(5).Add(3)
	if s.Count() != 2 || !s.Has(3) || !s.Has(5) || s.Has(4) {
		t.Fatalf("set %v malformed", s)
	}
	s = s.Remove(3)
	if s.Count() != 1 || s.Has(3) {
		t.Fatal("remove failed")
	}
	if !s.Only(5) {
		t.Fatal("Only(5) false")
	}
	var order []int
	s = s.Add(0).Add(63)
	s.ForEach(func(c int) { order = append(order, c) })
	if len(order) != 3 || order[0] != 0 || order[1] != 5 || order[2] != 63 {
		t.Fatalf("ForEach order %v", order)
	}
}

// flakyHook nacks pseudo-randomly, like a mix of power-mode and plain
// holders.
type flakyHook struct {
	state uint64
}

func (h *flakyHook) OnRemoteRequest(line mem.LineAddr, isWrite bool, requester int, attrs ReqAttrs) HolderResponse {
	h.state = h.state*6364136223846793005 + 1442695040888963407
	if h.state>>62 == 0 {
		return HolderNacks
	}
	return HolderYields
}

// TestDirectoryInvariantsWithNacks: the single-writer invariant and the
// sharers/owner exclusivity hold even when holders refuse requests
// unpredictably.
func TestDirectoryInvariantsWithNacks(t *testing.T) {
	prop := func(ops []uint16) bool {
		cfg := DefaultConfig()
		cfg.NumCores = 4
		d := NewDirectory(cfg)
		for i := 0; i < 4; i++ {
			d.RegisterHook(i, &flakyHook{state: uint64(i + 1)})
		}
		lines := []mem.LineAddr{0x1, 0x2}
		for _, op := range ops {
			core := int(op) % 4
			line := lines[int(op>>2)%len(lines)]
			switch (op >> 4) % 3 {
			case 0:
				d.Read(core, line, ReqAttrs{})
			case 1:
				d.Write(core, line, ReqAttrs{})
			case 2:
				d.Write(core, line, ReqAttrs{Power: true})
			}
			for _, l := range lines {
				if d.Owner(l) >= 0 && !d.Sharers(l).Empty() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestFailedModeReadOnLockedLine: failed-mode discovery loads bypass even
// cacheline locks (the AR is doomed; its reads must not deadlock on locks).
func TestFailedModeReadOnLockedLine(t *testing.T) {
	d, _ := newTestDir(4)
	d.Lock(0, testLine, ReqAttrs{})
	res := d.Read(1, testLine, ReqAttrs{FailedMode: true})
	if res.Nacked || res.Retry {
		t.Fatal("failed-mode read blocked by a cacheline lock")
	}
	if d.LockedBy(testLine) != 0 {
		t.Fatal("lock disturbed by failed-mode read")
	}
}

// TestHopsCounted: every directory transaction accounts interconnect hops.
func TestHopsCounted(t *testing.T) {
	d, _ := newTestDir(4)
	before := d.Stats.Hops
	d.Read(0, testLine, ReqAttrs{})
	if d.Stats.Hops <= before {
		t.Fatal("read accounted no hops")
	}
}
