package coherence

import "repro/internal/mem"

// Observer receives a read-only notification after every directory state
// transition. It exists for the runtime invariant oracle (internal/check):
// the directory calls it *after* the transition has been applied, so the
// observer sees the post-state, and it must not mutate directory state or
// schedule simulation work that changes observable statistics.
//
// All calls are synchronous, inside the directory transaction. A nil
// observer (the default) costs one pointer comparison per transaction.
type Observer interface {
	// OnAccess fires after a Read (isWrite=false) or Write/upgrade
	// (isWrite=true) request from core for line completed with res.
	OnAccess(core int, line mem.LineAddr, isWrite bool, attrs ReqAttrs, res AccessResult)
	// OnLock fires after a Lock request from core for line completed with
	// res. On success (res.Retry==false && res.Nacked==false) the core holds
	// the cacheline lock.
	OnLock(core int, line mem.LineAddr, res LockResult)
	// OnUnlock fires after core released its lock on line (including each
	// line released by UnlockAll).
	OnUnlock(core int, line mem.LineAddr)
	// OnEvict fires after core dropped line from its sharer/owner slots.
	OnEvict(core int, line mem.LineAddr)
}

// SetObserver installs (or, with nil, removes) the directory observer,
// replacing whatever was attached before.
func (d *Directory) SetObserver(o Observer) { d.obs = o }

// AddObserver attaches o alongside any observer already installed:
// notifications fan out to every attached observer in attachment order.
// With no observer the hot path keeps paying only the nil comparison; a
// solo observer is called directly with no tee indirection.
func (d *Directory) AddObserver(o Observer) {
	if o == nil {
		return
	}
	if d.obs == nil {
		d.obs = o
		return
	}
	d.obs = &teeObserver{a: d.obs, b: o}
}

// teeObserver fans observer notifications out to two observers.
type teeObserver struct{ a, b Observer }

func (t *teeObserver) OnAccess(core int, line mem.LineAddr, isWrite bool, attrs ReqAttrs, res AccessResult) {
	t.a.OnAccess(core, line, isWrite, attrs, res)
	t.b.OnAccess(core, line, isWrite, attrs, res)
}

func (t *teeObserver) OnLock(core int, line mem.LineAddr, res LockResult) {
	t.a.OnLock(core, line, res)
	t.b.OnLock(core, line, res)
}

func (t *teeObserver) OnUnlock(core int, line mem.LineAddr) {
	t.a.OnUnlock(core, line)
	t.b.OnUnlock(core, line)
}

func (t *teeObserver) OnEvict(core int, line mem.LineAddr) {
	t.a.OnEvict(core, line)
	t.b.OnEvict(core, line)
}

// LineState is a snapshot of one directory entry, exported for auditing.
type LineState struct {
	Line     mem.LineAddr
	Owner    int // core holding M/E, or -1
	Sharers  CoreSet
	LockedBy int // core holding the cacheline lock, or -1
}

// ForEachLine calls fn with a snapshot of every line the directory tracks.
// Iteration order is unspecified (slot order, a function of insertion
// history); callers that need a canonical order must sort. Intended for the
// invariant oracle's full-state audits, not for the simulation hot path.
func (d *Directory) ForEachLine(fn func(LineState)) {
	for si, k := range d.keys {
		if k == emptySlot {
			continue
		}
		fn(LineState{Line: k, Owner: int(d.owner[si]), Sharers: d.sharers[si], LockedBy: int(d.locked[si])})
	}
}
