// Package coherence implements the directory side of a MESI protocol with
// the extensions CLEAR needs: cacheline locking, NACKable requests, and
// retry-the-requester resolution of locked-line encounters (§4.4 of the
// paper, Figures 5 and 6).
//
// The simulator processes each coherence transaction atomically inside one
// directory call; latencies are returned to the requesting core, which
// schedules its own continuation. Invalidation side effects (transaction
// aborts at remote cores) are delivered synchronously through the CoreHook
// interface that the HTM layer implements.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Latencies gathers the timing constants of the memory hierarchy, matching
// Table 2 of the paper.
type Latencies struct {
	L1Hit sim.Tick // private L1 hit
	// Directory is the shared L3/directory access cost; the private L2 of
	// Table 2 is folded into this path (the simulator tracks residency at
	// L1 granularity only).
	Directory sim.Tick
	Memory    sim.Tick // DRAM access beyond the directory
	Crossbar  sim.Tick // one interconnect traversal (core<->directory)
	Backoff   sim.Tick // re-issue delay after a locked-line Retry signal
}

// DefaultLatencies mirrors Table 2: L1 1 cycle, L3/directory 45, memory 80.
func DefaultLatencies() Latencies {
	return Latencies{
		L1Hit:     1,
		Directory: 45,
		Memory:    80,
		Crossbar:  6,
		Backoff:   20,
	}
}

// HolderResponse is what a remote core answers when the directory asks it to
// give up (or share) a line.
type HolderResponse int

const (
	// HolderYields: the holder relinquishes the line; if it was reading or
	// writing it transactionally the holder aborts (requester-wins).
	HolderYields HolderResponse = iota
	// HolderNacks: the holder has priority (power mode, or S-CL with the
	// line locked); the requester is refused and must abort or retry.
	HolderNacks
)

// ReqAttrs qualifies a coherence request with the transactional context of
// the requesting core.
type ReqAttrs struct {
	// FailedMode marks a non-aborting request from failed-mode discovery:
	// it must not disturb remote transactional state (§5.1).
	FailedMode bool
	// Power marks the requester as the (single) PowerTM power-mode
	// transaction; holders yield to it even if they would otherwise win.
	Power bool
	// NackableLoad marks an S-CL load to a line the requester did not lock;
	// if the target line is locked by someone else, the requester receives
	// a Nack and aborts (Fig. 5 deadlock avoidance).
	NackableLoad bool
	// NonSpec marks a request from non-speculative fallback execution under
	// the global lock; speculative holders always yield to it (their
	// subscription to the fallback-lock line aborts them anyway).
	NonSpec bool
	// Locking marks the exclusive request of a cacheline-lock acquisition.
	// Victim S-CL holders must not record such invalidations in their CRT:
	// the locker is itself a transient CL re-execution, and defensively
	// locking the line next time would only propagate lock acquisitions
	// across the system (a chain reaction on read-hot lines).
	Locking bool
}

// AccessResult reports the outcome of a Read/Write request.
type AccessResult struct {
	// Latency until data is available at the requesting core.
	Latency sim.Tick
	// Nacked: the request was refused by a lock holder or power-mode
	// transaction; the requester must abort its AR.
	Nacked bool
	// Retry: the line is locked and the request is not NACKable; the
	// requester must re-issue after Latency (the directory stays unblocked —
	// this is the paper's fix to the three-core deadlock of Fig. 6).
	Retry bool
	// LockNack: the Nack came from a cacheline lock rather than from a
	// prioritised holder. S-CL requesters do not record lock-caused nacks
	// in the CRT — the lock is a transient re-execution artefact, and
	// locking the line in response would cascade lock acquisitions across
	// cores on read-hot lines.
	LockNack bool
}

// LockResult reports the outcome of a Lock request.
type LockResult struct {
	Latency sim.Tick
	// Retry: the line is locked by another core; re-issue after Latency
	// (the lexicographic total order keeps this wait acyclic).
	Retry bool
	// Nacked: a prioritised holder (power mode, another S-CL's speculative
	// set) refused the underlying invalidation; the locking AR must abort
	// rather than spin, or it could form a wait cycle with the holder
	// (§5.2).
	Nacked bool
	// Holder identifies the core responsible for a Retry/Nacked outcome —
	// exact for Retry (the lock holder), best-effort for Nacked (the
	// exclusive owner when one exists). Meaningful only when HolderKnown;
	// the zero value deliberately reads as "unknown" so fabricated results
	// (tests, injected denials with no real holder) stay unattributed.
	Holder      int
	HolderKnown bool
}

// CoreHook is implemented by the per-core transactional layer. The directory
// invokes it synchronously while processing a transaction.
type CoreHook interface {
	// OnRemoteRequest tells the core that another core requests line with
	// (isWrite) intent, carrying the requester's attributes. The core
	// answers whether it yields (dropping the line from its cache, aborting
	// its transaction if the line is in its read/write set) or NACKs.
	OnRemoteRequest(line mem.LineAddr, isWrite bool, requester int, attrs ReqAttrs) HolderResponse
}

type heldReq struct {
	core    int
	isWrite bool
}

// Config controls directory behaviour.
type Config struct {
	NumCores int
	// Sets is the number of directory sets; it defines CLEAR's
	// lexicographic lock order and its conflict groups. Power of two.
	Sets int
	// HoldOnLocked, when true, queues non-NACKable requests at a locked
	// line instead of signalling Retry. This reproduces the deadlock of
	// Fig. 6 and exists only for tests; production configs leave it false.
	HoldOnLocked bool
	Lat          Latencies
	// Topo prices interconnect traversals; nil selects the Table 2
	// crossbar with Lat.Crossbar per link.
	Topo noc.Topology
}

// DefaultConfig returns a 32-core directory with 4096 sets.
func DefaultConfig() Config {
	return Config{NumCores: 32, Sets: 4096, Lat: DefaultLatencies()}
}

// Stats counts directory-observable events; the energy model consumes them.
type Stats struct {
	Reads         uint64
	Writes        uint64
	Invalidations uint64
	Downgrades    uint64
	Nacks         uint64
	Retries       uint64
	Locks         uint64
	Unlocks       uint64
	MemoryFetches uint64
	Forwards      uint64
	// Hops counts interconnect link traversals (the NoC energy input).
	Hops uint64
}

// emptySlot is the open-addressed table's vacancy sentinel. Line addresses
// are word addresses shifted right by the 6 line-offset bits, so the top
// bits of a real line are always zero and all-ones can never collide.
const emptySlot = ^mem.LineAddr(0)

// dirMinSlots is the initial table capacity; it doubles on demand.
const dirMinSlots = 1 << 10

// dirHashMul is the 64-bit golden-ratio multiplier (Fibonacci hashing).
const dirHashMul = 0x9e3779b97f4a7c15

// Directory is the shared coherence point: it tracks the owner, sharers, and
// lock state of every line touched so far.
//
// Line state lives in an open-addressed, power-of-two table of parallel
// arrays indexed by slot — no per-line heap nodes. Entries are created on
// first touch and never deleted (Evict only clears owner/sharer bits), so
// probing needs no tombstones and slot indices stay valid until the next
// insertion-triggered growth (which cannot happen inside one directory
// transaction: insertion occurs only at the top of Read/Write/Lock).
type Directory struct {
	cfg Config

	// The slot-indexed state arrays. keys[i] == emptySlot marks a free
	// slot; owner/locked use -1 for "none"; heldq is allocated only in
	// HoldOnLocked mode (the deadlock-injection tests).
	keys    []mem.LineAddr
	owner   []int32
	sharers []CoreSet
	locked  []int32
	heldq   [][]heldReq
	live    int  // occupied slots
	shift   uint // 64 - log2(len(keys))

	hooks []CoreHook
	topo  noc.Topology

	// held[core] lists the lines core currently holds cacheline locks on,
	// in acquisition order. It makes the XEnd bulk unlock (§5.1) and the
	// locked-line census O(locks held) instead of O(all lines ever
	// touched); lockedLines is the global count.
	held        [][]mem.LineAddr
	lockedLines int

	// obs, when non-nil, is notified after every state transition (see
	// Observer in observer.go). Nil by default: the hot path pays one
	// pointer comparison.
	obs Observer

	// fault, when non-nil, filters requests before they reach the protocol
	// (see FaultHook in fault.go). Nil by default, same cost discipline as
	// obs.
	fault FaultHook

	Stats Stats
}

// NewDirectory builds an empty directory for cfg.NumCores cores.
func NewDirectory(cfg Config) *Directory {
	if cfg.NumCores <= 0 || cfg.NumCores > 64 {
		panic(fmt.Sprintf("coherence: unsupported core count %d", cfg.NumCores))
	}
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("coherence: directory sets %d not a power of two", cfg.Sets))
	}
	topo := cfg.Topo
	if topo == nil {
		topo = noc.NewCrossbar(cfg.Lat.Crossbar)
	}
	d := &Directory{
		cfg:   cfg,
		hooks: make([]CoreHook, cfg.NumCores),
		topo:  topo,
		held:  make([][]mem.LineAddr, cfg.NumCores),
	}
	d.initTable(dirMinSlots)
	return d
}

func (d *Directory) initTable(n int) {
	d.keys = make([]mem.LineAddr, n)
	for i := range d.keys {
		d.keys[i] = emptySlot
	}
	d.owner = make([]int32, n)
	d.sharers = make([]CoreSet, n)
	d.locked = make([]int32, n)
	if d.cfg.HoldOnLocked {
		d.heldq = make([][]heldReq, n)
	}
	d.shift = uint(64 - bits.Len(uint(n-1)))
}

// lookup probes for line. It returns the slot holding line (found=true) or
// the free slot where line would be inserted (found=false).
func (d *Directory) lookup(line mem.LineAddr) (slot int, found bool) {
	mask := uint64(len(d.keys) - 1)
	for i := (uint64(line) * dirHashMul) >> d.shift; ; i = (i + 1) & mask {
		k := d.keys[i]
		if k == line {
			return int(i), true
		}
		if k == emptySlot {
			return int(i), false
		}
	}
}

// slotFor returns line's slot, creating the entry on first touch.
func (d *Directory) slotFor(line mem.LineAddr) int {
	i, ok := d.lookup(line)
	if ok {
		return i
	}
	if (d.live+1)*4 >= len(d.keys)*3 {
		d.grow()
		i, _ = d.lookup(line)
	}
	d.keys[i] = line
	d.owner[i] = -1
	d.sharers[i] = 0
	d.locked[i] = -1
	d.live++
	return i
}

// grow doubles the table and re-probes every occupied slot. Lock state
// survives: the per-core held lists store lines, not slot indices.
func (d *Directory) grow() {
	oldKeys, oldOwner, oldSharers, oldLocked, oldHeldq := d.keys, d.owner, d.sharers, d.locked, d.heldq
	d.initTable(len(oldKeys) * 2)
	mask := uint64(len(d.keys) - 1)
	for j, k := range oldKeys {
		if k == emptySlot {
			continue
		}
		i := (uint64(k) * dirHashMul) >> d.shift
		for d.keys[i] != emptySlot {
			i = (i + 1) & mask
		}
		d.keys[i] = k
		d.owner[i] = oldOwner[j]
		d.sharers[i] = oldSharers[j]
		d.locked[i] = oldLocked[j]
		if oldHeldq != nil {
			d.heldq[i] = oldHeldq[j]
		}
	}
}

// Topology returns the interconnect model in use.
func (d *Directory) Topology() noc.Topology { return d.topo }

// link prices one interconnect traversal between core and line's home bank
// and counts its hops.
func (d *Directory) link(core int, line mem.LineAddr) sim.Tick {
	bank := d.SetOf(line)
	d.Stats.Hops += uint64(d.topo.Hops(core, bank))
	return d.topo.Latency(core, bank)
}

// RegisterHook installs the transactional layer callback for a core.
func (d *Directory) RegisterHook(core int, h CoreHook) { d.hooks[core] = h }

// Config returns the directory configuration.
func (d *Directory) Config() Config { return d.cfg }

// SetOf returns the directory set index of line: CLEAR's lexicographic lock
// order (§5, "the set index of the smallest shared structure").
func (d *Directory) SetOf(line mem.LineAddr) int { return line.SetIndex(d.cfg.Sets) }

// LockedBy returns the core holding the cacheline lock on line, or -1.
func (d *Directory) LockedBy(line mem.LineAddr) int {
	if si, ok := d.lookup(line); ok {
		return int(d.locked[si])
	}
	return -1
}

// Owner returns the exclusive owner of line, or -1.
func (d *Directory) Owner(line mem.LineAddr) int {
	if si, ok := d.lookup(line); ok {
		return int(d.owner[si])
	}
	return -1
}

// Sharers returns the sharer set of line.
func (d *Directory) Sharers(line mem.LineAddr) CoreSet {
	if si, ok := d.lookup(line); ok {
		return d.sharers[si]
	}
	return 0
}

// roundTrip is the base cost of core consulting line's directory bank:
// request + response traversals plus the directory access.
func (d *Directory) roundTrip(core int, line mem.LineAddr) sim.Tick {
	return d.link(core, line) + d.link(core, line) + d.cfg.Lat.Directory
}

// Read processes a GetS from core. On success the core becomes a sharer
// (or keeps ownership). Failed-mode reads do not register as sharers and
// never abort remote holders.
func (d *Directory) Read(core int, line mem.LineAddr, attrs ReqAttrs) AccessResult {
	var res AccessResult
	if d.fault != nil {
		res = d.faultedAccess(core, line, false, attrs)
	} else {
		res = d.read(core, line, attrs)
	}
	if d.obs != nil {
		d.obs.OnAccess(core, line, false, attrs, res)
	}
	return res
}

func (d *Directory) read(core int, line mem.LineAddr, attrs ReqAttrs) AccessResult {
	d.Stats.Reads++
	si := d.slotFor(line)
	lat := d.roundTrip(core, line)

	if attrs.FailedMode {
		// Failed-mode discovery loads are non-aborting (§5.1): they read
		// committed data without registering as sharers, disturbing owners,
		// or honouring cacheline locks — the AR is already doomed and its
		// requests must not damage other ARs.
		d.Stats.MemoryFetches++
		return AccessResult{Latency: lat + d.cfg.Lat.Memory}
	}

	if d.locked[si] >= 0 && int(d.locked[si]) != core {
		return d.refuse(si, line, core, false, attrs, lat)
	}

	if owner := int(d.owner[si]); d.owner[si] >= 0 && owner != core {
		// Owned elsewhere: ask the owner to downgrade (share) the line.
		resp := d.askHolder(owner, line, false, core, attrs)
		if resp == HolderNacks {
			d.Stats.Nacks++
			return AccessResult{Latency: lat + d.cfg.Lat.Crossbar, Nacked: true}
		}
		d.Stats.Downgrades++
		d.Stats.Forwards++
		// Forward to the owner and data back: two more traversals.
		lat += d.link(owner, line) + d.link(core, line)
		// Owner keeps a shared copy.
		d.sharers[si] = d.sharers[si].Add(owner)
		d.owner[si] = -1
	} else if owner == core {
		// Already owned by the requester (e.g. read after transactional
		// write): nothing to do at the directory.
	} else if d.sharers[si].Empty() && d.owner[si] < 0 {
		// Cold miss: fetch from memory.
		d.Stats.MemoryFetches++
		lat += d.cfg.Lat.Memory
	}

	if int(d.owner[si]) != core {
		d.sharers[si] = d.sharers[si].Add(core)
	}
	return AccessResult{Latency: lat}
}

// Write processes a GetX/Upgrade from core. On success the core becomes the
// exclusive owner; all other sharers and any previous owner are invalidated
// (which may abort their transactions, per the holder's policy).
func (d *Directory) Write(core int, line mem.LineAddr, attrs ReqAttrs) AccessResult {
	var res AccessResult
	if d.fault != nil {
		res = d.faultedAccess(core, line, true, attrs)
	} else {
		res = d.write(core, line, attrs)
	}
	if d.obs != nil {
		d.obs.OnAccess(core, line, true, attrs, res)
	}
	return res
}

func (d *Directory) write(core int, line mem.LineAddr, attrs ReqAttrs) AccessResult {
	d.Stats.Writes++
	si := d.slotFor(line)
	lat := d.roundTrip(core, line)

	if d.locked[si] >= 0 && int(d.locked[si]) != core {
		return d.refuse(si, line, core, true, attrs, lat)
	}

	if int(d.owner[si]) == core {
		return AccessResult{Latency: lat}
	}

	// Collect every remote holder that must be invalidated.
	nacked := false
	invalidated := 0
	if owner := int(d.owner[si]); d.owner[si] >= 0 {
		resp := d.askHolder(owner, line, true, core, attrs)
		if resp == HolderNacks {
			nacked = true
		} else {
			d.Stats.Invalidations++
			invalidated++
			d.owner[si] = -1
		}
	}
	if !nacked {
		// Walk the sharer bits directly (ascending core order, like
		// CoreSet.ForEach) — no closure, no indirect calls on this hot path.
		var keep CoreSet
		for v := uint64(d.sharers[si]); v != 0; {
			c := bits.TrailingZeros64(v)
			v &^= 1 << uint(c)
			if c == core {
				// The requester's own shared copy stays valid if the
				// upgrade fails; dropping it here would let its cache and
				// the sharer vector diverge (lost conflict detection).
				keep = keep.Add(c)
				continue
			}
			resp := d.askHolder(c, line, true, core, attrs)
			if resp == HolderNacks {
				nacked = true
				keep = keep.Add(c)
				continue
			}
			d.Stats.Invalidations++
			invalidated++
		}
		if nacked {
			// Partial invalidation: holders that yielded are already gone;
			// refusing holders and the requester keep their copies and the
			// upgrade fails.
			d.sharers[si] = keep
		} else {
			d.sharers[si] = 0
		}
	}
	if nacked {
		d.Stats.Nacks++
		return AccessResult{Latency: lat + d.link(core, line), Nacked: true}
	}

	if invalidated > 0 {
		lat += 2 * d.link(core, line) // invalidation round trip (worst sharer)
	} else {
		d.Stats.MemoryFetches++
		lat += d.cfg.Lat.Memory
	}
	d.owner[si] = int32(core)
	d.sharers[si] = 0
	return AccessResult{Latency: lat}
}

// refuse handles a request that hit a line locked by another core.
func (d *Directory) refuse(si int, line mem.LineAddr, core int, isWrite bool, attrs ReqAttrs, lat sim.Tick) AccessResult {
	if attrs.NackableLoad && !isWrite {
		// Nackable loads are refused outright; the requester aborts. This
		// breaks the two-core cycle of Fig. 5.
		d.Stats.Nacks++
		return AccessResult{Latency: lat + d.link(core, line), Nacked: true, LockNack: true}
	}
	if attrs.Power {
		// §5.2: locked (S-CL/NS-CL) lines answer power-mode requests with a
		// nack so the power transaction aborts instead of spinning — a
		// power transaction waiting on a cacheline lock while the locker
		// waits on power-held lines would otherwise livelock.
		d.Stats.Nacks++
		return AccessResult{Latency: lat + d.link(core, line), Nacked: true, LockNack: true}
	}
	if d.cfg.HoldOnLocked {
		// Deadlock-prone design: park the request at the (blocked) entry.
		// Only reachable in tests.
		d.heldq[si] = append(d.heldq[si], heldReq{core: core, isWrite: isWrite})
		return AccessResult{Latency: 0, Retry: false, Nacked: false}
	}
	// Production design: tell the requester to try again later, leaving the
	// directory entry unblocked (Fig. 6 fix).
	d.Stats.Retries++
	return AccessResult{Latency: lat + d.cfg.Lat.Backoff, Retry: true}
}

// HeldCount reports how many requests are parked on line (HoldOnLocked mode
// only); tests use it to observe the deadlock.
func (d *Directory) HeldCount(line mem.LineAddr) int {
	if d.heldq == nil {
		return 0
	}
	if si, ok := d.lookup(line); ok {
		return len(d.heldq[si])
	}
	return 0
}

func (d *Directory) askHolder(holder int, line mem.LineAddr, isWrite bool, requester int, attrs ReqAttrs) HolderResponse {
	h := d.hooks[holder]
	if h == nil {
		return HolderYields
	}
	return h.OnRemoteRequest(line, isWrite, requester, attrs)
}

// Lock acquires the cacheline lock on line for core, first obtaining
// exclusive ownership (invalidating sharers). If another core already holds
// the lock, the result says to retry after the returned latency. The holder
// callbacks apply the same policies as Write, so locking a line that a
// power-mode transaction is using can be nacked — the caller converts that
// into a retry as well.
func (d *Directory) Lock(core int, line mem.LineAddr, attrs ReqAttrs) LockResult {
	var res LockResult
	if d.fault != nil {
		res = d.faultedLock(core, line, attrs)
	} else {
		res = d.lock(core, line, attrs)
	}
	if d.obs != nil {
		d.obs.OnLock(core, line, res)
	}
	return res
}

func (d *Directory) lock(core int, line mem.LineAddr, attrs ReqAttrs) LockResult {
	d.Stats.Locks++
	si := d.slotFor(line)
	if d.locked[si] >= 0 && int(d.locked[si]) != core {
		d.Stats.Retries++
		return LockResult{
			Latency: d.roundTrip(core, line) + d.cfg.Lat.Backoff, Retry: true,
			Holder: int(d.locked[si]), HolderKnown: true,
		}
	}
	if int(d.owner[si]) == core {
		// Already held exclusive (the ALT "Hit" fast path of §5): the lock
		// is taken without communicating with the rest of the hierarchy.
		d.acquireLock(core, line, si)
		return LockResult{Latency: d.cfg.Lat.L1Hit}
	}
	attrs.Locking = true
	res := d.Write(core, line, attrs)
	if res.Nacked {
		out := LockResult{Latency: res.Latency, Nacked: true}
		if owner := int(d.owner[si]); owner >= 0 && owner != core {
			out.Holder, out.HolderKnown = owner, true
		}
		return out
	}
	if res.Retry {
		d.Stats.Retries++
		return LockResult{Latency: res.Latency + d.cfg.Lat.Backoff, Retry: true}
	}
	d.acquireLock(core, line, si)
	return LockResult{Latency: res.Latency}
}

// acquireLock records core as the lock holder of line, keeping the per-core
// held-locks list and the global count exact. Re-locking an already-held
// line is a no-op.
func (d *Directory) acquireLock(core int, line mem.LineAddr, si int) {
	if int(d.locked[si]) == core {
		return
	}
	d.locked[si] = int32(core)
	d.held[core] = append(d.held[core], line)
	d.lockedLines++
}

// Unlock releases the cacheline lock held by core on line. Held requests
// (HoldOnLocked mode) are not replayed automatically; the simulator's retry
// scheme re-issues from the core side.
func (d *Directory) Unlock(core int, line mem.LineAddr) {
	d.Stats.Unlocks++
	si := d.slotFor(line)
	if int(d.locked[si]) != core {
		panic(fmt.Sprintf("coherence: core %d unlocking line %s locked by %d", core, line, d.locked[si]))
	}
	d.locked[si] = -1
	d.lockedLines--
	held := d.held[core]
	for i := range held {
		if held[i] == line {
			d.held[core] = append(held[:i], held[i+1:]...)
			if d.obs != nil {
				d.obs.OnUnlock(core, line)
			}
			return
		}
	}
	panic(fmt.Sprintf("coherence: core %d held-locks list missing line %s", core, line))
}

// UnlockAll releases every lock held by core (the bulk unlock at XEnd,
// §5.1) and returns how many were released. It walks the per-core
// held-locks list, re-probing each line (an O(1) hit), so the cost is
// O(locks held) — independent of how many lines the directory has ever
// tracked.
func (d *Directory) UnlockAll(core int) int {
	held := d.held[core]
	n := len(held)
	for _, line := range held {
		si, ok := d.lookup(line)
		if !ok {
			panic(fmt.Sprintf("coherence: core %d held lock on untracked line %s", core, line))
		}
		d.locked[si] = -1
		if d.obs != nil {
			d.obs.OnUnlock(core, line)
		}
	}
	d.held[core] = held[:0]
	d.lockedLines -= n
	d.Stats.Unlocks += uint64(n)
	return n
}

// Evict removes core from line's sharer/owner sets (L1 replacement or
// abort cleanup). Locked lines cannot be evicted.
func (d *Directory) Evict(core int, line mem.LineAddr) {
	si, ok := d.lookup(line)
	if !ok {
		return
	}
	if int(d.locked[si]) == core {
		panic(fmt.Sprintf("coherence: evicting locked line %s", line))
	}
	if int(d.owner[si]) == core {
		d.owner[si] = -1
	}
	d.sharers[si] = d.sharers[si].Remove(core)
	if d.obs != nil {
		d.obs.OnEvict(core, line)
	}
}

// LockedLines returns how many lines are currently cacheline-locked; tests
// use it to assert the bulk unlock is complete. O(1): the count is
// maintained by Lock/Unlock/UnlockAll.
func (d *Directory) LockedLines() int { return d.lockedLines }

// HeldLocks returns the lines core currently holds cacheline locks on, in
// acquisition order (a copy; the caller may retain it).
func (d *Directory) HeldLocks(core int) []mem.LineAddr {
	held := d.held[core]
	if len(held) == 0 {
		return nil
	}
	lines := make([]mem.LineAddr, len(held))
	copy(lines, held)
	return lines
}
