package coherence

import (
	"math/bits"
	"strconv"
	"strings"
)

// CoreSet is a bitset of core IDs (up to 64 cores), used for directory
// sharer vectors.
type CoreSet uint64

// Add returns the set with core added.
func (s CoreSet) Add(core int) CoreSet { return s | 1<<uint(core) }

// Remove returns the set with core removed.
func (s CoreSet) Remove(core int) CoreSet { return s &^ (1 << uint(core)) }

// Has reports whether core is in the set.
func (s CoreSet) Has(core int) bool { return s&(1<<uint(core)) != 0 }

// Empty reports whether the set has no members.
func (s CoreSet) Empty() bool { return s == 0 }

// Count returns the number of members.
func (s CoreSet) Count() int { return bits.OnesCount64(uint64(s)) }

// ForEach calls fn for each member in ascending core order.
func (s CoreSet) ForEach(fn func(core int)) {
	for v := uint64(s); v != 0; {
		c := bits.TrailingZeros64(v)
		fn(c)
		v &^= 1 << uint(c)
	}
}

// Only reports whether the set contains exactly the given core.
func (s CoreSet) Only(core int) bool { return s == 1<<uint(core) }

func (s CoreSet) String() string {
	var parts []string
	s.ForEach(func(c int) { parts = append(parts, strconv.Itoa(c)) })
	return "{" + strings.Join(parts, ",") + "}"
}
