package coherence

import (
	"fmt"
	"testing"

	"repro/internal/mem"
)

// BenchmarkDirectoryLockUnlockAll measures the XEnd bulk-unlock path as a
// function of the total number of lines the directory has ever tracked. The
// per-iteration work (lock 8 lines, bulk-unlock them) is constant, so the
// benchmark scales flat in the directory size when UnlockAll is O(locks
// held) — and linearly when it iterates the whole entries map.
func BenchmarkDirectoryLockUnlockAll(b *testing.B) {
	for _, total := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("lines%d", total), func(b *testing.B) {
			d := NewDirectory(DefaultConfig())
			// Populate the directory with `total` touched lines.
			for i := 0; i < total; i++ {
				d.Read(1, mem.LineAddr(i+64), ReqAttrs{})
			}
			const held = 8
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for l := 0; l < held; l++ {
					if res := d.Lock(0, mem.LineAddr(l), ReqAttrs{}); res.Retry || res.Nacked {
						b.Fatal("lock refused")
					}
				}
				if n := d.UnlockAll(0); n != held {
					b.Fatalf("released %d, want %d", n, held)
				}
			}
		})
	}
}
