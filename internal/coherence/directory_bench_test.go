package coherence

import (
	"fmt"
	"testing"

	"repro/internal/mem"
)

// BenchmarkDirectoryLockUnlockAll measures the XEnd bulk-unlock path as a
// function of the total number of lines the directory has ever tracked. The
// per-iteration work (lock 8 lines, bulk-unlock them) is constant, so the
// benchmark scales flat in the directory size when UnlockAll is O(locks
// held) — and linearly when it iterates the whole entries map.
// refDirEntry mirrors the directory's per-line state for the map-based
// reference implementation below.
type refDirEntry struct {
	owner    int
	sharers  CoreSet
	lockedBy int
}

// BenchmarkDirectoryLookup measures the per-line state lookup on the
// open-addressed slot table, interleaving hits (a hot working set) with cold
// first-touch insertions — the access mix Read/Write see on the hot path.
func BenchmarkDirectoryLookup(b *testing.B) {
	d := NewDirectory(DefaultConfig())
	const hot = 512
	for i := 0; i < hot; i++ {
		d.slotFor(mem.LineAddr(i * 3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	cold := mem.LineAddr(1 << 20)
	for i := 0; i < b.N; i++ {
		sink += d.slotFor(mem.LineAddr((i % hot) * 3))
		if i%16 == 0 {
			d.slotFor(cold)
			cold++
		}
	}
	_ = sink
}

// BenchmarkDirectoryLookupMapRef is the map-of-pointers reference (the
// previous directory layout) for the same access mix, so the win is
// measured, not asserted.
func BenchmarkDirectoryLookupMapRef(b *testing.B) {
	entries := make(map[mem.LineAddr]*refDirEntry)
	entryFor := func(line mem.LineAddr) *refDirEntry {
		e, ok := entries[line]
		if !ok {
			e = &refDirEntry{owner: -1, lockedBy: -1}
			entries[line] = e
		}
		return e
	}
	const hot = 512
	for i := 0; i < hot; i++ {
		entryFor(mem.LineAddr(i * 3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	cold := mem.LineAddr(1 << 20)
	for i := 0; i < b.N; i++ {
		sink += entryFor(mem.LineAddr((i % hot) * 3)).owner
		if i%16 == 0 {
			entryFor(cold)
			cold++
		}
	}
	_ = sink
}

func BenchmarkDirectoryLockUnlockAll(b *testing.B) {
	for _, total := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("lines%d", total), func(b *testing.B) {
			d := NewDirectory(DefaultConfig())
			// Populate the directory with `total` touched lines.
			for i := 0; i < total; i++ {
				d.Read(1, mem.LineAddr(i+64), ReqAttrs{})
			}
			const held = 8
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for l := 0; l < held; l++ {
					if res := d.Lock(0, mem.LineAddr(l), ReqAttrs{}); res.Retry || res.Nacked {
						b.Fatal("lock refused")
					}
				}
				if n := d.UnlockAll(0); n != held {
					b.Fatalf("released %d, want %d", n, held)
				}
			}
		})
	}
}
