package coherence

import (
	"testing"

	"repro/internal/mem"
)

// TestLockedLineRefusalMatrix is the table-driven contract for requests that
// hit a line locked by another core: which requester attributes get a NACK
// (abort), which get a Retry (re-issue later, directory unblocked — the
// Fig. 6 fix), and which are parked when the deadlock-prone HoldOnLocked
// design is enabled.
func TestLockedLineRefusalMatrix(t *testing.T) {
	cases := []struct {
		name         string
		holdOnLocked bool
		isWrite      bool
		attrs        ReqAttrs
		wantNack     bool
		wantLockNack bool
		wantRetry    bool
		wantHeld     int
	}{
		{name: "plain read retries", wantRetry: true},
		{name: "plain write retries", isWrite: true, wantRetry: true},
		{name: "nackable load is nacked", attrs: ReqAttrs{NackableLoad: true}, wantNack: true, wantLockNack: true},
		{name: "nackable flag ignored on writes", isWrite: true, attrs: ReqAttrs{NackableLoad: true}, wantRetry: true},
		{name: "power read is nacked", attrs: ReqAttrs{Power: true}, wantNack: true, wantLockNack: true},
		{name: "power write is nacked", isWrite: true, attrs: ReqAttrs{Power: true}, wantNack: true, wantLockNack: true},
		{name: "failed-mode read passes through", attrs: ReqAttrs{FailedMode: true}},
		{name: "hold-on-locked parks reads", holdOnLocked: true, wantHeld: 1},
		{name: "hold-on-locked parks writes", holdOnLocked: true, isWrite: true, wantHeld: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.NumCores = 4
			cfg.HoldOnLocked = tc.holdOnLocked
			d := NewDirectory(cfg)
			if r := d.Lock(1, testLine, ReqAttrs{}); r.Retry || r.Nacked {
				t.Fatal("initial lock refused")
			}

			var res AccessResult
			if tc.isWrite {
				res = d.Write(0, testLine, tc.attrs)
			} else {
				res = d.Read(0, testLine, tc.attrs)
			}
			if res.Nacked != tc.wantNack || res.LockNack != tc.wantLockNack || res.Retry != tc.wantRetry {
				t.Fatalf("got {nack:%v lockNack:%v retry:%v}, want {nack:%v lockNack:%v retry:%v}",
					res.Nacked, res.LockNack, res.Retry, tc.wantNack, tc.wantLockNack, tc.wantRetry)
			}
			if got := d.HeldCount(testLine); got != tc.wantHeld {
				t.Fatalf("held requests = %d, want %d", got, tc.wantHeld)
			}
			if tc.wantRetry && res.Latency <= d.Config().Lat.Backoff {
				t.Fatalf("retry latency %d does not include the backoff window", res.Latency)
			}
			// Whatever the refusal, the lock state must be untouched.
			if d.LockedBy(testLine) != 1 || d.LockedLines() != 1 {
				t.Fatalf("refusal disturbed the lock: lockedBy=%d lockedLines=%d",
					d.LockedBy(testLine), d.LockedLines())
			}
		})
	}
}

// TestHoldOnLockedAccumulatesWaiters: in the deadlock-prone design the
// blocked entry queues every refused request (they are only replayed by the
// requesting cores, never by the directory), which is exactly the transient
// state that lets Fig. 6's three-core deadlock form.
func TestHoldOnLockedAccumulatesWaiters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumCores = 4
	cfg.HoldOnLocked = true
	d := NewDirectory(cfg)
	d.Lock(3, testLine, ReqAttrs{})

	for i, req := range []struct {
		core    int
		isWrite bool
	}{{0, false}, {1, true}, {2, false}} {
		var res AccessResult
		if req.isWrite {
			res = d.Write(req.core, testLine, ReqAttrs{})
		} else {
			res = d.Read(req.core, testLine, ReqAttrs{})
		}
		if res.Retry || res.Nacked {
			t.Fatalf("request %d refused instead of parked: %+v", i, res)
		}
		if got := d.HeldCount(testLine); got != i+1 {
			t.Fatalf("after request %d: %d parked, want %d", i, got, i+1)
		}
	}
	// Unlocking does not replay the parked requests; the retry scheme is
	// core-driven, so the queue simply persists until the cores re-issue.
	d.Unlock(3, testLine)
	if got := d.HeldCount(testLine); got != 3 {
		t.Fatalf("unlock dropped parked requests: %d left, want 3", got)
	}
}

// TestLockContentionRetryThenAcquire: a Lock on a line locked elsewhere is a
// Retry (with backoff latency, directory unblocked); once the holder
// releases, the same Lock succeeds and the per-core held-locks bookkeeping
// follows.
func TestLockContentionRetryThenAcquire(t *testing.T) {
	d, _ := newTestDir(4)
	d.Lock(1, testLine, ReqAttrs{})

	res := d.Lock(2, testLine, ReqAttrs{})
	if !res.Retry || res.Nacked {
		t.Fatalf("lock on locked line: %+v, want retry", res)
	}
	if res.Latency <= d.Config().Lat.Backoff {
		t.Fatalf("lock-retry latency %d does not include the backoff window", res.Latency)
	}
	if d.LockedBy(testLine) != 1 {
		t.Fatal("failed lock disturbed the holder")
	}

	d.Unlock(1, testLine)
	if res := d.Lock(2, testLine, ReqAttrs{}); res.Retry || res.Nacked {
		t.Fatalf("lock after release refused: %+v", res)
	}
	if d.LockedBy(testLine) != 2 || d.LockedLines() != 1 {
		t.Fatalf("lock transfer broken: lockedBy=%d lockedLines=%d", d.LockedBy(testLine), d.LockedLines())
	}
	if locks := d.HeldLocks(2); len(locks) != 1 || locks[0] != testLine {
		t.Fatalf("held-locks list wrong: %v", locks)
	}
	if locks := d.HeldLocks(1); len(locks) != 0 {
		t.Fatalf("previous holder still lists locks: %v", locks)
	}
}

// TestLockNackedByPriorityHolder: acquiring a cacheline lock requires an
// exclusive (Locking) invalidation; a prioritised holder (power mode)
// refuses it, so the Lock comes back Nacked — the locking AR must abort
// rather than spin (§5.2) — and the holder keeps the line.
func TestLockNackedByPriorityHolder(t *testing.T) {
	d, hooks := newTestDir(4)
	d.Write(1, testLine, ReqAttrs{}) // core 1 owns the line
	hooks[1].response = HolderNacks  // and has priority

	res := d.Lock(2, testLine, ReqAttrs{})
	if !res.Nacked || res.Retry {
		t.Fatalf("lock against priority holder: %+v, want nack", res)
	}
	if len(hooks[1].calls) != 1 || !hooks[1].calls[0].isWrite {
		t.Fatalf("holder saw %+v, want one exclusive request", hooks[1].calls)
	}
	if d.Owner(testLine) != 1 || d.LockedBy(testLine) != -1 || d.LockedLines() != 0 {
		t.Fatalf("nacked lock disturbed the line: owner=%d lockedBy=%d", d.Owner(testLine), d.LockedBy(testLine))
	}
	// The nack is transient: once the holder yields, the same lock succeeds.
	hooks[1].response = HolderYields
	if res := d.Lock(2, testLine, ReqAttrs{}); res.Nacked || res.Retry {
		t.Fatalf("lock after holder yields refused: %+v", res)
	}
	if d.LockedBy(testLine) != 2 || d.Owner(testLine) != 2 {
		t.Fatal("yielded lock did not transfer ownership to the locker")
	}
}

// TestEvictionRacingLockedLine: an L1 replacement can target a line some
// other core holds a cacheline lock on. A non-holder's eviction must leave
// the lock (and the holder's exclusive ownership) intact; the holder itself
// evicting its own locked line is a protocol violation and panics.
func TestEvictionRacingLockedLine(t *testing.T) {
	t.Run("non-holder evicts freely", func(t *testing.T) {
		d, _ := newTestDir(4)
		d.Read(2, testLine, ReqAttrs{}) // core 2 shares the line first
		d.Lock(1, testLine, ReqAttrs{}) // core 1 locks it (invalidates core 2)
		d.Evict(2, testLine)            // core 2's replacement races the lock
		if d.LockedBy(testLine) != 1 || d.Owner(testLine) != 1 || d.LockedLines() != 1 {
			t.Fatalf("eviction disturbed the lock: owner=%d lockedBy=%d", d.Owner(testLine), d.LockedBy(testLine))
		}
		if d.Sharers(testLine).Has(2) {
			t.Fatal("evicted core still registered as sharer")
		}
	})
	t.Run("holder eviction panics", func(t *testing.T) {
		d, _ := newTestDir(4)
		d.Lock(1, testLine, ReqAttrs{})
		defer func() {
			if recover() == nil {
				t.Fatal("evicting one's own locked line did not panic")
			}
		}()
		d.Evict(1, testLine)
	})
	t.Run("unknown line is a no-op", func(t *testing.T) {
		d, _ := newTestDir(4)
		d.Evict(0, mem.LineAddr(0xdead00)) // never touched: must not panic
	})
}

// TestPartialInvalidationKeepsNacker: a write upgrade that a subset of
// sharers refuses ends in the documented transient state — yielded sharers
// are gone, the refusing sharer and the requester keep their copies, and no
// owner is installed (the upgrade failed).
func TestPartialInvalidationKeepsNacker(t *testing.T) {
	d, hooks := newTestDir(4)
	d.Read(0, testLine, ReqAttrs{})
	d.Read(1, testLine, ReqAttrs{})
	d.Read(2, testLine, ReqAttrs{})
	hooks[2].response = HolderNacks // core 2 has priority; core 1 yields

	res := d.Write(0, testLine, ReqAttrs{})
	if !res.Nacked {
		t.Fatalf("upgrade against a refusing sharer: %+v, want nack", res)
	}
	sh := d.Sharers(testLine)
	if sh.Has(1) {
		t.Fatal("yielded sharer survived the partial invalidation")
	}
	if !sh.Has(2) || !sh.Has(0) {
		t.Fatalf("sharers after partial invalidation = %v, want requester and nacker", sh)
	}
	if d.Owner(testLine) != -1 {
		t.Fatalf("failed upgrade installed owner %d", d.Owner(testLine))
	}
}
