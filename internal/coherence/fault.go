package coherence

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// FaultHook is the coherence-layer fault-injection seam. When installed, it
// filters every Read/Write/Lock before the real directory transaction runs;
// it can deny the request outright (an injected NACK or lock Retry — outcomes
// the protocol must already tolerate) or charge extra latency (a directory
// transient-state stall). A denied request leaves the directory state
// untouched: faults delay or refuse, never corrupt.
type FaultHook interface {
	// FilterAccess is consulted before a Read/Write. deny refuses the
	// request with a NACK; extra is added to the result latency either way.
	FilterAccess(core int, line mem.LineAddr, isWrite bool, attrs ReqAttrs) (deny bool, extra sim.Tick)
	// FilterLock is consulted before a Lock. deny refuses the acquisition
	// with a Retry; extra is added to the result latency either way.
	FilterLock(core int, line mem.LineAddr) (deny bool, extra sim.Tick)
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
// Nil by default: the access paths pay one pointer comparison.
func (d *Directory) SetFaultHook(h FaultHook) { d.fault = h }

// faultedAccess applies the fault filter around a Read/Write. An injected
// denial is reported exactly like a holder NACK against a locked line
// (Nacked+LockNack) so requester-side handling — abort without CRT
// pollution — takes the same path as a real refusal.
func (d *Directory) faultedAccess(core int, line mem.LineAddr, isWrite bool, attrs ReqAttrs) AccessResult {
	deny, extra := d.fault.FilterAccess(core, line, isWrite, attrs)
	if deny {
		d.Stats.Nacks++
		return AccessResult{
			Latency:  d.roundTrip(core, line) + extra,
			Nacked:   true,
			LockNack: true,
		}
	}
	var res AccessResult
	if isWrite {
		res = d.write(core, line, attrs)
	} else {
		res = d.read(core, line, attrs)
	}
	res.Latency += extra
	return res
}

// faultedLock applies the fault filter around a Lock. An injected denial is
// reported as a Retry — the same signal a lock held by another core produces
// — so the requester re-walks after the backoff; the lexicographic order
// argument is unaffected because no lock state changes.
func (d *Directory) faultedLock(core int, line mem.LineAddr, attrs ReqAttrs) LockResult {
	deny, extra := d.fault.FilterLock(core, line)
	if deny {
		d.Stats.Locks++
		d.Stats.Retries++
		return LockResult{
			Latency: d.roundTrip(core, line) + d.cfg.Lat.Backoff + extra,
			Retry:   true,
		}
	}
	res := d.lock(core, line, attrs)
	res.Latency += extra
	return res
}
