package trace

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Synthetic streams pin the committed-execution extraction rules: only
// accesses between an AttemptStart and the matching Commit survive; aborted
// attempts are discarded wholesale.

func evStart(tick int, core int, prog int, attempt int, mode cpu.Mode) Event {
	return Event{Tick: sim.Tick(tick), Kind: KindAttemptStart, Core: uint8(core),
		Arg0: uint8(mode), Arg2: uint32(attempt), Addr: uint64(prog)}
}

func evEnd(tick int, core int) Event {
	return Event{Tick: sim.Tick(tick), Kind: KindAttemptEnd, Core: uint8(core)}
}

func evCommit(tick int, core int, prog int, attempt int, mode cpu.Mode) Event {
	return Event{Tick: sim.Tick(tick), Kind: KindCommit, Core: uint8(core),
		Arg0: uint8(mode), Arg2: uint32(attempt), Addr: uint64(prog)}
}

func evMem(tick int, core int, addr uint64, val uint64, isWrite bool) Event {
	w := uint8(0)
	if isWrite {
		w = 1
	}
	return Event{Tick: sim.Tick(tick), Kind: KindMemAccess, Core: uint8(core),
		Arg1: w, Addr: addr, Arg3: val}
}

func TestCommittedARsBasic(t *testing.T) {
	ars := CommittedARs([]Event{
		evStart(10, 0, 1, 0, cpu.ModeSpeculative),
		evMem(11, 0, 0x100, 7, true),
		evMem(12, 0, 0x108, 7, false),
		evCommit(13, 0, 1, 0, cpu.ModeSpeculative),
	})
	if len(ars) != 1 {
		t.Fatalf("got %d ARs, want 1", len(ars))
	}
	ar := ars[0]
	if ar.Core != 0 || ar.ProgID != 1 || ar.Mode != cpu.ModeSpeculative || ar.CommitSeq != 0 {
		t.Fatalf("AR header: %+v", ar)
	}
	if len(ar.Accesses) != 2 || !ar.Accesses[0].IsWrite || ar.Accesses[1].IsWrite {
		t.Fatalf("accesses: %+v", ar.Accesses)
	}
	if ar.Accesses[0].Seq >= ar.Accesses[1].Seq {
		t.Fatalf("access Seq not increasing: %+v", ar.Accesses)
	}
}

func TestCommittedARsDiscardAborted(t *testing.T) {
	ars := CommittedARs([]Event{
		// Attempt 0 runs two accesses and aborts; attempt 1 commits with one.
		evStart(10, 0, 1, 0, cpu.ModeSpeculative),
		evMem(11, 0, 0x100, 1, true),
		evMem(12, 0, 0x108, 2, false),
		evEnd(13, 0),
		evStart(20, 0, 1, 1, cpu.ModeSCL),
		evMem(21, 0, 0x100, 3, true),
		evCommit(22, 0, 1, 1, cpu.ModeSCL),
	})
	if len(ars) != 1 {
		t.Fatalf("got %d ARs, want 1", len(ars))
	}
	if len(ars[0].Accesses) != 1 || ars[0].Accesses[0].Value != 3 {
		t.Fatalf("aborted attempt's accesses leaked: %+v", ars[0].Accesses)
	}
	if ars[0].Mode != cpu.ModeSCL || ars[0].Attempt != 1 {
		t.Fatalf("AR header: %+v", ars[0])
	}
}

func TestCommittedARsInterleavedCores(t *testing.T) {
	// Core 1 commits first; CommitSeq follows commit-record stream order.
	ars := CommittedARs([]Event{
		evStart(10, 0, 1, 0, cpu.ModeSpeculative),
		evStart(11, 1, 2, 0, cpu.ModeSpeculative),
		evMem(12, 0, 0x100, 1, true),
		evMem(13, 1, 0x140, 2, true),
		evCommit(14, 1, 2, 0, cpu.ModeSpeculative),
		evCommit(15, 0, 1, 0, cpu.ModeSpeculative),
	})
	if len(ars) != 2 {
		t.Fatalf("got %d ARs, want 2", len(ars))
	}
	if ars[0].Core != 1 || ars[0].CommitSeq != 0 || ars[1].Core != 0 || ars[1].CommitSeq != 1 {
		t.Fatalf("commit order wrong: %+v / %+v", ars[0], ars[1])
	}
	if len(ars[0].Accesses) != 1 || ars[0].Accesses[0].Value != 2 {
		t.Fatalf("core attribution wrong: %+v", ars[0].Accesses)
	}
}

// TestCommittedARsEndWithoutStart: fallback-lock waiters emit AttemptEnd
// records without a preceding AttemptStart; extraction must tolerate them.
func TestCommittedARsEndWithoutStart(t *testing.T) {
	ars := CommittedARs([]Event{
		evEnd(5, 0),
		evStart(10, 0, 1, 1, cpu.ModeFallback),
		evMem(11, 0, 0x100, 9, true),
		evCommit(12, 0, 1, 1, cpu.ModeFallback),
	})
	if len(ars) != 1 || len(ars[0].Accesses) != 1 {
		t.Fatalf("unexpected extraction: %+v", ars)
	}
}

// TestCommittedARsAccessesOutsideAttempt: mem events with no open attempt
// (e.g. partial fallback commit bookkeeping) are not attributed to the next
// attempt.
func TestCommittedARsAccessesOutsideAttempt(t *testing.T) {
	ars := CommittedARs([]Event{
		evMem(5, 0, 0x100, 1, true),
		evStart(10, 0, 1, 0, cpu.ModeSpeculative),
		evCommit(12, 0, 1, 0, cpu.ModeSpeculative),
	})
	if len(ars) != 1 || len(ars[0].Accesses) != 0 {
		t.Fatalf("stray access attributed: %+v", ars)
	}
}

func TestCommittedARString(t *testing.T) {
	ars := CommittedARs([]Event{
		evStart(10, 3, 7, 0, cpu.ModeSpeculative),
		evCommit(12, 3, 7, 0, cpu.ModeSpeculative),
	})
	s := ars[0].String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
