package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"repro/internal/coherence"
	clear "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/mem"
)

func lockOK() coherence.LockResult    { return coherence.LockResult{} }
func lockRetry() coherence.LockResult { return coherence.LockResult{Retry: true} }

// newTestMachine builds a small idle machine to host a tracer (the tests
// drive the probe/observer callbacks by hand).
func newTestMachine(t testing.TB, cores int) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultSystemConfig()
	cfg.Cores = cores
	m, err := cpu.NewMachine(cfg, mem.NewMemory(0x10000))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func attachTest(t testing.TB, m *cpu.Machine, w io.Writer, opts Options) *Tracer {
	t.Helper()
	tr, err := Attach(m, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestHeaderRoundTrip checks the header encodes and decodes losslessly.
func TestHeaderRoundTrip(t *testing.T) {
	m := newTestMachine(t, 4)
	var buf bytes.Buffer
	opts := Options{
		Benchmark:   "sorted-list",
		Config:      "W",
		Seed:        42,
		ARNames:     map[int]string{1: "sorted-list/insert", 7: "sorted-list/count"},
		MemAccesses: true,
	}
	tr := attachTest(t, m, &buf, opts)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	meta := rd.Meta()
	if meta.Benchmark != "sorted-list" || meta.Config != "W" || meta.Seed != 42 ||
		meta.Cores != 4 || !meta.MemAccesses || meta.DirAccesses {
		t.Fatalf("meta mismatch: %+v", meta)
	}
	if meta.ARNames[7] != "sorted-list/count" || meta.ARName(99) != "ar99" {
		t.Fatalf("AR names mismatch: %+v", meta.ARNames)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want clean EOF after header, got %v", err)
	}
}

// TestEventRoundTrip drives every probe/observer callback once and checks
// the decoded events against the packed-field accessors.
func TestEventRoundTrip(t *testing.T) {
	m := newTestMachine(t, 4)
	var buf bytes.Buffer
	tr := attachTest(t, m, &buf, Options{
		ARNames:     map[int]string{3: "ar-three"},
		MemAccesses: true,
		DirAccesses: true,
	})

	tr.OnInvocationStart(2, 3)
	tr.OnAttemptStart(2, cpu.ModeSpeculative, 0, nil)
	tr.OnMemAccess(2, mem.Addr(0x1008), 99, false, cpu.ModeSpeculative)
	tr.OnMemAccess(2, mem.Addr(0x1010), 7, true, cpu.ModeSpeculative)
	tr.OnConflict(2, mem.LineAddr(0x40), true, 1)
	tr.OnAttemptEnd(cpu.AttemptEndInfo{
		Core: 2, ProgID: 3, Attempt: 0,
		Mode:            cpu.ModeFailedDiscovery,
		Reason:          htm.AbortMemoryConflict,
		PC:              14,
		ConflictRetries: 1,
		NextMode:        clear.RetrySCL,
		Assessed:        true,
		Assessment:      clear.Assessment{Convertible: true, Mode: clear.RetrySCL},
	})
	tr.OnAttemptStart(2, cpu.ModeSCL, 1, []mem.LineAddr{0x40, 0x41, 0x42})
	tr.OnCommit(cpu.CommitInfo{
		Core: 2, ProgID: 3, Attempt: 1, Mode: cpu.ModeSCL,
		ConflictRetries: 1, StoreLines: []mem.LineAddr{0x40, 0x42},
	})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 8 {
		t.Fatalf("want 8 events, got %d", len(evs))
	}
	if evs[0].Kind != KindInvocationStart || evs[0].ProgID() != 3 || evs[0].Core != 2 {
		t.Fatalf("invoke mismatch: %+v", evs[0])
	}
	if e := evs[1]; e.Kind != KindAttemptStart || e.Mode() != cpu.ModeSpeculative ||
		e.Attempt() != 0 || e.Retries() != 0 || e.FootprintLen() != 0 {
		t.Fatalf("attempt-start mismatch: %+v", e)
	}
	if e := evs[2]; e.Kind != KindMemAccess || e.IsWrite() || e.Value() != 99 ||
		e.MemAddr() != 0x1008 || e.Line() != mem.Addr(0x1008).Line() {
		t.Fatalf("load mismatch: %+v", e)
	}
	if e := evs[3]; !e.IsWrite() || e.Value() != 7 {
		t.Fatalf("store mismatch: %+v", e)
	}
	if e := evs[4]; e.Kind != KindConflict || !e.IsWrite() || e.Requester() != 1 ||
		e.Line() != 0x40 {
		t.Fatalf("conflict mismatch: %+v", e)
	}
	if e := evs[5]; e.Kind != KindAttemptEnd || e.Reason() != htm.AbortMemoryConflict ||
		e.Mode() != cpu.ModeFailedDiscovery || e.PC() != 14 || e.Retries() != 1 ||
		e.NextMode() != clear.RetrySCL {
		t.Fatalf("abort mismatch: %+v", e)
	} else if ok, a := e.Assessed(); !ok || a != clear.RetrySCL {
		t.Fatalf("assessment mismatch: ok=%v a=%v", ok, a)
	}
	if e := evs[6]; e.FootprintLen() != 3 || e.Retries() != 1 || e.Mode() != cpu.ModeSCL {
		t.Fatalf("CL attempt-start mismatch: %+v", e)
	}
	if e := evs[7]; e.Kind != KindCommit || e.Mode() != cpu.ModeSCL ||
		e.StoreLines() != 2 || e.Retries() != 1 {
		t.Fatalf("commit mismatch: %+v", e)
	}
}

// TestReaderRejectsGarbage checks corrupt inputs produce errors, not junk.
func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("want error for bad magic")
	}
	// Valid header followed by a corrupt record.
	m := newTestMachine(t, 1)
	var buf bytes.Buffer
	tr := attachTest(t, m, &buf, Options{})
	tr.OnInvocationStart(0, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-recordSize+8] = 0xee // kind byte -> invalid
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err == nil {
		t.Fatal("want error for corrupt kind")
	}
	// Truncated record.
	rd2, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd2.Next(); err == nil || err == io.EOF {
		t.Fatalf("want truncation error, got %v", err)
	}
}

// makeSyntheticStream builds a small two-core stream with a lock wait.
func makeSyntheticStream(t *testing.T) (Meta, []Event) {
	t.Helper()
	m := newTestMachine(t, 2)
	var buf bytes.Buffer
	tr := attachTest(t, m, &buf, Options{ARNames: map[int]string{1: "alpha", 2: "beta"}})
	// Core 0 runs alpha and locks line 5; core 1 waits for it on beta.
	tr.OnInvocationStart(0, 1)
	tr.OnAttemptStart(0, cpu.ModeNSCL, 1, []mem.LineAddr{5})
	tr.OnLock(0, 5, lockOK())
	tr.OnInvocationStart(1, 2)
	tr.OnAttemptStart(1, cpu.ModeNSCL, 1, []mem.LineAddr{5})
	tr.OnLock(1, 5, lockRetry())
	tr.OnLock(1, 5, lockRetry())
	tr.OnCommit(cpu.CommitInfo{Core: 0, ProgID: 1, Attempt: 1, Mode: cpu.ModeNSCL})
	tr.OnUnlock(0, 5)
	tr.OnLock(1, 5, lockOK())
	tr.OnCommit(cpu.CommitInfo{Core: 1, ProgID: 2, Attempt: 1, Mode: cpu.ModeNSCL})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rd.Meta(), evs
}

// TestTimelineLockWaits checks the reconstructor attributes lock waits to
// the holding core.
func TestTimelineLockWaits(t *testing.T) {
	meta, evs := makeSyntheticStream(t)
	tl := BuildTimeline(meta, evs)
	if len(tl.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d: %+v", len(tl.Spans), tl.Spans)
	}
	var beta *Span
	for i := range tl.Spans {
		if tl.Spans[i].ProgID == 2 {
			beta = &tl.Spans[i]
		}
	}
	if beta == nil || beta.Outcome != OutcomeCommit {
		t.Fatalf("beta span missing/uncommitted: %+v", tl.Spans)
	}
	if len(beta.Waits) != 1 {
		t.Fatalf("want 1 wait edge on beta, got %d", len(beta.Waits))
	}
	w := beta.Waits[0]
	if w.Line != 5 || w.Holder != 0 || !w.Acquired {
		t.Fatalf("wait edge mismatch: %+v", w)
	}
	per := tl.PerAR()
	if len(per) != 2 || per[0].Name != "alpha" || per[1].Name != "beta" {
		t.Fatalf("per-AR mismatch: %+v", per)
	}
	if per[1].LockWaitTicks == 0 && w.End > w.Start {
		t.Fatalf("lock wait not aggregated: %+v", per[1])
	}
}

// TestFilterEvents checks core/AR/kind/window filters, including per-core
// AR attribution of non-AR events.
func TestFilterEvents(t *testing.T) {
	meta, evs := makeSyntheticStream(t)
	f := NewFilter()
	f.Core = 1
	got := FilterEvents(evs, meta.Cores, f)
	for _, e := range got {
		if e.Core != 1 {
			t.Fatalf("core filter leak: %+v", e)
		}
	}
	// AR filter: the lock events of core 1 belong to beta.
	f = NewFilter()
	f.ProgID = 2
	got = FilterEvents(evs, meta.Cores, f)
	locks := 0
	for _, e := range got {
		if e.Core != 1 {
			t.Fatalf("beta filter returned a core-0 event: %+v", e)
		}
		if e.Kind == KindLock {
			locks++
		}
	}
	if locks != 3 {
		t.Fatalf("beta lock events: want 3, got %d", locks)
	}
	// Kind filter.
	f = NewFilter()
	f.Kinds = map[Kind]bool{KindCommit: true}
	got = FilterEvents(evs, meta.Cores, f)
	if len(got) != 2 {
		t.Fatalf("commit filter: want 2, got %d", len(got))
	}
}

// TestPerfettoSchema checks the exporter's JSON parses and carries the
// required trace-event fields.
func TestPerfettoSchema(t *testing.T) {
	meta, evs := makeSyntheticStream(t)
	tl := BuildTimeline(meta, evs)
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tl, SampleIntervals(meta, evs, 1)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	phases := map[string]int{}
	for i, te := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := te[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, te)
			}
		}
		phases[te["ph"].(string)]++
	}
	if phases["M"] < 3 || phases["X"] < 2 || phases["C"] == 0 {
		t.Fatalf("unexpected phase mix: %v", phases)
	}
}

// TestExportCSV checks both CSV exporters emit a header plus one row per
// span/event.
func TestExportCSV(t *testing.T) {
	meta, evs := makeSyntheticStream(t)
	tl := BuildTimeline(meta, evs)
	var buf bytes.Buffer
	if err := WriteSpanCSV(&buf, tl); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 1+len(tl.Spans) {
		t.Fatalf("span CSV lines: want %d, got %d", 1+len(tl.Spans), lines)
	}
	buf.Reset()
	if err := WriteEventCSV(&buf, meta, evs); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 1+len(evs) {
		t.Fatalf("event CSV lines: want %d, got %d", 1+len(evs), lines)
	}
}

// TestWriteText renders the synthetic stream and spot-checks the classic
// line format.
func TestWriteText(t *testing.T) {
	meta, evs := makeSyntheticStream(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, meta, evs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"core  0", "core  1", "lock L0x5 ok", "lock L0x5 retry",
		"begin ns-cl", "commit ns-cl", "invoke prog=alpha",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestSampleIntervals checks counter aggregation across interval
// boundaries.
func TestSampleIntervals(t *testing.T) {
	meta, evs := makeSyntheticStream(t)
	samples := SampleIntervals(meta, evs, 1)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	var commits, acquires, retries int
	for _, s := range samples {
		commits += s.Commits
		acquires += s.LockAcquires
		retries += s.LockRetries
	}
	if commits != 2 || acquires != 2 || retries != 2 {
		t.Fatalf("sample totals mismatch: commits=%d acquires=%d retries=%d", commits, acquires, retries)
	}
	var buf bytes.Buffer
	if err := WriteIntervalCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 1+len(samples) {
		t.Fatalf("interval CSV lines: want %d, got %d", 1+len(samples), lines)
	}
}

// TestKindStringRoundTrip checks KindFromString inverts String for every
// kind.
func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("round trip failed for %v", k)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatal("bogus kind resolved")
	}
}

// TestTracerEmitAllocs pins the tracer's hot-path allocation contract:
// steady-state emission into the preallocated batch buffer (flushing to a
// non-allocating writer) performs zero heap allocations per event — the
// only allocation cost of tracing is amortised to at most one per flushed
// batch inside the destination writer.
func TestTracerEmitAllocs(t *testing.T) {
	m := newTestMachine(t, 2)
	tr := attachTest(t, m, io.Discard, Options{MemAccesses: true, DirAccesses: true})
	info := cpu.CommitInfo{Core: 0, ProgID: 1, Attempt: 0, Mode: cpu.ModeSpeculative}
	per := testing.AllocsPerRun(5000, func() {
		tr.OnLock(0, 5, lockOK())
		tr.OnUnlock(0, 5)
		tr.OnMemAccess(0, 0x40, 1, true, cpu.ModeSpeculative)
		tr.OnCommit(info)
	})
	if per > 0 {
		t.Fatalf("tracer emit allocates %.2f objects per 4-event group; want 0", per)
	}
}

// BenchmarkTracerEmit measures the per-event cost of the binary encoder
// (the overhead every traced hook site pays).
func BenchmarkTracerEmit(b *testing.B) {
	m := newTestMachine(b, 2)
	tr, err := Attach(m, io.Discard, Options{MemAccesses: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.OnMemAccess(0, mem.Addr(i), uint64(i), i&1 == 0, cpu.ModeSpeculative)
	}
}

// TestLivable checks the live collector counts and snapshots.
func TestLiveCounters(t *testing.T) {
	l := NewLive()
	l.RunStarted()
	l.OnInvocationStart(0, 1)
	l.OnAttemptStart(0, cpu.ModeSpeculative, 0, nil)
	l.OnAttemptEnd(cpu.AttemptEndInfo{Core: 0, Reason: htm.AbortMemoryConflict})
	l.OnAttemptStart(0, cpu.ModeSCL, 1, nil)
	l.OnCommit(cpu.CommitInfo{Core: 0, Mode: cpu.ModeSCL})
	l.OnConflict(0, 5, true, 1)
	l.OnMemAccess(0, 0x40, 1, false, cpu.ModeSpeculative)
	l.RunFinished()
	s := l.Snapshot()
	if s.Invocations != 1 || s.Attempts != 2 || s.Commits != 1 || s.Aborts != 1 ||
		s.Conflicts != 1 || s.MemOps != 1 || s.RunsFinished != 1 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	if s.CommitsBy["S-CL"] != 1 || s.AbortsBy["memory-conflict"] != 1 {
		t.Fatalf("breakdown mismatch: %+v", s)
	}
}
