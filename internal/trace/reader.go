package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Meta is the decoded file header of a trace stream.
type Meta struct {
	Version     uint16
	Cores       int
	Seed        uint64
	Benchmark   string
	Config      string
	ARNames     map[int]string
	MemAccesses bool
	DirAccesses bool
}

// ARName returns the name of AR progID, or "ar<id>" when the header does
// not carry one.
func (m Meta) ARName(progID int) string {
	if n, ok := m.ARNames[progID]; ok {
		return n
	}
	return fmt.Sprintf("ar%d", progID)
}

// Reader decodes a binary trace stream produced by Tracer.
type Reader struct {
	r    *bufio.Reader
	meta Meta
}

// NewReader reads and validates the header of r and returns a Reader
// positioned at the first event record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	rd := &Reader{r: br}
	if err := rd.readHeader(); err != nil {
		return nil, err
	}
	return rd, nil
}

func (rd *Reader) readHeader() error {
	var fixed [24]byte
	if _, err := io.ReadFull(rd.r, fixed[:]); err != nil {
		return fmt.Errorf("trace: short header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(fixed[0:]); got != Magic {
		return fmt.Errorf("trace: bad magic %#x (not a clear trace file)", got)
	}
	rd.meta.Version = binary.LittleEndian.Uint16(fixed[4:])
	if rd.meta.Version != Version {
		return fmt.Errorf("trace: unsupported version %d (reader supports %d)", rd.meta.Version, Version)
	}
	flags := binary.LittleEndian.Uint16(fixed[6:])
	rd.meta.MemAccesses = flags&flagMemAccesses != 0
	rd.meta.DirAccesses = flags&flagDirAccesses != 0
	rd.meta.Cores = int(binary.LittleEndian.Uint32(fixed[8:]))
	rd.meta.Seed = binary.LittleEndian.Uint64(fixed[16:])
	var err error
	if rd.meta.Benchmark, err = rd.readString(); err != nil {
		return err
	}
	if rd.meta.Config, err = rd.readString(); err != nil {
		return err
	}
	var cnt [2]byte
	if _, err := io.ReadFull(rd.r, cnt[:]); err != nil {
		return fmt.Errorf("trace: short header: %w", err)
	}
	n := int(binary.LittleEndian.Uint16(cnt[:]))
	rd.meta.ARNames = make(map[int]string, n)
	for i := 0; i < n; i++ {
		var idb [4]byte
		if _, err := io.ReadFull(rd.r, idb[:]); err != nil {
			return fmt.Errorf("trace: short header: %w", err)
		}
		name, err := rd.readString()
		if err != nil {
			return err
		}
		rd.meta.ARNames[int(binary.LittleEndian.Uint32(idb[:]))] = name
	}
	return nil
}

func (rd *Reader) readString() (string, error) {
	var lb [2]byte
	if _, err := io.ReadFull(rd.r, lb[:]); err != nil {
		return "", fmt.Errorf("trace: short header: %w", err)
	}
	n := int(binary.LittleEndian.Uint16(lb[:]))
	b := make([]byte, n)
	if _, err := io.ReadFull(rd.r, b); err != nil {
		return "", fmt.Errorf("trace: short header: %w", err)
	}
	return string(b), nil
}

// Meta returns the decoded header.
func (rd *Reader) Meta() Meta { return rd.meta }

// Next decodes the next event record. It returns io.EOF at a clean end of
// stream and a descriptive error for a truncated or corrupt record.
func (rd *Reader) Next() (Event, error) {
	var rec [recordSize]byte
	_, err := io.ReadFull(rd.r, rec[:])
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	e := Event{
		Tick: sim.Tick(binary.LittleEndian.Uint64(rec[0:])),
		Kind: Kind(rec[8]),
		Core: rec[9],
		Arg0: rec[10],
		Arg1: rec[11],
		Arg2: binary.LittleEndian.Uint32(rec[12:]),
		Addr: binary.LittleEndian.Uint64(rec[16:]),
		Arg3: binary.LittleEndian.Uint64(rec[24:]),
	}
	if e.Kind == 0 || e.Kind >= numKinds {
		return Event{}, fmt.Errorf("trace: corrupt record: unknown kind %d", uint8(e.Kind))
	}
	return e, nil
}

// ReadAll decodes the remaining events of the stream into a slice.
func (rd *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
