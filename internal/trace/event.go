// Package trace is the structured observability layer of the simulator: a
// zero-allocation binary event tracer that records the control points of
// every atomic-region invocation (start, abort with reason and retry-mode
// decision, commit with mode), every cacheline-lock acquire/release/NACK,
// directory state transitions, and (optionally) every completed memory
// operation, through the nil-guarded cpu.Probe / coherence.Observer hook
// seams.
//
// On top of the raw stream the package provides a timeline reconstructor
// (per-core/per-AR attempt spans with lock-wait edges), exporters to
// Chrome/Perfetto trace-event JSON and compact CSV, interval metrics
// sampling, a text renderer compatible with the old clearinspect -trace
// view, and an expvar/HTTP live-telemetry collector for long runs.
//
// Determinism contract: the binary encoding contains no host-side state
// (no wall-clock timestamps, no pointers, no map iteration), so the same
// (benchmark, configuration, seed) produces byte-identical trace files.
// Transparency contract: a tracer attached to a machine never mutates
// simulation state, consults no RNG, and schedules no events — statistics
// digests are bit-identical with the tracer attached or detached.
package trace

import (
	"fmt"

	clear "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Kind discriminates the typed event records of the binary stream.
type Kind uint8

const (
	// KindInvocationStart: a core dequeued a new AR invocation.
	// Addr=progID.
	KindInvocationStart Kind = iota + 1
	// KindAttemptStart: an attempt began executing. Arg0=mode,
	// Arg2=attempt, Addr=progID, Arg3 packs conflict-retries (low 32) and
	// CL footprint length (high 32).
	KindAttemptStart
	// KindAttemptEnd: an attempt aborted, after the §4.3 retry-mode
	// decision. Arg0=mode at abort, Arg1=reason, Arg2=attempt,
	// Addr=progID, Arg3 packs the decision (see Event accessors).
	KindAttemptEnd
	// KindCommit: an attempt reached its commit point. Arg0=mode,
	// Arg2=attempt, Addr=progID, Arg3 packs conflict-retries (low 32) and
	// distinct committing store lines (high 32).
	KindCommit
	// KindMemAccess: a load or store completed. Arg0=mode, Arg1=isWrite,
	// Addr=byte address, Arg3=value loaded/stored.
	KindMemAccess
	// KindConflict: an incoming remote request conflicted with the core's
	// transactional sets (holder side). Arg0=isWrite, Arg1=requester,
	// Addr=line.
	KindConflict
	// KindLock: a cacheline-lock acquisition attempt completed.
	// Arg0=outcome (LockOK/LockRetry/LockNack), Arg1=responsible holder
	// core + 1 for Retry/Nack outcomes (0 = unknown), Addr=line.
	KindLock
	// KindUnlock: a cacheline lock was released. Addr=line.
	KindUnlock
	// KindDirAccess: a directory read/write transaction completed.
	// Arg0=isWrite, Arg1=flag bits (see DirNacked...), Addr=line.
	KindDirAccess
	// KindEvict: a core dropped a line from its sharer/owner slots.
	// Addr=line.
	KindEvict
	// KindFault: the fault injector fired. Arg0=fault kind
	// (internal/fault.Kind), Core=0xff for sim-layer faults not attributable
	// to a core, Addr=target line (0 if none), Arg3=injected extra ticks.
	KindFault

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindInvocationStart:
		return "invoke"
	case KindAttemptStart:
		return "attempt-start"
	case KindAttemptEnd:
		return "abort"
	case KindCommit:
		return "commit"
	case KindMemAccess:
		return "mem"
	case KindConflict:
		return "conflict"
	case KindLock:
		return "lock"
	case KindUnlock:
		return "unlock"
	case KindDirAccess:
		return "dir"
	case KindEvict:
		return "evict"
	case KindFault:
		return "fault"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString resolves the Kind named s (the String form); ok=false for
// unknown names. The cleartrace -kind filter uses it.
func KindFromString(s string) (Kind, bool) {
	for k := Kind(1); k < numKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Lock outcomes (KindLock Arg0).
const (
	LockOK uint8 = iota
	LockRetry
	LockNack
)

// Directory-access flag bits (KindDirAccess Arg1).
const (
	DirNacked uint8 = 1 << iota
	DirRetry
	DirLocking
	DirNonSpec
	DirFailedMode
	DirPower
)

// recordSize is the fixed on-disk size of one event record.
const recordSize = 32

// Event is one decoded trace record. The field meaning depends on Kind
// (documented at the Kind constants); the typed accessors below unpack the
// packed arguments.
type Event struct {
	Tick sim.Tick
	Kind Kind
	Core uint8
	Arg0 uint8
	Arg1 uint8
	Arg2 uint32
	Addr uint64
	Arg3 uint64
}

// Mode returns the execution mode carried by attempt/commit/mem events.
func (e Event) Mode() cpu.Mode { return cpu.Mode(e.Arg0) }

// Reason returns the abort reason of a KindAttemptEnd event.
func (e Event) Reason() htm.AbortReason { return htm.AbortReason(e.Arg1) }

// ProgID returns the AR program id of invocation/attempt/commit events.
func (e Event) ProgID() int { return int(e.Addr) }

// Attempt returns the attempt index of attempt/commit events. KindAttemptEnd
// records written since the policy interface carry the §4.3 proposal packed
// into the high bits of Arg2 (see the layout at endProposedBit); the low 16
// bits stay the attempt index, so pre-policy traces decode unchanged.
func (e Event) Attempt() int {
	if e.Kind == KindAttemptEnd && e.Arg2&endProposedBit != 0 {
		return int(e.Arg2 & endAttemptMask)
	}
	return int(e.Arg2)
}

// Line returns the cacheline of lock/unlock/dir/conflict/evict events; for
// KindMemAccess it is derived from the byte address.
func (e Event) Line() mem.LineAddr {
	if e.Kind == KindMemAccess {
		return mem.Addr(e.Addr).Line()
	}
	return mem.LineAddr(e.Addr)
}

// MemAddr returns the byte address of a KindMemAccess event.
func (e Event) MemAddr() mem.Addr { return mem.Addr(e.Addr) }

// Value returns the loaded/stored word of a KindMemAccess event.
func (e Event) Value() uint64 { return e.Arg3 }

// IsWrite reports the store/write intent of mem/conflict/dir events.
func (e Event) IsWrite() bool {
	switch e.Kind {
	case KindMemAccess:
		return e.Arg1 != 0
	case KindConflict, KindDirAccess:
		return e.Arg0 != 0
	}
	return false
}

// Requester returns the requesting core of a KindConflict event (the event's
// Core field is the conflicting holder).
func (e Event) Requester() int { return int(e.Arg1) }

// DirFlags returns the flag bits of a KindDirAccess event.
func (e Event) DirFlags() uint8 { return e.Arg1 }

// The packed Arg3 layout of KindAttemptEnd:
//
//	bits  0..7   next retry mode (§4.3 decision)
//	bit   8      discovery assessment ran
//	bits 9..15   assessed retry mode (valid when bit 8 set)
//	bits 16..31  program counter at abort (capped at 0xffff)
//	bits 32..63  conflict-counted retry total after the abort
const (
	endNextShift     = 0
	endAssessedBit   = 1 << 8
	endAssessShift   = 9
	endPCShift       = 16
	endRetriesShift  = 32
	endPCMask        = 0xffff
	endModeMask      = 0x7f
	packedLowShift   = 0  // KindAttemptStart/KindCommit low word
	packedHighShift  = 32 // KindAttemptStart/KindCommit high word
	packedWordMask   = 0xffffffff
	maxTrackedPC     = endPCMask
	maxTrackedUint32 = packedWordMask
)

// The packed Arg2 layout of KindAttemptEnd (Arg3 is full):
//
//	bits  0..15  attempt index (capped)
//	bits 16..22  §4.3 mechanism proposal the policy decided over
//	bit  23      proposal present
//
// Pre-policy traces never set bit 23 (attempt indices were far below 2^16),
// so the trace format version is unchanged and old records keep decoding.
const (
	endAttemptMask   = 0xffff
	endProposedShift = 16
	endProposedBit   = 1 << 23
)

// packAttemptEndArg2 encodes the attempt index and the mechanism proposal.
func packAttemptEndArg2(attempt int, proposed clear.RetryMode) uint32 {
	if attempt > endAttemptMask {
		attempt = endAttemptMask
	}
	return uint32(attempt) |
		uint32(uint8(proposed)&endModeMask)<<endProposedShift |
		endProposedBit
}

// ProposedMode returns the §4.3 mechanism proposal of a KindAttemptEnd
// event; ok is false for pre-policy trace records, which did not carry it.
// Proposed != NextMode marks a policy override (a serialization to
// fallback).
func (e Event) ProposedMode() (proposed clear.RetryMode, ok bool) {
	if e.Kind != KindAttemptEnd || e.Arg2&endProposedBit == 0 {
		return 0, false
	}
	return clear.RetryMode((e.Arg2 >> endProposedShift) & endModeMask), true
}

// Overridden reports whether a KindAttemptEnd event records a policy
// override: the decided next mode differs from the mechanism proposal.
func (e Event) Overridden() bool {
	p, ok := e.ProposedMode()
	return ok && p != e.NextMode()
}

// packAttemptEnd encodes the retry-mode decision of one abort.
func packAttemptEnd(next clear.RetryMode, assessed bool, assessment clear.RetryMode, pc int, retries int) uint64 {
	if pc > maxTrackedPC {
		pc = maxTrackedPC
	}
	v := uint64(uint8(next)&endModeMask)<<endNextShift |
		uint64(pc)<<endPCShift |
		uint64(uint32(retries))<<endRetriesShift
	if assessed {
		v |= endAssessedBit | uint64(uint8(assessment)&endModeMask)<<endAssessShift
	}
	return v
}

// NextMode returns the §4.3 decision of a KindAttemptEnd event.
func (e Event) NextMode() clear.RetryMode {
	return clear.RetryMode((e.Arg3 >> endNextShift) & endModeMask)
}

// Assessed reports whether the abort ran the discovery assessment; the
// assessed mode is the second return.
func (e Event) Assessed() (bool, clear.RetryMode) {
	if e.Arg3&endAssessedBit == 0 {
		return false, 0
	}
	return true, clear.RetryMode((e.Arg3 >> endAssessShift) & endModeMask)
}

// PC returns the abort program counter of a KindAttemptEnd event.
func (e Event) PC() int { return int((e.Arg3 >> endPCShift) & endPCMask) }

// Retries returns the conflict-retry count of attempt-start, attempt-end,
// and commit events.
func (e Event) Retries() int {
	switch e.Kind {
	case KindAttemptEnd:
		return int(uint32(e.Arg3 >> endRetriesShift))
	case KindAttemptStart, KindCommit:
		return int(uint32(e.Arg3 >> packedLowShift & packedWordMask))
	}
	return 0
}

// FootprintLen returns the CL footprint length of a KindAttemptStart event.
func (e Event) FootprintLen() int {
	return int(uint32(e.Arg3 >> packedHighShift))
}

// StoreLines returns the distinct committing store-line count of a
// KindCommit event.
func (e Event) StoreLines() int {
	return int(uint32(e.Arg3 >> packedHighShift))
}

// packCounts packs a (low, high) uint32 pair for attempt-start/commit Arg3.
func packCounts(low, high int) uint64 {
	if low > maxTrackedUint32 {
		low = maxTrackedUint32
	}
	if high > maxTrackedUint32 {
		high = maxTrackedUint32
	}
	return uint64(uint32(low)) | uint64(uint32(high))<<packedHighShift
}

// FaultKind returns the injected fault class of a KindFault event.
func (e Event) FaultKind() fault.Kind { return fault.Kind(e.Arg0) }

// FaultTicks returns the injected extra latency of a KindFault event (zero
// for refusal-type faults).
func (e Event) FaultTicks() sim.Tick { return sim.Tick(e.Arg3) }

// LockOutcome returns the outcome of a KindLock event.
func (e Event) LockOutcome() uint8 { return e.Arg0 }

// LockHolder returns the core reported as responsible for a retried or
// nacked KindLock event, or -1 when unattributed (success outcomes,
// injected denials, and traces recorded before holder attribution).
func (e Event) LockHolder() int {
	if e.Kind != KindLock || e.Arg1 == 0 {
		return -1
	}
	return int(e.Arg1) - 1
}

// LockOutcomeString names a KindLock outcome.
func LockOutcomeString(o uint8) string {
	switch o {
	case LockOK:
		return "ok"
	case LockRetry:
		return "retry"
	case LockNack:
		return "nack"
	}
	return "?"
}
