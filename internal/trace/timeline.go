package trace

import (
	"sort"

	clear "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Outcome classifies how an attempt span ended.
type Outcome uint8

const (
	// OutcomeOpen: the trace ended while the attempt was still running.
	OutcomeOpen Outcome = iota
	// OutcomeAbort: the attempt aborted (Span.Reason/NextMode valid).
	OutcomeAbort
	// OutcomeCommit: the attempt committed (Span.EndMode is the commit mode).
	OutcomeCommit
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOpen:
		return "open"
	case OutcomeAbort:
		return "abort"
	case OutcomeCommit:
		return "commit"
	}
	return "?"
}

// Wait is one cacheline-lock wait edge inside a span: the core first failed
// to acquire line at Start (LockRetry) and either acquired it at End
// (Acquired=true) or gave up/aborted (Acquired=false, End = last retry).
// Holder is the core that held the lock at Start (-1 if unknown, e.g. the
// lock was taken before the filtered window).
type Wait struct {
	Line     mem.LineAddr
	Holder   int
	Start    sim.Tick
	End      sim.Tick
	Acquired bool
}

// Span is one reconstructed attempt of one AR invocation on one core.
type Span struct {
	Core    int
	ProgID  int
	Attempt int
	Start   sim.Tick
	End     sim.Tick // == Start for zero-length; valid unless OutcomeOpen
	// StartMode is the mode the attempt began in; EndMode the mode at its
	// end (speculative attempts that took a conflict end in
	// failed-discovery; commit events carry the committing mode).
	StartMode cpu.Mode
	EndMode   cpu.Mode
	Outcome   Outcome
	// Reason and NextMode are valid for OutcomeAbort.
	Reason   htm.AbortReason
	NextMode clear.RetryMode
	// Proposed is the §4.3 mechanism proposal behind NextMode; Overridden
	// marks a policy override (always a serialization to fallback). Both
	// are zero for pre-policy traces, which did not record the proposal.
	Proposed   clear.RetryMode
	Overridden bool
	// Retries is the conflict-counted retry total at the span's end event.
	Retries int
	// Footprint is the CL footprint length announced at attempt start
	// (CL modes only).
	Footprint int
	// StoreLines is the distinct committing store-line count
	// (OutcomeCommit only).
	StoreLines int
	// Waits are the cacheline-lock wait edges observed inside the span.
	Waits []Wait
}

// Duration returns the span length in ticks (0 for open spans).
func (s Span) Duration() sim.Tick {
	if s.Outcome == OutcomeOpen || s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Timeline is the reconstructed per-core attempt history of a trace.
type Timeline struct {
	Meta  Meta
	Spans []Span // stream order (by span end / trace end)
	// LastTick is the largest tick observed in the stream.
	LastTick sim.Tick
}

// openSpan tracks one in-progress attempt during reconstruction.
type openSpan struct {
	span    Span
	active  bool
	pending map[mem.LineAddr]int // line -> index into span.Waits of open wait
}

// BuildTimeline folds a stream of events (in stream order) into per-core
// attempt spans with lock-wait edges. cores must match the stream's core
// count (use Meta.Cores).
func BuildTimeline(meta Meta, evs []Event) *Timeline {
	cores := meta.Cores
	tl := &Timeline{Meta: meta}
	open := make([]openSpan, cores)
	lockHolder := make(map[mem.LineAddr]int) // line -> core holding the cacheline lock

	closeWaits := func(o *openSpan, tick sim.Tick, line mem.LineAddr, acquired bool) {
		if o.pending == nil {
			return
		}
		if i, ok := o.pending[line]; ok {
			o.span.Waits[i].End = tick
			o.span.Waits[i].Acquired = acquired
			delete(o.pending, line)
		}
	}

	abandonWaits := func(o *openSpan, tick sim.Tick) {
		for line, i := range o.pending {
			o.span.Waits[i].End = tick
			delete(o.pending, line)
		}
	}

	for _, e := range evs {
		if e.Tick > tl.LastTick {
			tl.LastTick = e.Tick
		}
		c := int(e.Core)
		if c >= cores {
			continue
		}
		o := &open[c]
		switch e.Kind {
		case KindAttemptStart:
			if o.active {
				// Stream was filtered past the previous end; close as open.
				tl.Spans = append(tl.Spans, o.span)
			}
			*o = openSpan{
				active: true,
				span: Span{
					Core:      c,
					ProgID:    e.ProgID(),
					Attempt:   e.Attempt(),
					Start:     e.Tick,
					StartMode: e.Mode(),
					EndMode:   e.Mode(),
					Outcome:   OutcomeOpen,
					Retries:   e.Retries(),
					Footprint: e.FootprintLen(),
				},
			}
		case KindAttemptEnd:
			if !o.active {
				continue
			}
			abandonWaits(o, e.Tick)
			o.span.End = e.Tick
			o.span.EndMode = e.Mode()
			o.span.Outcome = OutcomeAbort
			o.span.Reason = e.Reason()
			o.span.NextMode = e.NextMode()
			if p, ok := e.ProposedMode(); ok {
				o.span.Proposed = p
				o.span.Overridden = p != e.NextMode()
			}
			o.span.Retries = e.Retries()
			tl.Spans = append(tl.Spans, o.span)
			o.active = false
		case KindCommit:
			if !o.active {
				continue
			}
			abandonWaits(o, e.Tick)
			o.span.End = e.Tick
			o.span.EndMode = e.Mode()
			o.span.Outcome = OutcomeCommit
			o.span.Retries = e.Retries()
			o.span.StoreLines = e.StoreLines()
			tl.Spans = append(tl.Spans, o.span)
			o.active = false
		case KindLock:
			line := e.Line()
			switch e.LockOutcome() {
			case LockOK:
				if o.active {
					closeWaits(o, e.Tick, line, true)
				}
				lockHolder[line] = c
			case LockRetry:
				if !o.active {
					break
				}
				if o.pending == nil {
					o.pending = make(map[mem.LineAddr]int)
				}
				if _, waiting := o.pending[line]; !waiting {
					// Prefer the event-carried holder (exact, from the
					// directory); fall back to the reconstructed map for
					// older traces.
					holder := e.LockHolder()
					if holder < 0 {
						if h, ok := lockHolder[line]; ok {
							holder = h
						}
					}
					o.pending[line] = len(o.span.Waits)
					o.span.Waits = append(o.span.Waits, Wait{
						Line:   line,
						Holder: holder,
						Start:  e.Tick,
						End:    e.Tick,
					})
				} else {
					// Extend the open wait to the latest retry tick.
					o.span.Waits[o.pending[line]].End = e.Tick
				}
			case LockNack:
				if o.active {
					closeWaits(o, e.Tick, line, false)
				}
			}
		case KindUnlock:
			line := e.Line()
			if lockHolder[line] == c {
				delete(lockHolder, line)
			}
		}
	}
	// Flush still-open spans (truncated trace or filtered window).
	for c := range open {
		if open[c].active {
			abandonWaits(&open[c], tl.LastTick)
			tl.Spans = append(tl.Spans, open[c].span)
		}
	}
	return tl
}

// CommitsByMode tallies committed spans per stats.CommitMode, the exact
// shape of stats.Run.CommitsByMode — used to cross-check the trace stream
// against the simulator's own aggregates.
func (tl *Timeline) CommitsByMode() map[stats.CommitMode]int {
	out := make(map[stats.CommitMode]int)
	for _, s := range tl.Spans {
		if s.Outcome != OutcomeCommit {
			continue
		}
		if m, ok := commitModeOf(s.EndMode); ok {
			out[m]++
		}
	}
	return out
}

// commitModeOf maps an execution mode at commit to the stats commit mode.
func commitModeOf(m cpu.Mode) (stats.CommitMode, bool) {
	switch m {
	case cpu.ModeSpeculative, cpu.ModeFailedDiscovery:
		return stats.CommitSpeculative, true
	case cpu.ModeSCL:
		return stats.CommitSCL, true
	case cpu.ModeNSCL:
		return stats.CommitNSCL, true
	case cpu.ModeFallback:
		return stats.CommitFallback, true
	}
	return 0, false
}

// AbortsByReason tallies aborted spans per abort reason.
func (tl *Timeline) AbortsByReason() map[htm.AbortReason]int {
	out := make(map[htm.AbortReason]int)
	for _, s := range tl.Spans {
		if s.Outcome == OutcomeAbort {
			out[s.Reason]++
		}
	}
	return out
}

// ARSummary aggregates the spans of one AR program.
type ARSummary struct {
	ProgID   int
	Name     string
	Commits  int
	Aborts   int
	Attempts int
	// TotalTicks is the summed duration of closed spans.
	TotalTicks sim.Tick
	// LockWaitTicks is the summed duration of lock-wait edges.
	LockWaitTicks sim.Tick
}

// PerAR aggregates the timeline per AR program id, sorted by id.
func (tl *Timeline) PerAR() []ARSummary {
	byID := make(map[int]*ARSummary)
	var order []int
	for _, s := range tl.Spans {
		a, ok := byID[s.ProgID]
		if !ok {
			a = &ARSummary{ProgID: s.ProgID, Name: tl.Meta.ARName(s.ProgID)}
			byID[s.ProgID] = a
			order = append(order, s.ProgID)
		}
		a.Attempts++
		switch s.Outcome {
		case OutcomeCommit:
			a.Commits++
		case OutcomeAbort:
			a.Aborts++
		}
		a.TotalTicks += s.Duration()
		for _, w := range s.Waits {
			if w.End > w.Start {
				a.LockWaitTicks += w.End - w.Start
			}
		}
	}
	sort.Ints(order)
	out := make([]ARSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}
