package trace

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteSpanCSV renders the timeline's attempt spans as compact CSV on w:
// one row per span, lock-wait totals folded into wait_ticks/wait_edges.
func WriteSpanCSV(w io.Writer, tl *Timeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"core", "ar", "prog_id", "attempt", "start", "end",
		"start_mode", "end_mode", "outcome", "reason", "next_mode",
		"retries", "footprint", "store_lines", "wait_edges", "wait_ticks",
	}); err != nil {
		return err
	}
	for _, s := range tl.Spans {
		reason, next := "", ""
		if s.Outcome == OutcomeAbort {
			reason = s.Reason.String()
			next = s.NextMode.String()
		}
		var waitTicks uint64
		for _, wt := range s.Waits {
			if wt.End > wt.Start {
				waitTicks += uint64(wt.End - wt.Start)
			}
		}
		rec := []string{
			fmt.Sprint(s.Core),
			tl.Meta.ARName(s.ProgID),
			fmt.Sprint(s.ProgID),
			fmt.Sprint(s.Attempt),
			fmt.Sprint(uint64(s.Start)),
			fmt.Sprint(uint64(s.End)),
			s.StartMode.String(),
			s.EndMode.String(),
			s.Outcome.String(),
			reason,
			next,
			fmt.Sprint(s.Retries),
			fmt.Sprint(s.Footprint),
			fmt.Sprint(s.StoreLines),
			fmt.Sprint(len(s.Waits)),
			fmt.Sprint(waitTicks),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEventCSV renders raw events as CSV on w (one row per record).
func WriteEventCSV(w io.Writer, meta Meta, evs []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"tick", "core", "kind", "detail", "addr",
	}); err != nil {
		return err
	}
	for _, e := range evs {
		rec := []string{
			fmt.Sprint(uint64(e.Tick)),
			fmt.Sprint(e.Core),
			e.Kind.String(),
			eventDetail(meta, e),
			fmt.Sprintf("%#x", e.Addr),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// eventDetail renders the kind-specific fields of e as a compact
// key=value string (shared by the CSV exporter and the dump command).
func eventDetail(meta Meta, e Event) string {
	switch e.Kind {
	case KindInvocationStart:
		return fmt.Sprintf("ar=%s", meta.ARName(e.ProgID()))
	case KindAttemptStart:
		s := fmt.Sprintf("ar=%s attempt=%d mode=%s retries=%d",
			meta.ARName(e.ProgID()), e.Attempt(), e.Mode(), e.Retries())
		if fp := e.FootprintLen(); fp > 0 {
			s += fmt.Sprintf(" footprint=%d", fp)
		}
		return s
	case KindAttemptEnd:
		s := fmt.Sprintf("ar=%s attempt=%d mode=%s reason=%s next=%s pc=%d retries=%d",
			meta.ARName(e.ProgID()), e.Attempt(), e.Mode(), e.Reason(),
			e.NextMode(), e.PC(), e.Retries())
		if ok, a := e.Assessed(); ok {
			s += fmt.Sprintf(" assessed=%s", a)
		}
		if p, ok := e.ProposedMode(); ok && p != e.NextMode() {
			s += fmt.Sprintf(" proposed=%s", p)
		}
		return s
	case KindCommit:
		return fmt.Sprintf("ar=%s attempt=%d mode=%s retries=%d store-lines=%d",
			meta.ARName(e.ProgID()), e.Attempt(), e.Mode(), e.Retries(), e.StoreLines())
	case KindMemAccess:
		op := "load"
		if e.IsWrite() {
			op = "store"
		}
		return fmt.Sprintf("%s mode=%s value=%d", op, e.Mode(), e.Value())
	case KindConflict:
		op := "read"
		if e.IsWrite() {
			op = "write"
		}
		return fmt.Sprintf("%s requester=%d", op, e.Requester())
	case KindLock:
		return fmt.Sprintf("outcome=%s", LockOutcomeString(e.LockOutcome()))
	case KindUnlock, KindEvict:
		return ""
	case KindDirAccess:
		op := "read"
		if e.IsWrite() {
			op = "write"
		}
		return fmt.Sprintf("%s flags=%s", op, dirFlagString(e.DirFlags()))
	case KindFault:
		return fmt.Sprintf("fault=%s ticks=%d", e.FaultKind(), e.FaultTicks())
	}
	return ""
}

// dirFlagString names the flag bits of a KindDirAccess event.
func dirFlagString(f uint8) string {
	if f == 0 {
		return "-"
	}
	s := ""
	add := func(bit uint8, name string) {
		if f&bit != 0 {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(DirNacked, "nacked")
	add(DirRetry, "retry")
	add(DirLocking, "locking")
	add(DirNonSpec, "nonspec")
	add(DirFailedMode, "failed-mode")
	add(DirPower, "power")
	return s
}
