package trace

import (
	"repro/internal/htm"
	"repro/internal/sim"
)

// Filter selects a subset of a trace stream. Zero-valued fields match
// everything; set fields are ANDed together.
type Filter struct {
	// Core restricts to one core (-1 = all).
	Core int
	// ProgID restricts to one AR program id (-1 = all). AR-scoped filtering
	// keeps per-core context: lock/unlock/dir/mem events are attributed to
	// the AR the emitting core is currently executing.
	ProgID int
	// Reason restricts abort events to one reason (htm.AbortNone = all);
	// non-abort events pass through unless KindsSet excludes them.
	Reason htm.AbortReason
	// From/To restrict to the half-open tick interval [From, To); To=0
	// means unbounded.
	From, To sim.Tick
	// Kinds, when non-nil, restricts to the listed event kinds.
	Kinds map[Kind]bool
}

// NewFilter returns a Filter that matches every event.
func NewFilter() Filter {
	return Filter{Core: -1, ProgID: -1, Reason: htm.AbortNone}
}

// filterState tracks per-core AR context while scanning a stream in order.
type filterState struct {
	prog []int32
}

func newFilterState(cores int) *filterState {
	s := &filterState{prog: make([]int32, cores)}
	for i := range s.prog {
		s.prog[i] = -1
	}
	return s
}

// observe updates the per-core AR context from e; call it for every event
// in stream order, before Match.
func (s *filterState) observe(e Event) {
	if int(e.Core) >= len(s.prog) {
		return
	}
	switch e.Kind {
	case KindInvocationStart:
		s.prog[e.Core] = int32(e.ProgID())
	case KindCommit:
		// The commit event itself still belongs to the AR; clear after.
	}
}

func (s *filterState) after(e Event) {
	if int(e.Core) >= len(s.prog) {
		return
	}
	if e.Kind == KindCommit {
		s.prog[e.Core] = -1
	}
}

func (s *filterState) progOf(e Event) int {
	switch e.Kind {
	case KindInvocationStart, KindAttemptStart, KindAttemptEnd, KindCommit:
		return e.ProgID()
	}
	if int(e.Core) < len(s.prog) {
		return int(s.prog[e.Core])
	}
	return -1
}

// match reports whether e passes f given the scan state s.
func (f Filter) match(e Event, s *filterState) bool {
	if f.Core >= 0 && int(e.Core) != f.Core {
		return false
	}
	if f.From != 0 && e.Tick < f.From {
		return false
	}
	if f.To != 0 && e.Tick >= f.To {
		return false
	}
	if f.Kinds != nil && !f.Kinds[e.Kind] {
		return false
	}
	if f.ProgID >= 0 && s.progOf(e) != f.ProgID {
		return false
	}
	if f.Reason != htm.AbortNone && e.Kind == KindAttemptEnd && e.Reason() != f.Reason {
		return false
	}
	return true
}

// FilterEvents returns the events of evs (in stream order) that pass f.
// cores sizes the per-core AR-context tracking (use Meta.Cores).
func FilterEvents(evs []Event, cores int, f Filter) []Event {
	s := newFilterState(cores)
	var out []Event
	for _, e := range evs {
		s.observe(e)
		if f.match(e, s) {
			out = append(out, e)
		}
		s.after(e)
	}
	return out
}
