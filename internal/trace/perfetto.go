package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome/Perfetto trace-event JSON. The exporter emits the JSON Object
// Format ({"traceEvents": [...]}) with:
//
//   - "M" metadata events naming the process (the run) and one thread per
//     core;
//   - one "X" complete event per closed attempt span (tid = core), with
//     the AR name as event name and mode/outcome details in args;
//   - nested "X" events for lock-wait edges inside a span;
//   - "C" counter events from interval metrics samples (commits, aborts,
//     locked lines) when samples are provided.
//
// Ticks map 1:1 to microseconds (ts/dur fields), so one simulated tick
// renders as 1us in the Perfetto UI.

// perfettoEvent is one trace-event record. Fields follow the Chrome
// trace-event format spec; omitempty keeps metadata records minimal.
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WritePerfetto renders tl (plus optional interval samples) as Chrome/
// Perfetto trace-event JSON on w.
func WritePerfetto(w io.Writer, tl *Timeline, samples []IntervalSample) error {
	f := perfettoFile{DisplayTimeUnit: "ms"}
	procName := fmt.Sprintf("clearsim %s/%s seed=%d", tl.Meta.Benchmark, tl.Meta.Config, tl.Meta.Seed)
	f.TraceEvents = append(f.TraceEvents, perfettoEvent{
		Name: "process_name", Phase: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": procName},
	})
	for c := 0; c < tl.Meta.Cores; c++ {
		f.TraceEvents = append(f.TraceEvents, perfettoEvent{
			Name: "thread_name", Phase: "M", Pid: 0, Tid: c,
			Args: map[string]any{"name": fmt.Sprintf("core %d", c)},
		})
	}
	for _, s := range tl.Spans {
		end := s.End
		if s.Outcome == OutcomeOpen {
			end = tl.LastTick
		}
		dur := uint64(0)
		if end > s.Start {
			dur = uint64(end - s.Start)
		}
		args := map[string]any{
			"ar":      tl.Meta.ARName(s.ProgID),
			"attempt": s.Attempt,
			"mode":    s.StartMode.String(),
			"outcome": s.Outcome.String(),
			"retries": s.Retries,
		}
		if s.EndMode != s.StartMode {
			args["end_mode"] = s.EndMode.String()
		}
		if s.Outcome == OutcomeAbort {
			args["reason"] = s.Reason.String()
			args["next_mode"] = s.NextMode.String()
		}
		if s.Outcome == OutcomeCommit && s.StoreLines > 0 {
			args["store_lines"] = s.StoreLines
		}
		if s.Footprint > 0 {
			args["footprint"] = s.Footprint
		}
		f.TraceEvents = append(f.TraceEvents, perfettoEvent{
			Name:  fmt.Sprintf("%s [%s]", tl.Meta.ARName(s.ProgID), s.Outcome),
			Phase: "X",
			Ts:    uint64(s.Start),
			Dur:   dur,
			Pid:   0,
			Tid:   s.Core,
			Cat:   s.StartMode.String(),
			Args:  args,
		})
		for _, wt := range s.Waits {
			wdur := uint64(0)
			if wt.End > wt.Start {
				wdur = uint64(wt.End - wt.Start)
			}
			wargs := map[string]any{
				"line":     fmt.Sprintf("%#x", uint64(wt.Line)),
				"acquired": wt.Acquired,
			}
			if wt.Holder >= 0 {
				wargs["holder"] = wt.Holder
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name:  fmt.Sprintf("lock-wait %#x", uint64(wt.Line)),
				Phase: "X",
				Ts:    uint64(wt.Start),
				Dur:   wdur,
				Pid:   0,
				Tid:   s.Core,
				Cat:   "lock-wait",
				Args:  wargs,
			})
		}
	}
	for _, s := range samples {
		f.TraceEvents = append(f.TraceEvents,
			perfettoEvent{Name: "commits", Phase: "C", Ts: uint64(s.Start), Pid: 0,
				Args: map[string]any{"commits": s.Commits}},
			perfettoEvent{Name: "aborts", Phase: "C", Ts: uint64(s.Start), Pid: 0,
				Args: map[string]any{"aborts": s.Aborts}},
			perfettoEvent{Name: "locked-lines", Phase: "C", Ts: uint64(s.Start), Pid: 0,
				Args: map[string]any{"locked": s.LockedLines}},
			perfettoEvent{Name: "occupancy", Phase: "C", Ts: uint64(s.Start), Pid: 0,
				Args: map[string]any{"active-cores": s.ActiveCores}},
		)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
