package trace

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ev builders for hand-ticked synthetic streams (the tracer stamps events
// with engine time, which never advances in unit tests).
func pInvoke(tick sim.Tick, core int, prog int) Event {
	return Event{Tick: tick, Kind: KindInvocationStart, Core: uint8(core), Addr: uint64(prog)}
}
func pAttempt(tick sim.Tick, core int, prog int, mode cpu.Mode) Event {
	return Event{Tick: tick, Kind: KindAttemptStart, Core: uint8(core), Arg0: uint8(mode), Addr: uint64(prog)}
}
func pAbort(tick sim.Tick, core int, prog int, mode cpu.Mode, reason htm.AbortReason) Event {
	return Event{Tick: tick, Kind: KindAttemptEnd, Core: uint8(core), Arg0: uint8(mode), Arg1: uint8(reason), Addr: uint64(prog)}
}
func pCommit(tick sim.Tick, core int, prog int, mode cpu.Mode) Event {
	return Event{Tick: tick, Kind: KindCommit, Core: uint8(core), Arg0: uint8(mode), Addr: uint64(prog)}
}
func pConflict(tick sim.Tick, holder int, requester int, line mem.LineAddr) Event {
	return Event{Tick: tick, Kind: KindConflict, Core: uint8(holder), Arg1: uint8(requester), Addr: uint64(line)}
}
func pLock(tick sim.Tick, core int, line mem.LineAddr, outcome uint8, holder int) Event {
	var h uint8
	if holder >= 0 {
		h = uint8(holder + 1)
	}
	return Event{Tick: tick, Kind: KindLock, Core: uint8(core), Arg0: outcome, Arg1: h, Addr: uint64(line)}
}

func findEdge(t *testing.T, p *Profile, aborter, victim int, via string) AbortEdge {
	t.Helper()
	for _, e := range p.Edges {
		if e.Aborter == aborter && e.Victim == victim && e.Via == via {
			return e
		}
	}
	t.Fatalf("no edge %d->%d via %q in %+v", aborter, victim, via, p.Edges)
	return AbortEdge{}
}

// TestProfileAttribution drives every attribution mechanism once through a
// hand-built four-core stream and checks the edges, the ticks-lost
// accounting, the line profile, and the retry-to-commit latency.
func TestProfileAttribution(t *testing.T) {
	meta := Meta{Cores: 4, ARNames: map[int]string{1: "alpha", 2: "beta"}}
	evs := []Event{
		// Core 0: conflict-attributed abort (requester core 1), then a
		// committing retry: retry-to-commit latency = 70-30 = 40.
		pInvoke(0, 0, 1),
		pAttempt(10, 0, 1, cpu.ModeSpeculative),
		pConflict(20, 0, 1, 0x40),
		pAbort(30, 0, 1, cpu.ModeSpeculative, htm.AbortMemoryConflict),
		pAttempt(35, 0, 1, cpu.ModeSpeculative),
		pCommit(70, 0, 1, cpu.ModeSpeculative),

		// Core 1: fallback-mode attempt (the global-lock holder) that
		// core 3's fallback-subscription abort attributes to.
		pInvoke(100, 1, 2),
		pAttempt(100, 1, 2, cpu.ModeFallback),
		pInvoke(100, 3, 1),
		pAttempt(105, 3, 1, cpu.ModeSpeculative),
		pAbort(125, 3, 1, cpu.ModeSpeculative, htm.AbortOtherFallback),
		pCommit(140, 1, 2, cpu.ModeFallback),

		// Core 2: waits on line 7 held by core 3 (event-carried holder),
		// then aborts while waiting: wait-chain attribution, 40 wait ticks.
		pInvoke(200, 2, 2),
		pAttempt(200, 2, 2, cpu.ModeNSCL),
		pLock(210, 2, 7, LockRetry, 3),
		pAbort(250, 2, 2, cpu.ModeNSCL, htm.AbortMemoryConflict),

		// Core 3: self-inflicted capacity abort and an injected spurious one.
		pAttempt(300, 3, 1, cpu.ModeSpeculative),
		pAbort(320, 3, 1, cpu.ModeSpeculative, htm.AbortCapacity),
		pAttempt(330, 3, 1, cpu.ModeSpeculative),
		pAbort(340, 3, 1, cpu.ModeSpeculative, htm.AbortSpurious),
	}
	p := BuildProfile(meta, evs)

	if p.Invocations != 4 || p.Attempts != 7 || p.Commits != 2 || p.Aborts != 5 {
		t.Fatalf("totals: %d inv, %d att, %d commits, %d aborts", p.Invocations, p.Attempts, p.Commits, p.Aborts)
	}
	if p.Attributed != 3 || p.Unattributed != 2 {
		t.Fatalf("attribution split: %d attributed, %d unattributed", p.Attributed, p.Unattributed)
	}

	if e := findEdge(t, p, 1, 0, "conflict"); e.Count != 1 || e.TicksLost != 20 || e.Reason != htm.AbortMemoryConflict {
		t.Fatalf("conflict edge: %+v", e)
	}
	if e := findEdge(t, p, 1, 3, "fallback"); e.Count != 1 || e.TicksLost != 20 {
		t.Fatalf("fallback edge: %+v", e)
	}
	if e := findEdge(t, p, 3, 2, "lock-holder"); e.Count != 1 || e.TicksLost != 50 {
		t.Fatalf("wait-chain edge: %+v", e)
	}
	if e := findEdge(t, p, -1, 3, "self"); e.Reason != htm.AbortCapacity {
		t.Fatalf("self edge: %+v", e)
	}
	findEdge(t, p, -1, 3, "injected")

	if p.AbortedTicks != 20+20+50+20+10 {
		t.Fatalf("aborted ticks: %d", p.AbortedTicks)
	}
	if p.TicksLostByReason[htm.AbortMemoryConflict] != 70 {
		t.Fatalf("ticks lost to memory-conflict: %d", p.TicksLostByReason[htm.AbortMemoryConflict])
	}
	if p.LockWaitTicks != 40 {
		t.Fatalf("lock wait ticks: %d", p.LockWaitTicks)
	}

	if len(p.Lines) != 2 {
		t.Fatalf("want 2 contended lines, got %+v", p.Lines)
	}
	// Line 7 leads on wait ticks.
	if l := p.Lines[0]; l.Line != 7 || l.Retries != 1 || l.WaitTicks != 40 || l.MaxWait != 40 || l.Waiters != 1 {
		t.Fatalf("line 7 profile: %+v", l)
	}
	if l := p.Lines[1]; l.Line != 0x40 || l.Conflicts != 1 {
		t.Fatalf("line 0x40 profile: %+v", l)
	}

	if p.RetryLatency.Count != 1 || p.RetryLatency.Max != 40 {
		t.Fatalf("retry latency: %+v", p.RetryLatency)
	}
	if p.CommitsByMode[stats.CommitSpeculative] != 1 || p.CommitsByMode[stats.CommitFallback] != 1 {
		t.Fatalf("commits by mode: %+v", p.CommitsByMode)
	}

	// Per-AR split: alpha carries the conflict + capacity + spurious +
	// fallback-subscription aborts, beta the wait-chain one.
	var alpha, beta *ARProfile
	for i := range p.ARs {
		switch p.ARs[i].Name {
		case "alpha":
			alpha = &p.ARs[i]
		case "beta":
			beta = &p.ARs[i]
		}
	}
	if alpha == nil || beta == nil {
		t.Fatalf("missing AR profiles: %+v", p.ARs)
	}
	if alpha.Aborts != 4 || alpha.Commits != 1 || beta.Aborts != 1 || beta.Commits != 1 {
		t.Fatalf("per-AR totals: alpha=%+v beta=%+v", alpha, beta)
	}
	if beta.LockWaitTicks != 40 {
		t.Fatalf("beta lock wait: %+v", beta)
	}

	// The edge table must account for every abort (CrossCheck's last gate).
	var edgeCount int
	for _, e := range p.Edges {
		edgeCount += e.Count
	}
	if edgeCount != p.Aborts {
		t.Fatalf("edges cover %d of %d aborts", edgeCount, p.Aborts)
	}
}

// TestProfileHolderFallsBackToAcquire checks that a retry event without a
// carried holder (old traces) still gets wait-chain attribution through the
// reconstructed acquire->unlock holder map.
func TestProfileHolderFallsBackToAcquire(t *testing.T) {
	meta := Meta{Cores: 2}
	evs := []Event{
		pAttempt(0, 0, 1, cpu.ModeNSCL),
		pLock(5, 0, 9, LockOK, -1),
		pAttempt(10, 1, 1, cpu.ModeNSCL),
		pLock(20, 1, 9, LockRetry, -1), // no carried holder
		pAbort(60, 1, 1, cpu.ModeNSCL, htm.AbortMemoryConflict),
	}
	p := BuildProfile(meta, evs)
	if e := findEdge(t, p, 0, 1, "lock-holder"); e.Count != 1 {
		t.Fatalf("fallback-holder edge: %+v", e)
	}
}

// TestProfileTruncatedStream checks open waits at end-of-stream are closed
// at the last tick instead of leaking.
func TestProfileTruncatedStream(t *testing.T) {
	meta := Meta{Cores: 2}
	evs := []Event{
		pAttempt(0, 1, 1, cpu.ModeNSCL),
		pLock(10, 1, 3, LockRetry, 0),
		pCommit(50, 0, 2, cpu.ModeSpeculative), // just advances LastTick
	}
	p := BuildProfile(meta, evs)
	if p.LockWaitTicks != 40 {
		t.Fatalf("truncated wait: %d ticks", p.LockWaitTicks)
	}
}

// TestSampleIntervalsBoundary pins the boundary convention: an event at
// exactly Start+Width belongs to the next interval, not the closing one.
func TestSampleIntervalsBoundary(t *testing.T) {
	meta := Meta{Cores: 2}
	evs := []Event{
		pCommit(0, 0, 1, cpu.ModeSpeculative),
		pCommit(10, 0, 1, cpu.ModeSpeculative), // exactly on the boundary
	}
	s := SampleIntervals(meta, evs, 10)
	if len(s) != 2 {
		t.Fatalf("want 2 intervals, got %d: %+v", len(s), s)
	}
	if s[0].Commits != 1 || s[1].Commits != 1 {
		t.Fatalf("boundary event landed wrong: %+v", s)
	}
	if s[1].Start != 10 {
		t.Fatalf("second interval start: %+v", s[1])
	}
}

// TestSampleIntervalsQuietGap checks that event-free intermediate intervals
// are still emitted and carry the standing state (locked lines, active
// cores) across the gap, and that the final partial interval is flushed.
func TestSampleIntervalsQuietGap(t *testing.T) {
	meta := Meta{Cores: 2}
	evs := []Event{
		pAttempt(0, 0, 1, cpu.ModeNSCL),
		pLock(1, 0, 5, LockOK, -1),
		pCommit(35, 0, 1, cpu.ModeNSCL), // lands in interval [30,40)
	}
	s := SampleIntervals(meta, evs, 10)
	if len(s) != 4 {
		t.Fatalf("want 4 intervals, got %d: %+v", len(s), s)
	}
	for i := 0; i < 3; i++ {
		if s[i].LockedLines != 1 || s[i].ActiveCores != 1 {
			t.Fatalf("interval %d lost standing state: %+v", i, s[i])
		}
	}
	if s[1].Commits != 0 || s[2].Commits != 0 {
		t.Fatalf("quiet intervals not quiet: %+v", s)
	}
	if s[3].Commits != 1 || s[3].ActiveCores != 0 {
		t.Fatalf("final flush: %+v", s[3])
	}
}

// TestSampleIntervalsDegenerate pins the nil returns for zero width and
// empty streams.
func TestSampleIntervalsDegenerate(t *testing.T) {
	meta := Meta{Cores: 1}
	if s := SampleIntervals(meta, []Event{pCommit(0, 0, 1, cpu.ModeSpeculative)}, 0); s != nil {
		t.Fatalf("zero width: want nil, got %+v", s)
	}
	if s := SampleIntervals(meta, nil, 10); s != nil {
		t.Fatalf("empty stream: want nil, got %+v", s)
	}
}

// TestLiveAbortReasonOverflow pins the Live collector's overflow guard: the
// reason enum must fit below the catch-all slot, and out-of-range reasons
// (a future enum growth, or corrupt data) land in the visible "overflow"
// bucket instead of slicing out of bounds or silently vanishing.
func TestLiveAbortReasonOverflow(t *testing.T) {
	if int(htm.AbortSpurious) >= abortOverflowBucket {
		t.Fatalf("htm.AbortReason enum (max %d) no longer fits below the overflow bucket %d; widen abortsByRsn",
			int(htm.AbortSpurious), abortOverflowBucket)
	}
	l := NewLive()
	l.OnAttemptEnd(cpu.AttemptEndInfo{Core: 0, Reason: htm.AbortReason(99)})
	l.OnAttemptEnd(cpu.AttemptEndInfo{Core: 0, Reason: htm.AbortReason(-1)})
	l.OnAttemptEnd(cpu.AttemptEndInfo{Core: 0, Reason: htm.AbortMemoryConflict})
	s := l.Snapshot()
	if s.Aborts != 3 {
		t.Fatalf("aborts: %d", s.Aborts)
	}
	if s.AbortsBy["overflow"] != 2 {
		t.Fatalf("overflow bucket: %+v", s.AbortsBy)
	}
	if s.AbortsBy["memory-conflict"] != 1 {
		t.Fatalf("in-range reason: %+v", s.AbortsBy)
	}
}
