package trace

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// This file reconstructs the *committed* execution from a recorded event
// stream: which atomic regions reached their commit point, in which global
// order, and which memory accesses each of them performed. It is the
// substrate the internal/litmus axiomatic checker builds its po/rf/co/fr
// relations on.
//
// The extraction relies on two stream properties the tracer guarantees:
//
//   - Events appear in execution order. The engine is a sequential event
//     loop, every probe callback runs synchronously at its simulation point,
//     and the tracer appends records in callback order — so the stream
//     position of a KindCommit record *is* the serialization point of that
//     region (speculative commits drain their store queue synchronously at
//     the commit record's position).
//
//   - Per core, KindMemAccess records between a KindAttemptStart and the
//     attempt's closing KindCommit/KindAttemptEnd belong to that attempt.
//     Cores interleave in the stream, but each core is strictly sequential.

// MemAccess is one committed load or store.
type MemAccess struct {
	// Seq is the access event's position in the stream (a global total
	// order consistent with execution order).
	Seq  int
	Tick sim.Tick
	Addr mem.Addr
	// Value is the word loaded or stored.
	Value   uint64
	IsWrite bool
}

// CommittedAR is one atomic region that reached its commit point, with the
// memory accesses of its committing attempt in program order.
type CommittedAR struct {
	Core    int
	ProgID  int
	Attempt int
	// Mode is the execution mode the region committed in.
	Mode cpu.Mode
	// CommitSeq is the region's rank in the global commit order (the stream
	// order of KindCommit records, which equals serialization order).
	CommitSeq  int
	CommitTick sim.Tick
	Accesses   []MemAccess
}

// String labels the region for witness rendering.
func (a CommittedAR) String() string {
	return fmt.Sprintf("core %d inv#%d prog %d (%v commit @%d)",
		a.Core, a.CommitSeq, a.ProgID, a.Mode, a.CommitTick)
}

// CommittedARs extracts the committed regions of an event stream, in commit
// (= serialization) order. Accesses of aborted attempts are discarded; the
// stream may omit memory accesses entirely (Options.MemAccesses off), in
// which case the regions simply carry empty access lists — callers that
// need the relations should check Meta.MemAccesses first.
func CommittedARs(events []Event) []CommittedAR {
	type pending struct {
		active   bool
		attempt  int
		progID   int
		accesses []MemAccess
	}
	var cores []pending
	coreState := func(id uint8) *pending {
		for int(id) >= len(cores) {
			cores = append(cores, pending{})
		}
		return &cores[id]
	}

	var out []CommittedAR
	for seq, e := range events {
		switch e.Kind {
		case KindAttemptStart:
			st := coreState(e.Core)
			st.active = true
			st.attempt = e.Attempt()
			st.progID = e.ProgID()
			st.accesses = st.accesses[:0]
		case KindMemAccess:
			st := coreState(e.Core)
			if !st.active {
				break // e.g. accesses of a mode the extractor does not track
			}
			st.accesses = append(st.accesses, MemAccess{
				Seq:     seq,
				Tick:    e.Tick,
				Addr:    e.MemAddr(),
				Value:   e.Value(),
				IsWrite: e.IsWrite(),
			})
		case KindAttemptEnd:
			// Aborted attempt (or a fallback-lock wait with no paired start):
			// its accesses never became visible.
			st := coreState(e.Core)
			st.active = false
			st.accesses = st.accesses[:0]
		case KindCommit:
			st := coreState(e.Core)
			ar := CommittedAR{
				Core:       int(e.Core),
				ProgID:     e.ProgID(),
				Attempt:    e.Attempt(),
				Mode:       e.Mode(),
				CommitSeq:  len(out),
				CommitTick: e.Tick,
				Accesses:   append([]MemAccess(nil), st.accesses...),
			}
			st.active = false
			st.accesses = st.accesses[:0]
			out = append(out, ar)
		}
	}
	return out
}
