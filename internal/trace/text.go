package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/cpu"
)

// WriteText renders evs in the line-per-event text format of the old
// clearinspect -trace view:
//
//	[    tick] core  N mode       message
//
// The per-line mode column is reconstructed from the event stream (attempt
// starts/ends and per-event mode fields), so the output matches what the
// removed fmt-based in-simulator tracer printed, but is now derived from
// the structured binary stream.
func WriteText(w io.Writer, meta Meta, evs []Event) error {
	bw := bufio.NewWriter(w)
	mode := make([]cpu.Mode, meta.Cores)
	modeOf := func(e Event) cpu.Mode {
		switch e.Kind {
		case KindAttemptStart, KindAttemptEnd, KindCommit, KindMemAccess:
			return e.Mode()
		}
		if int(e.Core) < len(mode) {
			return mode[e.Core]
		}
		return cpu.ModeIdle
	}
	for _, e := range evs {
		m := modeOf(e)
		msg := textMessage(meta, e)
		if msg == "" {
			continue
		}
		fmt.Fprintf(bw, "[%8d] core %2d %-10s %s\n", uint64(e.Tick), e.Core, m, msg)
		if int(e.Core) < len(mode) {
			switch e.Kind {
			case KindAttemptStart:
				mode[e.Core] = e.Mode()
			case KindAttemptEnd, KindCommit:
				mode[e.Core] = cpu.ModeIdle
			}
		}
	}
	return bw.Flush()
}

// textMessage renders the message column of one event in the old tracef
// vocabulary (begin/load/store/hook/lock/commit/abort lines).
func textMessage(meta Meta, e Event) string {
	switch e.Kind {
	case KindInvocationStart:
		return fmt.Sprintf("invoke prog=%s", meta.ARName(e.ProgID()))
	case KindAttemptStart:
		return fmt.Sprintf("begin %s attempt=%d retries=%d prog=%s",
			attemptNoun(e.Mode()), e.Attempt(), e.Retries(), meta.ARName(e.ProgID()))
	case KindAttemptEnd:
		s := fmt.Sprintf("abort reason=%s pc=%d next=%s", e.Reason(), e.PC(), e.NextMode())
		if p, ok := e.ProposedMode(); ok && p != e.NextMode() {
			s += fmt.Sprintf(" (policy override, proposed %s)", p)
		}
		return s
	case KindCommit:
		return fmt.Sprintf("commit %s retries=%d store-lines=%d",
			attemptNoun(e.Mode()), e.Retries(), e.StoreLines())
	case KindMemAccess:
		if e.IsWrite() {
			return fmt.Sprintf("store %s = %d", e.MemAddr(), e.Value())
		}
		return fmt.Sprintf("load %s -> %d", e.MemAddr(), e.Value())
	case KindConflict:
		return fmt.Sprintf("hook line=%s isWrite=%v req=%d conflict=true",
			e.Line(), e.IsWrite(), e.Requester())
	case KindLock:
		return fmt.Sprintf("lock %s %s", e.Line(), LockOutcomeString(e.LockOutcome()))
	case KindUnlock:
		return fmt.Sprintf("unlock %s", e.Line())
	case KindDirAccess:
		op := "read"
		if e.IsWrite() {
			op = "write"
		}
		return fmt.Sprintf("dir %s %s flags=%s", op, e.Line(), dirFlagString(e.DirFlags()))
	case KindEvict:
		return fmt.Sprintf("evict %s", e.Line())
	case KindFault:
		return fmt.Sprintf("fault %s line=%s ticks=%d", e.FaultKind(), e.Line(), e.FaultTicks())
	}
	return ""
}

// attemptNoun names an execution mode in the old tracer's vocabulary.
func attemptNoun(m cpu.Mode) string {
	switch m {
	case cpu.ModeSpeculative, cpu.ModeFailedDiscovery:
		return "spec"
	case cpu.ModeSCL:
		return "s-cl"
	case cpu.ModeNSCL:
		return "ns-cl"
	case cpu.ModeFallback:
		return "fallback"
	}
	return m.String()
}
