package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
)

// File-format constants. The header is versioned so readers can reject
// streams written by incompatible tracer builds.
const (
	// Magic identifies a clear trace file ("CLRT" + 0x01 framing byte pair).
	Magic uint32 = 0x54524c43 // "CLRT" little-endian
	// Version is the current header/record layout version.
	Version uint16 = 1

	flagMemAccesses uint16 = 1 << 0
	flagDirAccesses uint16 = 1 << 1
)

// Options configures what a Tracer records and the run metadata stored in
// the file header so offline tools can render the stream standalone.
type Options struct {
	// Benchmark and Config name the run (header metadata only).
	Benchmark string
	Config    string
	// Cores is the simulated core count (used by readers to size per-core
	// state; must match the machine).
	Cores int
	// Seed is the workload RNG seed (header metadata only).
	Seed uint64
	// ARNames maps AR program id -> name for offline rendering.
	ARNames map[int]string
	// MemAccesses enables per-memory-operation events (KindMemAccess).
	// Verbose: every completed load/store becomes a record.
	MemAccesses bool
	// DirAccesses enables directory read/write transaction events
	// (KindDirAccess) and eviction events (KindEvict). Lock/unlock events
	// are always recorded.
	DirAccesses bool
	// BufRecords sets the flush batch size in records (default 4096).
	BufRecords int
}

// Tracer records simulation events into a binary stream. It implements both
// cpu.Probe and coherence.Observer and is attached through the machine's
// nil-guarded hook seams, so a detached tracer costs the simulation nothing
// beyond one pointer comparison per hook site.
//
// The emit path is allocation-free: records are encoded into a fixed stack
// buffer and appended into a preallocated batch buffer; the only per-batch
// cost is a single w.Write call when the buffer fills (or on Flush/Close).
type Tracer struct {
	w      io.Writer
	engine *sim.Engine
	opts   Options
	buf    []byte // preallocated; len grows to cap then flushes
	err    error  // sticky first write error

	// Per-core mirrors of state the probe callbacks do not carry directly.
	prog    []int32  // current AR program id per core (-1 when idle)
	retries []uint32 // conflict-counted retry total per core
}

// Attach creates a Tracer writing to w, writes the file header, and hooks
// the tracer into m's probe and directory-observer seams (via AddProbe /
// AddObserver, so it composes with an already-attached oracle).
//
// The caller owns w and must call Close (or Flush) before reading the
// stream; Close does not close w.
func Attach(m *cpu.Machine, w io.Writer, opts Options) (*Tracer, error) {
	if opts.Cores == 0 {
		opts.Cores = len(m.Cores)
	}
	if opts.Cores != len(m.Cores) {
		return nil, fmt.Errorf("trace: Options.Cores=%d but machine has %d cores", opts.Cores, len(m.Cores))
	}
	if opts.BufRecords <= 0 {
		opts.BufRecords = 4096
	}
	t := &Tracer{
		w:       w,
		engine:  m.Engine,
		opts:    opts,
		buf:     make([]byte, 0, opts.BufRecords*recordSize),
		prog:    make([]int32, opts.Cores),
		retries: make([]uint32, opts.Cores),
	}
	for i := range t.prog {
		t.prog[i] = -1
	}
	if err := t.writeHeader(); err != nil {
		return nil, err
	}
	m.AddProbe(t)
	m.Dir.AddObserver(t)
	return t, nil
}

// writeHeader emits the self-describing file header:
//
//	u32 magic, u16 version, u16 flags, u32 cores, u32 reserved, u64 seed,
//	u16 len + benchmark, u16 len + config,
//	u16 AR count, then per AR: u32 id, u16 len + name (sorted by id).
//
// The header contains no timestamps or host state, preserving the
// byte-identical determinism contract.
func (t *Tracer) writeHeader() error {
	var flags uint16
	if t.opts.MemAccesses {
		flags |= flagMemAccesses
	}
	if t.opts.DirAccesses {
		flags |= flagDirAccesses
	}
	h := make([]byte, 0, 64)
	h = binary.LittleEndian.AppendUint32(h, Magic)
	h = binary.LittleEndian.AppendUint16(h, Version)
	h = binary.LittleEndian.AppendUint16(h, flags)
	h = binary.LittleEndian.AppendUint32(h, uint32(t.opts.Cores))
	h = binary.LittleEndian.AppendUint32(h, 0) // reserved
	h = binary.LittleEndian.AppendUint64(h, t.opts.Seed)
	h = appendString(h, t.opts.Benchmark)
	h = appendString(h, t.opts.Config)
	ids := make([]int, 0, len(t.opts.ARNames))
	for id := range t.opts.ARNames {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h = binary.LittleEndian.AppendUint16(h, uint16(len(ids)))
	for _, id := range ids {
		h = binary.LittleEndian.AppendUint32(h, uint32(id))
		h = appendString(h, t.opts.ARNames[id])
	}
	_, err := t.w.Write(h)
	t.err = err
	return err
}

func appendString(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// emit encodes one record into the batch buffer, flushing when full.
func (t *Tracer) emit(kind Kind, core int, arg0, arg1 uint8, arg2 uint32, addr, arg3 uint64) {
	if t.err != nil {
		return
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(t.engine.Now()))
	rec[8] = uint8(kind)
	rec[9] = uint8(core)
	rec[10] = arg0
	rec[11] = arg1
	binary.LittleEndian.PutUint32(rec[12:], arg2)
	binary.LittleEndian.PutUint64(rec[16:], addr)
	binary.LittleEndian.PutUint64(rec[24:], arg3)
	t.buf = append(t.buf, rec[:]...)
	if len(t.buf) == cap(t.buf) {
		t.flush()
	}
}

// flush writes the batch buffer in a single Write call.
func (t *Tracer) flush() {
	if len(t.buf) == 0 || t.err != nil {
		t.buf = t.buf[:0]
		return
	}
	_, err := t.w.Write(t.buf)
	if err != nil && t.err == nil {
		t.err = err
	}
	t.buf = t.buf[:0]
}

// Flush forces any buffered records out to the underlying writer.
func (t *Tracer) Flush() error {
	t.flush()
	return t.err
}

// Close flushes the tracer and returns the first write error encountered.
// It does not close the underlying writer.
func (t *Tracer) Close() error { return t.Flush() }

// Err returns the sticky write error, if any.
func (t *Tracer) Err() error { return t.err }

// --- cpu.Probe ---

// OnInvocationStart records a dequeued AR invocation and resets the core's
// per-invocation mirrors.
func (t *Tracer) OnInvocationStart(core int, progID int) {
	t.prog[core] = int32(progID)
	t.retries[core] = 0
	t.emit(KindInvocationStart, core, 0, 0, 0, uint64(progID), 0)
}

// OnAttemptStart records the beginning of one attempt.
func (t *Tracer) OnAttemptStart(core int, mode cpu.Mode, attempt int, footprint []mem.LineAddr) {
	t.emit(KindAttemptStart, core, uint8(mode), 0, uint32(attempt),
		uint64(t.prog[core]), packCounts(int(t.retries[core]), len(footprint)))
}

// OnAttemptEnd records an abort together with the §4.3 retry-mode decision.
func (t *Tracer) OnAttemptEnd(info cpu.AttemptEndInfo) {
	t.retries[info.Core] = uint32(info.ConflictRetries)
	t.emit(KindAttemptEnd, info.Core, uint8(info.Mode), uint8(info.Reason),
		packAttemptEndArg2(info.Attempt, info.Proposed), uint64(info.ProgID),
		packAttemptEnd(info.NextMode, info.Assessed, info.Assessment.Mode, info.PC, info.ConflictRetries))
}

// OnCommit records a successful commit.
func (t *Tracer) OnCommit(info cpu.CommitInfo) {
	t.emit(KindCommit, info.Core, uint8(info.Mode), 0, uint32(info.Attempt),
		uint64(info.ProgID), packCounts(info.ConflictRetries, len(info.StoreLines)))
	t.prog[info.Core] = -1
	t.retries[info.Core] = 0
}

// OnMemAccess records one completed load/store (when Options.MemAccesses).
func (t *Tracer) OnMemAccess(core int, addr mem.Addr, value uint64, isWrite bool, mode cpu.Mode) {
	if !t.opts.MemAccesses {
		return
	}
	var w uint8
	if isWrite {
		w = 1
	}
	t.emit(KindMemAccess, core, uint8(mode), w, 0, uint64(addr), value)
}

// OnConflict records a holder-side transactional conflict.
func (t *Tracer) OnConflict(core int, line mem.LineAddr, isWrite bool, requester int) {
	var w uint8
	if isWrite {
		w = 1
	}
	t.emit(KindConflict, core, w, uint8(requester), 0, uint64(line), 0)
}

// --- coherence.Observer ---

// OnAccess records a directory transaction (when Options.DirAccesses).
func (t *Tracer) OnAccess(core int, line mem.LineAddr, isWrite bool, attrs coherence.ReqAttrs, res coherence.AccessResult) {
	if !t.opts.DirAccesses {
		return
	}
	var w uint8
	if isWrite {
		w = 1
	}
	var flags uint8
	if res.Nacked {
		flags |= DirNacked
	}
	if res.Retry {
		flags |= DirRetry
	}
	if attrs.Locking {
		flags |= DirLocking
	}
	if attrs.NonSpec {
		flags |= DirNonSpec
	}
	if attrs.FailedMode {
		flags |= DirFailedMode
	}
	if attrs.Power {
		flags |= DirPower
	}
	t.emit(KindDirAccess, core, w, flags, 0, uint64(line), 0)
}

// OnLock records a cacheline-lock acquisition attempt and its outcome. For
// retried/nacked attempts Arg1 carries the responsible holder as holder+1
// (0 = unknown), feeding the offline wait-chain attribution.
func (t *Tracer) OnLock(core int, line mem.LineAddr, res coherence.LockResult) {
	outcome := LockOK
	var holder uint8
	switch {
	case res.Nacked:
		outcome = LockNack
	case res.Retry:
		outcome = LockRetry
	}
	if outcome != LockOK && res.HolderKnown && res.Holder >= 0 && res.Holder < 0xff {
		holder = uint8(res.Holder + 1)
	}
	t.emit(KindLock, core, outcome, holder, 0, uint64(line), 0)
}

// OnUnlock records a cacheline-lock release.
func (t *Tracer) OnUnlock(core int, line mem.LineAddr) {
	t.emit(KindUnlock, core, 0, 0, 0, uint64(line), 0)
}

// OnEvict records a line eviction (when Options.DirAccesses).
func (t *Tracer) OnEvict(core int, line mem.LineAddr) {
	if !t.opts.DirAccesses {
		return
	}
	t.emit(KindEvict, core, 0, 0, 0, uint64(line), 0)
}

// --- fault.Recorder ---

// RecordFault records one fired fault from the injector (core -1, a
// sim-layer fault with no attributable core, is stored as 0xff). The record
// carries the fault kind, the target line (0 if none), and the injected
// extra ticks, so offline tools can correlate perturbations with the
// protocol reactions around them.
func (t *Tracer) RecordFault(core int, kind fault.Kind, ticks sim.Tick, line mem.LineAddr) {
	if core < 0 {
		core = 0xff
	}
	t.emit(KindFault, core, uint8(kind), 0, 0, uint64(line), uint64(ticks))
}

var _ cpu.Probe = (*Tracer)(nil)
var _ coherence.Observer = (*Tracer)(nil)
var _ fault.Recorder = (*Tracer)(nil)
