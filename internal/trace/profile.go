package trace

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AbortEdge is one aggregated aborter → victim attribution: Count aborts of
// Victim with Reason, in Mode, traced back to Aborter through the
// mechanism named by Via, costing TicksLost of discarded attempt time.
// Aborter is -1 for unattributed aborts (self-inflicted capacity/explicit
// aborts, injected spurious aborts, or contention the stream cannot pin on
// a core).
type AbortEdge struct {
	Aborter int
	Victim  int
	Reason  htm.AbortReason
	// Mode is the victim's execution mode at the abort.
	Mode cpu.Mode
	// Via names the attribution mechanism: "conflict" (a holder-side
	// conflict event carried the requester), "lock-holder" (the victim was
	// waiting on a cacheline lock; wait-chain attribution through the
	// holder), "nack" (the victim's own request was refused by the
	// holder), "fallback" (a fallback-mode core took the global lock), or
	// "self"/"injected" for aborts no remote core caused.
	Via       string
	Count     int
	TicksLost sim.Tick
}

// LineProfile is the contention profile of one cacheline.
type LineProfile struct {
	Line      mem.LineAddr
	Acquires  int
	Retries   int
	Nacks     int
	Conflicts int
	// WaitTicks sums the lock-wait edges spent on this line; MaxWait is
	// the longest single edge; Waiters counts distinct waiting cores.
	WaitTicks sim.Tick
	MaxWait   sim.Tick
	Waiters   int
}

// ARProfile is the contention profile of one AR program.
type ARProfile struct {
	ProgID      int
	Name        string
	Invocations int
	Attempts    int
	Commits     int
	Aborts      int
	// CommittedTicks / AbortedTicks split attempt time by outcome;
	// AbortedTicks is this AR's contribution to the retry bill.
	CommittedTicks sim.Tick
	AbortedTicks   sim.Tick
	LockWaitTicks  sim.Tick
}

// Profile is the offline contention-attribution report over one trace: who
// aborted whom, through which mechanism, on which lines, at what cost in
// ticks — the measurement the paper's single-retry argument is about.
type Profile struct {
	Meta     Meta
	LastTick sim.Tick

	Invocations int
	Attempts    int
	Commits     int
	Aborts      int

	CommitsByMode  map[stats.CommitMode]int
	AbortsByReason map[htm.AbortReason]int
	// TicksLostByReason is the discarded attempt time per abort reason;
	// AbortedTicks is its total (ticks-lost-to-retry accounting).
	TicksLostByReason map[htm.AbortReason]sim.Tick
	AbortedTicks      sim.Tick
	LockWaitTicks     sim.Tick

	// Attributed counts aborts pinned on a specific remote core.
	Attributed   int
	Unattributed int

	// Edges is the abort-attribution table, heaviest TicksLost first.
	Edges []AbortEdge
	// Lines ranks cachelines by contention (wait ticks, then conflicts).
	Lines []LineProfile
	// ARs aggregates per AR program, by id.
	ARs []ARProfile

	// RetryLatency is the first-abort→commit latency distribution of
	// retried invocations (the single-retry bound's direct cost).
	RetryLatency metrics.HistSummary
}

// edgeKey aggregates attribution instances.
type edgeKey struct {
	aborter int
	victim  int
	reason  htm.AbortReason
	mode    cpu.Mode
	via     string
}

// profCore is the per-core reconstruction state of BuildProfile.
type profCore struct {
	// Active attempt.
	inAtt    bool
	attStart sim.Tick
	progID   int
	mode     cpu.Mode
	// Active invocation (for retry-to-commit latency).
	inInv      bool
	aborted    bool
	firstAbort sim.Tick
	// Last holder-side conflict received inside the current attempt.
	confValid bool
	confFrom  int
	// Last lock NACK holder inside the current attempt.
	nackValid bool
	nackFrom  int
	// Open lock waits: line -> (start, holder).
	waits map[mem.LineAddr]waitInfo
}

type waitInfo struct {
	start  sim.Tick
	holder int
}

// BuildProfile folds a stream of events into the contention-attribution
// profile. The stream needs only the always-on record kinds (attempts,
// commits, locks, conflicts); mem/dir streams are ignored.
func BuildProfile(meta Meta, evs []Event) *Profile {
	p := &Profile{
		Meta:              meta,
		CommitsByMode:     make(map[stats.CommitMode]int),
		AbortsByReason:    make(map[htm.AbortReason]int),
		TicksLostByReason: make(map[htm.AbortReason]sim.Tick),
	}
	cores := make([]profCore, meta.Cores)
	for i := range cores {
		cores[i].waits = make(map[mem.LineAddr]waitInfo)
	}
	lockHolder := make(map[mem.LineAddr]int)
	lines := make(map[mem.LineAddr]*LineProfile)
	waiters := make(map[mem.LineAddr]map[int]bool)
	ars := make(map[int]*ARProfile)
	var arOrder []int
	edges := make(map[edgeKey]*AbortEdge)
	retryLat := &metrics.Histogram{}

	lineOf := func(l mem.LineAddr) *LineProfile {
		lp, ok := lines[l]
		if !ok {
			lp = &LineProfile{Line: l}
			lines[l] = lp
		}
		return lp
	}
	arOf := func(id int) *ARProfile {
		a, ok := ars[id]
		if !ok {
			a = &ARProfile{ProgID: id, Name: meta.ARName(id)}
			ars[id] = a
			arOrder = append(arOrder, id)
		}
		return a
	}
	// closeWait ends the open wait of core c on line at tick, crediting the
	// line and AR profiles.
	closeWait := func(c int, line mem.LineAddr, tick sim.Tick) {
		s := &cores[c]
		w, ok := s.waits[line]
		if !ok {
			return
		}
		delete(s.waits, line)
		d := tick - w.start
		p.LockWaitTicks += d
		lp := lineOf(line)
		lp.WaitTicks += d
		if d > lp.MaxWait {
			lp.MaxWait = d
		}
		if s.inAtt {
			arOf(s.progID).LockWaitTicks += d
		}
	}
	// fallbackCore finds the core currently executing a fallback-mode
	// attempt (the global-lock holder), preferring the most recent start.
	fallbackCore := func(victim int) int {
		best, bestTick := -1, sim.Tick(0)
		for i := range cores {
			if i == victim || !cores[i].inAtt || cores[i].mode != cpu.ModeFallback {
				continue
			}
			if best < 0 || cores[i].attStart >= bestTick {
				best, bestTick = i, cores[i].attStart
			}
		}
		return best
	}

	for _, e := range evs {
		if e.Tick > p.LastTick {
			p.LastTick = e.Tick
		}
		c := int(e.Core)
		if c >= len(cores) {
			continue
		}
		s := &cores[c]
		switch e.Kind {
		case KindInvocationStart:
			p.Invocations++
			arOf(e.ProgID()).Invocations++
			s.inInv = true
			s.aborted = false
		case KindAttemptStart:
			p.Attempts++
			s.inAtt = true
			s.attStart = e.Tick
			s.progID = e.ProgID()
			s.mode = e.Mode()
			s.confValid = false
			s.nackValid = false
			arOf(s.progID).Attempts++
		case KindAttemptEnd:
			p.Aborts++
			reason := e.Reason()
			p.AbortsByReason[reason]++
			var dur sim.Tick
			if s.inAtt {
				dur = e.Tick - s.attStart
			}
			p.AbortedTicks += dur
			p.TicksLostByReason[reason] += dur
			ar := arOf(e.ProgID())
			ar.Aborts++
			ar.AbortedTicks += dur

			aborter, via := attributeAbort(s, reason, fallbackCore, c)
			if aborter >= 0 {
				p.Attributed++
			} else {
				p.Unattributed++
			}
			k := edgeKey{aborter: aborter, victim: c, reason: reason, mode: e.Mode(), via: via}
			ed, ok := edges[k]
			if !ok {
				ed = &AbortEdge{Aborter: aborter, Victim: c, Reason: reason, Mode: e.Mode(), Via: via}
				edges[k] = ed
			}
			ed.Count++
			ed.TicksLost += dur

			for line := range s.waits {
				closeWait(c, line, e.Tick)
			}
			s.inAtt = false
			if !s.aborted {
				s.aborted = true
				s.firstAbort = e.Tick
			}
		case KindCommit:
			p.Commits++
			if m, ok := commitModeOf(e.Mode()); ok {
				p.CommitsByMode[m]++
			}
			ar := arOf(e.ProgID())
			ar.Commits++
			if s.inAtt {
				ar.CommittedTicks += e.Tick - s.attStart
			}
			for line := range s.waits {
				closeWait(c, line, e.Tick)
			}
			s.inAtt = false
			if s.inInv && s.aborted {
				retryLat.Observe(uint64(e.Tick - s.firstAbort))
			}
			s.inInv = false
			s.aborted = false
		case KindConflict:
			lineOf(e.Line()).Conflicts++
			if s.inAtt {
				s.confValid = true
				s.confFrom = e.Requester()
			}
		case KindLock:
			line := e.Line()
			lp := lineOf(line)
			switch e.LockOutcome() {
			case LockOK:
				lp.Acquires++
				closeWait(c, line, e.Tick)
				lockHolder[line] = c
			case LockRetry:
				lp.Retries++
				holder := e.LockHolder()
				if holder < 0 {
					if h, ok := lockHolder[line]; ok {
						holder = h
					}
				}
				if _, waiting := s.waits[line]; !waiting {
					s.waits[line] = waitInfo{start: e.Tick, holder: holder}
					if waiters[line] == nil {
						waiters[line] = make(map[int]bool)
					}
					waiters[line][c] = true
				} else if holder >= 0 {
					w := s.waits[line]
					w.holder = holder
					s.waits[line] = w
				}
			case LockNack:
				lp.Nacks++
				if holder := e.LockHolder(); holder >= 0 {
					s.nackValid = true
					s.nackFrom = holder
				}
				closeWait(c, line, e.Tick)
			}
		case KindUnlock:
			if lockHolder[e.Line()] == c {
				delete(lockHolder, e.Line())
			}
		}
	}
	// Close whatever the (possibly truncated) stream left open.
	for c := range cores {
		for line := range cores[c].waits {
			closeWait(c, line, p.LastTick)
		}
	}

	for l, lp := range lines {
		lp.Waiters = len(waiters[l])
	}
	p.Edges = sortEdges(edges)
	p.Lines = sortLines(lines)
	sort.Ints(arOrder)
	for _, id := range arOrder {
		p.ARs = append(p.ARs, *ars[id])
	}
	p.RetryLatency = metrics.Summarize("retry_to_commit_ticks", "", retryLat)
	return p
}

// attributeAbort pins one abort on a remote core where the stream allows:
// a direct conflict event beats wait-chain attribution beats a NACK holder;
// fallback-subscription aborts attribute to the fallback-mode core; the
// rest are self-inflicted or unknown.
func attributeAbort(s *profCore, reason htm.AbortReason, fallbackCore func(int) int, victim int) (int, string) {
	switch reason {
	case htm.AbortMemoryConflict:
		if s.confValid {
			return s.confFrom, "conflict"
		}
		// Wait-chain: the victim aborted while (or right after) waiting on
		// a cacheline lock — charge the holder it was stuck behind.
		best, bestTick := -1, sim.Tick(0)
		for _, w := range s.waits {
			if w.holder >= 0 && (best < 0 || w.start >= bestTick) {
				best, bestTick = w.holder, w.start
			}
		}
		if best >= 0 {
			return best, "lock-holder"
		}
		if s.nackValid {
			return s.nackFrom, "nack"
		}
		return -1, ""
	case htm.AbortExplicitFallback, htm.AbortOtherFallback:
		if h := fallbackCore(victim); h >= 0 {
			return h, "fallback"
		}
		return -1, "fallback"
	case htm.AbortSpurious:
		return -1, "injected"
	default: // capacity, explicit, deviation
		return -1, "self"
	}
}

func sortEdges(m map[edgeKey]*AbortEdge) []AbortEdge {
	out := make([]AbortEdge, 0, len(m))
	for _, e := range m {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TicksLost != b.TicksLost {
			return a.TicksLost > b.TicksLost
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		if a.Aborter != b.Aborter {
			return a.Aborter < b.Aborter
		}
		if a.Reason != b.Reason {
			return a.Reason < b.Reason
		}
		return a.Via < b.Via
	})
	return out
}

func sortLines(m map[mem.LineAddr]*LineProfile) []LineProfile {
	out := make([]LineProfile, 0, len(m))
	for _, lp := range m {
		// Untouched-by-contention lines (pure acquires with no waits,
		// nacks, or conflicts) would swamp the report; keep the contended.
		if lp.WaitTicks == 0 && lp.Nacks == 0 && lp.Conflicts == 0 && lp.Retries == 0 {
			continue
		}
		out = append(out, *lp)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.WaitTicks != b.WaitTicks {
			return a.WaitTicks > b.WaitTicks
		}
		if a.Conflicts != b.Conflicts {
			return a.Conflicts > b.Conflicts
		}
		return a.Line < b.Line
	})
	return out
}

// CrossCheck verifies the profile's aggregate accounting against the
// simulator's own stats.Run for the same run: total commits and aborts,
// commits per mode, and the per-reason abort totals grouped into the
// Figure 11 buckets must match exactly. It is the acceptance gate proving
// the attribution table accounts for every abort the simulator counted.
func (p *Profile) CrossCheck(run *stats.Run) error {
	if uint64(p.Commits) != run.Commits {
		return fmt.Errorf("profile: %d commits, stats counted %d", p.Commits, run.Commits)
	}
	if uint64(p.Aborts) != run.Aborts {
		return fmt.Errorf("profile: %d aborts, stats counted %d", p.Aborts, run.Aborts)
	}
	for m := stats.CommitMode(0); m < stats.NumCommitModes; m++ {
		if uint64(p.CommitsByMode[m]) != run.CommitsByMode[m] {
			return fmt.Errorf("profile: %d %s commits, stats counted %d",
				p.CommitsByMode[m], m, run.CommitsByMode[m])
		}
	}
	var byBucket [htm.NumBuckets]uint64
	for r, n := range p.AbortsByReason {
		byBucket[htm.BucketOf(r)] += uint64(n)
	}
	for b := htm.Bucket(0); b < htm.NumBuckets; b++ {
		if byBucket[b] != run.AbortsByBucket[b] {
			return fmt.Errorf("profile: %d %s aborts, stats counted %d",
				byBucket[b], b, run.AbortsByBucket[b])
		}
	}
	var edgeCount int
	for _, e := range p.Edges {
		edgeCount += e.Count
	}
	if edgeCount != p.Aborts {
		return fmt.Errorf("profile: attribution table covers %d aborts of %d", edgeCount, p.Aborts)
	}
	return nil
}
