package trace

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/sim"
)

// IntervalSample aggregates the activity of one tick interval
// [Start, Start+Width).
type IntervalSample struct {
	Start sim.Tick
	Width sim.Tick
	// Commits and Aborts count attempt ends inside the interval.
	Commits int
	Aborts  int
	// LockAcquires / LockRetries / LockNacks count cacheline-lock events.
	LockAcquires int
	LockRetries  int
	LockNacks    int
	// LockedLines is the number of cachelines locked at the interval end.
	LockedLines int
	// ActiveCores is the number of cores inside an attempt at the interval
	// end (occupancy).
	ActiveCores int
}

// SampleIntervals folds a stream of events into per-interval activity
// samples of the given width (ticks). Width must be > 0.
func SampleIntervals(meta Meta, evs []Event, width sim.Tick) []IntervalSample {
	if width == 0 || len(evs) == 0 {
		return nil
	}
	var out []IntervalSample
	locked := make(map[uint64]bool)
	active := make([]bool, meta.Cores)
	cur := IntervalSample{Start: 0, Width: width}

	countActive := func() int {
		n := 0
		for _, a := range active {
			if a {
				n++
			}
		}
		return n
	}
	flushTo := func(tick sim.Tick) {
		for tick >= cur.Start+width {
			cur.LockedLines = len(locked)
			cur.ActiveCores = countActive()
			out = append(out, cur)
			cur = IntervalSample{Start: cur.Start + width, Width: width}
		}
	}

	for _, e := range evs {
		flushTo(e.Tick)
		switch e.Kind {
		case KindAttemptStart:
			if int(e.Core) < len(active) {
				active[e.Core] = true
			}
		case KindAttemptEnd:
			cur.Aborts++
			if int(e.Core) < len(active) {
				active[e.Core] = false
			}
		case KindCommit:
			cur.Commits++
			if int(e.Core) < len(active) {
				active[e.Core] = false
			}
		case KindLock:
			switch e.LockOutcome() {
			case LockOK:
				cur.LockAcquires++
				locked[e.Addr] = true
			case LockRetry:
				cur.LockRetries++
			case LockNack:
				cur.LockNacks++
			}
		case KindUnlock:
			delete(locked, e.Addr)
		}
	}
	cur.LockedLines = len(locked)
	cur.ActiveCores = countActive()
	out = append(out, cur)
	return out
}

// WriteIntervalCSV renders samples as CSV on w.
func WriteIntervalCSV(w io.Writer, samples []IntervalSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"start", "width", "commits", "aborts",
		"lock_acquires", "lock_retries", "lock_nacks",
		"locked_lines", "active_cores",
	}); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			fmt.Sprint(uint64(s.Start)), fmt.Sprint(uint64(s.Width)),
			fmt.Sprint(s.Commits), fmt.Sprint(s.Aborts),
			fmt.Sprint(s.LockAcquires), fmt.Sprint(s.LockRetries), fmt.Sprint(s.LockNacks),
			fmt.Sprint(s.LockedLines), fmt.Sprint(s.ActiveCores),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
