package trace

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/mem"
)

// Live is a lock-free telemetry collector for long runs: it implements
// cpu.Probe with atomic counters only, so several machines (the parallel
// cells of a clearbench matrix) can share one Live instance. It exposes a
// JSON snapshot via an http.Handler and can publish itself to expvar for
// the standard /debug/vars endpoint.
//
// Unlike the Tracer, Live keeps no per-event state and writes nothing; the
// cost per hooked event is one atomic add.
type Live struct {
	invocations atomic.Uint64
	attempts    atomic.Uint64
	commits     atomic.Uint64
	aborts      atomic.Uint64
	conflicts   atomic.Uint64
	memOps      atomic.Uint64

	commitsByMode [6]atomic.Uint64 // indexed by cpu.Mode
	// abortsByRsn is indexed by htm.AbortReason; the last slot is a
	// catch-all overflow bucket so a grown enum degrades to a visible
	// "overflow" count instead of silently dropping (or corrupting) tallies.
	abortsByRsn [16]atomic.Uint64

	runsStarted  atomic.Uint64
	runsFinished atomic.Uint64

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	publishOnce sync.Once
}

// NewLive returns an empty collector.
func NewLive() *Live { return &Live{} }

// RunStarted notes that one simulation run began using this collector.
func (l *Live) RunStarted() { l.runsStarted.Add(1) }

// RunFinished notes that one simulation run completed.
func (l *Live) RunFinished() { l.runsFinished.Add(1) }

// CacheHit notes that one run was served from the content-addressed run
// cache instead of simulating (see internal/runstore).
func (l *Live) CacheHit() { l.cacheHits.Add(1) }

// CacheMiss notes that one cache-eligible run had to simulate.
func (l *Live) CacheMiss() { l.cacheMisses.Add(1) }

// --- cpu.Probe ---

func (l *Live) OnInvocationStart(core int, progID int) { l.invocations.Add(1) }

func (l *Live) OnAttemptStart(core int, mode cpu.Mode, attempt int, footprint []mem.LineAddr) {
	l.attempts.Add(1)
}

func (l *Live) OnAttemptEnd(info cpu.AttemptEndInfo) {
	l.aborts.Add(1)
	r := int(info.Reason)
	if r < 0 || r >= abortOverflowBucket {
		r = abortOverflowBucket
	}
	l.abortsByRsn[r].Add(1)
}

// abortOverflowBucket is the catch-all slot of abortsByRsn; reasons beyond
// the named enum land here (TestLiveAbortReasonOverflow pins that the enum
// still fits below it).
const abortOverflowBucket = 15

func (l *Live) OnCommit(info cpu.CommitInfo) {
	l.commits.Add(1)
	if m := int(info.Mode); m < len(l.commitsByMode) {
		l.commitsByMode[m].Add(1)
	}
}

func (l *Live) OnMemAccess(core int, addr mem.Addr, value uint64, isWrite bool, mode cpu.Mode) {
	l.memOps.Add(1)
}

func (l *Live) OnConflict(core int, line mem.LineAddr, isWrite bool, requester int) {
	l.conflicts.Add(1)
}

var _ cpu.Probe = (*Live)(nil)

// LiveSnapshot is one point-in-time view of the collector.
type LiveSnapshot struct {
	RunsStarted  uint64            `json:"runs_started"`
	RunsFinished uint64            `json:"runs_finished"`
	CacheHits    uint64            `json:"cache_hits"`
	CacheMisses  uint64            `json:"cache_misses"`
	Invocations  uint64            `json:"invocations"`
	Attempts     uint64            `json:"attempts"`
	Commits      uint64            `json:"commits"`
	Aborts       uint64            `json:"aborts"`
	Conflicts    uint64            `json:"conflicts"`
	MemOps       uint64            `json:"mem_ops"`
	CommitsBy    map[string]uint64 `json:"commits_by_mode"`
	AbortsBy     map[string]uint64 `json:"aborts_by_reason"`
}

// Snapshot returns a consistent-enough view of the counters (each counter
// is read atomically; the set is not a single atomic snapshot).
func (l *Live) Snapshot() LiveSnapshot {
	s := LiveSnapshot{
		RunsStarted:  l.runsStarted.Load(),
		RunsFinished: l.runsFinished.Load(),
		CacheHits:    l.cacheHits.Load(),
		CacheMisses:  l.cacheMisses.Load(),
		Invocations:  l.invocations.Load(),
		Attempts:     l.attempts.Load(),
		Commits:      l.commits.Load(),
		Aborts:       l.aborts.Load(),
		Conflicts:    l.conflicts.Load(),
		MemOps:       l.memOps.Load(),
		CommitsBy:    make(map[string]uint64),
		AbortsBy:     make(map[string]uint64),
	}
	for m := range l.commitsByMode {
		if v := l.commitsByMode[m].Load(); v != 0 {
			s.CommitsBy[cpu.Mode(m).String()] = v
		}
	}
	for r := range l.abortsByRsn {
		if v := l.abortsByRsn[r].Load(); v != 0 {
			name := htm.AbortReason(r).String()
			if r == abortOverflowBucket {
				name = "overflow"
			}
			s.AbortsBy[name] = v
		}
	}
	return s
}

// Handler returns an http.Handler serving the JSON snapshot.
func (l *Live) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(l.Snapshot())
	})
}

// Publish registers the collector with expvar under "cleartrace" (idempotent;
// expvar panics on duplicate names, hence the once).
func (l *Live) Publish() {
	l.publishOnce.Do(func() {
		expvar.Publish("cleartrace", expvar.Func(func() any { return l.Snapshot() }))
	})
}
