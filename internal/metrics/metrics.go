// Package metrics is the first-class measurement surface of the simulator:
// a registry of counters, gauges, and log2-bucketed histograms whose hot
// path is pure atomics — no locks, no maps, no allocation — so instruments
// can be fed from inside the simulation's probe/observer callbacks without
// perturbing it. Instruments attach to a machine through the same
// nil-guarded cpu.Probe / coherence.Observer tee seams the tracer uses
// (see Attach in collector.go), so a registry coexists with the oracle,
// the tracer, and live telemetry; a detached registry costs the simulation
// one nil pointer comparison per hook site.
//
// Exposition: WriteProm renders the Prometheus text format; Snapshot
// returns a JSON-friendly view with derived quantiles. Both are served by
// clearbench -serve as /metrics and /metrics.json.
//
// Transparency contract: instruments never mutate simulation state,
// consult no RNG, and schedule no events — statistics digests are
// bit-identical with the registry attached or detached
// (TestMetricsDigestTransparency).
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key="value" pair attached to an instrument at
// registration time. Labels are rendered once into the exposition string;
// the hot path never touches them.
type Label struct{ Key, Value string }

// histBuckets is the number of log2 histogram buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1]
// (bucket 0 holds v == 0), capped so every uint64 fits.
const histBuckets = 64

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable signed value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a log2-bucketed distribution of uint64 observations
// (tick durations, line counts, burst lengths). Observe is wait-free:
// two atomic adds plus a bounded max update.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
	max     atomic.Uint64
}

// Observe files one observation.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Quantile returns an upper bound on the q-th quantile (q in [0,1]): the
// top of the log2 bucket holding that rank, clamped to the observed max.
func (h *Histogram) Quantile(q float64) uint64 {
	var total uint64
	var counts [histBuckets]uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, n := range counts {
		seen += n
		if seen > rank {
			ub := bucketUpper(i)
			if m := h.max.Load(); ub > m {
				ub = m
			}
			return ub
		}
	}
	return h.max.Load()
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i >= histBuckets-1 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(i)) - 1
}

// entry is one registered instrument.
type entry struct {
	name   string // family name, e.g. "clear_commits_total"
	help   string
	labels string // rendered `k="v",...` (no braces), "" when unlabeled
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a set of instruments. Registration takes a mutex and may
// allocate; reading and writing registered instruments is lock-free.
// One registry may be shared by many concurrent runs (the cells of a
// clearbench matrix): counters simply aggregate across them.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	index   map[string]*entry // name + "{" + labels + "}"

	instOnce sync.Once
	inst     *Instruments
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*entry)}
}

// renderLabels produces the canonical exposition form of a label set,
// sorted by key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// register returns the existing entry for (name, labels) or creates one.
// Registering the same series under a different kind is a programming
// error and panics.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *entry {
	key := name + "{" + renderLabels(labels) + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", key, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, help: help, labels: renderLabels(labels), kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = &Histogram{}
	}
	r.entries = append(r.entries, e)
	r.index[key] = e
	return e
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels).c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels).g
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, kindHistogram, labels).h
}
