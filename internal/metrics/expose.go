package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// WriteProm renders every registered instrument in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE pair per family, then
// the series in registration order. Histograms emit cumulative `le`
// buckets at the log2 bucket upper bounds (only up to the highest
// populated bucket, to keep the payload proportional to the data), plus
// the conventional `_sum` and `_count` series.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	headered := make(map[string]bool)
	for _, e := range entries {
		if !headered[e.name] {
			headered[e.name] = true
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		}
		switch e.kind {
		case kindCounter:
			writeSeries(bw, e.name, "", e.labels, "", float64(e.c.Value()))
		case kindGauge:
			writeSeries(bw, e.name, "", e.labels, "", float64(e.g.Value()))
		case kindHistogram:
			writeHistogram(bw, e)
		}
	}
	return bw.Flush()
}

// writeSeries emits one sample line: name+suffix{labels[,extra]} value.
func writeSeries(w io.Writer, name, suffix, labels, extra string, v float64) {
	fmt.Fprintf(w, "%s%s", name, suffix)
	switch {
	case labels != "" && extra != "":
		fmt.Fprintf(w, "{%s,%s}", labels, extra)
	case labels != "":
		fmt.Fprintf(w, "{%s}", labels)
	case extra != "":
		fmt.Fprintf(w, "{%s}", extra)
	}
	fmt.Fprintf(w, " %g\n", v)
}

func writeHistogram(w io.Writer, e *entry) {
	h := e.h
	var counts [histBuckets]uint64
	top := -1
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		if counts[i] != 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		le := fmt.Sprintf(`le="%d"`, bucketUpper(i))
		writeSeries(w, e.name, "_bucket", e.labels, le, float64(cum))
	}
	writeSeries(w, e.name, "_bucket", e.labels, `le="+Inf"`, float64(h.Count()))
	writeSeries(w, e.name, "_sum", e.labels, "", float64(h.Sum()))
	writeSeries(w, e.name, "_count", e.labels, "", float64(h.Count()))
}

// HistSummary is the JSON view of one histogram: count/sum plus derived
// tail quantiles (log2-bucket upper bounds, clamped to the observed max).
type HistSummary struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Count  uint64 `json:"count"`
	Sum    uint64 `json:"sum"`
	P50    uint64 `json:"p50"`
	P90    uint64 `json:"p90"`
	P99    uint64 `json:"p99"`
	Max    uint64 `json:"max"`
}

// Summarize derives the JSON summary of h.
func Summarize(name, labels string, h *Histogram) HistSummary {
	return HistSummary{
		Name:   name,
		Labels: labels,
		Count:  h.Count(),
		Sum:    h.Sum(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		Max:    h.Max(),
	}
}

// Sample is the JSON view of one counter or gauge series.
type Sample struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// Snapshot is a point-in-time JSON view of the whole registry (each series
// is read atomically; the set is not a single atomic snapshot).
type Snapshot struct {
	Counters   []Sample      `json:"counters"`
	Gauges     []Sample      `json:"gauges"`
	Histograms []HistSummary `json:"histograms"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	var s Snapshot
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			s.Counters = append(s.Counters, Sample{Name: e.name, Labels: e.labels, Value: int64(e.c.Value())})
		case kindGauge:
			s.Gauges = append(s.Gauges, Sample{Name: e.name, Labels: e.labels, Value: e.g.Value()})
		case kindHistogram:
			s.Histograms = append(s.Histograms, Summarize(e.name, e.labels, e.h))
		}
	}
	return s
}

// Handler serves the Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// JSONHandler serves the snapshot as indented JSON.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
