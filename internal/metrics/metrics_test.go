package metrics

import (
	"math/bits"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Label{"k", "v"})
	b := r.Counter("x_total", "ignored on re-register", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("x_total", "help", Label{"k", "w"})
	if a == other {
		t.Fatal("different label value returned the same counter")
	}
	// Label order must not matter: the rendered form is sorted by key.
	p := r.Gauge("y", "help", Label{"a", "1"}, Label{"b", "2"})
	q := r.Gauge("y", "help", Label{"b", "2"}, Label{"a", "1"})
	if p != q {
		t.Fatal("label order created distinct series")
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "help")
}

func TestRenderLabels(t *testing.T) {
	got := renderLabels([]Label{{"zeta", "1"}, {"alpha", `quo"te` + "\n" + `back\slash`}})
	want := `alpha="quo\"te\nback\\slash",zeta="1"`
	if got != want {
		t.Fatalf("renderLabels = %q, want %q", got, want)
	}
	if renderLabels(nil) != "" {
		t.Fatal("empty label set should render empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1 << 40} {
		h.Observe(v)
		i := bits.Len64(v)
		if h.buckets[i].Load() == 0 {
			t.Fatalf("observe(%d) did not land in bucket %d", v, i)
		}
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 0+1+2+3+4+100+(1<<40) {
		t.Fatalf("sum = %d", got)
	}
	if got := h.Max(); got != 1<<40 {
		t.Fatalf("max = %d, want %d", got, uint64(1)<<40)
	}
	// Values whose bit length exceeds the bucket range clamp into the top
	// bucket (Len64(^0) == 64 >= histBuckets).
	h.Observe(^uint64(0))
	if got := h.buckets[histBuckets-1].Load(); got != 1 {
		t.Fatalf("top-bucket count = %d, want 1", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	var h Histogram
	// 90 small observations (value 1, bucket 1) and 10 large (value 1000).
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.50); got != 1 {
		t.Fatalf("p50 = %d, want 1 (bucket upper bound for v=1)", got)
	}
	// p99 falls in the bucket of 1000 (Len64(1000)=10, upper 1023) but is
	// clamped to the observed max.
	if got := h.Quantile(0.99); got != 1000 {
		t.Fatalf("p99 = %d, want 1000 (clamped to max)", got)
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Fatalf("p100 = %d, want 1000", got)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("clear_ops_total", "Ops.", Label{"kind", "load"}).Add(3)
	r.Counter("clear_ops_total", "Ops.", Label{"kind", "store"}).Add(1)
	r.Gauge("clear_active", "Active.").Set(2)
	h := r.Histogram("clear_ticks", "Ticks.")
	h.Observe(0) // bucket 0, le="0"
	h.Observe(1) // bucket 1, le="1"
	h.Observe(5) // bucket 3, le="7"

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// One HELP/TYPE pair per family, even with two labeled series.
	if n := strings.Count(out, "# HELP clear_ops_total"); n != 1 {
		t.Fatalf("HELP for clear_ops_total appears %d times:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE clear_ops_total counter"); n != 1 {
		t.Fatalf("TYPE for clear_ops_total appears %d times:\n%s", n, out)
	}
	for _, want := range []string{
		`clear_ops_total{kind="load"} 3`,
		`clear_ops_total{kind="store"} 1`,
		"# TYPE clear_active gauge",
		"clear_active 2",
		"# TYPE clear_ticks histogram",
		`clear_ticks_bucket{le="0"} 1`,
		`clear_ticks_bucket{le="1"} 2`,
		`clear_ticks_bucket{le="7"} 3`, // cumulative through the quiet bucket 2
		`clear_ticks_bucket{le="+Inf"} 3`,
		"clear_ticks_sum 6",
		"clear_ticks_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets above the highest populated one are not emitted.
	if strings.Contains(out, `le="15"`) {
		t.Errorf("exposition emitted an empty bucket above the top:\n%s", out)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help").Add(4)
	r.Gauge("b", "help").Set(-2)
	h := r.Histogram("c_ticks", "help", Label{"outcome", "commit"})
	h.Observe(10)
	h.Observe(20)

	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Name != "a_total" || s.Counters[0].Value != 4 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != -2 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	hs := s.Histograms[0]
	if hs.Name != "c_ticks" || hs.Labels != `outcome="commit"` || hs.Count != 2 || hs.Sum != 30 || hs.Max != 20 {
		t.Fatalf("histogram summary = %+v", hs)
	}
}

func TestInstrumentsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Instruments()
	b := r.Instruments()
	if a != b {
		t.Fatal("Instruments() returned distinct sets")
	}
	if a.Commits[0] == nil || a.Aborts[reasonOverflow] == nil {
		t.Fatal("instrument set has nil series")
	}
}
