package metrics

import (
	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// numReasons is the size of the per-reason abort counter array: the named
// enum plus one catch-all slot for reasons the enum may grow past.
const numReasons = int(htm.AbortSpurious) + 2

// reasonOverflow is the catch-all slot index.
const reasonOverflow = numReasons - 1

// Instruments is the standard instrument set a simulation run feeds: the
// paper's contention vocabulary (attempt durations by outcome, lock-wait
// time, CL footprint size, NACK bursts, retry-to-commit latency) plus the
// raw event counters. All series live in one Registry and are created at
// most once per registry (Registry.Instruments), so many concurrent runs
// aggregate into the same series.
type Instruments struct {
	RunsStarted  *Counter
	RunsFinished *Counter
	ActiveRuns   *Gauge

	Invocations *Counter
	Attempts    *Counter
	Commits     [stats.NumCommitModes]*Counter
	Aborts      [numReasons]*Counter
	Conflicts   *Counter
	MemLoads    *Counter
	MemStores   *Counter

	LockAcquires *Counter
	LockRetries  *Counter
	LockNacks    *Counter
	Unlocks      *Counter
	Evicts       *Counter
	DirAccesses  *Counter
	DirNacks     *Counter

	// AttemptTicks is the attempt duration distribution, split by outcome.
	AttemptTicksCommit *Histogram
	AttemptTicksAbort  *Histogram
	// InvocationTicks is first-attempt-start to commit (the paper's
	// invocation latency; tails show retry and fallback serialisation).
	InvocationTicks *Histogram
	// RetryToCommitTicks is first-abort to commit, observed only for
	// invocations that aborted at least once: the direct cost of the
	// single-retry bound.
	RetryToCommitTicks *Histogram
	// LockWaitTicks is the duration of one cacheline-lock wait edge
	// (first Retry to acquisition, NACK, or attempt end).
	LockWaitTicks *Histogram
	// FootprintLines is the CL footprint size announced at S-CL/NS-CL
	// attempt starts.
	FootprintLines *Histogram
	// NackBurst is the length of a run of consecutive lock NACKs a core
	// absorbed before succeeding or ending the attempt.
	NackBurst *Histogram

	// PolicyOverrides counts aborts whose retry policy overrode the §4.3
	// mechanism proposal (always a serialization to fallback).
	PolicyOverrides *Counter
	// PolicyBackoffTicks is the distribution of non-zero policy backoff
	// delays inserted before retries (on top of the fixed abort penalty).
	PolicyBackoffTicks *Histogram
}

// Instruments returns the registry's standard instrument set, creating the
// series on first use (idempotent; safe for concurrent callers).
func (r *Registry) Instruments() *Instruments {
	r.instOnce.Do(func() { r.inst = newInstruments(r) })
	return r.inst
}

func newInstruments(r *Registry) *Instruments {
	ins := &Instruments{
		RunsStarted:  r.Counter("clear_runs_started_total", "Simulation runs begun with this registry attached."),
		RunsFinished: r.Counter("clear_runs_finished_total", "Simulation runs completed."),
		ActiveRuns:   r.Gauge("clear_active_runs", "Simulation runs currently executing."),
		Invocations:  r.Counter("clear_invocations_total", "AR invocations dequeued."),
		Attempts:     r.Counter("clear_attempts_total", "AR attempts started."),
		Conflicts:    r.Counter("clear_conflicts_total", "Holder-side transactional conflicts."),
		MemLoads:     r.Counter("clear_mem_ops_total", "Completed memory operations.", Label{"kind", "load"}),
		MemStores:    r.Counter("clear_mem_ops_total", "Completed memory operations.", Label{"kind", "store"}),
		LockAcquires: r.Counter("clear_lock_events_total", "Cacheline-lock protocol events.", Label{"outcome", "ok"}),
		LockRetries:  r.Counter("clear_lock_events_total", "Cacheline-lock protocol events.", Label{"outcome", "retry"}),
		LockNacks:    r.Counter("clear_lock_events_total", "Cacheline-lock protocol events.", Label{"outcome", "nack"}),
		Unlocks:      r.Counter("clear_unlocks_total", "Cacheline-lock releases."),
		Evicts:       r.Counter("clear_evicts_total", "L1 sharer/owner evictions."),
		DirAccesses:  r.Counter("clear_dir_accesses_total", "Directory read/write transactions."),
		DirNacks:     r.Counter("clear_dir_nacks_total", "Directory transactions refused by a prioritised holder."),

		AttemptTicksCommit: r.Histogram("clear_attempt_ticks", "Attempt duration in ticks.", Label{"outcome", "commit"}),
		AttemptTicksAbort:  r.Histogram("clear_attempt_ticks", "Attempt duration in ticks.", Label{"outcome", "abort"}),
		InvocationTicks:    r.Histogram("clear_invocation_ticks", "Invocation latency (first attempt start to commit) in ticks."),
		RetryToCommitTicks: r.Histogram("clear_retry_to_commit_ticks", "First abort to commit in ticks (retried invocations only)."),
		LockWaitTicks:      r.Histogram("clear_lock_wait_ticks", "Cacheline-lock wait-edge duration in ticks."),
		FootprintLines:     r.Histogram("clear_footprint_lines", "CL footprint size at S-CL/NS-CL attempt start, in lines."),
		NackBurst:          r.Histogram("clear_nack_burst", "Consecutive lock NACKs absorbed by one core."),

		PolicyOverrides:    r.Counter("clear_policy_overrides_total", "Retry-policy overrides of the mechanism proposal (serializations)."),
		PolicyBackoffTicks: r.Histogram("clear_policy_backoff_ticks", "Non-zero retry-policy backoff delays in ticks."),
	}
	for m := stats.CommitMode(0); m < stats.NumCommitModes; m++ {
		ins.Commits[m] = r.Counter("clear_commits_total", "Committed AR invocations.", Label{"mode", m.String()})
	}
	for rn := 0; rn < reasonOverflow; rn++ {
		ins.Aborts[rn] = r.Counter("clear_aborts_total", "Aborted AR attempts.", Label{"reason", htm.AbortReason(rn).String()})
	}
	ins.Aborts[reasonOverflow] = r.Counter("clear_aborts_total", "Aborted AR attempts.", Label{"reason", "overflow"})
	return ins
}

// coreState is the per-core bookkeeping the collector needs to turn point
// events into durations. Wait tracking uses parallel slices instead of a
// map: a core waits on at most a handful of lines at once, so linear scans
// are cheap and the storage is reused allocation-free across attempts.
type coreState struct {
	invStart   sim.Tick
	attStart   sim.Tick
	firstAbort sim.Tick
	inInv      bool
	inAtt      bool
	aborted    bool
	nackRun    uint64
	waitLine   []mem.LineAddr
	waitStart  []sim.Tick
}

// Collector feeds a run's events into a registry's Instruments. It
// implements cpu.Probe and coherence.Observer; one Collector serves one
// machine (it keeps per-core state), while the underlying registry may be
// shared across many machines.
type Collector struct {
	ins    *Instruments
	engine *sim.Engine
	cores  []coreState
}

// Attach creates a Collector over reg's standard instruments and hooks it
// into m's probe and directory-observer seams (via AddProbe/AddObserver,
// composing with an attached oracle, tracer, or telemetry collector).
func Attach(m *cpu.Machine, reg *Registry) *Collector {
	c := &Collector{
		ins:    reg.Instruments(),
		engine: m.Engine,
		cores:  make([]coreState, len(m.Cores)),
	}
	m.AddProbe(c)
	m.Dir.AddObserver(c)
	return c
}

// now is the current simulated tick.
func (c *Collector) now() sim.Tick { return c.engine.Now() }

// flushWaits closes every open wait edge at tick (the attempt ended or
// committed; a still-waiting core stops waiting either way).
func (c *Collector) flushWaits(s *coreState, tick sim.Tick) {
	for _, start := range s.waitStart {
		c.ins.LockWaitTicks.Observe(uint64(tick - start))
	}
	s.waitLine = s.waitLine[:0]
	s.waitStart = s.waitStart[:0]
	if s.nackRun > 0 {
		c.ins.NackBurst.Observe(s.nackRun)
		s.nackRun = 0
	}
}

// --- cpu.Probe ---

func (c *Collector) OnInvocationStart(core int, progID int) {
	c.ins.Invocations.Inc()
	s := &c.cores[core]
	s.invStart = c.now()
	s.inInv = true
	s.aborted = false
}

func (c *Collector) OnAttemptStart(core int, mode cpu.Mode, attempt int, footprint []mem.LineAddr) {
	c.ins.Attempts.Inc()
	s := &c.cores[core]
	s.attStart = c.now()
	s.inAtt = true
	if mode == cpu.ModeSCL || mode == cpu.ModeNSCL {
		c.ins.FootprintLines.Observe(uint64(len(footprint)))
	}
}

func (c *Collector) OnAttemptEnd(info cpu.AttemptEndInfo) {
	tick := c.now()
	s := &c.cores[info.Core]
	if s.inAtt {
		c.ins.AttemptTicksAbort.Observe(uint64(tick - s.attStart))
		s.inAtt = false
	}
	r := int(info.Reason)
	if r < 0 || r >= reasonOverflow {
		r = reasonOverflow
	}
	c.ins.Aborts[r].Inc()
	if info.Proposed != info.NextMode {
		c.ins.PolicyOverrides.Inc()
	}
	if info.Backoff > 0 {
		c.ins.PolicyBackoffTicks.Observe(uint64(info.Backoff))
	}
	if !s.aborted {
		s.aborted = true
		s.firstAbort = tick
	}
	c.flushWaits(s, tick)
}

func (c *Collector) OnCommit(info cpu.CommitInfo) {
	tick := c.now()
	s := &c.cores[info.Core]
	if s.inAtt {
		c.ins.AttemptTicksCommit.Observe(uint64(tick - s.attStart))
		s.inAtt = false
	}
	if m, ok := commitModeOf(info.Mode); ok {
		c.ins.Commits[m].Inc()
	}
	if s.inInv {
		c.ins.InvocationTicks.Observe(uint64(tick - s.invStart))
		s.inInv = false
	}
	if s.aborted {
		c.ins.RetryToCommitTicks.Observe(uint64(tick - s.firstAbort))
		s.aborted = false
	}
	c.flushWaits(s, tick)
}

func (c *Collector) OnMemAccess(core int, addr mem.Addr, value uint64, isWrite bool, mode cpu.Mode) {
	if isWrite {
		c.ins.MemStores.Inc()
	} else {
		c.ins.MemLoads.Inc()
	}
}

func (c *Collector) OnConflict(core int, line mem.LineAddr, isWrite bool, requester int) {
	c.ins.Conflicts.Inc()
}

// commitModeOf maps the execution mode at commit to the stats commit mode
// (same mapping as stats collection and the trace timeline).
func commitModeOf(m cpu.Mode) (stats.CommitMode, bool) {
	switch m {
	case cpu.ModeSpeculative, cpu.ModeFailedDiscovery:
		return stats.CommitSpeculative, true
	case cpu.ModeSCL:
		return stats.CommitSCL, true
	case cpu.ModeNSCL:
		return stats.CommitNSCL, true
	case cpu.ModeFallback:
		return stats.CommitFallback, true
	}
	return 0, false
}

// --- coherence.Observer ---

func (c *Collector) OnAccess(core int, line mem.LineAddr, isWrite bool, attrs coherence.ReqAttrs, res coherence.AccessResult) {
	c.ins.DirAccesses.Inc()
	if res.Nacked {
		c.ins.DirNacks.Inc()
	}
}

func (c *Collector) OnLock(core int, line mem.LineAddr, res coherence.LockResult) {
	s := &c.cores[core]
	switch {
	case res.Nacked:
		c.ins.LockNacks.Inc()
		s.nackRun++
		c.closeWait(s, line)
	case res.Retry:
		c.ins.LockRetries.Inc()
		for _, l := range s.waitLine {
			if l == line {
				return // wait edge already open
			}
		}
		s.waitLine = append(s.waitLine, line)
		s.waitStart = append(s.waitStart, c.now())
	default:
		c.ins.LockAcquires.Inc()
		c.closeWait(s, line)
		if s.nackRun > 0 {
			c.ins.NackBurst.Observe(s.nackRun)
			s.nackRun = 0
		}
	}
}

// closeWait ends the open wait edge on line, if any, observing its
// duration.
func (c *Collector) closeWait(s *coreState, line mem.LineAddr) {
	for i, l := range s.waitLine {
		if l != line {
			continue
		}
		c.ins.LockWaitTicks.Observe(uint64(c.now() - s.waitStart[i]))
		last := len(s.waitLine) - 1
		s.waitLine[i] = s.waitLine[last]
		s.waitStart[i] = s.waitStart[last]
		s.waitLine = s.waitLine[:last]
		s.waitStart = s.waitStart[:last]
		return
	}
}

func (c *Collector) OnUnlock(core int, line mem.LineAddr) { c.ins.Unlocks.Inc() }

func (c *Collector) OnEvict(core int, line mem.LineAddr) { c.ins.Evicts.Inc() }

var _ cpu.Probe = (*Collector)(nil)
var _ coherence.Observer = (*Collector)(nil)
