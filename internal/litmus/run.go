package litmus

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// maxLitmusTicks bounds one litmus run; programs are a handful of straight-
// line instructions, so hitting this means a liveness bug.
const maxLitmusTicks sim.Tick = 10_000_000

// DefaultSeedCount is the seed sweep width the golden outcome sets and the
// CI conformance job pin (seeds 1..32).
const DefaultSeedCount = 32

// DefaultSeeds returns seeds 1..n.
func DefaultSeeds(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

// RunOpts parameterizes one litmus run.
type RunOpts struct {
	Config harness.ConfigID
	Seed   uint64
	// Fault names an internal/fault preset ("" or "off" = clean run).
	Fault string
	// InjectLostInvalidation plants the conflict-detection bug
	// (cpu.SystemConfig.InjectLostInvalidation) the checker must catch.
	InjectLostInvalidation bool
	// Policy selects the retry policy (zero value = paper-exact default):
	// the memory-model axioms must hold under every policy, including ones
	// that serialize aggressively.
	Policy policy.Spec
	// TraceOut, when non-nil, receives a copy of the raw binary trace.
	TraceOut io.Writer
}

// RunResult is the outcome of one litmus run.
type RunResult struct {
	Test    *Test
	Config  harness.ConfigID
	Seed    uint64
	Fault   string
	Outcome string
	// Forbidden reports that Outcome is outside the SC-allowed set.
	Forbidden bool
	// Verdict is the axiomatic checker's result over the recorded trace.
	Verdict Verdict
	// Err is a machine- or extraction-level failure.
	Err error
}

// Failed reports whether the run shows any problem.
func (r RunResult) Failed() bool {
	return r.Err != nil || r.Forbidden || !r.Verdict.OK()
}

func (r RunResult) String() string {
	head := fmt.Sprintf("%s/%s seed %d", r.Test.Name, r.Config, r.Seed)
	if r.Fault != "" && r.Fault != "off" {
		head += " fault=" + r.Fault
	}
	if !r.Failed() {
		return fmt.Sprintf("%s: ok (%s)", head, r.Outcome)
	}
	var parts []string
	if r.Err != nil {
		parts = append(parts, fmt.Sprintf("run error: %v", r.Err))
	}
	if r.Forbidden {
		parts = append(parts, fmt.Sprintf("FORBIDDEN outcome %q (allowed: %v)", r.Outcome, r.Test.Allowed()))
	}
	if !r.Verdict.OK() {
		parts = append(parts, r.Verdict.String())
	}
	out := head + ": FAILED"
	for _, p := range parts {
		out += "\n  " + p
	}
	return out
}

// systemConfig maps a harness configuration onto the machine config, the
// same toggles the fuzz and harness layers use.
func systemConfig(id harness.ConfigID, cores int, seed uint64, pol policy.Spec) cpu.SystemConfig {
	cfg := cpu.DefaultSystemConfig()
	cfg.Cores = cores
	cfg.CLEAR = id == harness.ConfigC || id == harness.ConfigW
	cfg.PowerTM = id == harness.ConfigP || id == harness.ConfigW
	cfg.StaticLocking = id == harness.ConfigM
	cfg.Seed = seed
	cfg.Policy = pol
	return cfg
}

// faultPlan resolves a preset name, mixing the run seed into the injector's
// seed so each sweep point sees an independent but reproducible fault
// sequence.
func faultPlan(name string, seed uint64) (*fault.Plan, error) {
	if name == "" || name == "off" {
		return nil, nil
	}
	plan, err := fault.PresetPlan(name)
	if err != nil {
		return nil, err
	}
	plan.Seed = plan.Seed*0x9e3779b97f4a7c15 + seed
	return plan, nil
}

// thinkRNG derives the per-run interleaving jitter source. It depends on
// the test and seed but not the config, so all configs face the same
// scheduling pressure for a given seed.
func thinkRNG(t *Test, seed uint64) *sim.RNG {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for _, c := range []byte(t.Name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return sim.NewRNG(h ^ (seed * 0x9e3779b97f4a7c15))
}

// Run executes one litmus test once: build the machine for the config,
// record a full memory-access trace in memory, extract the committed
// execution, check the axioms, and read the observation values out of the
// committed loads.
func Run(t *Test, opts RunOpts) RunResult {
	res := RunResult{Test: t, Config: opts.Config, Seed: opts.Seed, Fault: opts.Fault}

	comp := t.compile()
	cfg := systemConfig(opts.Config, len(t.Threads), opts.Seed, opts.Policy)
	cfg.InjectLostInvalidation = opts.InjectLostInvalidation
	memory := mem.NewMemory(0x100000)
	machine, err := cpu.NewMachine(cfg, memory)
	if err != nil {
		res.Err = err
		return res
	}

	var buf bytes.Buffer
	var w io.Writer = &buf
	if opts.TraceOut != nil {
		w = io.MultiWriter(&buf, opts.TraceOut)
	}
	tr, err := trace.Attach(machine, w, trace.Options{
		Benchmark:   "litmus:" + t.Name,
		Config:      opts.Config.String(),
		Seed:        opts.Seed,
		ARNames:     comp.arNames,
		MemAccesses: true,
	})
	if err != nil {
		res.Err = err
		return res
	}
	plan, err := faultPlan(opts.Fault, opts.Seed)
	if err != nil {
		res.Err = err
		return res
	}
	fault.Attach(machine, plan)

	// Per-invocation think jitter spreads the threads' entry points so the
	// seed sweep explores genuinely different interleavings.
	rng := thinkRNG(t, opts.Seed)
	feeds := make([]cpu.InvocationSource, len(comp.invs))
	for ti, invs := range comp.invs {
		list := make([]cpu.Invocation, len(invs))
		for k, inv := range invs {
			inv.Think = sim.Tick(rng.Intn(400))
			list[k] = inv
		}
		feeds[ti] = &cpu.SliceSource{Invs: list}
	}
	machine.AttachFeeds(feeds)

	runErr := machine.Run(maxLitmusTicks)
	if err := tr.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		res.Err = runErr
		return res
	}

	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		res.Err = err
		return res
	}
	events, err := rd.ReadAll()
	if err != nil {
		res.Err = err
		return res
	}

	res.Verdict = CheckEvents(events, CheckOpts{AddrName: t.AddrName})
	ars := trace.CommittedARs(events)
	res.Outcome, res.Err = t.outcomeFromARs(ars, comp)
	if res.Err == nil {
		res.Forbidden = !t.AllowedSet()[res.Outcome]
	}
	return res
}

// outcomeFromARs binds the committed load values to the test's observation
// names: per core, the k-th committed load is the k-th load of that thread
// in program order (litmus programs are straight-line and every region
// commits exactly once).
func (t *Test) outcomeFromARs(ars []trace.CommittedAR, comp *compiled) (string, error) {
	loads := make([][]uint64, len(t.Threads))
	for _, ar := range ars {
		if ar.Core >= len(t.Threads) {
			return "", fmt.Errorf("litmus: commit on core %d beyond the test's %d threads", ar.Core, len(t.Threads))
		}
		for _, a := range ar.Accesses {
			if !a.IsWrite {
				loads[ar.Core] = append(loads[ar.Core], a.Value)
			}
		}
	}
	vals := map[string]uint64{}
	for ti := range t.Threads {
		if len(loads[ti]) != len(comp.loadObs[ti]) {
			return "", fmt.Errorf("litmus: thread %d committed %d loads, program has %d",
				ti, len(loads[ti]), len(comp.loadObs[ti]))
		}
		for k, obs := range comp.loadObs[ti] {
			vals[obs] = loads[ti][k]
		}
	}
	return t.FormatOutcome(vals), nil
}

// SweepOpts parameterizes an outcome-set sweep.
type SweepOpts struct {
	Tests   []*Test
	Configs []harness.ConfigID
	Seeds   []uint64
	// Fault names one preset applied to every run ("", "off" = clean).
	Fault string
	// InjectLostInvalidation plants the conflict-detection bug in every run.
	InjectLostInvalidation bool
	// Policy is the retry policy applied to every run of the sweep.
	Policy policy.Spec
	// TraceSink, when non-nil, is called per run to obtain a trace copy
	// destination (nil return = no copy). The CLI maps it to -trace-out.
	TraceSink func(test string, cfg harness.ConfigID, seed uint64) io.WriteCloser
}

// CellResult aggregates one (test, config) cell of a sweep.
type CellResult struct {
	Test     *Test
	Config   harness.ConfigID
	Outcomes map[string]int // outcome -> observation count across seeds
	Failures []RunResult    // failing runs only
}

// Sweep runs the outcome-set collection: every test × config × seed, under
// one fault preset, diffing each observed outcome against the allowed set
// and checking the axioms on every run.
func Sweep(opts SweepOpts) []CellResult {
	var out []CellResult
	for _, t := range opts.Tests {
		for _, cfg := range opts.Configs {
			cell := CellResult{Test: t, Config: cfg, Outcomes: map[string]int{}}
			for _, seed := range opts.Seeds {
				ro := RunOpts{
					Config:                 cfg,
					Seed:                   seed,
					Fault:                  opts.Fault,
					InjectLostInvalidation: opts.InjectLostInvalidation,
				}
				var sink io.WriteCloser
				if opts.TraceSink != nil {
					sink = opts.TraceSink(t.Name, cfg, seed)
					if sink != nil {
						ro.TraceOut = sink
					}
				}
				r := Run(t, ro)
				if sink != nil {
					sink.Close()
				}
				if r.Outcome != "" {
					cell.Outcomes[r.Outcome]++
				}
				if r.Failed() {
					cell.Failures = append(cell.Failures, r)
				}
			}
			out = append(out, cell)
		}
	}
	return out
}

// ObservedOutcomes returns the cell's outcome set, sorted.
func (c CellResult) ObservedOutcomes() []string {
	out := make([]string, 0, len(c.Outcomes))
	for o := range c.Outcomes {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Failed reports whether any run of the cell failed.
func (c CellResult) Failed() bool { return len(c.Failures) > 0 }
