package litmus

import "sync"

// The corpus: the canonical communication shapes (the memalloy exec_H
// executions are the reference encodings) in two variants each:
//
//   - split: every op is its own single-op atomic region, probing the
//     machine's op-level interleaving (the machine is SC at AR granularity,
//     so single-op regions make it SC at op granularity);
//   - +ar: the ops of each thread grouped into one atomic region, probing
//     region atomicity (store-queue forwarding, conflict detection, and
//     single-serialization-point commit).
//
// Store values are small distinct non-zero integers per location, so
// reads-from resolution by value is exact and outcomes read naturally.

var (
	corpusOnce sync.Once
	corpus     []*Test
	corpusByID map[string]*Test
)

func buildCorpus() []*Test {
	return []*Test{
		{
			Name: "sb", Doc: "store buffering: W x; R y || W y; R x",
			Threads: []Thread{
				split(St("x", 1), Ld("y", "r0")),
				split(St("y", 1), Ld("x", "r1")),
			},
			Forbidden: []string{"r0=0 r1=0"},
		},
		{
			Name: "sb+ar", Doc: "store buffering, each thread one AR",
			Threads: []Thread{
				atomic(St("x", 1), Ld("y", "r0")),
				atomic(St("y", 1), Ld("x", "r1")),
			},
			Forbidden: []string{"r0=0 r1=0", "r0=1 r1=1"},
		},
		{
			Name: "lb", Doc: "load buffering: R x; W y || R y; W x",
			Threads: []Thread{
				split(Ld("x", "r0"), St("y", 1)),
				split(Ld("y", "r1"), St("x", 1)),
			},
			Forbidden: []string{"r0=1 r1=1"},
		},
		{
			Name: "lb+ar", Doc: "load buffering, each thread one AR",
			Threads: []Thread{
				atomic(Ld("x", "r0"), St("y", 1)),
				atomic(Ld("y", "r1"), St("x", 1)),
			},
			Forbidden: []string{"r0=1 r1=1"},
		},
		{
			Name: "mp", Doc: "message passing: W x; W y || R y; R x",
			Threads: []Thread{
				split(St("x", 1), St("y", 1)),
				split(Ld("y", "r0"), Ld("x", "r1")),
			},
			Forbidden: []string{"r0=1 r1=0"},
		},
		{
			Name: "mp+ar", Doc: "message passing, each thread one AR",
			Threads: []Thread{
				atomic(St("x", 1), St("y", 1)),
				atomic(Ld("y", "r0"), Ld("x", "r1")),
			},
			Forbidden: []string{"r0=1 r1=0", "r0=0 r1=1"},
		},
		{
			Name: "iriw", Doc: "independent reads of independent writes",
			Threads: []Thread{
				split(St("x", 1)),
				split(St("y", 1)),
				split(Ld("x", "r0"), Ld("y", "r1")),
				split(Ld("y", "r2"), Ld("x", "r3")),
			},
			Forbidden: []string{"r0=1 r1=0 r2=1 r3=0"},
		},
		{
			Name: "iriw+ar", Doc: "IRIW with atomic reader pairs",
			Threads: []Thread{
				split(St("x", 1)),
				split(St("y", 1)),
				atomic(Ld("x", "r0"), Ld("y", "r1")),
				atomic(Ld("y", "r2"), Ld("x", "r3")),
			},
			Forbidden: []string{"r0=1 r1=0 r2=1 r3=0", "r0=0 r1=1 r2=0 r3=1"},
		},
		{
			Name: "corr", Doc: "coherence, read-read: reads of x must not go backwards",
			Threads: []Thread{
				split(St("x", 1)),
				split(Ld("x", "r0"), Ld("x", "r1")),
			},
			Forbidden: []string{"r0=1 r1=0"},
		},
		{
			Name: "corr+ar", Doc: "coherence read-read with an atomic reader pair",
			Threads: []Thread{
				split(St("x", 1)),
				atomic(Ld("x", "r0"), Ld("x", "r1")),
			},
			Forbidden: []string{"r0=1 r1=0", "r0=0 r1=1"},
		},
		{
			Name: "coww", Doc: "coherence, write-write: store order of one thread is co order",
			Threads: []Thread{
				split(St("x", 1), St("x", 2)),
				split(Ld("x", "r0"), Ld("x", "r1")),
			},
			Forbidden: []string{"r0=2 r1=1"},
		},
		{
			Name: "coww+ar", Doc: "atomic double store: the intermediate value must be invisible",
			Threads: []Thread{
				atomic(St("x", 1), St("x", 2)),
				atomic(Ld("x", "r0"), Ld("x", "r1")),
			},
			Forbidden: []string{"r0=1 r1=1", "r0=1 r1=2", "r0=2 r1=1"},
		},
		{
			Name: "cowr", Doc: "coherence, write-read: a read after own write sees it or newer",
			Threads: []Thread{
				split(St("x", 1), Ld("x", "r0")),
				split(St("x", 2)),
			},
			Forbidden: []string{"r0=0"},
		},
		{
			Name: "cowr+ar", Doc: "store-queue forwarding: an atomic W-then-R must read its own store",
			Threads: []Thread{
				atomic(St("x", 1), Ld("x", "r0")),
				atomic(St("x", 2)),
			},
			Forbidden: []string{"r0=0", "r0=2"},
		},
		{
			Name: "corw", Doc: "coherence, read-write: a read must not see the own later write",
			Threads: []Thread{
				split(Ld("x", "r0"), St("x", 1)),
				split(St("x", 2)),
			},
			Forbidden: []string{"r0=1"},
		},
		{
			Name: "corw+ar", Doc: "atomic R-then-W against a concurrent writer",
			Threads: []Thread{
				atomic(Ld("x", "r0"), St("x", 1)),
				atomic(St("x", 2)),
			},
			Forbidden: []string{"r0=1"},
		},
	}
}

// Corpus returns the litmus tests in presentation order.
func Corpus() []*Test {
	corpusOnce.Do(func() {
		corpus = buildCorpus()
		corpusByID = make(map[string]*Test, len(corpus))
		for _, t := range corpus {
			t.ensureMeta()
			corpusByID[t.Name] = t
		}
	})
	return corpus
}

// Lookup resolves a test by name (nil if unknown).
func Lookup(name string) *Test {
	Corpus()
	return corpusByID[name]
}
