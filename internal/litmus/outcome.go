package litmus

// enumerate computes the allowed outcome set by exhaustive interleaving of
// the threads' atomic regions under sequential consistency: the machine
// commits each AR at a single serialization point, so any interleaving of
// whole ARs (respecting per-thread program order) is allowed and nothing
// else is. Litmus tests are tiny (≤ 8 regions), so plain DFS suffices.
func (t *Test) enumerate() map[string]bool {
	t.ensureMeta()
	memv := map[string]uint64{} // absent = initial 0
	obsv := map[string]uint64{}
	pos := make([]int, len(t.Threads))
	out := map[string]bool{}

	var rec func()
	rec = func() {
		done := true
		for ti, th := range t.Threads {
			if pos[ti] >= len(th) {
				continue
			}
			done = false
			ar := th[pos[ti]]

			// Execute the AR atomically, remembering what it overwrote.
			type saved struct {
				key string
				val uint64
				obs bool
			}
			var undo []saved
			for _, op := range ar {
				if op.IsStore {
					undo = append(undo, saved{key: op.Loc, val: memv[op.Loc]})
					memv[op.Loc] = op.Val
				} else {
					undo = append(undo, saved{key: op.Obs, val: obsv[op.Obs], obs: true})
					obsv[op.Obs] = memv[op.Loc]
				}
			}

			pos[ti]++
			rec()
			pos[ti]--

			for i := len(undo) - 1; i >= 0; i-- {
				if undo[i].obs {
					obsv[undo[i].key] = undo[i].val
				} else {
					memv[undo[i].key] = undo[i].val
				}
			}
		}
		if done {
			out[t.FormatOutcome(obsv)] = true
		}
	}
	rec()
	return out
}
