package litmus

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Synthetic committed executions exercise the checker without a machine:
// each case hand-builds the CommittedARs a trace would yield.

const (
	synX = mem.Addr(0x20000)
	synY = mem.Addr(0x20040)
)

func ld(a mem.Addr, v uint64) trace.MemAccess {
	return trace.MemAccess{Addr: a, Value: v}
}

func st(a mem.Addr, v uint64) trace.MemAccess {
	return trace.MemAccess{Addr: a, Value: v, IsWrite: true}
}

func mkAR(core, seq int, accs ...trace.MemAccess) trace.CommittedAR {
	for i := range accs {
		accs[i].Seq = seq*100 + i
		accs[i].Tick = sim.Tick(seq*100 + i)
	}
	return trace.CommittedAR{
		Core: core, ProgID: seq + 1, Mode: cpu.ModeSpeculative,
		CommitSeq: seq, CommitTick: sim.Tick(seq * 100),
		Accesses: accs,
	}
}

func violationKinds(v Verdict) []string {
	var out []string
	for _, vi := range v.Violations {
		out = append(out, vi.Kind)
	}
	return out
}

// TestCheckCleanExecution: a serialized MP execution conforms.
func TestCheckCleanExecution(t *testing.T) {
	v := CheckARs([]trace.CommittedAR{
		mkAR(0, 0, st(synX, 1), st(synY, 1)),
		mkAR(1, 1, ld(synY, 1), ld(synX, 1)),
	}, CheckOpts{})
	if !v.OK() {
		t.Fatalf("clean execution flagged: %s", v)
	}
	if v.ARs != 2 || v.Loads != 2 || v.Stores != 2 {
		t.Fatalf("counts: %+v", v)
	}
}

// TestCheckLostInvalidationCycle: the SB-shaped execution a lost
// invalidation produces — both regions committed reading the initial
// values — must yield a serializability cycle of two fr edges, even though
// the final memory (x=1, y=1) matches a serial replay.
func TestCheckLostInvalidationCycle(t *testing.T) {
	v := CheckARs([]trace.CommittedAR{
		mkAR(0, 0, st(synX, 1), ld(synY, 0)),
		mkAR(1, 1, st(synY, 1), ld(synX, 0)),
	}, CheckOpts{})
	if v.OK() {
		t.Fatal("stale-read execution passed the checker")
	}
	kinds := violationKinds(v)
	if len(kinds) != 1 || kinds[0] != KindSerializability {
		t.Fatalf("violations %v, want exactly [%s]", kinds, KindSerializability)
	}
	cyc := v.Violations[0].Cycle
	if len(cyc) != 2 {
		t.Fatalf("witness cycle has %d edges, want the minimal 2:\n%s", len(cyc), strings.Join(cyc, "\n"))
	}
	for _, e := range cyc {
		if !strings.Contains(e, "--fr[") {
			t.Errorf("expected fr edge, got %q", e)
		}
	}
}

// TestCheckCoherenceCycle: a read-read inversion (CoRR) inside one region
// is a per-location po-loc ∪ rf ∪ co ∪ fr cycle.
func TestCheckCoherenceCycle(t *testing.T) {
	v := CheckARs([]trace.CommittedAR{
		mkAR(0, 0, st(synX, 1)),
		mkAR(1, 1, ld(synX, 1), ld(synX, 0)),
	}, CheckOpts{})
	if v.OK() {
		t.Fatal("CoRR inversion passed the checker")
	}
	found := false
	for _, vi := range v.Violations {
		if vi.Kind == KindCoherence {
			found = true
			if len(vi.Cycle) == 0 {
				t.Error("coherence violation carries no witness cycle")
			}
		}
	}
	if !found {
		t.Fatalf("no coherence violation among %v", violationKinds(v))
	}
}

// TestCheckForwardingViolation: a load after the region's own store must
// observe it (store-queue forwarding).
func TestCheckForwardingViolation(t *testing.T) {
	v := CheckARs([]trace.CommittedAR{
		mkAR(0, 0, st(synX, 5), ld(synX, 7)),
	}, CheckOpts{})
	kinds := violationKinds(v)
	if len(kinds) == 0 || kinds[0] != KindForwarding {
		t.Fatalf("violations %v, want %s first", kinds, KindForwarding)
	}
}

// TestCheckThinAirRead: a value no store wrote and that is not initial.
func TestCheckThinAirRead(t *testing.T) {
	v := CheckARs([]trace.CommittedAR{
		mkAR(0, 0, ld(synX, 9)),
	}, CheckOpts{})
	kinds := violationKinds(v)
	if len(kinds) != 1 || kinds[0] != KindThinAir {
		t.Fatalf("violations %v, want [%s]", kinds, KindThinAir)
	}
}

// TestCheckInitialImage: with a non-zero initial image the same load is an
// init read and conforms.
func TestCheckInitialImage(t *testing.T) {
	v := CheckARs([]trace.CommittedAR{
		mkAR(0, 0, ld(synX, 9)),
	}, CheckOpts{Initial: func(a mem.Addr) uint64 {
		if a == synX {
			return 9
		}
		return 0
	}})
	if !v.OK() {
		t.Fatalf("init read flagged: %s", v)
	}
}

// TestCheckAmbiguousLoadsExcluded: duplicate store values make rf
// unresolvable; the checker counts the load ambiguous instead of guessing
// (no false violations on non-unique-value workloads).
func TestCheckAmbiguousLoadsExcluded(t *testing.T) {
	v := CheckARs([]trace.CommittedAR{
		mkAR(0, 0, st(synX, 5)),
		mkAR(1, 1, st(synX, 5)),
		mkAR(0, 2, ld(synX, 5)),
	}, CheckOpts{})
	if !v.OK() {
		t.Fatalf("ambiguous execution flagged: %s", v)
	}
	if v.AmbiguousLoads != 1 {
		t.Fatalf("AmbiguousLoads = %d, want 1", v.AmbiguousLoads)
	}
}

// TestCheckEventsCommitOrder: a stream whose commit records go backwards in
// time is corrupt and reported as such.
func TestCheckEventsCommitOrder(t *testing.T) {
	events := []trace.Event{
		{Tick: 50, Kind: trace.KindCommit, Core: 0},
		{Tick: 10, Kind: trace.KindCommit, Core: 1},
	}
	v := CheckEvents(events, CheckOpts{})
	found := false
	for _, vi := range v.Violations {
		if vi.Kind == KindCommitOrder {
			found = true
		}
	}
	if !found {
		t.Fatalf("no commit-order violation among %v", violationKinds(v))
	}
}

// TestWitnessNamesLocations: the runner's AddrName hook renders litmus
// location names in witnesses.
func TestWitnessNamesLocations(t *testing.T) {
	tt := Lookup("sb+ar")
	v := CheckARs([]trace.CommittedAR{
		mkAR(0, 0, st(tt.AddrOf("x"), 1), ld(tt.AddrOf("y"), 0)),
		mkAR(1, 1, st(tt.AddrOf("y"), 1), ld(tt.AddrOf("x"), 0)),
	}, CheckOpts{AddrName: tt.AddrName})
	if v.OK() {
		t.Fatal("expected a violation")
	}
	w := strings.Join(v.Violations[0].Cycle, "\n")
	if !strings.Contains(w, "fr[x]") && !strings.Contains(w, "fr[y]") {
		t.Fatalf("witness does not name locations:\n%s", w)
	}
}
