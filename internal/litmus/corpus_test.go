package litmus

import (
	"strings"
	"testing"
)

// TestCorpusWellFormed pins the structural invariants every test relies on:
// distinct locations per line, observed loads, unique store values.
func TestCorpusWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, tt := range Corpus() {
		if names[tt.Name] {
			t.Fatalf("duplicate test name %q", tt.Name)
		}
		names[tt.Name] = true
		if len(tt.Threads) < 2 {
			t.Errorf("%s: %d threads, want >= 2", tt.Name, len(tt.Threads))
		}
		if len(tt.Observations()) == 0 {
			t.Errorf("%s: no observations", tt.Name)
		}
		if Lookup(tt.Name) != tt {
			t.Errorf("Lookup(%q) did not return the corpus test", tt.Name)
		}
	}
	if Lookup("no-such-test") != nil {
		t.Error("Lookup of an unknown name returned a test")
	}
}

// TestForbiddenOutcomesExcluded asserts the documented forbidden outcomes
// are outside the SC-enumerated allowed set — the enumerator agreeing with
// the literature on every shape.
func TestForbiddenOutcomesExcluded(t *testing.T) {
	for _, tt := range Corpus() {
		if len(tt.Forbidden) == 0 {
			t.Errorf("%s: no forbidden outcomes documented", tt.Name)
		}
		allowed := tt.AllowedSet()
		for _, f := range tt.Forbidden {
			if allowed[f] {
				t.Errorf("%s: forbidden outcome %q is in the allowed set %v", tt.Name, f, tt.Allowed())
			}
		}
	}
}

// TestEnumeratedSets pins the allowed sets of the canonical shapes against
// hand-derived expectations (SC at AR granularity).
func TestEnumeratedSets(t *testing.T) {
	want := map[string][]string{
		// Split SB is op-level SC: only all-zero is excluded.
		"sb": {"r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"},
		// Atomic SB: the two regions serialize, one must see the other.
		"sb+ar": {"r0=0 r1=1", "r0=1 r1=0"},
		// Atomic LB: a region cannot observe the other's write and be
		// unobserved itself.
		"lb+ar": {"r0=0 r1=1", "r0=1 r1=0"},
		// Atomic MP: the reader sees both writes or neither.
		"mp+ar": {"r0=0 r1=0", "r0=1 r1=1"},
		// Atomic double store: the intermediate value is invisible.
		"coww+ar": {"r0=0 r1=0", "r0=2 r1=2"},
		// SQ forwarding: the atomic W-then-R always reads its own store.
		"cowr+ar": {"r0=1"},
	}
	for name, exp := range want {
		tt := Lookup(name)
		if tt == nil {
			t.Fatalf("corpus lost test %q", name)
		}
		got := strings.Join(tt.Allowed(), " ; ")
		if got != strings.Join(exp, " ; ") {
			t.Errorf("%s allowed set:\n  got  %s\n  want %s", name, got, strings.Join(exp, " ; "))
		}
	}
}

// TestIRIWAllowsAllButForbidden sanity-checks the largest enumerations.
// Split IRIW forbids exactly the one assignment where the readers disagree
// on the write order (15 of 16 allowed); atomic reader pairs turn every
// snapshot into an order witness, excluding its mirror image too (14).
func TestIRIWAllowsAllButForbidden(t *testing.T) {
	split := Lookup("iriw").AllowedSet()
	if len(split) != 15 {
		t.Fatalf("iriw allowed %d outcomes, want 15: %v", len(split), Lookup("iriw").Allowed())
	}
	if split["r0=1 r1=0 r2=1 r3=0"] {
		t.Error("iriw allows the disagreeing-readers outcome")
	}
	ar := Lookup("iriw+ar").AllowedSet()
	if len(ar) != 14 {
		t.Fatalf("iriw+ar allowed %d outcomes, want 14: %v", len(ar), Lookup("iriw+ar").Allowed())
	}
	for _, f := range []string{"r0=1 r1=0 r2=1 r3=0", "r0=0 r1=1 r2=0 r3=1"} {
		if ar[f] {
			t.Errorf("iriw+ar allows %q", f)
		}
	}
}
