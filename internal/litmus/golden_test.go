package litmus

import (
	"os"
	"testing"

	"repro/internal/harness"
)

// TestGoldenOutcomeSets byte-compares the observed outcome set of every
// corpus test per config against the checked-in goldens (seeds
// 1..DefaultSeedCount, clean). Regenerate with
// `go run ./cmd/clearlitmus run -update-golden`.
func TestGoldenOutcomeSets(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep skipped in -short")
	}
	cells := Sweep(SweepOpts{
		Tests:   Corpus(),
		Configs: harness.AllConfigs,
		Seeds:   DefaultSeeds(DefaultSeedCount),
	})
	for _, cell := range cells {
		if cell.Failed() {
			t.Errorf("%s/%s: golden sweep has failures, first:\n%s",
				cell.Test.Name, cell.Config, cell.Failures[0])
		}
	}
	for _, cfg := range harness.AllConfigs {
		path := GoldenPath("testdata", cfg)
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (regenerate with clearlitmus run -update-golden): %v", path, err)
		}
		if got := GoldenContent(cfg, cells); got != string(want) {
			t.Errorf("outcome sets for config %s drifted from %s\n--- got ---\n%s--- want ---\n%s"+
				"(regenerate with `go run ./cmd/clearlitmus run -update-golden` if the change is intended)",
				cfg, path, got, want)
		}
	}
}

// TestGoldenAllowedSets pins the enumerator output (config-independent).
func TestGoldenAllowedSets(t *testing.T) {
	path := AllowedGoldenPath("testdata")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s: %v", path, err)
	}
	if got := AllowedGoldenContent(); got != string(want) {
		t.Errorf("allowed sets drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
