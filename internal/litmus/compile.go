package litmus

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// compiled is a test lowered onto the mini-ISA: one program per atomic
// region, one invocation list per thread, and the mapping needed to read
// the observation values back out of the trace.
type compiled struct {
	// progs in (thread, region) order; IDs are 1-based and unique.
	progs []*isa.Program
	// invs[thread] is the thread's invocation list (Think is filled in by
	// the runner, per seed).
	invs [][]cpu.Invocation
	// loadObs[thread] names the observation of each load of the thread in
	// program order — the k-th committed load of core `thread` in the trace
	// binds the k-th name.
	loadObs [][]string
	// arNames maps program id -> name for the trace header.
	arNames map[int]string
}

// compile lowers the test. Each op becomes an address materialization plus
// the access itself; observation registers are a trace-level concept (the
// machine resets registers between invocations, so observations are
// extracted from the committed load events, not from register state).
func (t *Test) compile() *compiled {
	c := &compiled{arNames: make(map[int]string)}
	id := 1
	for ti, th := range t.Threads {
		var invs []cpu.Invocation
		var obs []string
		for ai, ar := range th {
			name := fmt.Sprintf("%s/t%d/ar%d", t.Name, ti, ai)
			b := isa.NewBuilder(name)
			for _, op := range ar {
				addr := t.AddrOf(op.Loc)
				if op.IsStore {
					b.Li(isa.R1, int64(addr))
					b.Li(isa.R2, int64(op.Val))
					b.Store(isa.R1, 0, isa.R2)
				} else {
					b.Li(isa.R1, int64(addr))
					b.Load(isa.R3, isa.R1, 0)
					obs = append(obs, op.Obs)
				}
			}
			b.Halt()
			prog := b.Build(id)
			c.arNames[id] = name
			id++
			c.progs = append(c.progs, prog)
			invs = append(invs, cpu.Invocation{Prog: prog})
		}
		c.invs = append(c.invs, invs)
		c.loadObs = append(c.loadObs, obs)
	}
	return c
}
