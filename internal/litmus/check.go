package litmus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The axiomatic checker. From the committed execution extracted out of a
// trace stream (trace.CommittedARs) it derives the classic relations —
//
//	po  per-core order of committed regions / accesses
//	rf  reads-from, resolved exactly by value matching (the corpus and the
//	    tagged fuzz generator write a distinct value per store; loads whose
//	    value matches several stores are counted ambiguous and excluded)
//	co  coherence order: for each location, the order stores reach memory.
//	    Speculative and CL commits drain their store queue synchronously at
//	    the commit record's stream position and fallback stores write
//	    through under the global lock, so stream order of the covering
//	    commits (with intra-region program order as tie-break) is the
//	    memory order — co is total by construction, and the axioms below
//	    decide whether it is *consistent* with what the loads observed
//	fr  from-reads: rf⁻¹ ; co
//
// and checks the two axioms the machine promises:
//
//	coherence       for every location, po-loc ∪ rf ∪ co ∪ fr is acyclic
//	                (SC per location, access granularity)
//	serializability po ∪ rf ∪ co ∪ fr over whole committed regions is
//	                acyclic (the AR-granularity SC the paper's single-
//	                serialization-point commit provides)
//
// On violation the minimal witness cycle is reported edge by edge. The
// point of deriving rf from observed values rather than replaying: a lost
// invalidation lets a region commit a read of an overwritten value, which
// shows up here as an fr edge pointing backwards in commit order (a cycle)
// even when the final memory image equals a serial replay's.

// Violation kinds.
const (
	// KindForwarding: a load after a same-region store to the same address
	// did not observe that store (store-queue forwarding broke).
	KindForwarding = "sq-forwarding"
	// KindThinAir: a load observed a value no store wrote and that is not
	// the location's initial value.
	KindThinAir = "thin-air-read"
	// KindCoherence: po-loc ∪ rf ∪ co ∪ fr has a cycle at one location.
	KindCoherence = "coherence"
	// KindSerializability: po ∪ rf ∪ co ∪ fr over committed regions has a
	// cycle.
	KindSerializability = "serializability"
	// KindCommitOrder: commit records were not tick-monotonic in stream
	// order (the stream itself is corrupt).
	KindCommitOrder = "commit-order"
)

// maxViolations caps the report; pathological streams would otherwise
// produce one violation per access.
const maxViolations = 16

// Violation is one axiom failure with its rendered witness.
type Violation struct {
	Kind string
	Msg  string
	// Cycle is the minimal witness cycle, one rendered edge per line
	// (empty for non-cycle violations).
	Cycle []string
}

func (v Violation) String() string {
	s := v.Kind + ": " + v.Msg
	if len(v.Cycle) > 0 {
		s += "\n      " + strings.Join(v.Cycle, "\n      ")
	}
	return s
}

// Verdict is the checker's result over one execution.
type Verdict struct {
	ARs    int
	Loads  int
	Stores int
	// AmbiguousLoads were excluded from rf/fr derivation because their
	// value matched more than one store (streams from workloads without
	// unique store values); they weaken coverage but never produce false
	// violations.
	AmbiguousLoads int
	Violations     []Violation
	// Truncated reports that violations beyond maxViolations were dropped.
	Truncated bool
}

// OK reports whether the execution conforms.
func (v Verdict) OK() bool { return len(v.Violations) == 0 && !v.Truncated }

func (v Verdict) String() string {
	if v.OK() {
		amb := ""
		if v.AmbiguousLoads > 0 {
			amb = fmt.Sprintf(", %d ambiguous loads excluded", v.AmbiguousLoads)
		}
		return fmt.Sprintf("conformant: %d committed ARs, %d loads, %d stores%s",
			v.ARs, v.Loads, v.Stores, amb)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "NOT conformant: %d violation(s) over %d committed ARs",
		len(v.Violations), v.ARs)
	if v.Truncated {
		b.WriteString(" (truncated)")
	}
	for _, vi := range v.Violations {
		fmt.Fprintf(&b, "\n  %s", vi)
	}
	return b.String()
}

// CheckOpts parameterizes a check.
type CheckOpts struct {
	// Initial gives the initial memory contents (nil = all zero). Needed
	// to resolve loads that executed before any store to their location.
	Initial func(mem.Addr) uint64
	// AddrName renders addresses in witnesses (nil = hex). The litmus
	// runner plugs in location names here.
	AddrName func(mem.Addr) string
}

// CheckEvents extracts the committed execution from an event stream and
// checks it. The stream must carry memory accesses (Options.MemAccesses).
func CheckEvents(events []trace.Event, o CheckOpts) Verdict {
	v := CheckARs(trace.CommittedARs(events), o)
	var prev sim.Tick
	for _, e := range events {
		if e.Kind != trace.KindCommit {
			continue
		}
		if e.Tick < prev {
			v.add(Violation{Kind: KindCommitOrder, Msg: fmt.Sprintf(
				"commit at tick %d after commit at tick %d in stream order", e.Tick, prev)})
		}
		prev = e.Tick
	}
	return v
}

func (v *Verdict) add(vi Violation) {
	if len(v.Violations) >= maxViolations {
		v.Truncated = true
		return
	}
	v.Violations = append(v.Violations, vi)
}

// rf source classification of one load.
const (
	srcNone = iota // thin air: matches nothing
	srcAmbiguous
	srcInit
	srcStore
)

type accRef struct{ ar, idx int }

type rfInfo struct {
	kind     int
	src      accRef // valid for srcStore
	internal bool   // source is a same-region earlier store (SQ forwarding)
}

// edge is one relation edge in a (node-indexed) graph.
type edge struct {
	from, to int
	kind     string
	addr     mem.Addr
	addrName string
	hasAddr  bool
}

// CheckARs checks an already-extracted committed execution.
func CheckARs(ars []trace.CommittedAR, o CheckOpts) Verdict {
	initial := o.Initial
	if initial == nil {
		initial = func(mem.Addr) uint64 { return 0 }
	}
	aname := o.AddrName
	if aname == nil {
		aname = mem.Addr.String
	}

	v := Verdict{ARs: len(ars)}

	// Index every store by address, in (commit order, program order) —
	// which is exactly the coherence order (see the package comment).
	storesAt := map[mem.Addr][]accRef{}
	var addrs []mem.Addr
	seenAddr := map[mem.Addr]bool{}
	for ai, ar := range ars {
		for i, a := range ar.Accesses {
			if !seenAddr[a.Addr] {
				seenAddr[a.Addr] = true
				addrs = append(addrs, a.Addr)
			}
			if a.IsWrite {
				v.Stores++
				storesAt[a.Addr] = append(storesAt[a.Addr], accRef{ai, i})
			} else {
				v.Loads++
			}
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	// Resolve rf for every load.
	rfs := make([][]rfInfo, len(ars))
	for ai, ar := range ars {
		rfs[ai] = make([]rfInfo, len(ar.Accesses))
		for i, a := range ar.Accesses {
			if a.IsWrite {
				continue
			}
			// Same-region earlier store: the store queue must forward it.
			fwd := -1
			for j := i - 1; j >= 0; j-- {
				if ar.Accesses[j].IsWrite && ar.Accesses[j].Addr == a.Addr {
					fwd = j
					break
				}
			}
			if fwd >= 0 {
				rfs[ai][i] = rfInfo{kind: srcStore, src: accRef{ai, fwd}, internal: true}
				if want := ar.Accesses[fwd].Value; want != a.Value {
					v.add(Violation{Kind: KindForwarding, Msg: fmt.Sprintf(
						"%s: load %s=%d did not forward the region's own store %s=%d",
						ars[ai], aname(a.Addr), a.Value, aname(a.Addr), want)})
				}
				continue
			}
			// External read: match by value against other regions' stores
			// and the initial image.
			var cands []accRef
			for _, s := range storesAt[a.Addr] {
				if s.ar != ai && ars[s.ar].Accesses[s.idx].Value == a.Value {
					cands = append(cands, s)
				}
			}
			fromInit := initial(a.Addr) == a.Value
			switch {
			case len(cands) == 0 && !fromInit:
				rfs[ai][i] = rfInfo{kind: srcNone}
				v.add(Violation{Kind: KindThinAir, Msg: fmt.Sprintf(
					"%s: load %s=%d matches no store and not the initial value %d",
					ars[ai], aname(a.Addr), a.Value, initial(a.Addr))})
			case len(cands) == 0:
				rfs[ai][i] = rfInfo{kind: srcInit}
			case len(cands) == 1 && !fromInit:
				rfs[ai][i] = rfInfo{kind: srcStore, src: cands[0]}
			default:
				rfs[ai][i] = rfInfo{kind: srcAmbiguous}
				v.AmbiguousLoads++
			}
		}
	}

	// Per-location coherence: po-loc ∪ rf ∪ co ∪ fr acyclic at access
	// granularity, with a virtual node for the initial value.
	for _, a := range addrs {
		if cyc := coherenceCycle(ars, rfs, a); cyc != nil {
			v.add(Violation{
				Kind: KindCoherence,
				Msg: fmt.Sprintf("SC-per-location violated at %s: %d-edge cycle in po-loc ∪ rf ∪ co ∪ fr",
					aname(a), len(cyc.edges)),
				Cycle: cyc.render(),
			})
		}
	}

	// AR-granularity serializability: po ∪ rf ∪ co ∪ fr over committed
	// regions acyclic.
	if cyc := serializabilityCycle(ars, rfs, storesAt, aname); cyc != nil {
		v.add(Violation{
			Kind: KindSerializability,
			Msg: fmt.Sprintf("committed regions are not serializable: %d-edge cycle in po ∪ rf ∪ co ∪ fr",
				len(cyc.edges)),
			Cycle: cyc.render(),
		})
	}
	return v
}

// witness couples a cycle with its node renderer.
type witness struct {
	edges []edge
	label func(int) string
}

func (w *witness) render() []string {
	out := make([]string, 0, len(w.edges))
	for _, e := range w.edges {
		rel := e.kind
		if e.hasAddr {
			rel = fmt.Sprintf("%s[%s]", e.kind, e.addrName)
		}
		out = append(out, fmt.Sprintf("%s --%s--> %s", w.label(e.from), rel, w.label(e.to)))
	}
	return out
}

// serializabilityCycle builds the AR-level graph and hunts for a cycle.
func serializabilityCycle(ars []trace.CommittedAR, rfs [][]rfInfo, storesAt map[mem.Addr][]accRef, aname func(mem.Addr) string) *witness {
	n := len(ars)
	adj := make([][]edge, n)
	add := func(from, to int, kind string, addr mem.Addr, hasAddr bool) {
		if from == to {
			return
		}
		e := edge{from: from, to: to, kind: kind, addr: addr, hasAddr: hasAddr}
		if hasAddr {
			e.addrName = aname(addr)
		}
		adj[from] = append(adj[from], e)
	}

	// po: per-core commit order (cores are sequential, so this is program
	// order over regions).
	last := map[int]int{}
	for ai, ar := range ars {
		if p, ok := last[ar.Core]; ok {
			add(p, ai, "po", 0, false)
		}
		last[ar.Core] = ai
	}

	// co: per location, the distinct writer regions in commit order.
	writers := map[mem.Addr][]int{}
	writerPos := map[mem.Addr]map[int]int{}
	for a, ss := range storesAt {
		pos := map[int]int{}
		var ws []int
		for _, s := range ss {
			if _, dup := pos[s.ar]; !dup {
				pos[s.ar] = len(ws)
				ws = append(ws, s.ar)
			}
		}
		writers[a], writerPos[a] = ws, pos
		for k := 0; k+1 < len(ws); k++ {
			add(ws[k], ws[k+1], "co", a, true)
		}
	}

	// rf (external) and fr.
	for ai, ar := range ars {
		for i, acc := range ar.Accesses {
			if acc.IsWrite {
				continue
			}
			rf := rfs[ai][i]
			switch rf.kind {
			case srcStore:
				if rf.internal {
					continue // own-store forward: covered by co reachability
				}
				add(rf.src.ar, ai, "rf", acc.Addr, true)
				// fr: the first writer coherence-after the source that is
				// not this region (the co chain covers the rest).
				ws := writers[acc.Addr]
				for k := writerPos[acc.Addr][rf.src.ar] + 1; k < len(ws); k++ {
					if ws[k] != ai {
						add(ai, ws[k], "fr", acc.Addr, true)
						break
					}
				}
			case srcInit:
				// Read the initial value: every writer is coherence-after.
				for _, w := range writers[acc.Addr] {
					if w != ai {
						add(ai, w, "fr", acc.Addr, true)
						break
					}
				}
			}
		}
	}

	cyc := shortestCycle(n, adj)
	if cyc == nil {
		return nil
	}
	return &witness{edges: cyc, label: func(i int) string { return ars[i].String() }}
}

// coherenceCycle builds the access-level graph of one location and hunts
// for a cycle. Node 0 is the virtual initial store; accesses follow in
// (commit order, program order).
func coherenceCycle(ars []trace.CommittedAR, rfs [][]rfInfo, a mem.Addr) *witness {
	type node struct {
		ref  accRef
		init bool
	}
	nodes := []node{{init: true}}
	id := map[accRef]int{}
	for ai, ar := range ars {
		for i, acc := range ar.Accesses {
			if acc.Addr == a {
				id[accRef{ai, i}] = len(nodes)
				nodes = append(nodes, node{ref: accRef{ai, i}})
			}
		}
	}
	if len(nodes) <= 2 {
		return nil // one access cannot form a cycle with init
	}
	adj := make([][]edge, len(nodes))
	add := func(from, to int, kind string) {
		if from != to {
			adj[from] = append(adj[from], edge{from: from, to: to, kind: kind})
		}
	}

	// po-loc: per core, accesses to a in (commit, program) order.
	lastByCore := map[int]int{}
	// co: stores in (commit, program) order, chained from init.
	prevStore := 0
	var stores []int
	for ni := 1; ni < len(nodes); ni++ {
		r := nodes[ni].ref
		acc := ars[r.ar].Accesses[r.idx]
		core := ars[r.ar].Core
		if p, ok := lastByCore[core]; ok {
			add(p, ni, "po-loc")
		}
		lastByCore[core] = ni
		if acc.IsWrite {
			add(prevStore, ni, "co")
			prevStore = ni
			stores = append(stores, ni)
		}
	}

	// rf and fr from the resolved sources.
	for ni := 1; ni < len(nodes); ni++ {
		r := nodes[ni].ref
		acc := ars[r.ar].Accesses[r.idx]
		if acc.IsWrite {
			continue
		}
		var srcNode int
		switch rfs[r.ar][r.idx].kind {
		case srcStore:
			srcNode = id[rfs[r.ar][r.idx].src]
		case srcInit:
			srcNode = 0
		default:
			continue // ambiguous or thin air: no edges
		}
		add(srcNode, ni, "rf")
		// fr: the next store in co after the source.
		for _, s := range stores {
			if s > srcNode {
				add(ni, s, "fr")
				break
			}
		}
	}

	cyc := shortestCycle(len(nodes), adj)
	if cyc == nil {
		return nil
	}
	label := func(i int) string {
		if nodes[i].init {
			return "initial value"
		}
		r := nodes[i].ref
		acc := ars[r.ar].Accesses[r.idx]
		op := "ld"
		if acc.IsWrite {
			op = "st"
		}
		return fmt.Sprintf("core %d %s =%d @%d (inv#%d)",
			ars[r.ar].Core, op, acc.Value, acc.Tick, ars[r.ar].CommitSeq)
	}
	return &witness{edges: cyc, label: label}
}

// shortestCycle returns a minimal-length cycle of the graph, or nil if it
// is acyclic: BFS from every node, closing the cycle on the first edge back
// to the start. Litmus graphs have tens of nodes, so the quadratic hunt is
// fine — and it only runs when a run is already doomed or tiny.
func shortestCycle(n int, adj [][]edge) []edge {
	var best []edge
	for s := 0; s < n; s++ {
		pe := make([]*edge, n)
		vis := make([]bool, n)
		vis[s] = true
		queue := []int{s}
		var found []edge
		for len(queue) > 0 && found == nil {
			u := queue[0]
			queue = queue[1:]
			for k := range adj[u] {
				e := adj[u][k]
				if e.to == s {
					found = append(found, e)
					for v := u; v != s; {
						p := pe[v]
						found = append(found, *p)
						v = p.from
					}
					for i, j := 0, len(found)-1; i < j; i, j = i+1, j-1 {
						found[i], found[j] = found[j], found[i]
					}
					break
				}
				if !vis[e.to] {
					vis[e.to] = true
					ec := e
					pe[e.to] = &ec
					queue = append(queue, e.to)
				}
			}
		}
		if found != nil && (best == nil || len(found) < len(best)) {
			best = found
		}
	}
	return best
}
