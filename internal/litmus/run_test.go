package litmus

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/harness"
)

// testSeeds keeps the in-package sweep quick; the 32-seed acceptance sweep
// runs via golden_test.go and CI's clearlitmus job.
func testSeeds(t *testing.T) []uint64 {
	if testing.Short() {
		return DefaultSeeds(2)
	}
	return DefaultSeeds(6)
}

// TestCorpusConformance: the full corpus passes outcome-set diffing and the
// axiomatic checker on every config, clean.
func TestCorpusConformance(t *testing.T) {
	cells := Sweep(SweepOpts{
		Tests:   Corpus(),
		Configs: harness.AllConfigs,
		Seeds:   testSeeds(t),
	})
	for _, cell := range cells {
		if cell.Failed() {
			t.Errorf("%s/%s: %d failing runs, first:\n%s",
				cell.Test.Name, cell.Config, len(cell.Failures), cell.Failures[0])
		}
		if len(cell.Outcomes) == 0 {
			t.Errorf("%s/%s: no outcomes observed", cell.Test.Name, cell.Config)
		}
	}
}

// TestCorpusConformanceUnderFaults: conformance holds under fault injection
// (faults may abort and retry regions, never corrupt committed order).
func TestCorpusConformanceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep skipped in -short")
	}
	cells := Sweep(SweepOpts{
		Tests:   Corpus(),
		Configs: []harness.ConfigID{harness.ConfigB, harness.ConfigW},
		Seeds:   DefaultSeeds(4),
		Fault:   "default",
	})
	for _, cell := range cells {
		if cell.Failed() {
			t.Errorf("%s/%s under faults: first failure:\n%s",
				cell.Test.Name, cell.Config, cell.Failures[0])
		}
	}
}

// TestRunDeterminism: a run is a pure function of (test, config, seed).
func TestRunDeterminism(t *testing.T) {
	tt := Lookup("mp+ar")
	opts := RunOpts{Config: harness.ConfigC, Seed: 7}
	a := Run(tt, opts)
	b := Run(tt, opts)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("run errors: %v / %v", a.Err, b.Err)
	}
	if a.Outcome != b.Outcome {
		t.Fatalf("outcome not deterministic: %q vs %q", a.Outcome, b.Outcome)
	}
	if !reflect.DeepEqual(a.Verdict, b.Verdict) {
		t.Fatalf("verdict not deterministic:\n%s\nvs\n%s", a.Verdict, b.Verdict)
	}
}

// TestOutcomeDiversity: the seed sweep must actually explore interleavings —
// sb (split) has three allowed outcomes and a modest sweep should observe
// more than one.
func TestOutcomeDiversity(t *testing.T) {
	if testing.Short() {
		t.Skip("diversity check skipped in -short")
	}
	cells := Sweep(SweepOpts{
		Tests:   []*Test{Lookup("sb")},
		Configs: []harness.ConfigID{harness.ConfigB},
		Seeds:   DefaultSeeds(16),
	})
	if n := len(cells[0].Outcomes); n < 2 {
		t.Errorf("sb/B observed only %d outcome(s) over 16 seeds: %v",
			n, cells[0].ObservedOutcomes())
	}
}

// TestPlantedLostInvalidationCaught: with the planted conflict-detection bug
// (a speculative holder yields a line without aborting), the axiomatic
// checker must flag at least one run per test with a witness cycle. These
// (test, config) pairs were chosen because serial replay of the final memory
// image alone would NOT catch them on every seed — stores are immediates, so
// the corrupted interleaving can still produce the serial final state.
func TestPlantedLostInvalidationCaught(t *testing.T) {
	for _, name := range []string{"lb+ar", "mp+ar"} {
		tt := Lookup(name)
		caught := false
		for _, seed := range DefaultSeeds(16) {
			r := Run(tt, RunOpts{
				Config:                 harness.ConfigB,
				Seed:                   seed,
				InjectLostInvalidation: true,
			})
			if r.Err != nil {
				t.Fatalf("%s seed %d: run error: %v", name, seed, r.Err)
			}
			if !r.Verdict.OK() {
				caught = true
				v := r.Verdict.Violations[0]
				if len(v.Cycle) == 0 {
					t.Errorf("%s seed %d: violation %q has no witness cycle", name, seed, v.Kind)
				}
				for _, e := range v.Cycle {
					if !strings.Contains(e, "-->") {
						t.Errorf("%s seed %d: malformed witness edge %q", name, seed, e)
					}
				}
				break
			}
		}
		if !caught {
			t.Errorf("%s: planted lost-invalidation bug never caught over 16 seeds", name)
		}
	}
}

// TestCleanMachineNoInjection: sanity inverse of the planted-bug test — the
// same sweep without injection is clean.
func TestCleanMachineNoInjection(t *testing.T) {
	for _, name := range []string{"lb+ar", "mp+ar"} {
		tt := Lookup(name)
		for _, seed := range DefaultSeeds(4) {
			r := Run(tt, RunOpts{Config: harness.ConfigB, Seed: seed})
			if r.Failed() {
				t.Errorf("clean run failed:\n%s", r)
			}
		}
	}
}
