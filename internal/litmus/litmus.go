// Package litmus is the memory-model conformance suite of the simulator: a
// corpus of classic litmus shapes (SB, LB, MP, IRIW, and the CoXX coherence
// tests, each in a split and an atomic-region variant) expressed as
// deterministic mini-ISA workloads, an axiomatic checker that extracts the
// po/rf/co/fr relations of a recorded execution from the binary trace
// stream and verifies per-location coherence (acyclic po-loc ∪ rf ∪ co ∪
// fr) and AR-granularity serializability (acyclic po ∪ rf ∪ co ∪ fr over
// committed regions), and an outcome-set collector that sweeps each test
// across configurations, seeds, and fault presets and diffs the observed
// outcome set against the SC-enumerated allowed set.
//
// The machine under test commits atomic regions at a single serialization
// point, so its allowed behaviour is sequential consistency at AR
// granularity: the allowed outcome set of a test is computed by exhaustive
// enumeration of AR interleavings (outcome.go), with no per-architecture
// annotations. The checker is strictly stronger than the fuzz package's
// final-memory serial replay: a lost invalidation or a stale store-queue
// forward can produce a final memory image identical to a serial replay
// while the extracted execution graph carries an fr/co cycle — the checker
// reports that cycle as the witness.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
)

// Base is the address of the first litmus location. Each named location
// occupies its own cacheline (location i lives at Base + i*LineSize), so
// every inter-thread communication in a test is a genuine coherence event.
// It sits apart from the fuzz pool (0x10000) and the machine allocator base
// (0x100000).
const Base mem.Addr = 0x20000

// Op is one memory operation of a litmus thread: a store of an immediate to
// a named location, or a load observed under a named observation register.
type Op struct {
	Loc     string
	IsStore bool
	// Val is the stored immediate. Within one test, every store to a given
	// location writes a distinct non-zero value, so reads-from resolution
	// by value matching is exact.
	Val uint64
	// Obs names the observation register of a load ("r0", "r1", ...);
	// outcomes are rendered as obs=value assignments.
	Obs string
}

// St builds a store op.
func St(loc string, val uint64) Op { return Op{Loc: loc, IsStore: true, Val: val} }

// Ld builds an observed load op.
func Ld(loc, obs string) Op { return Op{Loc: loc, Obs: obs} }

func (o Op) String() string {
	if o.IsStore {
		return fmt.Sprintf("st %s=%d", o.Loc, o.Val)
	}
	return fmt.Sprintf("ld %s->%s", o.Loc, o.Obs)
}

// AR is one atomic region: its ops execute atomically.
type AR []Op

// Thread is one hardware thread's sequence of atomic regions.
type Thread []AR

// split wraps each op in its own single-op atomic region.
func split(ops ...Op) Thread {
	th := make(Thread, len(ops))
	for i, op := range ops {
		th[i] = AR{op}
	}
	return th
}

// atomic wraps all ops into one atomic region.
func atomic(ops ...Op) Thread { return Thread{AR(ops)} }

// Test is one litmus test: named threads of atomic regions plus the
// documented forbidden outcomes. The allowed outcome set is not declared —
// it is computed by SC enumeration at AR granularity (the machine's
// contract) and pinned by the golden files.
type Test struct {
	Name string
	// Doc is a one-line description (shown by clearlitmus list).
	Doc     string
	Threads []Thread
	// Forbidden lists the famous forbidden outcomes of the shape — the
	// ones a weaker model would admit. They are asserted to be outside the
	// enumerated allowed set (corpus_test.go) and double as documentation.
	Forbidden []string

	locs    []string // locations in first-appearance order
	obs     []string // observation names in thread/op order
	allowed []string // SC-enumerated outcomes, sorted (lazy)
}

// Locations returns the test's named locations in first-appearance order;
// location i is placed at Base + i*LineSize.
func (t *Test) Locations() []string {
	t.ensureMeta()
	return t.locs
}

// Observations returns the observation register names in thread/op order
// (the order outcome strings render them in).
func (t *Test) Observations() []string {
	t.ensureMeta()
	return t.obs
}

// AddrOf returns the address of a named location.
func (t *Test) AddrOf(loc string) mem.Addr {
	for i, l := range t.Locations() {
		if l == loc {
			return Base + mem.Addr(i)*mem.LineSize
		}
	}
	panic(fmt.Sprintf("litmus: %s: unknown location %q", t.Name, loc))
}

// AddrName resolves an address back to its location name (for witness
// rendering); unknown addresses render as hex.
func (t *Test) AddrName(a mem.Addr) string {
	for i, l := range t.Locations() {
		if Base+mem.Addr(i)*mem.LineSize == a {
			return l
		}
	}
	return a.String()
}

func (t *Test) ensureMeta() {
	if t.locs != nil {
		return
	}
	seenLoc := map[string]bool{}
	seenObs := map[string]bool{}
	locs := []string{}
	obs := []string{}
	for ti, th := range t.Threads {
		for _, ar := range th {
			for _, op := range ar {
				if !seenLoc[op.Loc] {
					seenLoc[op.Loc] = true
					locs = append(locs, op.Loc)
				}
				if op.IsStore {
					continue
				}
				if op.Obs == "" {
					panic(fmt.Sprintf("litmus: %s: thread %d has an unobserved load", t.Name, ti))
				}
				if seenObs[op.Obs] {
					panic(fmt.Sprintf("litmus: %s: duplicate observation %q", t.Name, op.Obs))
				}
				seenObs[op.Obs] = true
				obs = append(obs, op.Obs)
			}
		}
	}
	// Unique non-zero store values per location make value-based rf
	// resolution exact; the corpus constructor enforces it.
	vals := map[string]map[uint64]bool{}
	for _, th := range t.Threads {
		for _, ar := range th {
			for _, op := range ar {
				if !op.IsStore {
					continue
				}
				if op.Val == 0 {
					panic(fmt.Sprintf("litmus: %s: store of 0 to %s (0 is the initial value)", t.Name, op.Loc))
				}
				if vals[op.Loc] == nil {
					vals[op.Loc] = map[uint64]bool{}
				}
				if vals[op.Loc][op.Val] {
					panic(fmt.Sprintf("litmus: %s: duplicate store value %d to %s", t.Name, op.Val, op.Loc))
				}
				vals[op.Loc][op.Val] = true
			}
		}
	}
	t.locs = locs
	t.obs = obs
}

// FormatOutcome renders an observation assignment canonically: obs=value
// pairs in Observations() order, space-separated.
func (t *Test) FormatOutcome(vals map[string]uint64) string {
	parts := make([]string, 0, len(t.Observations()))
	for _, o := range t.Observations() {
		parts = append(parts, fmt.Sprintf("%s=%d", o, vals[o]))
	}
	return strings.Join(parts, " ")
}

// Allowed returns the sorted SC-allowed outcome set (AR granularity).
func (t *Test) Allowed() []string {
	if t.allowed == nil {
		set := t.enumerate()
		t.allowed = make([]string, 0, len(set))
		for o := range set {
			t.allowed = append(t.allowed, o)
		}
		sort.Strings(t.allowed)
	}
	return t.allowed
}

// AllowedSet returns the allowed outcomes as a set.
func (t *Test) AllowedSet() map[string]bool {
	set := make(map[string]bool, len(t.Allowed()))
	for _, o := range t.Allowed() {
		set[o] = true
	}
	return set
}
