package litmus

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/harness"
)

// Golden outcome-set files pin the observed outcome set of every corpus
// test per configuration, for the default sweep (seeds 1..DefaultSeedCount,
// clean): one file per config under internal/litmus/testdata, byte-compared
// by golden_test.go and regenerated with `clearlitmus run -update-golden`.
// They guard two things at once: the machine's interleaving behaviour per
// config (a scheduling or policy change that widens/narrows the observed
// set shows up as a diff) and the enumerator's allowed sets (allowed.golden).

// GoldenPath returns the golden file path of one config under dir.
func GoldenPath(dir string, cfg harness.ConfigID) string {
	return filepath.Join(dir, fmt.Sprintf("outcomes_%s.golden", cfg))
}

// AllowedGoldenPath returns the path of the enumerator pin file under dir.
func AllowedGoldenPath(dir string) string {
	return filepath.Join(dir, "allowed.golden")
}

// GoldenContent renders the outcome sets of one config's sweep cells.
func GoldenContent(cfg harness.ConfigID, cells []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# litmus outcome sets, config %s, seeds 1..%d, clean\n", cfg, DefaultSeedCount)
	fmt.Fprintf(&b, "# regenerate: go run ./cmd/clearlitmus run -update-golden\n")
	for _, cell := range cells {
		if cell.Config != cfg {
			continue
		}
		fmt.Fprintf(&b, "%s: %s\n", cell.Test.Name, strings.Join(cell.ObservedOutcomes(), " | "))
	}
	return b.String()
}

// AllowedGoldenContent renders the SC-enumerated allowed set of every
// corpus test (config-independent).
func AllowedGoldenContent() string {
	var b strings.Builder
	b.WriteString("# litmus SC-allowed outcome sets (AR-granularity enumeration)\n")
	b.WriteString("# regenerate: go run ./cmd/clearlitmus run -update-golden\n")
	for _, t := range Corpus() {
		fmt.Fprintf(&b, "%s: %s\n", t.Name, strings.Join(t.Allowed(), " | "))
	}
	return b.String()
}
