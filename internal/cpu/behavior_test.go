package cpu

import (
	"testing"

	"repro/internal/htm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

// ptrProg follows a pointer at slot R0 and increments the word behind it —
// an indirection, so CLEAR can convert it to S-CL but never NS-CL.
func ptrProg(id int) *isa.Program {
	b := isa.NewBuilder("test/ptr-add")
	b.Load(isa.R8, isa.R0, 0)
	b.Load(isa.R9, isa.R8, 0)
	b.Addi(isa.R9, isa.R9, 1)
	b.Store(isa.R8, 0, isa.R9)
	b.Halt()
	return b.Build(id)
}

// wideProg writes n distinct cachelines starting at R0.
func wideProg(id, n int) *isa.Program {
	b := isa.NewBuilder("test/wide")
	for i := 0; i < n; i++ {
		off := int64(i * mem.LineSize)
		b.Load(isa.R8, isa.R0, off)
		b.Addi(isa.R8, isa.R8, 1)
		b.Store(isa.R0, off, isa.R8)
	}
	b.Halt()
	return b.Build(id)
}

// buildMachine wires cores feeds of identical invocations.
func buildMachine(t *testing.T, cfg SystemConfig, memory *mem.Memory, inv Invocation, cores, ops int) *Machine {
	t.Helper()
	cfg.Cores = cores
	m, err := NewMachine(cfg, memory)
	if err != nil {
		t.Fatal(err)
	}
	feeds := make([]InvocationSource, cores)
	for i := range feeds {
		invs := make([]Invocation, ops)
		for j := range invs {
			invs[j] = inv
		}
		feeds[i] = &SliceSource{Invs: invs}
	}
	m.AttachFeeds(feeds)
	return m
}

// TestSCLConversionOnIndirection: a contended AR with an indirection
// converts to S-CL (not NS-CL) and stops falling back.
func TestSCLConversionOnIndirection(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	slot := memory.AllocLine()
	target := memory.AllocLine()
	memory.WriteWord(slot, uint64(target))

	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: ptrProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(slot)}},
	}, 8, 40)
	if err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CommitsByMode[stats.CommitSCL] == 0 {
		t.Fatal("indirection AR never committed in S-CL")
	}
	if m.Stats.CommitsByMode[stats.CommitNSCL] != 0 {
		t.Fatal("indirection AR committed in NS-CL despite the indirection bit")
	}
	if got := memory.ReadWord(target); got != 8*40 {
		t.Fatalf("counter %d, want %d", got, 8*40)
	}
}

// TestCapacityAbortGoesToFallback: an AR whose store set exceeds the SQ can
// never complete speculatively; decision 0 sends it to the fallback path,
// where it must still commit correctly.
func TestCapacityAbortGoesToFallback(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	cfg.SQEntries = 8
	const width = 12 // stores > SQEntries
	base := memory.Alloc(width*mem.LineSize, mem.LineSize)

	m := buildMachine(t, cfg, memory, Invocation{
		Prog: wideProg(1, width),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(base)}},
	}, 2, 10)
	if err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CommitsByMode[stats.CommitFallback] != m.Stats.Commits {
		t.Fatalf("only %d/%d commits took the fallback path",
			m.Stats.CommitsByMode[stats.CommitFallback], m.Stats.Commits)
	}
	if m.Stats.AbortsByBucket[htm.BucketOthers] == 0 {
		t.Fatal("no capacity aborts recorded")
	}
	for i := 0; i < width; i++ {
		if got := memory.ReadWord(base + mem.Addr(i*mem.LineSize)); got != 2*10 {
			t.Fatalf("line %d = %d, want 20", i, got)
		}
	}
}

// TestALTOverflowStaysSpeculative: a footprint wider than the ALT (but
// within the SQ) is non-convertible; with CLEAR on it must never enter a CL
// mode, and the ERT should disable discovery after the first overflow.
func TestALTOverflowStaysSpeculative(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	const width = 40 // > 32 ALT entries, < 72 SQ entries
	base := memory.Alloc(width*mem.LineSize, mem.LineSize)

	m := buildMachine(t, cfg, memory, Invocation{
		Prog: wideProg(1, width),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(base)}},
	}, 4, 15)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CommitsByMode[stats.CommitSCL]+m.Stats.CommitsByMode[stats.CommitNSCL] != 0 {
		t.Fatal("over-wide AR entered a CL mode")
	}
	for i := 0; i < width; i++ {
		if got := memory.ReadWord(base + mem.Addr(i*mem.LineSize)); got != 4*15 {
			t.Fatalf("line %d = %d, want 60", i, got)
		}
	}
}

// TestDeterminism: identical parameters yield identical statistics.
func TestDeterminism(t *testing.T) {
	run := func() (stats.Run, uint64) {
		memory := mem.NewMemory(0x10000)
		x := memory.AllocLine()
		cfg := DefaultSystemConfig()
		cfg.CLEAR = true
		cfg.PowerTM = true
		cfg.Seed = 77
		m := buildMachine(t, cfg, memory, Invocation{
			Prog: counterProg(1),
			Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
		}, 6, 50)
		if err := m.Run(200_000_000); err != nil {
			t.Fatal(err)
		}
		return *m.Stats, memory.ReadWord(x)
	}
	s1, v1 := run()
	s2, v2 := run()
	if v1 != v2 || s1.Cycles != s2.Cycles || s1.Commits != s2.Commits ||
		s1.Aborts != s2.Aborts || s1.CommitsByMode != s2.CommitsByMode ||
		s1.AbortsByBucket != s2.AbortsByBucket || s1.Instructions != s2.Instructions ||
		s1.AbortedInstructions != s2.AbortedInstructions || s1.LatencyHist != s2.LatencyHist {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", s1, s2)
	}
}

// TestDiscoveryContinuationAblation: with failed-mode continuation disabled,
// a contended immutable AR cannot learn its footprint and never converts.
func TestDiscoveryContinuationAblation(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	cfg.DisableDiscoveryContinuation = true
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: counterProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 8, 40)
	if err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if cl := m.Stats.CommitsByMode[stats.CommitSCL] + m.Stats.CommitsByMode[stats.CommitNSCL]; cl != 0 {
		t.Fatalf("%d CL-mode commits despite disabled discovery continuation", cl)
	}
	if got := memory.ReadWord(x); got != 8*40 {
		t.Fatalf("counter %d, want %d", got, 8*40)
	}
}

// TestExplicitFallbackClassification: threads that find the fallback lock
// taken record Explicit Fallback aborts (Figure 11's taxonomy).
func TestExplicitFallbackClassification(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	cfg := DefaultSystemConfig()
	cfg.RetryLimit = 1
	cfg.SQEntries = 4 // wide AR overflows instantly -> constant fallback
	const width = 8
	base := memory.Alloc(width*mem.LineSize, mem.LineSize)
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: wideProg(1, width),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(base)}},
	}, 8, 10)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.AbortsByBucket[htm.BucketExplicitFallback] == 0 {
		t.Fatal("no explicit-fallback aborts under a fallback-saturated workload")
	}
}

// TestFig1Instrumentation: an immutable single-line AR under contention
// produces retry pairs that are overwhelmingly small-and-unchanged.
func TestFig1Instrumentation(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: counterProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 8, 60)
	if err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.RetryPairs == 0 {
		t.Fatal("no retry pairs observed under contention")
	}
	ratio := float64(m.Stats.ImmutableSmallPairs) / float64(m.Stats.RetryPairs)
	if ratio < 0.9 {
		t.Fatalf("immutable-footprint ratio %.2f for an immutable AR, want ~1", ratio)
	}
}

// TestPowerTMReducesFallbacks: under heavy contention PowerTM should commit
// at least as many transactions outside the fallback path as the baseline.
func TestPowerTMReducesFallbacks(t *testing.T) {
	run := func(powertm bool) uint64 {
		memory := mem.NewMemory(0x10000)
		x := memory.AllocLine()
		cfg := DefaultSystemConfig()
		cfg.PowerTM = powertm
		cfg.RetryLimit = 2
		m := buildMachine(t, cfg, memory, Invocation{
			Prog: counterProg(1),
			Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
		}, 16, 40)
		if err := m.Run(400_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Stats.CommitsByMode[stats.CommitFallback]
	}
	base := run(false)
	power := run(true)
	if power > base {
		t.Fatalf("PowerTM increased fallbacks: %d vs baseline %d", power, base)
	}
}

// TestThinkTimeDelaysStart: invocation think time postpones the AR.
func TestThinkTimeDelaysStart(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.Cores = 1
	m, err := NewMachine(cfg, memory)
	if err != nil {
		t.Fatal(err)
	}
	inv := Invocation{
		Prog:  counterProg(1),
		Regs:  []RegInit{{Reg: isa.R0, Val: uint64(x)}},
		Think: 10_000,
	}
	m.AttachFeeds([]InvocationSource{&SliceSource{Invs: []Invocation{inv}}})
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Cycles < 10_000 {
		t.Fatalf("run finished in %d cycles despite 10k think time", m.Stats.Cycles)
	}
}
