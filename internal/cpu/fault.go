package cpu

import "repro/internal/sim"

// FaultHook is the cpu-layer fault-injection seam. The machine consults it
// (when installed) at the points where the retry-control state machine is
// most sensitive to environmental interference. All answers must be
// deterministic functions of the injector's private RNG so runs stay
// reproducible.
//
// Every hook models a *tolerable* disturbance — a denied token, an early
// abort, a stalled holder — except ForceSecondSpecRetry, which plants the
// single-retry-bound bug on purpose so campaigns can prove the watchdog and
// oracle detect it.
type FaultHook interface {
	// DenyPowerClaim refuses a PowerTM token claim for core (a periodic
	// denial window); the retry proceeds without priority.
	DenyPowerClaim(core int) bool
	// SpuriousAbort kills core's first speculative attempt before it
	// executes (interrupt / TLB shootdown inside the window).
	SpuriousAbort(core int) bool
	// PreemptHolder returns extra ticks to stall core's lock walk after a
	// successful acquisition (lock-holder preemption); zero means no fault.
	PreemptHolder(core int) sim.Tick
	// ForceSecondSpecRetry makes core take a second plain speculative retry
	// after a convertible discovery assessment — the planted §4.3 bug.
	ForceSecondSpecRetry(core int) bool
}

// SetFaultHook installs (or, with nil, removes) the cpu-layer fault hook.
// Nil by default: each consultation site pays one pointer comparison.
func (m *Machine) SetFaultHook(h FaultHook) { m.fault = h }
