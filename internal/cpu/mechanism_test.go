package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

// TestERTDisablesDiscoveryAfterOverflow: once an AR's footprint overflows
// the speculation window, its ERT entry goes non-convertible and later
// invocations skip discovery entirely (no further discovery runs for it).
func TestERTDisablesDiscoveryAfterOverflow(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	const width = 40 // > ALT's 32
	base := memory.Alloc(width*mem.LineSize, mem.LineSize)
	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	cfg.Cores = 2
	m, err := NewMachine(cfg, memory)
	if err != nil {
		t.Fatal(err)
	}
	inv := Invocation{Prog: wideProg(1, width), Regs: []RegInit{{Reg: isa.R0, Val: uint64(base)}}}
	feeds := make([]InvocationSource, 2)
	for i := range feeds {
		invs := make([]Invocation, 30)
		for j := range invs {
			invs[j] = inv
		}
		feeds[i] = &SliceSource{Invs: invs}
	}
	m.AttachFeeds(feeds)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	// Both cores conflicted on the shared lines repeatedly, but each core's
	// ERT should have latched non-convertible after its first overflowing
	// discovery, so discovery runs stay far below the abort count.
	if m.Stats.DiscoveryRuns > uint64(cfg.Cores) {
		t.Fatalf("%d discovery runs; ERT should have disabled discovery after ~%d",
			m.Stats.DiscoveryRuns, cfg.Cores)
	}
	for _, c := range m.Cores {
		if e := c.ert.Peek(1); e == nil || e.IsConvertible {
			t.Fatal("AR still marked convertible after window overflow")
		}
	}
}

// TestCRTLearnsConflictingRead: an S-CL execution whose non-locked read gets
// invalidated records the line in the CRT, and the next S-CL attempt locks
// it (observable as a wider lock set).
func TestCRTLearnsConflictingRead(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	slot := memory.AllocLine()   // pointer slot (read-only indirection)
	target := memory.AllocLine() // the contended data everyone writes
	memory.WriteWord(slot, uint64(target))

	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: ptrProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(slot)}},
	}, 8, 60)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	// Under contention every S-CL locks the target (written); the pointer
	// slot is read-only. A write to the slot never happens, so the slot
	// should NOT accumulate in CRTs; the mechanism is observed through the
	// lock counts: locked lines per S-CL commit stays small (target +
	// possibly slot after nack learning).
	if m.Stats.CommitsByMode[stats.CommitSCL] == 0 {
		t.Fatal("no S-CL commits to observe")
	}
	perCommit := float64(m.Stats.LinesLocked) / float64(m.Stats.SCLAttempts)
	if perCommit > 2.5 {
		t.Fatalf("S-CL locks %.1f lines per attempt; CRT is over-learning", perCommit)
	}
	if got := memory.ReadWord(target); got != 8*60 {
		t.Fatalf("counter %d, want %d", got, 8*60)
	}
}

// TestFallbackLockSerializesWithCL: while a CL-mode execution holds the
// fallback read lock, a thread that exhausted its retries must wait for the
// writer lock; everything still completes and no lock leaks.
func TestFallbackLockSerializesWithCL(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	cfg.RetryLimit = 1
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: counterProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 16, 30)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Fallback.WriterHeld() || !m.Fallback.Readers().Empty() {
		t.Fatal("fallback lock leaked")
	}
	if m.Dir.LockedLines() != 0 {
		t.Fatal("cacheline locks leaked")
	}
	if got := memory.ReadWord(x); got != 16*30 {
		t.Fatalf("counter %d, want %d", got, 16*30)
	}
}

// TestOtherFallbackAbortType: speculative transactions interrupted by a
// thread taking the fallback lock record Other Fallback aborts.
func TestOtherFallbackAbortType(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.RetryLimit = 1 // frequent fallback
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: counterProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 16, 30)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.AbortsByBucket[2] == 0 { // other-fallback
		t.Fatal("no other-fallback aborts despite heavy fallback traffic")
	}
}

// TestRetryLimitRespected: commits never record more conflict-retries than
// the configured limit (fallback-type aborts excepted by design).
func TestRetryLimitRespected(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.RetryLimit = 3
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: counterProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 12, 40)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	for r := cfg.RetryLimit + 1; r <= stats.MaxRetryTrack; r++ {
		if m.Stats.CommitsByRetries[r] != 0 {
			t.Fatalf("commit recorded at retry %d with limit %d", r, cfg.RetryLimit)
		}
	}
}

// TestMachineValidation: invalid configurations are rejected.
func TestMachineValidation(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	for _, tweak := range []func(*SystemConfig){
		func(c *SystemConfig) { c.Cores = 0 },
		func(c *SystemConfig) { c.Cores = 65 },
		func(c *SystemConfig) { c.RetryLimit = 0 },
		func(c *SystemConfig) { c.SQEntries = 0 },
	} {
		cfg := DefaultSystemConfig()
		tweak(&cfg)
		if _, err := NewMachine(cfg, memory); err == nil {
			t.Errorf("invalid config %+v accepted", cfg)
		}
	}
}

// TestFuncSource: the adapter feeds until it reports done.
func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func() (Invocation, bool) {
		if n >= 3 {
			return Invocation{}, false
		}
		n++
		return Invocation{}, true
	})
	count := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Fatalf("FuncSource yielded %d, want 3", count)
	}
}

// TestStaticLockingMode: under the §2.2 static-locking configuration, an AR
// with a computable footprint commits exclusively via cacheline locking with
// zero aborts, while an indirection AR runs on the speculative baseline.
func TestStaticLockingMode(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.StaticLocking = true
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: counterProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 8, 30)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CommitsByMode[stats.CommitNSCL] != m.Stats.Commits {
		t.Fatalf("commit modes %v, want all NS-CL", m.Stats.CommitsByMode)
	}
	if m.Stats.Aborts != 0 {
		t.Fatalf("%d aborts under static locking, want 0 (no speculation)", m.Stats.Aborts)
	}
	if got := memory.ReadWord(x); got != 8*30 {
		t.Fatalf("counter %d, want %d", got, 8*30)
	}

	// Indirection AR: footprint not computable -> speculative baseline.
	memory2 := mem.NewMemory(0x10000)
	slot := memory2.AllocLine()
	target := memory2.AllocLine()
	memory2.WriteWord(slot, uint64(target))
	m2 := buildMachine(t, cfg, memory2, Invocation{
		Prog: ptrProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(slot)}},
	}, 4, 20)
	if err := m2.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m2.Stats.CommitsByMode[stats.CommitNSCL] != 0 {
		t.Fatal("indirection AR entered static locking")
	}
	if got := memory2.ReadWord(target); got != 4*20 {
		t.Fatalf("counter %d, want %d", got, 4*20)
	}
}
