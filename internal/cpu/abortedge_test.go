package cpu

import (
	"testing"

	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

// TestCapacityAbortFirstAttemptTakesFallbackDirectly: decision 0 of the §4.3
// tree on the earliest possible edge — the very first attempt of the very
// first invocation overflows the store queue. The machine must go straight
// to the fallback path (exactly one abort, no second speculative try, no CL
// attempt) and still commit the whole region.
func TestCapacityAbortFirstAttemptTakesFallbackDirectly(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	cfg.SQEntries = 8
	const width = 12 // stores > SQEntries
	base := memory.Alloc(width*mem.LineSize, mem.LineSize)

	m := buildMachine(t, cfg, memory, Invocation{
		Prog: wideProg(1, width),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(base)}},
	}, 1, 1)
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Aborts != 1 {
		t.Fatalf("want exactly 1 abort (capacity, then straight to fallback), got %d", m.Stats.Aborts)
	}
	if got := m.Stats.AbortsByBucket[htm.BucketOthers]; got != 1 {
		t.Fatalf("capacity abort not recorded in the others bucket: %d", got)
	}
	if m.Stats.Commits != 1 || m.Stats.CommitsByMode[stats.CommitFallback] != 1 {
		t.Fatalf("want 1 fallback commit, got commits=%d byMode=%v", m.Stats.Commits, m.Stats.CommitsByMode)
	}
	if m.Stats.SCLAttempts+m.Stats.NSCLAttempts != 0 {
		t.Fatal("capacity-aborted AR must not try a cacheline-locked mode")
	}
	if m.Fallback.WriterHeld() || !m.Fallback.Free() {
		t.Fatal("fallback lock still held after the run")
	}
	for i := 0; i < width; i++ {
		if got := memory.ReadWord(base + mem.Addr(i*mem.LineSize)); got != 1 {
			t.Fatalf("line %d = %d, want 1", i, got)
		}
	}
}

// TestPowerTokenDenialFallsBackCleanly: PowerTM's power budget is one
// transaction system-wide. Under heavy contention some retries must find the
// token taken mid-retry (Denied > 0); a denied transaction keeps retrying as
// an ordinary one, so every invocation still commits, no update is lost, and
// the token is free once the machine drains.
func TestPowerTokenDenialFallsBackCleanly(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.PowerTM = true

	const cores, ops = 6, 30
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: counterProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, cores, ops)
	if err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if got := memory.ReadWord(x); got != cores*ops {
		t.Fatalf("counter = %d, want %d (lost update under power-token contention)", got, cores*ops)
	}
	if m.Power.Grants == 0 {
		t.Fatal("no power-token grants under contention; the claim path never ran")
	}
	if m.Power.Denied == 0 {
		t.Fatal("no power-token denials under contention; the exhaustion path never ran")
	}
	if m.Stats.PowerClaims != m.Power.Grants {
		t.Fatalf("stats and token disagree on grants: %d vs %d", m.Stats.PowerClaims, m.Power.Grants)
	}
	if m.Power.Held() {
		t.Fatalf("power token still held by core %d after the run", m.Power.Holder())
	}
}

// TestExplicitAbortInNSCLRediscovers: an XAbort reached inside an NS-CL
// re-execution is a non-memory-conflict abort in a locked mode (§4.4.2): the
// ERT entry must be marked non-convertible so the AR never takes a CL path
// again, and the next attempt must be a plain speculative retry (which
// re-runs discovery), not another locked attempt.
func TestExplicitAbortInNSCLRediscovers(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	m := buildMachine(t, cfg, memory, Invocation{Prog: counterProg(1)}, 1, 1)

	// Drive the core into a fabricated NS-CL attempt and abort it explicitly,
	// exactly what doXAbort sees when the re-executed region runs the XAbort
	// instruction while holding its learned lock set.
	c := m.Cores[0]
	c.inv = Invocation{Prog: counterProg(1)}
	c.mode = ModeNSCL
	c.ertEntry = &clear.ERTEntry{Valid: true, PC: 1, IsConvertible: true, IsImmutable: true}
	c.doXAbort()

	if c.ertEntry.IsConvertible {
		t.Fatal("explicit abort inside NS-CL left the ERT entry convertible")
	}
	if c.retryMode != clear.RetrySpeculative {
		t.Fatalf("next mode after NS-CL explicit abort = %v, want plain speculative rediscovery", c.retryMode)
	}
	if c.mode != ModeIdle {
		t.Fatalf("core still in mode %v after abort", c.mode)
	}
	if m.Stats.Aborts != 1 || m.Stats.AbortsByBucket[htm.BucketOthers] == 0 {
		t.Fatalf("explicit abort not recorded: aborts=%d buckets=%v", m.Stats.Aborts, m.Stats.AbortsByBucket)
	}
	if n := m.Dir.HeldLocks(c.id); len(n) != 0 {
		t.Fatalf("aborted NS-CL attempt left %d directory locks held", len(n))
	}
}
