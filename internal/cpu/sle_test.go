package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
)

// longProg builds an AR executing well over n instructions via an
// immediate-bound loop over a single line (tiny footprint, huge instruction
// count — fits any HTM, overflows any ROB).
func longProg(id, iters int) *isa.Program {
	b := isa.NewBuilder("test/long")
	b.Li(isa.R1, int64(iters))
	b.Li(isa.R2, 0)
	b.Label("loop")
	b.Load(isa.R8, isa.R0, 0)
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R1, "loop")
	b.Load(isa.R8, isa.R0, 0)
	b.Addi(isa.R8, isa.R8, 1)
	b.Store(isa.R0, 0, isa.R8)
	b.Halt()
	return b.Build(id)
}

// TestSLEWindowForcesFallback: an AR longer than the ROB can never complete
// speculatively under SLE; every commit must come from the fallback path —
// and the result must still be correct.
func TestSLEWindowForcesFallback(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.SLE = true
	cfg.ROBEntries = 64
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: longProg(1, 100), // ~300 instructions >> 64
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 4, 10)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CommitsByMode[stats.CommitFallback] != m.Stats.Commits {
		t.Fatalf("%d of %d commits speculative despite ROB overflow",
			m.Stats.Commits-m.Stats.CommitsByMode[stats.CommitFallback], m.Stats.Commits)
	}
	if got := memory.ReadWord(x); got != 4*10 {
		t.Fatalf("counter %d, want 40", got)
	}
}

// TestHTMUnboundedByROB: the same long AR under HTM mode (out-of-core
// speculation, §4.2) commits speculatively — only the SQ limits it.
func TestHTMUnboundedByROB(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.ROBEntries = 64 // irrelevant without SLE
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: longProg(1, 100),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 2, 5)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CommitsByMode[stats.CommitSpeculative] == 0 {
		t.Fatal("no speculative commits under HTM mode")
	}
}

// TestSLELoadQueueLimit: an AR reading more lines than the LQ holds cannot
// complete speculatively under SLE.
func TestSLELoadQueueLimit(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	const width = 24
	base := memory.Alloc(width*mem.LineSize, mem.LineSize)
	// Reads width lines, writes the first.
	b := isa.NewBuilder("test/widereads")
	for i := 0; i < width; i++ {
		b.Load(isa.R8, isa.R0, int64(i*mem.LineSize))
	}
	b.Addi(isa.R8, isa.R8, 1)
	b.Store(isa.R0, int64((width-1)*mem.LineSize), isa.R8)
	b.Halt()
	prog := b.Build(1)

	cfg := DefaultSystemConfig()
	cfg.SLE = true
	cfg.LQEntries = 16 // < width
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: prog,
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(base)}},
	}, 2, 5)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CommitsByMode[stats.CommitFallback] != m.Stats.Commits {
		t.Fatal("LQ overflow did not force the fallback path")
	}
}

// TestSLEStillConvertsSmallARs: CLEAR over SLE converts a small immutable AR
// to NS-CL exactly as over HTM.
func TestSLEStillConvertsSmallARs(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.SLE = true
	cfg.CLEAR = true
	m := buildMachine(t, cfg, memory, Invocation{
		Prog: counterProg(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}, 8, 40)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.CommitsByMode[stats.CommitNSCL] == 0 {
		t.Fatal("CLEAR over SLE never converted the immutable AR")
	}
	if got := memory.ReadWord(x); got != 8*40 {
		t.Fatalf("counter %d, want %d", got, 8*40)
	}
}

// TestSizedTables: machines honour the sizing-ablation knobs.
func TestSizedTables(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	cfg := DefaultSystemConfig()
	cfg.CLEAR = true
	cfg.ALTEntries = 4
	cfg.ERTEntries = 2
	cfg.CRTEntries = 16
	cfg.CRTWays = 4
	m, err := NewMachine(cfg, memory)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	if c.disc.ALT.Cap() != 4 {
		t.Fatalf("ALT capacity %d, want 4", c.disc.ALT.Cap())
	}
	if c.ert.Size() != 2 {
		t.Fatalf("ERT size %d, want 2", c.ert.Size())
	}
	if c.crt.Size() != 16 {
		t.Fatalf("CRT size %d, want 16", c.crt.Size())
	}

	// With a 4-entry ALT, a 6-line AR is non-convertible: no CL commits.
	const width = 6
	base := memory.Alloc(width*mem.LineSize, mem.LineSize)
	feeds := make([]InvocationSource, cfg.Cores)
	for i := range feeds {
		invs := make([]Invocation, 10)
		for j := range invs {
			invs[j] = Invocation{Prog: wideProg(1, width), Regs: []RegInit{{Reg: isa.R0, Val: uint64(base)}}}
		}
		feeds[i] = &SliceSource{Invs: invs}
	}
	m.AttachFeeds(feeds)
	if err := m.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if cl := m.Stats.CommitsByMode[stats.CommitSCL] + m.Stats.CommitsByMode[stats.CommitNSCL]; cl != 0 {
		t.Fatalf("%d CL commits despite undersized ALT", cl)
	}
}
