package cpu

import (
	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/mem"
)

// Probe receives read-only notifications at the control points of every
// atomic-region invocation: attempt starts, aborts (with the retry-mode
// decision that was taken), commits (with the lines the commit is about to
// make globally visible), and completed memory operations.
//
// It exists for the runtime invariant oracle (internal/check). All calls are
// synchronous, on the simulation's event path; a probe must not mutate
// machine state, consult the RNG, or schedule events, or it would perturb
// the run it is checking. A nil probe (the default) costs one pointer
// comparison per notification site.
type Probe interface {
	// OnInvocationStart fires when a core dequeues a new invocation, before
	// its first attempt is scheduled.
	OnInvocationStart(core int, progID int)
	// OnAttemptStart fires when an attempt actually begins executing:
	// speculative (after the fallback-lock gate), CL (before the lock
	// walk), or fallback (after the write lock is announced). footprint is
	// the ALT snapshot a CL attempt will lock/execute against (nil
	// otherwise); the slice is freshly allocated and may be retained.
	OnAttemptStart(core int, mode Mode, attempt int, footprint []mem.LineAddr)
	// OnAttemptEnd fires when an attempt aborts, after the retry-mode
	// decision for the next attempt has been taken.
	OnAttemptEnd(info AttemptEndInfo)
	// OnCommit fires at the commit point of an attempt, before the store
	// queue drains to memory and before CL locks are released — the oracle
	// can still observe ownership/locks covering the committing stores.
	OnCommit(info CommitInfo)
	// OnMemAccess fires when a load or store completes (after its latency;
	// the access is architecturally part of the attempt).
	OnMemAccess(core int, line mem.LineAddr, isWrite bool, mode Mode)
}

// AttemptEndInfo describes one aborted attempt and the decision taken for
// the next one.
type AttemptEndInfo struct {
	Core    int
	ProgID  int
	Attempt int
	// Mode is the execution mode the attempt was in when it aborted.
	Mode Mode
	// Reason is the abort reason recorded in the statistics.
	Reason htm.AbortReason
	// ConflictRetries is the post-abort conflict-counted retry total.
	ConflictRetries int
	// NextMode is the §4.3 decision for the next attempt.
	NextMode clear.RetryMode
	// Assessed is true when this abort ran the discovery assessment
	// (failed-mode discovery completed); Assessment is then valid.
	Assessed   bool
	Assessment clear.Assessment
}

// CommitInfo describes one committing attempt at its commit point.
type CommitInfo struct {
	Core    int
	ProgID  int
	Attempt int
	// Mode is the execution mode that committed.
	Mode Mode
	// ConflictRetries is the invocation's conflict-counted retry total.
	ConflictRetries int
	// StoreLines lists the distinct cachelines of the buffered stores about
	// to drain (commit order, first occurrence). Nil for fallback commits:
	// fallback stores write memory directly. The slice is freshly allocated
	// and may be retained.
	StoreLines []mem.LineAddr
}

// SetProbe installs (or, with nil, removes) the machine's attempt probe.
func (m *Machine) SetProbe(p Probe) { m.probe = p }

// storeLinesForProbe collects the distinct lines of the core's buffered
// stores, in first-store order. Only called when a probe is installed.
func (c *Core) storeLinesForProbe() []mem.LineAddr {
	if len(c.sq) == 0 {
		return nil
	}
	lines := make([]mem.LineAddr, 0, len(c.sq))
	for _, s := range c.sq {
		line := s.addr.Line()
		dup := false
		for _, l := range lines {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			lines = append(lines, line)
		}
	}
	return lines
}

// altLinesForProbe snapshots the ALT footprint for a CL attempt start.
func (c *Core) altLinesForProbe() []mem.LineAddr {
	entries := c.disc.ALT.Entries()
	if len(entries) == 0 {
		return nil
	}
	lines := make([]mem.LineAddr, len(entries))
	for i, e := range entries {
		lines[i] = e.Addr
	}
	return lines
}
