package cpu

import (
	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Probe receives read-only notifications at the control points of every
// atomic-region invocation: attempt starts, aborts (with the retry-mode
// decision that was taken), commits (with the lines the commit is about to
// make globally visible), completed memory operations, and holder-side
// conflict detections.
//
// It exists for the runtime invariant oracle (internal/check) and the
// structured event tracer (internal/trace). All calls are synchronous, on
// the simulation's event path; a probe must not mutate machine state,
// consult the RNG, or schedule events, or it would perturb the run it is
// observing. A nil probe (the default) costs one pointer comparison per
// notification site; multiple probes fan out through AddProbe.
type Probe interface {
	// OnInvocationStart fires when a core dequeues a new invocation, before
	// its first attempt is scheduled.
	OnInvocationStart(core int, progID int)
	// OnAttemptStart fires when an attempt actually begins executing:
	// speculative (after the fallback-lock gate), CL (before the lock
	// walk), or fallback (after the write lock is announced). footprint is
	// the ALT snapshot a CL attempt will lock/execute against (nil
	// otherwise); like CommitInfo.StoreLines it is scratch valid only for
	// the duration of the callback — probes that retain it must copy.
	OnAttemptStart(core int, mode Mode, attempt int, footprint []mem.LineAddr)
	// OnAttemptEnd fires when an attempt aborts, after the retry-mode
	// decision for the next attempt has been taken.
	OnAttemptEnd(info AttemptEndInfo)
	// OnCommit fires at the commit point of an attempt, before the store
	// queue drains to memory and before CL locks are released — the oracle
	// can still observe ownership/locks covering the committing stores.
	OnCommit(info CommitInfo)
	// OnMemAccess fires when a load or store completes (after its latency;
	// the access is architecturally part of the attempt). value is the
	// loaded (isWrite=false) or stored (isWrite=true) word.
	OnMemAccess(core int, addr mem.Addr, value uint64, isWrite bool, mode Mode)
	// OnConflict fires on the holder side when an incoming remote request
	// conflicts with this core's transactional read/write set, before the
	// mode-specific resolution policy (yield/nack/failed-mode) runs.
	OnConflict(core int, line mem.LineAddr, isWrite bool, requester int)
}

// AttemptEndInfo describes one aborted attempt and the decision taken for
// the next one.
type AttemptEndInfo struct {
	Core    int
	ProgID  int
	Attempt int
	// Mode is the execution mode the attempt was in when it aborted.
	Mode Mode
	// Reason is the abort reason recorded in the statistics.
	Reason htm.AbortReason
	// PC is the interpreter's program counter at the abort point (the
	// instruction-level context the old text tracer printed).
	PC int
	// ConflictRetries is the post-abort conflict-counted retry total.
	ConflictRetries int
	// NextMode is the final decision for the next attempt — the retry
	// policy's answer (internal/policy).
	NextMode clear.RetryMode
	// Proposed is the §4.3 mechanism proposal the policy decided over;
	// Proposed != NextMode marks a policy override (always a serialization:
	// policies may only strengthen to fallback). The synthetic
	// busy-fallback-lock attempt-end takes no new decision and reports
	// Proposed == NextMode.
	Proposed clear.RetryMode
	// Backoff is the policy's backoff delay inserted before the next
	// attempt, on top of the fixed abort penalty.
	Backoff sim.Tick
	// Assessed is true when this abort ran the discovery assessment
	// (failed-mode discovery completed); Assessment is then valid.
	Assessed   bool
	Assessment clear.Assessment
}

// CommitInfo describes one committing attempt at its commit point.
type CommitInfo struct {
	Core    int
	ProgID  int
	Attempt int
	// Mode is the execution mode that committed.
	Mode Mode
	// ConflictRetries is the invocation's conflict-counted retry total.
	ConflictRetries int
	// StoreLines lists the distinct cachelines of the buffered stores about
	// to drain (commit order, first occurrence). Nil for fallback commits:
	// fallback stores write memory directly. The slice is scratch reused
	// across commits — valid only for the duration of the callback; probes
	// that retain it must copy.
	StoreLines []mem.LineAddr
}

// SetProbe installs (or, with nil, removes) the machine's attempt probe,
// replacing whatever was attached before.
func (m *Machine) SetProbe(p Probe) { m.probe = p }

// AddProbe attaches p alongside any probe already installed: notifications
// fan out to every attached probe in attachment order. Detached machines
// keep paying only the single nil comparison; a solo probe is called
// directly with no tee indirection.
func (m *Machine) AddProbe(p Probe) {
	if p == nil {
		return
	}
	if m.probe == nil {
		m.probe = p
		return
	}
	m.probe = &teeProbe{a: m.probe, b: p}
}

// teeProbe fans probe notifications out to two probes (chains of AddProbe
// calls build a right-leaning tree of tees).
type teeProbe struct{ a, b Probe }

func (t *teeProbe) OnInvocationStart(core int, progID int) {
	t.a.OnInvocationStart(core, progID)
	t.b.OnInvocationStart(core, progID)
}

func (t *teeProbe) OnAttemptStart(core int, mode Mode, attempt int, footprint []mem.LineAddr) {
	t.a.OnAttemptStart(core, mode, attempt, footprint)
	t.b.OnAttemptStart(core, mode, attempt, footprint)
}

func (t *teeProbe) OnAttemptEnd(info AttemptEndInfo) {
	t.a.OnAttemptEnd(info)
	t.b.OnAttemptEnd(info)
}

func (t *teeProbe) OnCommit(info CommitInfo) {
	t.a.OnCommit(info)
	t.b.OnCommit(info)
}

func (t *teeProbe) OnMemAccess(core int, addr mem.Addr, value uint64, isWrite bool, mode Mode) {
	t.a.OnMemAccess(core, addr, value, isWrite, mode)
	t.b.OnMemAccess(core, addr, value, isWrite, mode)
}

func (t *teeProbe) OnConflict(core int, line mem.LineAddr, isWrite bool, requester int) {
	t.a.OnConflict(core, line, isWrite, requester)
	t.b.OnConflict(core, line, isWrite, requester)
}

// storeLinesForProbe collects the distinct lines of the core's buffered
// stores, in first-store order, into the core's reusable scratch slice
// (CommitInfo.StoreLines is callback-scoped). Only called when a probe is
// installed.
func (c *Core) storeLinesForProbe() []mem.LineAddr {
	if len(c.sq) == 0 {
		return nil
	}
	lines := c.probeLines[:0]
	for _, s := range c.sq {
		line := s.addr.Line()
		dup := false
		for _, l := range lines {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			lines = append(lines, line)
		}
	}
	c.probeLines = lines
	return lines
}

// altLinesForProbe snapshots the ALT footprint for a CL attempt start into
// the same callback-scoped scratch slice storeLinesForProbe uses (the two
// are never live at once: attempt start and commit are distinct callbacks).
func (c *Core) altLinesForProbe() []mem.LineAddr {
	entries := c.disc.ALT.Entries()
	if len(entries) == 0 {
		return nil
	}
	lines := c.probeLines[:0]
	for _, e := range entries {
		lines = append(lines, e.Addr)
	}
	c.probeLines = lines
	return lines
}
