package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func counterProg(id int) *isa.Program {
	b := isa.NewBuilder("counter/add")
	b.Load(isa.R8, isa.R0, 0)
	b.Addi(isa.R8, isa.R8, 1)
	b.Store(isa.R0, 0, isa.R8)
	b.Halt()
	return b.Build(id)
}

// runCounter executes the canonical atomicity litmus test: every core
// repeatedly increments one shared counter inside an AR. Any lost update —
// under any configuration and interleaving — is a protocol bug.
func runCounter(t *testing.T, cfg SystemConfig, cores, ops int, seed uint64) {
	t.Helper()
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg.Cores = cores
	cfg.Seed = seed
	m, err := NewMachine(cfg, memory)
	if err != nil {
		t.Fatal(err)
	}
	prog := counterProg(1)
	feeds := make([]InvocationSource, cores)
	for i := range feeds {
		invs := make([]Invocation, ops)
		for j := range invs {
			invs[j] = Invocation{Prog: prog, Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}}}
		}
		feeds[i] = &SliceSource{Invs: invs}
	}
	m.AttachFeeds(feeds)
	if err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	want := uint64(cores * ops)
	if got := memory.ReadWord(x); got != want {
		t.Fatalf("cores=%d seed=%d: counter=%d want %d (lost updates)", cores, seed, got, want)
	}
	if m.Stats.Commits != want {
		t.Fatalf("commits=%d want %d", m.Stats.Commits, want)
	}
	if m.Dir.LockedLines() != 0 {
		t.Fatalf("%d cachelines left locked after completion", m.Dir.LockedLines())
	}
	if m.Fallback.WriterHeld() || !m.Fallback.Readers().Empty() {
		t.Fatal("fallback lock left held after completion")
	}
	if m.Power.Held() {
		t.Fatal("power token left held after completion")
	}
}

// TestAtomicCounterAllConfigs sweeps core counts and seeds across the four
// evaluated configurations with strict cache/directory consistency checks
// enabled.
func TestAtomicCounterAllConfigs(t *testing.T) {
	StrictChecks = true
	defer func() { StrictChecks = false }()
	type variant struct {
		name           string
		clear, powertm bool
	}
	for _, v := range []variant{
		{"B", false, false},
		{"P", false, true},
		{"C", true, false},
		{"W", true, true},
	} {
		t.Run(v.name, func(t *testing.T) {
			for cores := 2; cores <= 8; cores *= 2 {
				for seed := uint64(1); seed <= 12; seed++ {
					cfg := DefaultSystemConfig()
					cfg.CLEAR = v.clear
					cfg.PowerTM = v.powertm
					cfg.RetryLimit = 2 + int(seed%4)
					runCounter(t, cfg, cores, 25, seed)
				}
			}
		})
	}
}

// TestAtomicCounterNSCL checks that under CLEAR the single-line counter AR
// converts to NS-CL (it is immutable and trivially lockable) and commits on
// the first retry.
func TestAtomicCounterNSCL(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	cfg := DefaultSystemConfig()
	cfg.Cores = 8
	cfg.CLEAR = true
	m, err := NewMachine(cfg, memory)
	if err != nil {
		t.Fatal(err)
	}
	prog := counterProg(1)
	feeds := make([]InvocationSource, cfg.Cores)
	for i := range feeds {
		invs := make([]Invocation, 50)
		for j := range invs {
			invs[j] = Invocation{Prog: prog, Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}}}
		}
		feeds[i] = &SliceSource{Invs: invs}
	}
	m.AttachFeeds(feeds)
	if err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats.NSCLAttempts == 0 {
		t.Fatal("contended immutable AR never attempted NS-CL")
	}
	if m.Stats.CommitsByMode[2] == 0 { // stats.CommitNSCL
		t.Fatal("contended immutable AR never committed in NS-CL")
	}
	if m.Stats.CommitsByMode[3] != 0 { // stats.CommitFallback
		t.Fatalf("NS-CL workload fell back %d times", m.Stats.CommitsByMode[3])
	}
}
