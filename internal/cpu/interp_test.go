package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// runSolo executes one program on a single-core machine and returns the
// machine for inspection.
func runSolo(t *testing.T, prog *isa.Program, regs []RegInit, memory *mem.Memory) *Machine {
	t.Helper()
	cfg := DefaultSystemConfig()
	cfg.Cores = 1
	m, err := NewMachine(cfg, memory)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachFeeds([]InvocationSource{&SliceSource{Invs: []Invocation{{Prog: prog, Regs: regs}}}})
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInterpreterOpcodes is the golden semantics test: one program exercises
// every ALU opcode, addressing mode, and branch, leaving its results in
// memory where the test can check them.
func TestInterpreterOpcodes(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	out := memory.Alloc(16*8, mem.LineSize)
	in := memory.AllocLine()
	memory.WriteWord(in, 5)

	b := isa.NewBuilder("golden")
	b.Li(isa.R1, 7)                // r1 = 7
	b.Load(isa.R2, isa.R0, 0)      // r2 = mem[in] = 5
	b.Mov(isa.R3, isa.R1)          // r3 = 7
	b.Add(isa.R4, isa.R1, isa.R2)  // 12
	b.Addi(isa.R5, isa.R4, -2)     // 10
	b.Sub(isa.R6, isa.R5, isa.R2)  // 5
	b.Muli(isa.R7, isa.R6, 6)      // 30
	b.Andi(isa.R8, isa.R7, 0x1c)   // 30 & 28 = 28
	b.Shri(isa.R9, isa.R8, 2)      // 7
	b.Xor(isa.R10, isa.R9, isa.R1) // 7^7 = 0
	// Branches: beq taken, bne not taken, blt taken, bge not taken.
	b.Li(isa.R11, 100)
	b.Beq(isa.R10, isa.R14, "beqTaken") // 0 == 0
	b.Li(isa.R11, 1)                    // skipped
	b.Label("beqTaken")
	b.Bne(isa.R10, isa.R14, "wrong")  // not taken
	b.Blt(isa.R2, isa.R1, "bltTaken") // 5 < 7
	b.Label("wrong")
	b.Li(isa.R11, 2)
	b.Label("bltTaken")
	b.Bge(isa.R2, isa.R1, "wrong2") // 5 >= 7: not taken
	b.Jump("store")
	b.Label("wrong2")
	b.Li(isa.R11, 3)
	b.Label("store")
	for i, r := range []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9, isa.R10, isa.R11} {
		b.Store(isa.R13, int64(i*8), r)
	}
	b.Nop()
	b.Halt()
	prog := b.Build(1)

	runSolo(t, prog, []RegInit{
		{Reg: isa.R0, Val: uint64(in)},
		{Reg: isa.R13, Val: uint64(out)},
	}, memory)

	want := []uint64{7, 5, 7, 12, 10, 5, 30, 28, 7, 0, 100}
	for i, w := range want {
		if got := memory.ReadWord(out + mem.Addr(i*8)); got != w {
			t.Errorf("slot %d = %d, want %d", i, got, w)
		}
	}
}

// TestStoreToLoadForwarding: a load inside the AR observes the AR's own
// buffered (not yet committed) store.
func TestStoreToLoadForwarding(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	memory.WriteWord(x, 10)
	out := memory.AllocLine()

	b := isa.NewBuilder("fwd")
	b.Li(isa.R8, 42)
	b.Store(isa.R0, 0, isa.R8) // buffered in the SQ
	b.Load(isa.R9, isa.R0, 0)  // must see 42, not 10
	b.Store(isa.R1, 0, isa.R9)
	b.Halt()
	runSolo(t, b.Build(1), []RegInit{
		{Reg: isa.R0, Val: uint64(x)},
		{Reg: isa.R1, Val: uint64(out)},
	}, memory)

	if got := memory.ReadWord(out); got != 42 {
		t.Fatalf("forwarded value %d, want 42", got)
	}
}

// TestXAbortRetriesAndFallsBack: an AR that always XAborts exhausts its
// retries and completes in fallback mode (where XAbort degrades to Halt).
func TestXAbortRetriesAndFallsBack(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	b := isa.NewBuilder("aborter")
	b.Load(isa.R8, isa.R0, 0)
	b.Addi(isa.R8, isa.R8, 1)
	b.Store(isa.R0, 0, isa.R8)
	b.XAbort()
	b.Halt()
	m := runSolo(t, b.Build(1), []RegInit{{Reg: isa.R0, Val: uint64(x)}}, memory)

	if m.Stats.CommitsByMode[3] != 1 { // fallback
		t.Fatalf("commit modes %v, want 1 fallback", m.Stats.CommitsByMode)
	}
	// Fallback executes the stores non-speculatively before the XAbort.
	if got := memory.ReadWord(x); got != 1 {
		t.Fatalf("x = %d, want 1", got)
	}
	if m.Stats.Aborts == 0 {
		t.Fatal("no aborts recorded for the aborting AR")
	}
}

// TestUnalignedAddressAborts: a garbage (unaligned) address — the analogue
// of a faulting access fed by torn speculative data — aborts the speculative
// attempt instead of crashing the simulator. The program is unconditionally
// broken, so the run ends via the livelock guard; the retry limit is kept
// effectively infinite because fallback execution treats a programmed
// unaligned access as a workload bug (it panics by design).
func TestUnalignedAddressAborts(t *testing.T) {
	memory := mem.NewMemory(0x10000)
	x := memory.AllocLine()
	b := isa.NewBuilder("unaligned")
	b.Load(isa.R8, isa.R0, 1) // x+1: unaligned
	b.Store(isa.R0, 0, isa.R8)
	b.Halt()
	cfg := DefaultSystemConfig()
	cfg.Cores = 1
	cfg.RetryLimit = 1 << 30 // never fall back (fallback would panic by design)
	m, err := NewMachine(cfg, memory)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachFeeds([]InvocationSource{&SliceSource{Invs: []Invocation{{
		Prog: b.Build(1),
		Regs: []RegInit{{Reg: isa.R0, Val: uint64(x)}},
	}}}})
	// Run never finishes (the AR can never commit); the livelock guard
	// returns an error we expect.
	if err := m.Run(10_000); err == nil {
		t.Fatal("endlessly aborting AR finished")
	}
	if m.Stats.Aborts == 0 {
		t.Fatal("unaligned access did not abort")
	}
	if m.Stats.Commits != 0 {
		t.Fatal("broken AR committed")
	}
}
