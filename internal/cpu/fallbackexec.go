package cpu

import (
	"repro/internal/coherence"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// simTick converts a length to a tick count for latency arithmetic.
func simTick(n int) sim.Tick { return sim.Tick(n) }

// enterFallback takes the global-lock path (decision 0 of §4.3): announce a
// writer claim (blocking new CL read-lockers), wait for the lock, invalidate
// every subscribed speculative reader via a real coherence write to the lock
// line, and execute the AR non-speculatively.
func (c *Core) enterFallback() {
	c.resetAttemptState()
	c.mode = ModeFallback
	if c.power {
		c.m.Power.Release(c.id)
		c.power = false
	}
	if c.m.probe != nil {
		c.m.probe.OnAttemptStart(c.id, ModeFallback, c.attempt, nil)
	}
	c.m.Fallback.AnnounceWriter(c.id)
	c.tryAcquireFallbackWrite()
}

func (c *Core) tryAcquireFallbackWrite() {
	if !c.m.Fallback.TryAcquireWrite(c.id) {
		c.engine().Schedule(c.m.Cfg.SpinInterval, c.tryFallbackWrFn)
		return
	}
	// Setting the lock busy requires exclusive permission on the lock line;
	// the invalidations this write fans out are what abort the subscribed
	// speculative transactions (§2.1).
	res := c.m.Dir.Write(c.id, c.m.Fallback.Line, coherence.ReqAttrs{NonSpec: true})
	c.m.Stats.FallbackAcquisitions++
	c.engine().Schedule(res.Latency, c.stepFn)
}

// commitFallback finishes a fallback execution: stores already reached
// memory, so only the lock release remains.
func (c *Core) commitFallback() {
	if c.m.probe != nil {
		c.m.probe.OnCommit(CommitInfo{
			Core:            c.id,
			ProgID:          c.inv.Prog.ID,
			Attempt:         c.attempt,
			Mode:            ModeFallback,
			ConflictRetries: c.conflictRetries,
			// StoreLines nil: fallback stores write memory directly.
		})
	}
	c.m.Fallback.ReleaseWrite(c.id)
	c.pol.OnCommit(policy.Outcome{
		ProgID:          c.inv.Prog.ID,
		Mode:            policy.ExecFallback,
		ConflictRetries: c.conflictRetries,
	})
	c.m.Stats.Instructions += c.attemptInstr
	c.m.Stats.RecordCommit(stats.CommitFallback, c.conflictRetries)
	c.m.Stats.RecordCommitAR(c.inv.Prog.ID, c.inv.Prog.Name, stats.CommitFallback)
	c.recordFig1Attempt(true)
	c.finishInvocation()
}
