package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fig1TrackLimit bounds the per-attempt footprint tracking used by the
// Figure 1 instrumentation: a footprint above 32 lines disqualifies the AR,
// so tracking one extra line suffices.
const fig1TrackLimit = clear.ALTEntries + 1

func (c *Core) resetAttemptState() {
	c.pc = 0
	for i := range c.regs {
		c.regs[i] = 0
	}
	for _, ri := range c.inv.Regs {
		c.regs[ri.Reg] = ri.Val
	}
	c.indir = 0
	c.readSet.Clear()
	c.writeSet.Clear()
	c.sq = c.sq[:0]
	c.sqForward.Clear()
	c.pendingAbort = htm.AbortNone
	c.attemptInstr = 0
	c.attemptLoads = 0
	c.touched.Clear()
	c.failedFetched.Clear()
}

// beginAttempt dispatches the next attempt of the current invocation
// according to the decided retry mode.
func (c *Core) beginAttempt() {
	if c.pol.BudgetExhausted(c.conflictRetries) || c.retryMode == clear.RetryFallback {
		c.enterFallback()
		return
	}

	// MAD/MCAS-style static locking (§2.2): if the footprint is known a
	// priori, lock it and execute non-speculatively — no discovery, no
	// retries. A policy that has learned the AR rarely survives speculation
	// (PreferNonSpec) takes the same path.
	if c.attempt == 0 && c.retryMode == clear.RetrySpeculative &&
		(c.m.Cfg.StaticLocking || c.pol.PreferNonSpec(c.inv.Prog.ID)) &&
		c.tryStaticFootprint() {
		if !c.m.Cfg.StaticLocking {
			c.m.Stats.PolicyNonSpecEntries++
		}
		c.retryMode = clear.RetryNSCL
	}

	switch c.retryMode {
	case clear.RetrySpeculative:
		c.beginSpeculative()
	case clear.RetrySCL, clear.RetryNSCL:
		c.beginCLAttempt()
	default:
		panic(fmt.Sprintf("cpu: core %d invalid retry mode %v", c.id, c.retryMode))
	}
}

// beginSpeculative starts a plain HTM attempt (XBegin): check the fallback
// lock, subscribe to its line, set up discovery, and start executing.
func (c *Core) beginSpeculative() {
	if !c.m.Fallback.Free() {
		// Explicit Fallback abort: we wanted to start but the lock is
		// taken (§7's taxonomy). Counted once per waiting episode; the
		// retry counter is not incremented (fallback-type abort).
		if !c.waitedOnLock {
			c.waitedOnLock = true
			c.m.Stats.RecordAbort(htm.AbortExplicitFallback)
			if c.m.probe != nil {
				// The attempt never started, so no OnAttemptStart pairs
				// with this event; Mode stays idle and the §4.3 decision
				// is unchanged (the same retry mode re-runs once the lock
				// frees).
				c.m.probe.OnAttemptEnd(AttemptEndInfo{
					Core:            c.id,
					ProgID:          c.inv.Prog.ID,
					Attempt:         c.attempt,
					Mode:            c.mode,
					Reason:          htm.AbortExplicitFallback,
					ConflictRetries: c.conflictRetries,
					NextMode:        c.retryMode,
					Proposed:        c.retryMode,
				})
			}
		}
		// Jittered polling so the herd does not stampede when the lock
		// frees.
		wait := c.m.Cfg.SpinInterval + sim.Tick(c.rng.Intn(int(c.m.Cfg.SpinInterval)+1))
		c.engine().Schedule(wait, c.beginAttemptFn)
		return
	}
	c.waitedOnLock = false
	c.resetAttemptState()
	c.mode = ModeSpeculative
	if c.m.probe != nil {
		c.m.probe.OnAttemptStart(c.id, ModeSpeculative, c.attempt, nil)
	}

	// Injected environmental abort (interrupt/TLB shootdown) on a first
	// speculative attempt: the transaction dies before executing.
	if c.m.fault != nil && c.attempt == 0 && c.m.fault.SpuriousAbort(c.id) {
		c.abortNow(htm.AbortSpurious)
		return
	}

	// PowerTM: a transaction that has aborted at least once tries to claim
	// the power token for its retry. An injected denial window models a
	// token arbiter that is momentarily unresponsive; the core simply runs
	// without priority, which the protocol must tolerate anyway.
	if c.m.Cfg.PowerTM && c.conflictRetries >= 1 && !c.power &&
		(c.m.fault == nil || !c.m.fault.DenyPowerClaim(c.id)) {
		if c.m.Power.TryClaim(c.id) {
			c.power = true
			c.m.Stats.PowerClaims++
		}
	}

	// Discovery runs on every invocation's speculative attempt unless the
	// ERT says the AR is not worth discovering (§4.1, §5.1). Retries that
	// come back to speculative mode re-run discovery too: the footprint
	// may differ between invocations but is re-learned each attempt.
	if c.m.Cfg.CLEAR {
		c.ertEntry = c.ert.Lookup(c.inv.Prog.ID)
		if c.ertEntry.DiscoveryEnabled() {
			c.disc.Begin()
		} else {
			c.disc.Disable()
		}
	} else {
		c.disc.Disable()
	}

	// Subscribe to the fallback lock line: its invalidation is how we learn
	// that some thread entered the fallback path. The line is hot in the L1
	// across transactions (only a fallback acquisition invalidates it), so
	// the subscription is usually a cache hit.
	c.readSet.Add(c.m.Fallback.Line)
	if c.l1.Access(c.m.Fallback.Line) {
		c.engine().Schedule(c.m.Cfg.Lat.L1Hit, c.stepFn)
		return
	}
	res := c.m.Dir.Read(c.id, c.m.Fallback.Line, coherence.ReqAttrs{})
	if res.Nacked || res.Retry {
		// Only reachable under fault injection (nothing locks or
		// prioritises the fallback line in normal operation). The
		// subscription did not register at the directory, so the attempt
		// must not proceed — a missed fallback invalidation would break
		// opacity. Treat it like any refused own-request.
		c.readSet.Remove(c.m.Fallback.Line)
		c.conflictOnOwnRequest()
		return
	}
	c.l1Insert(c.m.Fallback.Line)
	c.engine().Schedule(res.Latency, c.stepFn)
}

// tryStaticFootprint evaluates the invocation's footprint from its preset
// registers (isa.EvalFootprint); on success the ALT is pre-filled for an
// NS-CL-style fully-locked execution. It fails for ARs with indirections or
// footprints beyond the lockable window — the scope limitation of the
// multi-address atomic constructs the paper describes in §2.2.
func (c *Core) tryStaticFootprint() bool {
	regs := make(map[isa.Reg]uint64, len(c.inv.Regs))
	for _, ri := range c.inv.Regs {
		regs[ri.Reg] = ri.Val
	}
	accesses, ok := isa.EvalFootprint(c.inv.Prog, regs)
	if !ok || len(accesses) == 0 || len(accesses) > c.disc.ALT.Cap() {
		return false
	}
	lines := make([]mem.LineAddr, len(accesses))
	for i, a := range accesses {
		lines[i] = a.Line
	}
	if !cache.FitsSimultaneously(c.m.Cfg.L1, lines) {
		return false
	}
	c.disc.ALT.Reset()
	for _, a := range accesses {
		c.disc.ALT.Record(a.Line, c.m.Dir.SetOf(a.Line), a.Written)
	}
	c.disc.ALT.FinalizeForMode(clear.RetryNSCL, nil)
	return true
}

// l1Insert makes line resident, translating a tracked-line eviction into the
// appropriate capacity signal for the current mode.
func (c *Core) l1Insert(line mem.LineAddr) {
	evicted, didEvict, ok := c.l1.Insert(line)
	if !ok {
		// Every way pinned: only reachable in CL modes, where discovery
		// guaranteed the footprint fits; treat as deviation.
		c.signalAbort(htm.AbortDeviation)
		return
	}
	if !didEvict {
		return
	}
	c.m.Dir.Evict(c.id, evicted)
	if c.readSet.Has(evicted) || c.writeSet.Has(evicted) {
		// A tracked line fell out of the private cache: the speculative
		// window is exhausted.
		c.readSet.Remove(evicted)
		c.writeSet.Remove(evicted)
		switch c.mode {
		case ModeSpeculative:
			c.signalAbort(htm.AbortCapacity)
		case ModeFailedDiscovery:
			c.disc.CacheOverflow = true
		}
	}
}

// trackTouched feeds the Figure 1 footprint instrumentation.
func (c *Core) trackTouched(line mem.LineAddr) {
	if c.touched.Len() <= fig1TrackLimit {
		c.touched.Add(line)
	}
}

// enterFailedMode converts a conflicted discovery attempt into failed-mode
// continuation: the abort signal is held and execution continues to the end
// of the AR so discovery can see the whole footprint (§4.1).
func (c *Core) enterFailedMode(reason htm.AbortReason) {
	c.heldReason = reason
	c.mode = ModeFailedDiscovery
	c.disc.Failed = true
	c.discStart = c.engine().Now()
	c.m.Stats.DiscoveryRuns++
}

// abortNow finalises an aborted attempt: bookkeeping, cleanup, retry-mode
// decision, and scheduling of the next attempt.
func (c *Core) abortNow(reason htm.AbortReason) {
	c.m.Stats.RecordAbort(reason)
	c.m.Stats.RecordAbortAR(c.inv.Prog.ID, c.inv.Prog.Name)
	c.m.Stats.AbortedInstructions += c.attemptInstr

	if c.mode == ModeFailedDiscovery {
		c.m.Stats.DiscoveryCycles += c.engine().Now() - c.discStart
	}

	// Release CL-mode resources.
	if c.mode == ModeSCL || c.mode == ModeNSCL {
		c.m.Dir.UnlockAll(c.id)
		c.unpinAll()
		if c.holdsReadLck {
			c.m.Fallback.ReleaseRead(c.id)
			c.holdsReadLck = false
		}
	}

	c.recordFig1Attempt(false)
	c.clearTxSets()

	if htm.CountsTowardRetryLimit(reason) {
		c.conflictRetries++
	}
	c.decideRetryMode(reason)
	c.pol.OnAbort(policy.Outcome{
		ProgID:          c.inv.Prog.ID,
		Mode:            execModeOf(c.mode),
		ConflictRetries: c.conflictRetries,
	})
	if c.m.probe != nil {
		c.m.probe.OnAttemptEnd(AttemptEndInfo{
			Core:            c.id,
			ProgID:          c.inv.Prog.ID,
			Attempt:         c.attempt,
			Mode:            c.mode,
			Reason:          reason,
			PC:              c.pc,
			ConflictRetries: c.conflictRetries,
			NextMode:        c.retryMode,
			Proposed:        c.lastProposed,
			Backoff:         c.nextBackoff,
			Assessed:        c.lastAssessed,
			Assessment:      c.lastAssessment,
		})
	}
	// Discovery observation ends with the attempt; the ALT it learned stays
	// intact for the CL-mode lock walk but must not keep recording.
	c.disc.Disable()
	c.mode = ModeIdle
	c.attempt++
	c.engine().Schedule(c.m.Cfg.AbortPenalty+c.nextBackoff, c.beginAttemptFn)
}

// execModeOf classifies an execution mode for the policy observation hooks:
// failed-mode discovery is a speculative execution that already knows it
// will abort, so both speculative modes feed the same learning signal.
func execModeOf(m Mode) policy.ExecMode {
	switch m {
	case ModeSCL:
		return policy.ExecSCL
	case ModeNSCL:
		return policy.ExecNSCL
	case ModeFallback:
		return policy.ExecFallback
	default:
		return policy.ExecSpeculative
	}
}

// decideRetryMode computes the §4.3 proposal for the next attempt, runs it
// through the retry policy, and installs the final decision and backoff.
// The policy may accept the proposal or override it to fallback
// (serialization is always safe); any other override would either break the
// single-retry bound or start a lock walk with no learned footprint, so it
// is rejected here rather than trusted.
func (c *Core) decideRetryMode(reason htm.AbortReason) {
	proposed := c.proposeRetryMode(reason)
	c.lastProposed = proposed
	c.polCtx.ProgID = c.inv.Prog.ID
	c.polCtx.Attempt = c.attempt
	c.polCtx.ConflictRetries = c.conflictRetries
	c.polCtx.Reason = reason
	c.polCtx.Proposed = proposed
	c.polCtx.Assessed = c.lastAssessed
	c.polCtx.Assessment = c.lastAssessment
	d := c.pol.Decide(&c.polCtx)
	if d.Mode != proposed {
		if !policy.OverrideAllowed(proposed, d.Mode) {
			panic(fmt.Sprintf("cpu: core %d policy decided %v over §4.3 proposal %v (policies may only serialize)",
				c.id, d.Mode, proposed))
		}
		c.m.Stats.PolicyOverrides++
	}
	c.retryMode = d.Mode
	c.nextBackoff = d.Backoff
	c.m.Stats.PolicyBackoffTicks += uint64(d.Backoff)
}

// proposeRetryMode applies the §4.3 decision tree (Figure 2) for the next
// attempt, combining the discovery assessment with the abort context. This
// is the hardware mechanism's proposal — table updates (ERT convertibility,
// ALT finalization) happen here, mode selection is finalized by the policy.
func (c *Core) proposeRetryMode(reason htm.AbortReason) clear.RetryMode {
	c.lastAssessed = false
	c.lastAssessment = clear.Assessment{}
	if !c.m.Cfg.CLEAR {
		if reason == htm.AbortCapacity {
			// Speculative resources cannot support a retry (decision 0).
			return clear.RetryFallback
		}
		return clear.RetrySpeculative
	}

	switch c.mode {
	case ModeSpeculative:
		// Aborted without completing discovery (capacity, explicit abort,
		// fallback interference, or discovery disabled).
		switch reason {
		case htm.AbortCapacity:
			if c.ertEntry != nil {
				c.ertEntry.IsConvertible = false
			}
			return clear.RetryFallback
		case htm.AbortExplicit:
			// Non-memory-conflict abort: mark non-discoverable (§4.4.2).
			if c.ertEntry != nil {
				c.ertEntry.IsConvertible = false
			}
			return clear.RetrySpeculative
		default:
			return clear.RetrySpeculative
		}

	case ModeFailedDiscovery:
		a := c.disc.Assess(c.m.Cfg.L1)
		c.lastAssessed = true
		c.lastAssessment = a
		if c.ertEntry != nil {
			if c.disc.SQOverflow || c.disc.CacheOverflow || c.disc.ALT.Overflowed {
				// Assessment 1 failed: the AR does not fit the speculation
				// window; mark non-convertible.
				c.ertEntry.IsConvertible = false
			}
			c.ertEntry.IsImmutable = a.Immutable
		}
		if a.Mode == clear.RetrySCL || a.Mode == clear.RetryNSCL {
			if c.m.Cfg.InjectSecondSpecRetry ||
				(c.m.fault != nil && c.m.fault.ForceSecondSpecRetry(c.id)) {
				// Fault injection (tests and chaos campaigns only): ignore
				// the convertible assessment and take a second plain
				// speculative retry — the exact bug class the single-retry
				// invariant exists to catch.
				return clear.RetrySpeculative
			}
			c.disc.ALT.FinalizeForMode(c.effectiveCLMode(a.Mode), c.crt)
		}
		return a.Mode

	case ModeSCL:
		switch reason {
		case htm.AbortMemoryConflict:
			// The CRT learned the conflicting read; retry S-CL with the
			// wider lock set.
			c.disc.ALT.FinalizeForMode(clear.RetrySCL, c.crt)
			return clear.RetrySCL
		default:
			// Deviation or other non-conflict failure: the learned
			// footprint is stale; fall back to a plain speculative retry,
			// which re-runs discovery.
			return clear.RetrySpeculative
		}

	case ModeNSCL:
		if reason == htm.AbortMemoryConflict {
			// The lock walk was refused by a prioritised holder; the
			// learned footprint is still immutable, so NS-CL is retried
			// once the holder drains.
			return clear.RetryNSCL
		}
		// A deviation (immutability misprediction): rediscover.
		return clear.RetrySpeculative

	default:
		return clear.RetrySpeculative
	}
}

// effectiveCLMode applies the SCLLockAllReads ablation: when locking all
// reads, the S-CL lock set is computed like NS-CL's (every learned line).
func (c *Core) effectiveCLMode(m clear.RetryMode) clear.RetryMode {
	if m == clear.RetrySCL && c.m.Cfg.SCLLockAllReads {
		return clear.RetryNSCL
	}
	return m
}

// commitSpeculative finishes a successful speculative (or conflict-free
// discovery) attempt. The commit point is *now*: the Halt step verified no
// abort is pending, so the buffered stores become globally visible
// immediately and the transactional sets are dropped — a remote request
// arriving during the drain delay must not abort an already-committed
// transaction. The drain latency only delays this core.
func (c *Core) commitSpeculative() {
	drain := c.m.Cfg.CommitStoreLat * sim.Tick(len(c.sq))
	if c.m.probe != nil {
		c.m.probe.OnCommit(CommitInfo{
			Core:            c.id,
			ProgID:          c.inv.Prog.ID,
			Attempt:         c.attempt,
			Mode:            c.mode,
			ConflictRetries: c.conflictRetries,
			StoreLines:      c.storeLinesForProbe(),
		})
	}
	c.applySQ()
	c.clearTxSets()
	c.disc.Disable()
	c.mode = ModeIdle
	if c.power {
		c.m.Power.Release(c.id)
		c.power = false
	}
	if c.ertEntry != nil {
		c.ertEntry.NoteCommit()
	}
	c.pol.OnCommit(policy.Outcome{
		ProgID:          c.inv.Prog.ID,
		Mode:            policy.ExecSpeculative,
		ConflictRetries: c.conflictRetries,
	})
	c.m.Stats.Instructions += c.attemptInstr
	c.m.Stats.RecordCommit(stats.CommitSpeculative, c.conflictRetries)
	c.recordFig1Attempt(true)
	c.engine().Schedule(drain, c.finishInvFn)
}

// clearTxSets drops the transactional read/write sets so remote requests no
// longer treat this core as a conflicting holder.
func (c *Core) clearTxSets() {
	c.readSet.Clear()
	c.writeSet.Clear()
}

// applySQ drains the store queue to memory in program order.
func (c *Core) applySQ() {
	for _, s := range c.sq {
		c.m.Mem.WriteWord(s.addr, s.val)
	}
	c.sq = c.sq[:0]
}

func (c *Core) finishInvocation() {
	c.m.Stats.RecordLatency(c.engine().Now() - c.invStart)
	c.mode = ModeIdle
	c.engine().Schedule(1, c.nextInvocationFn)
}

// recordFig1Attempt updates the Figure 1 footprint-pair instrumentation at
// the end of an attempt. The first aborted attempt captures the reference
// footprint; the immediately following attempt completes the pair.
func (c *Core) recordFig1Attempt(committed bool) {
	switch c.attempt {
	case 0:
		if !committed {
			c.fig1First.Clear()
			for _, l := range c.touched.Lines() {
				c.fig1First.Add(l)
			}
			c.fig1HasFirst = true
		}
	case 1:
		if !c.fig1HasFirst || c.fig1First.Len() == 0 || c.fig1HasRetry {
			// No reference footprint: the first attempt aborted before
			// touching memory (e.g. a fallback-lock invalidation at
			// XBegin); such pairs say nothing about mutability.
			return
		}
		c.fig1Retry.Clear()
		for _, l := range c.touched.Lines() {
			c.fig1Retry.Add(l)
		}
		c.fig1HasRetry = true
		c.m.Stats.RetryPairs++
		if c.fig1PairImmutable(committed) {
			c.m.Stats.ImmutableSmallPairs++
		}
	}
}

// fig1PairImmutable decides whether the (first attempt, first retry) pair
// shows a small, unchanged footprint: at most 32 lines, and the retry
// touched exactly the same lines (when the retry ran to completion) or a
// subset (when it aborted part-way, the strongest property observable).
func (c *Core) fig1PairImmutable(retryCompleted bool) bool {
	if c.fig1First.Len() > clear.ALTEntries || c.fig1First.Len() == 0 {
		return false
	}
	subset := true
	c.fig1Retry.ForEach(func(l mem.LineAddr) {
		if !c.fig1First.Has(l) {
			subset = false
		}
	})
	if !subset {
		return false
	}
	if retryCompleted && c.fig1Retry.Len() != c.fig1First.Len() {
		return false
	}
	return true
}

func (c *Core) unpinAll() {
	for _, e := range c.disc.ALT.Entries() {
		if c.l1.Pinned(e.Addr) {
			c.l1.Unpin(e.Addr)
		}
	}
}
