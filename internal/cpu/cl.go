package cpu

import (
	"repro/internal/coherence"
	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/policy"
	"repro/internal/stats"
)

// beginCLAttempt starts an NS-CL or S-CL re-execution (Figures 3 and 4):
// read-lock the fallback mutex, walk the ALT locking the required lines in
// lexicographic order, then run the AR body.
func (c *Core) beginCLAttempt() {
	c.resetAttemptState()
	if c.power {
		// A cacheline-locked re-execution is not a power transaction.
		c.m.Power.Release(c.id)
		c.power = false
	}
	if c.retryMode == clear.RetryNSCL {
		c.mode = ModeNSCL
		c.m.Stats.NSCLAttempts++
	} else {
		c.mode = ModeSCL
		c.m.Stats.SCLAttempts++
	}
	if c.m.probe != nil {
		c.m.probe.OnAttemptStart(c.id, c.mode, c.attempt, c.altLinesForProbe())
	}
	c.acquireFallbackReadLock()
}

// acquireFallbackReadLock spins until no AR is in (or waiting for) fallback
// mode, then takes the read lock (§4.3).
func (c *Core) acquireFallbackReadLock() {
	if c.m.Fallback.TryAcquireRead(c.id) {
		c.holdsReadLck = true
		c.lockWalk(0)
		return
	}
	c.engine().Schedule(c.m.Cfg.SpinInterval, c.acquireReadLckFn)
}

// lockWalk acquires the cacheline locks the ALT marked NeedsLocking, in
// table (lexicographic) order. Busy lines are retried after a backoff; the
// total order across cores makes the walk deadlock-free [38].
func (c *Core) lockWalk(i int) {
	alt := c.disc.ALT
	for i < alt.Len() && !alt.EntryAt(i).NeedsLocking {
		i++
	}
	if i >= alt.Len() {
		// All locks held; the AR body starts. (The paper overlaps
		// execution with the tail of the locking walk; we serialise them,
		// a timing-only simplification applied identically to all
		// configurations.)
		c.engine().Schedule(0, c.stepFn)
		return
	}
	e := alt.EntryAt(i)
	if c.m.Dir.Owner(e.Addr) == c.id {
		// Present in our cache with exclusive permission: the §5 "Hit"
		// path, lockable without further communication.
		e.Hit = true
	}
	res := c.m.Dir.Lock(c.id, e.Addr, coherence.ReqAttrs{})
	if res.Nacked {
		// A prioritised holder (power transaction, remote S-CL speculative
		// set) refused the lock: abort the CL attempt instead of spinning,
		// so no wait cycle can form (§5.2).
		c.abortNow(htm.AbortMemoryConflict)
		return
	}
	if res.Retry {
		c.m.Stats.LockRetries++
		c.walkIdx = i
		c.engine().Schedule(res.Latency, c.lockWalkFn)
		return
	}
	e.Locked = true
	c.m.Stats.LinesLocked++
	c.l1Insert(e.Addr)
	c.l1.Pin(e.Addr)
	c.walkIdx = i + 1
	lat := res.Latency
	if c.m.fault != nil {
		// Injected lock-holder preemption: the walk stalls while holding
		// this lock, so every contender on it spins longer — the ordered
		// locking argument must still guarantee progress.
		lat += c.m.fault.PreemptHolder(c.id)
	}
	c.engine().Schedule(lat, c.lockWalkFn)
}

// resumeLockWalk is the pre-bound continuation of an in-flight lock walk:
// it resumes at the saved table index (a typed event record rather than a
// fresh closure per scheduled step).
func (c *Core) resumeLockWalk() { c.lockWalk(c.walkIdx) }

// commitCL finishes a successful NS-CL or S-CL execution: the buffered
// stores land while every written line is still cacheline-locked, then the
// bulk unlock (§5.1) and the fallback read-lock release happen atomically at
// the commit point. Only the drain latency is charged afterwards.
func (c *Core) commitCL() {
	drain := c.m.Cfg.CommitStoreLat * simTick(len(c.sq))
	mode := stats.CommitNSCL
	if c.mode == ModeSCL {
		mode = stats.CommitSCL
	}
	if c.m.probe != nil {
		c.m.probe.OnCommit(CommitInfo{
			Core:            c.id,
			ProgID:          c.inv.Prog.ID,
			Attempt:         c.attempt,
			Mode:            c.mode,
			ConflictRetries: c.conflictRetries,
			StoreLines:      c.storeLinesForProbe(),
		})
	}
	c.applySQ()
	c.clearTxSets()
	// Consume the CRT hints this execution used: the conflicts they
	// guarded against did not recur.
	for _, e := range c.disc.ALT.Entries() {
		if e.NeedsLocking && !e.Written {
			c.crt.Remove(e.Addr)
		}
	}
	c.m.Dir.UnlockAll(c.id)
	c.unpinAll()
	c.mode = ModeIdle
	if c.holdsReadLck {
		c.m.Fallback.ReleaseRead(c.id)
		c.holdsReadLck = false
	}
	if c.ertEntry != nil {
		c.ertEntry.NoteCommit()
	}
	execMode := policy.ExecNSCL
	if mode == stats.CommitSCL {
		execMode = policy.ExecSCL
	}
	c.pol.OnCommit(policy.Outcome{
		ProgID:          c.inv.Prog.ID,
		Mode:            execMode,
		ConflictRetries: c.conflictRetries,
	})
	c.m.Stats.Instructions += c.attemptInstr
	c.m.Stats.RecordCommit(mode, c.conflictRetries)
	c.m.Stats.RecordCommitAR(c.inv.Prog.ID, c.inv.Prog.Name, mode)
	c.recordFig1Attempt(true)
	c.engine().Schedule(drain, c.finishInvFn)
}
