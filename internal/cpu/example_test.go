package cpu_test

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Example runs eight cores incrementing one shared counter atomically under
// CLEAR: the immutable single-line region converts to NS-CL after its first
// conflict and every retry succeeds on the first attempt.
func Example() {
	memory := mem.NewMemory(0x10000)
	counter := memory.AllocLine()

	b := isa.NewBuilder("counter/add")
	b.Load(isa.R8, isa.R0, 0)
	b.Addi(isa.R8, isa.R8, 1)
	b.Store(isa.R0, 0, isa.R8)
	b.Halt()
	prog := b.Build(1)

	cfg := cpu.DefaultSystemConfig()
	cfg.Cores = 8
	cfg.CLEAR = true
	machine, err := cpu.NewMachine(cfg, memory)
	if err != nil {
		panic(err)
	}

	const ops = 50
	feeds := make([]cpu.InvocationSource, cfg.Cores)
	for i := range feeds {
		invs := make([]cpu.Invocation, ops)
		for j := range invs {
			invs[j] = cpu.Invocation{
				Prog: prog,
				Regs: []cpu.RegInit{{Reg: isa.R0, Val: uint64(counter)}},
			}
		}
		feeds[i] = &cpu.SliceSource{Invs: invs}
	}
	machine.AttachFeeds(feeds)
	if err := machine.Run(100_000_000); err != nil {
		panic(err)
	}

	fmt.Println("counter:", memory.ReadWord(counter))
	fmt.Println("fallback commits:", machine.Stats.CommitsByMode[3])
	fmt.Printf("first-retry share: %.0f%%\n", 100*machine.Stats.FirstRetryShare())
	// Output:
	// counter: 400
	// fallback commits: 0
	// first-retry share: 100%
}
