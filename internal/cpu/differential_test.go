package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// refExec is a plain Go reference interpreter for loop-free programs: the
// differential oracle for the simulator's instruction semantics.
func refExec(p *isa.Program, regs map[isa.Reg]uint64, memory map[mem.Addr]uint64) {
	var r [isa.NumRegs]uint64
	for k, v := range regs {
		r[k] = v
	}
	pc := 0
	for steps := 0; steps < 10000; steps++ {
		in := p.Code[pc]
		switch in.Op {
		case isa.OpNop:
		case isa.OpLoadImm:
			r[in.Dst] = uint64(in.Imm)
		case isa.OpMov:
			r[in.Dst] = r[in.Src1]
		case isa.OpAdd:
			r[in.Dst] = r[in.Src1] + r[in.Src2]
		case isa.OpAddImm:
			r[in.Dst] = r[in.Src1] + uint64(in.Imm)
		case isa.OpSub:
			r[in.Dst] = r[in.Src1] - r[in.Src2]
		case isa.OpMulImm:
			r[in.Dst] = r[in.Src1] * uint64(in.Imm)
		case isa.OpAndImm:
			r[in.Dst] = r[in.Src1] & uint64(in.Imm)
		case isa.OpShrImm:
			r[in.Dst] = r[in.Src1] >> uint64(in.Imm)
		case isa.OpXor:
			r[in.Dst] = r[in.Src1] ^ r[in.Src2]
		case isa.OpLoad:
			r[in.Dst] = memory[mem.Addr(r[in.Src1]+uint64(in.Imm))]
		case isa.OpStore:
			memory[mem.Addr(r[in.Src1]+uint64(in.Imm))] = r[in.Src2]
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			a, b := r[in.Src1], r[in.Src2]
			taken := false
			switch in.Op {
			case isa.OpBeq:
				taken = a == b
			case isa.OpBne:
				taken = a != b
			case isa.OpBlt:
				taken = a < b
			case isa.OpBge:
				taken = a >= b
			}
			if taken {
				pc = int(in.Imm)
				continue
			}
		case isa.OpHalt:
			return
		}
		pc++
	}
}

// genRandomProgram builds a random but well-formed AR over a small arena:
// ALU ops on registers plus loads/stores through two arena base registers
// with random (aligned, in-range) offsets, and forward-only branches so the
// program always terminates.
func genRandomProgram(rng *sim.RNG, arenaWords int) *isa.Program {
	b := isa.NewBuilder("fuzz")
	n := 4 + rng.Intn(24)
	labels := 0
	pending := -1 // instructions until the pending label binds
	for i := 0; i < n; i++ {
		if pending == 0 {
			b.Label(labelName(labels))
			labels++
			pending = -1
		} else if pending > 0 {
			pending--
		}
		dst := isa.Reg(4 + rng.Intn(8)) // r4..r11, keep r0/r1 as arena bases
		s1 := isa.Reg(rng.Intn(12))
		s2 := isa.Reg(rng.Intn(12))
		off := int64(rng.Intn(arenaWords) * 8)
		switch rng.Intn(10) {
		case 0:
			b.Li(dst, int64(rng.Intn(1000)))
		case 1:
			b.Mov(dst, s1)
		case 2:
			b.Add(dst, s1, s2)
		case 3:
			b.Addi(dst, s1, int64(rng.Intn(64)))
		case 4:
			b.Xor(dst, s1, s2)
		case 5:
			b.Shri(dst, s1, int64(rng.Intn(8)))
		case 6:
			b.Load(dst, isa.R0, off)
		case 7:
			b.Load(dst, isa.R1, off)
		case 8:
			b.Store(isa.R0, off, s1)
		case 9:
			if pending < 0 {
				// Forward branch to a label bound a few instructions later.
				b.Beq(s1, s2, labelName(labels))
				pending = 1 + rng.Intn(3)
			} else {
				b.Store(isa.R1, off, s1)
			}
		}
	}
	if pending >= 0 {
		b.Label(labelName(labels))
	}
	b.Halt()
	return b.Build(1)
}

func labelName(i int) string { return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }

// TestDifferentialSemantics: random programs produce identical arena
// contents on the simulator (single core, conflict-free) and the reference
// interpreter.
func TestDifferentialSemantics(t *testing.T) {
	const arenaWords = 16
	prop := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		prog := genRandomProgram(rng, arenaWords)

		// Arena: two line-aligned regions with random initial contents.
		memory := mem.NewMemory(0x10000)
		a0 := memory.Alloc(arenaWords*8, mem.LineSize)
		a1 := memory.Alloc(arenaWords*8, mem.LineSize)
		ref := map[mem.Addr]uint64{}
		for w := 0; w < arenaWords; w++ {
			v0, v1 := rng.Uint64()%1000, rng.Uint64()%1000
			memory.WriteWord(a0+mem.Addr(w*8), v0)
			memory.WriteWord(a1+mem.Addr(w*8), v1)
			ref[a0+mem.Addr(w*8)] = v0
			ref[a1+mem.Addr(w*8)] = v1
		}
		presets := map[isa.Reg]uint64{isa.R0: uint64(a0), isa.R1: uint64(a1)}

		refExec(prog, presets, ref)

		cfg := DefaultSystemConfig()
		cfg.Cores = 1
		m, err := NewMachine(cfg, memory)
		if err != nil {
			t.Fatal(err)
		}
		m.AttachFeeds([]InvocationSource{&SliceSource{Invs: []Invocation{{
			Prog: prog,
			Regs: []RegInit{{Reg: isa.R0, Val: uint64(a0)}, {Reg: isa.R1, Val: uint64(a1)}},
		}}}})
		if err := m.Run(10_000_000); err != nil {
			t.Logf("program:\n%s", isa.Disassemble(prog))
			t.Fatal(err)
		}
		for w := 0; w < arenaWords; w++ {
			for _, base := range []mem.Addr{a0, a1} {
				addr := base + mem.Addr(w*8)
				if memory.ReadWord(addr) != ref[addr] {
					t.Logf("divergence at %s: sim=%d ref=%d\nprogram:\n%s",
						addr, memory.ReadWord(addr), ref[addr], isa.Disassemble(prog))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialSemanticsUnderCLEAR: the same differential property holds
// with CLEAR enabled and several cores running disjoint random programs
// concurrently — machine-level interleaving must not perturb per-core
// semantics.
func TestDifferentialSemanticsUnderCLEAR(t *testing.T) {
	const arenaWords = 8
	prop := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		const cores = 4
		memory := mem.NewMemory(0x100000)

		type plan struct {
			prog *isa.Program
			a0   mem.Addr
			ref  map[mem.Addr]uint64
		}
		plans := make([]plan, cores)
		for i := range plans {
			prog := genRandomProgram(rng, arenaWords)
			a0 := memory.Alloc(arenaWords*8, mem.LineSize)
			ref := map[mem.Addr]uint64{}
			for w := 0; w < arenaWords; w++ {
				v := rng.Uint64() % 1000
				memory.WriteWord(a0+mem.Addr(w*8), v)
				ref[a0+mem.Addr(w*8)] = v
			}
			// Both base registers point at the core's private arena.
			refExec(prog, map[isa.Reg]uint64{isa.R0: uint64(a0), isa.R1: uint64(a0)}, ref)
			plans[i] = plan{prog, a0, ref}
		}

		cfg := DefaultSystemConfig()
		cfg.Cores = cores
		cfg.CLEAR = true
		cfg.Seed = seed
		m, err := NewMachine(cfg, memory)
		if err != nil {
			t.Fatal(err)
		}
		feeds := make([]InvocationSource, cores)
		for i, pl := range plans {
			feeds[i] = &SliceSource{Invs: []Invocation{{
				Prog: pl.prog,
				Regs: []RegInit{{Reg: isa.R0, Val: uint64(pl.a0)}, {Reg: isa.R1, Val: uint64(pl.a0)}},
			}}}
		}
		m.AttachFeeds(feeds)
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		for _, pl := range plans {
			for addr, want := range pl.ref {
				if memory.ReadWord(addr) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
