package cpu

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/isa"
	"repro/internal/lineset"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Mode is a core's current execution mode.
type Mode int

const (
	// ModeIdle: between invocations.
	ModeIdle Mode = iota
	// ModeSpeculative: plain HTM transaction (possibly with discovery
	// observing, possibly holding the power token).
	ModeSpeculative
	// ModeFailedDiscovery: a conflict arrived but discovery continues to
	// the end of the AR with the abort signal held (§4.2, §5.1).
	ModeFailedDiscovery
	// ModeSCL: speculative cacheline-locked re-execution.
	ModeSCL
	// ModeNSCL: non-speculative cacheline-locked re-execution.
	ModeNSCL
	// ModeFallback: non-speculative execution under the global lock.
	ModeFallback
)

func (m Mode) String() string {
	switch m {
	case ModeIdle:
		return "idle"
	case ModeSpeculative:
		return "speculative"
	case ModeFailedDiscovery:
		return "failed-discovery"
	case ModeSCL:
		return "S-CL"
	case ModeNSCL:
		return "NS-CL"
	case ModeFallback:
		return "fallback"
	}
	return "unknown"
}

type storeEntry struct {
	addr mem.Addr
	val  uint64
}

// pendingOp is the single in-flight memory operation of a core: the typed
// event record consumed by completeOp when the operation's latency elapses.
// The interpreter is strictly sequential per core — at most one load or
// store awaits completion at a time — so one slot suffices and scheduling a
// completion allocates nothing.
type pendingOp struct {
	in    isa.Instr
	addr  mem.Addr
	indir bool
	store bool
}

// Core is one simulated hardware thread: interpreter state, transactional
// state, and CLEAR per-core tables.
type Core struct {
	id int
	m  *Machine
	l1 *cache.Cache

	// Hot attempt scalars, packed up front so the step prologue (abort
	// check, instruction fetch, windowing) touches the struct's first
	// cachelines instead of fields scattered behind the set tables.
	mode         Mode
	pc           int
	pendingAbort htm.AbortReason
	attemptInstr uint64
	attemptLoads int
	indir        uint32
	power        bool
	holdsReadLck bool
	waitedOnLock bool

	feed InvocationSource

	// CLEAR structures (allocated even when CLEAR is off; simply unused).
	ert  *clear.ERT
	crt  *clear.CRT
	disc *clear.Discovery

	// Current invocation.
	inv             Invocation
	attempt         int
	conflictRetries int
	retryMode       clear.RetryMode
	ertEntry        *clear.ERTEntry
	heldReason      htm.AbortReason

	// lastAssessed/lastAssessment capture the discovery assessment of the
	// most recent decideRetryMode call, for the attempt probe (probe.go).
	lastAssessed   bool
	lastAssessment clear.Assessment

	// lastProposed is the §4.3 mechanism proposal of the most recent
	// decision, before any policy override; nextBackoff is the policy's
	// backoff for the next attempt. Both feed the attempt probe.
	lastProposed clear.RetryMode
	nextBackoff  sim.Tick

	// Figure 1 instrumentation. The sets are epoch-cleared and reused
	// across invocations; the Has flags say whether the current invocation
	// has filled them.
	fig1First    lineset.LineSet
	fig1Retry    lineset.LineSet
	fig1HasFirst bool
	fig1HasRetry bool

	// invStart is when the current invocation's first attempt began
	// (after think time), for the latency histogram.
	invStart sim.Tick

	// Attempt state (hot scalars live at the top of the struct).
	regs      [isa.NumRegs]uint64
	readSet   lineset.LineSet
	writeSet  lineset.LineSet
	sq        []storeEntry
	sqForward lineset.AddrMap
	discStart sim.Tick

	// probeLines is the reusable scratch behind CommitInfo.StoreLines, so
	// an attached probe does not cost one slice allocation per commit.
	probeLines []mem.LineAddr

	// touched records the attempt's distinct lines for Figure 1 (bounded).
	touched lineset.LineSet

	// failedFetched caches lines already fetched by failed-mode loads in
	// this attempt (they do not install into the coherent L1, but the data
	// is at hand and re-reads cost a hit, §5.1 "loads are allowed to read
	// from cache").
	failedFetched lineset.LineSet

	// rng drives retry-backoff jitter; deterministic per (run seed, core).
	rng *sim.RNG

	// pol owns the §4.3 next-mode decision (internal/policy); polCtx is the
	// reusable decision context so the per-abort path allocates nothing.
	pol    policy.Policy
	polCtx policy.Context

	// Pre-bound event functions, created once in newCore. Scheduling a
	// method value (c.step) evaluates to a fresh closure on every use, and
	// since the engine retains it the allocation is a heap allocation —
	// on every simulated instruction. Binding each continuation once makes
	// the whole schedule path allocation-free.
	stepFn           sim.Event
	beginAttemptFn   sim.Event
	nextInvocationFn sim.Event
	finishInvFn      sim.Event
	completeOpFn     sim.Event
	lockWalkFn       sim.Event
	acquireReadLckFn sim.Event
	tryFallbackWrFn  sim.Event

	// op is the single pending memory operation (see pendingOp); walkIdx is
	// the resume index of an interrupted lock walk.
	op      pendingOp
	walkIdx int

	done bool
}

func newCore(id int, m *Machine) *Core {
	c := &Core{
		id:   id,
		m:    m,
		l1:   cache.New(m.Cfg.L1),
		ert:  clear.NewERTSized(m.Cfg.ERTEntries),
		crt:  clear.NewCRTSized(m.Cfg.CRTEntries, m.Cfg.CRTWays),
		disc: clear.NewDiscoverySized(m.Cfg.ALTEntries),
		rng:  sim.NewRNG(m.Cfg.Seed*0x9e3779b97f4a7c15 + uint64(id) + 1),
	}
	c.pol = policy.New(m.Cfg.Policy, policy.Env{
		Seed:        m.Cfg.Seed,
		Core:        id,
		RetryLimit:  m.Cfg.RetryLimit,
		BackoffBase: m.Cfg.BackoffBase,
	})
	c.polCtx.Core = id
	c.polCtx.Rand = c.rng.Intn
	c.stepFn = c.step
	c.beginAttemptFn = c.beginAttempt
	c.nextInvocationFn = c.nextInvocation
	c.finishInvFn = c.finishInvocation
	c.completeOpFn = c.completeOp
	c.lockWalkFn = c.resumeLockWalk
	c.acquireReadLckFn = c.acquireFallbackReadLock
	c.tryFallbackWrFn = c.tryAcquireFallbackWrite
	return c
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Mode returns the core's current execution mode (tests observe it).
func (c *Core) Mode() Mode { return c.mode }

func (c *Core) engine() *sim.Engine { return c.m.Engine }

func (c *Core) start() {
	c.engine().Schedule(0, c.nextInvocationFn)
}

func (c *Core) nextInvocation() {
	inv, ok := c.feed.Next()
	if !ok {
		c.done = true
		c.mode = ModeIdle
		c.m.coreFinished()
		return
	}
	c.inv = inv
	c.attempt = 0
	c.conflictRetries = 0
	c.retryMode = clear.RetrySpeculative
	c.heldReason = htm.AbortNone
	c.ertEntry = nil
	c.fig1HasFirst = false
	c.fig1HasRetry = false
	c.waitedOnLock = false
	c.invStart = c.engine().Now() + inv.Think
	if c.m.probe != nil {
		c.m.probe.OnInvocationStart(c.id, inv.Prog.ID)
	}
	c.engine().Schedule(inv.Think, c.beginAttemptFn)
}

// signalAbort delivers an asynchronous abort (from the coherence hook); the
// first reason wins.
func (c *Core) signalAbort(r htm.AbortReason) {
	if c.pendingAbort == htm.AbortNone {
		c.pendingAbort = r
	}
}

// OnRemoteRequest implements coherence.CoreHook: another core wants line.
// This runs synchronously inside the requester's directory transaction.
func (c *Core) OnRemoteRequest(line mem.LineAddr, isWrite bool, requester int, attrs coherence.ReqAttrs) coherence.HolderResponse {
	inRead := c.readSet.Has(line)
	inWrite := c.writeSet.Has(line)
	conflict := (isWrite && (inRead || inWrite)) || (!isWrite && inWrite)

	if !conflict {
		return c.yieldLine(line, isWrite)
	}

	if c.m.probe != nil {
		c.m.probe.OnConflict(c.id, line, isWrite, requester)
	}
	switch c.mode {
	case ModeSpeculative:
		if isWrite && line == c.m.Fallback.Line {
			// Another thread is taking the fallback lock out from under our
			// subscription.
			c.signalAbort(htm.AbortOtherFallback)
			return c.yieldLine(line, isWrite)
		}
		if attrs.NonSpec {
			// Non-speculative fallback execution always wins.
			c.signalAbort(htm.AbortMemoryConflict)
			return c.yieldLine(line, isWrite)
		}
		if c.power && !attrs.Power {
			// Power-mode holder refuses; the requester aborts (§5.2).
			return coherence.HolderNacks
		}
		// Requester wins.
		if c.m.Cfg.InjectLostInvalidation {
			// Planted bug (tests only): the invalidation is processed but the
			// abort signal is dropped, so this transaction may commit values
			// it read before the remote write — a serializability violation
			// that survives a final-memory comparison.
			return c.yieldLine(line, isWrite)
		}
		c.signalAbort(htm.AbortMemoryConflict)
		return c.yieldLine(line, isWrite)

	case ModeFailedDiscovery:
		// Already failed: nothing more to lose; yield without a new signal.
		return c.yieldLine(line, isWrite)

	case ModeSCL:
		// Locked lines are refused at the directory and never reach this
		// hook, so this is a conflict on one of our speculative (non-
		// locked) accesses. The S-CL execution aborts — and the CRT learns
		// the line, so the next S-CL attempt locks it and cannot suffer
		// the same conflict again (§4.4.2, §5.1: "received an invalidation
		// that caused a conflict and abort"). The one exception is a
		// power-mode requester: S-CL and power transactions answer each
		// other with nacks instead of aborting (§5.2).
		if c.m.Cfg.PowerTM && attrs.Power {
			return coherence.HolderNacks
		}
		if !attrs.Locking {
			c.noteConflictingRead(line)
		}
		c.signalAbort(htm.AbortMemoryConflict)
		return c.yieldLine(line, isWrite)

	case ModeNSCL:
		// NS-CL holds its entire footprint locked, so a conflicting request
		// can only be a stale set entry; treat as yield.
		return c.yieldLine(line, isWrite)

	default: // ModeIdle, ModeFallback
		return c.yieldLine(line, isWrite)
	}
}

// yieldLine relinquishes line to a remote writer (dropping it from the L1
// and the transactional sets) and answers HolderYields. A method rather
// than a per-call closure: OnRemoteRequest runs inside every remote
// directory transaction, and the old `yield := func() {...}` literal
// allocated on each invocation.
func (c *Core) yieldLine(line mem.LineAddr, isWrite bool) coherence.HolderResponse {
	if isWrite {
		c.l1.Remove(line)
		c.readSet.Remove(line)
		c.writeSet.Remove(line)
	}
	return coherence.HolderYields
}

// completeOp consumes the pending-op slot when a memory operation's latency
// has elapsed (the engine's typed-event continuation for loads and stores).
func (c *Core) completeOp() {
	op := c.op
	if op.store {
		c.completeStore(op.in, op.addr, op.indir)
	} else {
		c.completeLoad(op.in, op.addr, op.indir)
	}
}

// scheduleLoadDone files the load's completion record and schedules it.
func (c *Core) scheduleLoadDone(lat sim.Tick, in isa.Instr, addr mem.Addr, indir bool) {
	c.op = pendingOp{in: in, addr: addr, indir: indir}
	c.engine().Schedule(lat, c.completeOpFn)
}

// scheduleStoreDone files the store's completion record and schedules it.
func (c *Core) scheduleStoreDone(lat sim.Tick, in isa.Instr, addr mem.Addr, indir bool) {
	c.op = pendingOp{in: in, addr: addr, indir: indir, store: true}
	c.engine().Schedule(lat, c.completeOpFn)
}

// noteConflictingRead records line in the CRT: a read that did not require
// locking but caused a conflict; the next S-CL attempt will lock it (§5.1).
func (c *Core) noteConflictingRead(line mem.LineAddr) {
	if !c.m.Cfg.CLEAR {
		return
	}
	if !c.writeSet.Has(line) {
		c.crt.Insert(line)
		c.m.Stats.CRTInsertions++
	}
}
