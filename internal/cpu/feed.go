package cpu

import (
	"repro/internal/isa"
	"repro/internal/sim"
)

// RegInit presets one architectural register before an AR invocation runs —
// the values the surrounding (non-atomic) code would have computed, e.g.
// the two slot addresses of an arrayswap.
type RegInit struct {
	Reg isa.Reg
	Val uint64
}

// Invocation is one dynamic execution of an atomic region.
type Invocation struct {
	Prog *isa.Program
	Regs []RegInit
	// Think is non-critical work (cycles) executed before entering the AR,
	// modelling the code between atomic regions.
	Think sim.Tick
}

// InvocationSource feeds a core its stream of AR invocations.
type InvocationSource interface {
	// Next returns the next invocation, or ok=false when the thread's work
	// is done.
	Next() (inv Invocation, ok bool)
}

// SliceSource serves a pre-generated invocation list.
type SliceSource struct {
	Invs []Invocation
	pos  int
}

// Next implements InvocationSource.
func (s *SliceSource) Next() (Invocation, bool) {
	if s.pos >= len(s.Invs) {
		return Invocation{}, false
	}
	inv := s.Invs[s.pos]
	s.pos++
	return inv, true
}

// FuncSource adapts a generator function to InvocationSource.
type FuncSource func() (Invocation, bool)

// Next implements InvocationSource.
func (f FuncSource) Next() (Invocation, bool) { return f() }
