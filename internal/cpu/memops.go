package cpu

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/htm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// StrictChecks enables expensive internal invariant assertions (cache vs
// directory consistency on silent accesses). Tests switch it on; it is off
// for benchmark runs.
var StrictChecks = false

// effAddr computes the effective address of a memory instruction.
func (c *Core) effAddr(in isa.Instr) mem.Addr {
	return mem.Addr(c.regs[in.Src1] + uint64(in.Imm))
}

// readData returns the value visible to this core at addr: its own buffered
// store if one exists (store-to-load forwarding), else committed memory.
func (c *Core) readData(addr mem.Addr) uint64 {
	if v, ok := c.sqForward.Get(addr); ok {
		return v
	}
	return c.m.Mem.ReadWord(addr)
}

// completeLoad finishes a load after its latency elapsed: read the value,
// update register and indirection state, record discovery info, advance.
func (c *Core) completeLoad(in isa.Instr, addr mem.Addr, indirection bool) {
	c.regs[in.Dst] = c.readData(addr)
	c.setIndir(in.Dst, true)
	line := addr.Line()
	if c.m.probe != nil {
		c.m.probe.OnMemAccess(c.id, addr, c.regs[in.Dst], false, c.mode)
	}
	c.disc.RecordAccess(line, c.m.Dir.SetOf(line), false, indirection)
	if c.discoveryExhausted() {
		c.abortNow(c.heldReason)
		return
	}
	c.pc++
	c.engine().Schedule(0, c.stepFn)
}

// discoveryExhausted implements assessment 1 of §4.1 for failed-mode
// discovery: once the speculative window (ALT capacity, cache residency) is
// exhausted, "there is no reason to continue to its end and the AR is
// immediately aborted".
func (c *Core) discoveryExhausted() bool {
	return c.mode == ModeFailedDiscovery && (c.disc.ALT.Overflowed || c.disc.CacheOverflow)
}

// completeStore finishes a store: buffer it in the SQ (speculative and CL
// modes) or write memory directly (fallback), record discovery info,
// advance.
func (c *Core) completeStore(in isa.Instr, addr mem.Addr, indirection bool) {
	val := c.regs[in.Src2]
	if c.mode == ModeFallback {
		c.m.Mem.WriteWord(addr, val)
	} else {
		if len(c.sq) >= c.m.Cfg.SQEntries {
			c.sqOverflow()
			return
		}
		c.sq = append(c.sq, storeEntry{addr: addr, val: val})
		c.sqForward.Set(addr, val)
	}
	line := addr.Line()
	if c.m.probe != nil {
		c.m.probe.OnMemAccess(c.id, addr, val, true, c.mode)
	}
	c.disc.RecordAccess(line, c.m.Dir.SetOf(line), true, indirection)
	if c.discoveryExhausted() {
		c.abortNow(c.heldReason)
		return
	}
	c.pc++
	c.engine().Schedule(0, c.stepFn)
}

// sqOverflow handles a full store queue according to the mode.
func (c *Core) sqOverflow() {
	switch c.mode {
	case ModeFailedDiscovery:
		// §5.1: the SQ-Full counter is increased and the failed AR aborts
		// immediately.
		c.disc.SQOverflow = true
		if c.ertEntry != nil {
			c.ertEntry.NoteSQOverflow()
		}
		c.abortNow(c.heldReason)
	default:
		// Speculative window exhausted.
		c.abortNow(htm.AbortCapacity)
	}
}

// conflictOnOwnRequest handles our own coherence request being refused
// (NACK). With active discovery the attempt converts to failed mode and the
// instruction re-executes under failed-mode rules; otherwise the attempt
// aborts.
func (c *Core) conflictOnOwnRequest() {
	if c.mode == ModeSpeculative && c.disc.Active && !c.m.Cfg.DisableDiscoveryContinuation {
		c.enterFailedMode(htm.AbortMemoryConflict)
		c.engine().Schedule(1, c.stepFn) // re-execute at same pc in failed mode
		return
	}
	c.abortNow(htm.AbortMemoryConflict)
}

func (c *Core) doLoad(in isa.Instr) {
	addr := c.effAddr(in)
	if !addr.Aligned() {
		// Inconsistent speculative data produced a bogus address; a real
		// machine would fault and abort the transaction.
		c.abortIllegalAccess()
		return
	}
	line := addr.Line()
	indirection := c.indirOf(in.Src1)
	// A line already in the read set is already in the Figure 1 footprint
	// set (every read-set insertion below follows a trackTouched, the
	// fallback lock line is never a program address, and touched only grows
	// within an attempt), so the common steady-state load costs exactly one
	// table probe.
	hasRS := false
	switch c.mode {
	case ModeSpeculative, ModeSCL:
		hasRS = c.readSet.Has(line)
	}
	if !hasRS {
		c.trackTouched(line)
	}
	c.m.Stats.L1Accesses++
	c.attemptLoads++
	if c.m.Cfg.SLE && c.attemptLoads > c.m.Cfg.LQEntries && c.speculationWindowed() {
		c.windowExhausted()
		return
	}

	switch c.mode {
	case ModeSpeculative:
		// L1 residency implies we are a registered sharer (or owner) at
		// the directory — invalidations remove lines from the L1 through
		// the hook — so a hit reads locally and only extends the local
		// read set, exactly like read-set tracking in the L1 of a real
		// HTM.
		if hasRS {
			if StrictChecks && !(c.m.Dir.Sharers(line).Has(c.id) || c.m.Dir.Owner(line) == c.id) {
				panic(fmt.Sprintf("core %d silent read of %s without directory registration (tick %d)", c.id, line, c.engine().Now()))
			}
			c.scheduleLoadDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		if c.writeSet.Has(line) || c.l1.Access(line) {
			if StrictChecks && !(c.m.Dir.Sharers(line).Has(c.id) || c.m.Dir.Owner(line) == c.id) {
				panic(fmt.Sprintf("core %d silent read of %s without directory registration (tick %d)", c.id, line, c.engine().Now()))
			}
			c.readSet.Add(line)
			c.scheduleLoadDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		res := c.m.Dir.Read(c.id, line, coherence.ReqAttrs{Power: c.power})
		if res.Nacked {
			c.conflictOnOwnRequest()
			return
		}
		if res.Retry {
			c.engine().Schedule(res.Latency, c.stepFn) // re-issue
			return
		}
		c.readSet.Add(line)
		c.l1Insert(line)
		c.scheduleLoadDone(res.Latency, in, addr, indirection)

	case ModeFailedDiscovery:
		if c.l1.Access(line) || c.failedFetched.Has(line) {
			c.scheduleLoadDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		res := c.m.Dir.Read(c.id, line, coherence.ReqAttrs{FailedMode: true})
		c.failedFetched.Add(line)
		c.scheduleLoadDone(res.Latency, in, addr, indirection)

	case ModeSCL:
		// S-CL "-writes-" mode (§4.4.2): the learned write set (plus CRT
		// hits) is locked; everything else — including lines outside the
		// learned footprint, since the footprint is not guaranteed
		// immutable — executes speculatively. The AR aborts when its own
		// requests are NACKed (§4.3 iii); conflicting remote requests to
		// its speculative lines are NACKed by the holder hook instead of
		// aborting it (§4.3 ii holds only in "-all-" mode).
		if hasRS {
			c.scheduleLoadDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		if c.lineLockedByUs(line) || c.writeSet.Has(line) || c.l1.Access(line) {
			c.readSet.Add(line)
			c.scheduleLoadDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		res := c.m.Dir.Read(c.id, line, coherence.ReqAttrs{NackableLoad: true})
		if res.Nacked {
			// The line is locked or held with priority remotely (Fig. 5):
			// abort (§4.3 iii). Only priority nacks enter the CRT;
			// lock-caused nacks are transient re-execution artefacts.
			if !res.LockNack {
				c.noteConflictingRead(line)
			}
			c.abortNow(htm.AbortMemoryConflict)
			return
		}
		if res.Retry {
			c.engine().Schedule(res.Latency, c.stepFn)
			return
		}
		c.readSet.Add(line)
		c.l1Insert(line)
		c.scheduleLoadDone(res.Latency, in, addr, indirection)

	case ModeNSCL:
		if !c.disc.ALT.Contains(line) {
			// Immutability misprediction; nothing is visible yet (stores
			// are buffered), so the attempt can still abort safely.
			c.abortNow(htm.AbortDeviation)
			return
		}
		c.scheduleLoadDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)

	case ModeFallback:
		if c.l1.Access(line) {
			c.scheduleLoadDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		res := c.m.Dir.Read(c.id, line, coherence.ReqAttrs{NonSpec: true})
		if res.Retry {
			c.engine().Schedule(res.Latency, c.stepFn)
			return
		}
		if res.Nacked {
			panic(fmt.Sprintf("cpu: core %d fallback load nacked at %s", c.id, line))
		}
		c.l1Insert(line)
		c.scheduleLoadDone(res.Latency, in, addr, indirection)

	default:
		panic(fmt.Sprintf("cpu: core %d load in mode %v", c.id, c.mode))
	}
}

func (c *Core) doStore(in isa.Instr) {
	addr := c.effAddr(in)
	if !addr.Aligned() {
		c.abortIllegalAccess()
		return
	}
	line := addr.Line()
	indirection := c.indirOf(in.Src1)
	// Mirror of the doLoad fast path: a line already in the write set is
	// already in touched, so the repeat store costs one probe.
	hasWS := false
	switch c.mode {
	case ModeSpeculative, ModeSCL:
		hasWS = c.writeSet.Has(line)
	}
	if !hasWS {
		c.trackTouched(line)
	}
	c.m.Stats.L1Accesses++

	switch c.mode {
	case ModeSpeculative:
		// Exclusive ownership (M/E in the L1) allows a silent local write;
		// otherwise a GetX/upgrade goes to the directory. An already-written
		// line needs no second write-set insertion.
		if hasWS {
			c.scheduleStoreDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		if c.m.Dir.Owner(line) == c.id && c.l1.Access(line) {
			c.writeSet.Add(line)
			c.scheduleStoreDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		res := c.m.Dir.Write(c.id, line, coherence.ReqAttrs{Power: c.power})
		if res.Nacked {
			c.conflictOnOwnRequest()
			return
		}
		if res.Retry {
			c.engine().Schedule(res.Latency, c.stepFn)
			return
		}
		c.writeSet.Add(line)
		c.l1Insert(line)
		c.scheduleStoreDone(res.Latency, in, addr, indirection)

	case ModeFailedDiscovery:
		// Failed-mode stores stay in the SQ and request no permissions
		// (§4.2, §5.1).
		c.scheduleStoreDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)

	case ModeSCL:
		if hasWS {
			c.scheduleStoreDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		if c.lineLockedByUs(line) ||
			(c.m.Dir.Owner(line) == c.id && c.l1.Access(line)) {
			c.writeSet.Add(line)
			c.scheduleStoreDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		// A store outside the locked set: the write footprint deviated from
		// discovery; execute it speculatively with ordinary conflict
		// detection (the store stays in the SQ until commit).
		res := c.m.Dir.Write(c.id, line, coherence.ReqAttrs{})
		if res.Nacked {
			c.abortNow(htm.AbortMemoryConflict)
			return
		}
		if res.Retry {
			c.engine().Schedule(res.Latency, c.stepFn)
			return
		}
		c.writeSet.Add(line)
		c.l1Insert(line)
		c.scheduleStoreDone(res.Latency, in, addr, indirection)

	case ModeNSCL:
		if !c.disc.ALT.Contains(line) {
			c.abortNow(htm.AbortDeviation)
			return
		}
		c.scheduleStoreDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)

	case ModeFallback:
		if c.m.Dir.Owner(line) == c.id && c.l1.Access(line) {
			c.scheduleStoreDone(c.m.Cfg.Lat.L1Hit, in, addr, indirection)
			return
		}
		res := c.m.Dir.Write(c.id, line, coherence.ReqAttrs{NonSpec: true})
		if res.Retry {
			c.engine().Schedule(res.Latency, c.stepFn)
			return
		}
		if res.Nacked {
			panic(fmt.Sprintf("cpu: core %d fallback store nacked at %s", c.id, line))
		}
		c.l1Insert(line)
		c.scheduleStoreDone(res.Latency, in, addr, indirection)

	default:
		panic(fmt.Sprintf("cpu: core %d store in mode %v", c.id, c.mode))
	}
}

// abortIllegalAccess handles addresses computed from torn speculative data:
// the hardware analogue is a faulting access inside a transaction, which
// aborts it (an "Others" abort).
func (c *Core) abortIllegalAccess() {
	if c.mode == ModeFallback {
		panic(fmt.Sprintf("cpu: core %d illegal access in fallback (program bug)", c.id))
	}
	if c.mode == ModeFailedDiscovery {
		c.disc.NonMemAbort = true
		c.abortNow(c.heldReason)
		return
	}
	c.abortNow(htm.AbortExplicit)
}

// lineLockedByUs reports whether we hold the cacheline lock on line.
func (c *Core) lineLockedByUs(line mem.LineAddr) bool {
	return c.m.Dir.LockedBy(line) == c.id
}
