package cpu

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/isa"
	"repro/internal/sim"
)

// maxAttemptInstr is a hard per-attempt instruction budget. Speculative
// executions read live memory without opacity, so a traversal interleaved
// with remote commits could in principle chase a cycle; the budget converts
// that into a capacity abort instead of hanging the simulation.
const maxAttemptInstr = 1 << 20

// step executes the instruction at pc in the current mode. Every
// continuation goes through the event engine, never recursion.
func (c *Core) step() {
	if c.pendingAbort != htm.AbortNone {
		r := c.pendingAbort
		c.pendingAbort = htm.AbortNone
		if !c.consumeAbortSignal(r) {
			return
		}
	}

	if c.attemptInstr >= maxAttemptInstr {
		c.abortNow(htm.AbortCapacity)
		return
	}
	if c.m.Cfg.SLE && c.attemptInstr >= uint64(c.m.Cfg.ROBEntries) && c.speculationWindowed() {
		c.windowExhausted()
		return
	}

	in := c.inv.Prog.Code[c.pc]
	c.attemptInstr++

	switch in.Op {
	case isa.OpNop:
		c.advance(1)

	case isa.OpLoadImm:
		c.regs[in.Dst] = uint64(in.Imm)
		c.setIndir(in.Dst, false)
		c.advance(1)

	case isa.OpMov:
		c.regs[in.Dst] = c.regs[in.Src1]
		c.setIndir(in.Dst, c.indirOf(in.Src1))
		c.advance(1)

	case isa.OpAdd:
		c.regs[in.Dst] = c.regs[in.Src1] + c.regs[in.Src2]
		c.setIndir(in.Dst, c.indirOf(in.Src1) || c.indirOf(in.Src2))
		c.advance(1)

	case isa.OpAddImm:
		c.regs[in.Dst] = c.regs[in.Src1] + uint64(in.Imm)
		c.setIndir(in.Dst, c.indirOf(in.Src1))
		c.advance(1)

	case isa.OpSub:
		c.regs[in.Dst] = c.regs[in.Src1] - c.regs[in.Src2]
		c.setIndir(in.Dst, c.indirOf(in.Src1) || c.indirOf(in.Src2))
		c.advance(1)

	case isa.OpMulImm:
		c.regs[in.Dst] = c.regs[in.Src1] * uint64(in.Imm)
		c.setIndir(in.Dst, c.indirOf(in.Src1))
		c.advance(1)

	case isa.OpAndImm:
		c.regs[in.Dst] = c.regs[in.Src1] & uint64(in.Imm)
		c.setIndir(in.Dst, c.indirOf(in.Src1))
		c.advance(1)

	case isa.OpShrImm:
		c.regs[in.Dst] = c.regs[in.Src1] >> uint64(in.Imm)
		c.setIndir(in.Dst, c.indirOf(in.Src1))
		c.advance(1)

	case isa.OpXor:
		c.regs[in.Dst] = c.regs[in.Src1] ^ c.regs[in.Src2]
		c.setIndir(in.Dst, c.indirOf(in.Src1) || c.indirOf(in.Src2))
		c.advance(1)

	case isa.OpRdTsc:
		c.regs[in.Dst] = uint64(c.engine().Now())
		// A non-determinism source: the hardware marks the destination as
		// an indirection (§4.1).
		c.setIndir(in.Dst, true)
		c.advance(1)

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		taken := c.evalBranch(in)
		c.disc.RecordBranch(c.indirOf(in.Src1) || c.indirOf(in.Src2))
		if taken {
			c.pc = int(in.Imm)
			c.engine().Schedule(1, c.stepFn)
		} else {
			c.advance(1)
		}

	case isa.OpJump:
		c.pc = int(in.Imm)
		c.engine().Schedule(1, c.stepFn)

	case isa.OpLoad:
		c.doLoad(in)

	case isa.OpStore:
		c.doStore(in)

	case isa.OpXAbort:
		c.doXAbort()

	case isa.OpHalt:
		c.doHalt()

	default:
		panic(fmt.Sprintf("cpu: core %d unknown opcode %v", c.id, in.Op))
	}
}

// consumeAbortSignal handles a pending asynchronous abort; it returns true
// if execution should continue (failed-mode conversion), false if the
// attempt ended.
func (c *Core) consumeAbortSignal(r htm.AbortReason) bool {
	switch c.mode {
	case ModeSpeculative:
		if r == htm.AbortMemoryConflict && c.disc.Active && !c.m.Cfg.DisableDiscoveryContinuation {
			// §4.1: instead of aborting, continue discovery in failed mode
			// until the end of the AR.
			c.enterFailedMode(r)
			return true
		}
		c.abortNow(r)
		return false
	case ModeFailedDiscovery:
		// Already failed; further signals carry no new information.
		return true
	case ModeSCL, ModeNSCL:
		c.abortNow(r)
		return false
	default:
		// Fallback/idle cannot be aborted; drop the signal.
		return true
	}
}

// speculationWindowed reports whether the current mode's speculative state
// lives in the in-core window (ROB/LQ/SQ). NS-CL and fallback execute
// non-speculatively and retire freely; HTM mode (§4.2) tracks state at the
// cache and is limited only by the SQ.
func (c *Core) speculationWindowed() bool {
	switch c.mode {
	case ModeSpeculative, ModeFailedDiscovery, ModeSCL:
		return true
	}
	return false
}

// windowExhausted handles running out of the in-core speculation window
// (§4.1 assessment 1): discovery is hopeless and the AR is non-convertible.
func (c *Core) windowExhausted() {
	switch c.mode {
	case ModeFailedDiscovery:
		c.disc.CacheOverflow = true
		if c.ertEntry != nil {
			c.ertEntry.IsConvertible = false
		}
		c.abortNow(c.heldReason)
	default:
		c.abortNow(htm.AbortCapacity)
	}
}

func (c *Core) advance(cost sim.Tick) {
	c.pc++
	c.engine().Schedule(cost, c.stepFn)
}

func (c *Core) evalBranch(in isa.Instr) bool {
	a, b := c.regs[in.Src1], c.regs[in.Src2]
	switch in.Op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return a < b
	case isa.OpBge:
		return a >= b
	}
	return false
}

func (c *Core) setIndir(r isa.Reg, v bool) {
	if v {
		c.indir |= 1 << uint(r)
	} else {
		c.indir &^= 1 << uint(r)
	}
}

func (c *Core) indirOf(r isa.Reg) bool { return c.indir&(1<<uint(r)) != 0 }

func (c *Core) doXAbort() {
	switch c.mode {
	case ModeSpeculative:
		c.abortNow(htm.AbortExplicit)
	case ModeFailedDiscovery:
		// §5.1: failed-mode discovery ends on XAbort with no retry-mode
		// decision taken.
		c.disc.NonMemAbort = true
		c.abortNow(c.heldReason)
	case ModeSCL, ModeNSCL:
		// Non-memory-conflict abort in a CL mode: mark non-discoverable
		// (§4.4.2).
		if c.ertEntry != nil {
			c.ertEntry.IsConvertible = false
		}
		c.abortNow(htm.AbortExplicit)
	case ModeFallback:
		// Non-speculative execution cannot roll back; an explicit abort
		// simply terminates the region.
		c.doHalt()
	}
}

func (c *Core) doHalt() {
	switch c.mode {
	case ModeSpeculative:
		c.disc.Disable()
		c.commitSpeculative()
	case ModeFailedDiscovery:
		c.disc.ReachedEnd = true
		c.m.Stats.DiscoveryCycles += c.engine().Now() - c.discStart
		c.discStart = c.engine().Now() // avoid double count in abortNow
		c.abortNow(c.heldReason)
	case ModeSCL, ModeNSCL:
		c.commitCL()
	case ModeFallback:
		c.commitFallback()
	default:
		panic(fmt.Sprintf("cpu: core %d halt in mode %v", c.id, c.mode))
	}
}
