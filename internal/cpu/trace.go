package cpu

import (
	"fmt"
	"io"
)

// TraceWriter, when non-nil on the machine, receives a line per simulator
// event of interest: attempt starts, memory operations, conflicts, commits,
// and aborts. It exists for debugging protocol issues and for the
// cmd/clearinspect -trace mode; production runs leave it nil.
type tracer struct {
	w io.Writer
}

func (m *Machine) SetTrace(w io.Writer) { m.trace = &tracer{w: w} }

func (c *Core) tracef(format string, args ...any) {
	if c.m.trace == nil {
		return
	}
	fmt.Fprintf(c.m.trace.w, "[%8d] core %2d %-10s ", c.engine().Now(), c.id, c.mode)
	fmt.Fprintf(c.m.trace.w, format+"\n", args...)
}
