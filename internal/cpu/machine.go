// Package cpu implements the simulated multicore machine: per-core
// interpreters of the mini-ISA with indirection-bit tracking, the
// speculative (HTM), failed-mode-discovery, S-CL, NS-CL, and fallback
// execution modes, and the retry-control state machine that glues the
// internal/htm policies and internal/core CLEAR structures together.
package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SystemConfig selects the simulated hardware and policy configuration. The
// four configurations of the paper's evaluation are obtained by toggling
// CLEAR and PowerTM:
//
//	B (requester-wins):  CLEAR=false PowerTM=false
//	P (PowerTM):         CLEAR=false PowerTM=true
//	C (CLEAR over B):    CLEAR=true  PowerTM=false
//	W (CLEAR over P):    CLEAR=true  PowerTM=true
type SystemConfig struct {
	Cores int
	// RetryLimit is how many conflict-counted aborts are allowed before the
	// fallback path (the paper sweeps 1..10 and picks the best per
	// application).
	RetryLimit int
	// CLEAR enables discovery and the cacheline-locked retry modes.
	CLEAR bool
	// PowerTM enables the power-token priority policy.
	PowerTM bool
	// SQEntries is the store-queue capacity (72 in Table 2).
	SQEntries int
	// StaticLocking selects the §2.2 non-speculative baseline (MAD
	// atomics / hardware MCAS): ARs whose footprint is computable from the
	// preset registers alone skip speculation entirely and execute under
	// ordered cacheline locking from the start; all other ARs run on the
	// plain speculative baseline. No CLEAR structures are involved.
	StaticLocking bool
	// SLE selects in-core speculation (§4.1): the speculative window is
	// bounded by the ROB and load queue, so ARs larger than those
	// structures can never complete speculatively and failed-mode
	// discovery cannot run past them (§4.2's HTM mode lifts this, leaving
	// only the SQ as the limit).
	SLE bool
	// ROBEntries and LQEntries bound the in-core window when SLE is set
	// (352 and 128 in Table 2).
	ROBEntries int
	LQEntries  int
	// L1 is the private data-cache geometry (read/write-set capacity).
	L1 cache.Geometry
	// DirectorySets defines the lexicographic lock order granularity.
	DirectorySets int
	// Mesh replaces the Table 2 crossbar with a 2D mesh interconnect whose
	// directory banks are distributed over the nodes (per-hop pricing).
	Mesh bool
	// MeshHopLatency and MeshRouterLatency price the mesh links.
	MeshHopLatency    sim.Tick
	MeshRouterLatency sim.Tick
	Lat               coherence.Latencies
	// AbortPenalty models the pipeline flush plus checkpoint restore
	// between an abort and the retry.
	AbortPenalty sim.Tick
	// BackoffBase scales the randomized exponential backoff added to
	// AbortPenalty on conflict retries — the standard software retry-loop
	// policy for best-effort HTM; without it, aborted threads retry in
	// lockstep and convoy into the fallback path.
	BackoffBase sim.Tick
	// SpinInterval is the polling period while waiting on the fallback
	// lock.
	SpinInterval sim.Tick
	// Seed drives the per-core backoff jitter (deterministic per run).
	Seed uint64
	// CommitStoreLat is the per-store cost of draining the SQ at commit.
	CommitStoreLat sim.Tick
	// DisableDiscoveryContinuation aborts at the first conflict even when
	// discovery is active (the ablation bench: without failed-mode
	// continuation CLEAR only learns complete footprints from conflict-free
	// prefixes, so most conversions are lost).
	DisableDiscoveryContinuation bool
	// SCLLockAllReads locks the full learned footprint in S-CL instead of
	// writes+CRT (the §4.4.2 "lock all" alternative; an ablation).
	SCLLockAllReads bool
	// ERTEntries, ALTEntries, CRTEntries and CRTWays override the sizes of
	// CLEAR's per-core tables for sizing ablations; zero selects the
	// paper's values (16, 32, 64/8-way).
	ERTEntries int
	ALTEntries int
	CRTEntries int
	CRTWays    int
	// InjectSecondSpecRetry deliberately breaks the §4.3 decision tree for
	// fault-injection testing: after a convertible discovery assessment the
	// core takes a *second* plain speculative retry instead of the CL mode
	// the assessment chose. This violates the paper's single-retry bound and
	// must be caught by the internal/check oracle; it exists to prove the
	// oracle can detect exactly this class of bug. Never set outside tests.
	InjectSecondSpecRetry bool
	// Policy selects the retry policy owning the §4.3 next-mode decision
	// (internal/policy). The zero value is the paper-exact CLEAR policy,
	// bit-identical to the hard-wired decision tree it replaced; non-default
	// policies are a scenario axis keyed into the runstore cache exactly
	// like the CLEAR/PowerTM toggles.
	Policy policy.Spec
	// InjectLostInvalidation deliberately breaks conflict detection for
	// fault-injection testing: a speculative holder hit by a conflicting
	// remote request yields the line *without* aborting, so it can commit
	// having read data that was concurrently overwritten. The final memory
	// image can still match a serial replay (the writer's store lands
	// either way), which is exactly the class of ordering bug the
	// internal/litmus axiomatic checker exists to catch — the lost
	// invalidation shows up as an fr/co cycle in the extracted execution
	// graph. Never set outside tests.
	InjectLostInvalidation bool
}

// DefaultSystemConfig mirrors Table 2 with CLEAR and PowerTM off
// (configuration B).
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Cores:             32,
		RetryLimit:        4,
		SQEntries:         72,
		ROBEntries:        352,
		LQEntries:         128,
		L1:                cache.L1DGeometry,
		DirectorySets:     4096,
		MeshHopLatency:    2,
		MeshRouterLatency: 3,
		Lat:               coherence.DefaultLatencies(),
		AbortPenalty:      30,
		BackoffBase:       64,
		SpinInterval:      40,
		Seed:              1,
		CommitStoreLat:    1,
	}
}

// Validate sanity-checks the configuration.
func (c SystemConfig) Validate() error {
	if c.Cores <= 0 || c.Cores > 64 {
		return fmt.Errorf("cpu: core count %d out of range", c.Cores)
	}
	if c.RetryLimit < 1 {
		return fmt.Errorf("cpu: retry limit %d must be >= 1", c.RetryLimit)
	}
	if c.SQEntries < 1 {
		return fmt.Errorf("cpu: SQ size %d must be >= 1", c.SQEntries)
	}
	return nil
}

// Machine is one simulated multicore system executing one benchmark run.
type Machine struct {
	Cfg      SystemConfig
	Engine   *sim.Engine
	Mem      *mem.Memory
	Dir      *coherence.Directory
	Fallback *htm.FallbackLock
	Power    *htm.PowerToken
	Stats    *stats.Run
	Cores    []*Core

	remaining int

	// probe, when non-nil, observes attempt lifecycle events (see Probe in
	// probe.go). Nil by default: notification sites pay one pointer
	// comparison. Multiple observers (oracle, tracer, telemetry) attach via
	// AddProbe, which tees them.
	probe Probe

	// fault, when non-nil, perturbs the retry-control state machine (see
	// FaultHook in fault.go). Nil by default, same cost discipline as probe.
	fault FaultHook
}

// NewMachine assembles a machine around an already-populated memory (the
// workload's Setup has run). The fallback lock line is allocated here.
func NewMachine(cfg SystemConfig, memory *mem.Memory) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dirCfg := coherence.Config{
		NumCores: cfg.Cores,
		Sets:     cfg.DirectorySets,
		Lat:      cfg.Lat,
	}
	if cfg.Mesh {
		dirCfg.Topo = noc.NewMesh(cfg.Cores, cfg.MeshHopLatency, cfg.MeshRouterLatency)
	}
	dir := coherence.NewDirectory(dirCfg)
	m := &Machine{
		Cfg:      cfg,
		Engine:   sim.NewEngine(),
		Mem:      memory,
		Dir:      dir,
		Fallback: htm.NewFallbackLock(memory.AllocLine().Line()),
		Power:    htm.NewPowerToken(),
		Stats:    &stats.Run{},
	}
	m.Cores = make([]*Core, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		m.Cores[i] = newCore(i, m)
		dir.RegisterHook(i, m.Cores[i])
	}
	return m, nil
}

// AttachFeeds gives each core its invocation stream. Cores without a feed
// (len(feeds) < Cores) stay idle.
func (m *Machine) AttachFeeds(feeds []InvocationSource) {
	for i, f := range feeds {
		if i >= len(m.Cores) {
			break
		}
		m.Cores[i].feed = f
	}
}

// Run starts every fed core and executes the simulation to completion. It
// returns an error if the event queue stalls or maxTicks elapses before all
// cores finish — both indicate a deadlock or livelock in the protocol under
// test (the HoldOnLocked experiments trigger this deliberately).
func (m *Machine) Run(maxTicks sim.Tick) error {
	return m.RunGuarded(maxTicks, 0, nil)
}

// RunGuarded runs like Run but pauses the event loop every `every` simulated
// ticks to call guard. A non-nil guard error stops the run and is returned
// verbatim — the forward-progress watchdog uses this to convert a detected
// livelock, wait cycle, or retry-bound violation into a structured failure
// before the tick budget burns out. Guard callbacks run between events and
// must not schedule anything, so a nil-returning guard leaves the run
// bit-identical to an unguarded one. every==0 or guard==nil degrades to a
// single uninterrupted RunUntil.
func (m *Machine) RunGuarded(maxTicks sim.Tick, every sim.Tick, guard func() error) error {
	m.remaining = 0
	for _, c := range m.Cores {
		if c.feed != nil {
			m.remaining++
			c.start()
		}
	}
	if m.remaining == 0 {
		return nil
	}
	var drained bool
	if every == 0 || guard == nil {
		drained = m.Engine.RunUntil(maxTicks)
	} else {
		for next := every; ; next += every {
			if next > maxTicks {
				next = maxTicks
			}
			drained = m.Engine.RunUntil(next)
			if drained || m.remaining == 0 || next >= maxTicks {
				break
			}
			if err := guard(); err != nil {
				return err
			}
		}
	}
	if m.remaining > 0 {
		if drained {
			return fmt.Errorf("cpu: event queue drained with %d cores unfinished (deadlock)", m.remaining)
		}
		return fmt.Errorf("cpu: %d cores unfinished after %d ticks (livelock or undersized budget)", m.remaining, maxTicks)
	}
	m.Stats.Cycles = m.Engine.Now()
	return nil
}

func (m *Machine) coreFinished() {
	m.remaining--
	if m.remaining == 0 {
		m.Engine.Stop()
	}
}
