package cpu

import (
	"testing"

	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/mem"
)

// TestDecideRetryMode pins the full §4.3 next-mode decision table (Figure 2):
// every (executing mode, abort reason, discovery state) row of the tree,
// driven directly through decideRetryMode on a constructed core. A change to
// the retry policy must show up here as an explicit row edit.
func TestDecideRetryMode(t *testing.T) {
	type discState int
	const (
		discNone       discState = iota // discovery untouched
		discImmutable                   // complete, no indirection
		discIndirected                  // complete, indirection observed
		discSQOverflow                  // window overflow
		discIncomplete                  // never reached the AR end
	)
	cases := []struct {
		name   string
		clear  bool
		inject bool // SystemConfig.InjectSecondSpecRetry
		mode   Mode
		reason htm.AbortReason
		disc   discState
		want   clear.RetryMode
		// wantNonconv asserts the ERT entry was marked non-convertible.
		wantNonconv bool
		// wantAssessed asserts the discovery assessment ran.
		wantAssessed bool
	}{
		// CLEAR off: plain HTM retries speculatively until capacity.
		{name: "off/spec/conflict", mode: ModeSpeculative, reason: htm.AbortMemoryConflict,
			want: clear.RetrySpeculative},
		{name: "off/spec/capacity", mode: ModeSpeculative, reason: htm.AbortCapacity,
			want: clear.RetryFallback},
		{name: "off/spec/explicit", mode: ModeSpeculative, reason: htm.AbortExplicit,
			want: clear.RetrySpeculative},

		// CLEAR, speculative attempt aborted before discovery completed.
		{name: "spec/capacity", clear: true, mode: ModeSpeculative, reason: htm.AbortCapacity,
			want: clear.RetryFallback, wantNonconv: true},
		{name: "spec/explicit", clear: true, mode: ModeSpeculative, reason: htm.AbortExplicit,
			want: clear.RetrySpeculative, wantNonconv: true},
		{name: "spec/conflict", clear: true, mode: ModeSpeculative, reason: htm.AbortMemoryConflict,
			want: clear.RetrySpeculative},

		// CLEAR, failed-discovery attempt: the hierarchical assessment picks
		// the CL mode (§4.1): immutable ⇒ NS-CL, indirected ⇒ S-CL,
		// window overflow or incomplete ⇒ speculative again.
		{name: "disc/immutable", clear: true, mode: ModeFailedDiscovery, reason: htm.AbortMemoryConflict,
			disc: discImmutable, want: clear.RetryNSCL, wantAssessed: true},
		{name: "disc/indirected", clear: true, mode: ModeFailedDiscovery, reason: htm.AbortMemoryConflict,
			disc: discIndirected, want: clear.RetrySCL, wantAssessed: true},
		{name: "disc/sq-overflow", clear: true, mode: ModeFailedDiscovery, reason: htm.AbortMemoryConflict,
			disc: discSQOverflow, want: clear.RetrySpeculative, wantNonconv: true, wantAssessed: true},
		{name: "disc/incomplete", clear: true, mode: ModeFailedDiscovery, reason: htm.AbortMemoryConflict,
			disc: discIncomplete, want: clear.RetrySpeculative, wantAssessed: true},

		// The planted single-retry bug: injection overrides a convertible
		// assessment with a second plain speculative retry.
		{name: "disc/inject-second-spec", clear: true, inject: true, mode: ModeFailedDiscovery,
			reason: htm.AbortMemoryConflict, disc: discImmutable,
			want: clear.RetrySpeculative, wantAssessed: true},

		// CLEAR, S-CL attempt: a memory conflict means the CRT learned the
		// conflicting read — retry S-CL with the wider lock set; anything
		// else (deviation) rediscovers.
		{name: "scl/conflict", clear: true, mode: ModeSCL, reason: htm.AbortMemoryConflict,
			disc: discIndirected, want: clear.RetrySCL},
		{name: "scl/deviation", clear: true, mode: ModeSCL, reason: htm.AbortExplicit,
			want: clear.RetrySpeculative},

		// CLEAR, NS-CL attempt: a refused lock walk retries NS-CL; a
		// deviation (immutability misprediction) rediscovers.
		{name: "nscl/conflict", clear: true, mode: ModeNSCL, reason: htm.AbortMemoryConflict,
			want: clear.RetryNSCL},
		{name: "nscl/deviation", clear: true, mode: ModeNSCL, reason: htm.AbortExplicit,
			want: clear.RetrySpeculative},

		// Any other mode (e.g. fallback bookkeeping) retries speculatively.
		{name: "fallback/conflict", clear: true, mode: ModeFallback, reason: htm.AbortMemoryConflict,
			want: clear.RetrySpeculative},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultSystemConfig()
			cfg.Cores = 2
			cfg.CLEAR = tc.clear
			cfg.InjectSecondSpecRetry = tc.inject
			m, err := NewMachine(cfg, mem.NewMemory(0x10000))
			if err != nil {
				t.Fatal(err)
			}
			c := m.Cores[0]
			c.mode = tc.mode
			c.ertEntry = &clear.ERTEntry{IsConvertible: true}

			switch tc.disc {
			case discNone:
			default:
				c.disc.Begin()
				c.disc.RecordAccess(mem.LineAddr(0x40), 0, true, tc.disc == discIndirected)
				c.disc.ReachedEnd = tc.disc != discIncomplete
				c.disc.SQOverflow = tc.disc == discSQOverflow
			}

			c.decideRetryMode(tc.reason)

			if c.retryMode != tc.want {
				t.Errorf("retryMode = %v, want %v", c.retryMode, tc.want)
			}
			if gotNonconv := !c.ertEntry.IsConvertible; gotNonconv != tc.wantNonconv {
				t.Errorf("ERT non-convertible = %v, want %v", gotNonconv, tc.wantNonconv)
			}
			if c.lastAssessed != tc.wantAssessed {
				t.Errorf("assessment ran = %v, want %v", c.lastAssessed, tc.wantAssessed)
			}
		})
	}
}
