package cpu

import (
	"fmt"
	"testing"

	clear "repro/internal/core"
	"repro/internal/htm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/policy"
)

// decisionDiscState selects the failed-mode discovery state a decision-table
// row runs against.
type decisionDiscState int

const (
	decDiscNone       decisionDiscState = iota // discovery untouched
	decDiscImmutable                           // complete, no indirection
	decDiscIndirected                          // complete, indirection observed
	decDiscSQOverflow                          // window overflow
	decDiscIncomplete                          // never reached the AR end
)

// decisionRow is one row of the §4.3 next-mode decision table (Figure 2).
type decisionRow struct {
	name   string
	clear  bool
	inject bool // SystemConfig.InjectSecondSpecRetry
	mode   Mode
	reason htm.AbortReason
	disc   decisionDiscState
	want   clear.RetryMode
	// wantNonconv asserts the ERT entry was marked non-convertible.
	wantNonconv bool
	// wantAssessed asserts the discovery assessment ran.
	wantAssessed bool
}

// decisionRows is the full decision table: every (executing mode, abort
// reason, discovery state) row of the tree. A change to the §4.3 mechanism
// must show up here as an explicit row edit.
func decisionRows() []decisionRow {
	return []decisionRow{
		// CLEAR off: plain HTM retries speculatively until capacity.
		{name: "off/spec/conflict", mode: ModeSpeculative, reason: htm.AbortMemoryConflict,
			want: clear.RetrySpeculative},
		{name: "off/spec/capacity", mode: ModeSpeculative, reason: htm.AbortCapacity,
			want: clear.RetryFallback},
		{name: "off/spec/explicit", mode: ModeSpeculative, reason: htm.AbortExplicit,
			want: clear.RetrySpeculative},

		// CLEAR, speculative attempt aborted before discovery completed.
		{name: "spec/capacity", clear: true, mode: ModeSpeculative, reason: htm.AbortCapacity,
			want: clear.RetryFallback, wantNonconv: true},
		{name: "spec/explicit", clear: true, mode: ModeSpeculative, reason: htm.AbortExplicit,
			want: clear.RetrySpeculative, wantNonconv: true},
		{name: "spec/conflict", clear: true, mode: ModeSpeculative, reason: htm.AbortMemoryConflict,
			want: clear.RetrySpeculative},

		// CLEAR, failed-discovery attempt: the hierarchical assessment picks
		// the CL mode (§4.1): immutable ⇒ NS-CL, indirected ⇒ S-CL,
		// window overflow or incomplete ⇒ speculative again.
		{name: "disc/immutable", clear: true, mode: ModeFailedDiscovery, reason: htm.AbortMemoryConflict,
			disc: decDiscImmutable, want: clear.RetryNSCL, wantAssessed: true},
		{name: "disc/indirected", clear: true, mode: ModeFailedDiscovery, reason: htm.AbortMemoryConflict,
			disc: decDiscIndirected, want: clear.RetrySCL, wantAssessed: true},
		{name: "disc/sq-overflow", clear: true, mode: ModeFailedDiscovery, reason: htm.AbortMemoryConflict,
			disc: decDiscSQOverflow, want: clear.RetrySpeculative, wantNonconv: true, wantAssessed: true},
		{name: "disc/incomplete", clear: true, mode: ModeFailedDiscovery, reason: htm.AbortMemoryConflict,
			disc: decDiscIncomplete, want: clear.RetrySpeculative, wantAssessed: true},

		// The planted single-retry bug: injection overrides a convertible
		// assessment with a second plain speculative retry.
		{name: "disc/inject-second-spec", clear: true, inject: true, mode: ModeFailedDiscovery,
			reason: htm.AbortMemoryConflict, disc: decDiscImmutable,
			want: clear.RetrySpeculative, wantAssessed: true},

		// CLEAR, S-CL attempt: a memory conflict means the CRT learned the
		// conflicting read — retry S-CL with the wider lock set; anything
		// else (deviation) rediscovers.
		{name: "scl/conflict", clear: true, mode: ModeSCL, reason: htm.AbortMemoryConflict,
			disc: decDiscIndirected, want: clear.RetrySCL},
		{name: "scl/deviation", clear: true, mode: ModeSCL, reason: htm.AbortExplicit,
			want: clear.RetrySpeculative},

		// CLEAR, NS-CL attempt: a refused lock walk retries NS-CL; a
		// deviation (immutability misprediction) rediscovers.
		{name: "nscl/conflict", clear: true, mode: ModeNSCL, reason: htm.AbortMemoryConflict,
			want: clear.RetryNSCL},
		{name: "nscl/deviation", clear: true, mode: ModeNSCL, reason: htm.AbortExplicit,
			want: clear.RetrySpeculative},

		// Any other mode (e.g. fallback bookkeeping) retries speculatively.
		{name: "fallback/conflict", clear: true, mode: ModeFallback, reason: htm.AbortMemoryConflict,
			want: clear.RetrySpeculative},
	}
}

// decisionCore builds a machine under the given policy spec and prepares
// core 0 for one decision-table row: execution mode, a convertible ERT
// entry, a dummy invocation (decideRetryMode hands the AR's program id to
// the policy), and the requested discovery state.
func decisionCore(t *testing.T, tc decisionRow, spec policy.Spec) *Core {
	t.Helper()
	cfg := DefaultSystemConfig()
	cfg.Cores = 2
	cfg.CLEAR = tc.clear
	cfg.InjectSecondSpecRetry = tc.inject
	cfg.Policy = spec
	m, err := NewMachine(cfg, mem.NewMemory(0x10000))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	c.mode = tc.mode
	c.inv = Invocation{Prog: &isa.Program{ID: 1, Name: "decision-test"}}
	c.ertEntry = &clear.ERTEntry{IsConvertible: true}

	switch tc.disc {
	case decDiscNone:
	default:
		c.disc.Begin()
		c.disc.RecordAccess(mem.LineAddr(0x40), 0, true, tc.disc == decDiscIndirected)
		c.disc.ReachedEnd = tc.disc != decDiscIncomplete
		c.disc.SQOverflow = tc.disc == decDiscSQOverflow
	}
	return c
}

// checkDecisionRow runs one row through decideRetryMode and asserts the
// decided mode and the mechanism side effects.
func checkDecisionRow(t *testing.T, c *Core, tc decisionRow) {
	t.Helper()
	c.decideRetryMode(tc.reason)

	if c.retryMode != tc.want {
		t.Errorf("retryMode = %v, want %v", c.retryMode, tc.want)
	}
	if gotNonconv := !c.ertEntry.IsConvertible; gotNonconv != tc.wantNonconv {
		t.Errorf("ERT non-convertible = %v, want %v", gotNonconv, tc.wantNonconv)
	}
	if c.lastAssessed != tc.wantAssessed {
		t.Errorf("assessment ran = %v, want %v", c.lastAssessed, tc.wantAssessed)
	}
	if !policy.OverrideAllowed(c.lastProposed, c.retryMode) {
		t.Errorf("illegal override: proposed %v, decided %v", c.lastProposed, c.retryMode)
	}
}

// TestDecideRetryMode pins the full §4.3 next-mode decision table under the
// default (paper-exact) policy: policy=clear must reproduce the legacy
// mechanism table exactly, row for row, with no overrides recorded.
func TestDecideRetryMode(t *testing.T) {
	for _, tc := range decisionRows() {
		t.Run(tc.name, func(t *testing.T) {
			c := decisionCore(t, tc, policy.Spec{})
			checkDecisionRow(t, c, tc)
			if c.lastProposed != c.retryMode {
				t.Errorf("default policy overrode the mechanism: proposed %v, decided %v",
					c.lastProposed, c.retryMode)
			}
			if got := c.m.Stats.PolicyOverrides; got != 0 {
				t.Errorf("PolicyOverrides = %d, want 0 under the default policy", got)
			}
		})
	}
}

// TestDecideRetryModeAllPolicies drives the same table through every
// built-in policy. In their neutral state (no learned history, budget not
// exhausted) all three honour the mechanism proposal, so the table must hold
// unchanged: policies differ in budgets, backoff, and learned divergence —
// not in the §4.3 tree itself.
func TestDecideRetryModeAllPolicies(t *testing.T) {
	for _, name := range policy.Names() {
		spec, err := policy.Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		for _, tc := range decisionRows() {
			t.Run(fmt.Sprintf("%s/%s", name, tc.name), func(t *testing.T) {
				c := decisionCore(t, tc, spec)
				checkDecisionRow(t, c, tc)
			})
		}
	}
}

// TestDecideRetryModeEWMADivergence pins the one place a built-in policy is
// allowed to leave the table: once the EWMA success rate of an AR falls
// below the floor, a plain speculative proposal is serialized to fallback
// (and counted as an override), while cacheline-locked proposals are still
// honoured and other ARs are unaffected.
func TestDecideRetryModeEWMADivergence(t *testing.T) {
	spec, err := policy.Parse("ewma:alpha=0.5,floor=0.2")
	if err != nil {
		t.Fatal(err)
	}
	specRow := decisionRow{clear: true, mode: ModeSpeculative,
		reason: htm.AbortMemoryConflict, want: clear.RetrySpeculative}

	// Three speculative aborts at alpha=0.5 drive AR 1's rate to
	// 0.125 < 0.2: the policy now refuses to speculate on it.
	sour := func(c *Core) {
		for i := 0; i < 3; i++ {
			c.pol.OnAbort(policy.Outcome{ProgID: 1, Mode: policy.ExecSpeculative})
		}
	}

	t.Run("spec-proposal-serialized", func(t *testing.T) {
		c := decisionCore(t, specRow, spec)
		sour(c)
		c.decideRetryMode(specRow.reason)
		if c.lastProposed != clear.RetrySpeculative {
			t.Fatalf("proposed = %v, want speculative", c.lastProposed)
		}
		if c.retryMode != clear.RetryFallback {
			t.Errorf("retryMode = %v, want fallback once rate < floor", c.retryMode)
		}
		if got := c.m.Stats.PolicyOverrides; got != 1 {
			t.Errorf("PolicyOverrides = %d, want 1", got)
		}
		if !c.pol.PreferNonSpec(1) {
			t.Error("PreferNonSpec(1) = false, want true below the floor")
		}
	})

	t.Run("cl-proposal-honoured", func(t *testing.T) {
		row := decisionRow{clear: true, mode: ModeFailedDiscovery,
			reason: htm.AbortMemoryConflict, disc: decDiscImmutable,
			want: clear.RetryNSCL, wantAssessed: true}
		c := decisionCore(t, row, spec)
		sour(c)
		checkDecisionRow(t, c, row)
		if got := c.m.Stats.PolicyOverrides; got != 0 {
			t.Errorf("PolicyOverrides = %d, want 0 for an NS-CL proposal", got)
		}
	})

	t.Run("other-ars-unaffected", func(t *testing.T) {
		c := decisionCore(t, specRow, spec)
		sour(c)
		c.inv = Invocation{Prog: &isa.Program{ID: 2, Name: "decision-test-other"}}
		c.decideRetryMode(specRow.reason)
		if c.retryMode != clear.RetrySpeculative {
			t.Errorf("retryMode = %v, want speculative for an unsoured AR", c.retryMode)
		}
	})
}
