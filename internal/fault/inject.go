package fault

import (
	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Recorder receives one callback per fired fault; the trace layer implements
// it to give every injected fault a trace record. core is -1 for faults not
// attributable to a core (sim-layer event delays).
type Recorder interface {
	RecordFault(core int, kind Kind, ticks sim.Tick, line mem.LineAddr)
}

// Stats accumulates what an injector actually did during a run.
type Stats struct {
	// Fired counts fault activations per kind.
	Fired [NumKinds]uint64
	// ExtraTicks is the total injected latency (delay-type faults only).
	ExtraTicks sim.Tick
}

// Total returns the number of faults fired across all kinds.
func (s *Stats) Total() uint64 {
	var n uint64
	for _, f := range s.Fired {
		n += f
	}
	return n
}

// Injector is the deterministic fault engine for one machine. It implements
// coherence.FaultHook and cpu.FaultHook and installs a sim delay
// perturbation; all three seams draw from one private RNG so the fault
// sequence is a pure function of (Plan, Plan.Seed, machine seed).
type Injector struct {
	plan Plan
	m    *cpu.Machine
	dir  *coherence.Directory
	eng  *sim.Engine
	rng  *sim.RNG
	rec  Recorder

	// burstLeft[core] counts remaining refusals of an armed NACK storm.
	burstLeft []int

	stats Stats
}

// mixSeed folds the plan seed and the machine seed into one RNG seed
// (splitmix64 finalizer) so varying either produces an independent but
// reproducible fault stream.
func mixSeed(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Attach installs an injector driven by plan on machine m and returns it. A
// nil plan attaches nothing and returns nil — the machine keeps its zero-cost
// detached seams. A non-nil but empty plan installs the hooks yet fires no
// fault and consumes no randomness on rate-guarded paths, leaving the run's
// statistics digest byte-identical (asserted by the transparency tests).
func Attach(m *cpu.Machine, plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	inj := &Injector{
		plan:      *plan,
		m:         m,
		dir:       m.Dir,
		eng:       m.Engine,
		rng:       sim.NewRNG(mixSeed(plan.Seed, m.Cfg.Seed)),
		burstLeft: make([]int, m.Cfg.Cores),
	}
	m.Engine.SetDelayPerturb(inj.perturbDelay)
	m.Dir.SetFaultHook(inj)
	m.SetFaultHook(inj)
	return inj
}

// SetRecorder wires a per-fault callback (e.g. the trace layer). Pass nil to
// detach.
func (inj *Injector) SetRecorder(r Recorder) { inj.rec = r }

// Stats returns a copy of the accumulated fault statistics.
func (inj *Injector) Stats() Stats { return inj.stats }

// Plan returns a copy of the plan driving this injector.
func (inj *Injector) Plan() Plan { return inj.plan }

func (inj *Injector) fire(k Kind, core int, ticks sim.Tick, line mem.LineAddr) {
	inj.stats.Fired[k]++
	inj.stats.ExtraTicks += ticks
	if inj.rec != nil {
		inj.rec.RecordFault(core, k, ticks, line)
	}
}

// perturbDelay is the sim-layer seam: with probability EventDelayRate each
// scheduled event is delayed by an extra uniform [1, EventDelayMax] ticks.
func (inj *Injector) perturbDelay(delay sim.Tick) sim.Tick {
	if inj.plan.EventDelayRate <= 0 || inj.plan.EventDelayMax <= 0 {
		return delay
	}
	if inj.rng.Float64() >= inj.plan.EventDelayRate {
		return delay
	}
	extra := sim.Tick(inj.rng.Intn(int(inj.plan.EventDelayMax))) + 1
	inj.fire(KindEventDelay, -1, extra, 0)
	return delay + extra
}

// deniable reports whether a directory request may be refused by injection.
// Non-speculative fallback requests must never be denied (the fallback path
// treats a NACK as a protocol bug), failed-mode discovery requests are
// non-aborting by construction, and lock-acquisition upgrades are filtered
// at the Lock seam instead — denying the inner Write too would double-count.
func deniable(attrs coherence.ReqAttrs) bool {
	return !attrs.NonSpec && !attrs.FailedMode && !attrs.Locking
}

// FilterAccess implements coherence.FaultHook: NACK amplification/storms,
// directory transient-state stalls, and extra delay against requesters of
// cacheline-locked lines.
func (inj *Injector) FilterAccess(core int, line mem.LineAddr, isWrite bool, attrs coherence.ReqAttrs) (bool, sim.Tick) {
	var extra sim.Tick
	if inj.plan.StallRate > 0 && inj.plan.StallTicks > 0 &&
		inj.rng.Float64() < inj.plan.StallRate {
		// Directory transient-state stall: the transaction completes but
		// only after the entry sat in a transient state for StallTicks.
		extra += inj.plan.StallTicks
		inj.fire(KindDirStall, core, inj.plan.StallTicks, line)
	}
	if inj.plan.LockedLineDelayRate > 0 && inj.plan.LockedLineDelayTicks > 0 {
		if holder := inj.dir.LockedBy(line); holder >= 0 && holder != core &&
			inj.rng.Float64() < inj.plan.LockedLineDelayRate {
			// Invalidation burst against a locked-line requester: the
			// refusal (Retry or NACK) it is about to receive arrives late.
			extra += inj.plan.LockedLineDelayTicks
			inj.fire(KindLockedLineDelay, core, inj.plan.LockedLineDelayTicks, line)
		}
	}
	if deniable(attrs) {
		if inj.burstLeft[core] > 0 {
			// An armed NACK storm keeps refusing this core's requests.
			inj.burstLeft[core]--
			inj.fire(KindNack, core, 0, line)
			return true, extra
		}
		if inj.plan.NackRate > 0 && inj.rng.Float64() < inj.plan.NackRate {
			inj.burstLeft[core] = inj.plan.NackBurst
			inj.fire(KindNack, core, 0, line)
			return true, extra
		}
	}
	return false, extra
}

// FilterLock implements coherence.FaultHook for cacheline-lock acquisitions:
// a denied acquisition is reported as a Retry (the directory momentarily
// cannot grant the lock), which the ordered lock walk must absorb without
// losing its deadlock-freedom argument.
func (inj *Injector) FilterLock(core int, line mem.LineAddr) (bool, sim.Tick) {
	if inj.plan.LockStallRate > 0 && inj.rng.Float64() < inj.plan.LockStallRate {
		inj.fire(KindLockStall, core, inj.plan.LockStallTicks, line)
		return true, inj.plan.LockStallTicks
	}
	return false, 0
}

// DenyPowerClaim implements cpu.FaultHook: power-token claims are refused
// during a periodic denial window (tick mod Period < Window).
func (inj *Injector) DenyPowerClaim(core int) bool {
	if inj.plan.PowerDenyPeriod <= 0 || inj.plan.PowerDenyWindow <= 0 {
		return false
	}
	if inj.eng.Now()%inj.plan.PowerDenyPeriod < inj.plan.PowerDenyWindow {
		inj.fire(KindPowerDeny, core, 0, 0)
		return true
	}
	return false
}

// SpuriousAbort implements cpu.FaultHook: a first speculative attempt is
// killed before executing with probability SpuriousAbortRate.
func (inj *Injector) SpuriousAbort(core int) bool {
	if inj.plan.SpuriousAbortRate > 0 && inj.rng.Float64() < inj.plan.SpuriousAbortRate {
		inj.fire(KindSpuriousAbort, core, 0, 0)
		return true
	}
	return false
}

// PreemptHolder implements cpu.FaultHook: with probability HolderStallRate a
// lock-walk step stalls for HolderStallTicks after acquiring its lock.
func (inj *Injector) PreemptHolder(core int) sim.Tick {
	if inj.plan.HolderStallRate > 0 && inj.plan.HolderStallTicks > 0 &&
		inj.rng.Float64() < inj.plan.HolderStallRate {
		inj.fire(KindHolderStall, core, inj.plan.HolderStallTicks, 0)
		return inj.plan.HolderStallTicks
	}
	return 0
}

// ForceSecondSpecRetry implements cpu.FaultHook: the planted single-retry-
// bound bug, fired with probability SecondSpecRetryRate after a convertible
// assessment.
func (inj *Injector) ForceSecondSpecRetry(core int) bool {
	if inj.plan.SecondSpecRetryRate > 0 && inj.rng.Float64() < inj.plan.SecondSpecRetryRate {
		inj.fire(KindSecondSpecRetry, core, 0, 0)
		return true
	}
	return false
}
