package fault

import "repro/internal/sim"

// ShrinkPlan greedily minimises a failing plan: failing(p) must
// deterministically report whether plan p still reproduces the failure
// (watchdog trip, oracle violation, crash). The shrinker first tries to
// disable whole fault kinds, then halves the surviving rates and magnitudes
// while the failure persists. Because both the injector and the simulation
// are seed-deterministic, every candidate evaluation is an exact replay —
// the same discipline as the litmus-case shrinker in internal/check/fuzz.
//
// The returned plan is a new value; the input is not modified. If the input
// plan does not fail, it is returned unchanged (cloned).
func ShrinkPlan(p *Plan, failing func(*Plan) bool) *Plan {
	cur := p.Clone()
	if !failing(cur) {
		return cur
	}

	// Pass 1: drop entire kinds while the failure persists.
	for k := Kind(0); k < NumKinds; k++ {
		if !cur.Enabled(k) {
			continue
		}
		cand := cur.Clone().Disable(k)
		if failing(cand) {
			cur = cand
		}
	}

	// Pass 2: halve the surviving rates and magnitudes, a few rounds of
	// greedy descent. Each round re-runs the failure predicate per kind, so
	// the loop is bounded by rounds × kinds replays.
	for round := 0; round < 6; round++ {
		improved := false
		for k := Kind(0); k < NumKinds; k++ {
			if !cur.Enabled(k) {
				continue
			}
			cand := cur.Clone()
			if !halveKind(cand, k) {
				continue
			}
			if failing(cand) {
				cur = cand
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// halveKind halves the rate and magnitude fields driving kind k in place,
// keeping the kind enabled. It returns false when the kind is already at its
// minimum useful strength (nothing left to shrink).
func halveKind(p *Plan, k Kind) bool {
	halfRate := func(r *float64) bool {
		if *r <= 0.001 {
			return false
		}
		*r /= 2
		return true
	}
	halfTick := func(t *sim.Tick) bool {
		if *t <= 1 {
			return false
		}
		*t /= 2
		return true
	}
	switch k {
	case KindEventDelay:
		return halfRate(&p.EventDelayRate) || halfTick(&p.EventDelayMax)
	case KindNack:
		if p.NackBurst > 0 {
			p.NackBurst /= 2
			return true
		}
		return halfRate(&p.NackRate)
	case KindDirStall:
		return halfRate(&p.StallRate) || halfTick(&p.StallTicks)
	case KindLockStall:
		return halfRate(&p.LockStallRate) || halfTick(&p.LockStallTicks)
	case KindLockedLineDelay:
		return halfRate(&p.LockedLineDelayRate) || halfTick(&p.LockedLineDelayTicks)
	case KindPowerDeny:
		if p.PowerDenyWindow > 1 {
			p.PowerDenyWindow /= 2
			return true
		}
		return false
	case KindSpuriousAbort:
		return halfRate(&p.SpuriousAbortRate)
	case KindHolderStall:
		return halfRate(&p.HolderStallRate) || halfTick(&p.HolderStallTicks)
	case KindSecondSpecRetry:
		return halfRate(&p.SecondSpecRetryRate)
	}
	return false
}
