package fault

import (
	"strings"
	"testing"
)

// TestPresetsValidate asserts every named preset passes its own validation —
// a preset that cannot run would make the campaign CLI unusable.
func TestPresetsValidate(t *testing.T) {
	for _, name := range Presets() {
		p, err := PresetPlan(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
	}
	if _, err := PresetPlan("no-such-preset"); err == nil {
		t.Error("unknown preset name did not error")
	}
}

// TestKindStringRoundTrip asserts every kind's name resolves back to itself
// (the clearchaos -faults parser depends on it).
func TestKindStringRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
		back, ok := KindFromString(s)
		if !ok || back != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v, true", s, back, ok, k)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("KindFromString accepted a bogus name")
	}
}

// TestDisableEnabled asserts Disable(k) turns exactly kind k off.
func TestDisableEnabled(t *testing.T) {
	full, err := PresetPlan("default")
	if err != nil {
		t.Fatal(err)
	}
	for k := Kind(0); k < NumKinds; k++ {
		if k == KindSecondSpecRetry {
			continue // not part of the default preset
		}
		if !full.Enabled(k) {
			t.Fatalf("default preset should enable %v", k)
		}
		p := full.Clone().Disable(k)
		if p.Enabled(k) {
			t.Errorf("Disable(%v) left the kind enabled", k)
		}
		for o := Kind(0); o < NumKinds; o++ {
			if o != k && o != KindSecondSpecRetry && !p.Enabled(o) {
				t.Errorf("Disable(%v) also disabled %v", k, o)
			}
		}
	}
}

// TestRestrict asserts Restrict keeps only the named kinds.
func TestRestrict(t *testing.T) {
	p, err := PresetPlan("default")
	if err != nil {
		t.Fatal(err)
	}
	p.Restrict(map[Kind]bool{KindNack: true, KindDirStall: true})
	for k := Kind(0); k < NumKinds; k++ {
		want := k == KindNack || k == KindDirStall
		if p.Enabled(k) != want {
			t.Errorf("after Restrict, Enabled(%v) = %v, want %v", k, p.Enabled(k), want)
		}
	}
}

// TestShrinkPlanIsolatesKind runs the shrinker against a synthetic failure
// predicate (fails iff NACKs can fire) and expects the minimal plan to keep
// only the NACK kind, at a reduced rate.
func TestShrinkPlanIsolatesKind(t *testing.T) {
	full, err := PresetPlan("default")
	if err != nil {
		t.Fatal(err)
	}
	failing := func(p *Plan) bool { return p.Enabled(KindNack) }
	min := ShrinkPlan(full, failing)
	if !failing(min) {
		t.Fatal("shrunk plan no longer satisfies the failure predicate")
	}
	for k := Kind(0); k < NumKinds; k++ {
		if k == KindNack {
			continue
		}
		if min.Enabled(k) {
			t.Errorf("shrunk plan still enables irrelevant kind %v", k)
		}
	}
	if min.NackRate >= full.NackRate {
		t.Errorf("shrinker did not reduce the surviving rate: %g >= %g", min.NackRate, full.NackRate)
	}
}

// TestShrinkPlanPassingInput asserts a plan that does not fail is returned
// unchanged (no spurious mutation of a healthy plan).
func TestShrinkPlanPassingInput(t *testing.T) {
	p, err := PresetPlan("storm")
	if err != nil {
		t.Fatal(err)
	}
	min := ShrinkPlan(p, func(*Plan) bool { return false })
	if min.String() != p.String() {
		t.Errorf("shrinking a passing plan changed it: %s -> %s", p, min)
	}
}

// TestEmptyPlan asserts the zero plan is empty and renders as such.
func TestEmptyPlan(t *testing.T) {
	var p Plan
	if !p.Empty() {
		t.Error("zero plan is not Empty")
	}
	if p.String() != "empty" {
		t.Errorf("zero plan renders as %q", p.String())
	}
	off, err := PresetPlan("off")
	if err != nil {
		t.Fatal(err)
	}
	if !off.Empty() {
		t.Error(`preset "off" is not empty`)
	}
}
