// Package fault implements deterministic fault injection for the simulated
// CLEAR machine. An Injector, configured by a declarative Plan, perturbs a
// run at three layers through the machine's nil-guarded hook seams:
//
//   - sim: bounded random extra latency on scheduled events (models jittery
//     interconnects and slow paths the timing model abstracts away);
//   - coherence: NACK amplification and storms, directory transient-state
//     stalls, and extra invalidation-burst delay against requesters of
//     cacheline-locked lines;
//   - cpu: power-token denial windows, spurious first-attempt aborts, and
//     lock-holder preemption stalls.
//
// Faults may delay or refuse, never corrupt: every injected outcome is one
// the protocol must already tolerate (a NACK, a Retry, extra latency, a
// denied token, an early abort), so workload verification and the
// internal/check oracle must hold under any plan. What a plan stresses is
// the *robustness* claims — the single-retry bound, deadlock freedom of the
// ordered lock walk, and graceful degradation to the fallback path.
//
// Determinism contract: the injector draws from its own sim.RNG seeded from
// (Plan.Seed, machine seed), so the same plan and seeds reproduce the same
// fault sequence and therefore a bit-identical run — campaigns are
// replayable and failing plans are shrinkable (ShrinkPlan). A detached
// injector costs nothing; an attached injector with an all-zero plan fires
// no fault, consumes no randomness on rate-guarded paths, and leaves the
// statistics digest byte-identical (the transparency tests assert this).
package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind identifies one fault class of the taxonomy.
type Kind int

const (
	// KindEventDelay: bounded random extra latency added to a scheduled
	// simulation event (sim layer).
	KindEventDelay Kind = iota
	// KindNack: a speculative-side directory request refused outright; with
	// NackBurst the refusal repeats, modelling a NACK storm (coherence).
	KindNack
	// KindDirStall: a directory transaction held in a transient state for
	// extra ticks before completing (coherence).
	KindDirStall
	// KindLockStall: a cacheline-lock acquisition denied with a Retry,
	// modelling a directory that momentarily cannot grant the lock
	// (coherence).
	KindLockStall
	// KindLockedLineDelay: extra delay on a request whose target line is
	// cacheline-locked by another core — a forced invalidation burst against
	// the locked-line requester (coherence).
	KindLockedLineDelay
	// KindPowerDeny: the power token refused during a periodic denial
	// window (cpu).
	KindPowerDeny
	// KindSpuriousAbort: a first speculative attempt aborted before
	// executing, like an interrupt or TLB shootdown landing inside the
	// transaction (cpu).
	KindSpuriousAbort
	// KindHolderStall: a lock-walk step stalled after acquiring its lock,
	// modelling preemption of a lock holder (cpu).
	KindHolderStall
	// KindSecondSpecRetry: the §4.3 decision tree deliberately broken — a
	// convertible assessment followed by a second plain speculative retry.
	// This is a *planted bug*, not a tolerable fault: the oracle and the
	// watchdog must catch it (campaigns use it to prove they can).
	KindSecondSpecRetry

	// NumKinds is the number of fault kinds.
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case KindEventDelay:
		return "event-delay"
	case KindNack:
		return "nack"
	case KindDirStall:
		return "dir-stall"
	case KindLockStall:
		return "lock-stall"
	case KindLockedLineDelay:
		return "locked-line-delay"
	case KindPowerDeny:
		return "power-deny"
	case KindSpuriousAbort:
		return "spurious-abort"
	case KindHolderStall:
		return "holder-stall"
	case KindSecondSpecRetry:
		return "second-spec-retry"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindFromString resolves a Kind by its String form.
func KindFromString(s string) (Kind, bool) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Plan declares a reproducible fault campaign: per-kind rates, magnitudes,
// and windows. The zero value injects nothing. Rates are probabilities in
// [0,1]; tick fields are magnitudes. Plans are plain data — comparable,
// clonable, and shrinkable.
type Plan struct {
	// Seed drives the injector's private RNG (mixed with the machine seed,
	// so the same plan across different run seeds produces independent but
	// reproducible fault sequences).
	Seed uint64

	// --- sim layer ---

	// EventDelayRate is the probability a scheduled event receives extra
	// latency drawn uniformly from [1, EventDelayMax].
	EventDelayRate float64
	EventDelayMax  sim.Tick

	// --- coherence layer ---

	// NackRate is the probability a deniable directory request (not
	// NonSpec, FailedMode, or Locking) is refused outright. Each fired NACK
	// arms a storm of NackBurst further refusals for the same core.
	NackRate  float64
	NackBurst int

	// StallRate/StallTicks hold a directory transaction in a transient
	// state for StallTicks extra latency.
	StallRate  float64
	StallTicks sim.Tick

	// LockStallRate/LockStallTicks deny a cacheline-lock acquisition with a
	// Retry plus LockStallTicks extra backoff.
	LockStallRate  float64
	LockStallTicks sim.Tick

	// LockedLineDelayRate/LockedLineDelayTicks add delay to requests whose
	// target line is locked by another core (invalidation bursts against
	// locked-line requesters).
	LockedLineDelayRate  float64
	LockedLineDelayTicks sim.Tick

	// --- cpu layer ---

	// PowerDenyPeriod/PowerDenyWindow deny power-token claims whenever
	// tick%Period < Window (a periodic denial window). Zero disables.
	PowerDenyPeriod sim.Tick
	PowerDenyWindow sim.Tick

	// SpuriousAbortRate aborts a first speculative attempt before it
	// executes, with reason htm.AbortSpurious.
	SpuriousAbortRate float64

	// HolderStallRate/HolderStallTicks stall a core's lock walk after a
	// successful acquisition (lock-holder preemption): every other core
	// contending for its held locks spins longer.
	HolderStallRate  float64
	HolderStallTicks sim.Tick

	// SecondSpecRetryRate plants the single-retry-bound bug: after a
	// convertible discovery assessment the core retries speculatively
	// instead of taking the assessed CL mode. Detection, not tolerance, is
	// the expected outcome.
	SecondSpecRetryRate float64
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return !p.simActive() && !p.coherenceActive() && !p.cpuActive()
}

func (p *Plan) simActive() bool {
	return p.EventDelayRate > 0 && p.EventDelayMax > 0
}

func (p *Plan) coherenceActive() bool {
	return p.NackRate > 0 || (p.StallRate > 0 && p.StallTicks > 0) ||
		p.LockStallRate > 0 ||
		(p.LockedLineDelayRate > 0 && p.LockedLineDelayTicks > 0)
}

func (p *Plan) cpuActive() bool {
	return (p.PowerDenyPeriod > 0 && p.PowerDenyWindow > 0) ||
		p.SpuriousAbortRate > 0 ||
		(p.HolderStallRate > 0 && p.HolderStallTicks > 0) ||
		p.SecondSpecRetryRate > 0
}

// Clone returns an independent copy.
func (p *Plan) Clone() *Plan {
	cp := *p
	return &cp
}

// Validate sanity-checks rates and magnitudes.
func (p *Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"EventDelayRate", p.EventDelayRate},
		{"NackRate", p.NackRate},
		{"StallRate", p.StallRate},
		{"LockStallRate", p.LockStallRate},
		{"LockedLineDelayRate", p.LockedLineDelayRate},
		{"SpuriousAbortRate", p.SpuriousAbortRate},
		{"HolderStallRate", p.HolderStallRate},
		{"SecondSpecRetryRate", p.SecondSpecRetryRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s=%g outside [0,1]", r.name, r.v)
		}
	}
	if p.NackBurst < 0 {
		return fmt.Errorf("fault: NackBurst=%d negative", p.NackBurst)
	}
	if p.PowerDenyWindow > 0 && p.PowerDenyPeriod > 0 && p.PowerDenyWindow >= p.PowerDenyPeriod {
		return fmt.Errorf("fault: PowerDenyWindow=%d >= PowerDenyPeriod=%d (token never grantable)",
			p.PowerDenyWindow, p.PowerDenyPeriod)
	}
	return nil
}

// Disable zeroes every field driving kind k, returning the receiver.
func (p *Plan) Disable(k Kind) *Plan {
	switch k {
	case KindEventDelay:
		p.EventDelayRate, p.EventDelayMax = 0, 0
	case KindNack:
		p.NackRate, p.NackBurst = 0, 0
	case KindDirStall:
		p.StallRate, p.StallTicks = 0, 0
	case KindLockStall:
		p.LockStallRate, p.LockStallTicks = 0, 0
	case KindLockedLineDelay:
		p.LockedLineDelayRate, p.LockedLineDelayTicks = 0, 0
	case KindPowerDeny:
		p.PowerDenyPeriod, p.PowerDenyWindow = 0, 0
	case KindSpuriousAbort:
		p.SpuriousAbortRate = 0
	case KindHolderStall:
		p.HolderStallRate, p.HolderStallTicks = 0, 0
	case KindSecondSpecRetry:
		p.SecondSpecRetryRate = 0
	}
	return p
}

// Enabled reports whether kind k can fire under this plan.
func (p *Plan) Enabled(k Kind) bool {
	switch k {
	case KindEventDelay:
		return p.EventDelayRate > 0 && p.EventDelayMax > 0
	case KindNack:
		return p.NackRate > 0
	case KindDirStall:
		return p.StallRate > 0 && p.StallTicks > 0
	case KindLockStall:
		return p.LockStallRate > 0
	case KindLockedLineDelay:
		return p.LockedLineDelayRate > 0 && p.LockedLineDelayTicks > 0
	case KindPowerDeny:
		return p.PowerDenyPeriod > 0 && p.PowerDenyWindow > 0
	case KindSpuriousAbort:
		return p.SpuriousAbortRate > 0
	case KindHolderStall:
		return p.HolderStallRate > 0 && p.HolderStallTicks > 0
	case KindSecondSpecRetry:
		return p.SecondSpecRetryRate > 0
	}
	return false
}

// Restrict disables every kind not named in keep (the clearchaos -faults
// filter), returning the receiver.
func (p *Plan) Restrict(keep map[Kind]bool) *Plan {
	for k := Kind(0); k < NumKinds; k++ {
		if !keep[k] {
			p.Disable(k)
		}
	}
	return p
}

// String renders the non-zero fields compactly ("nack=0.01/burst2
// lock-stall=0.02/+100t ..."); an empty plan renders as "empty".
func (p *Plan) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if p.Enabled(KindEventDelay) {
		add(fmt.Sprintf("event-delay=%g/max%d", p.EventDelayRate, p.EventDelayMax))
	}
	if p.Enabled(KindNack) {
		add(fmt.Sprintf("nack=%g/burst%d", p.NackRate, p.NackBurst))
	}
	if p.Enabled(KindDirStall) {
		add(fmt.Sprintf("dir-stall=%g/+%dt", p.StallRate, p.StallTicks))
	}
	if p.Enabled(KindLockStall) {
		add(fmt.Sprintf("lock-stall=%g/+%dt", p.LockStallRate, p.LockStallTicks))
	}
	if p.Enabled(KindLockedLineDelay) {
		add(fmt.Sprintf("locked-line-delay=%g/+%dt", p.LockedLineDelayRate, p.LockedLineDelayTicks))
	}
	if p.Enabled(KindPowerDeny) {
		add(fmt.Sprintf("power-deny=%d/%dt", p.PowerDenyWindow, p.PowerDenyPeriod))
	}
	if p.Enabled(KindSpuriousAbort) {
		add(fmt.Sprintf("spurious-abort=%g", p.SpuriousAbortRate))
	}
	if p.Enabled(KindHolderStall) {
		add(fmt.Sprintf("holder-stall=%g/+%dt", p.HolderStallRate, p.HolderStallTicks))
	}
	if p.Enabled(KindSecondSpecRetry) {
		add(fmt.Sprintf("second-spec-retry=%g", p.SecondSpecRetryRate))
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

// presets is the named plan registry. "default" is the broad mild mix the
// clearchaos campaign acceptance runs under; "planted" adds the deliberate
// single-retry-bound bug and exists to prove the detectors fire.
var presets = map[string]Plan{
	"off": {},
	"default": {
		EventDelayRate: 0.01, EventDelayMax: 32,
		NackRate: 0.004, NackBurst: 2,
		StallRate: 0.01, StallTicks: 64,
		LockStallRate: 0.02, LockStallTicks: 100,
		LockedLineDelayRate: 0.05, LockedLineDelayTicks: 50,
		PowerDenyPeriod: 10_000, PowerDenyWindow: 1_500,
		SpuriousAbortRate: 0.01,
		HolderStallRate:   0.02, HolderStallTicks: 200,
	},
	"latency": {
		EventDelayRate: 0.05, EventDelayMax: 128,
		StallRate: 0.05, StallTicks: 200,
		LockedLineDelayRate: 0.2, LockedLineDelayTicks: 150,
	},
	"storm": {
		NackRate: 0.02, NackBurst: 8,
		StallRate: 0.02, StallTicks: 120,
	},
	"power": {
		PowerDenyPeriod: 4_000, PowerDenyWindow: 2_000,
		SpuriousAbortRate: 0.05,
	},
	"locks": {
		LockStallRate: 0.1, LockStallTicks: 300,
		HolderStallRate: 0.1, HolderStallTicks: 500,
		LockedLineDelayRate: 0.1, LockedLineDelayTicks: 100,
	},
	"planted": {
		EventDelayRate: 0.01, EventDelayMax: 32,
		NackRate: 0.004, NackBurst: 2,
		SecondSpecRetryRate: 0.5,
	},
}

// Presets lists the available preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PresetPlan returns a copy of the named preset plan.
func PresetPlan(name string) (*Plan, error) {
	p, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("fault: unknown plan preset %q (have %s)",
			name, strings.Join(Presets(), ", "))
	}
	return p.Clone(), nil
}
