// Package check implements the opt-in runtime invariant oracle for the
// simulated CLEAR machine. Attached to a cpu.Machine, it observes every
// directory transition (through coherence.Observer) and every atomic-region
// attempt boundary (through cpu.Probe) and asserts four properties on each:
//
//  1. MESI consistency: single writer, lockedBy==owner while locked, the
//     requester registered after every successful access, and every line a
//     commit makes globally visible held with the exclusivity its mode
//     requires — at the commit point, before the store queue drains.
//  2. Lock-order discipline: NS-CL/S-CL cacheline locks acquired in
//     non-decreasing lexicographic (directory set, line) order, and no cycle
//     in the waits-for graph of lock acquisitions (deadlock freedom).
//  3. The single-retry bound: once discovery assesses an AR convertible, the
//     next attempt takes the assessed CL path (or the fallback override) —
//     never a second plain speculative re-execution.
//  4. Footprint immutability: an NS-CL re-execution touches exactly the
//     lines discovery learned.
//
// The oracle is read-only and digest-transparent: it never mutates machine
// state, consults no RNG, and its periodic full-state audits ride the event
// engine without changing any event's timing — an oracle-enabled run
// produces bit-identical statistics to an oracle-free one (the determinism
// tests assert this). When no oracle is attached, every notification site in
// cpu and coherence costs one nil pointer comparison.
package check

import (
	"fmt"
	"sort"

	"repro/internal/coherence"
	clear "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// DefaultAuditPeriod is the tick period of the full-state directory audits.
const DefaultAuditPeriod sim.Tick = 2048

// MaxRecordedViolations bounds how many violations keep their full message;
// further ones only increment the counter.
const MaxRecordedViolations = 64

// Commit is one entry of the oracle's commit log: the serialization order
// the differential fuzz checker replays.
type Commit struct {
	Tick   sim.Tick
	Core   int
	ProgID int
	Mode   cpu.Mode
}

// coreState is the oracle's shadow state for one core.
type coreState struct {
	mode    cpu.Mode
	attempt int

	// converted: discovery assessed the current invocation convertible; a
	// plain speculative attempt must not start while set.
	converted bool
	// expectNext/haveExpect: the §4.3 decision recorded at the last abort,
	// to be matched by the next attempt start.
	expectNext clear.RetryMode
	haveExpect bool

	// Lock-order tracking within one CL attempt.
	haveLock bool
	lastSet  int
	lastLine mem.LineAddr

	// Waits-for edge: the line this core's lock walk is spinning on.
	waiting   bool
	waitingOn mem.LineAddr

	// NS-CL footprint bookkeeping.
	footprint map[mem.LineAddr]bool
	touched   map[mem.LineAddr]bool
}

// Oracle is the runtime invariant checker. Create with Attach; inspect with
// Err/Violations/CommitLog after the run.
type Oracle struct {
	m            *cpu.Machine
	dir          *coherence.Directory
	holdOnLocked bool

	auditPeriod sim.Tick
	auditFn     sim.Event

	cores     []coreState
	commitLog []Commit

	violations []Violation
	total      int
}

// Attach wires an oracle into m: it installs itself as the machine's probe
// and the directory's observer and schedules the first periodic audit. Call
// before Machine.Run; call Finish after.
func Attach(m *cpu.Machine) *Oracle {
	o := &Oracle{
		m:            m,
		dir:          m.Dir,
		holdOnLocked: m.Dir.Config().HoldOnLocked,
		auditPeriod:  DefaultAuditPeriod,
		cores:        make([]coreState, m.Cfg.Cores),
	}
	for i := range o.cores {
		o.cores[i].footprint = make(map[mem.LineAddr]bool)
		o.cores[i].touched = make(map[mem.LineAddr]bool)
	}
	o.auditFn = o.audit
	m.SetProbe(o)
	m.Dir.SetObserver(o)
	m.Engine.Schedule(o.auditPeriod, o.auditFn)
	return o
}

// Detach removes the oracle from the machine (tests reuse machines).
func (o *Oracle) Detach() {
	o.m.SetProbe(nil)
	o.dir.SetObserver(nil)
}

func (o *Oracle) fail(prop string, core int, format string, args ...any) {
	o.total++
	if len(o.violations) < MaxRecordedViolations {
		o.violations = append(o.violations, Violation{
			Tick:     o.m.Engine.Now(),
			Property: prop,
			Core:     core,
			Msg:      fmt.Sprintf(format, args...),
		})
	}
}

// Violations returns the recorded violations (capped at
// MaxRecordedViolations; ViolationCount has the true total).
func (o *Oracle) Violations() []Violation { return o.violations }

// ViolationCount returns how many violations were observed in total.
func (o *Oracle) ViolationCount() int { return o.total }

// CommitLog returns the observed commit order (the serialization witness).
func (o *Oracle) CommitLog() []Commit { return o.commitLog }

// Err returns nil when no invariant was violated, else an error naming the
// first violation and the total count.
func (o *Oracle) Err() error {
	if o.total == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s); first: %s", o.total, o.violations[0])
}

// ---------------------------------------------------------------------------
// coherence.Observer

// OnAccess checks the post-state of every directory read/write transaction.
func (o *Oracle) OnAccess(core int, line mem.LineAddr, isWrite bool, attrs coherence.ReqAttrs, res coherence.AccessResult) {
	if attrs.FailedMode {
		// Failed-mode discovery requests are non-registering by design.
		return
	}
	o.checkLine(line)
	if res.Nacked || res.Retry {
		return
	}
	if o.holdOnLocked {
		// HoldOnLocked parks refused requests with a success-shaped result;
		// registration checks do not apply to that (test-only) design.
		return
	}
	if lb := o.dir.LockedBy(line); lb >= 0 && lb != core {
		o.fail(PropMESI, core, "access to %s succeeded while locked by core %d", line, lb)
	}
	if isWrite {
		if own := o.dir.Owner(line); own != core {
			o.fail(PropMESI, core, "write to %s succeeded but owner is %d", line, own)
		}
	} else {
		if o.dir.Owner(line) != core && !o.dir.Sharers(line).Has(core) {
			o.fail(PropMESI, core, "read of %s succeeded but core is neither owner nor sharer", line)
		}
	}
}

// OnLock checks lock-order discipline and waits-for acyclicity on every
// cacheline-lock acquisition.
func (o *Oracle) OnLock(core int, line mem.LineAddr, res coherence.LockResult) {
	cs := &o.cores[core]
	if res.Retry {
		// The walk spins on a lock held elsewhere: record the waits-for edge
		// and look for a cycle through current lock holders.
		cs.waiting = true
		cs.waitingOn = line
		o.checkWaitCycle(core, line)
		return
	}
	cs.waiting = false
	if res.Nacked {
		return
	}
	if lb := o.dir.LockedBy(line); lb != core {
		o.fail(PropMESI, core, "lock of %s succeeded but lockedBy is %d", line, lb)
	}
	if own := o.dir.Owner(line); own != core {
		o.fail(PropMESI, core, "lock of %s succeeded but owner is %d", line, own)
	}
	s := o.dir.SetOf(line)
	if cs.haveLock && (s < cs.lastSet || (s == cs.lastSet && line < cs.lastLine)) {
		o.fail(PropLockOrder, core,
			"lock of %s (set %d) acquired after %s (set %d): lexicographic order broken",
			line, s, cs.lastLine, cs.lastSet)
	}
	cs.haveLock = true
	cs.lastSet = s
	cs.lastLine = line
}

// checkWaitCycle follows holder->waiting edges from the lock core is
// spinning on; reaching core again means a wait cycle (a deadlock the
// lexicographic order should make impossible).
func (o *Oracle) checkWaitCycle(core int, line mem.LineAddr) {
	cur := o.dir.LockedBy(line)
	for hops := 0; cur >= 0 && hops < len(o.cores); hops++ {
		if cur == core {
			o.fail(PropLockOrder, core, "waits-for cycle through lock on %s", line)
			return
		}
		h := &o.cores[cur]
		if !h.waiting {
			return
		}
		cur = o.dir.LockedBy(h.waitingOn)
	}
}

// OnUnlock checks the lock actually cleared.
func (o *Oracle) OnUnlock(core int, line mem.LineAddr) {
	if lb := o.dir.LockedBy(line); lb == core {
		o.fail(PropMESI, core, "unlock of %s left lockedBy unchanged", line)
	}
}

// OnEvict checks the core really left the line's holder sets.
func (o *Oracle) OnEvict(core int, line mem.LineAddr) {
	if o.dir.Owner(line) == core || o.dir.Sharers(line).Has(core) {
		o.fail(PropMESI, core, "evict of %s left the core registered", line)
	}
}

// checkLine asserts the per-line MESI invariants on the current state.
func (o *Oracle) checkLine(line mem.LineAddr) {
	own := o.dir.Owner(line)
	if own >= 0 && !o.dir.Sharers(line).Empty() {
		o.fail(PropMESI, own, "line %s owned exclusively but sharer bitset %v non-empty",
			line, o.dir.Sharers(line))
	}
	if lb := o.dir.LockedBy(line); lb >= 0 && own != lb {
		o.fail(PropMESI, lb, "line %s locked by core %d but owned by %d", line, lb, own)
	}
}

// ---------------------------------------------------------------------------
// cpu.Probe

// OnInvocationStart resets the per-invocation shadow state.
func (o *Oracle) OnInvocationStart(core int, progID int) {
	cs := &o.cores[core]
	cs.converted = false
	cs.haveExpect = false
	cs.waiting = false
	cs.haveLock = false
	cs.mode = cpu.ModeIdle
}

// OnAttemptStart checks the attempt against the recorded §4.3 decision and
// the single-retry bound, and snapshots the CL footprint.
func (o *Oracle) OnAttemptStart(core int, mode cpu.Mode, attempt int, footprint []mem.LineAddr) {
	cs := &o.cores[core]
	cs.mode = mode
	cs.attempt = attempt
	cs.haveLock = false
	cs.waiting = false
	clearLineSet(cs.touched)
	clearLineSet(cs.footprint)
	for _, l := range footprint {
		cs.footprint[l] = true
	}

	if mode == cpu.ModeSpeculative && cs.converted {
		o.fail(PropSingleRetry, core,
			"attempt %d began a second plain speculative re-execution after a convertible discovery assessment", attempt)
	}
	if cs.haveExpect {
		if want, ok := modeFor(cs.expectNext); ok && mode != want && mode != cpu.ModeFallback {
			// The fallback override (retry budget exhausted) is always
			// legal; anything else must honour the recorded decision.
			o.fail(PropSingleRetry, core,
				"attempt %d began in mode %v but the §4.3 decision was %v", attempt, mode, cs.expectNext)
		}
		cs.haveExpect = false
	}
}

// modeFor maps a retry decision to the execution mode that honours it.
func modeFor(m clear.RetryMode) (cpu.Mode, bool) {
	switch m {
	case clear.RetrySpeculative:
		return cpu.ModeSpeculative, true
	case clear.RetrySCL:
		return cpu.ModeSCL, true
	case clear.RetryNSCL:
		return cpu.ModeNSCL, true
	case clear.RetryFallback:
		return cpu.ModeFallback, true
	}
	return cpu.ModeIdle, false
}

// OnAttemptEnd cross-checks the retry decision against the discovery
// assessment and updates the single-retry shadow state.
func (o *Oracle) OnAttemptEnd(info cpu.AttemptEndInfo) {
	cs := &o.cores[info.Core]
	cs.waiting = false
	cs.haveLock = false
	cs.mode = cpu.ModeIdle

	assessedCL := info.Assessed &&
		(info.Assessment.Mode == clear.RetrySCL || info.Assessment.Mode == clear.RetryNSCL)
	if assessedCL && info.NextMode == clear.RetrySpeculative {
		// The direct decision-tree check: a convertible assessment followed
		// by a plain speculative retry is exactly the bug class
		// InjectSecondSpecRetry plants.
		o.fail(PropSingleRetry, info.Core,
			"discovery assessed the AR convertible (%v) but the next attempt is speculative", info.Assessment.Mode)
	}
	if assessedCL {
		cs.converted = true
	} else if (info.Mode == cpu.ModeSCL || info.Mode == cpu.ModeNSCL) &&
		info.NextMode == clear.RetrySpeculative {
		// A CL attempt failed for a non-conflict reason (deviation, explicit
		// abort): the learned footprint is stale and rediscovery is the
		// legal §4.3 answer.
		cs.converted = false
	}
	cs.expectNext = info.NextMode
	cs.haveExpect = true
}

// OnMemAccess checks NS-CL accesses stay inside the discovered footprint.
func (o *Oracle) OnMemAccess(core int, addr mem.Addr, value uint64, isWrite bool, mode cpu.Mode) {
	if mode != cpu.ModeNSCL {
		return
	}
	line := addr.Line()
	cs := &o.cores[core]
	cs.touched[line] = true
	if !cs.footprint[line] {
		o.fail(PropFootprint, core,
			"NS-CL re-execution completed an access to %s outside the discovered footprint", line)
	}
}

// OnConflict is informational (the tracer's event); the oracle's conflict
// reasoning happens at the directory post-states and attempt boundaries.
func (o *Oracle) OnConflict(core int, line mem.LineAddr, isWrite bool, requester int) {}

// OnCommit checks exclusivity of the committing stores and, for NS-CL, that
// the re-execution touched exactly the discovered footprint; it also appends
// the commit to the serialization log.
func (o *Oracle) OnCommit(info cpu.CommitInfo) {
	cs := &o.cores[info.Core]
	for _, line := range info.StoreLines {
		switch info.Mode {
		case cpu.ModeSpeculative:
			if o.dir.Owner(line) != info.Core {
				o.fail(PropMESI, info.Core,
					"speculative commit drains a store to %s without exclusive ownership", line)
			}
		case cpu.ModeSCL:
			if o.dir.Owner(line) != info.Core && o.dir.LockedBy(line) != info.Core {
				o.fail(PropMESI, info.Core,
					"S-CL commit drains a store to %s neither owned nor locked", line)
			}
		case cpu.ModeNSCL:
			if o.dir.LockedBy(line) != info.Core {
				o.fail(PropMESI, info.Core,
					"NS-CL commit drains a store to %s that is not cacheline-locked", line)
			}
		}
	}
	if info.Mode == cpu.ModeNSCL {
		for l := range cs.footprint {
			if !cs.touched[l] {
				o.fail(PropFootprint, info.Core,
					"discovered footprint line %s never touched by the NS-CL re-execution", l)
			}
		}
	}
	o.commitLog = append(o.commitLog, Commit{
		Tick:   o.m.Engine.Now(),
		Core:   info.Core,
		ProgID: info.ProgID,
		Mode:   info.Mode,
	})
	cs.converted = false
	cs.haveExpect = false
	cs.waiting = false
	cs.haveLock = false
	cs.mode = cpu.ModeIdle
}

// ---------------------------------------------------------------------------
// Periodic audit and end-of-run checks

// audit sweeps the whole directory and the machine-global locks. It
// reschedules itself; the extra events only consume engine sequence numbers
// and change no observable statistic.
func (o *Oracle) audit() {
	lines := make([]coherence.LineState, 0, 64)
	o.dir.ForEachLine(func(ls coherence.LineState) { lines = append(lines, ls) })
	sort.Slice(lines, func(i, j int) bool { return lines[i].Line < lines[j].Line })

	locked := 0
	for _, ls := range lines {
		if ls.Owner >= 0 && !ls.Sharers.Empty() {
			o.fail(PropMESI, ls.Owner, "audit: line %s owned exclusively with sharers %v", ls.Line, ls.Sharers)
		}
		if ls.LockedBy >= 0 {
			locked++
			if ls.Owner != ls.LockedBy {
				o.fail(PropMESI, ls.LockedBy, "audit: line %s locked by %d but owned by %d", ls.Line, ls.LockedBy, ls.Owner)
			}
		}
	}
	if locked != o.dir.LockedLines() {
		o.fail(PropMESI, -1, "audit: %d lines observed locked but LockedLines()=%d", locked, o.dir.LockedLines())
	}
	for core := range o.cores {
		for _, l := range o.dir.HeldLocks(core) {
			if o.dir.LockedBy(l) != core {
				o.fail(PropMESI, core, "audit: held-locks list has %s but lockedBy=%d", l, o.dir.LockedBy(l))
			}
		}
	}
	if o.m.Fallback.WriterHeld() && !o.m.Fallback.Readers().Empty() {
		o.fail(PropLockOrder, o.m.Fallback.Writer(),
			"audit: fallback write lock held while readers %v remain", o.m.Fallback.Readers())
	}
	o.m.Engine.Schedule(o.auditPeriod, o.auditFn)
}

// Finish runs the end-of-run checks (call after Machine.Run returns): all
// cacheline locks released, fallback lock free, power token free.
func (o *Oracle) Finish() {
	if n := o.dir.LockedLines(); n != 0 {
		o.fail(PropMESI, -1, "run ended with %d cacheline locks still held", n)
	}
	if o.m.Fallback.WriterHeld() || !o.m.Fallback.Readers().Empty() {
		o.fail(PropLockOrder, -1, "run ended with the fallback lock held (writer=%d readers=%v)",
			o.m.Fallback.Writer(), o.m.Fallback.Readers())
	}
	if o.m.Power.Held() {
		o.fail(PropMESI, o.m.Power.Holder(), "run ended with the power token held")
	}
}

// clearLineSet empties a line-set map in place, reusing its buckets.
func clearLineSet(m map[mem.LineAddr]bool) {
	for k := range m {
		delete(m, k)
	}
}
