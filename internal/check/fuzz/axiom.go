package fuzz

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// GenTagged generates a fuzz case tailored for the axiomatic oracle: every
// store writes a globally unique immediate value (tags start at
// tagBase, far above the initial pool data), every program is referenced by
// exactly one invocation, and no access touches word 0 (the pointer slot).
// Unique values make reads-from resolution by value exact — the litmus
// checker reconstructs rf/co/fr with zero ambiguous loads, so its verdict is
// a full, not conservative, second oracle for these cases.
//
// Like Gen, the generation is a pure function of the seed.
func GenTagged(seed uint64) *Case {
	rng := sim.NewRNG(seed*0x9e3779b97f4a7c15 + 0xa11)
	c := &Case{Seed: seed}

	// Few lines, many cores: maximal contention on the tagged addresses.
	nPool := 2 + rng.Intn(2)
	c.Pool = make([]PoolLine, nPool)
	for i := range c.Pool {
		c.Pool[i].Ptr = rng.Intn(nPool)
		for w := range c.Pool[i].Data {
			c.Pool[i].Data[w] = uint64(rng.Intn(256))
		}
	}

	nCores := 2 + rng.Intn(3)
	c.Invs = make([][]Invocation, nCores)
	tag := uint64(tagBase)
	for core := range c.Invs {
		nOps := 2 + rng.Intn(3)
		invs := make([]Invocation, nOps)
		for k := range invs {
			prog := genTaggedProgram(len(c.Progs)+1, rng, &tag)
			c.Progs = append(c.Progs, prog)
			invs[k] = Invocation{
				Prog:  len(c.Progs) - 1,
				Think: sim.Tick(rng.Intn(64)),
				Regs:  taggedRegs(rng, nPool),
			}
		}
		c.Invs[core] = invs
	}
	return c
}

// tagBase is the first tagged store value; initial pool data stays below it,
// so a loaded tag identifies its writing store uniquely.
const tagBase = 1000

// taggedRegs presets the two pointer registers tagged programs address
// through.
func taggedRegs(rng *sim.RNG, nPool int) []cpu.RegInit {
	return []cpu.RegInit{
		{Reg: isa.R0, Val: uint64(poolLineBase(rng.Intn(nPool)))},
		{Reg: isa.R1, Val: uint64(poolLineBase(rng.Intn(nPool)))},
	}
}

// genTaggedProgram builds a straight-line AR of loads and uniquely-tagged
// stores over words 1..7 (never the pointer slot).
func genTaggedProgram(id int, rng *sim.RNG, tag *uint64) *isa.Program {
	nMem := 2 + rng.Intn(4)
	code := make([]isa.Instr, 0, nMem*2+1)
	ptr := []isa.Reg{isa.R0, isa.R1}
	for i := 0; i < nMem; i++ {
		off := int64((1 + rng.Intn(7)) * mem.WordSize)
		base := ptr[rng.Intn(len(ptr))]
		if rng.Intn(2) == 0 {
			code = append(code,
				isa.Instr{Op: isa.OpLoadImm, Dst: isa.R4, Imm: int64(*tag)},
				isa.Instr{Op: isa.OpStore, Src1: base, Src2: isa.R4, Imm: off})
			*tag++
		} else {
			code = append(code, isa.Instr{Op: isa.OpLoad, Dst: isa.R5, Src1: base, Imm: off})
		}
	}
	code = append(code, isa.Instr{Op: isa.OpHalt})
	p := &isa.Program{ID: id, Name: fmt.Sprintf("fuzz/tagged%d", id), Code: code}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("fuzz: generated invalid tagged program: %v", err))
	}
	return p
}
