// Package fuzz implements the randomized litmus harness for the CLEAR
// simulator: it generates seeded random atomic-region programs over a small
// pool of shared cachelines, runs them under all four evaluated
// configurations with the internal/check invariant oracle attached, and
// differentially checks the final memory state against a serial replay in
// the observed commit order. Failures shrink to a minimal reproducer (seed +
// program dump) and replay deterministically: the whole pipeline is a pure
// function of the case seed, witnessed by stats.Run.Digest.
package fuzz

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// PoolBase is the address of the first shared pool line. It sits well below
// the machine allocator base (0x100000), so the fallback-lock line can never
// alias the pool.
const PoolBase mem.Addr = 0x10000

// Generation limits.
const (
	minPoolLines = 2
	maxPoolLines = 6
	minCores     = 2
	maxCores     = 4
	minOps       = 1
	maxOps       = 6
	minProgs     = 1
	maxProgs     = 3
	minProgLen   = 4  // including the final halt
	maxProgLen   = 16 // including the final halt
)

// Register conventions of generated programs. Pointer registers hold a valid
// pool-line base address on every path by construction: they are preset to
// pool bases and only ever written with pool-base values (loads of a line's
// word 0, moves from other pointer registers). Everything else is data.
var (
	ptrRegs  = []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R3, isa.R8}
	dataRegs = []isa.Reg{isa.R4, isa.R5, isa.R9, isa.R10, isa.R11}
)

// PoolLine is the deterministic initial contents of one shared pool line:
// word 0 is the pointer slot (index of the pool line it points to), words
// 1..7 hold data values.
type PoolLine struct {
	Ptr  int
	Data [7]uint64
}

// Invocation is one generated AR invocation: which program, its register
// presets, and the think time before it.
type Invocation struct {
	Prog  int // index into Case.Progs
	Regs  []cpu.RegInit
	Think sim.Tick
}

// Case is one self-contained fuzz case. Everything a run needs is recorded
// here, so a Case can be cloned, mutated by the shrinker, dumped as a
// reproducer, and re-run bit-identically.
type Case struct {
	Seed  uint64
	Pool  []PoolLine
	Progs []*isa.Program
	// Invs[core] is that core's invocation list.
	Invs [][]Invocation
}

// Cores returns how many cores the case uses.
func (c *Case) Cores() int { return len(c.Invs) }

// poolLineBase returns the base address of pool line i.
func poolLineBase(i int) mem.Addr { return PoolBase + mem.Addr(i)*mem.LineSize }

// Gen generates the fuzz case for seed. The generation is a pure function
// of the seed.
func Gen(seed uint64) *Case {
	rng := sim.NewRNG(seed*0x9e3779b97f4a7c15 + 1)
	c := &Case{Seed: seed}

	nPool := minPoolLines + rng.Intn(maxPoolLines-minPoolLines+1)
	c.Pool = make([]PoolLine, nPool)
	for i := range c.Pool {
		c.Pool[i].Ptr = rng.Intn(nPool)
		for w := range c.Pool[i].Data {
			c.Pool[i].Data[w] = uint64(rng.Intn(256))
		}
	}

	nProgs := minProgs + rng.Intn(maxProgs-minProgs+1)
	c.Progs = make([]*isa.Program, nProgs)
	for i := range c.Progs {
		c.Progs[i] = genProgram(i+1, rng)
	}

	nCores := minCores + rng.Intn(maxCores-minCores+1)
	c.Invs = make([][]Invocation, nCores)
	for core := range c.Invs {
		nOps := minOps + rng.Intn(maxOps-minOps+1)
		invs := make([]Invocation, nOps)
		for k := range invs {
			invs[k] = genInvocation(c, rng)
		}
		c.Invs[core] = invs
	}
	return c
}

// genInvocation draws a program and fresh register presets.
func genInvocation(c *Case, rng *sim.RNG) Invocation {
	inv := Invocation{
		Prog:  rng.Intn(len(c.Progs)),
		Think: sim.Tick(rng.Intn(64)),
	}
	for _, r := range ptrRegs {
		inv.Regs = append(inv.Regs, cpu.RegInit{
			Reg: r, Val: uint64(poolLineBase(rng.Intn(len(c.Pool)))),
		})
	}
	for _, r := range dataRegs[:2] { // R4, R5 preset; scratch data regs start 0
		inv.Regs = append(inv.Regs, cpu.RegInit{Reg: r, Val: uint64(rng.Intn(64))})
	}
	return inv
}

// genProgram builds one random AR. Safety-by-construction rules:
//   - memory is only addressed through pointer registers with word-aligned
//     offsets 0..56, so every access is aligned and inside the pool;
//   - word 0 (the pointer slot) is only ever written from pointer registers,
//     so every value a pointer register can hold is a valid pool-line base
//     on every control path;
//   - branches only jump forward, so every program terminates;
//   - no RdTsc (its value is not serially replayable).
//
// Loads of word 0 into R8 create genuine indirections (the address of a
// later access depends on a loaded value), which is what drives discovery
// to the S-CL classification; data-dependent branches drive control
// mutability; straight pointer-preset programs discover as immutable and
// take NS-CL.
func genProgram(id int, rng *sim.RNG) *isa.Program {
	n := minProgLen + rng.Intn(maxProgLen-minProgLen+1)
	code := make([]isa.Instr, 0, n)
	for len(code) < n-1 {
		i := len(code)
		switch r := rng.Intn(100); {
		case r < 30: // load
			off := int64(rng.Intn(8) * mem.WordSize)
			in := isa.Instr{Op: isa.OpLoad, Src1: pick(rng, ptrRegs), Imm: off}
			if off == 0 && rng.Intn(2) == 0 {
				in.Dst = isa.R8 // pointer chase
			} else if off == 0 {
				in.Dst = pick(rng, dataRegs) // pointer read as data: harmless
			} else {
				in.Dst = pick(rng, dataRegs)
			}
			code = append(code, in)
		case r < 55: // store
			off := int64(rng.Intn(8) * mem.WordSize)
			in := isa.Instr{Op: isa.OpStore, Src1: pick(rng, ptrRegs), Imm: off}
			if off == 0 {
				in.Src2 = pick(rng, ptrRegs) // pointer slot stays a valid base
			} else {
				in.Src2 = pick(rng, dataRegs)
			}
			code = append(code, in)
		case r < 75: // ALU on data registers
			code = append(code, genALU(rng))
		case r < 87: // forward conditional branch
			if i+2 >= n {
				code = append(code, isa.Instr{Op: isa.OpNop})
				break
			}
			target := i + 1 + 1 + rng.Intn(n-1-(i+1)) // in (i+1, n-1]
			ops := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge}
			code = append(code, isa.Instr{
				Op:   ops[rng.Intn(len(ops))],
				Src1: pickAny(rng),
				Src2: pickAny(rng),
				Imm:  int64(target),
			})
		case r < 91: // mov between compatible registers
			if rng.Intn(2) == 0 {
				code = append(code, isa.Instr{Op: isa.OpMov, Dst: isa.R8, Src1: pick(rng, ptrRegs)})
			} else {
				code = append(code, isa.Instr{Op: isa.OpMov, Dst: pick(rng, dataRegs), Src1: pickAny(rng)})
			}
		case r < 95: // explicit abort (rare)
			code = append(code, isa.Instr{Op: isa.OpXAbort})
		default:
			code = append(code, isa.Instr{Op: isa.OpNop})
		}
	}
	code = append(code, isa.Instr{Op: isa.OpHalt})
	p := &isa.Program{ID: id, Name: fmt.Sprintf("fuzz/ar%d", id), Code: code}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("fuzz: generated invalid program: %v", err))
	}
	return p
}

// genALU emits an arithmetic instruction over data registers.
func genALU(rng *sim.RNG) isa.Instr {
	dst := pick(rng, dataRegs)
	switch rng.Intn(5) {
	case 0:
		return isa.Instr{Op: isa.OpAddImm, Dst: dst, Src1: pick(rng, dataRegs), Imm: int64(rng.Intn(16))}
	case 1:
		return isa.Instr{Op: isa.OpAdd, Dst: dst, Src1: pick(rng, dataRegs), Src2: pick(rng, dataRegs)}
	case 2:
		return isa.Instr{Op: isa.OpSub, Dst: dst, Src1: pick(rng, dataRegs), Src2: pick(rng, dataRegs)}
	case 3:
		return isa.Instr{Op: isa.OpXor, Dst: dst, Src1: pick(rng, dataRegs), Src2: pick(rng, dataRegs)}
	default:
		return isa.Instr{Op: isa.OpAndImm, Dst: dst, Src1: pick(rng, dataRegs), Imm: int64(rng.Intn(64))}
	}
}

func pick(rng *sim.RNG, regs []isa.Reg) isa.Reg { return regs[rng.Intn(len(regs))] }

func pickAny(rng *sim.RNG) isa.Reg {
	if rng.Intn(3) == 0 {
		return pick(rng, ptrRegs)
	}
	return pick(rng, dataRegs)
}

// Clone deep-copies the case so the shrinker can mutate candidates freely.
func (c *Case) Clone() *Case {
	n := &Case{Seed: c.Seed}
	n.Pool = append([]PoolLine(nil), c.Pool...)
	n.Progs = make([]*isa.Program, len(c.Progs))
	for i, p := range c.Progs {
		cp := *p
		cp.Code = append([]isa.Instr(nil), p.Code...)
		n.Progs[i] = &cp
	}
	n.Invs = make([][]Invocation, len(c.Invs))
	for core, invs := range c.Invs {
		cl := make([]Invocation, len(invs))
		for k, inv := range invs {
			cl[k] = inv
			cl[k].Regs = append([]cpu.RegInit(nil), inv.Regs...)
		}
		n.Invs[core] = cl
	}
	return n
}

// EffectiveInstrs counts the non-nop, non-halt instructions across every
// program still referenced by some invocation — the reproducer size metric.
func (c *Case) EffectiveInstrs() int {
	used := make([]bool, len(c.Progs))
	for _, invs := range c.Invs {
		for _, inv := range invs {
			used[inv.Prog] = true
		}
	}
	total := 0
	for i, p := range c.Progs {
		if !used[i] {
			continue
		}
		for _, in := range p.Code {
			if in.Op != isa.OpNop && in.Op != isa.OpHalt {
				total++
			}
		}
	}
	return total
}

// Dump renders the case as a human-readable reproducer: seed, pool image,
// program disassembly, and per-core invocation lists.
func (c *Case) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", c.Seed)
	fmt.Fprintf(&b, "pool (%d lines at %s):\n", len(c.Pool), PoolBase)
	for i, pl := range c.Pool {
		fmt.Fprintf(&b, "  line %d @%s: ptr->line %d data %v\n", i, poolLineBase(i), pl.Ptr, pl.Data)
	}
	for _, p := range c.Progs {
		fmt.Fprintf(&b, "program %d (%s):\n", p.ID, p.Name)
		for i, in := range p.Code {
			fmt.Fprintf(&b, "  %2d: %s\n", i, in)
		}
	}
	for core, invs := range c.Invs {
		fmt.Fprintf(&b, "core %d (%d invocations):\n", core, len(invs))
		for k, inv := range invs {
			fmt.Fprintf(&b, "  #%d prog=%d think=%d regs=", k, c.Progs[inv.Prog].ID, inv.Think)
			for _, ri := range inv.Regs {
				fmt.Fprintf(&b, "%s=0x%x ", ri.Reg, ri.Val)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
