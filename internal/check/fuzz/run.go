package fuzz

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/litmus"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config selects one of the four evaluated configurations (§7 of the paper).
type Config int

const (
	// ConfigB: baseline requester-wins HTM.
	ConfigB Config = iota
	// ConfigP: PowerTM.
	ConfigP
	// ConfigC: CLEAR over requester-wins.
	ConfigC
	// ConfigW: CLEAR over PowerTM.
	ConfigW
)

// AllConfigs lists the four configurations in presentation order.
var AllConfigs = []Config{ConfigB, ConfigP, ConfigC, ConfigW}

func (c Config) String() string {
	switch c {
	case ConfigB:
		return "B"
	case ConfigP:
		return "P"
	case ConfigC:
		return "C"
	case ConfigW:
		return "W"
	}
	return "?"
}

// Config-string decoding lives in harness.ParseConfigs (the single decoder
// shared by every tool); cmd/clearfuzz maps the harness IDs onto this
// package's Config values.

// maxCaseTicks bounds one case run; generated programs are tiny, so hitting
// this means a liveness bug.
const maxCaseTicks sim.Tick = 50_000_000

// Opts tweaks a case run.
type Opts struct {
	// Inject enables the deliberate single-retry bug
	// (cpu.SystemConfig.InjectSecondSpecRetry); only meaningful for the
	// CLEAR configs C and W.
	Inject bool
	// InjectLostInv enables the deliberate conflict-detection bug
	// (cpu.SystemConfig.InjectLostInvalidation): a speculative holder yields
	// a line without aborting. The axiomatic checker catches the resulting
	// ordering corruption even on runs whose final memory matches the serial
	// replay.
	InjectLostInv bool
	// Axiomatic additionally records a memory-access trace of the run and
	// feeds it to the internal/litmus axiomatic checker — a second,
	// independent oracle over the same execution (Result.Axiom).
	Axiomatic bool
	// Plan, when non-nil, attaches the internal/fault injector to every
	// run, so the differential serial-replay check also validates the
	// machine under environmental perturbation. The injector's own seed is
	// mixed per (case, config), keeping each run deterministic.
	Plan *fault.Plan
	// Policy selects the retry policy every case runs under (zero value =
	// paper-exact default): the differential and axiomatic oracles must
	// hold for adaptive policies too.
	Policy policy.Spec
}

// Result is the outcome of running one case under one configuration.
type Result struct {
	Config Config
	// Digest is the deterministic statistics digest of the run (the replay
	// witness: the same seed must reproduce it bit-identically).
	Digest string
	// Violations are the oracle's findings (capped); ViolationCount is the
	// true total.
	Violations     []check.Violation
	ViolationCount int
	// Mismatch describes a differential failure (simulated final memory vs
	// serial replay in commit order); empty when the state serializes.
	Mismatch string
	// Axiom is the litmus axiomatic checker's verdict over the run's trace
	// (Opts.Axiomatic); nil when the axiomatic oracle was off.
	Axiom *litmus.Verdict
	// RunErr is a machine-level failure (deadlock, livelock, tick budget).
	RunErr error
}

// Failed reports whether the result shows any problem.
func (r Result) Failed() bool {
	return r.ViolationCount > 0 || r.Mismatch != "" || r.RunErr != nil ||
		(r.Axiom != nil && !r.Axiom.OK())
}

func (r Result) String() string {
	if !r.Failed() {
		return fmt.Sprintf("%s: ok (digest %s)", r.Config, shortDigest(r.Digest))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: FAILED", r.Config)
	if r.RunErr != nil {
		fmt.Fprintf(&b, "\n  run error: %v", r.RunErr)
	}
	if r.ViolationCount > 0 {
		fmt.Fprintf(&b, "\n  %d invariant violation(s):", r.ViolationCount)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "\n    %s", v)
		}
	}
	if r.Mismatch != "" {
		fmt.Fprintf(&b, "\n  differential mismatch: %s", r.Mismatch)
	}
	if r.Axiom != nil && !r.Axiom.OK() {
		fmt.Fprintf(&b, "\n  axiomatic: %s", strings.ReplaceAll(r.Axiom.String(), "\n", "\n  "))
	}
	return b.String()
}

func shortDigest(d string) string {
	if len(d) > 40 {
		return d[:40] + "..."
	}
	return d
}

// systemConfig maps a fuzz configuration to the machine configuration.
func (c Config) systemConfig(cs *Case, opts Opts) cpu.SystemConfig {
	cfg := cpu.DefaultSystemConfig()
	cfg.Cores = cs.Cores()
	cfg.CLEAR = c == ConfigC || c == ConfigW
	cfg.PowerTM = c == ConfigP || c == ConfigW
	cfg.Seed = cs.Seed*4 + uint64(c) + 1
	cfg.InjectSecondSpecRetry = opts.Inject
	cfg.InjectLostInvalidation = opts.InjectLostInv
	cfg.Policy = opts.Policy
	return cfg
}

// initPool writes the case's deterministic pool image into memory: word 0 of
// each line holds the base address of the line its Ptr names, words 1..7
// hold the data values.
func initPool(m *mem.Memory, cs *Case) {
	for i, pl := range cs.Pool {
		base := poolLineBase(i)
		m.WriteWord(base, uint64(poolLineBase(pl.Ptr)))
		for w, v := range pl.Data {
			m.WriteWord(base+mem.Addr((w+1)*mem.WordSize), v)
		}
	}
}

// poolImage reads the current pool contents from memory.
func poolImage(m *mem.Memory, cs *Case) []uint64 {
	img := make([]uint64, 0, len(cs.Pool)*mem.WordsPerLine)
	for i := range cs.Pool {
		base := poolLineBase(i)
		for w := 0; w < mem.WordsPerLine; w++ {
			img = append(img, m.ReadWord(base+mem.Addr(w*mem.WordSize)))
		}
	}
	return img
}

// RunCase executes the case under one configuration with the invariant
// oracle attached, then differentially validates the final memory against a
// serial replay of the observed commit order.
func RunCase(cs *Case, cfg Config, opts Opts) Result {
	res := Result{Config: cfg}

	memory := mem.NewMemory(0x100000)
	initPool(memory, cs)
	machine, err := cpu.NewMachine(cfg.systemConfig(cs, opts), memory)
	if err != nil {
		res.RunErr = err
		return res
	}
	oracle := check.Attach(machine)
	var traceBuf bytes.Buffer
	var tracer *trace.Tracer
	if opts.Axiomatic {
		tracer, err = trace.Attach(machine, &traceBuf, trace.Options{
			Benchmark:   "fuzz",
			Config:      cfg.String(),
			Seed:        cs.Seed,
			MemAccesses: true,
		})
		if err != nil {
			res.RunErr = err
			return res
		}
	}
	// The injector attaches after the oracle: the oracle observes the
	// perturbed run and must still find it invariant-clean — faults may
	// delay or refuse, never corrupt.
	fault.Attach(machine, opts.Plan)
	feeds := make([]cpu.InvocationSource, cs.Cores())
	for core, invs := range cs.Invs {
		list := make([]cpu.Invocation, len(invs))
		for k, inv := range invs {
			list[k] = cpu.Invocation{Prog: cs.Progs[inv.Prog], Regs: regInits(inv.Regs), Think: inv.Think}
		}
		feeds[core] = &cpu.SliceSource{Invs: list}
	}
	machine.AttachFeeds(feeds)

	if err := machine.Run(maxCaseTicks); err != nil {
		res.RunErr = err
	}
	oracle.Finish()
	res.Digest = machine.Stats.Digest()
	res.Violations = oracle.Violations()
	res.ViolationCount = oracle.ViolationCount()
	if res.RunErr == nil {
		res.Mismatch = diffReplay(cs, oracle.CommitLog(), poolImage(memory, cs))
	}
	if tracer != nil && res.RunErr == nil {
		res.Axiom, res.RunErr = axiomCheck(cs, tracer, &traceBuf)
	}
	return res
}

// axiomCheck closes the tracer and runs the litmus axiomatic checker over
// the recorded stream, resolving initial reads against the case's pool
// image.
func axiomCheck(cs *Case, tracer *trace.Tracer, buf *bytes.Buffer) (*litmus.Verdict, error) {
	if err := tracer.Close(); err != nil {
		return nil, err
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	events, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	v := litmus.CheckEvents(events, litmus.CheckOpts{Initial: poolInitial(cs)})
	return &v, nil
}

// poolInitial maps an address onto the case's initial pool image (what
// initPool wrote): word 0 of line i points at line Ptr, words 1..7 hold the
// data values. Addresses outside the pool start zero.
func poolInitial(cs *Case) func(mem.Addr) uint64 {
	return func(a mem.Addr) uint64 {
		if a < PoolBase {
			return 0
		}
		i := int((a - PoolBase) / mem.LineSize)
		if i >= len(cs.Pool) {
			return 0
		}
		w := int(a%mem.LineSize) / mem.WordSize
		if w == 0 {
			return uint64(poolLineBase(cs.Pool[i].Ptr))
		}
		if w-1 < len(cs.Pool[i].Data) {
			return cs.Pool[i].Data[w-1]
		}
		return 0
	}
}

func regInits(rs []cpu.RegInit) []cpu.RegInit { return append([]cpu.RegInit(nil), rs...) }

// RunAll executes the case under every requested configuration.
func RunAll(cs *Case, cfgs []Config, opts Opts) []Result {
	out := make([]Result, 0, len(cfgs))
	for _, cfg := range cfgs {
		out = append(out, RunCase(cs, cfg, opts))
	}
	return out
}

// AnyFailed reports whether any result failed.
func AnyFailed(rs []Result) bool {
	for _, r := range rs {
		if r.Failed() {
			return true
		}
	}
	return false
}

// diffReplay re-executes the committed invocations serially, in the commit
// order the oracle observed, against a fresh pool image, and compares the
// final memory word by word. Commit order equals serialization order in this
// machine: conflicts are detected eagerly, the commit point is atomic, and
// fallback execution is globally exclusive — so any divergence means an AR
// was not atomic. Returns "" on success.
func diffReplay(cs *Case, log []check.Commit, simImage []uint64) string {
	replayMem := mem.NewMemory(0x100000)
	initPool(replayMem, cs)

	// The k-th commit of core c is core c's k-th invocation: every
	// invocation commits exactly once, in program order per core.
	next := make([]int, cs.Cores())
	for _, cm := range log {
		if cm.Core >= len(next) {
			return fmt.Sprintf("commit log names core %d beyond the case's %d cores", cm.Core, cs.Cores())
		}
		k := next[cm.Core]
		next[cm.Core]++
		if k >= len(cs.Invs[cm.Core]) {
			return fmt.Sprintf("core %d committed %d times but has only %d invocations", cm.Core, k+1, len(cs.Invs[cm.Core]))
		}
		inv := cs.Invs[cm.Core][k]
		prog := cs.Progs[inv.Prog]
		if prog.ID != cm.ProgID {
			return fmt.Sprintf("core %d commit #%d ran prog %d but the case expects prog %d", cm.Core, k, cm.ProgID, prog.ID)
		}
		if msg := replayInvocation(prog, inv, replayMem, cm.Mode); msg != "" {
			return msg
		}
	}
	for core, invs := range cs.Invs {
		if next[core] != len(invs) {
			return fmt.Sprintf("core %d committed %d of %d invocations", core, next[core], len(invs))
		}
	}

	replayImage := poolImage(replayMem, cs)
	for i := range simImage {
		if simImage[i] != replayImage[i] {
			line, word := i/mem.WordsPerLine, i%mem.WordsPerLine
			return fmt.Sprintf("pool line %d word %d: simulated 0x%x, serial replay 0x%x",
				line, word, simImage[i], replayImage[i])
		}
	}
	return ""
}

// replayInvocation interprets one AR serially with immediate stores (the
// serial equivalent of store-queue forwarding). An XAbort reached under a
// fallback commit keeps the stores executed so far — non-speculative
// execution cannot roll back, the simulator commits the partial region — and
// stops; reaching XAbort under any other commit mode is a mismatch, because
// a speculative or CL execution that hits XAbort aborts instead of
// committing. Generated programs only branch forward, so replay terminates.
func replayInvocation(prog *isa.Program, inv Invocation, m *mem.Memory, mode cpu.Mode) string {
	var regs [isa.NumRegs]uint64
	for _, ri := range inv.Regs {
		regs[ri.Reg] = ri.Val
	}
	pc := 0
	for steps := 0; steps <= len(prog.Code); steps++ {
		in := prog.Code[pc]
		switch in.Op {
		case isa.OpNop:
			pc++
		case isa.OpLoadImm:
			regs[in.Dst] = uint64(in.Imm)
			pc++
		case isa.OpMov:
			regs[in.Dst] = regs[in.Src1]
			pc++
		case isa.OpLoad:
			regs[in.Dst] = m.ReadWord(mem.Addr(regs[in.Src1] + uint64(in.Imm)))
			pc++
		case isa.OpStore:
			m.WriteWord(mem.Addr(regs[in.Src1]+uint64(in.Imm)), regs[in.Src2])
			pc++
		case isa.OpAdd:
			regs[in.Dst] = regs[in.Src1] + regs[in.Src2]
			pc++
		case isa.OpAddImm:
			regs[in.Dst] = regs[in.Src1] + uint64(in.Imm)
			pc++
		case isa.OpSub:
			regs[in.Dst] = regs[in.Src1] - regs[in.Src2]
			pc++
		case isa.OpMulImm:
			regs[in.Dst] = regs[in.Src1] * uint64(in.Imm)
			pc++
		case isa.OpAndImm:
			regs[in.Dst] = regs[in.Src1] & uint64(in.Imm)
			pc++
		case isa.OpShrImm:
			regs[in.Dst] = regs[in.Src1] >> uint64(in.Imm)
			pc++
		case isa.OpXor:
			regs[in.Dst] = regs[in.Src1] ^ regs[in.Src2]
			pc++
		case isa.OpBeq:
			pc = branch(pc, in, regs[in.Src1] == regs[in.Src2])
		case isa.OpBne:
			pc = branch(pc, in, regs[in.Src1] != regs[in.Src2])
		case isa.OpBlt:
			pc = branch(pc, in, regs[in.Src1] < regs[in.Src2])
		case isa.OpBge:
			pc = branch(pc, in, regs[in.Src1] >= regs[in.Src2])
		case isa.OpJump:
			pc = int(in.Imm)
		case isa.OpXAbort:
			if mode == cpu.ModeFallback {
				// Fallback commits the partial region up to the abort.
				return ""
			}
			return fmt.Sprintf("prog %d committed in mode %v but its serial replay reaches xabort at pc %d",
				prog.ID, mode, pc)
		case isa.OpHalt:
			return ""
		default:
			return fmt.Sprintf("prog %d: replay hit unsupported opcode %v at pc %d", prog.ID, in.Op, pc)
		}
	}
	return fmt.Sprintf("prog %d: replay exceeded the forward-branch step bound (loop?)", prog.ID)
}

func branch(pc int, in isa.Instr, taken bool) int {
	if taken {
		return int(in.Imm)
	}
	return pc + 1
}
