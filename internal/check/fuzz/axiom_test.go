package fuzz

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

// TestGenTaggedWellFormed: tagged cases are deterministic, reference every
// program exactly once, and tag every store uniquely — the preconditions
// that make the axiomatic oracle exact.
func TestGenTaggedWellFormed(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cs := GenTagged(seed)
		if !reflect.DeepEqual(cs, GenTagged(seed)) {
			t.Fatalf("seed %d: GenTagged is not deterministic", seed)
		}
		used := make(map[int]int)
		for _, invs := range cs.Invs {
			for _, inv := range invs {
				used[inv.Prog]++
			}
		}
		if len(used) != len(cs.Progs) {
			t.Fatalf("seed %d: %d of %d programs referenced", seed, len(used), len(cs.Progs))
		}
		for p, n := range used {
			if n != 1 {
				t.Fatalf("seed %d: program %d invoked %d times (tags would repeat)", seed, p, n)
			}
		}
		tags := map[int64]bool{}
		for _, p := range cs.Progs {
			for _, in := range p.Code {
				if in.Op == isa.OpLoadImm {
					if in.Imm < tagBase {
						t.Fatalf("seed %d: tag %d below tagBase", seed, in.Imm)
					}
					if tags[in.Imm] {
						t.Fatalf("seed %d: duplicate store tag %d", seed, in.Imm)
					}
					tags[in.Imm] = true
				}
				if in.Op == isa.OpStore && in.Imm == 0 {
					t.Fatalf("seed %d: tagged store touches the pointer slot", seed)
				}
			}
		}
	}
}

// TestAxiomaticDifferential runs the axiomatic checker and the serial-replay
// oracle over the same tagged executions on every configuration: on a
// correct machine both must pass, and the checker must resolve every load
// (zero ambiguity). A disagreement shrinks to a minimal reproducer and fails
// with both witnesses.
func TestAxiomaticDifferential(t *testing.T) {
	seeds := uint64(24)
	if testing.Short() {
		seeds = 6
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		cs := GenTagged(seed)
		for _, cfg := range AllConfigs {
			r := RunCase(cs, cfg, Opts{Axiomatic: true})
			if r.RunErr != nil {
				t.Fatalf("seed %d %s: run error: %v", seed, cfg, r.RunErr)
			}
			if r.Axiom == nil {
				t.Fatalf("seed %d %s: axiomatic oracle did not run", seed, cfg)
			}
			if r.Axiom.AmbiguousLoads != 0 {
				t.Errorf("seed %d %s: %d ambiguous loads in a tagged case",
					seed, cfg, r.Axiom.AmbiguousLoads)
			}
			replayOK := r.ViolationCount == 0 && r.Mismatch == ""
			axiomOK := r.Axiom.OK()
			if replayOK != axiomOK {
				min := Shrink(cs, func(c *Case) bool {
					rr := RunCase(c, cfg, Opts{Axiomatic: true})
					if rr.RunErr != nil || rr.Axiom == nil {
						return false
					}
					return (rr.ViolationCount == 0 && rr.Mismatch == "") != rr.Axiom.OK()
				})
				rm := RunCase(min, cfg, Opts{Axiomatic: true})
				t.Fatalf("seed %d %s: oracles disagree (replay ok=%v, axiomatic ok=%v)\n"+
					"replay result:\n%s\naxiomatic verdict:\n%s\nminimal case:\n%s",
					seed, cfg, replayOK, axiomOK, rm, rm.Axiom, min.Dump())
			}
		}
	}
}

// TestAxiomCatchesLostInvalidation: with the planted conflict-detection bug,
// the axiomatic checker must flag runs where the serial-replay differential
// sees nothing wrong — tagged loads feed no stores, so a stale read leaves
// the final memory image exactly serial — proving the checker catches
// ordering corruption the memory-image diff is structurally blind to.
func TestAxiomCatchesLostInvalidation(t *testing.T) {
	caught, replayBlind := 0, 0
	for seed := uint64(1); seed <= 40 && replayBlind == 0; seed++ {
		cs := GenTagged(seed)
		r := RunCase(cs, ConfigB, Opts{Axiomatic: true, InjectLostInv: true})
		if r.RunErr != nil {
			t.Fatalf("seed %d: run error: %v", seed, r.RunErr)
		}
		if r.Axiom != nil && !r.Axiom.OK() {
			caught++
			if r.Mismatch == "" {
				replayBlind++
			}
		}
	}
	if caught == 0 {
		t.Fatal("planted lost-invalidation bug never caught by the axiomatic oracle")
	}
	if replayBlind == 0 {
		t.Error("no run where the axiomatic oracle caught what the serial-replay diff missed")
	}
}
