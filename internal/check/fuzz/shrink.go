package fuzz

import "repro/internal/isa"

// Shrink greedily minimizes a failing case while preserving stillFailing.
// The reductions keep every structural invariant of generated cases intact:
// instruction replacement (nop-out, halt-truncation) never changes a
// program's length, so branch targets stay valid, and invocation-list
// truncation never orphans a referenced program. Shrinking is deterministic:
// the same input case and predicate yield the same reproducer.
//
// The predicate runs a full simulation per candidate, so Shrink is
// deliberately greedy-first (coarse structural cuts before per-instruction
// surgery) to keep the candidate count small.
func Shrink(c *Case, stillFailing func(*Case) bool) *Case {
	cur := c.Clone()
	for pass := 0; pass < 8; pass++ {
		improved := false

		// 1. Drop whole cores (highest leverage first).
		for cur.Cores() > 1 {
			cand := cur.Clone()
			cand.Invs = cand.Invs[:len(cand.Invs)-1]
			if !stillFailing(cand) {
				break
			}
			cur = cand
			improved = true
		}

		// 2. Truncate each core's invocation list.
		for core := range cur.Invs {
			for len(cur.Invs[core]) > 0 {
				cand := cur.Clone()
				cand.Invs[core] = cand.Invs[core][:len(cand.Invs[core])-1]
				if !stillFailing(cand) {
					break
				}
				cur = cand
				improved = true
			}
		}

		// 3. Remove individual invocations from the front/middle.
		for core := range cur.Invs {
			for k := 0; k < len(cur.Invs[core]); {
				cand := cur.Clone()
				cand.Invs[core] = append(cand.Invs[core][:k], cand.Invs[core][k+1:]...)
				if stillFailing(cand) {
					cur = cand
					improved = true
				} else {
					k++
				}
			}
		}

		// 4. Halt-truncate program suffixes: replacing instruction i with
		// halt ends the AR there; code length (and thus every branch
		// target's validity) is unchanged.
		for pi := range cur.Progs {
			for i := 0; i < len(cur.Progs[pi].Code)-1; i++ {
				if cur.Progs[pi].Code[i].Op == isa.OpHalt {
					continue
				}
				cand := cur.Clone()
				cand.Progs[pi].Code[i] = isa.Instr{Op: isa.OpHalt}
				if stillFailing(cand) {
					cur = cand
					improved = true
				}
			}
		}

		// 5. Nop-out individual instructions.
		for pi := range cur.Progs {
			for i := 0; i < len(cur.Progs[pi].Code)-1; i++ {
				op := cur.Progs[pi].Code[i].Op
				if op == isa.OpNop || op == isa.OpHalt {
					continue
				}
				cand := cur.Clone()
				cand.Progs[pi].Code[i] = isa.Instr{Op: isa.OpNop}
				if stillFailing(cand) {
					cur = cand
					improved = true
				}
			}
		}

		if !improved {
			break
		}
	}
	return cur
}
