package fuzz

import (
	"testing"

	"repro/internal/check"
)

// smokeSeeds is how many seeds the deterministic smoke test covers; each
// seed runs under all four configurations. Kept modest so `go test -short`
// stays fast; cmd/clearfuzz and the go-fuzz target scale further.
const smokeSeeds = 60

// TestFuzzSmokeAllConfigs runs a deterministic batch of generated cases
// under B, P, C, and W with the oracle attached and the differential
// serializability check on: zero invariant violations, zero mismatches.
func TestFuzzSmokeAllConfigs(t *testing.T) {
	seeds := uint64(smokeSeeds)
	if testing.Short() {
		seeds = 15
	}
	ran := 0
	for seed := uint64(1); seed <= seeds; seed++ {
		c := Gen(seed)
		for _, r := range RunAll(c, AllConfigs, Opts{}) {
			if r.Failed() {
				t.Fatalf("seed %d: %s\ncase:\n%s", seed, r, c.Dump())
			}
			ran++
		}
	}
	if ran == 0 {
		t.Fatal("no cases ran")
	}
}

// TestReplayDeterminism asserts a case replays bit-identically: the same
// seed must produce the same statistics digest on every run — the property
// that makes a reproducer's seed sufficient to re-observe a failure.
func TestReplayDeterminism(t *testing.T) {
	for seed := uint64(3); seed <= 6; seed++ {
		c1, c2 := Gen(seed), Gen(seed)
		for _, cfg := range AllConfigs {
			r1 := RunCase(c1, cfg, Opts{})
			r2 := RunCase(c2, cfg, Opts{})
			if r1.Digest != r2.Digest {
				t.Fatalf("seed %d %s: digests differ:\n  %s\n  %s", seed, cfg, r1.Digest, r2.Digest)
			}
			if r1.Failed() || r2.Failed() {
				t.Fatalf("seed %d %s failed: %s", seed, cfg, r1)
			}
		}
	}
}

// singleRetryCaught is the shrink predicate for the injected bug: the case
// still triggers the single-retry invariant under fault injection.
func singleRetryCaught(c *Case) bool {
	for _, r := range RunAll(c, []Config{ConfigC, ConfigW}, Opts{Inject: true}) {
		for _, v := range r.Violations {
			if v.Property == check.PropSingleRetry {
				return true
			}
		}
	}
	return false
}

// TestInjectedBugCaughtAndShrunk is the oracle's end-to-end acceptance test:
// a machine deliberately configured to take a second speculative retry after
// a convertible assessment (cpu.SystemConfig.InjectSecondSpecRetry) must be
// caught by the single-retry invariant, and the failing case must shrink to
// a reproducer of at most 20 effective instructions.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	var failing *Case
	for seed := uint64(1); seed <= 50; seed++ {
		c := Gen(seed)
		if singleRetryCaught(c) {
			failing = c
			break
		}
	}
	if failing == nil {
		t.Fatal("injected single-retry bug never caught in 50 seeds")
	}
	shrunk := Shrink(failing, singleRetryCaught)
	if !singleRetryCaught(shrunk) {
		t.Fatal("shrunk case no longer triggers the injected bug")
	}
	if n := shrunk.EffectiveInstrs(); n > 20 {
		t.Fatalf("reproducer has %d effective instructions, want <= 20:\n%s", n, shrunk.Dump())
	}
	t.Logf("injected bug shrunk to %d effective instruction(s), %d core(s):\n%s",
		shrunk.EffectiveInstrs(), shrunk.Cores(), shrunk.Dump())
}

// TestInjectionDoesNotFireCleanOracle guards the converse: without fault
// injection the same seeds are invariant-clean (the single-retry check does
// not fire spuriously on correct decision trees).
func TestInjectionDoesNotFireCleanOracle(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		c := Gen(seed)
		for _, r := range RunAll(c, []Config{ConfigC, ConfigW}, Opts{}) {
			if r.ViolationCount > 0 {
				t.Fatalf("seed %d %s: clean config reported violations: %s", seed, r.Config, r)
			}
		}
	}
}

// FuzzARPrograms is the go-fuzz entry point: any uint64 is a valid case
// seed. The fuzzer explores seeds; every case must be invariant-clean and
// serializable under all four configurations.
func FuzzARPrograms(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		c := Gen(seed)
		for _, r := range RunAll(c, AllConfigs, Opts{}) {
			if r.Failed() {
				t.Fatalf("seed %d: %s\ncase:\n%s", seed, r, c.Dump())
			}
		}
	})
}
