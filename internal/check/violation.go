package check

import (
	"fmt"

	"repro/internal/sim"
)

// Property names the four checked invariant families (see DESIGN.md,
// "Verification").
const (
	// PropMESI: directory single-writer / sharer-bitset consistency, and
	// exclusive coverage of committing stores.
	PropMESI = "mesi"
	// PropLockOrder: NS-CL/S-CL cacheline locks are acquired in the
	// lexicographic (directory set, line) order and the waits-for graph of
	// lock acquisitions stays acyclic.
	PropLockOrder = "lock-order"
	// PropSingleRetry: the paper's headline bound — after a convertible
	// discovery assessment, an AR never performs a second plain speculative
	// re-execution; the §4.3 decision is honoured by the next attempt.
	PropSingleRetry = "single-retry"
	// PropFootprint: an NS-CL re-execution touches exactly the footprint
	// discovery learned (immutability held in practice).
	PropFootprint = "footprint"
)

// Violation is one invariant failure the oracle observed.
type Violation struct {
	// Tick is the simulation time of the observation.
	Tick sim.Tick
	// Property is one of the Prop* constants.
	Property string
	// Core is the core the violation is attributed to, or -1 for
	// machine-global checks.
	Core int
	// Msg describes the failure.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("[tick %d core %d] %s: %s", v.Tick, v.Core, v.Property, v.Msg)
}
