package lineset

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// refSet is the map-based oracle: a Go map plus a first-insertion-order
// journal, mirroring the semantics LineSet promises.
type refSet struct {
	m     map[mem.LineAddr]bool
	order []mem.LineAddr
}

func newRefSet() *refSet { return &refSet{m: make(map[mem.LineAddr]bool)} }

func (r *refSet) add(k mem.LineAddr) bool {
	if r.m[k] {
		return false
	}
	journaled := false
	for _, o := range r.order {
		if o == k {
			journaled = true
			break
		}
	}
	if !journaled {
		r.order = append(r.order, k)
	}
	r.m[k] = true
	return true
}

func (r *refSet) remove(k mem.LineAddr) bool {
	if !r.m[k] {
		return false
	}
	delete(r.m, k)
	return true
}

func (r *refSet) clear() {
	r.m = make(map[mem.LineAddr]bool)
	r.order = r.order[:0]
}

func (r *refSet) lines() []mem.LineAddr {
	out := []mem.LineAddr{}
	for _, k := range r.order {
		if r.m[k] {
			out = append(out, k)
		}
	}
	return out
}

// TestLineSetDifferential drives LineSet against the map oracle with a
// randomized op mix: insert, lookup, remove, epoch-clear, and full
// iteration-order comparison.
func TestLineSetDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC1EA4))
	var s LineSet
	ref := newRefSet()
	// Small key space forces collisions, revivals, and duplicate adds.
	key := func() mem.LineAddr { return mem.LineAddr(rng.Intn(97)) }
	for op := 0; op < 200000; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // add
			k := key()
			if got, want := s.Add(k), ref.add(k); got != want {
				t.Fatalf("op %d: Add(%d) = %v, oracle %v", op, k, got, want)
			}
		case 4, 5, 6: // lookup
			k := key()
			if got, want := s.Has(k), ref.m[k]; got != want {
				t.Fatalf("op %d: Has(%d) = %v, oracle %v", op, k, got, want)
			}
		case 7: // remove
			k := key()
			if got, want := s.Remove(k), ref.remove(k); got != want {
				t.Fatalf("op %d: Remove(%d) = %v, oracle %v", op, k, got, want)
			}
		case 8: // epoch clear (rarely, so epochs grow long)
			if rng.Intn(20) == 0 {
				s.Clear()
				ref.clear()
			}
		case 9: // iterate in deterministic order
			got := s.Lines()
			want := ref.lines()
			if len(got) != len(want) {
				t.Fatalf("op %d: Lines len %d, oracle %d", op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d: Lines[%d] = %d, oracle %d (order diverged)", op, i, got[i], want[i])
				}
			}
			if s.Len() != len(want) {
				t.Fatalf("op %d: Len %d, oracle %d", op, s.Len(), len(want))
			}
		}
	}
}

// TestLineSetGrowth checks correctness across table growth with a wide key
// space (no collisions masked by the tiny default table).
func TestLineSetGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s LineSet
	ref := newRefSet()
	for i := 0; i < 5000; i++ {
		k := mem.LineAddr(rng.Uint64() >> 6)
		if got, want := s.Add(k), ref.add(k); got != want {
			t.Fatalf("Add(%#x) = %v, oracle %v", k, got, want)
		}
	}
	if s.Len() != len(ref.m) {
		t.Fatalf("Len %d, oracle %d", s.Len(), len(ref.m))
	}
	got := s.Lines()
	want := ref.lines()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lines[%d] = %#x, oracle %#x", i, got[i], want[i])
		}
	}
	// Every inserted key must still be found after growth.
	for k := range ref.m {
		if !s.Has(k) {
			t.Fatalf("Has(%#x) = false after growth", k)
		}
	}
}

// TestLineSetReviveAfterRemove exercises the tombstone-revival path: a key
// removed and re-added in the same epoch must not duplicate in iteration.
func TestLineSetReviveAfterRemove(t *testing.T) {
	var s LineSet
	s.Add(10)
	s.Add(20)
	s.Remove(10)
	s.Add(10)
	got := s.Lines()
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("Lines = %v, want [10 20] (first-insertion order, no duplicates)", got)
	}
	s.Clear()
	if s.Len() != 0 || s.Has(10) || s.Has(20) {
		t.Fatal("Clear did not empty the set")
	}
	s.Add(20)
	if got := s.Lines(); len(got) != 1 || got[0] != 20 {
		t.Fatalf("Lines after clear = %v, want [20]", got)
	}
}

// TestLineMapDifferential drives Map against a Go map oracle: set (insert
// and overwrite), get, and epoch-clear.
func TestLineMapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA17))
	var m LineMap
	ref := make(map[mem.LineAddr]uint64)
	key := func() mem.LineAddr { return mem.LineAddr(rng.Intn(300)) }
	for op := 0; op < 200000; op++ {
		switch rng.Intn(8) {
		case 0, 1, 2: // set
			k, v := key(), rng.Uint64()
			m.Set(k, v)
			ref[k] = v
		case 3, 4, 5, 6: // get
			k := key()
			gv, gok := m.Get(k)
			wv, wok := ref[k]
			if gok != wok || gv != wv {
				t.Fatalf("op %d: Get(%d) = (%d,%v), oracle (%d,%v)", op, k, gv, gok, wv, wok)
			}
		case 7: // epoch clear
			if rng.Intn(30) == 0 {
				m.Clear()
				ref = make(map[mem.LineAddr]uint64)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len %d, oracle %d", op, m.Len(), len(ref))
		}
	}
}

// footprint is a typical transactional working set: a couple dozen lines,
// matching what readSet/writeSet hold per atomic region.
var footprint = func() []mem.LineAddr {
	rng := rand.New(rand.NewSource(42))
	out := make([]mem.LineAddr, 24)
	for i := range out {
		out[i] = mem.LineAddr(rng.Uint64() >> 6)
	}
	return out
}()

// BenchmarkLineSetAddClear measures the hot per-AR cycle — insert a
// footprint, membership-test it, clear — for the epoch-cleared LineSet.
func BenchmarkLineSetAddClear(b *testing.B) {
	var s LineSet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range footprint {
			s.Add(k)
		}
		for _, k := range footprint {
			if !s.Has(k) {
				b.Fatal("lost key")
			}
		}
		s.Clear()
	}
}

// BenchmarkLineSetAddClearMapRef is the map-based reference implementation
// of the same cycle, so the win is measured, not asserted.
func BenchmarkLineSetAddClearMapRef(b *testing.B) {
	s := make(map[mem.LineAddr]bool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range footprint {
			s[k] = true
		}
		for _, k := range footprint {
			if !s[k] {
				b.Fatal("lost key")
			}
		}
		clear(s)
	}
}
