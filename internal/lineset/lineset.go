// Package lineset provides open-addressed, power-of-two hash containers
// keyed by cacheline (or word) addresses, built for the simulator's hot
// path. Two properties distinguish them from Go maps:
//
//   - Epoch-cleared: Clear bumps a generation counter instead of walking
//     slots, so resetting a read/write/footprint set between atomic regions
//     is O(1) and never re-allocates. A slot is live only when its mark
//     equals the current epoch; stale slots from earlier epochs read as
//     empty and are overwritten in place.
//   - Deterministic iteration: a LineSet records first-insertion order per
//     epoch and iterates in exactly that order, so any consumer that walks a
//     set observes a sequence fully determined by the simulation's own
//     (deterministic) access sequence — never Go map randomization.
//
// A LineSet interleaves each key with its epoch mark in one 16-byte slot so
// a probe touches a single cacheline; probing is multiplicative hashing with
// linear stride.
// Tombstones (mark == epoch+1) support Remove without breaking probe
// chains; a removed key keeps its slot for the rest of the epoch, which
// also guarantees the insertion-order journal never holds duplicates.
package lineset

import (
	"math/bits"

	"repro/internal/mem"
)

// minSlots is the initial table size: big enough that typical transactional
// footprints (tens of lines) never grow, small enough to stay cache-resident.
const minSlots = 64

// hashMul is the 64-bit golden-ratio multiplier (Fibonacci hashing).
const hashMul = 0x9e3779b97f4a7c15

func hash64(k uint64, shift uint) uint64 {
	return (k * hashMul) >> shift
}

// setSlot is one LineSet table slot: the key and its epoch mark share a
// 16-byte cell, so a probe costs one cache access.
type setSlot struct {
	key  mem.LineAddr
	mark uint64
}

// LineSet is an epoch-cleared open-addressed set of cacheline addresses.
// The zero value is ready to use.
type LineSet struct {
	slots []setSlot
	order []mem.LineAddr // first-insertion order for the current epoch
	epoch uint64         // always even and >= 2 once initialized
	live  int            // keys with mark == epoch
	used  int            // keys with mark >= epoch (live + tombstones)
	shift uint           // 64 - log2(len(slots))
}

func (s *LineSet) init() {
	s.slots = make([]setSlot, minSlots)
	s.epoch = 2
	s.shift = uint(64 - bits.TrailingZeros(minSlots))
}

// Len reports the number of live keys.
func (s *LineSet) Len() int { return s.live }

// Clear empties the set in O(1) by advancing the epoch. Backing storage is
// retained; the insertion-order journal is truncated in place.
func (s *LineSet) Clear() {
	s.epoch += 2
	s.live = 0
	s.used = 0
	s.order = s.order[:0]
}

// Has reports whether k is in the set.
func (s *LineSet) Has(k mem.LineAddr) bool {
	if s.live == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	for i := hash64(uint64(k), s.shift); ; i = (i + 1) & mask {
		sl := &s.slots[i]
		if sl.mark < s.epoch {
			return false
		}
		if sl.key == k {
			return sl.mark == s.epoch
		}
	}
}

// Add inserts k and reports whether it was absent. Re-adding a key removed
// earlier in the same epoch revives its original slot.
func (s *LineSet) Add(k mem.LineAddr) bool {
	if s.slots == nil {
		s.init()
	}
	mask := uint64(len(s.slots) - 1)
	i := hash64(uint64(k), s.shift)
	for ; ; i = (i + 1) & mask {
		sl := &s.slots[i]
		if sl.mark < s.epoch {
			break // empty or stale: insertion point
		}
		if sl.key == k {
			if sl.mark == s.epoch {
				return false // already present
			}
			// Tombstone of k: revive. Already journaled this epoch.
			sl.mark = s.epoch
			s.live++
			return true
		}
	}
	s.slots[i] = setSlot{key: k, mark: s.epoch}
	s.live++
	s.used++
	s.order = append(s.order, k)
	if s.used*4 >= len(s.slots)*3 {
		s.grow()
	}
	return true
}

// Remove deletes k, reporting whether it was present. The slot becomes a
// tombstone for the rest of the epoch so probe chains stay intact.
func (s *LineSet) Remove(k mem.LineAddr) bool {
	if s.live == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	for i := hash64(uint64(k), s.shift); ; i = (i + 1) & mask {
		sl := &s.slots[i]
		if sl.mark < s.epoch {
			return false
		}
		if sl.key == k {
			if sl.mark != s.epoch {
				return false
			}
			sl.mark = s.epoch + 1
			s.live--
			return true
		}
	}
}

// ForEach visits live keys in first-insertion order.
func (s *LineSet) ForEach(f func(mem.LineAddr)) {
	if s.live == s.used {
		for _, k := range s.order {
			f(k)
		}
		return
	}
	for _, k := range s.order {
		if s.Has(k) {
			f(k)
		}
	}
}

// Lines returns the live keys in first-insertion order. When nothing has
// been removed this epoch the returned slice aliases internal storage and
// is valid only until the next Clear/Add — callers must not retain it.
func (s *LineSet) Lines() []mem.LineAddr {
	if s.live == s.used {
		return s.order
	}
	out := make([]mem.LineAddr, 0, s.live)
	for _, k := range s.order {
		if s.Has(k) {
			out = append(out, k)
		}
	}
	return out
}

// grow doubles the table, re-probing every current-epoch slot (tombstones
// included, so the no-duplicate journal invariant survives the rehash).
func (s *LineSet) grow() {
	old := s.slots
	n := len(old) * 2
	s.slots = make([]setSlot, n)
	s.shift = uint(64 - bits.Len(uint(n-1)))
	mask := uint64(n - 1)
	for _, sl := range old {
		if sl.mark < s.epoch {
			continue
		}
		i := hash64(uint64(sl.key), s.shift)
		for s.slots[i].mark >= s.epoch {
			i = (i + 1) & mask
		}
		s.slots[i] = sl
	}
}

// Map is an epoch-cleared open-addressed map from a uint64-shaped address
// key to a uint64 value. It has no per-key delete (none of its consumers
// delete); Clear is the only removal. The zero value is ready to use.
type Map[K ~uint64] struct {
	keys  []K
	vals  []uint64
	marks []uint64
	epoch uint64
	live  int
	shift uint
}

// LineMap maps cacheline addresses to values.
type LineMap = Map[mem.LineAddr]

// AddrMap maps word addresses to values (the store-queue forwarding table).
type AddrMap = Map[mem.Addr]

func (m *Map[K]) init() {
	m.keys = make([]K, minSlots)
	m.vals = make([]uint64, minSlots)
	m.marks = make([]uint64, minSlots)
	m.epoch = 1
	m.shift = uint(64 - bits.TrailingZeros(minSlots))
}

// Len reports the number of live entries.
func (m *Map[K]) Len() int { return m.live }

// Clear empties the map in O(1) by advancing the epoch.
func (m *Map[K]) Clear() {
	m.epoch++
	m.live = 0
}

// Get returns the value for k and whether it is present.
func (m *Map[K]) Get(k K) (uint64, bool) {
	if m.live == 0 {
		return 0, false
	}
	mask := uint64(len(m.keys) - 1)
	for i := hash64(uint64(k), m.shift); ; i = (i + 1) & mask {
		if m.marks[i] != m.epoch {
			return 0, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

// Set inserts or overwrites the value for k.
func (m *Map[K]) Set(k K, v uint64) {
	if m.keys == nil {
		m.init()
	}
	mask := uint64(len(m.keys) - 1)
	i := hash64(uint64(k), m.shift)
	for ; m.marks[i] == m.epoch; i = (i + 1) & mask {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
	}
	m.keys[i] = k
	m.vals[i] = v
	m.marks[i] = m.epoch
	m.live++
	if m.live*4 >= len(m.keys)*3 {
		m.grow()
	}
}

func (m *Map[K]) grow() {
	oldKeys, oldVals, oldMarks := m.keys, m.vals, m.marks
	n := len(oldKeys) * 2
	m.keys = make([]K, n)
	m.vals = make([]uint64, n)
	m.marks = make([]uint64, n)
	m.shift = uint(64 - bits.Len(uint(n-1)))
	mask := uint64(n - 1)
	for j, mk := range oldMarks {
		if mk != m.epoch {
			continue
		}
		k := oldKeys[j]
		i := hash64(uint64(k), m.shift)
		for m.marks[i] == m.epoch {
			i = (i + 1) & mask
		}
		m.keys[i] = k
		m.vals[i] = oldVals[j]
		m.marks[i] = m.epoch
	}
}
