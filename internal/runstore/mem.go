package runstore

import "sync"

// Mem is the in-memory Backend: a plain locked map with no persistence. It
// backs tests and ephemeral farm servers (a farm whose whole value is the
// in-flight dedup, not the durable cache), and doubles as the reference
// implementation for remote backends — anything that behaves like Mem
// behaves like the harness expects.
type Mem struct {
	mu sync.Mutex
	m  map[string][]byte
}

var _ Backend = (*Mem)(nil)

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{m: make(map[string][]byte)}
}

// Get returns the payload stored under key.
func (s *Mem) Get(key string) (payload []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[key]
	return p, ok, nil
}

// Put stores payload under key, overwriting any previous record.
func (s *Mem) Put(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), payload...)
	return nil
}

// Contains reports whether key has a record.
func (s *Mem) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	return ok
}

// Len returns the number of stored records.
func (s *Mem) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
