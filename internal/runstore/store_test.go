package runstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestSpecCanonicalGolden(t *testing.T) {
	// The canonical encoding is the hashed content: any drift (reordering,
	// renaming, formatting) silently orphans every cached record, so the
	// exact bytes are pinned here. If this test fails you changed the
	// encoding — bump SpecVersion and update the golden strings.
	spec := RunSpec{
		Benchmark:    "hashmap",
		Config:       "C",
		Cores:        32,
		OpsPerThread: 120,
		RetryLimit:   4,
		Seed:         1,
		MaxTicks:     400_000_000,
		Salt:         "stats-digest/v1",
	}
	want := `runspec/v1
salt=stats-digest/v1
benchmark=hashmap
config=C
cores=32
ops_per_thread=120
retry_limit=4
seed=1
max_ticks=400000000
sle=false
oracle=false
mesh=false
disable_discovery_continuation=false
scl_lock_all_reads=false
ert_entries=0
alt_entries=0
crt_entries=0
crt_ways=0
watchdog=
fault_plan=
`
	if got := spec.Canonical(); got != want {
		t.Fatalf("canonical encoding drifted (bump SpecVersion!):\ngot:\n%s\nwant:\n%s", got, want)
	}
	const wantKey = "97052b078269df342b86310f7a3c4d30450c962f91b9e7b4f35e01d51dc8ba07"
	if got := spec.Key(); got != wantKey {
		t.Fatalf("cache key drifted (bump SpecVersion!):\ngot  %s\nwant %s", got, wantKey)
	}
}

func TestSpecKeySensitivity(t *testing.T) {
	base := RunSpec{Benchmark: "hashmap", Config: "C", Cores: 8, Seed: 1, Salt: "s"}
	variants := map[string]RunSpec{}
	v := base
	v.Benchmark = "bst"
	variants["benchmark"] = v
	v = base
	v.Config = "W"
	variants["config"] = v
	v = base
	v.Seed = 2
	variants["seed"] = v
	v = base
	v.Salt = "s2"
	variants["salt"] = v
	v = base
	v.FaultPlan = "nack=0.1"
	variants["fault_plan"] = v
	v = base
	v.Oracle = true
	variants["oracle"] = v

	baseKey := base.Key()
	seen := map[string]string{baseKey: "base"}
	for name, spec := range variants {
		k := spec.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := RunSpec{Benchmark: "bst", Seed: 7}.Key()
	if _, ok, err := st.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	payload := []byte(`{"cycles":42}`)
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(key)
	if err != nil || !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	if !st.Contains(key) {
		t.Fatal("Contains = false after Put")
	}
	hits, misses := st.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("counters = %d hits / %d misses, want 1/1", hits, misses)
	}

	// The record lives at the sharded path, and nothing else (no leftover
	// temp files from the atomic write protocol).
	p := filepath.Join(st.Dir(), key[:2], key+".json")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("record not at sharded path: %v", err)
	}
	entries, err := os.ReadDir(filepath.Join(st.Dir(), key[:2]))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := RunSpec{Benchmark: "queue"}.Key()
	if err := st.Put(key, []byte(`"persisted"`)); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory (a resumed sweep in a new
	// process) serves the record from disk.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := st2.Get(key)
	if err != nil || !ok || string(got) != `"persisted"` {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	st, err := OpenLimited(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = RunSpec{Benchmark: "b", Seed: uint64(i)}.Key()
		if err := st.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.MemLen(); got != 2 {
		t.Fatalf("MemLen = %d, want 2", got)
	}
	// The evicted record is still served (from disk) and re-promoted.
	got, ok, err := st.Get(keys[0])
	if err != nil || !ok || string(got) != `{"i":0}` {
		t.Fatalf("evicted Get = %q, %v, %v", got, ok, err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st, err := OpenLimited(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := RunSpec{Benchmark: "b", Seed: uint64(i % 16)}.Key()
				payload := []byte(fmt.Sprintf(`{"seed":%d}`, i%16))
				if err := st.Put(key, payload); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := st.Get(key)
				if err != nil || !ok || string(got) != string(payload) {
					t.Errorf("worker %d: Get = %q, %v, %v", w, got, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestStoreCorruptRecordQuarantined(t *testing.T) {
	// Truncated and invalid-JSON records are misses, not errors: the bad
	// file is renamed to <key>.corrupt beside its shard so a crashed (or
	// bit-flipped) cache never wedges a lookup, and the rerun's Put lays
	// down a fresh record at the original path.
	cases := map[string][]byte{
		"truncated": []byte(`{"spec":"runspec/v1","stats":{"cyc`),
		"invalid":   []byte(`not json at all`),
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			// LRU disabled: the memory front only ever holds validated
			// payloads, so the disk path is the one under test.
			st, err := OpenLimited(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			key := RunSpec{Benchmark: "hashmap", Seed: 3}.Key()
			if err := st.Put(key, []byte(`{"ok":true}`)); err != nil {
				t.Fatal(err)
			}
			recPath := filepath.Join(dir, key[:2], key+".json")
			if err := os.WriteFile(recPath, bad, 0o644); err != nil {
				t.Fatal(err)
			}

			got, ok, err := st.Get(key)
			if err != nil || ok || got != nil {
				t.Fatalf("corrupt Get = %q, %v, %v; want miss without error", got, ok, err)
			}
			if _, err := os.Stat(recPath); !os.IsNotExist(err) {
				t.Fatalf("corrupt record still at lookup path: %v", err)
			}
			quarantined := filepath.Join(dir, key[:2], key+".corrupt")
			moved, err := os.ReadFile(quarantined)
			if err != nil {
				t.Fatalf("quarantined file: %v", err)
			}
			if string(moved) != string(bad) {
				t.Fatalf("quarantined bytes = %q, want %q", moved, bad)
			}
			if got := st.CorruptCount(); got != 1 {
				t.Fatalf("CorruptCount = %d, want 1", got)
			}

			// The next Put repairs the slot; the corpse stays for auditing.
			if err := st.Put(key, []byte(`{"ok":true}`)); err != nil {
				t.Fatal(err)
			}
			if payload, ok, err := st.Get(key); err != nil || !ok || string(payload) != `{"ok":true}` {
				t.Fatalf("repaired Get = %q, %v, %v", payload, ok, err)
			}
			if _, err := os.Stat(quarantined); err != nil {
				t.Fatalf("quarantined corpse removed by repair: %v", err)
			}
		})
	}
}

func TestMemBackend(t *testing.T) {
	var be Backend = NewMem()
	key := RunSpec{Benchmark: "stack", Seed: 9}.Key()
	if _, ok, err := be.Get(key); ok || err != nil {
		t.Fatalf("empty Get = %v, %v", ok, err)
	}
	if be.Contains(key) {
		t.Fatal("Contains on empty backend")
	}
	payload := []byte(`{"cycles":7}`)
	if err := be.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // Put must have copied
	got, ok, err := be.Get(key)
	if err != nil || !ok || string(got) != `{"cycles":7}` {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	if !be.Contains(key) {
		t.Fatal("Contains = false after Put")
	}
}

func TestStoreResolve(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		"aabbccddee00112233",
		"aab0000000aaaaaaaa", // shares "aab" 2-char shard, diverges at char 3
		"f100000000bbbbbbbb",
	}
	for _, k := range keys {
		if err := st.Put(k, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}

	// Exact key resolves to itself.
	if got, err := st.Resolve(keys[0]); err != nil || got != keys[0] {
		t.Fatalf("Resolve(full) = %q, %v", got, err)
	}
	// Unambiguous multi-char prefix within a shared shard.
	if got, err := st.Resolve("aabb"); err != nil || got != keys[0] {
		t.Fatalf("Resolve(aabb) = %q, %v", got, err)
	}
	// Single-character prefix scans shard directories.
	if got, err := st.Resolve("f"); err != nil || got != keys[2] {
		t.Fatalf("Resolve(f) = %q, %v", got, err)
	}
	// Ambiguous prefix: two keys share "aab".
	if _, err := st.Resolve("aab"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("Resolve(aab) err = %v, want ambiguity", err)
	}
	if _, err := st.Resolve("a"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("Resolve(a) err = %v, want ambiguity", err)
	}
	// No match and empty prefix are errors.
	if _, err := st.Resolve("09"); err == nil || !strings.Contains(err.Error(), "no record") {
		t.Fatalf("Resolve(09) err = %v, want no-match", err)
	}
	if _, err := st.Resolve(""); err == nil {
		t.Fatal("Resolve(\"\") succeeded, want error")
	}
}
