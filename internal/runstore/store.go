package runstore

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Backend is the pluggable result-store interface the harness and the sweep
// farm memoize runs through: opaque JSON payloads keyed by RunSpec.Key().
// *Store is the local-directory implementation and Mem the in-memory one
// (tests, ephemeral farms); S3/redis-style remote stores can slot in without
// touching the harness. Implementations must be safe for concurrent use —
// they sit behind the matrix worker pool and the farm's worker fleet.
type Backend interface {
	// Get returns the payload cached under key, or ok=false on a miss.
	Get(key string) (payload []byte, ok bool, err error)
	// Put persists payload under key; re-putting an existing key overwrites
	// it (identical specs produce identical payloads, so last-writer-wins is
	// harmless).
	Put(key string, payload []byte) error
	// Contains reports whether a record for key exists without reading it.
	Contains(key string) bool
}

var _ Backend = (*Store)(nil)

// DefaultMemEntries bounds the in-memory LRU front of a store opened with
// Open. At ~1–2 KiB per cached run summary this is a few MiB of hot records —
// enough to keep a full default matrix (19 benchmarks x 5 configs x 4 retry
// limits x seeds) resident across a sweep without touching disk twice.
const DefaultMemEntries = 4096

// Store is a concurrency-safe, content-addressed result cache: opaque JSON
// payloads keyed by RunSpec.Key(), persisted as individual records under a
// two-level sharded directory (key[:2]/key.json) with an in-memory LRU front.
//
// Writes are crash-safe: each record is written to a temp file in its shard
// directory and atomically renamed into place, so a sweep killed mid-write
// leaves either the complete record or nothing — never a torn file. A record
// that fails to decode on the harness side is treated as a miss and
// recomputed, so even external corruption only costs time, not correctness.
//
// All methods are safe for concurrent use by the matrix worker pool.
type Store struct {
	dir        string
	maxEntries int

	mu  sync.Mutex
	lru *list.List // front = most recently used
	idx map[string]*list.Element

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
}

type lruEntry struct {
	key     string
	payload []byte
}

// Open creates (if necessary) and opens the store rooted at dir with the
// default LRU capacity.
func Open(dir string) (*Store, error) {
	return OpenLimited(dir, DefaultMemEntries)
}

// OpenLimited opens the store with an explicit in-memory LRU bound
// (maxEntries <= 0 disables the memory front entirely; every Get reads disk).
func OpenLimited(dir string, maxEntries int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	return &Store{
		dir:        dir,
		maxEntries: maxEntries,
		lru:        list.New(),
		idx:        make(map[string]*list.Element),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path shards records by the first two hex characters of the key, keeping
// individual directories small even for six-figure sweeps.
func (s *Store) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key+".json")
}

// Get returns the payload cached under key, or ok=false when the store holds
// no such record. A hit from disk is promoted into the LRU front. I/O errors
// other than non-existence are returned (and counted as misses): a permission
// problem should surface, not silently force recomputation forever.
//
// A record that is not valid JSON — truncated by a crash that outran the
// temp+rename protocol (a torn shard copied from another host, a disk-level
// corruption) — is quarantined to <key>.corrupt in its shard directory and
// reported as a plain miss: the caller recomputes and the next Put lays down
// a fresh record, while the corpse stays inspectable beside it.
func (s *Store) Get(key string) (payload []byte, ok bool, err error) {
	s.mu.Lock()
	if el, found := s.idx[key]; found {
		s.lru.MoveToFront(el)
		p := el.Value.(*lruEntry).payload
		s.mu.Unlock()
		s.hits.Add(1)
		return p, true, nil
	}
	s.mu.Unlock()

	data, rerr := os.ReadFile(s.path(key))
	if rerr != nil {
		s.misses.Add(1)
		if os.IsNotExist(rerr) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("runstore: read %s: %w", key, rerr)
	}
	if !json.Valid(data) {
		s.misses.Add(1)
		s.quarantineCorrupt(key)
		return nil, false, nil
	}
	s.remember(key, data)
	s.hits.Add(1)
	return data, true, nil
}

// quarantineCorrupt moves the undecodable record of key out of the lookup
// path (best effort; a failed rename still leaves Get reporting a miss, the
// rerun's Put overwrites in place).
func (s *Store) quarantineCorrupt(key string) {
	src := s.path(key)
	dst := src[:len(src)-len(".json")] + ".corrupt"
	if err := os.Rename(src, dst); err == nil {
		s.corrupt.Add(1)
	}
}

// Contains reports whether the store holds a record for key without reading
// or promoting it (used for resume planning).
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	_, found := s.idx[key]
	s.mu.Unlock()
	if found {
		return true
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Put persists payload under key: temp file + atomic rename, then the LRU
// front. Re-putting an existing key overwrites it (last writer wins, which is
// harmless: identical specs produce identical payloads).
func (s *Store) Put(key string, payload []byte) error {
	dst := s.path(key)
	shardDir := filepath.Dir(dst)
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmp, err := os.CreateTemp(shardDir, "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runstore: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runstore: close %s: %w", key, err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runstore: commit %s: %w", key, err)
	}
	s.remember(key, payload)
	return nil
}

// remember inserts (key, payload) into the LRU front, evicting the least
// recently used entries past the capacity bound.
func (s *Store) remember(key string, payload []byte) {
	if s.maxEntries <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, found := s.idx[key]; found {
		el.Value.(*lruEntry).payload = payload
		s.lru.MoveToFront(el)
		return
	}
	s.idx[key] = s.lru.PushFront(&lruEntry{key: key, payload: payload})
	for s.lru.Len() > s.maxEntries {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.idx, back.Value.(*lruEntry).key)
	}
}

// Resolve expands a (possibly abbreviated) hex key prefix to the unique
// stored key that starts with it, scanning the sharded directory layout.
// It errors when no record matches or when the prefix is ambiguous —
// offline tools (clearprof diff) use it to accept short keys the way git
// accepts short object ids. An empty prefix is rejected.
func (s *Store) Resolve(prefix string) (string, error) {
	if prefix == "" {
		return "", fmt.Errorf("runstore: empty key prefix")
	}
	var shards []string
	if len(prefix) >= 2 {
		shards = []string{prefix[:2]}
	} else {
		des, err := os.ReadDir(s.dir)
		if err != nil {
			return "", fmt.Errorf("runstore: %w", err)
		}
		for _, de := range des {
			if de.IsDir() && len(de.Name()) == 2 && de.Name()[:1] == prefix {
				shards = append(shards, de.Name())
			}
		}
	}
	var match string
	for _, shard := range shards {
		des, err := os.ReadDir(filepath.Join(s.dir, shard))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return "", fmt.Errorf("runstore: %w", err)
		}
		for _, de := range des {
			name := de.Name()
			if len(name) <= len(".json") || name[len(name)-len(".json"):] != ".json" {
				continue
			}
			key := name[:len(name)-len(".json")]
			if len(key) < len(prefix) || key[:len(prefix)] != prefix {
				continue
			}
			if match != "" && match != key {
				return "", fmt.Errorf("runstore: key prefix %q is ambiguous (%s, %s, ...)", prefix, match, key)
			}
			match = key
		}
	}
	if match == "" {
		return "", fmt.Errorf("runstore: no record matches key prefix %q", prefix)
	}
	return match, nil
}

// MemLen returns the number of records currently held by the LRU front.
func (s *Store) MemLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Counters returns the store's cumulative hit/miss counts (process lifetime).
func (s *Store) Counters() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// CorruptCount returns how many undecodable records Get quarantined to
// <key>.corrupt (process lifetime).
func (s *Store) CorruptCount() uint64 { return s.corrupt.Load() }
