// Package runstore is the content-addressed, on-disk run cache behind
// resumable sweeps: PR 1's determinism guarantee makes every simulation run a
// pure function of its parameters (bit-identical statistics for identical
// RunParams), so a run's summary can be memoized under a hash of a canonical,
// versioned serialization of those parameters.
//
// The package is deliberately harness-agnostic: it stores opaque JSON
// payloads keyed by RunSpec, a flat mirror of the digest-affecting run
// parameters. The harness converts RunParams to a RunSpec (and back from the
// cached payload); nothing here imports the simulator, so the store can also
// memoize future workloads (fuzz corpora, chaos campaigns) without import
// cycles.
//
// Key derivation: Key = SHA-256(Canonical()), where Canonical() is a fixed,
// line-oriented key=value rendering that starts with the spec version and a
// caller-supplied code-version salt. Any change to the encoding, the salt, or
// a field value produces a different key — invalidation is by construction,
// never by mutation. A golden test in internal/harness pins the exact
// encoding so accidental drift fails loudly.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// SpecVersion identifies the canonical encoding of RunSpec and the layout of
// the cached payloads. Bump it whenever either changes — for example when a
// digest-affecting field is added to harness.RunParams — so every previously
// cached record is invalidated (its key can no longer be derived) instead of
// silently replayed with stale semantics.
const SpecVersion = 1

// RunSpec is the canonical, versioned serialization of one simulation run's
// digest-affecting parameters. It intentionally mirrors harness.RunParams
// field-for-field for everything that changes simulated behaviour, and
// excludes everything that is host-side or digest-transparent-by-contract
// (trace writers, telemetry collectors, wall-clock deadlines).
type RunSpec struct {
	Benchmark    string
	Config       string
	Cores        int
	OpsPerThread int
	RetryLimit   int
	Seed         uint64
	MaxTicks     uint64
	SLE          bool
	Oracle       bool
	Mesh         bool

	DisableDiscoveryContinuation bool
	SCLLockAllReads              bool

	ERTEntries int
	ALTEntries int
	CRTEntries int
	CRTWays    int

	// Watchdog is the canonical rendering of the attached watchdog
	// configuration ("" = detached). The watchdog is digest-transparent but
	// decides whether a run errors, and its report is part of the cached
	// payload, so it keys the record.
	Watchdog string
	// FaultPlan is the canonical rendering of the attached fault plan
	// ("" = none). Fault injection perturbs the simulation, so two runs
	// under different plans are different cache entries.
	FaultPlan string

	// Policy is the canonical rendering of a non-default retry policy
	// ("" = the paper-exact default). The default is elided from the
	// canonical encoding entirely — see Canonical — so every record cached
	// before policies existed keeps its key.
	Policy string

	// Salt is the code-version salt: the harness derives it from the
	// statistics digest schema version, so bumping that schema (any
	// digest-affecting simulator change) orphans every cached record.
	Salt string
}

// Canonical renders the spec as the exact byte sequence that is hashed into
// the cache key: a versioned header followed by one key=value line per field
// in declaration order. The format is append-only within a spec version —
// any reordering, rename, or addition requires bumping SpecVersion.
func (s RunSpec) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runspec/v%d\n", SpecVersion)
	fmt.Fprintf(&b, "salt=%s\n", s.Salt)
	fmt.Fprintf(&b, "benchmark=%s\n", s.Benchmark)
	fmt.Fprintf(&b, "config=%s\n", s.Config)
	fmt.Fprintf(&b, "cores=%d\n", s.Cores)
	fmt.Fprintf(&b, "ops_per_thread=%d\n", s.OpsPerThread)
	fmt.Fprintf(&b, "retry_limit=%d\n", s.RetryLimit)
	fmt.Fprintf(&b, "seed=%d\n", s.Seed)
	fmt.Fprintf(&b, "max_ticks=%d\n", s.MaxTicks)
	fmt.Fprintf(&b, "sle=%t\n", s.SLE)
	fmt.Fprintf(&b, "oracle=%t\n", s.Oracle)
	fmt.Fprintf(&b, "mesh=%t\n", s.Mesh)
	fmt.Fprintf(&b, "disable_discovery_continuation=%t\n", s.DisableDiscoveryContinuation)
	fmt.Fprintf(&b, "scl_lock_all_reads=%t\n", s.SCLLockAllReads)
	fmt.Fprintf(&b, "ert_entries=%d\n", s.ERTEntries)
	fmt.Fprintf(&b, "alt_entries=%d\n", s.ALTEntries)
	fmt.Fprintf(&b, "crt_entries=%d\n", s.CRTEntries)
	fmt.Fprintf(&b, "crt_ways=%d\n", s.CRTWays)
	fmt.Fprintf(&b, "watchdog=%s\n", s.Watchdog)
	fmt.Fprintf(&b, "fault_plan=%s\n", s.FaultPlan)
	if s.Policy != "" {
		// Default-elision: the policy line appears only for non-default
		// policies. The default policy is bit-identical to the pre-policy
		// simulator, so eliding it preserves every previously derived key —
		// the one sanctioned exception to "append-only within a version".
		fmt.Fprintf(&b, "policy=%s\n", s.Policy)
	}
	return b.String()
}

// Key returns the content address of the spec: the lowercase hex SHA-256 of
// its canonical encoding.
func (s RunSpec) Key() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(sum[:])
}
