// Package cache models set-associative cache geometry. The simulator uses it
// for two purposes: classifying accesses as local hits or misses (timing),
// and answering CLEAR's discovery question "can this set of cachelines be
// held (locked) in the cache simultaneously?" — which is a per-set
// associativity check (§4.1 assessment 2 of the paper).
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Geometry describes a set-associative cache.
type Geometry struct {
	SizeBytes int
	Ways      int
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int {
	sets := g.SizeBytes / (mem.LineSize * g.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: geometry %+v yields invalid set count %d", g, sets))
	}
	return sets
}

// Icelake-like private L1D from Table 2 of the paper: 48KiB, 12-way.
var L1DGeometry = Geometry{SizeBytes: 48 * 1024, Ways: 12}

// set holds the resident lines of one cache set in LRU order: index 0 is the
// most recently used.
type set struct {
	lines []mem.LineAddr
}

// Cache is a tag-only set-associative cache with LRU replacement. It tracks
// residency, not data (data lives in mem.Memory); pinned lines (locked
// cachelines) are never chosen as victims.
type Cache struct {
	geom   Geometry
	sets   []set
	nsets  int
	pinned map[mem.LineAddr]bool

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New returns an empty cache with the given geometry.
func New(g Geometry) *Cache {
	n := g.Sets()
	return &Cache{
		geom:   g,
		sets:   make([]set, n),
		nsets:  n,
		pinned: make(map[mem.LineAddr]bool),
	}
}

// Geometry returns the cache's geometry.
func (c *Cache) Geometry() Geometry { return c.geom }

// Contains reports whether line is resident, without touching LRU state.
func (c *Cache) Contains(line mem.LineAddr) bool {
	s := &c.sets[line.SetIndex(c.nsets)]
	for _, l := range s.lines {
		if l == line {
			return true
		}
	}
	return false
}

// Access touches line, updating LRU order, and reports whether it hit.
func (c *Cache) Access(line mem.LineAddr) bool {
	s := &c.sets[line.SetIndex(c.nsets)]
	for i, l := range s.lines {
		if l == line {
			// Move to front.
			copy(s.lines[1:i+1], s.lines[:i])
			s.lines[0] = line
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert makes line resident, evicting the LRU non-pinned way if the set is
// full. It returns the evicted line and whether an eviction happened. If
// every way of the set is pinned, Insert fails with ok=false and evicted
// is unused; the caller (the CLEAR lock controller) treats that as a
// must-not-happen because discovery verified lockability.
func (c *Cache) Insert(line mem.LineAddr) (evicted mem.LineAddr, didEvict bool, ok bool) {
	s := &c.sets[line.SetIndex(c.nsets)]
	for i, l := range s.lines {
		if l == line {
			copy(s.lines[1:i+1], s.lines[:i])
			s.lines[0] = line
			return 0, false, true
		}
	}
	if len(s.lines) < c.geom.Ways {
		s.lines = append(s.lines, 0)
		copy(s.lines[1:], s.lines)
		s.lines[0] = line
		return 0, false, true
	}
	// Evict the least recently used non-pinned way.
	for i := len(s.lines) - 1; i >= 0; i-- {
		if !c.pinned[s.lines[i]] {
			evicted = s.lines[i]
			copy(s.lines[i:], s.lines[i+1:])
			s.lines = s.lines[:len(s.lines)-1]
			s.lines = append(s.lines, 0)
			copy(s.lines[1:], s.lines)
			s.lines[0] = line
			c.Evictions++
			return evicted, true, true
		}
	}
	return 0, false, false
}

// Remove drops line from the cache (e.g. on invalidation). Removing a
// non-resident line is a no-op.
func (c *Cache) Remove(line mem.LineAddr) {
	s := &c.sets[line.SetIndex(c.nsets)]
	for i, l := range s.lines {
		if l == line {
			s.lines = append(s.lines[:i], s.lines[i+1:]...)
			delete(c.pinned, line)
			return
		}
	}
}

// Pin marks a resident line as non-evictable (cacheline locking). Pinning a
// non-resident line panics: the lock controller must insert first.
func (c *Cache) Pin(line mem.LineAddr) {
	if !c.Contains(line) {
		panic(fmt.Sprintf("cache: pinning non-resident line %s", line))
	}
	c.pinned[line] = true
}

// Unpin clears the pin; the line stays resident.
func (c *Cache) Unpin(line mem.LineAddr) { delete(c.pinned, line) }

// Pinned reports whether the line is currently pinned.
func (c *Cache) Pinned(line mem.LineAddr) bool { return c.pinned[line] }

// PinnedCount returns the number of pinned lines.
func (c *Cache) PinnedCount() int { return len(c.pinned) }

// Reset empties the cache and clears pins but keeps statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i].lines = c.sets[i].lines[:0]
	}
	c.pinned = make(map[mem.LineAddr]bool)
}

// FitsSimultaneously reports whether all the given (distinct) lines can be
// resident at once: no set may be claimed by more than Ways of them. This is
// CLEAR discovery's lockability assessment.
func FitsSimultaneously(g Geometry, lines []mem.LineAddr) bool {
	nsets := g.Sets()
	perSet := make(map[int]int)
	seen := make(map[mem.LineAddr]bool, len(lines))
	for _, l := range lines {
		if seen[l] {
			continue
		}
		seen[l] = true
		idx := l.SetIndex(nsets)
		perSet[idx]++
		if perSet[idx] > g.Ways {
			return false
		}
	}
	return true
}
