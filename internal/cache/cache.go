// Package cache models set-associative cache geometry. The simulator uses it
// for two purposes: classifying accesses as local hits or misses (timing),
// and answering CLEAR's discovery question "can this set of cachelines be
// held (locked) in the cache simultaneously?" — which is a per-set
// associativity check (§4.1 assessment 2 of the paper).
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Geometry describes a set-associative cache.
type Geometry struct {
	SizeBytes int
	Ways      int
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int {
	sets := g.SizeBytes / (mem.LineSize * g.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: geometry %+v yields invalid set count %d", g, sets))
	}
	return sets
}

// Icelake-like private L1D from Table 2 of the paper: 48KiB, 12-way.
var L1DGeometry = Geometry{SizeBytes: 48 * 1024, Ways: 12}

// Cache is a tag-only set-associative cache with LRU replacement. It tracks
// residency, not data (data lives in mem.Memory); pinned lines (locked
// cachelines) are never chosen as victims.
//
// Residency is struct-of-arrays: one flat tag array holds all sets, so a
// cache is two allocations regardless of geometry and a set's ways share a
// cacheline of the host. Set s occupies lines[s*Ways : s*Ways+count[s]] in
// LRU order (index 0 is the most recently used).
type Cache struct {
	geom  Geometry
	nsets int
	ways  int
	lines []mem.LineAddr
	count []uint16
	// pinned lists the locked-resident lines; it is bounded by the ALT
	// capacity (32 by default), so linear scans beat any hashed structure.
	pinned []mem.LineAddr

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New returns an empty cache with the given geometry.
func New(g Geometry) *Cache {
	n := g.Sets()
	return &Cache{
		geom:  g,
		nsets: n,
		ways:  g.Ways,
		lines: make([]mem.LineAddr, n*g.Ways),
		count: make([]uint16, n),
	}
}

// Geometry returns the cache's geometry.
func (c *Cache) Geometry() Geometry { return c.geom }

// setSeg returns the set index and the live segment of line's set.
func (c *Cache) setSeg(line mem.LineAddr) (int, []mem.LineAddr) {
	si := line.SetIndex(c.nsets)
	base := si * c.ways
	return si, c.lines[base : base+int(c.count[si])]
}

// Contains reports whether line is resident, without touching LRU state.
func (c *Cache) Contains(line mem.LineAddr) bool {
	_, seg := c.setSeg(line)
	for _, l := range seg {
		if l == line {
			return true
		}
	}
	return false
}

// Access touches line, updating LRU order, and reports whether it hit.
func (c *Cache) Access(line mem.LineAddr) bool {
	_, seg := c.setSeg(line)
	for i, l := range seg {
		if l == line {
			// Move to front.
			copy(seg[1:i+1], seg[:i])
			seg[0] = line
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert makes line resident, evicting the LRU non-pinned way if the set is
// full. It returns the evicted line and whether an eviction happened. If
// every way of the set is pinned, Insert fails with ok=false and evicted
// is unused; the caller (the CLEAR lock controller) treats that as a
// must-not-happen because discovery verified lockability.
func (c *Cache) Insert(line mem.LineAddr) (evicted mem.LineAddr, didEvict bool, ok bool) {
	si, seg := c.setSeg(line)
	cnt := len(seg)
	for i, l := range seg {
		if l == line {
			copy(seg[1:i+1], seg[:i])
			seg[0] = line
			return 0, false, true
		}
	}
	if cnt < c.ways {
		seg = seg[:cnt+1]
		copy(seg[1:], seg[:cnt])
		seg[0] = line
		c.count[si]++
		return 0, false, true
	}
	// Evict the least recently used non-pinned way.
	for i := cnt - 1; i >= 0; i-- {
		if !c.Pinned(seg[i]) {
			evicted = seg[i]
			copy(seg[i:cnt-1], seg[i+1:])
			copy(seg[1:], seg[:cnt-1])
			seg[0] = line
			c.Evictions++
			return evicted, true, true
		}
	}
	return 0, false, false
}

// Remove drops line from the cache (e.g. on invalidation). Removing a
// non-resident line is a no-op.
func (c *Cache) Remove(line mem.LineAddr) {
	si, seg := c.setSeg(line)
	for i, l := range seg {
		if l == line {
			copy(seg[i:], seg[i+1:])
			seg[len(seg)-1] = 0
			c.count[si]--
			c.unpin(line)
			return
		}
	}
}

// Pin marks a resident line as non-evictable (cacheline locking). Pinning a
// non-resident line panics: the lock controller must insert first.
func (c *Cache) Pin(line mem.LineAddr) {
	if !c.Contains(line) {
		panic(fmt.Sprintf("cache: pinning non-resident line %s", line))
	}
	if !c.Pinned(line) {
		c.pinned = append(c.pinned, line)
	}
}

// Unpin clears the pin; the line stays resident.
func (c *Cache) Unpin(line mem.LineAddr) { c.unpin(line) }

func (c *Cache) unpin(line mem.LineAddr) {
	for i, l := range c.pinned {
		if l == line {
			c.pinned = append(c.pinned[:i], c.pinned[i+1:]...)
			return
		}
	}
}

// Pinned reports whether the line is currently pinned.
func (c *Cache) Pinned(line mem.LineAddr) bool {
	for _, l := range c.pinned {
		if l == line {
			return true
		}
	}
	return false
}

// PinnedCount returns the number of pinned lines.
func (c *Cache) PinnedCount() int { return len(c.pinned) }

// Reset empties the cache and clears pins but keeps statistics.
func (c *Cache) Reset() {
	clear(c.count)
	c.pinned = c.pinned[:0]
}

// FitsSimultaneously reports whether all the given lines (duplicates
// tolerated) can be resident at once: no set may be claimed by more than
// Ways of them. This is CLEAR discovery's lockability assessment. It runs
// once per discovery abort, so it must not allocate: set occupancy lives in
// a stack array (private caches have few sets — the Table 2 L1 has 64) and
// duplicates are skipped with a pairwise scan over the short input (at most
// the ALT capacity, 32 by default).
func FitsSimultaneously(g Geometry, lines []mem.LineAddr) bool {
	nsets := g.Sets()
	if nsets <= 512 {
		var perSet [512]uint16
		for i, l := range lines {
			dup := false
			for _, p := range lines[:i] {
				if p == l {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			idx := l.SetIndex(nsets)
			perSet[idx]++
			if int(perSet[idx]) > g.Ways {
				return false
			}
		}
		return true
	}
	// Oversized-geometry fallback (ablation configs only).
	perSet := make(map[int]int)
	seen := make(map[mem.LineAddr]bool, len(lines))
	for _, l := range lines {
		if seen[l] {
			continue
		}
		seen[l] = true
		idx := l.SetIndex(nsets)
		perSet[idx]++
		if perSet[idx] > g.Ways {
			return false
		}
	}
	return true
}
