package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// tiny is a 4-set, 2-way geometry for focused tests.
var tiny = Geometry{SizeBytes: 4 * 2 * mem.LineSize, Ways: 2}

// lineInSet builds the i-th distinct line mapping to a given set.
func lineInSet(g Geometry, set, i int) mem.LineAddr {
	return mem.LineAddr(set + i*g.Sets())
}

func TestGeometrySets(t *testing.T) {
	if got := tiny.Sets(); got != 4 {
		t.Fatalf("Sets() = %d, want 4", got)
	}
	if got := L1DGeometry.Sets(); got != 64 {
		t.Fatalf("L1D Sets() = %d, want 64", got)
	}
}

func TestInsertAndHit(t *testing.T) {
	c := New(tiny)
	l := lineInSet(tiny, 1, 0)
	if c.Access(l) {
		t.Fatal("hit on empty cache")
	}
	if _, evicted, ok := c.Insert(l); evicted || !ok {
		t.Fatal("insert into empty set evicted")
	}
	if !c.Access(l) {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(tiny)
	a, b, d := lineInSet(tiny, 2, 0), lineInSet(tiny, 2, 1), lineInSet(tiny, 2, 2)
	c.Insert(a)
	c.Insert(b)
	c.Access(a) // a is now MRU; b is LRU
	ev, did, ok := c.Insert(d)
	if !ok || !did || ev != b {
		t.Fatalf("evicted %v (did=%v), want %v", ev, did, b)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestPinPreventsEviction(t *testing.T) {
	c := New(tiny)
	a, b, d := lineInSet(tiny, 0, 0), lineInSet(tiny, 0, 1), lineInSet(tiny, 0, 2)
	c.Insert(a)
	c.Insert(b)
	c.Pin(b) // b would be LRU after touching a
	c.Access(a)
	ev, did, ok := c.Insert(d)
	if !ok || !did || ev != a {
		t.Fatalf("evicted %v, want the unpinned %v", ev, a)
	}
	if !c.Contains(b) {
		t.Fatal("pinned line evicted")
	}
}

func TestInsertFailsWhenAllPinned(t *testing.T) {
	c := New(tiny)
	a, b, d := lineInSet(tiny, 3, 0), lineInSet(tiny, 3, 1), lineInSet(tiny, 3, 2)
	c.Insert(a)
	c.Insert(b)
	c.Pin(a)
	c.Pin(b)
	if _, _, ok := c.Insert(d); ok {
		t.Fatal("insert succeeded with every way pinned")
	}
	c.Unpin(a)
	if _, _, ok := c.Insert(d); !ok {
		t.Fatal("insert failed after unpin")
	}
}

func TestPinNonResidentPanics(t *testing.T) {
	c := New(tiny)
	defer func() {
		if recover() == nil {
			t.Error("pinning a non-resident line did not panic")
		}
	}()
	c.Pin(lineInSet(tiny, 0, 0))
}

func TestRemoveClearsPin(t *testing.T) {
	c := New(tiny)
	a := lineInSet(tiny, 1, 0)
	c.Insert(a)
	c.Pin(a)
	c.Remove(a)
	if c.Contains(a) || c.Pinned(a) || c.PinnedCount() != 0 {
		t.Fatal("remove left residue")
	}
}

func TestFitsSimultaneously(t *testing.T) {
	var lines []mem.LineAddr
	for i := 0; i < tiny.Ways; i++ {
		lines = append(lines, lineInSet(tiny, 1, i))
	}
	if !FitsSimultaneously(tiny, lines) {
		t.Fatal("exactly Ways lines per set should fit")
	}
	lines = append(lines, lineInSet(tiny, 1, tiny.Ways))
	if FitsSimultaneously(tiny, lines) {
		t.Fatal("Ways+1 lines in one set should not fit")
	}
	// Duplicates do not count twice.
	dup := []mem.LineAddr{lines[0], lines[0], lines[0]}
	if !FitsSimultaneously(tiny, dup) {
		t.Fatal("duplicate lines should collapse")
	}
}

// TestCacheInvariants: under random operation sequences, set occupancy never
// exceeds associativity and Contains matches Access behaviour.
func TestCacheInvariants(t *testing.T) {
	prop := func(ops []uint16) bool {
		c := New(tiny)
		resident := make(map[mem.LineAddr]bool)
		for _, op := range ops {
			l := mem.LineAddr(op % 64)
			switch op % 3 {
			case 0:
				if _, _, ok := c.Insert(l); ok {
					resident[l] = true
				}
			case 1:
				c.Remove(l)
				delete(resident, l)
			case 2:
				if c.Access(l) != c.Contains(l) {
					return false
				}
			}
		}
		// Residency per set bounded by ways.
		perSet := map[int]int{}
		for l := range resident {
			if c.Contains(l) {
				perSet[l.SetIndex(tiny.Sets())]++
			}
		}
		for _, n := range perSet {
			if n > tiny.Ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	c := New(tiny)
	a := lineInSet(tiny, 0, 0)
	c.Insert(a)
	c.Pin(a)
	hits := c.Hits
	c.Reset()
	if c.Contains(a) || c.PinnedCount() != 0 {
		t.Fatal("reset left contents")
	}
	if c.Hits != hits {
		t.Fatal("reset cleared statistics")
	}
}
