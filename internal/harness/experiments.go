package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/htm"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PaperAverages carries the headline numbers of the paper's evaluation, so
// every figure printer can show paper-vs-measured side by side (the
// EXPERIMENTS.md protocol).
var PaperAverages = struct {
	Fig1Ratio       float64
	Fig8NormTime    map[ConfigID]float64
	Fig9AbortsPerTx map[ConfigID]float64
	Fig10NormEnergy map[ConfigID]float64
	Fig13FirstRetry map[ConfigID]float64
	Fig13Fallback   map[ConfigID]float64
}{
	Fig1Ratio:       0.602,
	Fig8NormTime:    map[ConfigID]float64{ConfigB: 1.0, ConfigP: 0.873, ConfigC: 0.726, ConfigW: 0.650},
	Fig9AbortsPerTx: map[ConfigID]float64{ConfigB: 7.9, ConfigP: 6.6, ConfigC: 1.6, ConfigW: 2.3},
	Fig10NormEnergy: map[ConfigID]float64{ConfigB: 1.0, ConfigC: 0.736, ConfigW: 0.694},
	Fig13FirstRetry: map[ConfigID]float64{ConfigB: 0.354, ConfigP: 0.464, ConfigC: 0.642, ConfigW: 0.644},
	Fig13Fallback:   map[ConfigID]float64{ConfigB: 0.372, ConfigP: 0.274, ConfigC: 0.155, ConfigW: 0.154},
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// PrintTable1 reproduces Table 1: the static characterization of every
// benchmark's atomic regions by the isa analyzer.
func PrintTable1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: Characterization of ARs (static analysis)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\t#ARs\tImmutable\tLikely immutable\tMutable")
	for _, name := range workload.Names() {
		bench, err := workload.New(name)
		if err != nil {
			return err
		}
		var imm, likely, mut int
		ars := bench.ARs()
		for _, p := range ars {
			switch isa.Analyze(p).Mutability {
			case isa.Immutable:
				imm++
			case isa.LikelyImmutable:
				likely++
			default:
				mut++
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", name, len(ars), imm, likely, mut)
	}
	return tw.Flush()
}

// Table1Counts returns the (immutable, likely, mutable) classification for
// one benchmark; tests compare it against the paper's Table 1.
func Table1Counts(name string) (imm, likely, mut int, err error) {
	bench, err := workload.New(name)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, p := range bench.ARs() {
		switch isa.Analyze(p).Mutability {
		case isa.Immutable:
			imm++
		case isa.LikelyImmutable:
			likely++
		default:
			mut++
		}
	}
	return imm, likely, mut, nil
}

// PrintTable2 prints the simulated system configuration (Table 2).
func PrintTable2(w io.Writer, cores int) {
	fmt.Fprintln(w, "Table 2: Baseline system configuration")
	tw := newTab(w)
	fmt.Fprintf(tw, "Cores\t%d in-order-issue interpreters (1 IPC + memory latency)\n", cores)
	fmt.Fprintln(tw, "L1 data\t48KiB, 12-way, 1-cycle; read/write sets tracked at line granularity")
	fmt.Fprintln(tw, "L2\t10-cycle (folded into directory path)")
	fmt.Fprintln(tw, "L3/directory\t45-cycle shared directory, 4096 sets (lexicographic lock order)")
	fmt.Fprintln(tw, "Memory\t80-cycle")
	fmt.Fprintln(tw, "Store queue\t72 entries")
	fmt.Fprintln(tw, "HTM\trequester-wins / PowerTM; fallback lock subscribed at XBegin")
	fmt.Fprintln(tw, "CLEAR\tERT 16 entries, ALT 32 entries, CRT 64 entries 8-way; <1KiB/core")
	fmt.Fprintln(tw, "Retries\tbest of swept limits per application")
	tw.Flush()
}

// PrintFigure1 reports, per benchmark, the fraction of first-retry pairs
// with a small unchanged footprint, measured on the baseline configuration.
func (m *Matrix) PrintFigure1(w io.Writer) {
	fmt.Fprintln(w, "Figure 1: ARs that do not change their accessed cachelines on the first retry")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tratio")
	var vals []float64
	for _, b := range m.Opts.Benchmarks {
		cell := m.Cell(b, ConfigB)
		if cell == nil {
			continue
		}
		fmt.Fprintf(tw, "%s\t%.2f\n", b, cell.Fig1Ratio)
		vals = append(vals, cell.Fig1Ratio)
	}
	fmt.Fprintf(tw, "average\t%.3f\t(paper: %.3f)\n", mean(vals), PaperAverages.Fig1Ratio)
	tw.Flush()
}

// PrintFigure8 reports execution time normalized to requester-wins, plus the
// discovery-overhead share, per benchmark and as the geometric mean.
func (m *Matrix) PrintFigure8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: Normalized execution time (B=requester-wins, P=PowerTM, C=CLEAR/B, W=CLEAR/P)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tB\tP\tC\tW\tdiscovery C\tdiscovery W")
	norm := make(map[ConfigID][]float64)
	for _, b := range m.Opts.Benchmarks {
		if m.Cell(b, ConfigB) == nil {
			continue
		}
		row := make(map[ConfigID]float64)
		for _, c := range m.Opts.Configs {
			row[c] = m.Normalized(b, c, func(a *Aggregate) float64 { return a.Cycles })
			norm[c] = append(norm[c], row[c])
		}
		dC, dW := 0.0, 0.0
		if cell := m.Cell(b, ConfigC); cell != nil {
			dC = cell.DiscoveryOverhead
		}
		if cell := m.Cell(b, ConfigW); cell != nil {
			dW = cell.DiscoveryOverhead
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.2f%%\t%.2f%%\n",
			b, row[ConfigB], row[ConfigP], row[ConfigC], row[ConfigW], 100*dC, 100*dW)
	}
	fmt.Fprintf(tw, "geomean\t%.3f\t%.3f\t%.3f\t%.3f\t\t\n",
		geomean(norm[ConfigB]), geomean(norm[ConfigP]), geomean(norm[ConfigC]), geomean(norm[ConfigW]))
	fmt.Fprintf(tw, "paper\t%.3f\t%.3f\t%.3f\t%.3f\t\t\n",
		PaperAverages.Fig8NormTime[ConfigB], PaperAverages.Fig8NormTime[ConfigP],
		PaperAverages.Fig8NormTime[ConfigC], PaperAverages.Fig8NormTime[ConfigW])
	tw.Flush()
}

// PrintFigure9 reports aborts per committed transaction.
func (m *Matrix) PrintFigure9(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: Aborts per committed transaction")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tB\tP\tC\tW")
	acc := make(map[ConfigID][]float64)
	for _, b := range m.Opts.Benchmarks {
		if m.Cell(b, ConfigB) == nil {
			continue
		}
		fmt.Fprintf(tw, "%s", b)
		for _, c := range m.Opts.Configs {
			v := 0.0
			if cell := m.Cell(b, c); cell != nil {
				v = cell.AbortsPerCommit
			}
			acc[c] = append(acc[c], v)
			fmt.Fprintf(tw, "\t%.2f", v)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "average\t%.2f\t%.2f\t%.2f\t%.2f\n",
		mean(acc[ConfigB]), mean(acc[ConfigP]), mean(acc[ConfigC]), mean(acc[ConfigW]))
	fmt.Fprintf(tw, "paper\t%.1f\t%.1f\t%.1f\t%.1f\n",
		PaperAverages.Fig9AbortsPerTx[ConfigB], PaperAverages.Fig9AbortsPerTx[ConfigP],
		PaperAverages.Fig9AbortsPerTx[ConfigC], PaperAverages.Fig9AbortsPerTx[ConfigW])
	tw.Flush()
}

// PrintFigure10 reports energy normalized to requester-wins.
func (m *Matrix) PrintFigure10(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: Normalized energy consumption")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tB\tP\tC\tW")
	norm := make(map[ConfigID][]float64)
	for _, b := range m.Opts.Benchmarks {
		if m.Cell(b, ConfigB) == nil {
			continue
		}
		fmt.Fprintf(tw, "%s", b)
		for _, c := range m.Opts.Configs {
			v := m.Normalized(b, c, func(a *Aggregate) float64 { return a.Energy })
			norm[c] = append(norm[c], v)
			fmt.Fprintf(tw, "\t%.3f", v)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "geomean\t%.3f\t%.3f\t%.3f\t%.3f\n",
		geomean(norm[ConfigB]), geomean(norm[ConfigP]), geomean(norm[ConfigC]), geomean(norm[ConfigW]))
	fmt.Fprintf(tw, "paper\t%.3f\t—\t%.3f\t%.3f\n",
		PaperAverages.Fig10NormEnergy[ConfigB],
		PaperAverages.Fig10NormEnergy[ConfigC], PaperAverages.Fig10NormEnergy[ConfigW])
	tw.Flush()
}

// PrintFigure11 reports the abort breakdown by type for each configuration.
func (m *Matrix) PrintFigure11(w io.Writer) {
	fmt.Fprintln(w, "Figure 11: Abort breakdown per type (share of each configuration's aborts)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tcfg\tmem-conflict\texplicit-fb\tother-fb\tothers")
	for _, b := range m.Opts.Benchmarks {
		for _, c := range m.Opts.Configs {
			cell := m.Cell(b, c)
			if cell == nil {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s", b, c)
			for bk := htm.Bucket(0); bk < htm.NumBuckets; bk++ {
				fmt.Fprintf(tw, "\t%.1f%%", 100*cell.AbortShares[bk])
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// PrintFigure12 reports the commit breakdown per execution mode.
func (m *Matrix) PrintFigure12(w io.Writer) {
	fmt.Fprintln(w, "Figure 12: Commit breakdown per mode")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tcfg\tspeculative\tS-CL\tNS-CL\tfallback")
	avg := make(map[ConfigID][]float64) // fallback share accumulator
	for _, b := range m.Opts.Benchmarks {
		for _, c := range m.Opts.Configs {
			cell := m.Cell(b, c)
			if cell == nil {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s", b, c)
			for mo := stats.CommitMode(0); mo < stats.NumCommitModes; mo++ {
				fmt.Fprintf(tw, "\t%.1f%%", 100*cell.ModeShares[mo])
			}
			fmt.Fprintln(tw)
			avg[c] = append(avg[c], cell.ModeShares[stats.CommitFallback])
		}
	}
	fmt.Fprintf(tw, "avg fallback share\t\tB %.1f%%\tP %.1f%%\tC %.1f%%\tW %.1f%%\n",
		100*mean(avg[ConfigB]), 100*mean(avg[ConfigP]), 100*mean(avg[ConfigC]), 100*mean(avg[ConfigW]))
	tw.Flush()
}

// PrintFigure13 reports the commit breakdown by retry count (excluding
// 0-retry commits): the share committed on the first retry and the share
// that ended in the fallback path.
func (m *Matrix) PrintFigure13(w io.Writer) {
	fmt.Fprintln(w, "Figure 13: Commit breakdown per number of retries (excluding 0-retry commits)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tcfg\t1-retry share\tfallback share")
	fr := make(map[ConfigID][]float64)
	fb := make(map[ConfigID][]float64)
	for _, b := range m.Opts.Benchmarks {
		for _, c := range m.Opts.Configs {
			cell := m.Cell(b, c)
			if cell == nil {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%.1f%%\t%.1f%%\n", b, c,
				100*cell.FirstRetryShare, 100*cell.FallbackShare)
			fr[c] = append(fr[c], cell.FirstRetryShare)
			fb[c] = append(fb[c], cell.FallbackShare)
		}
	}
	for _, c := range m.Opts.Configs {
		fmt.Fprintf(tw, "average\t%s\t%.1f%%\t%.1f%%\t(paper: %.1f%% / %.1f%%)\n", c,
			100*mean(fr[c]), 100*mean(fb[c]),
			100*PaperAverages.Fig13FirstRetry[c], 100*PaperAverages.Fig13Fallback[c])
	}
	tw.Flush()
}
