package harness

import (
	"testing"

	"repro/internal/stats"
)

// The tests in this file encode the paper's qualitative claims — the
// "shape" this reproduction is accountable for — as executable assertions
// at a reduced scale (16 cores, one seed). They are the regression net for
// the headline results in EXPERIMENTS.md.

func shapeRun(t *testing.T, bench string, cfg ConfigID, retry int) *RunResult {
	t.Helper()
	p := DefaultRunParams(bench, cfg)
	p.Cores = 16
	p.OpsPerThread = 60
	p.RetryLimit = retry
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShapeCLEARBoundsRetries: §7's headline — under CLEAR the share of
// retrying ARs that commit on the first retry rises sharply versus the
// baseline, and the fallback share collapses (Figure 13).
func TestShapeCLEARBoundsRetries(t *testing.T) {
	base := shapeRun(t, "mwobject", ConfigB, 4)
	clear := shapeRun(t, "mwobject", ConfigC, 4)
	if clear.Stats.FirstRetryShare() <= base.Stats.FirstRetryShare() {
		t.Fatalf("first-retry share did not improve: B %.2f vs C %.2f",
			base.Stats.FirstRetryShare(), clear.Stats.FirstRetryShare())
	}
	if clear.Stats.FallbackShare() >= base.Stats.FallbackShare() && base.Stats.FallbackShare() > 0 {
		t.Fatalf("fallback share did not drop: B %.2f vs C %.2f",
			base.Stats.FallbackShare(), clear.Stats.FallbackShare())
	}
	if clear.Stats.FirstRetryShare() < 0.9 {
		t.Fatalf("immutable hot AR should commit ~always on first retry under CLEAR; got %.2f",
			clear.Stats.FirstRetryShare())
	}
}

// TestShapeCLEARReducesAbortsAndTime: Figure 8/9 direction on the contended
// data-structure benchmarks the paper highlights.
func TestShapeCLEARReducesAbortsAndTime(t *testing.T) {
	for _, bench := range []string{"mwobject", "queue", "intruder", "bitcoin"} {
		base := shapeRun(t, bench, ConfigB, 4)
		clear := shapeRun(t, bench, ConfigC, 4)
		if clear.Stats.AbortsPerCommit() >= base.Stats.AbortsPerCommit() {
			t.Errorf("%s: aborts/commit not reduced: B %.2f vs C %.2f",
				bench, base.Stats.AbortsPerCommit(), clear.Stats.AbortsPerCommit())
		}
		if float64(clear.Stats.Cycles) > 0.95*float64(base.Stats.Cycles) {
			t.Errorf("%s: CLEAR not faster: B %d vs C %d cycles",
				bench, base.Stats.Cycles, clear.Stats.Cycles)
		}
	}
}

// TestShapeOverflowBenchmarksUnaffected: §7 — "in most STAMP benchmarks the
// size of the read and write sets is too big to allow for discovery";
// labyrinth's claims must never convert, and its runtime must sit near the
// baseline.
func TestShapeOverflowBenchmarksUnaffected(t *testing.T) {
	base := shapeRun(t, "labyrinth", ConfigB, 4)
	clear := shapeRun(t, "labyrinth", ConfigC, 4)
	ratio := float64(clear.Stats.Cycles) / float64(base.Stats.Cycles)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("labyrinth C/B = %.2f, expected ~1 (discovery cannot hold its footprints)", ratio)
	}
	if clear.Stats.CommitsByMode[stats.CommitNSCL] != 0 {
		t.Fatal("labyrinth committed in NS-CL despite >ALT footprints")
	}
}

// TestShapeModeSelection: Figure 12 — mwobject lands in NS-CL (immutable),
// bitcoin in S-CL (likely-immutable indirection) and never NS-CL.
func TestShapeModeSelection(t *testing.T) {
	mw := shapeRun(t, "mwobject", ConfigC, 4)
	if mw.Stats.CommitsByMode[stats.CommitNSCL] == 0 {
		t.Fatal("mwobject never committed in NS-CL")
	}
	btc := shapeRun(t, "bitcoin", ConfigC, 4)
	if btc.Stats.CommitsByMode[stats.CommitNSCL] != 0 {
		t.Fatal("bitcoin committed in NS-CL despite its indirection")
	}
	if btc.Stats.CommitsByMode[stats.CommitSCL] == 0 {
		t.Fatal("bitcoin never committed in S-CL")
	}
}

// TestShapeContentionVariants: the -h (high-contention) variants abort more
// than their -l siblings under the baseline.
func TestShapeContentionVariants(t *testing.T) {
	kh := shapeRun(t, "kmeans-h", ConfigB, 4)
	kl := shapeRun(t, "kmeans-l", ConfigB, 4)
	if kh.Stats.AbortsPerCommit() <= kl.Stats.AbortsPerCommit() {
		t.Fatalf("kmeans-h (%.2f) not more contended than kmeans-l (%.2f)",
			kh.Stats.AbortsPerCommit(), kl.Stats.AbortsPerCommit())
	}
}

// TestShapeDiscoveryOverheadSmallWhenUnused: yada spends most commits on the
// first try or in fallback, so discovery overhead stays small (§7).
func TestShapeDiscoveryOverheadSmallWhenUnused(t *testing.T) {
	res := shapeRun(t, "yada", ConfigC, 4)
	if ov := res.Stats.DiscoveryOverhead(16); ov > 0.05 {
		t.Fatalf("yada discovery overhead %.1f%%, expected small", 100*ov)
	}
}

// TestShapeStaticLockingNoAborts: configuration M never aborts on an
// MCAS-friendly benchmark, and never speculates on its convertible ARs.
func TestShapeStaticLockingNoAborts(t *testing.T) {
	res := shapeRun(t, "mwobject", ConfigM, 4)
	if res.Stats.Aborts != 0 {
		t.Fatalf("%d aborts under static locking", res.Stats.Aborts)
	}
	if res.Stats.CommitsByMode[stats.CommitNSCL] != res.Stats.Commits {
		t.Fatalf("commit modes %v, want all cacheline-locked", res.Stats.CommitsByMode)
	}
}

// TestShapeEnergyFollowsAborts: Figure 10 — CLEAR's energy win comes with
// its abort reduction on a contended benchmark.
func TestShapeEnergyFollowsAborts(t *testing.T) {
	base := shapeRun(t, "queue", ConfigB, 4)
	clear := shapeRun(t, "queue", ConfigC, 4)
	if clear.Energy >= base.Energy {
		t.Fatalf("energy not reduced: B %.0f vs C %.0f", base.Energy, clear.Energy)
	}
}

// TestShapeFigure1Immutables: benchmarks whose ARs are small and immutable
// (or likely immutable) show near-1 Figure 1 ratios; footprint-overflowing
// benchmarks show near-0.
func TestShapeFigure1Immutables(t *testing.T) {
	hi := shapeRun(t, "mwobject", ConfigB, 4)
	if hi.Stats.RetryPairs > 0 && hi.Stats.Fig1Ratio() < 0.9 {
		t.Fatalf("mwobject Fig1 ratio %.2f, want ~1", hi.Stats.Fig1Ratio())
	}
	lo := shapeRun(t, "labyrinth", ConfigB, 4)
	if lo.Stats.RetryPairs > 0 && lo.Stats.Fig1Ratio() > 0.5 {
		t.Fatalf("labyrinth Fig1 ratio %.2f, want small", lo.Stats.Fig1Ratio())
	}
}
