package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/fault"
	"repro/internal/policy"
)

// FrontierOptions configures a policy-frontier sweep: every retry policy
// over the full benchmark × configuration matrix, optionally repeated under
// a fault-injection preset — the experiment that locates where the paper's
// single-retry policy wins or loses against more permissive or adaptive
// retry strategies.
type FrontierOptions struct {
	// Policies are the retry policies to compare; at least one. The zero
	// Spec is the paper-exact default.
	Policies []policy.Spec
	// Base is the matrix template shared by every half: benchmarks,
	// configs, cores, seeds, retry limits, parallelism, store, telemetry.
	// Base.Policy and Base.FaultPlan are overwritten per (policy, half).
	Base MatrixOptions
	// FaultPreset names the internal/fault preset for the under-faults half
	// of the comparison ("" = clean only).
	FaultPreset string
}

// DefaultFrontierPolicies is the built-in comparison set: the paper-exact
// single-retry policy, a permissive fixed-budget retrier, and the adaptive
// per-AR speculator.
func DefaultFrontierPolicies() []policy.Spec {
	out := make([]policy.Spec, 0, len(policy.Names()))
	for _, name := range policy.Names() {
		spec, err := policy.Parse(name)
		if err != nil {
			// Names() and Parse agree by construction; a divergence is a
			// programming error.
			panic(err)
		}
		out = append(out, spec)
	}
	return out
}

// FrontierCell is one aggregated point of the frontier: a (policy, half,
// benchmark, config) cell with its best-retry-limit aggregate.
type FrontierCell struct {
	Policy    string // canonical policy rendering
	Faults    bool   // true for the under-faults half
	Benchmark string
	Config    ConfigID
	Agg       *Aggregate
}

// Frontier holds the full sweep result.
type Frontier struct {
	Opts  FrontierOptions
	Cells []FrontierCell
	// Failures pools the per-matrix run failures of every half.
	Failures []RunFailure
	// CacheHits/CacheMisses pool the run-cache consults of every half.
	CacheHits   int
	CacheMisses int
}

// RunFrontier executes the policy-frontier sweep: one RunMatrix per
// (policy, clean/fault) half, so each half shares the matrix machinery's
// retry-limit selection, failure isolation, and run-cache keys. Cells are
// returned in deterministic order (half, policy, benchmark, config).
func RunFrontier(opts FrontierOptions) (*Frontier, error) {
	if len(opts.Policies) == 0 {
		return nil, fmt.Errorf("harness: frontier needs at least one policy")
	}
	var plan *fault.Plan
	if opts.FaultPreset != "" {
		var err error
		plan, err = fault.PresetPlan(opts.FaultPreset)
		if err != nil {
			return nil, fmt.Errorf("harness: frontier: %w", err)
		}
	}
	halves := []*fault.Plan{nil}
	if plan != nil {
		halves = append(halves, plan)
	}

	f := &Frontier{Opts: opts}
	for _, fp := range halves {
		for _, pol := range opts.Policies {
			mo := opts.Base
			mo.Policy = pol
			mo.FaultPlan = fp
			m, err := RunMatrix(mo)
			if err != nil {
				return nil, fmt.Errorf("harness: frontier policy %s: %w", pol.Canonical(), err)
			}
			f.Failures = append(f.Failures, m.Failures...)
			f.CacheHits += m.CacheHits
			f.CacheMisses += m.CacheMisses
			for _, bench := range mo.Benchmarks {
				for _, cfg := range mo.Configs {
					agg := m.Cell(bench, cfg)
					if agg == nil {
						continue
					}
					f.Cells = append(f.Cells, FrontierCell{
						Policy:    pol.Canonical(),
						Faults:    fp != nil,
						Benchmark: bench,
						Config:    cfg,
						Agg:       agg,
					})
				}
			}
		}
	}
	sort.Slice(f.Cells, func(i, j int) bool {
		a, b := f.Cells[i], f.Cells[j]
		if a.Faults != b.Faults {
			return !a.Faults
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.Config < b.Config
	})
	return f, nil
}

// WriteCSV renders the frontier cells, one row per (policy, half,
// benchmark, config), in the deterministic cell order.
func (f *Frontier) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"policy", "faults", "benchmark", "config", "best_retry_limit",
		"seeds", "cycles", "energy", "aborts_per_commit", "fallback_share",
		"first_retry_share",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	ff := func(v float64) string { return fmt.Sprintf("%.6g", v) }
	for _, c := range f.Cells {
		row := []string{
			c.Policy,
			strconv.FormatBool(c.Faults),
			c.Benchmark,
			c.Config.String(),
			strconv.Itoa(c.Agg.BestRetryLimit),
			strconv.Itoa(c.Agg.Seeds),
			ff(c.Agg.Cycles),
			ff(c.Agg.Energy),
			ff(c.Agg.AbortsPerCommit),
			ff(c.Agg.FallbackShare),
			ff(c.Agg.FirstRetryShare),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// frontierGroup keys the per-(half, benchmark, config) comparison the
// summary reasons over.
type frontierGroup struct {
	faults bool
	bench  string
	cfg    ConfigID
}

// Summary writes the human-readable frontier verdict: per (benchmark,
// config, half) the cycle-best policy, and the headline count of cells
// where the paper's single-retry default wins outright.
func (f *Frontier) Summary(w io.Writer) error {
	groups := make(map[frontierGroup][]FrontierCell)
	var order []frontierGroup
	for _, c := range f.Cells {
		g := frontierGroup{c.Faults, c.Benchmark, c.Config}
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], c)
	}
	defaultPol := policy.Spec{}.Canonical()
	wins := map[bool]int{}
	totals := map[bool]int{}
	for _, g := range order {
		cells := groups[g]
		best := cells[0]
		var defCell *FrontierCell
		for i, c := range cells {
			if c.Agg.Cycles < best.Agg.Cycles {
				best = c
			}
			if c.Policy == defaultPol {
				defCell = &cells[i]
			}
		}
		half := "clean"
		if g.faults {
			half = "faults"
		}
		totals[g.faults]++
		rel := ""
		if defCell != nil && defCell.Agg.Cycles > 0 {
			rel = fmt.Sprintf(" (%.3fx of %s)", best.Agg.Cycles/defCell.Agg.Cycles, defaultPol)
		}
		if best.Policy == defaultPol {
			wins[g.faults]++
		}
		fmt.Fprintf(w, "%-6s %s/%s: best=%s cycles=%.0f%s\n",
			half, g.bench, g.cfg, best.Policy, best.Agg.Cycles, rel)
	}
	fmt.Fprintf(w, "\n%s wins %d/%d clean cells", defaultPol, wins[false], totals[false])
	if totals[true] > 0 {
		fmt.Fprintf(w, ", %d/%d cells under faults", wins[true], totals[true])
	}
	fmt.Fprintln(w)
	if len(f.Failures) > 0 {
		fmt.Fprintf(w, "%d run failures (see failure listing)\n", len(f.Failures))
	}
	return nil
}
