package harness

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// MatrixOptions configures a full evaluation sweep: every benchmark under
// every configuration, with the paper's per-application retry-limit
// exploration and multi-seed repetition.
type MatrixOptions struct {
	Benchmarks   []string
	Configs      []ConfigID
	Cores        int
	OpsPerThread int
	Seeds        []uint64
	// RetryLimits is the design-space sweep; the best-performing limit is
	// selected per (benchmark, config), like the paper's "best of 1 to 10".
	RetryLimits []int
	MaxTicks    sim.Tick
	// Parallelism bounds concurrent simulations (host goroutines).
	Parallelism int
	// Ablation switches, applied to every run.
	DisableDiscoveryContinuation bool
	SCLLockAllReads              bool
	// Policy is the retry policy every cell runs under (zero value = the
	// paper-exact default). The matrix is single-policy by design; the
	// policy-frontier sweep (RunFrontier) loops RunMatrix per policy so
	// cache keys and cell CSVs stay comparable within one matrix.
	Policy policy.Spec
	// FaultPlan, when non-nil, is attached to every run of the sweep — the
	// "under faults" half of a policy-frontier comparison.
	FaultPlan *fault.Plan
	// Telemetry, when non-nil, is attached to every run of the sweep; its
	// atomic counters make it safe to share across the parallel workers
	// (the clearbench -serve live endpoint feeds from it).
	Telemetry *trace.Live
	// Metrics, when non-nil, is attached to every run of the sweep; the
	// registry's series are all atomics, so one registry aggregates across
	// the parallel workers (the -serve /metrics endpoint feeds from it).
	// Cache hits skip simulation and therefore contribute nothing here.
	Metrics *metrics.Registry
	// RunDeadline bounds the host wall time of every individual run; zero
	// means unbounded. A run exceeding it becomes a RunFailure instead of
	// hanging the sweep.
	RunDeadline time.Duration
	// Cancel, when non-nil and closed, stops dispatching new cells (runs in
	// flight finish); the partial matrix is returned. The -serve signal
	// handler uses it for graceful shutdown.
	Cancel <-chan struct{}
	// Store, when non-nil, is the content-addressed run cache
	// (internal/runstore): every seed run consults it before simulating and
	// persists its summary afterwards. Because cell results are pure
	// functions of their RunParams, a cancelled or crashed sweep restarted
	// with the same store recomputes only the missing and failed cells —
	// resume semantics fall out of caching. Safe to share across the
	// parallel workers. Any Backend works: the local sharded directory, the
	// in-memory Mem, or a remote store. Leave nil when Runner is set (the
	// runner owns execution, including any caching).
	Store runstore.Backend
	// Runner, when non-nil, replaces the local execute-one-run path
	// (RunCheckedCached against Store) for every seed run of the sweep. The
	// farm client plugs in here: the same aggregation, best-of selection,
	// and CSV code runs over results produced anywhere, which is what makes
	// a remote sweep byte-identical to a local one. Must be safe for
	// concurrent calls from the parallel workers.
	Runner RunnerFunc
}

// RunnerFunc executes one run of a sweep and reports the result, the
// isolated failure (exactly one of the two is non-nil), and whether the
// result was served from a cache — local or remote — rather than simulated.
type RunnerFunc func(p RunParams) (res *RunResult, fail *RunFailure, cacheHit bool)

// DefaultMatrixOptions is the full evaluation at laptop scale: all 19
// benchmarks, 32 simulated cores, three seeds, and a coarse retry sweep.
func DefaultMatrixOptions() MatrixOptions {
	return MatrixOptions{
		Benchmarks:   workload.Names(),
		Configs:      AllConfigs,
		Cores:        32,
		OpsPerThread: 80,
		Seeds:        []uint64{1, 2, 3},
		RetryLimits:  []int{1, 2, 4, 8},
		MaxTicks:     800_000_000,
		Parallelism:  runtime.GOMAXPROCS(0),
	}
}

// QuickMatrixOptions is a reduced sweep for tests and -short benches.
func QuickMatrixOptions() MatrixOptions {
	o := DefaultMatrixOptions()
	o.Cores = 8
	o.OpsPerThread = 30
	o.Seeds = []uint64{1}
	o.RetryLimits = []int{4}
	return o
}

// Matrix holds the aggregated cell results of a sweep.
type Matrix struct {
	Opts  MatrixOptions
	Cells map[string]map[ConfigID]*Aggregate
	// Failures lists every run that crashed, deadlocked, or blew its
	// deadline. Cells keep the aggregate over their surviving seeds; a cell
	// whose every seed failed is absent from Cells.
	Failures []RunFailure
	// CacheHits/CacheMisses count run-cache consults across every seed run
	// of the sweep, including the retry-limit cells that lost the best-of
	// selection. Both are zero without MatrixOptions.Store. Deliberately
	// not part of WriteCSV: the cell CSVs of a cold and a warm sweep must
	// stay byte-identical.
	CacheHits   int
	CacheMisses int
}

// Cell returns the aggregate for (benchmark, config); nil if absent.
func (m *Matrix) Cell(bench string, cfg ConfigID) *Aggregate {
	if row, ok := m.Cells[bench]; ok {
		return row[cfg]
	}
	return nil
}

// Normalized returns metric(cell)/metric(baseline B cell) for a benchmark.
func (m *Matrix) Normalized(bench string, cfg ConfigID, metric func(*Aggregate) float64) float64 {
	base := m.Cell(bench, ConfigB)
	cell := m.Cell(bench, cfg)
	if base == nil || cell == nil || metric(base) == 0 {
		return 0
	}
	return metric(cell) / metric(base)
}

// RunMatrix executes the sweep with a bounded worker pool. Each
// (benchmark, config, retry-limit) cell runs all seeds; the best retry limit
// (lowest trimmed-mean cycles) is kept. Individual run failures (crash,
// deadlock, deadline) are isolated into Matrix.Failures instead of aborting
// the sweep: the cell aggregates whatever seeds survived.
func RunMatrix(opts MatrixOptions) (*Matrix, error) {
	type jobKey struct {
		bench string
		cfg   ConfigID
		retry int
	}
	type jobResult struct {
		key          jobKey
		agg          *Aggregate
		fails        []RunFailure
		hits, misses int
	}

	var jobs []jobKey
	for _, b := range opts.Benchmarks {
		for _, c := range opts.Configs {
			for _, r := range opts.RetryLimits {
				jobs = append(jobs, jobKey{b, c, r})
			}
		}
	}

	par := opts.Parallelism
	if par < 1 {
		par = 1
	}
	jobCh := make(chan jobKey)
	resCh := make(chan jobResult, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobCh {
				agg, fails, hits, misses := runCell(opts, k.bench, k.cfg, k.retry)
				resCh <- jobResult{k, agg, fails, hits, misses}
			}
		}()
	}
dispatch:
	for _, k := range jobs {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				break dispatch
			case jobCh <- k:
			}
		} else {
			jobCh <- k
		}
	}
	close(jobCh)
	wg.Wait()
	close(resCh)

	best := make(map[string]map[ConfigID]*Aggregate)
	var failures []RunFailure
	var cacheHits, cacheMisses int
	for r := range resCh {
		failures = append(failures, r.fails...)
		cacheHits += r.hits
		cacheMisses += r.misses
		if r.agg == nil {
			continue
		}
		row, ok := best[r.key.bench]
		if !ok {
			row = make(map[ConfigID]*Aggregate)
			best[r.key.bench] = row
		}
		if betterAggregate(row[r.key.cfg], r.agg) {
			row[r.key.cfg] = r.agg
		}
	}
	sort.Slice(failures, func(i, j int) bool {
		a, b := failures[i], failures[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.RetryLimit != b.RetryLimit {
			return a.RetryLimit < b.RetryLimit
		}
		return a.Seed < b.Seed
	})
	return &Matrix{
		Opts:        opts,
		Cells:       best,
		Failures:    failures,
		CacheHits:   cacheHits,
		CacheMisses: cacheMisses,
	}, nil
}

// betterAggregate decides whether the candidate retry-limit aggregate
// replaces the current best of its (benchmark, config) cell: strictly fewer
// cycles wins; equal-cycle ties break towards the LOWEST retry limit. The
// tie-break matters because cell results arrive in channel order under the
// parallel workers — without it, two retry limits that happen to produce
// identical cycle counts would make the matrix output depend on goroutine
// scheduling.
func betterAggregate(cur, cand *Aggregate) bool {
	if cur == nil {
		return true
	}
	if cand.Cycles != cur.Cycles {
		return cand.Cycles < cur.Cycles
	}
	return cand.BestRetryLimit < cur.BestRetryLimit
}

// runCell runs one (benchmark, config, retry-limit) cell across all seeds,
// consulting the run cache (when MatrixOptions.Store is set) before each
// simulation. Failed seeds are reported individually; the aggregate covers
// the survivors and is nil when every seed failed. hits/misses count the
// cache consults of this cell's seed runs.
func runCell(opts MatrixOptions, bench string, cfg ConfigID, retry int) (agg *Aggregate, fails []RunFailure, hits, misses int) {
	run := opts.Runner
	if run == nil {
		run = func(p RunParams) (*RunResult, *RunFailure, bool) {
			return RunCheckedCached(opts.Store, p)
		}
	}
	results := make([]*RunResult, 0, len(opts.Seeds))
	for _, seed := range opts.Seeds {
		p := RunParams{
			Benchmark:                    bench,
			Config:                       cfg,
			Cores:                        opts.Cores,
			OpsPerThread:                 opts.OpsPerThread,
			RetryLimit:                   retry,
			Seed:                         seed,
			MaxTicks:                     opts.MaxTicks,
			DisableDiscoveryContinuation: opts.DisableDiscoveryContinuation,
			SCLLockAllReads:              opts.SCLLockAllReads,
			Telemetry:                    opts.Telemetry,
			Metrics:                      opts.Metrics,
			Deadline:                     opts.RunDeadline,
			Policy:                       opts.Policy,
			FaultPlan:                    opts.FaultPlan,
		}
		res, fail, hit := run(p)
		if hit {
			hits++
		} else if opts.Store != nil || opts.Runner != nil {
			misses++
		}
		if fail != nil {
			fails = append(fails, *fail)
			continue
		}
		results = append(results, res)
	}
	if len(results) == 0 {
		return nil, fails, hits, misses
	}
	agg, err := aggregateRuns(results)
	if err != nil {
		fails = append(fails, RunFailure{
			Benchmark:  bench,
			Config:     cfg,
			RetryLimit: retry,
			Seed:       results[0].Params.Seed,
			Reason:     "aggregate: " + err.Error(),
		})
		return nil, fails, hits, misses
	}
	agg.CacheHits = hits
	agg.CacheMisses = misses
	return agg, fails, hits, misses
}
