package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// MatrixOptions configures a full evaluation sweep: every benchmark under
// every configuration, with the paper's per-application retry-limit
// exploration and multi-seed repetition.
type MatrixOptions struct {
	Benchmarks   []string
	Configs      []ConfigID
	Cores        int
	OpsPerThread int
	Seeds        []uint64
	// RetryLimits is the design-space sweep; the best-performing limit is
	// selected per (benchmark, config), like the paper's "best of 1 to 10".
	RetryLimits []int
	MaxTicks    sim.Tick
	// Parallelism bounds concurrent simulations (host goroutines).
	Parallelism int
	// Ablation switches, applied to every run.
	DisableDiscoveryContinuation bool
	SCLLockAllReads              bool
	// Telemetry, when non-nil, is attached to every run of the sweep; its
	// atomic counters make it safe to share across the parallel workers
	// (the clearbench -serve live endpoint feeds from it).
	Telemetry *trace.Live
}

// DefaultMatrixOptions is the full evaluation at laptop scale: all 19
// benchmarks, 32 simulated cores, three seeds, and a coarse retry sweep.
func DefaultMatrixOptions() MatrixOptions {
	return MatrixOptions{
		Benchmarks:   workload.Names(),
		Configs:      AllConfigs,
		Cores:        32,
		OpsPerThread: 80,
		Seeds:        []uint64{1, 2, 3},
		RetryLimits:  []int{1, 2, 4, 8},
		MaxTicks:     800_000_000,
		Parallelism:  runtime.GOMAXPROCS(0),
	}
}

// QuickMatrixOptions is a reduced sweep for tests and -short benches.
func QuickMatrixOptions() MatrixOptions {
	o := DefaultMatrixOptions()
	o.Cores = 8
	o.OpsPerThread = 30
	o.Seeds = []uint64{1}
	o.RetryLimits = []int{4}
	return o
}

// Matrix holds the aggregated cell results of a sweep.
type Matrix struct {
	Opts  MatrixOptions
	Cells map[string]map[ConfigID]*Aggregate
}

// Cell returns the aggregate for (benchmark, config); nil if absent.
func (m *Matrix) Cell(bench string, cfg ConfigID) *Aggregate {
	if row, ok := m.Cells[bench]; ok {
		return row[cfg]
	}
	return nil
}

// Normalized returns metric(cell)/metric(baseline B cell) for a benchmark.
func (m *Matrix) Normalized(bench string, cfg ConfigID, metric func(*Aggregate) float64) float64 {
	base := m.Cell(bench, ConfigB)
	cell := m.Cell(bench, cfg)
	if base == nil || cell == nil || metric(base) == 0 {
		return 0
	}
	return metric(cell) / metric(base)
}

// RunMatrix executes the sweep with a bounded worker pool. Each
// (benchmark, config, retry-limit) cell runs all seeds; the best retry limit
// (lowest trimmed-mean cycles) is kept.
func RunMatrix(opts MatrixOptions) (*Matrix, error) {
	type jobKey struct {
		bench string
		cfg   ConfigID
		retry int
	}
	type jobResult struct {
		key jobKey
		agg *Aggregate
		err error
	}

	var jobs []jobKey
	for _, b := range opts.Benchmarks {
		for _, c := range opts.Configs {
			for _, r := range opts.RetryLimits {
				jobs = append(jobs, jobKey{b, c, r})
			}
		}
	}

	par := opts.Parallelism
	if par < 1 {
		par = 1
	}
	jobCh := make(chan jobKey)
	resCh := make(chan jobResult, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobCh {
				agg, err := runCell(opts, k.bench, k.cfg, k.retry)
				resCh <- jobResult{k, agg, err}
			}
		}()
	}
	for _, k := range jobs {
		jobCh <- k
	}
	close(jobCh)
	wg.Wait()
	close(resCh)

	best := make(map[string]map[ConfigID]*Aggregate)
	for r := range resCh {
		if r.err != nil {
			return nil, fmt.Errorf("harness: cell %s/%s retry=%d: %w", r.key.bench, r.key.cfg, r.key.retry, r.err)
		}
		row, ok := best[r.key.bench]
		if !ok {
			row = make(map[ConfigID]*Aggregate)
			best[r.key.bench] = row
		}
		if cur := row[r.key.cfg]; cur == nil || r.agg.Cycles < cur.Cycles {
			row[r.key.cfg] = r.agg
		}
	}
	return &Matrix{Opts: opts, Cells: best}, nil
}

func runCell(opts MatrixOptions, bench string, cfg ConfigID, retry int) (*Aggregate, error) {
	results := make([]*RunResult, 0, len(opts.Seeds))
	for _, seed := range opts.Seeds {
		p := RunParams{
			Benchmark:                    bench,
			Config:                       cfg,
			Cores:                        opts.Cores,
			OpsPerThread:                 opts.OpsPerThread,
			RetryLimit:                   retry,
			Seed:                         seed,
			MaxTicks:                     opts.MaxTicks,
			DisableDiscoveryContinuation: opts.DisableDiscoveryContinuation,
			SCLLockAllReads:              opts.SCLLockAllReads,
			Telemetry:                    opts.Telemetry,
		}
		res, err := Run(p)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return aggregateRuns(results)
}
