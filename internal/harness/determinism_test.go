package harness

import (
	"fmt"
	"testing"
)

// digestOf renders everything a run produced into one deterministic string:
// the full machine-level stats digest plus the directory counters. Two runs
// agree on this string iff they agree on every statistic the harness reports.
func digestOf(res *RunResult) string {
	return res.Stats.Digest() + fmt.Sprintf("|dir=%+v|energy=%.6f", res.Dir, res.Energy)
}

// TestMachineDeterminism is the machine-level determinism regression test:
// the same (benchmark, configuration, seed) run twice must produce
// bit-identical statistics. The event engine orders events totally by
// (tick, sequence number), so any divergence here means a host-side source
// of nondeterminism leaked into the simulation (map iteration order,
// pointer-keyed state, unseeded randomness) — exactly the class of bug a
// performance rewrite of the engine or directory could introduce.
func TestMachineDeterminism(t *testing.T) {
	for _, bench := range []string{"intruder", "hashmap", "labyrinth"} {
		for _, cfg := range AllConfigs {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.String(), func(t *testing.T) {
				p := DefaultRunParams(bench, cfg)
				p.Cores = 8
				p.OpsPerThread = 32
				p.Seed = 7

				first, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				second, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				d1, d2 := digestOf(first), digestOf(second)
				if d1 != d2 {
					t.Fatalf("same seed, different stats:\n run 1: %s\n run 2: %s", d1, d2)
				}
			})
		}
	}
}

// TestOracleDigestTransparency asserts the internal/check invariant oracle
// is a pure observer: the same (benchmark, configuration, seed) run with and
// without the oracle attached must produce bit-identical statistics. The
// oracle's audit events only consume engine sequence numbers and its probe
// and observer callbacks are read-only, so any divergence here means the
// oracle perturbed the run it was supposed to be checking. The oracle-enabled
// run must also be invariant-clean (harness.Run returns its Err()).
func TestOracleDigestTransparency(t *testing.T) {
	for _, bench := range []string{"intruder", "hashmap", "labyrinth"} {
		for _, cfg := range AllConfigs {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.String(), func(t *testing.T) {
				p := DefaultRunParams(bench, cfg)
				p.Cores = 8
				p.OpsPerThread = 32
				p.Seed = 7

				plain, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				p.Oracle = true
				checked, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				d1, d2 := digestOf(plain), digestOf(checked)
				if d1 != d2 {
					t.Fatalf("oracle perturbed the run:\n off: %s\n on:  %s", d1, d2)
				}
			})
		}
	}
}

// TestMachineDeterminismSeedSensitivity guards the converse property: a
// different seed must actually change the execution (otherwise the
// determinism test above would pass vacuously on a simulator that ignores
// its seed).
func TestMachineDeterminismSeedSensitivity(t *testing.T) {
	p := DefaultRunParams("intruder", ConfigC)
	p.Cores = 8
	p.OpsPerThread = 32

	p.Seed = 7
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 8
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if digestOf(a) == digestOf(b) {
		t.Fatal("seeds 7 and 8 produced identical stats; the seed is not reaching the simulation")
	}
}
