package harness

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/htm"
	"repro/internal/stats"
)

// WriteCSV emits the full matrix as machine-readable CSV, one row per
// (benchmark, configuration) cell — the raw material for external plotting
// of every figure.
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "config", "best_retry_limit", "seeds",
		"cycles", "norm_time", "energy", "norm_energy", "aborts_per_commit",
		"commits", "aborts",
		"share_speculative", "share_scl", "share_nscl", "share_fallback",
		"abort_mem_conflict", "abort_explicit_fb", "abort_other_fb", "abort_others",
		"first_retry_share", "fallback_share", "discovery_overhead", "fig1_ratio",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.6g", v) }
	for _, bench := range m.Opts.Benchmarks {
		for _, cfg := range m.Opts.Configs {
			cell := m.Cell(bench, cfg)
			if cell == nil {
				continue
			}
			row := []string{
				bench, cfg.String(),
				fmt.Sprintf("%d", cell.BestRetryLimit),
				fmt.Sprintf("%d", cell.Seeds),
				f(cell.Cycles),
				f(m.Normalized(bench, cfg, func(a *Aggregate) float64 { return a.Cycles })),
				f(cell.Energy),
				f(m.Normalized(bench, cfg, func(a *Aggregate) float64 { return a.Energy })),
				f(cell.AbortsPerCommit),
				f(cell.Commits),
				f(cell.Aborts),
				f(cell.ModeShares[stats.CommitSpeculative]),
				f(cell.ModeShares[stats.CommitSCL]),
				f(cell.ModeShares[stats.CommitNSCL]),
				f(cell.ModeShares[stats.CommitFallback]),
				f(cell.AbortShares[htm.BucketMemoryConflict]),
				f(cell.AbortShares[htm.BucketExplicitFallback]),
				f(cell.AbortShares[htm.BucketOtherFallback]),
				f(cell.AbortShares[htm.BucketOthers]),
				f(cell.FirstRetryShare),
				f(cell.FallbackShare),
				f(cell.DiscoveryOverhead),
				f(cell.Fig1Ratio),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFailuresCSV emits the sweep's isolated run failures, one row per
// failed (benchmark, config, retry, seed) run, so a hardened matrix leaves
// an auditable record instead of a crashed process.
func (m *Matrix) WriteFailuresCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "config", "retry_limit", "seed", "reason",
	}); err != nil {
		return err
	}
	for _, fl := range m.Failures {
		if err := cw.Write([]string{
			fl.Benchmark,
			fl.Config.String(),
			fmt.Sprintf("%d", fl.RetryLimit),
			fmt.Sprintf("%d", fl.Seed),
			fl.Reason,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
