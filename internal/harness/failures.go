package harness

import (
	"fmt"
	"runtime/debug"
)

// RunFailure is the structured record of one failed configuration run: the
// sweep and the chaos campaign surface these instead of aborting the whole
// matrix when a single cell crashes, deadlocks, or trips a detector.
type RunFailure struct {
	Benchmark  string
	Config     ConfigID
	RetryLimit int
	Seed       uint64
	// Reason is the human-readable failure cause (error text, watchdog
	// verdict, or panic value).
	Reason string
	// Stack is the goroutine stack at the recovery point; empty unless the
	// run panicked.
	Stack string
}

func (f *RunFailure) String() string {
	return fmt.Sprintf("%s/%s retry=%d seed=%d: %s",
		f.Benchmark, f.Config, f.RetryLimit, f.Seed, f.Reason)
}

// RunChecked executes Run with panic isolation: a crash inside the simulator
// becomes a RunFailure carrying the stack instead of killing the caller's
// sweep. Exactly one of the results is non-nil.
func RunChecked(p RunParams) (res *RunResult, fail *RunFailure) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			fail = &RunFailure{
				Benchmark:  p.Benchmark,
				Config:     p.Config,
				RetryLimit: p.RetryLimit,
				Seed:       p.Seed,
				Reason:     fmt.Sprintf("panic: %v", r),
				Stack:      string(debug.Stack()),
			}
		}
	}()
	r, err := Run(p)
	if err != nil {
		return nil, &RunFailure{
			Benchmark:  p.Benchmark,
			Config:     p.Config,
			RetryLimit: p.RetryLimit,
			Seed:       p.Seed,
			Reason:     err.Error(),
		}
	}
	return r, nil
}
