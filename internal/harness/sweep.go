package harness

import (
	"fmt"
	"io"
)

// RetrySweep is the paper's design-space exploration made visible: for each
// benchmark and configuration it reports mean cycles at every retry limit,
// instead of silently folding the best one into the matrix.
type RetrySweep struct {
	Opts MatrixOptions
	// Cycles[bench][config][retryLimit] = trimmed-mean cycles.
	Cycles map[string]map[ConfigID]map[int]float64
}

// RunRetrySweep executes the sweep serially per cell (the cells themselves
// run in the caller's goroutine; use RunMatrix for the parallel best-of
// version).
func RunRetrySweep(opts MatrixOptions) (*RetrySweep, error) {
	s := &RetrySweep{
		Opts:   opts,
		Cycles: make(map[string]map[ConfigID]map[int]float64),
	}
	for _, bench := range opts.Benchmarks {
		s.Cycles[bench] = make(map[ConfigID]map[int]float64)
		for _, cfg := range opts.Configs {
			s.Cycles[bench][cfg] = make(map[int]float64)
			for _, retry := range opts.RetryLimits {
				agg, fails, _, _ := runCell(opts, bench, cfg, retry)
				if agg == nil {
					reason := "no surviving seeds"
					if len(fails) > 0 {
						reason = fails[0].Reason
					}
					return nil, fmt.Errorf("harness: cell %s/%s retry=%d: %s", bench, cfg, retry, reason)
				}
				s.Cycles[bench][cfg][retry] = agg.Cycles
			}
		}
	}
	return s, nil
}

// Best returns the retry limit minimising cycles for (bench, config).
func (s *RetrySweep) Best(bench string, cfg ConfigID) (retry int, cycles float64) {
	cycles = -1
	for _, r := range s.Opts.RetryLimits {
		c := s.Cycles[bench][cfg][r]
		if cycles < 0 || c < cycles {
			retry, cycles = r, c
		}
	}
	return retry, cycles
}

// Print renders the sweep as one row per (benchmark, config) with a column
// per retry limit; the best cell is starred.
func (s *RetrySweep) Print(w io.Writer) {
	fmt.Fprintln(w, "Retry-limit design-space exploration (mean cycles; * = selected)")
	tw := newTab(w)
	fmt.Fprint(tw, "Benchmark\tcfg")
	for _, r := range s.Opts.RetryLimits {
		fmt.Fprintf(tw, "\tretry %d", r)
	}
	fmt.Fprintln(tw)
	for _, bench := range s.Opts.Benchmarks {
		for _, cfg := range s.Opts.Configs {
			best, _ := s.Best(bench, cfg)
			fmt.Fprintf(tw, "%s\t%s", bench, cfg)
			for _, r := range s.Opts.RetryLimits {
				star := ""
				if r == best {
					star = "*"
				}
				fmt.Fprintf(tw, "\t%.0f%s", s.Cycles[bench][cfg][r], star)
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}
