package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/trace"
)

// faultTestParams returns a small contended run suitable for injection tests.
func faultTestParams(bench string, cfg ConfigID) RunParams {
	p := DefaultRunParams(bench, cfg)
	p.Cores = 8
	p.OpsPerThread = 32
	p.Seed = 7
	return p
}

// TestFaultInjectionDeterminism: the same (plan, seeds) must reproduce a
// bit-identical run — the replayability contract every campaign and shrink
// step depends on. A different fault seed must actually change the execution.
func TestFaultInjectionDeterminism(t *testing.T) {
	plan, err := fault.PresetPlan("default")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 3

	p := faultTestParams("intruder", ConfigC)
	p.Oracle = true // the oracle must hold under faults, too
	p.FaultPlan = plan

	first, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := digestOf(first), digestOf(second); d1 != d2 {
		t.Fatalf("same plan and seeds, different stats:\n run 1: %s\n run 2: %s", d1, d2)
	}
	if first.Faults == nil || first.Faults.Total() == 0 {
		t.Fatal("default plan fired no faults; the injector is not reaching the run")
	}
	if first.Faults.Total() != second.Faults.Total() {
		t.Fatalf("fault counts diverged: %d vs %d", first.Faults.Total(), second.Faults.Total())
	}

	p.FaultPlan = plan.Clone()
	p.FaultPlan.Seed = 4
	third, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if digestOf(first) == digestOf(third) {
		t.Fatal("fault seeds 3 and 4 produced identical stats; the plan seed is not reaching the injector")
	}
}

// TestFaultEmptyPlanTransparency: an attached injector whose plan is all-zero
// must fire nothing and leave the statistics digest byte-identical to a run
// with no injector at all — the detachment contract that lets the harness
// attach the seam unconditionally.
func TestFaultEmptyPlanTransparency(t *testing.T) {
	for _, bench := range []string{"intruder", "hashmap"} {
		for _, cfg := range AllConfigs {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.String(), func(t *testing.T) {
				p := faultTestParams(bench, cfg)
				plain, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				p.FaultPlan = &fault.Plan{Seed: 99}
				attached, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				if attached.Faults == nil {
					t.Fatal("empty plan did not attach the injector")
				}
				if n := attached.Faults.Total(); n != 0 {
					t.Fatalf("empty plan fired %d faults", n)
				}
				if d1, d2 := digestOf(plain), digestOf(attached); d1 != d2 {
					t.Fatalf("empty-plan injector perturbed the run:\n off: %s\n on:  %s", d1, d2)
				}
			})
		}
	}
}

// TestOracleAndVerificationHoldUnderFaults: faults may delay or refuse, never
// corrupt — every config must stay invariant-clean and pass workload
// verification under the broad default mix and under a NACK storm.
func TestOracleAndVerificationHoldUnderFaults(t *testing.T) {
	for _, preset := range []string{"default", "storm", "locks"} {
		for _, cfg := range AllConfigs {
			preset, cfg := preset, cfg
			t.Run(preset+"/"+cfg.String(), func(t *testing.T) {
				plan, err := fault.PresetPlan(preset)
				if err != nil {
					t.Fatal(err)
				}
				plan.Seed = 11
				p := faultTestParams("queue", cfg)
				p.Oracle = true
				p.FaultPlan = plan
				p.Watchdog = &WatchdogConfig{}
				res, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				if res.Watch.RetryBoundViolations != 0 {
					t.Fatalf("%d single-retry-bound violations under tolerable faults", res.Watch.RetryBoundViolations)
				}
			})
		}
	}
}

// TestFaultEventsReachTrace: with a tracer attached, every fired fault is
// recorded as a KindFault event, and the digest matches the untraced run
// (the tracer stays transparent with the injector active).
func TestFaultEventsReachTrace(t *testing.T) {
	plan, err := fault.PresetPlan("default")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 5
	p := faultTestParams("hashmap", ConfigW)
	p.FaultPlan = plan

	bare, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.TraceWriter = &buf
	traced, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := digestOf(bare), digestOf(traced); d1 != d2 {
		t.Fatalf("tracer+injector perturbed the run:\n off: %s\n on:  %s", d1, d2)
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	for _, e := range evs {
		if e.Kind == trace.KindFault {
			faults++
		}
	}
	if uint64(faults) != traced.Faults.Total() {
		t.Fatalf("trace carries %d fault events but the injector fired %d", faults, traced.Faults.Total())
	}
	if faults == 0 {
		t.Fatal("no fault events in the trace")
	}
}

// TestWatchdogCatchesPlantedSecondSpecRetry: the forced second speculative
// retry after a convertible assessment is the exact bug CLEAR's single-retry
// bound forbids; the watchdog must turn it into a run failure.
func TestWatchdogCatchesPlantedSecondSpecRetry(t *testing.T) {
	plan := &fault.Plan{Seed: 1, SecondSpecRetryRate: 1}
	p := faultTestParams("hashmap", ConfigC)
	p.FaultPlan = plan
	p.Watchdog = &WatchdogConfig{}

	res, fail := RunChecked(p)
	if fail == nil {
		t.Fatalf("planted second-spec-retry fault not caught (run stats: %v)", res.Watch)
	}
	if !strings.Contains(fail.Reason, "speculative") {
		t.Fatalf("failure reason does not name the violation: %s", fail.Reason)
	}
}

// TestWatchdogCatchesPlantedLivelock: a lock acquisition denied forever
// (LockStallRate=1) starves the CL lock walk, which has no retry budget;
// the watchdog's no-commit window must detect the livelock instead of
// letting the run spin until MaxTicks.
func TestWatchdogCatchesPlantedLivelock(t *testing.T) {
	plan := &fault.Plan{Seed: 1, LockStallRate: 1, LockStallTicks: 50}
	p := faultTestParams("arrayswap", ConfigM)
	p.FaultPlan = plan
	p.Watchdog = &WatchdogConfig{LivelockWindow: 500_000, CheckEvery: 50_000}

	_, fail := RunChecked(p)
	if fail == nil {
		t.Fatal("planted livelock not caught")
	}
	if !strings.Contains(fail.Reason, "livelock") {
		t.Fatalf("failure reason does not name the livelock: %s", fail.Reason)
	}
}

// TestShrinkPlanIsolatesPlantedFault: end to end, a failing campaign plan
// mixing tolerable faults with the planted second-spec-retry bug must shrink
// to a plan whose only enabled kind is the planted one.
func TestShrinkPlanIsolatesPlantedFault(t *testing.T) {
	plan, err := fault.PresetPlan("planted")
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 1
	plan.SecondSpecRetryRate = 1

	p := faultTestParams("hashmap", ConfigC)
	p.Watchdog = &WatchdogConfig{}
	p.FaultPlan = plan

	failing := func(cand *fault.Plan) bool {
		p2 := p
		p2.FaultPlan = cand
		_, fail := RunChecked(p2)
		return fail != nil
	}
	if !failing(plan) {
		t.Fatal("planted plan does not fail; nothing to shrink")
	}
	min := fault.ShrinkPlan(plan, failing)
	if !failing(min) {
		t.Fatal("shrunk plan no longer fails")
	}
	for k := fault.Kind(0); k < fault.NumKinds; k++ {
		if k != fault.KindSecondSpecRetry && min.Enabled(k) {
			t.Errorf("shrunk plan still enables %v alongside the planted bug", k)
		}
	}
	if !min.Enabled(fault.KindSecondSpecRetry) {
		t.Error("shrunk plan lost the planted bug")
	}
}

// TestMatrixIsolatesRunFailures: a sweep whose every run blows its host
// deadline must return an empty cell set and one structured failure per
// (benchmark, config, retry, seed) — and keep going instead of aborting.
func TestMatrixIsolatesRunFailures(t *testing.T) {
	opts := QuickMatrixOptions()
	opts.Benchmarks = []string{"labyrinth"}
	opts.Configs = []ConfigID{ConfigB, ConfigC}
	opts.OpsPerThread = 120
	opts.RunDeadline = time.Nanosecond

	m, err := RunMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := len(opts.Benchmarks) * len(opts.Configs) * len(opts.RetryLimits) * len(opts.Seeds)
	if len(m.Failures) != want {
		t.Fatalf("expected %d isolated failures, got %d", want, len(m.Failures))
	}
	for _, fl := range m.Failures {
		if !strings.Contains(fl.Reason, "deadline") {
			t.Fatalf("failure reason does not name the deadline: %s", fl.Reason)
		}
	}
	if len(m.Cells) != 0 {
		t.Fatalf("cells aggregated despite every seed failing: %v", m.Cells)
	}
	var buf bytes.Buffer
	if err := m.WriteFailuresCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n")
	if lines != want { // header + want rows => want newlines after trim
		t.Fatalf("failures CSV has %d data rows, want %d", lines, want)
	}
}

// TestMatrixSurvivesPartialFailures: with a deadline only one benchmark can
// violate, the matrix keeps the healthy cells and records the failures.
func TestMatrixRunCheckedErrorPath(t *testing.T) {
	p := faultTestParams("no-such-benchmark", ConfigB)
	res, fail := RunChecked(p)
	if res != nil || fail == nil {
		t.Fatal("RunChecked did not isolate the error")
	}
	if fail.Benchmark != "no-such-benchmark" || fail.Seed != p.Seed {
		t.Fatalf("failure record mislabeled: %+v", fail)
	}
}
