package harness

import (
	"fmt"

	"repro/internal/coherence"
	clear "repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// WatchdogConfig tunes the forward-progress watchdog. The zero value selects
// the defaults below.
type WatchdogConfig struct {
	// LivelockWindow is the sliding sim-tick window without a single commit
	// (while invocations are in flight) after which the run is declared
	// livelocked. Default 3,000,000 ticks — two orders of magnitude above
	// any observed commit gap in the baseline sweeps.
	LivelockWindow sim.Tick
	// CheckEvery is how often (sim ticks) the event loop pauses to run the
	// detectors. Default 200,000.
	CheckEvery sim.Tick
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.LivelockWindow == 0 {
		c.LivelockWindow = 3_000_000
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 200_000
	}
	return c
}

// WatchdogReport summarises what the watchdog saw during one run — the
// robustness metrics a chaos campaign aggregates.
type WatchdogReport struct {
	// Commits counts committed attempts (all modes).
	Commits uint64
	// Degradations counts commits that degraded to the serialized fallback
	// path — graceful-degradation events under fault pressure.
	Degradations uint64
	// MaxConflictRetries is the worst conflict-counted retry total observed
	// at any commit.
	MaxConflictRetries int
	// MaxCommitLatency is the worst invocation-start-to-commit latency.
	MaxCommitLatency sim.Tick
	// RetryBoundViolations counts detected single-retry-bound violations
	// (each also latches the watchdog error).
	RetryBoundViolations uint64
	// LivelockDetected reports a tripped livelock window, at LivelockTick.
	LivelockDetected bool
	LivelockTick     sim.Tick
	// WaitCycle is the waits-for cycle (core ids) that survived past the
	// ordered-locking guarantee, if one was detected.
	WaitCycle []int
}

type watchCore struct {
	inFlight  bool
	invStart  sim.Tick
	converted bool
	waiting   bool
	waitLine  mem.LineAddr
}

// Watchdog is the forward-progress detector: attached through the machine's
// probe/observer tee seams, it shadows commit progress, the §4.3 conversion
// state, and lock waits; Check (called by Machine.RunGuarded between event
// slices) turns a stalled window, a persistent waits-for cycle, or a
// single-retry-bound violation into a structured error long before the tick
// budget burns out.
//
// Like every probe, the watchdog never mutates simulation state, consults no
// RNG, and schedules nothing — runs are bit-identical with it attached.
type Watchdog struct {
	cfg WatchdogConfig
	eng *sim.Engine
	dir *coherence.Directory

	cores        []watchCore
	active       int
	lastProgress sim.Tick
	prevCycle    string

	report WatchdogReport
	err    error
}

// AttachWatchdog hooks a watchdog into m via AddProbe/AddObserver (composing
// with an oracle, tracer, or telemetry already attached).
func AttachWatchdog(m *cpu.Machine, cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		cfg:   cfg.withDefaults(),
		eng:   m.Engine,
		dir:   m.Dir,
		cores: make([]watchCore, len(m.Cores)),
	}
	m.AddProbe(w)
	m.Dir.AddObserver(w)
	return w
}

// Report returns a copy of the accumulated robustness metrics.
func (w *Watchdog) Report() WatchdogReport {
	r := w.report
	r.WaitCycle = append([]int(nil), w.report.WaitCycle...)
	return r
}

// Err returns the latched watchdog error, if any.
func (w *Watchdog) Err() error { return w.err }

func (w *Watchdog) violate(core int, format string, args ...any) {
	w.report.RetryBoundViolations++
	if w.err == nil {
		w.err = fmt.Errorf("watchdog: core %d: %s (tick %d)",
			core, fmt.Sprintf(format, args...), w.eng.Now())
	}
}

// Check runs the forward-progress detectors; RunGuarded calls it between
// event slices. A non-nil return stops the run.
func (w *Watchdog) Check() error {
	if w.err != nil {
		return w.err
	}
	now := w.eng.Now()
	if w.active > 0 && now-w.lastProgress > w.cfg.LivelockWindow {
		w.report.LivelockDetected = true
		w.report.LivelockTick = now
		if cycle := w.findWaitCycle(); len(cycle) > 0 {
			w.report.WaitCycle = cycle
			w.err = fmt.Errorf("watchdog: waits-for cycle among cores %v survived the ordered-locking guarantee (no commit for %d ticks, tick %d)",
				cycle, now-w.lastProgress, now)
		} else {
			w.err = fmt.Errorf("watchdog: livelock: no commit for %d ticks with %d invocations in flight (tick %d)",
				now-w.lastProgress, w.active, now)
		}
		return w.err
	}
	// A waits-for cycle must never persist even while other cores commit:
	// require the identical cycle (same cores, same lines) across two
	// consecutive checks before declaring it — transient snapshots during a
	// legal lock handoff resolve within one backoff, far below CheckEvery.
	if cycle := w.findWaitCycle(); len(cycle) > 0 {
		fp := w.cycleFingerprint(cycle)
		if fp == w.prevCycle {
			w.report.WaitCycle = cycle
			w.err = fmt.Errorf("watchdog: waits-for cycle among cores %v persisted across %d ticks (tick %d)",
				cycle, w.cfg.CheckEvery, now)
			return w.err
		}
		w.prevCycle = fp
	} else {
		w.prevCycle = ""
	}
	return nil
}

// findWaitCycle walks the lock waits-for graph (core -> holder of the line
// it is retrying to lock) and returns one cycle, rotated so the smallest
// core id leads; nil when the graph is acyclic.
func (w *Watchdog) findWaitCycle() []int {
	n := len(w.cores)
	next := make([]int, n)
	for c := range w.cores {
		next[c] = -1
		if w.cores[c].waiting {
			if h := w.dir.LockedBy(w.cores[c].waitLine); h >= 0 && h != c {
				next[c] = h
			}
		}
	}
	state := make([]int, n) // 0 unvisited, 1 on current path, 2 done
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		var path []int
		c := s
		for c >= 0 && state[c] == 0 {
			state[c] = 1
			path = append(path, c)
			c = next[c]
		}
		if c >= 0 && state[c] == 1 {
			i := 0
			for path[i] != c {
				i++
			}
			return rotateMinFirst(path[i:])
		}
		for _, p := range path {
			state[p] = 2
		}
	}
	return nil
}

func rotateMinFirst(cycle []int) []int {
	minAt := 0
	for i, c := range cycle {
		if c < cycle[minAt] {
			minAt = i
		}
	}
	out := make([]int, 0, len(cycle))
	out = append(out, cycle[minAt:]...)
	out = append(out, cycle[:minAt]...)
	return out
}

func (w *Watchdog) cycleFingerprint(cycle []int) string {
	fp := ""
	for _, c := range cycle {
		fp += fmt.Sprintf("%d@%d;", c, uint64(w.cores[c].waitLine))
	}
	return fp
}

// --- cpu.Probe ---

func (w *Watchdog) OnInvocationStart(core int, progID int) {
	cs := &w.cores[core]
	if !cs.inFlight {
		w.active++
	}
	cs.inFlight = true
	cs.invStart = w.eng.Now()
	cs.converted = false
	cs.waiting = false
	if w.active == 1 && w.report.Commits == 0 {
		// First work in the run: start the progress window now, not at
		// tick zero.
		w.lastProgress = w.eng.Now()
	}
}

func (w *Watchdog) OnAttemptStart(core int, mode cpu.Mode, attempt int, footprint []mem.LineAddr) {
	cs := &w.cores[core]
	cs.waiting = false
	if mode == cpu.ModeSpeculative && cs.converted {
		w.violate(core, "attempt %d is a second plain speculative re-execution after a convertible discovery assessment", attempt)
	}
}

func (w *Watchdog) OnAttemptEnd(info cpu.AttemptEndInfo) {
	cs := &w.cores[info.Core]
	cs.waiting = false
	assessedCL := info.Assessed &&
		(info.Assessment.Mode == clear.RetrySCL || info.Assessment.Mode == clear.RetryNSCL)
	if assessedCL && info.NextMode == clear.RetrySpeculative {
		w.violate(info.Core, "discovery assessed the AR convertible (%v) but the next attempt is speculative",
			info.Assessment.Mode)
	}
	if assessedCL {
		cs.converted = true
	} else if (info.Mode == cpu.ModeSCL || info.Mode == cpu.ModeNSCL) &&
		info.NextMode == clear.RetrySpeculative {
		// Legal rediscovery after a stale-footprint CL failure.
		cs.converted = false
	}
}

func (w *Watchdog) OnCommit(info cpu.CommitInfo) {
	cs := &w.cores[info.Core]
	now := w.eng.Now()
	w.report.Commits++
	if info.Mode == cpu.ModeFallback {
		w.report.Degradations++
	}
	if info.ConflictRetries > w.report.MaxConflictRetries {
		w.report.MaxConflictRetries = info.ConflictRetries
	}
	if cs.inFlight {
		if lat := now - cs.invStart; lat > w.report.MaxCommitLatency {
			w.report.MaxCommitLatency = lat
		}
		cs.inFlight = false
		w.active--
	}
	cs.converted = false
	cs.waiting = false
	w.lastProgress = now
}

func (w *Watchdog) OnMemAccess(core int, addr mem.Addr, value uint64, isWrite bool, mode cpu.Mode) {
}

func (w *Watchdog) OnConflict(core int, line mem.LineAddr, isWrite bool, requester int) {}

// --- coherence.Observer ---

func (w *Watchdog) OnAccess(core int, line mem.LineAddr, isWrite bool, attrs coherence.ReqAttrs, res coherence.AccessResult) {
}

func (w *Watchdog) OnLock(core int, line mem.LineAddr, res coherence.LockResult) {
	cs := &w.cores[core]
	if res.Retry {
		cs.waiting = true
		cs.waitLine = line
	} else {
		cs.waiting = false
	}
}

func (w *Watchdog) OnUnlock(core int, line mem.LineAddr) {}

func (w *Watchdog) OnEvict(core int, line mem.LineAddr) {}

var _ cpu.Probe = (*Watchdog)(nil)
var _ coherence.Observer = (*Watchdog)(nil)
