package harness

import (
	"strings"
	"testing"
	"time"
)

// TestRunCheckedDeadlineRace pins the contract at the deadline/completion
// boundary: whatever wall deadline the caller sets — far past completion,
// far before it, or racing it to the wire — RunChecked produces exactly one
// of (result, failure), never both and never neither. The wall-deadline
// guard only runs between event slices, so a run that finishes its last
// slice just as the deadline expires legitimately wins the race; what must
// never happen is a torn outcome.
func TestRunCheckedDeadlineRace(t *testing.T) {
	p := DefaultRunParams("hashmap", ConfigC)
	p.Cores = 8
	p.OpsPerThread = 40
	p.Seed = 1

	// Measure the undeadlined runtime to aim the racing deadlines at it.
	start := time.Now()
	res, fail := RunChecked(p)
	dur := time.Since(start)
	if fail != nil || res == nil {
		t.Fatalf("reference run failed: %v", fail)
	}

	deadlines := []time.Duration{
		time.Nanosecond, // expired before the first slice
		dur / 16,
		dur / 4,
		dur / 2,
		dur * 3 / 4,
		dur, // dead heat
		dur * 5 / 4,
		dur * 2,
		10 * time.Second, // effectively unbounded
	}
	var succeeded, deadlined int
	for _, d := range deadlines {
		pd := p
		pd.Deadline = d
		res, fail := RunChecked(pd)
		if (res == nil) == (fail == nil) {
			t.Fatalf("deadline %v: res=%v fail=%v — want exactly one non-nil", d, res != nil, fail != nil)
		}
		if fail != nil {
			if !strings.Contains(fail.Reason, "wall deadline") {
				t.Fatalf("deadline %v: failure is not the deadline: %s", d, fail.Reason)
			}
			deadlined++
			continue
		}
		// A completed run must be the full, verified summary — identical to
		// the undeadlined one (the guard is digest-transparent).
		if res.Stats == nil || res.Stats.Cycles == 0 {
			t.Fatalf("deadline %v: survivor carries no stats", d)
		}
		if res.Stats.Digest() != pdReferenceDigest(t, p) {
			t.Fatalf("deadline %v: survivor digest differs from undeadlined run", d)
		}
		succeeded++
	}
	// The generous deadline must always complete; both outcomes occurring at
	// least somewhere in the sweep is expected but the 1ns case may still
	// complete on a fast host (completion wins inside the first slice), so
	// only the success side is asserted.
	if succeeded == 0 {
		t.Fatal("no deadline in the sweep allowed the run to complete")
	}
}

// pdReferenceDigest memoizes the undeadlined digest of p for the race test.
var refDigest struct {
	have   bool
	digest string
}

func pdReferenceDigest(t *testing.T, p RunParams) string {
	t.Helper()
	if refDigest.have {
		return refDigest.digest
	}
	res, fail := RunChecked(p)
	if fail != nil {
		t.Fatalf("reference digest run failed: %v", fail)
	}
	refDigest.have = true
	refDigest.digest = res.Stats.Digest()
	return refDigest.digest
}
