package harness

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestMetricsDigestTransparency asserts the metrics collector is a pure
// observer, like the tracer and the oracle: the same run with and without a
// registry attached must produce bit-identical statistics. The collector
// consults no RNG, schedules no events, and mutates nothing — any
// divergence means instrumentation perturbed the run it was measuring.
func TestMetricsDigestTransparency(t *testing.T) {
	for _, bench := range []string{"intruder", "hashmap"} {
		for _, cfg := range AllConfigs {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.String(), func(t *testing.T) {
				p := traceParams(bench, cfg)
				plain, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				p.Metrics = metrics.NewRegistry()
				instrumented, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				if d1, d2 := digestOf(plain), digestOf(instrumented); d1 != d2 {
					t.Fatalf("metrics perturbed the run:\n off: %s\n on:  %s", d1, d2)
				}
				if p.Metrics.Instruments().Commits[stats.CommitSpeculative].Value() == 0 &&
					p.Metrics.Instruments().Commits[stats.CommitFallback].Value() == 0 {
					t.Fatal("registry observed no commits")
				}
			})
		}
	}
}

// TestMetricsCoexistence attaches every observer at once — oracle, tracer,
// telemetry, and metrics all share the probe/observer tee — and asserts the
// digest still matches a bare run while each collector does its job.
func TestMetricsCoexistence(t *testing.T) {
	p := traceParams("hashmap", ConfigC)
	plain, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.Oracle = true
	p.TraceWriter = &buf
	p.Telemetry = trace.NewLive()
	p.Metrics = metrics.NewRegistry()
	all, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := digestOf(plain), digestOf(all); d1 != d2 {
		t.Fatalf("full observer stack perturbed the run:\n off: %s\n on:  %s", d1, d2)
	}
	if buf.Len() == 0 {
		t.Fatal("tracer wrote nothing with metrics attached")
	}
	ins := p.Metrics.Instruments()
	if ins.RunsFinished.Value() != 1 || ins.ActiveRuns.Value() != 0 {
		t.Fatalf("run lifecycle counters off: started=%d finished=%d active=%d",
			ins.RunsStarted.Value(), ins.RunsFinished.Value(), ins.ActiveRuns.Value())
	}
}

// TestMetricsMatchStats cross-checks the registry's event counters against
// the statistics collector over the same run: per-mode commits, the abort
// total, and invocations must agree exactly, and the derived histograms
// must have consistent populations (every retried invocation contributes
// one retry-to-commit observation; every attempt ends in exactly one
// commit- or abort-duration observation).
func TestMetricsMatchStats(t *testing.T) {
	for _, bench := range []string{"sorted-list", "intruder", "hashmap"} {
		for _, cfg := range AllConfigs {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.String(), func(t *testing.T) {
				p := traceParams(bench, cfg)
				p.Metrics = metrics.NewRegistry()
				res, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				ins := p.Metrics.Instruments()
				var commits uint64
				for m := stats.CommitMode(0); m < stats.NumCommitModes; m++ {
					got := ins.Commits[m].Value()
					if got != res.Stats.CommitsByMode[m] {
						t.Errorf("commits[%s]: metrics say %d, stats say %d", m, got, res.Stats.CommitsByMode[m])
					}
					commits += got
				}
				if commits != res.Stats.Commits {
					t.Errorf("total commits: metrics say %d, stats say %d", commits, res.Stats.Commits)
				}
				var aborts uint64
				for _, c := range ins.Aborts {
					aborts += c.Value()
				}
				if aborts != res.Stats.Aborts {
					t.Errorf("total aborts: metrics say %d, stats say %d", aborts, res.Stats.Aborts)
				}
				if got := ins.Invocations.Value(); got != res.Stats.Commits {
					t.Errorf("invocations: metrics say %d, stats say %d commits", got, res.Stats.Commits)
				}
				if got := ins.InvocationTicks.Count(); got != res.Stats.Commits {
					t.Errorf("invocation-latency population %d, want %d", got, res.Stats.Commits)
				}
				// Attempt durations partition into commit/abort outcomes.
				// Explicit-fallback episodes abort without opening an attempt
				// span, so the abort-duration population may undercount the
				// abort total but never exceed it.
				if got := ins.AttemptTicksCommit.Count(); got != res.Stats.Commits {
					t.Errorf("commit-duration population %d, want %d", got, res.Stats.Commits)
				}
				if got := ins.AttemptTicksAbort.Count(); got > res.Stats.Aborts {
					t.Errorf("abort-duration population %d exceeds %d aborts", got, res.Stats.Aborts)
				}
				if got, limit := ins.RetryToCommitTicks.Count(), res.Stats.Commits; got > limit {
					t.Errorf("retry-to-commit population %d exceeds %d commits", got, limit)
				}
				if aborts > 0 && ins.RetryToCommitTicks.Count() == 0 {
					t.Error("aborts occurred but no retry-to-commit latency was observed")
				}
			})
		}
	}
}

// TestProfileCrossCheck is the acceptance criterion of the attribution
// profiler: build the offline contention profile from a real 4-core
// contention trace and require its totals — commits per mode, aborts per
// reason bucket, and the attribution-edge counts — to exactly cross-check
// against the run's statistics. Every abort the stats collector counted
// must appear in the abort-attribution table, attributed to some culprit.
func TestProfileCrossCheck(t *testing.T) {
	for _, bench := range []string{"hashmap", "intruder", "sorted-list"} {
		for _, cfg := range AllConfigs {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.String(), func(t *testing.T) {
				p := DefaultRunParams(bench, cfg)
				p.Cores = 4
				p.OpsPerThread = 48
				p.Seed = 11
				var buf bytes.Buffer
				p.TraceWriter = &buf
				res, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				evs, err := rd.ReadAll()
				if err != nil {
					t.Fatal(err)
				}
				prof := trace.BuildProfile(rd.Meta(), evs)
				if err := prof.CrossCheck(res.Stats); err != nil {
					t.Fatal(err)
				}
				if res.Stats.Aborts > 0 && len(prof.Edges) == 0 {
					t.Fatalf("%d aborts but empty attribution table", res.Stats.Aborts)
				}
			})
		}
	}
}
