package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/runstore"
)

// mustPolicy parses a policy spec or fails the test.
func mustPolicy(t *testing.T, s string) policy.Spec {
	t.Helper()
	spec, err := policy.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// specKeyed lists the RunParams fields that participate in the cache key
// (RunParams.Spec). specHostSide lists the fields that are deliberately
// excluded because they never change the simulated outcome. Every RunParams
// field must appear in exactly one of the two lists.
var (
	specKeyed = []string{
		"Benchmark", "Config", "Cores", "OpsPerThread", "RetryLimit", "Seed",
		"MaxTicks", "SLE", "Oracle", "Mesh",
		"DisableDiscoveryContinuation", "SCLLockAllReads",
		"ERTEntries", "ALTEntries", "CRTEntries", "CRTWays",
		"Watchdog", "FaultPlan", "Policy",
	}
	specHostSide = []string{
		"TraceWriter", "TraceMem", "TraceDir", "Telemetry", "Metrics", "Deadline",
	}
)

// TestRunParamsSpecCoverage pins the RunParams field set so a new field
// cannot silently escape the cache key: adding one fails this test until it
// is classified as keyed (update RunParams.Spec and bump runstore.SpecVersion)
// or host-side (add it to specHostSide with a justification).
func TestRunParamsSpecCoverage(t *testing.T) {
	known := make(map[string]bool)
	for _, n := range specKeyed {
		known[n] = true
	}
	for _, n := range specHostSide {
		if known[n] {
			t.Fatalf("field %q listed as both keyed and host-side", n)
		}
		known[n] = true
	}
	typ := reflect.TypeOf(RunParams{})
	seen := make(map[string]bool)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		seen[name] = true
		if !known[name] {
			t.Errorf("new RunParams field %q: teach RunParams.Spec about it (and bump runstore.SpecVersion) or list it in specHostSide", name)
		}
	}
	for name := range known {
		if !seen[name] {
			t.Errorf("RunParams field %q no longer exists: update the spec coverage lists (and bump runstore.SpecVersion if it was keyed)", name)
		}
	}
}

// TestRunSpecGolden pins the cache key of the default hashmap/C run. It must
// match the canonical-encoding golden in internal/runstore: if either the
// Spec mapping or the canonical encoding changes, this fails and
// runstore.SpecVersion (or the salt schema version) must be bumped.
func TestRunSpecGolden(t *testing.T) {
	p := DefaultRunParams("hashmap", ConfigC)
	spec := p.Spec()
	if spec.Salt != "stats-digest/v1" {
		t.Fatalf("salt %q: stats.DigestSchemaVersion changed — verify old cache entries are orphaned and update this golden", spec.Salt)
	}
	const wantKey = "97052b078269df342b86310f7a3c4d30450c962f91b9e7b4f35e01d51dc8ba07"
	if got := spec.Key(); got != wantKey {
		t.Fatalf("cache key of DefaultRunParams(hashmap, C) changed:\n got %s\nwant %s\ncanonical:\n%s\nIf the change is intentional, bump runstore.SpecVersion and refresh the goldens.",
			got, wantKey, spec.Canonical())
	}

	// Watchdog and fault-plan attachments must change the key.
	pw := p
	pw.Watchdog = &WatchdogConfig{}
	if pw.Spec().Key() == wantKey {
		t.Fatal("attaching a watchdog did not change the cache key")
	}

	// Policy default-elision: the default policy must not touch the key —
	// every record cached before policies existed keeps resolving — while a
	// non-default policy must produce a distinct one.
	pp := p
	pp.Policy = mustPolicy(t, "clear")
	if got := pp.Spec().Key(); got != wantKey {
		t.Fatalf("explicit default policy changed the cache key: %s", got)
	}
	pp.Policy = mustPolicy(t, "retry:n=2")
	if pp.Spec().Key() == wantKey {
		t.Fatal("non-default policy did not change the cache key")
	}
	if got := pp.Spec().Policy; got != "retry:backoff=exp,n=2" {
		t.Fatalf("spec policy rendering %q, want canonical form", got)
	}
}

func TestRunCachedRoundTrip(t *testing.T) {
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultRunParams("hashmap", ConfigC)
	p.Cores = 4
	p.OpsPerThread = 10

	cold, fail, hit := RunCheckedCached(st, p)
	if fail != nil {
		t.Fatalf("cold run failed: %v", fail)
	}
	if hit {
		t.Fatal("cold run reported a cache hit")
	}
	warm, fail, hit := RunCheckedCached(st, p)
	if fail != nil {
		t.Fatalf("warm run failed: %v", fail)
	}
	if !hit {
		t.Fatal("second identical run was not served from the cache")
	}
	if cold.Stats.Digest() != warm.Stats.Digest() {
		t.Fatalf("cached stats digest %s != simulated %s", warm.Stats.Digest(), cold.Stats.Digest())
	}
	if cold.Dir != warm.Dir {
		t.Fatalf("cached directory stats diverged:\n got %+v\nwant %+v", warm.Dir, cold.Dir)
	}
	if cold.Energy != warm.Energy {
		t.Fatalf("cached energy %v != simulated %v", warm.Energy, cold.Energy)
	}

	// A traced run is not cacheable: it must simulate even with a warm store.
	pt := p
	pt.TraceWriter = &bytes.Buffer{}
	if pt.Cacheable() {
		t.Fatal("traced run reported cacheable")
	}
	if _, _, hit := RunCheckedCached(st, pt); hit {
		t.Fatal("traced run was served from the cache")
	}
}

// matrixCSV runs the sweep and renders its cell CSV.
func matrixCSV(t *testing.T, opts MatrixOptions) (*Matrix, []byte) {
	t.Helper()
	m, err := RunMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Failures) > 0 {
		t.Fatalf("sweep had %d failures: %v", len(m.Failures), m.Failures[0])
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

func smallMatrixOptions() MatrixOptions {
	opts := QuickMatrixOptions()
	opts.Benchmarks = []string{"mwobject", "bitcoin"}
	opts.Cores = 4
	opts.OpsPerThread = 20
	return opts
}

// TestMatrixWarmCacheByteIdentical is the memoization contract: a second
// sweep over a warm store is served entirely from the cache and produces the
// byte-identical cell CSV — the property the CI round-trip job asserts on the
// full quick matrix.
func TestMatrixWarmCacheByteIdentical(t *testing.T) {
	opts := smallMatrixOptions()
	_, refCSV := matrixCSV(t, opts) // no store: the uncached reference

	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	total := len(opts.Benchmarks) * len(opts.Configs) * len(opts.RetryLimits) * len(opts.Seeds)

	coldM, coldCSV := matrixCSV(t, opts)
	if coldM.CacheHits != 0 || coldM.CacheMisses != total {
		t.Fatalf("cold sweep: hits=%d misses=%d, want 0/%d", coldM.CacheHits, coldM.CacheMisses, total)
	}
	warmM, warmCSV := matrixCSV(t, opts)
	if warmM.CacheMisses != 0 || warmM.CacheHits != total {
		t.Fatalf("warm sweep: hits=%d misses=%d, want %d/0", warmM.CacheHits, warmM.CacheMisses, total)
	}
	if !bytes.Equal(refCSV, coldCSV) {
		t.Fatal("cold cached sweep CSV differs from the uncached reference")
	}
	if !bytes.Equal(refCSV, warmCSV) {
		t.Fatal("warm cached sweep CSV differs from the uncached reference")
	}
}

// TestMatrixResumeByteIdentical is the resume contract: a sweep cancelled
// mid-flight and restarted with the same store recomputes only what is
// missing and still produces the byte-identical matrix.
func TestMatrixResumeByteIdentical(t *testing.T) {
	opts := smallMatrixOptions()
	_, refCSV := matrixCSV(t, opts) // uncached reference

	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// First pass: cancelled before dispatch finishes. A pre-closed Cancel
	// channel makes every dispatch a coin flip (select picks randomly between
	// the closed channel and the job send), so a random prefix of the cells
	// runs and lands in the store.
	cancelled := opts
	cancelled.Store = st
	cancel := make(chan struct{})
	close(cancel)
	cancelled.Cancel = cancel
	if _, err := RunMatrix(cancelled); err != nil {
		t.Fatal(err)
	}

	// Resume: same store, no cancellation. Only the cells the first pass
	// missed simulate; the result must be byte-identical to the reference.
	resumed := opts
	resumed.Store = st
	m, resumedCSV := matrixCSV(t, resumed)
	total := len(opts.Benchmarks) * len(opts.Configs) * len(opts.RetryLimits) * len(opts.Seeds)
	if m.CacheHits+m.CacheMisses != total {
		t.Fatalf("resumed sweep consulted the cache %d times, want %d", m.CacheHits+m.CacheMisses, total)
	}
	if !bytes.Equal(refCSV, resumedCSV) {
		t.Fatal("resumed sweep CSV differs from the uninterrupted reference")
	}
}

// TestBetterAggregateTieBreak pins the deterministic retry-limit selection:
// fewer cycles wins, and equal cycles resolve to the lowest retry limit
// regardless of the (scheduling-dependent) arrival order.
func TestBetterAggregateTieBreak(t *testing.T) {
	agg := func(cycles float64, retry int) *Aggregate {
		return &Aggregate{Cycles: cycles, BestRetryLimit: retry}
	}
	cases := []struct {
		name      string
		cur, cand *Aggregate
		want      bool
	}{
		{"first result always wins", nil, agg(100, 8), true},
		{"fewer cycles wins", agg(100, 1), agg(90, 8), true},
		{"more cycles loses", agg(100, 8), agg(110, 1), false},
		{"tie: lower retry wins", agg(100, 8), agg(100, 2), true},
		{"tie: higher retry loses", agg(100, 2), agg(100, 8), false},
		{"tie: equal retry is stable", agg(100, 4), agg(100, 4), false},
	}
	for _, c := range cases {
		if got := betterAggregate(c.cur, c.cand); got != c.want {
			t.Errorf("%s: betterAggregate=%v, want %v", c.name, got, c.want)
		}
	}
}
