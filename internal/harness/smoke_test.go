package harness

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// TestSmokeAllBenchmarks runs every benchmark under every configuration at
// small scale with strict cache/directory consistency assertions enabled,
// and requires the workload invariants to hold — the whole machine
// (coherence, HTM, CLEAR, fallback) exercised end to end.
func TestSmokeAllBenchmarks(t *testing.T) {
	cpu.StrictChecks = true
	t.Cleanup(func() { cpu.StrictChecks = false })
	for _, name := range workload.Names() {
		for _, cfg := range AllConfigs {
			name, cfg := name, cfg
			t.Run(name+"/"+cfg.String(), func(t *testing.T) {
				p := DefaultRunParams(name, cfg)
				p.Cores = 8
				p.OpsPerThread = 40
				res, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				wantCommits := uint64(p.Cores * p.OpsPerThread)
				if res.Stats.Commits != wantCommits {
					t.Fatalf("commits = %d, want %d", res.Stats.Commits, wantCommits)
				}
				if res.Stats.Cycles == 0 {
					t.Fatal("no cycles elapsed")
				}
			})
		}
	}
}
