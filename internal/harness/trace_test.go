package harness

import (
	"bytes"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// traceParams is the shared small-run configuration of the trace tests.
func traceParams(bench string, cfg ConfigID) RunParams {
	p := DefaultRunParams(bench, cfg)
	p.Cores = 8
	p.OpsPerThread = 32
	p.Seed = 7
	return p
}

// TestTracerDigestTransparency asserts the tracer is a pure observer: the
// same (benchmark, configuration, seed) run with and without the tracer
// attached must produce bit-identical statistics — the mirror of
// TestOracleDigestTransparency for the observability layer. The tracer
// consults no RNG, schedules no events, and mutates nothing, so any
// divergence here means tracing perturbed the run it was recording.
func TestTracerDigestTransparency(t *testing.T) {
	for _, bench := range []string{"intruder", "hashmap", "labyrinth"} {
		for _, cfg := range AllConfigs {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.String(), func(t *testing.T) {
				p := traceParams(bench, cfg)
				plain, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				p.TraceWriter = &buf
				p.TraceMem = true
				p.TraceDir = true
				traced, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				d1, d2 := digestOf(plain), digestOf(traced)
				if d1 != d2 {
					t.Fatalf("tracer perturbed the run:\n off: %s\n on:  %s", d1, d2)
				}
				if buf.Len() == 0 {
					t.Fatal("tracer wrote nothing")
				}
			})
		}
	}
}

// TestTraceDeterminism asserts the binary stream itself is deterministic:
// the same (benchmark, configuration, seed) recorded twice must produce
// byte-identical trace files. The encoding contains no host-side state
// (no wall-clock timestamps, pointers, or map-ordered sections), so any
// divergence means nondeterminism leaked into either the simulation or the
// encoder.
func TestTraceDeterminism(t *testing.T) {
	for _, cfg := range []ConfigID{ConfigB, ConfigC, ConfigW} {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			record := func() []byte {
				p := traceParams("sorted-list", cfg)
				var buf bytes.Buffer
				p.TraceWriter = &buf
				p.TraceMem = true
				p.TraceDir = true
				if _, err := Run(p); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			a, b := record(), record()
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed, different trace bytes (len %d vs %d)", len(a), len(b))
			}
		})
	}
}

// TestTraceOracleCoexistence asserts the tracer and the invariant oracle
// can share the probe/observer seams (the tee path): attaching both leaves
// the statistics digest unchanged and both do their jobs.
func TestTraceOracleCoexistence(t *testing.T) {
	p := traceParams("hashmap", ConfigC)
	plain, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.Oracle = true
	p.TraceWriter = &buf
	p.Telemetry = trace.NewLive()
	both, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := digestOf(plain), digestOf(both); d1 != d2 {
		t.Fatalf("oracle+tracer+telemetry perturbed the run:\n off: %s\n on:  %s", d1, d2)
	}
	if buf.Len() == 0 {
		t.Fatal("tracer wrote nothing with oracle attached")
	}
	snap := p.Telemetry.Snapshot()
	if snap.Commits == 0 || snap.RunsFinished != 1 {
		t.Fatalf("telemetry did not observe the run: %+v", snap)
	}
}

// TestTraceMatchesStats is the acceptance cross-check: the per-mode commit
// counts reconstructed from the trace stream must exactly equal the
// internal/stats aggregates of the same run, and the abort total must
// match. This pins the event stream to the ground truth the paper's
// figures are built from.
func TestTraceMatchesStats(t *testing.T) {
	for _, bench := range []string{"sorted-list", "intruder", "hashmap"} {
		for _, cfg := range AllConfigs {
			bench, cfg := bench, cfg
			t.Run(bench+"/"+cfg.String(), func(t *testing.T) {
				p := traceParams(bench, cfg)
				var buf bytes.Buffer
				p.TraceWriter = &buf
				res, err := Run(p)
				if err != nil {
					t.Fatal(err)
				}
				rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				evs, err := rd.ReadAll()
				if err != nil {
					t.Fatal(err)
				}
				tl := trace.BuildTimeline(rd.Meta(), evs)
				got := tl.CommitsByMode()
				var total int
				for m := stats.CommitSpeculative; m < stats.NumCommitModes; m++ {
					want := int(res.Stats.CommitsByMode[m])
					if got[m] != want {
						t.Errorf("commits[%s]: trace says %d, stats say %d", m, got[m], want)
					}
					total += got[m]
				}
				if total != int(res.Stats.Commits) {
					t.Errorf("total commits: trace says %d, stats say %d", total, res.Stats.Commits)
				}
				// Abort events (including the no-attempt explicit-fallback
				// episodes, which open no span) must equal the stats total.
				var aborts int
				for _, e := range evs {
					if e.Kind == trace.KindAttemptEnd {
						aborts++
					}
				}
				if aborts != int(res.Stats.Aborts) {
					t.Errorf("total aborts: trace says %d, stats say %d", aborts, res.Stats.Aborts)
				}
				// Invocation events must equal the commit total (every
				// invocation commits exactly once).
				var invokes int
				for _, e := range evs {
					if e.Kind == trace.KindInvocationStart {
						invokes++
					}
				}
				if invokes != int(res.Stats.Commits) {
					t.Errorf("invocations: trace says %d, stats say %d commits", invokes, res.Stats.Commits)
				}
			})
		}
	}
}
