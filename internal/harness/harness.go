// Package harness runs the paper's experiments: it assembles a simulated
// machine per (benchmark, configuration) pair, executes the region of
// interest, verifies workload invariants, aggregates multi-seed statistics
// with the paper's trimmed-mean protocol, and formats every table and figure
// of the evaluation section (§6–§7).
package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/check"
	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ConfigID selects one of the four evaluated configurations (§7).
type ConfigID int

const (
	// ConfigB: baseline requester-wins HTM.
	ConfigB ConfigID = iota
	// ConfigP: PowerTM.
	ConfigP
	// ConfigC: CLEAR over requester-wins.
	ConfigC
	// ConfigW: CLEAR over PowerTM.
	ConfigW
	// ConfigM: the §2.2 non-speculative baseline — MAD/MCAS-style static
	// cacheline locking for ARs whose footprint is known a priori,
	// requester-wins speculation for the rest. Not part of the paper's
	// four-way comparison; used by the static-locking experiment.
	ConfigM
	NumConfigs
)

// AllConfigs lists the four configurations in presentation order (B P C W).
var AllConfigs = []ConfigID{ConfigB, ConfigP, ConfigC, ConfigW}

func (c ConfigID) String() string {
	switch c {
	case ConfigB:
		return "B"
	case ConfigP:
		return "P"
	case ConfigC:
		return "C"
	case ConfigW:
		return "W"
	case ConfigM:
		return "M"
	}
	return "?"
}

// Description returns the long name used in figure legends.
func (c ConfigID) Description() string {
	switch c {
	case ConfigB:
		return "requester-wins"
	case ConfigP:
		return "PowerTM"
	case ConfigC:
		return "CLEAR/requester-wins"
	case ConfigW:
		return "CLEAR/PowerTM"
	case ConfigM:
		return "static cacheline locking (MAD/MCAS-like)"
	}
	return "unknown"
}

// RunParams fully determines one simulation run.
type RunParams struct {
	Benchmark    string
	Config       ConfigID
	Cores        int
	OpsPerThread int
	RetryLimit   int
	Seed         uint64
	// MaxTicks bounds the run; exceeding it is reported as an error
	// (livelock guard).
	MaxTicks sim.Tick
	// SLE selects in-core speculation instead of HTM (§4.1 vs §4.2).
	SLE bool
	// Oracle attaches the internal/check runtime invariant oracle to the
	// run; a violation is returned as an error. Off by default (the oracle
	// is digest-transparent but costs host time).
	Oracle bool
	// Mesh swaps the crossbar for a 2D mesh interconnect.
	Mesh bool
	// Ablations.
	DisableDiscoveryContinuation bool
	SCLLockAllReads              bool
	// Table sizing overrides (zero = paper values).
	ERTEntries, ALTEntries, CRTEntries, CRTWays int
	// TraceWriter, when non-nil, attaches the internal/trace binary event
	// tracer and streams the run's event records into it. The tracer is
	// digest-transparent: statistics are bit-identical with or without it.
	TraceWriter io.Writer
	// TraceMem / TraceDir enable the verbose per-memory-operation and
	// per-directory-transaction event streams (off by default; AR, lock,
	// and conflict events are always recorded when TraceWriter is set).
	TraceMem bool
	TraceDir bool
	// Telemetry, when non-nil, attaches the lock-free live counter
	// collector (safe to share across concurrent runs).
	Telemetry *trace.Live
	// Metrics, when non-nil, attaches the internal/metrics instrument set
	// (counters, gauges, log2 histograms) to the run through the same tee
	// seams. The registry may be shared across concurrent runs; series
	// aggregate. Digest-transparent, like the tracer and telemetry.
	Metrics *metrics.Registry
	// Deadline bounds the *host* wall time of the run; zero means no
	// deadline. Exceeding it stops the event loop with an error — the sweep
	// hardening that keeps one pathological cell from hanging a matrix.
	Deadline time.Duration
	// Watchdog, when non-nil, attaches the forward-progress watchdog with
	// the given configuration (zero value = defaults); livelocks, persistent
	// waits-for cycles, and single-retry-bound violations become run errors.
	Watchdog *WatchdogConfig
	// FaultPlan, when non-nil, attaches the internal/fault injector driven
	// by the plan. A nil plan keeps every seam detached (zero cost); an
	// empty plan attaches but fires nothing and leaves digests byte-
	// identical.
	FaultPlan *fault.Plan
	// Policy selects the retry policy (internal/policy) that owns the §4.3
	// next-mode decision. The zero value is the paper-exact default, which
	// reproduces the pre-policy simulator bit-identically — so it is elided
	// from cache keys and digests alike.
	Policy policy.Spec
}

// DefaultRunParams returns laptop-scale defaults: the paper's 32 cores with
// a workload sized to finish in well under a second of host time.
func DefaultRunParams(benchmark string, config ConfigID) RunParams {
	return RunParams{
		Benchmark:    benchmark,
		Config:       config,
		Cores:        32,
		OpsPerThread: 120,
		RetryLimit:   4,
		Seed:         1,
		MaxTicks:     400_000_000,
	}
}

// SystemConfig translates run parameters into the machine configuration.
func (p RunParams) SystemConfig() cpu.SystemConfig {
	cfg := cpu.DefaultSystemConfig()
	cfg.Cores = p.Cores
	cfg.RetryLimit = p.RetryLimit
	cfg.CLEAR = p.Config == ConfigC || p.Config == ConfigW
	cfg.PowerTM = p.Config == ConfigP || p.Config == ConfigW
	cfg.Seed = p.Seed
	cfg.SLE = p.SLE
	cfg.Mesh = p.Mesh
	cfg.StaticLocking = p.Config == ConfigM
	cfg.DisableDiscoveryContinuation = p.DisableDiscoveryContinuation
	cfg.SCLLockAllReads = p.SCLLockAllReads
	cfg.ERTEntries = p.ERTEntries
	cfg.ALTEntries = p.ALTEntries
	cfg.CRTEntries = p.CRTEntries
	cfg.CRTWays = p.CRTWays
	cfg.Policy = p.Policy
	return cfg
}

// RunResult carries everything one simulation produced.
type RunResult struct {
	Params RunParams
	Stats  *stats.Run
	Dir    coherence.Stats
	Energy float64
	// Faults reports what the injector fired (nil without a FaultPlan).
	Faults *fault.Stats
	// Watch is the watchdog's robustness report (nil without a Watchdog).
	Watch *WatchdogReport
}

// Run executes one simulation end to end: setup, execution, verification.
// A verification failure is returned as an error — atomicity was broken.
func Run(p RunParams) (*RunResult, error) {
	bench, memory, rng, err := setupWorkload(p)
	if err != nil {
		return nil, err
	}
	machine, err := cpu.NewMachine(p.SystemConfig(), memory)
	if err != nil {
		return nil, err
	}
	feeds := make([]cpu.InvocationSource, p.Cores)
	for tid := 0; tid < p.Cores; tid++ {
		feeds[tid] = bench.Source(tid, rng.Split(), p.OpsPerThread)
	}
	machine.AttachFeeds(feeds)
	// Attachment order matters: the oracle claims the probe/observer slots
	// with Set*, so it must attach first; the tracer and telemetry attach
	// afterwards through the Add* tee seams.
	var oracle *check.Oracle
	if p.Oracle {
		oracle = check.Attach(machine)
	}
	var tracer *trace.Tracer
	if p.TraceWriter != nil {
		tracer, err = trace.Attach(machine, p.TraceWriter, trace.Options{
			Benchmark:   p.Benchmark,
			Config:      p.Config.String(),
			Cores:       p.Cores,
			Seed:        p.Seed,
			ARNames:     arNames(bench),
			MemAccesses: p.TraceMem,
			DirAccesses: p.TraceDir,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: attach tracer: %w", err)
		}
	}
	if p.Telemetry != nil {
		machine.AddProbe(p.Telemetry)
		p.Telemetry.RunStarted()
		defer p.Telemetry.RunFinished()
	}
	if p.Metrics != nil {
		metrics.Attach(machine, p.Metrics)
		ins := p.Metrics.Instruments()
		ins.RunsStarted.Inc()
		ins.ActiveRuns.Add(1)
		defer func() {
			ins.RunsFinished.Inc()
			ins.ActiveRuns.Add(-1)
		}()
	}
	var dog *Watchdog
	if p.Watchdog != nil {
		dog = AttachWatchdog(machine, *p.Watchdog)
	}
	// The injector attaches last: hooks above observe the (perturbed) run,
	// and the injector's recorder feeds fault events into the tracer.
	inj := fault.Attach(machine, p.FaultPlan)
	if inj != nil && tracer != nil {
		inj.SetRecorder(tracer)
	}

	var guard func() error
	var every sim.Tick
	if dog != nil {
		every = dog.cfg.CheckEvery
		guard = dog.Check
	}
	if p.Deadline > 0 {
		if every == 0 {
			every = 200_000
		}
		inner := guard
		start := time.Now()
		guard = func() error {
			if time.Since(start) > p.Deadline {
				return fmt.Errorf("wall deadline %s exceeded at tick %d", p.Deadline, machine.Engine.Now())
			}
			if inner != nil {
				return inner()
			}
			return nil
		}
	}
	if err := machine.RunGuarded(p.MaxTicks, every, guard); err != nil {
		return nil, fmt.Errorf("harness: %s/%s seed %d: %w", p.Benchmark, p.Config, p.Seed, err)
	}
	if dog != nil {
		// One final sweep so a violation in the last event slice is not
		// lost.
		if err := dog.Check(); err != nil {
			return nil, fmt.Errorf("harness: %s/%s seed %d: %w", p.Benchmark, p.Config, p.Seed, err)
		}
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return nil, fmt.Errorf("harness: trace write: %w", err)
		}
	}
	if oracle != nil {
		oracle.Finish()
		if err := oracle.Err(); err != nil {
			return nil, fmt.Errorf("harness: %s/%s seed %d: %w", p.Benchmark, p.Config, p.Seed, err)
		}
	}
	if err := bench.Verify(memory); err != nil {
		return nil, fmt.Errorf("harness: %s/%s seed %d: verification failed: %w",
			p.Benchmark, p.Config, p.Seed, err)
	}
	res := &RunResult{
		Params: p,
		Stats:  machine.Stats,
		Dir:    machine.Dir.Stats,
	}
	if inj != nil {
		fs := inj.Stats()
		res.Faults = &fs
	}
	if dog != nil {
		wr := dog.Report()
		res.Watch = &wr
	}
	res.Energy = stats.DefaultEnergyModel().Energy(machine.Stats, machine.Dir.Stats, p.Cores)
	return res, nil
}

// memorySize is the simulated physical memory every run is built over.
const memorySize = 0x100000

// setupWorkload builds the benchmark, the pre-run memory image, and the
// workload RNG, positioned exactly where Run consumes it (setup done, feed
// splits not yet taken). Both Run and SetupImage go through it, so the two
// can never drift.
func setupWorkload(p RunParams) (workload.Benchmark, *mem.Memory, *sim.RNG, error) {
	bench, err := workload.New(p.Benchmark)
	if err != nil {
		return nil, nil, nil, err
	}
	memory := mem.NewMemory(memorySize)
	rng := sim.NewRNG(p.Seed)
	if err := bench.Setup(memory, rng, p.Cores); err != nil {
		return nil, nil, nil, fmt.Errorf("harness: setup %s: %w", p.Benchmark, err)
	}
	return bench, memory, rng, nil
}

// SetupImage replays the deterministic pre-run phase of p — workload setup
// plus invocation-source generation, which benchmarks use to pre-allocate
// nodes host-side — on a fresh memory and returns a reader over the image
// the simulation starts from. Offline checkers (the clearchaos -axiom
// per-run axiomatic check) use it to resolve loads of never-overwritten
// locations without re-running the simulation.
func SetupImage(p RunParams) (func(mem.Addr) uint64, error) {
	bench, memory, rng, err := setupWorkload(p)
	if err != nil {
		return nil, err
	}
	// Same call sequence as Run: machine construction allocates from memory
	// (the fallback-lock line), Source may write memory (node pools), and
	// the RNG split order pins what it writes where.
	if _, err := cpu.NewMachine(p.SystemConfig(), memory); err != nil {
		return nil, err
	}
	for tid := 0; tid < p.Cores; tid++ {
		bench.Source(tid, rng.Split(), p.OpsPerThread)
	}
	return memory.ReadWord, nil
}

// arNames collects the AR id -> name map of a benchmark for trace headers.
func arNames(bench workload.Benchmark) map[int]string {
	names := make(map[int]string)
	for _, prog := range bench.ARs() {
		names[prog.ID] = prog.Name
	}
	return names
}
