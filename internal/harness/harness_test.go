package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTrimKeep(t *testing.T) {
	cases := []struct {
		cycles []float64
		want   int // kept count
	}{
		{[]float64{100}, 1},
		{[]float64{100, 200}, 2},
		{[]float64{100, 110, 5000}, 2},                // drop 1 of 3
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 7}, // drop 3 of 10 (the paper's rule)
	}
	for _, c := range cases {
		keep := trimKeep(c.cycles)
		if len(keep) != c.want {
			t.Errorf("trimKeep(%v) kept %d, want %d", c.cycles, len(keep), c.want)
		}
	}
	// The outlier is the one dropped.
	keep := trimKeep([]float64{100, 110, 5000})
	for _, idx := range keep {
		if idx == 2 {
			t.Fatal("outlier survived the trim")
		}
	}
}

func TestGeomeanAndMean(t *testing.T) {
	if g := geomean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean(1,4) = %v, want 2", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := geomean([]float64{1, 0}); g != 0 {
		t.Fatalf("geomean with zero = %v, want 0 sentinel", g)
	}
	if m := mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestRunSingle(t *testing.T) {
	p := DefaultRunParams("arrayswap", ConfigC)
	p.Cores = 4
	p.OpsPerThread = 25
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Commits != 100 {
		t.Fatalf("commits %d, want 100", res.Stats.Commits)
	}
	if res.Energy <= 0 {
		t.Fatal("energy not computed")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run(DefaultRunParams("nope", ConfigB)); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	p := DefaultRunParams("queue", ConfigW)
	p.Cores = 4
	p.OpsPerThread = 30
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Aborts != b.Stats.Aborts {
		t.Fatalf("identical params diverged: %d/%d vs %d/%d cycles/aborts",
			a.Stats.Cycles, a.Stats.Aborts, b.Stats.Cycles, b.Stats.Aborts)
	}
}

func TestMatrixQuick(t *testing.T) {
	opts := QuickMatrixOptions()
	opts.Benchmarks = []string{"mwobject", "bitcoin"}
	opts.Cores = 4
	opts.OpsPerThread = 20
	m, err := RunMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range opts.Benchmarks {
		for _, c := range AllConfigs {
			cell := m.Cell(b, c)
			if cell == nil {
				t.Fatalf("missing cell %s/%s", b, c)
			}
			if cell.Cycles <= 0 || cell.Commits != 80 {
				t.Fatalf("cell %s/%s: cycles=%v commits=%v", b, c, cell.Cycles, cell.Commits)
			}
		}
		if n := m.Normalized(b, ConfigB, func(a *Aggregate) float64 { return a.Cycles }); math.Abs(n-1) > 1e-9 {
			t.Fatalf("baseline normalization %v, want 1", n)
		}
	}

	// All the figure printers must produce non-empty output with the
	// benchmark rows present.
	var buf bytes.Buffer
	m.PrintFigure1(&buf)
	m.PrintFigure8(&buf)
	m.PrintFigure9(&buf)
	m.PrintFigure10(&buf)
	m.PrintFigure11(&buf)
	m.PrintFigure12(&buf)
	m.PrintFigure13(&buf)
	out := buf.String()
	for _, want := range []string{"mwobject", "bitcoin", "geomean", "paper", "Figure 13"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q", want)
		}
	}
}

func TestTable1Printer(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintTable1(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"arrayswap", "yada", "Mutable"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 1 output missing %q", want)
		}
	}
	var buf2 bytes.Buffer
	PrintTable2(&buf2, 32)
	if !strings.Contains(buf2.String(), "Store queue") {
		t.Fatal("Table 2 output incomplete")
	}
}

func TestAggregateSharesSum(t *testing.T) {
	p := DefaultRunParams("stack", ConfigC)
	p.Cores = 8
	p.OpsPerThread = 40
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := aggregateRuns([]*RunResult{res})
	if err != nil {
		t.Fatal(err)
	}
	var modeSum float64
	for m := stats.CommitMode(0); m < stats.NumCommitModes; m++ {
		modeSum += agg.ModeShares[m]
	}
	if math.Abs(modeSum-1) > 1e-9 {
		t.Fatalf("commit-mode shares sum to %v, want 1", modeSum)
	}
	if agg.Aborts > 0 {
		var abortSum float64
		for _, s := range agg.AbortShares {
			abortSum += s
		}
		if math.Abs(abortSum-1) > 1e-9 {
			t.Fatalf("abort shares sum to %v, want 1", abortSum)
		}
	}
}

func TestRetrySweep(t *testing.T) {
	opts := QuickMatrixOptions()
	opts.Benchmarks = []string{"mwobject"}
	opts.Configs = []ConfigID{ConfigB, ConfigC}
	opts.Cores = 4
	opts.OpsPerThread = 20
	opts.RetryLimits = []int{1, 4}
	sw, err := RunRetrySweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	best, cycles := sw.Best("mwobject", ConfigC)
	if cycles <= 0 || (best != 1 && best != 4) {
		t.Fatalf("best = %d at %v cycles", best, cycles)
	}
	var buf bytes.Buffer
	sw.Print(&buf)
	if !strings.Contains(buf.String(), "mwobject") || !strings.Contains(buf.String(), "*") {
		t.Fatal("sweep output incomplete")
	}
}

func TestWriteCSV(t *testing.T) {
	opts := QuickMatrixOptions()
	opts.Benchmarks = []string{"mwobject"}
	opts.Cores = 4
	opts.OpsPerThread = 20
	m, err := RunMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(AllConfigs) {
		t.Fatalf("%d CSV lines, want header + %d cells", len(lines), len(AllConfigs))
	}
	if !strings.HasPrefix(lines[0], "benchmark,config,") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "mwobject,B,") {
		t.Fatalf("bad first row %q", lines[1])
	}
	// Every row has the full column count.
	cols := strings.Count(lines[0], ",")
	for i, l := range lines {
		if strings.Count(l, ",") != cols {
			t.Fatalf("row %d has wrong arity: %q", i, l)
		}
	}
}

func TestConfigPlumbing(t *testing.T) {
	p := DefaultRunParams("mwobject", ConfigW)
	p.SLE = true
	p.Mesh = true
	p.ALTEntries = 8
	p.ERTEntries = 4
	p.CRTEntries = 16
	p.CRTWays = 4
	cfg := p.SystemConfig()
	if !cfg.CLEAR || !cfg.PowerTM || !cfg.SLE || !cfg.Mesh {
		t.Fatalf("flags lost in translation: %+v", cfg)
	}
	if cfg.ALTEntries != 8 || cfg.ERTEntries != 4 || cfg.CRTEntries != 16 || cfg.CRTWays != 4 {
		t.Fatal("table sizes lost in translation")
	}
	if DefaultRunParams("x", ConfigM).SystemConfig().StaticLocking != true {
		t.Fatal("config M does not select static locking")
	}
	if DefaultRunParams("x", ConfigC).SystemConfig().StaticLocking {
		t.Fatal("config C selects static locking")
	}
}

func TestConfigIDStrings(t *testing.T) {
	want := map[ConfigID][2]string{
		ConfigB: {"B", "requester-wins"},
		ConfigP: {"P", "PowerTM"},
		ConfigC: {"C", "CLEAR/requester-wins"},
		ConfigW: {"W", "CLEAR/PowerTM"},
		ConfigM: {"M", "static cacheline locking (MAD/MCAS-like)"},
	}
	for id, w := range want {
		if id.String() != w[0] || id.Description() != w[1] {
			t.Fatalf("%v: %q/%q", id, id.String(), id.Description())
		}
	}
}

func TestConfigMRuns(t *testing.T) {
	p := DefaultRunParams("arrayswap", ConfigM)
	p.Cores = 8
	p.OpsPerThread = 30
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Commits != 240 {
		t.Fatalf("commits %d", res.Stats.Commits)
	}
	// arrayswap's ARs are fully static: no aborts under config M.
	if res.Stats.Aborts != 0 {
		t.Fatalf("%d aborts under static locking", res.Stats.Aborts)
	}
}
