package harness

import (
	"encoding/json"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/runstore"
	"repro/internal/stats"
)

// cacheSalt ties every cache key to the code version of the statistics
// schema: when a simulator change alters the stats a given RunParams
// produces, stats.DigestSchemaVersion must be bumped, which changes the salt
// and orphans all previously cached records (see internal/runstore).
func cacheSalt() string {
	return fmt.Sprintf("stats-digest/v%d", stats.DigestSchemaVersion)
}

// Spec returns the canonical, versioned cache spec of the run: the flat
// runstore mirror of every digest-affecting parameter plus the code-version
// salt. Host-side knobs (trace writers, telemetry, wall deadlines) are
// deliberately excluded — they never change the simulated outcome.
//
// A reflection test (TestRunParamsSpecCoverage) pins the RunParams field set,
// so adding a field without classifying it here fails loudly.
func (p RunParams) Spec() runstore.RunSpec {
	spec := runstore.RunSpec{
		Benchmark:    p.Benchmark,
		Config:       p.Config.String(),
		Cores:        p.Cores,
		OpsPerThread: p.OpsPerThread,
		RetryLimit:   p.RetryLimit,
		Seed:         p.Seed,
		MaxTicks:     uint64(p.MaxTicks),
		SLE:          p.SLE,
		Oracle:       p.Oracle,
		Mesh:         p.Mesh,

		DisableDiscoveryContinuation: p.DisableDiscoveryContinuation,
		SCLLockAllReads:              p.SCLLockAllReads,

		ERTEntries: p.ERTEntries,
		ALTEntries: p.ALTEntries,
		CRTEntries: p.CRTEntries,
		CRTWays:    p.CRTWays,

		Salt: cacheSalt(),
	}
	if p.Watchdog != nil {
		// %+v over the flat config struct renders fields in declaration
		// order — deterministic, and any new field changes the key (the
		// safe direction). Defaults are normalised first so "zero value"
		// and "explicit defaults" share a cache entry.
		spec.Watchdog = fmt.Sprintf("%+v", p.Watchdog.withDefaults())
	}
	if p.FaultPlan != nil {
		spec.FaultPlan = fmt.Sprintf("%+v", *p.FaultPlan)
	}
	if !p.Policy.IsDefault() {
		// The default policy is elided (empty string): it reproduces the
		// pre-policy simulator bit-identically, so pre-existing cache keys
		// must keep resolving.
		spec.Policy = p.Policy.Canonical()
	}
	return spec
}

// Cacheable reports whether the run's outcome is fully captured by a cached
// record. Runs that stream a binary event trace execute for the stream's
// side effect, so replaying them from the cache would silently produce an
// empty trace — they always simulate.
func (p RunParams) Cacheable() bool {
	return p.TraceWriter == nil
}

// CacheRecord is the persisted summary of one successful run: everything a
// RunResult carries except the (non-serializable, caller-owned) RunParams.
// Only integers and shortest-round-trip float64s are stored, so a JSON
// round trip is exact and a resumed sweep is byte-identical to an
// uninterrupted one. Failures are never cached: a resumed sweep recomputes
// missing *and* failed cells. Exported so offline tools (clearprof diff)
// can read runstore payloads without re-deriving the schema.
type CacheRecord struct {
	// Spec is the canonical encoding the key was derived from, kept for
	// human auditing of the cache directory (it is not re-verified on read;
	// the content address already guarantees the match).
	Spec   string          `json:"spec"`
	Stats  *stats.Run      `json:"stats"`
	Dir    coherence.Stats `json:"dir"`
	Energy float64         `json:"energy"`
	Faults *fault.Stats    `json:"faults,omitempty"`
	Watch  *WatchdogReport `json:"watch,omitempty"`
}

// DecodeCacheRecord parses a runstore payload. A payload without stats is
// rejected: it is either corrupt or from a foreign schema.
func DecodeCacheRecord(payload []byte) (*CacheRecord, error) {
	var rec CacheRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("harness: decode cache record: %w", err)
	}
	if rec.Stats == nil {
		return nil, fmt.Errorf("harness: cache record has no stats (corrupt or foreign)")
	}
	return &rec, nil
}

// LookupCached returns the cached result of p from st, if one exists. A nil
// store, an uncacheable run, or an undecodable record all report a miss; the
// caller falls back to simulating. The restored RunResult carries p itself
// as Params, so aggregation code is oblivious to where the result came from.
func LookupCached(st runstore.Backend, p RunParams) (*RunResult, bool) {
	if st == nil || !p.Cacheable() {
		return nil, false
	}
	payload, ok, err := st.Get(p.Spec().Key())
	if err != nil || !ok {
		return nil, false
	}
	rec, err := DecodeCacheRecord(payload)
	if err != nil {
		// Corrupt or foreign record: treat as a miss and let the rerun's
		// Put overwrite it.
		return nil, false
	}
	return &RunResult{
		Params: p,
		Stats:  rec.Stats,
		Dir:    rec.Dir,
		Energy: rec.Energy,
		Faults: rec.Faults,
		Watch:  rec.Watch,
	}, true
}

// EncodeCacheRecord renders the persisted JSON form of a successful run
// result — the exact bytes StoreCached writes and the farm server returns to
// remote clients, so both sides of the wire decode one schema.
func EncodeCacheRecord(res *RunResult) ([]byte, error) {
	payload, err := json.Marshal(CacheRecord{
		Spec:   res.Params.Spec().Canonical(),
		Stats:  res.Stats,
		Dir:    res.Dir,
		Energy: res.Energy,
		Faults: res.Faults,
		Watch:  res.Watch,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: encode cache record: %w", err)
	}
	return payload, nil
}

// StoreCached persists a successful run result under its spec key.
func StoreCached(st runstore.Backend, res *RunResult) error {
	if st == nil || res == nil || !res.Params.Cacheable() {
		return nil
	}
	payload, err := EncodeCacheRecord(res)
	if err != nil {
		return err
	}
	return st.Put(res.Params.Spec().Key(), payload)
}

// RunCheckedCached is RunChecked behind the run cache: it consults st before
// simulating and persists the summary of a successful simulation afterwards.
// hit reports whether the result was served from the cache. Cache-hit and
// miss events are also surfaced through p.Telemetry when attached. A store
// write failure is deliberately non-fatal (the result is still correct, only
// un-memoized); the error is folded into nothing because every consumer
// would ignore it — a persistently unwritable store surfaces through the
// sweep's 0% hit rate instead.
func RunCheckedCached(st runstore.Backend, p RunParams) (res *RunResult, fail *RunFailure, hit bool) {
	if r, ok := LookupCached(st, p); ok {
		if p.Telemetry != nil {
			p.Telemetry.CacheHit()
		}
		return r, nil, true
	}
	if st != nil && p.Cacheable() && p.Telemetry != nil {
		p.Telemetry.CacheMiss()
	}
	res, fail = RunChecked(p)
	if fail == nil {
		_ = StoreCached(st, res)
	}
	return res, fail, false
}
