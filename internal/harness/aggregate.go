package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/htm"
	"repro/internal/stats"
)

// Aggregate condenses the multi-seed runs of one (benchmark, config,
// retry-limit) cell using the paper's protocol: a trimmed mean that removes
// the runs farthest from the median (§6 removes 3 outliers of 10 runs; we
// scale the trim to the seed count).
type Aggregate struct {
	Benchmark string
	Config    ConfigID
	// BestRetryLimit is the retry threshold that minimised mean cycles for
	// this benchmark/config (the paper's per-application design-space
	// exploration).
	BestRetryLimit int
	Seeds          int

	Cycles            float64
	Energy            float64
	AbortsPerCommit   float64
	ModeShares        [stats.NumCommitModes]float64
	AbortShares       [htm.NumBuckets]float64
	FirstRetryShare   float64
	FallbackShare     float64
	DiscoveryOverhead float64
	Fig1Ratio         float64
	Commits           float64
	Aborts            float64

	// CacheHits/CacheMisses report how many of this cell's seed runs were
	// served from the content-addressed run cache vs simulated (zero when
	// the sweep ran without a store). Kept out of WriteCSV on purpose: the
	// cell data of a cold and a warm sweep are byte-identical, and these
	// counters are the only thing that differs.
	CacheHits   int
	CacheMisses int
}

// trimKeep returns the indices of runs kept by the trimmed mean: with n
// runs, the ceil(0.3*n) runs whose cycle counts lie farthest from the median
// are dropped, provided at least two runs remain.
func trimKeep(cycles []float64) []int {
	n := len(cycles)
	drop := (3*n + 9) / 10 // ceil(0.3n): 3 of 10, 1 of 3...
	if n-drop < 2 {
		drop = n - 2
	}
	if drop <= 0 {
		keep := make([]int, n)
		for i := range keep {
			keep[i] = i
		}
		return keep
	}
	sorted := append([]float64(nil), cycles...)
	sort.Float64s(sorted)
	median := sorted[n/2]
	type dist struct {
		idx int
		d   float64
	}
	ds := make([]dist, n)
	for i, c := range cycles {
		ds[i] = dist{i, math.Abs(c - median)}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].idx < ds[j].idx
	})
	keep := make([]int, 0, n-drop)
	for _, d := range ds[:n-drop] {
		keep = append(keep, d.idx)
	}
	sort.Ints(keep)
	return keep
}

// aggregateRuns folds the per-seed results of one cell.
func aggregateRuns(results []*RunResult) (*Aggregate, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("harness: aggregating zero runs")
	}
	cycles := make([]float64, len(results))
	for i, r := range results {
		cycles[i] = float64(r.Stats.Cycles)
	}
	keep := trimKeep(cycles)

	p := results[0].Params
	agg := &Aggregate{
		Benchmark:      p.Benchmark,
		Config:         p.Config,
		BestRetryLimit: p.RetryLimit,
		Seeds:          len(results),
	}
	n := float64(len(keep))
	for _, idx := range keep {
		r := results[idx]
		s := r.Stats
		agg.Cycles += float64(s.Cycles) / n
		agg.Energy += r.Energy / n
		agg.AbortsPerCommit += s.AbortsPerCommit() / n
		agg.Commits += float64(s.Commits) / n
		agg.Aborts += float64(s.Aborts) / n
		if s.Commits > 0 {
			for m := range agg.ModeShares {
				agg.ModeShares[m] += float64(s.CommitsByMode[m]) / float64(s.Commits) / n
			}
		}
		if s.Aborts > 0 {
			for b := range agg.AbortShares {
				agg.AbortShares[b] += float64(s.AbortsByBucket[b]) / float64(s.Aborts) / n
			}
		}
		agg.FirstRetryShare += s.FirstRetryShare() / n
		agg.FallbackShare += s.FallbackShare() / n
		agg.DiscoveryOverhead += s.DiscoveryOverhead(r.Params.Cores) / n
		agg.Fig1Ratio += s.Fig1Ratio() / n
	}
	return agg, nil
}

// geomean returns the geometric mean of strictly positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// mean returns the arithmetic mean.
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
