package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/policy"
)

// TestRunFrontier runs a reduced policy-frontier sweep end to end and pins
// its structural contract: one cell per (policy, half, benchmark, config),
// deterministic order, a default-policy half bit-identical to a plain
// matrix, and CSV/summary renderings that carry the policy axis.
func TestRunFrontier(t *testing.T) {
	base := QuickMatrixOptions()
	base.Benchmarks = []string{"mwobject", "bitcoin"}
	base.Configs = []ConfigID{ConfigC}
	base.Cores = 4
	base.OpsPerThread = 20

	opts := FrontierOptions{
		Policies: []policy.Spec{{}, mustPolicy(t, "retry:n=2,backoff=none")},
		Base:     base,
	}
	f, err := RunFrontier(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Failures) > 0 {
		t.Fatalf("frontier had %d failures: %v", len(f.Failures), f.Failures[0])
	}
	wantCells := len(opts.Policies) * len(base.Benchmarks) * len(base.Configs)
	if len(f.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(f.Cells), wantCells)
	}

	// The default-policy half must be bit-identical to a plain matrix run.
	ref, err := RunMatrix(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range f.Cells {
		if c.Policy != "clear" {
			continue
		}
		want := ref.Cell(c.Benchmark, c.Config)
		if want == nil {
			t.Fatalf("reference matrix missing cell %s/%s", c.Benchmark, c.Config)
		}
		if c.Agg.Cycles != want.Cycles || c.Agg.Energy != want.Energy {
			t.Errorf("%s/%s: default-policy frontier cell (cycles=%v energy=%v) != plain matrix (cycles=%v energy=%v)",
				c.Benchmark, c.Config, c.Agg.Cycles, c.Agg.Energy, want.Cycles, want.Energy)
		}
	}

	var csvBuf bytes.Buffer
	if err := f.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != wantCells+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), wantCells+1)
	}
	if !strings.HasPrefix(lines[0], "policy,faults,benchmark,config") {
		t.Fatalf("CSV header %q missing the policy axis", lines[0])
	}
	if !strings.Contains(csvBuf.String(), "retry:backoff=none,n=2") {
		t.Fatal("CSV does not carry the canonical non-default policy")
	}

	var sum bytes.Buffer
	if err := f.Summary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "clear wins") {
		t.Fatalf("summary missing the headline verdict:\n%s", sum.String())
	}
}

// TestRunFrontierFaultHalf pins the under-faults half: a fault preset doubles
// the cell count and the fault cells are marked.
func TestRunFrontierFaultHalf(t *testing.T) {
	base := QuickMatrixOptions()
	base.Benchmarks = []string{"mwobject"}
	base.Configs = []ConfigID{ConfigC}
	base.Cores = 4
	base.OpsPerThread = 15

	opts := FrontierOptions{
		Policies:    []policy.Spec{{}},
		Base:        base,
		FaultPreset: "latency",
	}
	f, err := RunFrontier(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cells) != 2 {
		t.Fatalf("got %d cells, want 2 (clean + faults)", len(f.Cells))
	}
	if f.Cells[0].Faults || !f.Cells[1].Faults {
		t.Fatalf("cell order/halves wrong: %+v", f.Cells)
	}

	if _, err := RunFrontier(FrontierOptions{Policies: []policy.Spec{{}}, Base: base, FaultPreset: "no-such"}); err == nil {
		t.Fatal("unknown fault preset did not error")
	}
	if _, err := RunFrontier(FrontierOptions{Base: base}); err == nil {
		t.Fatal("empty policy set did not error")
	}
}
