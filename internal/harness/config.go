package harness

import (
	"fmt"
	"strings"
)

// ParseConfig resolves one configuration name (case-insensitive letter) to
// its ConfigID. Every tool that accepts a -config flag decodes it through
// here, so the accepted spellings and the error message are uniform.
func ParseConfig(s string) (ConfigID, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "B":
		return ConfigB, nil
	case "P":
		return ConfigP, nil
	case "C":
		return ConfigC, nil
	case "W":
		return ConfigW, nil
	case "M":
		return ConfigM, nil
	}
	return 0, fmt.Errorf("unknown config %q (want B, P, C, W or M)", s)
}

// ParseConfigs resolves a configuration set: either a compact letter string
// ("BPCW") or a comma/space-separated list ("B,P,C,W"). Order and duplicates
// are preserved (campaign rotations rely on the order); an empty selection is
// an error.
func ParseConfigs(s string) ([]ConfigID, error) {
	cleaned := strings.NewReplacer(",", "", " ", "", "\t", "").Replace(s)
	out := make([]ConfigID, 0, len(cleaned))
	for _, r := range cleaned {
		id, err := ParseConfig(string(r))
		if err != nil {
			return nil, fmt.Errorf("config set %q: %w", s, err)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("config set %q selects nothing (want letters from BPCWM)", s)
	}
	return out, nil
}
