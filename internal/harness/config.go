package harness

import (
	"fmt"
	"strings"

	"repro/internal/policy"
)

// configGrammar is the accepted spelling of a configuration set, quoted by
// every parse error so a typo comes back with the full contract instead of
// a bare "unknown config".
const configGrammar = `letters from BPCWM, compact ("BPCW") or separated ("B,P,C,W")`

// ParseConfig resolves one configuration name (case-insensitive letter) to
// its ConfigID. Every tool that accepts a -config flag decodes it through
// here, so the accepted spellings and the error message are uniform.
func ParseConfig(s string) (ConfigID, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "B":
		return ConfigB, nil
	case "P":
		return ConfigP, nil
	case "C":
		return ConfigC, nil
	case "W":
		return ConfigW, nil
	case "M":
		return ConfigM, nil
	}
	return 0, fmt.Errorf("unknown config %q (want B, P, C, W or M)", s)
}

// ParseConfigs resolves a configuration set: either a compact letter string
// ("BPCW") or a comma/space-separated list ("B,P,C,W"). Order and duplicates
// are preserved (campaign rotations rely on the order); an empty selection is
// an error. Errors name the offending token and the accepted grammar; a
// token carrying a policy suffix ("C+ewma") is redirected to the flags that
// accept one.
func ParseConfigs(s string) ([]ConfigID, error) {
	tokens := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
	out := make([]ConfigID, 0, len(s))
	for _, tok := range tokens {
		if strings.ContainsAny(tok, "+:=") {
			return nil, fmt.Errorf("config set %q: token %q carries a policy suffix, which -configs does not accept (want %s); select the policy with -policy or a config+policy flag instead",
				s, tok, configGrammar)
		}
		for _, r := range tok {
			id, err := ParseConfig(string(r))
			if err != nil {
				return nil, fmt.Errorf("config set %q: bad letter %q in token %q (want %s)",
					s, string(r), tok, configGrammar)
			}
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("config set %q selects nothing (want %s)", s, configGrammar)
	}
	return out, nil
}

// ConfigPolicy pairs a configuration with the retry policy it runs under —
// one axis point of a policy-frontier sweep.
type ConfigPolicy struct {
	Config ConfigID
	Policy policy.Spec
}

// ParseConfigPolicy resolves one "config" or "config+policy" token: the
// configuration letter, optionally followed by '+' and a policy spec in the
// internal/policy grammar ("C", "C+retry:n=2", "W+ewma:alpha=0.5,floor=0.2").
// A bare config runs the default (paper-exact) policy.
func ParseConfigPolicy(s string) (ConfigPolicy, error) {
	tok := strings.TrimSpace(s)
	name, polSpec, hasPol := strings.Cut(tok, "+")
	id, err := ParseConfig(name)
	if err != nil {
		return ConfigPolicy{}, fmt.Errorf("config+policy %q: %w (grammar: CONFIG[+POLICY], config %s, policy per -policy)", s, err, configGrammar)
	}
	cp := ConfigPolicy{Config: id}
	if hasPol {
		cp.Policy, err = policy.Parse(polSpec)
		if err != nil {
			return ConfigPolicy{}, fmt.Errorf("config+policy %q: %w", s, err)
		}
	}
	return cp, nil
}

// String renders the token ParseConfigPolicy accepts, with the default
// policy elided ("C", "C+ewma:alpha=0.25,floor=0.1").
func (cp ConfigPolicy) String() string {
	if cp.Policy.IsDefault() {
		return cp.Config.String()
	}
	return cp.Config.String() + "+" + cp.Policy.Canonical()
}

// ParseConfigPolicies resolves a list of config+policy tokens separated by
// commas or whitespace. Policy parameter lists use commas too
// ("C+retry:n=2,backoff=none,W"): a separated chunk containing '=' cannot
// start a new token — config letters carry no parameters — so it is re-joined
// onto the previous token. Order and duplicates are preserved.
func ParseConfigPolicies(s string) ([]ConfigPolicy, error) {
	chunks := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
	var tokens []string
	for _, ch := range chunks {
		if strings.Contains(ch, "=") && !strings.Contains(ch, "+") && len(tokens) > 0 {
			// "backoff=none" after "C+retry:n=2" is a parameter of the
			// previous token's policy, split off by the comma.
			tokens[len(tokens)-1] += "," + ch
			continue
		}
		tokens = append(tokens, ch)
	}
	out := make([]ConfigPolicy, 0, len(tokens))
	for _, tok := range tokens {
		cp, err := ParseConfigPolicy(tok)
		if err != nil {
			return nil, fmt.Errorf("config+policy set %q: %w", s, err)
		}
		out = append(out, cp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("config+policy set %q selects nothing (grammar: CONFIG[+POLICY] tokens, config %s)", s, configGrammar)
	}
	return out, nil
}
