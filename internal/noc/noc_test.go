package noc

import (
	"testing"
	"testing/quick"
)

func TestCrossbarConstant(t *testing.T) {
	c := NewCrossbar(6)
	for core := 0; core < 32; core++ {
		for bank := 0; bank < 100; bank += 7 {
			if c.Latency(core, bank) != 6 || c.Hops(core, bank) != 1 {
				t.Fatalf("crossbar not constant at (%d,%d)", core, bank)
			}
		}
	}
	if c.Name() != "crossbar" {
		t.Fatal("name")
	}
}

func TestMeshGeometry(t *testing.T) {
	m := NewMesh(32, 2, 3)
	if m.Side() != 6 {
		t.Fatalf("side %d, want 6 (ceil sqrt 32)", m.Side())
	}
	if m.Name() != "6x6-mesh" {
		t.Fatalf("name %q", m.Name())
	}
	// Node 0 to node 0's bank: local, still one router crossing.
	if m.Distance(0, 0) != 1 {
		t.Fatalf("local distance %d, want 1", m.Distance(0, 0))
	}
	// Corner to corner of a 6x6 mesh: 5+5 hops.
	if d := m.Distance(0, 35); d != 10 {
		t.Fatalf("corner distance %d, want 10", d)
	}
	if lat := m.Latency(0, 35); lat != 10*2+3 {
		t.Fatalf("corner latency %d, want 23", lat)
	}
}

// TestMeshProperties: distances are symmetric, positive, and satisfy the
// triangle inequality over the node set.
func TestMeshProperties(t *testing.T) {
	m := NewMesh(16, 2, 3)
	n := m.Side() * m.Side()
	prop := func(a, b, c uint8) bool {
		x, y, z := int(a)%n, int(b)%n, int(c)%n
		dxy, dyx := m.Distance(x, y), m.Distance(y, x)
		if dxy != dyx || dxy < 1 {
			return false
		}
		// Triangle inequality with the +1 local floor relaxed.
		return m.Distance(x, z) <= m.Distance(x, y)+m.Distance(y, z)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshBankWrapping(t *testing.T) {
	m := NewMesh(4, 1, 0) // 2x2
	// Banks beyond the node count wrap around.
	if m.Distance(0, 4) != m.Distance(0, 0) {
		t.Fatal("bank wrapping broken")
	}
}
