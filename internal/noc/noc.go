// Package noc models the on-chip interconnect that carries coherence
// traffic — the stand-in for the paper's GARNET network. Two topologies are
// provided: the flat crossbar of Table 2 (every core one constant hop from
// the shared directory) and a 2D mesh with directory banks distributed over
// the nodes, where the cost of a request depends on the Manhattan distance
// between the requesting core and the home bank of the line.
package noc

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Topology prices core↔directory traversals.
type Topology interface {
	// Latency returns the one-way latency for core reaching the home node
	// of bank (a directory set index or any line-derived bank id).
	Latency(core, bank int) sim.Tick
	// Hops returns the link traversals of the same trip (the energy-model
	// input).
	Hops(core, bank int) int
	// Name identifies the topology in reports.
	Name() string
}

// Crossbar is the single-hop interconnect of Table 2: every traversal costs
// the same link latency regardless of endpoints.
type Crossbar struct {
	LinkLatency sim.Tick
}

// NewCrossbar builds the default crossbar.
func NewCrossbar(link sim.Tick) *Crossbar { return &Crossbar{LinkLatency: link} }

// Latency implements Topology.
func (c *Crossbar) Latency(core, bank int) sim.Tick { return c.LinkLatency }

// Hops implements Topology.
func (c *Crossbar) Hops(core, bank int) int { return 1 }

// Name implements Topology.
func (c *Crossbar) Name() string { return "crossbar" }

// Mesh is a 2D mesh of side×side nodes with XY routing. Cores occupy nodes
// row-major; directory banks are interleaved over all nodes, so a line's
// home is bank % (side*side).
type Mesh struct {
	side       int
	PerHop     sim.Tick
	RouterCost sim.Tick
}

// NewMesh builds a mesh large enough for cores nodes (the side is the
// ceiling square root). perHop is the link latency and router the per-node
// switching cost.
func NewMesh(cores int, perHop, router sim.Tick) *Mesh {
	if cores < 1 {
		panic("noc: mesh needs at least one core")
	}
	side := int(math.Ceil(math.Sqrt(float64(cores))))
	return &Mesh{side: side, PerHop: perHop, RouterCost: router}
}

// Side returns the mesh dimension.
func (m *Mesh) Side() int { return m.side }

func (m *Mesh) nodeOf(i int) (x, y int) {
	n := m.side * m.side
	i = ((i % n) + n) % n
	return i % m.side, i / m.side
}

// Distance returns the Manhattan hop count between core and bank's home
// node (minimum 1: even a local access crosses the router once).
func (m *Mesh) Distance(core, bank int) int {
	cx, cy := m.nodeOf(core)
	bx, by := m.nodeOf(bank)
	d := abs(cx-bx) + abs(cy-by)
	if d == 0 {
		return 1
	}
	return d
}

// Latency implements Topology.
func (m *Mesh) Latency(core, bank int) sim.Tick {
	d := m.Distance(core, bank)
	return sim.Tick(d)*m.PerHop + m.RouterCost
}

// Hops implements Topology.
func (m *Mesh) Hops(core, bank int) int { return m.Distance(core, bank) }

// Name implements Topology.
func (m *Mesh) Name() string { return fmt.Sprintf("%dx%d-mesh", m.side, m.side) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
