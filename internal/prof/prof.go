// Package prof wires the standard -cpuprofile/-memprofile flags used by the
// perf workflow: the simulator is entirely CPU-bound host code, and pprof
// against a real run (rather than a micro-benchmark) is how hot-path work on
// the engine, directory, and interpreter is located and validated.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the two paths (either may be empty)
// and returns a stop function that finishes them. The stop function is
// idempotent, so callers can both defer it and invoke it on early-exit error
// paths (os.Exit skips deferred calls).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: write mem profile:", err)
			}
		}
	}, nil
}
