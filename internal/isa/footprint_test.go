package isa

import (
	"testing"

	"repro/internal/mem"
)

func TestEvalFootprintDirect(t *testing.T) {
	b := NewBuilder("swap")
	b.Load(R8, R0, 0)
	b.Load(R9, R1, 0)
	b.Store(R0, 0, R9)
	b.Store(R1, 0, R8)
	b.Halt()
	p := b.Build(1)

	accesses, ok := EvalFootprint(p, map[Reg]uint64{R0: 0x1000, R1: 0x2000})
	if !ok {
		t.Fatal("direct AR footprint not computable")
	}
	if len(accesses) != 2 {
		t.Fatalf("%d lines, want 2", len(accesses))
	}
	want := map[mem.LineAddr]bool{mem.Addr(0x1000).Line(): true, mem.Addr(0x2000).Line(): true}
	for _, a := range accesses {
		if !want[a.Line] || !a.Written {
			t.Fatalf("unexpected access %+v", a)
		}
	}
}

func TestEvalFootprintComputedAddress(t *testing.T) {
	// addr = base + idx*64: computable from preset registers.
	b := NewBuilder("indexed")
	b.Muli(R8, R1, 64)
	b.Add(R8, R8, R0)
	b.Load(R9, R8, 0)
	b.Store(R8, 0, R9)
	b.Halt()
	p := b.Build(1)
	accesses, ok := EvalFootprint(p, map[Reg]uint64{R0: 0x4000, R1: 3})
	if !ok || len(accesses) != 1 {
		t.Fatalf("ok=%v accesses=%v", ok, accesses)
	}
	if accesses[0].Line != mem.Addr(0x4000+3*64).Line() {
		t.Fatalf("line %v", accesses[0].Line)
	}
}

func TestEvalFootprintRejectsIndirection(t *testing.T) {
	b := NewBuilder("ptr")
	b.Load(R8, R0, 0)
	b.Load(R9, R8, 0) // address from a loaded value
	b.Halt()
	if _, ok := EvalFootprint(b.Build(1), map[Reg]uint64{R0: 0x1000}); ok {
		t.Fatal("indirection accepted as static footprint")
	}
}

func TestEvalFootprintRejectsDataBranch(t *testing.T) {
	b := NewBuilder("branchy")
	b.Load(R8, R0, 0)
	b.Beq(R8, R14, "skip")
	b.Store(R1, 0, R8)
	b.Label("skip")
	b.Halt()
	if _, ok := EvalFootprint(b.Build(1), map[Reg]uint64{R0: 0x1000, R1: 0x2000}); ok {
		t.Fatal("loaded-value branch accepted")
	}
}

func TestEvalFootprintImmediateLoop(t *testing.T) {
	// A loop bounded by preset registers is statically evaluable.
	b := NewBuilder("loop")
	b.Li(R8, 0)
	b.Label("loop")
	b.Bge(R8, R1, "done")
	b.Muli(R9, R8, 64)
	b.Add(R9, R9, R0)
	b.Store(R9, 0, R14)
	b.Addi(R8, R8, 1)
	b.Jump("loop")
	b.Label("done")
	b.Halt()
	accesses, ok := EvalFootprint(b.Build(1), map[Reg]uint64{R0: 0x8000, R1: 5})
	if !ok || len(accesses) != 5 {
		t.Fatalf("ok=%v lines=%d, want 5", ok, len(accesses))
	}
}

func TestEvalFootprintRejectsRdTsc(t *testing.T) {
	b := NewBuilder("tsc")
	b.RdTsc(R8)
	b.Store(R8, 0, R14) // address from a non-deterministic source
	b.Halt()
	if _, ok := EvalFootprint(b.Build(1), nil); ok {
		t.Fatal("rdtsc-derived address accepted")
	}
}

func TestEvalFootprintRejectsRunaway(t *testing.T) {
	b := NewBuilder("forever")
	b.Label("loop")
	b.Jump("loop")
	if _, ok := EvalFootprint(b.Build(1), nil); ok {
		t.Fatal("non-terminating program accepted")
	}
}

func TestRdTscIsIndirection(t *testing.T) {
	b := NewBuilder("tsc-branch")
	b.RdTsc(R8)
	b.Beq(R8, R14, "skip")
	b.Nop()
	b.Label("skip")
	b.Halt()
	a := Analyze(b.Build(1))
	if !a.HasIndirection || a.Mutability != Mutable {
		t.Fatalf("rdtsc control dependence classified %v", a.Mutability)
	}
}
