package isa_test

import (
	"fmt"

	"repro/internal/isa"
)

// ExampleAnalyze builds the two archetypal atomic regions of §3 and shows
// how the static analyzer classifies them.
func ExampleAnalyze() {
	// Listing 1: arrayswap — addresses arrive in registers.
	swap := isa.NewBuilder("swap")
	swap.Load(isa.R8, isa.R0, 0)
	swap.Load(isa.R9, isa.R1, 0)
	swap.Store(isa.R0, 0, isa.R9)
	swap.Store(isa.R1, 0, isa.R8)
	swap.Halt()

	// Listing 3: a traversal — addresses come from loaded next pointers.
	walk := isa.NewBuilder("walk")
	walk.Load(isa.R8, isa.R0, 0)
	walk.Label("loop")
	walk.Beq(isa.R8, isa.R14, "done")
	walk.Load(isa.R8, isa.R8, 8)
	walk.Jump("loop")
	walk.Label("done")
	walk.Halt()

	fmt.Println(isa.Analyze(swap.Build(1)).Mutability)
	fmt.Println(isa.Analyze(walk.Build(2)).Mutability)
	// Output:
	// immutable
	// mutable
}

// ExampleEvalFootprint computes an AR's cacheline footprint a priori, the
// §2.2 requirement for MCAS-style static locking.
func ExampleEvalFootprint() {
	b := isa.NewBuilder("transfer")
	b.Load(isa.R8, isa.R0, 0)
	b.Store(isa.R0, 0, isa.R8)
	b.Load(isa.R9, isa.R1, 0)
	b.Store(isa.R1, 0, isa.R9)
	b.Halt()
	prog := b.Build(1)

	accesses, ok := isa.EvalFootprint(prog, map[isa.Reg]uint64{
		isa.R0: 0x1000,
		isa.R1: 0x2040,
	})
	fmt.Println(ok, len(accesses))
	for _, a := range accesses {
		fmt.Println(a.Line, a.Written)
	}
	// Output:
	// true 2
	// L0x40 true
	// L0x81 true
}
