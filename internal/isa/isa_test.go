package isa

import (
	"strings"
	"testing"
)

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Li(R1, 5)
	b.Label("loop")
	b.Addi(R1, R1, -1)
	b.Bne(R1, R14, "loop")
	b.Halt()
	p := b.Build(1)
	if p.Code[2].Imm != 1 {
		t.Fatalf("branch target %d, want 1 (the label)", p.Code[2].Imm)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Beq(R0, R1, "end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p := b.Build(1)
	if p.Code[0].Imm != 2 {
		t.Fatalf("forward branch target %d, want 2", p.Code[0].Imm)
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undefined label did not panic")
		}
	}()
	b := NewBuilder("t")
	b.Jump("nowhere")
	b.Halt()
	b.Build(1)
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []Program{
		{Name: "empty"},
		{Name: "no-halt", Code: []Instr{{Op: OpNop}}},
		{Name: "bad-target", Code: []Instr{{Op: OpJump, Imm: 9}, {Op: OpHalt}}},
	}
	for _, p := range cases {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("program %q validated", p.Name)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		in   Instr
		want []Reg
	}{
		{Instr{Op: OpLoadImm, Dst: R1}, nil},
		{Instr{Op: OpLoad, Dst: R1, Src1: R2}, []Reg{R2}},
		{Instr{Op: OpStore, Src1: R3, Src2: R4}, []Reg{R3, R4}},
		{Instr{Op: OpAdd, Dst: R1, Src1: R2, Src2: R3}, []Reg{R2, R3}},
		{Instr{Op: OpBeq, Src1: R5, Src2: R6}, []Reg{R5, R6}},
	}
	for _, c := range cases {
		got := c.in.SrcRegs(nil)
		if len(got) != len(c.want) {
			t.Errorf("%v: SrcRegs = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v: SrcRegs = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestDisassembleMentionsEveryInstr(t *testing.T) {
	b := NewBuilder("demo")
	b.Li(R1, 7)
	b.Load(R2, R1, 8)
	b.Store(R1, 0, R2)
	b.Beq(R1, R2, "end")
	b.Label("end")
	b.Halt()
	text := Disassemble(b.Build(3))
	for _, want := range []string{"demo", "li r1, 7", "ld r2, [r1+8]", "st [r1+0], r2", "beq r1, r2, @4", "halt", "->"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

// --- Analyzer classification tests ---------------------------------------

func progDirect() *Program {
	b := NewBuilder("direct")
	b.Load(R8, R0, 0)
	b.Addi(R8, R8, 1)
	b.Store(R0, 0, R8)
	b.Halt()
	return b.Build(1)
}

func progPtrChase(declare bool) *Program {
	b := NewBuilder("ptr")
	if declare {
		b.DeclareIndirectionsImmutable()
	}
	b.Load(R8, R0, 0) // pointer
	b.Load(R9, R8, 0) // through it: indirection
	b.Store(R8, 0, R9)
	b.Halt()
	return b.Build(2)
}

func progTraversal() *Program {
	b := NewBuilder("walk")
	b.Load(R8, R0, 0)
	b.Label("loop")
	b.Beq(R8, R14, "done")
	b.Load(R8, R8, 8) // loop-carried indirection
	b.Jump("loop")
	b.Label("done")
	b.Halt()
	return b.Build(3)
}

func progBranchOnLoad() *Program {
	b := NewBuilder("branchy")
	b.Load(R8, R0, 0)
	b.Beq(R8, R14, "skip")
	b.Store(R1, 0, R8) // addresses all preset
	b.Label("skip")
	b.Halt()
	return b.Build(4)
}

func TestAnalyzeImmutable(t *testing.T) {
	a := Analyze(progDirect())
	if a.Mutability != Immutable || a.HasIndirection {
		t.Fatalf("direct AR classified %v (indir=%v)", a.Mutability, a.HasIndirection)
	}
	if a.Loads != 1 || a.Stores != 1 {
		t.Fatalf("counted %d loads %d stores", a.Loads, a.Stores)
	}
}

func TestAnalyzePointerChase(t *testing.T) {
	if a := Analyze(progPtrChase(false)); a.Mutability != Mutable || !a.HasIndirection {
		t.Fatalf("undeclared pointer chase classified %v", a.Mutability)
	}
	if a := Analyze(progPtrChase(true)); a.Mutability != LikelyImmutable {
		t.Fatalf("declared pointer chase classified %v, want likely-immutable", a.Mutability)
	}
}

func TestAnalyzeLoopCarriedTaint(t *testing.T) {
	a := Analyze(progTraversal())
	if !a.HasIndirection || a.Mutability != Mutable {
		t.Fatalf("traversal classified %v (indir=%v); loop-carried taint missed", a.Mutability, a.HasIndirection)
	}
}

// TestAnalyzeControlDependence: a branch on a loaded value is an indirection
// even when every address is preset (§3: "control dependencies are treated
// similarly to data dependencies").
func TestAnalyzeControlDependence(t *testing.T) {
	a := Analyze(progBranchOnLoad())
	if !a.HasIndirection {
		t.Fatal("branch on loaded value not flagged as indirection")
	}
}

// TestAnalyzeTaintCleared: overwriting a load result with an immediate
// clears the taint, so later uses are not indirections.
func TestAnalyzeTaintCleared(t *testing.T) {
	b := NewBuilder("clear")
	b.Load(R8, R0, 0)
	b.Li(R8, 64)      // kills the taint
	b.Load(R9, R8, 0) // constant address: not an indirection
	b.Halt()
	a := Analyze(b.Build(5))
	if a.HasIndirection {
		t.Fatal("killed taint still reported as indirection")
	}
}

// TestAnalyzeTaintThroughALU: taint propagates through arithmetic.
func TestAnalyzeTaintThroughALU(t *testing.T) {
	b := NewBuilder("alu")
	b.Load(R8, R0, 0)
	b.Muli(R9, R8, 8)
	b.Add(R10, R9, R1)
	b.Load(R11, R10, 0) // address derived from a load
	b.Halt()
	a := Analyze(b.Build(6))
	if !a.HasIndirection {
		t.Fatal("taint lost through ALU chain")
	}
}

func TestMutabilityString(t *testing.T) {
	if Immutable.String() != "immutable" || LikelyImmutable.String() != "likely-immutable" || Mutable.String() != "mutable" {
		t.Fatal("Mutability strings wrong")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLoad.IsMemory() || !OpStore.IsMemory() || OpAdd.IsMemory() {
		t.Fatal("IsMemory wrong")
	}
	if !OpBeq.IsBranch() || !OpJump.IsBranch() || OpHalt.IsBranch() {
		t.Fatal("IsBranch wrong")
	}
	if !OpBne.IsConditional() || OpJump.IsConditional() {
		t.Fatal("IsConditional wrong")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown opcode String empty")
	}
}
