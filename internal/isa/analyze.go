package isa

// Mutability is the Table 1 classification of an AR's memory footprint
// across retries.
type Mutability int

const (
	// Immutable: no indirections and no control dependence on loaded
	// values; the footprint is identical on every re-execution (Listing 1).
	Immutable Mutability = iota
	// LikelyImmutable: the footprint depends on loaded values, but those
	// values are not modified by concurrent ARs (Listing 2).
	LikelyImmutable
	// Mutable: the footprint depends on values that concurrent ARs modify,
	// including ARs that modify their own indirection chain (Listing 3).
	Mutable
)

func (m Mutability) String() string {
	switch m {
	case Immutable:
		return "immutable"
	case LikelyImmutable:
		return "likely-immutable"
	case Mutable:
		return "mutable"
	}
	return "unknown"
}

// Analysis is the static summary of one AR program.
type Analysis struct {
	Program *Program
	// HasIndirection: some address operand or conditional branch operand is
	// (transitively) load-derived.
	HasIndirection bool
	// WritesIndirection: the AR stores to lines it also uses as indirection
	// sources — the self-mutating case (e.g. list insertion).
	WritesIndirection bool
	// Loads, Stores and Branches count static instructions by kind.
	Loads, Stores, Branches int
	Mutability              Mutability
}

// Analyze performs the static dataflow the hardware indirection bits
// compute dynamically (§5): a register becomes tainted when it is the
// destination of a load, and taint propagates through ALU ops. The analysis
// runs to a fixed point over the (unstructured) control flow so loop-carried
// taint — the sorted-list curr = curr->next pattern — is found.
func Analyze(p *Program) Analysis {
	a := Analysis{Program: p}

	// taintIn[i] is the set of tainted registers before instruction i.
	taintIn := make([]uint32, len(p.Code))
	var srcBuf [4]Reg

	anyTainted := func(taint uint32, regs []Reg) bool {
		for _, r := range regs {
			if taint&(1<<uint(r)) != 0 {
				return true
			}
		}
		return false
	}

	transfer := func(taint uint32, in Instr) uint32 {
		if !in.Op.WritesDst() {
			return taint
		}
		bit := uint32(1) << uint(in.Dst)
		switch in.Op {
		case OpLoad, OpRdTsc:
			// Loads and non-determinism sources (§4.1: "upon sources of
			// non-determinism, affected registers should also be marked as
			// indirections") taint their destination.
			return taint | bit
		case OpLoadImm:
			return taint &^ bit
		default:
			if anyTainted(taint, in.SrcRegs(srcBuf[:0])) {
				return taint | bit
			}
			return taint &^ bit
		}
	}

	// Fixed-point propagation (programs are tiny; iterate until stable).
	for changed := true; changed; {
		changed = false
		for i, in := range p.Code {
			out := transfer(taintIn[i], in)
			propagate := func(to int) {
				if to < len(p.Code) && taintIn[to]|out != taintIn[to] {
					taintIn[to] |= out
					changed = true
				}
			}
			switch {
			case in.Op == OpJump:
				propagate(int(in.Imm))
			case in.Op.IsConditional():
				propagate(int(in.Imm))
				propagate(i + 1)
			case in.Op == OpHalt || in.Op == OpXAbort:
				// No successor.
			default:
				propagate(i + 1)
			}
		}
	}

	storesToTainted := false
	for i, in := range p.Code {
		taint := taintIn[i]
		switch {
		case in.Op == OpLoad:
			a.Loads++
			if taint&(1<<uint(in.Src1)) != 0 {
				a.HasIndirection = true
			}
		case in.Op == OpStore:
			a.Stores++
			if taint&(1<<uint(in.Src1)) != 0 {
				a.HasIndirection = true
				storesToTainted = true
			}
		case in.Op.IsConditional():
			a.Branches++
			if anyTainted(taint, in.SrcRegs(srcBuf[:0])) {
				// Control dependence on a loaded value is treated like a
				// data dependence (§3).
				a.HasIndirection = true
			}
		}
	}
	a.WritesIndirection = storesToTainted

	switch {
	case !a.HasIndirection:
		a.Mutability = Immutable
	case p.IndirectionsImmutable:
		// The workload vouches that nothing — concurrent ARs or this AR
		// itself — rewrites the values feeding the indirections. A store
		// through a tainted address (WritesIndirection) is compatible with
		// that claim when it targets data fields rather than the pointer
		// chain (the bitcoin balance update of Listing 2); statically
		// separating the two needs type knowledge the hardware does not
		// have either, so the declaration decides.
		a.Mutability = LikelyImmutable
	default:
		a.Mutability = Mutable
	}
	return a
}
