package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders the program with instruction indices and branch
// targets, for cmd/clearinspect and debugging output.
func Disassemble(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; AR %d %q (%d instrs)\n", p.ID, p.Name, len(p.Code))
	targets := make(map[int]bool)
	for _, in := range p.Code {
		if in.Op.IsBranch() {
			targets[int(in.Imm)] = true
		}
	}
	for i, in := range p.Code {
		marker := "  "
		if targets[i] {
			marker = "->"
		}
		fmt.Fprintf(&sb, "%s %3d: %s\n", marker, i, in)
	}
	return sb.String()
}
