// Package isa defines the small register instruction set in which workload
// atomic regions (ARs) are written. Writing ARs as interpreted programs —
// rather than Go closures — makes the properties CLEAR exploits emerge
// naturally: a load whose result feeds an address register is an
// indirection, and a branch on a loaded value is a control dependence,
// exactly what the hardware indirection bits of §5 track.
package isa

import "fmt"

// Reg names an architectural register. The machine has NumRegs of them.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 32

// Conventional register names used by the workload builders.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op is an instruction opcode.
type Op uint8

const (
	// OpNop does nothing for one cycle.
	OpNop Op = iota
	// OpLoadImm: Dst = Imm.
	OpLoadImm
	// OpMov: Dst = Src1.
	OpMov
	// OpLoad: Dst = mem[Src1 + Imm] (64-bit word).
	OpLoad
	// OpStore: mem[Src1 + Imm] = Src2.
	OpStore
	// OpAdd: Dst = Src1 + Src2.
	OpAdd
	// OpAddImm: Dst = Src1 + Imm.
	OpAddImm
	// OpSub: Dst = Src1 - Src2.
	OpSub
	// OpMulImm: Dst = Src1 * Imm (index scaling).
	OpMulImm
	// OpAndImm: Dst = Src1 & Imm (masking, e.g. hash buckets).
	OpAndImm
	// OpShrImm: Dst = Src1 >> Imm.
	OpShrImm
	// OpXor: Dst = Src1 ^ Src2 (hash mixing).
	OpXor
	// OpBeq: if Src1 == Src2, jump to Imm (absolute instruction index).
	OpBeq
	// OpBne: if Src1 != Src2, jump to Imm.
	OpBne
	// OpBlt: if Src1 < Src2 (unsigned), jump to Imm.
	OpBlt
	// OpBge: if Src1 >= Src2 (unsigned), jump to Imm.
	OpBge
	// OpJump: unconditional jump to Imm.
	OpJump
	// OpRdTsc: Dst = current cycle counter — a source of non-determinism;
	// §4.1 requires such destinations to be marked as indirections because
	// re-executions may read different values.
	OpRdTsc
	// OpXAbort aborts the current AR explicitly.
	OpXAbort
	// OpHalt ends the AR (the implicit XEnd).
	OpHalt
)

var opNames = [...]string{
	OpNop:     "nop",
	OpLoadImm: "li",
	OpMov:     "mov",
	OpLoad:    "ld",
	OpStore:   "st",
	OpAdd:     "add",
	OpAddImm:  "addi",
	OpSub:     "sub",
	OpMulImm:  "muli",
	OpAndImm:  "andi",
	OpShrImm:  "shri",
	OpXor:     "xor",
	OpBeq:     "beq",
	OpBne:     "bne",
	OpBlt:     "blt",
	OpBge:     "bge",
	OpJump:    "j",
	OpRdTsc:   "rdtsc",
	OpXAbort:  "xabort",
	OpHalt:    "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMemory reports whether the opcode accesses memory.
func (o Op) IsMemory() bool { return o == OpLoad || o == OpStore }

// IsBranch reports whether the opcode may transfer control.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJump:
		return true
	}
	return false
}

// IsConditional reports whether the opcode is a conditional branch.
func (o Op) IsConditional() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// WritesDst reports whether the opcode writes its Dst register.
func (o Op) WritesDst() bool {
	switch o {
	case OpLoadImm, OpMov, OpLoad, OpAdd, OpAddImm, OpSub, OpMulImm, OpAndImm, OpShrImm, OpXor, OpRdTsc:
		return true
	}
	return false
}

// Instr is one instruction. Branch targets are absolute instruction indices
// carried in Imm.
type Instr struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64
}

// SrcRegs appends the source registers the instruction reads to buf and
// returns it. Address base registers count as sources.
func (in Instr) SrcRegs(buf []Reg) []Reg {
	switch in.Op {
	case OpMov, OpAddImm, OpMulImm, OpAndImm, OpShrImm, OpLoad:
		buf = append(buf, in.Src1)
	case OpAdd, OpSub, OpXor, OpBeq, OpBne, OpBlt, OpBge:
		buf = append(buf, in.Src1, in.Src2)
	case OpStore:
		buf = append(buf, in.Src1, in.Src2)
	}
	return buf
}

func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpXAbort, OpHalt:
		return in.Op.String()
	case OpRdTsc:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	case OpLoadImm:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src1)
	case OpLoad:
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, in.Dst, in.Src1, in.Imm)
	case OpStore:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.Src1, in.Imm, in.Src2)
	case OpAdd, OpSub, OpXor:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	case OpAddImm, OpMulImm, OpAndImm, OpShrImm:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Imm)
	case OpJump:
		return fmt.Sprintf("%s @%d", in.Op, in.Imm)
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// Program is one atomic region: a straight-line-or-looping instruction
// sequence executed between an implicit XBegin (entry) and XEnd (OpHalt).
type Program struct {
	// ID identifies the AR, playing the role of the first instruction's
	// program counter in the ERT (§5). IDs are unique within a workload.
	ID int
	// Name is a human-readable label, e.g. "sorted-list/insert".
	Name string
	Code []Instr
	// IndirectionsImmutable declares (workload knowledge) that the values
	// feeding this AR's indirections are never modified by concurrent ARs,
	// upgrading a would-be Mutable classification to LikelyImmutable
	// (Listing 2 of the paper, the bitcoin case).
	IndirectionsImmutable bool
}

// Validate checks branch targets and register indices; workload constructors
// call it once at build time.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q is empty", p.Name)
	}
	last := p.Code[len(p.Code)-1]
	if last.Op != OpHalt && last.Op != OpJump {
		return fmt.Errorf("isa: program %q does not end in halt or jump", p.Name)
	}
	for i, in := range p.Code {
		if in.Op.IsBranch() {
			if in.Imm < 0 || in.Imm >= int64(len(p.Code)) {
				return fmt.Errorf("isa: program %q instr %d: branch target %d out of range", p.Name, i, in.Imm)
			}
		}
		if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
			return fmt.Errorf("isa: program %q instr %d: register out of range", p.Name, i)
		}
	}
	return nil
}
