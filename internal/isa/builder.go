package isa

import "fmt"

// Builder assembles a Program with symbolic labels, so workload code reads
// like assembly rather than index arithmetic.
type Builder struct {
	name    string
	code    []Instr
	labels  map[string]int
	fixups  []fixup
	indirOK bool
}

type fixup struct {
	instr int
	label string
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// DeclareIndirectionsImmutable records that this AR's indirection inputs are
// never concurrently modified (→ LikelyImmutable in Table 1 terms).
func (b *Builder) DeclareIndirectionsImmutable() *Builder {
	b.indirOK = true
	return b
}

// Label binds name to the next instruction's index.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q in %q", name, b.name))
	}
	b.labels[name] = len(b.code)
	return b
}

func (b *Builder) emit(in Instr) *Builder {
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emitBranch(op Op, s1, s2 Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instr: len(b.code), label: label})
	return b.emit(Instr{Op: op, Src1: s1, Src2: s2})
}

// Nop emits a no-op (models non-memory work inside the AR).
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// Li sets dst to an immediate.
func (b *Builder) Li(dst Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpLoadImm, Dst: dst, Imm: imm})
}

// Mov copies src to dst.
func (b *Builder) Mov(dst, src Reg) *Builder {
	return b.emit(Instr{Op: OpMov, Dst: dst, Src1: src})
}

// Load reads the word at [base+off] into dst.
func (b *Builder) Load(dst, base Reg, off int64) *Builder {
	return b.emit(Instr{Op: OpLoad, Dst: dst, Src1: base, Imm: off})
}

// Store writes src to the word at [base+off].
func (b *Builder) Store(base Reg, off int64, src Reg) *Builder {
	return b.emit(Instr{Op: OpStore, Src1: base, Imm: off, Src2: src})
}

// Add sets dst = a + b.
func (b *Builder) Add(dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpAdd, Dst: dst, Src1: a, Src2: c})
}

// Addi sets dst = a + imm.
func (b *Builder) Addi(dst, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpAddImm, Dst: dst, Src1: a, Imm: imm})
}

// Sub sets dst = a - b.
func (b *Builder) Sub(dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpSub, Dst: dst, Src1: a, Src2: c})
}

// Muli sets dst = a * imm.
func (b *Builder) Muli(dst, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMulImm, Dst: dst, Src1: a, Imm: imm})
}

// Andi sets dst = a & imm.
func (b *Builder) Andi(dst, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpAndImm, Dst: dst, Src1: a, Imm: imm})
}

// Shri sets dst = a >> imm.
func (b *Builder) Shri(dst, a Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpShrImm, Dst: dst, Src1: a, Imm: imm})
}

// Xor sets dst = a ^ b.
func (b *Builder) Xor(dst, a, c Reg) *Builder {
	return b.emit(Instr{Op: OpXor, Dst: dst, Src1: a, Src2: c})
}

// Beq branches to label when a == b.
func (b *Builder) Beq(a, c Reg, label string) *Builder { return b.emitBranch(OpBeq, a, c, label) }

// Bne branches to label when a != b.
func (b *Builder) Bne(a, c Reg, label string) *Builder { return b.emitBranch(OpBne, a, c, label) }

// Blt branches to label when a < b (unsigned).
func (b *Builder) Blt(a, c Reg, label string) *Builder { return b.emitBranch(OpBlt, a, c, label) }

// Bge branches to label when a >= b (unsigned).
func (b *Builder) Bge(a, c Reg, label string) *Builder { return b.emitBranch(OpBge, a, c, label) }

// Jump branches unconditionally to label.
func (b *Builder) Jump(label string) *Builder {
	b.fixups = append(b.fixups, fixup{instr: len(b.code), label: label})
	return b.emit(Instr{Op: OpJump})
}

// RdTsc reads the cycle counter into dst (a non-determinism source).
func (b *Builder) RdTsc(dst Reg) *Builder {
	return b.emit(Instr{Op: OpRdTsc, Dst: dst})
}

// XAbort emits an explicit abort.
func (b *Builder) XAbort() *Builder { return b.emit(Instr{Op: OpXAbort}) }

// Halt ends the AR.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// Build resolves labels and returns the validated program. The caller
// assigns the AR ID.
func (b *Builder) Build(id int) *Program {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("isa: undefined label %q in %q", f.label, b.name))
		}
		b.code[f.instr].Imm = int64(target)
	}
	p := &Program{ID: id, Name: b.name, Code: b.code, IndirectionsImmutable: b.indirOK}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}
