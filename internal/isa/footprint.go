package isa

import "repro/internal/mem"

// FootprintAccess is one statically-determined memory access of an AR.
type FootprintAccess struct {
	Line    mem.LineAddr
	Written bool
}

// maxFootprintSteps bounds the evaluation (static footprints come from
// loop-free or immediate-bounded programs; anything longer is not
// MCAS-friendly anyway).
const maxFootprintSteps = 4096

// EvalFootprint determines an AR's memory footprint before execution, the
// way the multi-address atomic proposals of §2.2 (MCAS [33], MAD atomics
// [16]) require: addresses must be computable from the preset registers
// alone. It interprets the program's ALU operations concretely, treats every
// load destination as unknown, and fails (ok=false) as soon as an address or
// a branch depends on an unknown value — exactly the cases the paper calls
// indirections. On success it returns the distinct lines touched, each
// marked with whether any store hits it.
func EvalFootprint(p *Program, regs map[Reg]uint64) (accesses []FootprintAccess, ok bool) {
	var vals [NumRegs]uint64
	var unknown uint32
	for r, v := range regs {
		vals[r] = v
	}

	lineIdx := make(map[mem.LineAddr]int)
	record := func(addr mem.Addr, written bool) {
		l := addr.Line()
		if i, seen := lineIdx[l]; seen {
			if written {
				accesses[i].Written = true
			}
			return
		}
		lineIdx[l] = len(accesses)
		accesses = append(accesses, FootprintAccess{Line: l, Written: written})
	}

	isUnknown := func(r Reg) bool { return unknown&(1<<uint(r)) != 0 }
	setUnknown := func(r Reg, u bool) {
		if u {
			unknown |= 1 << uint(r)
		} else {
			unknown &^= 1 << uint(r)
		}
	}

	pc := 0
	for steps := 0; steps < maxFootprintSteps; steps++ {
		if pc < 0 || pc >= len(p.Code) {
			return nil, false
		}
		in := p.Code[pc]
		switch in.Op {
		case OpNop:
		case OpLoadImm:
			vals[in.Dst] = uint64(in.Imm)
			setUnknown(in.Dst, false)
		case OpMov:
			vals[in.Dst] = vals[in.Src1]
			setUnknown(in.Dst, isUnknown(in.Src1))
		case OpAdd:
			vals[in.Dst] = vals[in.Src1] + vals[in.Src2]
			setUnknown(in.Dst, isUnknown(in.Src1) || isUnknown(in.Src2))
		case OpAddImm:
			vals[in.Dst] = vals[in.Src1] + uint64(in.Imm)
			setUnknown(in.Dst, isUnknown(in.Src1))
		case OpSub:
			vals[in.Dst] = vals[in.Src1] - vals[in.Src2]
			setUnknown(in.Dst, isUnknown(in.Src1) || isUnknown(in.Src2))
		case OpMulImm:
			vals[in.Dst] = vals[in.Src1] * uint64(in.Imm)
			setUnknown(in.Dst, isUnknown(in.Src1))
		case OpAndImm:
			vals[in.Dst] = vals[in.Src1] & uint64(in.Imm)
			setUnknown(in.Dst, isUnknown(in.Src1))
		case OpShrImm:
			vals[in.Dst] = vals[in.Src1] >> uint64(in.Imm)
			setUnknown(in.Dst, isUnknown(in.Src1))
		case OpXor:
			vals[in.Dst] = vals[in.Src1] ^ vals[in.Src2]
			setUnknown(in.Dst, isUnknown(in.Src1) || isUnknown(in.Src2))
		case OpRdTsc:
			setUnknown(in.Dst, true)
		case OpLoad:
			if isUnknown(in.Src1) {
				return nil, false // address depends on a loaded value
			}
			record(mem.Addr(vals[in.Src1]+uint64(in.Imm)), false)
			setUnknown(in.Dst, true)
		case OpStore:
			if isUnknown(in.Src1) {
				return nil, false
			}
			record(mem.Addr(vals[in.Src1]+uint64(in.Imm)), true)
		case OpBeq, OpBne, OpBlt, OpBge:
			if isUnknown(in.Src1) || isUnknown(in.Src2) {
				return nil, false // control depends on a loaded value
			}
			a, b := vals[in.Src1], vals[in.Src2]
			taken := false
			switch in.Op {
			case OpBeq:
				taken = a == b
			case OpBne:
				taken = a != b
			case OpBlt:
				taken = a < b
			case OpBge:
				taken = a >= b
			}
			if taken {
				pc = int(in.Imm)
				continue
			}
		case OpJump:
			pc = int(in.Imm)
			continue
		case OpXAbort:
			// An explicitly aborting path has no static completion.
			return nil, false
		case OpHalt:
			return accesses, true
		default:
			return nil, false
		}
		pc++
	}
	return nil, false
}
