package farm

import (
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{InitialBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, JitterFrac: 0.2}
	for retry := 1; retry <= 6; retry++ {
		d1 := p.Backoff("somekey", retry)
		d2 := p.Backoff("somekey", retry)
		if d1 != d2 {
			t.Fatalf("retry %d: backoff not deterministic: %v vs %v", retry, d1, d2)
		}
		// Base is 100ms<<(retry-1) capped at 1s; jitter is at most ±20%.
		base := 100 * time.Millisecond << (retry - 1)
		if base > time.Second {
			base = time.Second
		}
		lo := base - base/5 - time.Millisecond
		hi := base + base/5 + time.Millisecond
		if d1 < lo || d1 > hi {
			t.Fatalf("retry %d: backoff %v outside [%v, %v]", retry, d1, lo, hi)
		}
	}
	if p.Backoff("somekey", 10) > time.Second+time.Second/5 {
		t.Fatalf("backoff escaped the cap: %v", p.Backoff("somekey", 10))
	}
}

func TestBackoffJitterVariesByKey(t *testing.T) {
	p := RetryPolicy{InitialBackoff: time.Second, MaxBackoff: time.Minute, JitterFrac: 0.5}
	seen := map[time.Duration]bool{}
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, k := range keys {
		seen[p.Backoff(k, 1)] = true
	}
	// A thundering herd of 8 distinct specs must not retry in lockstep.
	if len(seen) < 4 {
		t.Fatalf("jitter produced only %d distinct delays across %d keys", len(seen), len(keys))
	}
}

func TestBackoffNoJitter(t *testing.T) {
	p := RetryPolicy{InitialBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, JitterFrac: -1}
	if got := p.Backoff("k", 1); got != 100*time.Millisecond {
		t.Fatalf("retry 1 = %v, want exactly 100ms", got)
	}
	if got := p.Backoff("k", 3); got != 400*time.Millisecond {
		t.Fatalf("retry 3 = %v, want exactly 400ms", got)
	}
	if got := p.Backoff("k", 9); got != time.Second {
		t.Fatalf("retry 9 = %v, want the 1s cap", got)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		reason string
		want   bool
	}{
		{"worker panic: runtime error: index out of range", true},
		{"panic: boom", true},
		{"harness: hashmap/C seed 1: wall deadline 50ms exceeded", true},
		{"watchdog: core 3 starved for 200000 ticks", true},
		{"check: 2 invariant violation(s)", false},
		{"harness: hashmap/C seed 1: verification failed: lost update", false},
		{"aggregate: no results", false},
		{"", false},
	}
	for _, c := range cases {
		if got := Retryable(c.reason); got != c.want {
			t.Errorf("Retryable(%q) = %v, want %v", c.reason, got, c.want)
		}
	}
}
