package farm

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/stats"
	"repro/internal/trace"
)

// quickSpec is a tiny valid spec; tests pair it with fake executors, so only
// its validity and key identity matter, not its simulated cost.
func quickSpec(seed uint64) JobSpec {
	return JobSpec{
		Benchmark:    "hashmap",
		Config:       "C",
		Cores:        2,
		OpsPerThread: 4,
		RetryLimit:   2,
		Seed:         seed,
		MaxTicks:     1_000_000,
	}
}

// okExec fabricates a successful result without simulating.
func okExec(p harness.RunParams) (*harness.RunResult, *harness.RunFailure) {
	return &harness.RunResult{
		Params: p,
		Stats:  &stats.Run{Cycles: 42, Commits: 1},
	}, nil
}

// fastRetry keeps test retries on the microsecond scale.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxRetries: 2, InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, JitterFrac: -1}
}

func TestFarmDedupInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv := NewServer(Config{
		Workers: 2,
		Retry:   fastRetry(),
		Exec: func(p harness.RunParams) (*harness.RunResult, *harness.RunFailure) {
			once.Do(func() { close(started) })
			<-release
			return okExec(p)
		},
	})
	defer srv.Close()

	st1, err := srv.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is on a worker, mid-execution
	st2, err := srv.Submit(quickSpec(1))
	if err != nil {
		t.Fatalf("duplicate submit: %v", err)
	}
	if st1.Key != st2.Key {
		t.Fatalf("identical specs got different keys: %s vs %s", st1.Key, st2.Key)
	}
	if st2.State != StateRunning {
		t.Fatalf("duplicate attached in state %s, want running", st2.State)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fin, err := srv.WaitJob(ctx, st1.Key)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job finished %s, want done", fin.State)
	}
	fs := srv.Stats()
	if fs.Executed != 1 {
		t.Fatalf("dedup'd spec executed %d times, want 1", fs.Executed)
	}
	if fs.DedupAttached != 1 {
		t.Fatalf("DedupAttached = %d, want 1", fs.DedupAttached)
	}
}

func TestFarmRetryThenSucceed(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	srv := NewServer(Config{
		Workers: 1,
		Retry:   fastRetry(),
		Exec: func(p harness.RunParams) (*harness.RunResult, *harness.RunFailure) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				panic("injected worker crash")
			}
			return okExec(p)
		},
	})
	defer srv.Close()

	st, err := srv.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fin, err := srv.WaitJob(ctx, st.Key)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("state %s (failure %q), want done after one retry", fin.State, fin.Failure)
	}
	if fin.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", fin.Attempts)
	}
	rec, err := harness.DecodeCacheRecord(fin.Result)
	if err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if rec.Stats.Cycles != 42 {
		t.Fatalf("decoded cycles = %d, want 42", rec.Stats.Cycles)
	}
	if fs := srv.Stats(); fs.RetriesScheduled != 1 {
		t.Fatalf("RetriesScheduled = %d, want 1", fs.RetriesScheduled)
	}
}

func TestFarmQuarantineAfterBudget(t *testing.T) {
	srv := NewServer(Config{
		Workers: 2,
		Retry:   fastRetry(), // MaxRetries 2 -> 3 attempts total
		Exec: func(p harness.RunParams) (*harness.RunResult, *harness.RunFailure) {
			if p.Seed == 13 {
				panic("injected: this spec always crashes")
			}
			return okExec(p)
		},
	})
	defer srv.Close()

	bad, err := srv.Submit(quickSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	good, err := srv.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	finBad, err := srv.WaitJob(ctx, bad.Key)
	if err != nil {
		t.Fatal(err)
	}
	finGood, err := srv.WaitJob(ctx, good.Key)
	if err != nil {
		t.Fatal(err)
	}
	if finGood.State != StateDone {
		t.Fatalf("healthy spec ended %s — the poisoned one must not take the farm down", finGood.State)
	}
	if finBad.State != StateQuarantined {
		t.Fatalf("poisoned spec ended %s, want quarantined", finBad.State)
	}
	if finBad.Attempts != 3 {
		t.Fatalf("poisoned spec got %d attempts, want 3 (1 + 2 retries)", finBad.Attempts)
	}
	if !strings.Contains(finBad.Failure, "worker panic") {
		t.Fatalf("quarantine reason %q does not name the panic", finBad.Failure)
	}
	q := srv.Quarantine()
	if len(q) != 1 || q[0].Key != bad.Key {
		t.Fatalf("quarantine report = %+v, want exactly the poisoned spec", q)
	}

	// The breaker is open: a resubmission attaches to the quarantine record
	// instead of re-entering the queue.
	again, err := srv.Submit(quickSpec(13))
	if err != nil {
		t.Fatal(err)
	}
	if again.State != StateQuarantined {
		t.Fatalf("resubmitted poisoned spec state %s, want quarantined", again.State)
	}
	if fs := srv.Stats(); fs.Executed != 4 {
		t.Fatalf("executed %d runs, want 4 (3 poisoned attempts + 1 healthy)", fs.Executed)
	}
}

func TestFarmNonRetryableFailsImmediately(t *testing.T) {
	srv := NewServer(Config{
		Workers: 1,
		Retry:   fastRetry(),
		Exec: func(p harness.RunParams) (*harness.RunResult, *harness.RunFailure) {
			return nil, &harness.RunFailure{
				Benchmark: p.Benchmark, Config: p.Config, RetryLimit: p.RetryLimit, Seed: p.Seed,
				Reason: "check: 1 invariant violation(s)",
			}
		},
	})
	defer srv.Close()

	st, err := srv.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fin, err := srv.WaitJob(ctx, st.Key)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed {
		t.Fatalf("oracle violation ended %s, want failed (never retried)", fin.State)
	}
	if fin.Attempts != 1 {
		t.Fatalf("oracle violation got %d attempts, want exactly 1", fin.Attempts)
	}
	if fin.Retryable {
		t.Fatal("oracle violation classified retryable")
	}
}

func TestFarmDrain(t *testing.T) {
	var mu sync.Mutex
	calls := map[uint64]int{}
	srv := NewServer(Config{
		Workers: 2,
		// Retries nominally wait 10s — drain must promote them instead.
		Retry: RetryPolicy{MaxRetries: 1, InitialBackoff: 10 * time.Second, MaxBackoff: 10 * time.Second, JitterFrac: -1},
		Exec: func(p harness.RunParams) (*harness.RunResult, *harness.RunFailure) {
			mu.Lock()
			calls[p.Seed]++
			first := calls[p.Seed] == 1
			mu.Unlock()
			if p.Seed == 7 && first {
				panic("injected: fail once, succeed on the drain-promoted retry")
			}
			time.Sleep(5 * time.Millisecond)
			return okExec(p)
		},
	})
	defer srv.Close()

	for _, seed := range []uint64{1, 2, 3, 7} {
		if _, err := srv.Submit(quickSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the seed-7 job reach its 10s backoff before draining.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Backoff == 0 {
		if time.Now().After(deadline) {
			t.Fatal("seed-7 job never entered backoff")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if _, err := srv.Submit(quickSpec(99)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}
	// A duplicate of accepted work still attaches while draining.
	if st, err := srv.Submit(quickSpec(1)); err != nil || st.State != StateDone {
		t.Fatalf("duplicate during drain: st=%+v err=%v, want done", st, err)
	}
	fs := srv.Stats()
	if fs.Done != 4 || fs.Queued+fs.Running+fs.Backoff != 0 {
		t.Fatalf("after drain: %+v, want 4 done and an empty queue", fs)
	}
}

func TestFarmStoreResume(t *testing.T) {
	store := runstore.NewMem()
	live := trace.NewLive()
	a := NewServer(Config{Workers: 1, Retry: fastRetry(), Store: store, Exec: okExec})
	st, err := a.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fin, err := a.WaitJob(ctx, st.Key)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if fin.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d records after first run, want 1", store.Len())
	}

	// A fresh server over the same store serves the spec without executing:
	// this lookup is exactly what makes a killed farm resume.
	b := NewServer(Config{Workers: 1, Retry: fastRetry(), Store: store, Telemetry: live,
		Exec: func(p harness.RunParams) (*harness.RunResult, *harness.RunFailure) {
			t.Error("resumed server re-executed a memoized spec")
			return okExec(p)
		}})
	defer b.Close()
	st2, err := b.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := b.WaitJob(ctx, st2.Key)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.State != StateDone || !fin2.CacheHit {
		t.Fatalf("resumed job: state=%s hit=%v, want done from cache", fin2.State, fin2.CacheHit)
	}
	if string(fin2.Result) != string(fin.Result) {
		t.Fatal("resumed result bytes differ from the original execution")
	}
	if snap := live.Snapshot(); snap.CacheHits != 1 {
		t.Fatalf("telemetry cache hits = %d, want 1", snap.CacheHits)
	}
}

func TestFarmHTTPAndClient(t *testing.T) {
	srv := NewServer(Config{Workers: 2, Retry: fastRetry(), Store: runstore.NewMem(),
		Telemetry: trace.NewLive(), Exec: okExec})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL)
	c.PollInterval = time.Millisecond
	c.WaitTimeout = 5 * time.Second

	resp, err := c.SubmitMatrix(MatrixRequest{
		Benchmarks:   []string{"hashmap"},
		Configs:      []string{"B", "C"},
		RetryLimits:  []int{2},
		Seeds:        []uint64{1, 2},
		Cores:        2,
		OpsPerThread: 4,
		MaxTicks:     1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 4 {
		t.Fatalf("matrix expanded to %d jobs, want 4", len(resp.Jobs))
	}
	for _, key := range resp.Jobs {
		fin, err := c.Wait(key)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateDone {
			t.Fatalf("job %s ended %s: %s", key, fin.State, fin.Failure)
		}
		if _, err := harness.DecodeCacheRecord(fin.Result); err != nil {
			t.Fatalf("job %s result: %v", key, err)
		}
	}
	fs, err := c.FarmStats()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Done != 4 || fs.Total() != 4 {
		t.Fatalf("farm stats %+v, want 4 done", fs)
	}
	q, err := c.QuarantineReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 0 {
		t.Fatalf("quarantine report has %d entries, want 0", len(q))
	}
	if _, err := c.Telemetry(); err != nil {
		t.Fatalf("telemetry endpoint: %v", err)
	}
	if _, err := c.Status("no-such-key"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown key: err = %v, want terminal 404", err)
	}
	badReq, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"benchmark":""}`))
	if err != nil {
		t.Fatal(err)
	}
	badReq.Body.Close()
	if badReq.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty benchmark got HTTP %d, want 400", badReq.StatusCode)
	}
}

// droppingTransport fails every other round trip at the connection level —
// the wire the chaos spec's "dropped connections" clause is about.
type droppingTransport struct {
	mu   sync.Mutex
	n    int
	next http.RoundTripper
}

func (d *droppingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	d.mu.Lock()
	d.n++
	drop := d.n%2 == 1
	d.mu.Unlock()
	if drop {
		return nil, fmt.Errorf("injected: connection reset by peer")
	}
	return d.next.RoundTrip(r)
}

func TestClientSurvivesDroppedConnections(t *testing.T) {
	srv := NewServer(Config{Workers: 1, Retry: fastRetry(), Exec: okExec})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL)
	c.HTTP = &http.Client{Transport: &droppingTransport{next: http.DefaultTransport}}
	c.RetryDelay = time.Millisecond
	c.PollInterval = time.Millisecond
	c.WaitTimeout = 5 * time.Second

	st, err := c.Submit(quickSpec(1))
	if err != nil {
		t.Fatalf("submit through flaky wire: %v", err)
	}
	fin, err := c.Wait(st.Key)
	if err != nil {
		t.Fatalf("wait through flaky wire: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("job ended %s, want done", fin.State)
	}
}
