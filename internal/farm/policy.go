package farm

import (
	"hash/fnv"
	"strconv"
	"strings"
	"time"
)

// RetryPolicy bounds how the farm retries a failed job — the same shape the
// simulated system is about (a bounded number of retries, then a different
// strategy), applied to the farm's own jobs: max retries, exponential
// backoff between attempts, and a deterministic jitter so a thundering herd
// of retries spreads out the same way on every replay of a campaign.
type RetryPolicy struct {
	// MaxRetries is how many re-executions a job gets after its first
	// attempt before the circuit breaker quarantines it. Default 2.
	MaxRetries int
	// InitialBackoff is the delay before the first retry; each further
	// retry doubles it. Default 100ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 5s.
	MaxBackoff time.Duration
	// JitterFrac perturbs each delay by a deterministic fraction in
	// [-JitterFrac, +JitterFrac], derived from (job key, attempt) — no
	// global RNG, so two runs of the same campaign schedule identically.
	// Default 0.2; negative disables jitter.
	JitterFrac float64
}

// DefaultRetryPolicy returns the farm defaults.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{}.withDefaults()
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.InitialBackoff == 0 {
		p.InitialBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.2
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	return p
}

// Backoff returns the delay before retry number retry (1-based: the delay
// after the retry-th failed execution) of the job keyed key. The base delay
// is InitialBackoff << (retry-1) capped at MaxBackoff; the jitter is a pure
// function of (key, retry), so the schedule is reproducible.
func (p RetryPolicy) Backoff(key string, retry int) time.Duration {
	p = p.withDefaults()
	if retry < 1 {
		retry = 1
	}
	base := p.InitialBackoff
	for i := 1; i < retry && base < p.MaxBackoff; i++ {
		base *= 2
	}
	if base > p.MaxBackoff {
		base = p.MaxBackoff
	}
	if p.JitterFrac == 0 {
		return base
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte(":"))
	h.Write([]byte(strconv.Itoa(retry)))
	// Map the hash onto [-JitterFrac, +JitterFrac].
	frac := (float64(h.Sum64()%(1<<20))/float64(1<<20)*2 - 1) * p.JitterFrac
	d := base + time.Duration(frac*float64(base))
	if d < 0 {
		d = 0
	}
	return d
}

// Retryable classifies a RunFailure reason under the farm's policy: host-
// side flakiness — a worker panic, a blown wall deadline, a watchdog verdict
// (which fault plans and host pressure can perturb) — earns another attempt;
// a correctness verdict (an oracle invariant violation, a failed workload
// verification) is deterministic badness that no retry fixes and fails the
// job immediately.
func Retryable(reason string) bool {
	switch {
	case strings.Contains(reason, "check:"), // oracle invariant violation
		strings.Contains(reason, "verification failed"):
		return false
	case strings.HasPrefix(reason, "panic:"),
		strings.Contains(reason, "worker panic"),
		strings.Contains(reason, "wall deadline"),
		strings.Contains(reason, "watchdog:"):
		return true
	}
	return false
}
