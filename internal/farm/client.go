package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/trace"
)

// Client talks to a farm server. The zero knobs are production defaults;
// tests shrink the delays. Transient transport faults — dropped connections,
// a server mid-drain returning 503 — are retried with bounded backoff, so a
// campaign survives a rolling farm restart without the caller noticing more
// than latency.
type Client struct {
	base string
	// HTTP is the underlying client (tests swap in flaky transports).
	HTTP *http.Client

	// MaxAttempts bounds transport-level retries per request. Default 8.
	MaxAttempts int
	// RetryDelay seeds the doubling delay between transport retries
	// (capped at 2s). Default 50ms.
	RetryDelay time.Duration

	// PollInterval seeds the growing delay between job status polls
	// (x1.5, capped at PollMax). Default 25ms.
	PollInterval time.Duration
	// PollMax caps the poll interval. Default 1s.
	PollMax time.Duration
	// WaitTimeout bounds how long Wait polls one job. Default 15m.
	WaitTimeout time.Duration
}

// NewClient returns a client for the farm at addr ("host:port" or a full
// http:// URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		HTTP: &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c *Client) retryDelay() time.Duration {
	if c.RetryDelay > 0 {
		return c.RetryDelay
	}
	return 50 * time.Millisecond
}

// do issues one JSON request with bounded transport retry. Connection errors
// and 5xx responses (including 503 from a draining server) retry; other
// non-200s are terminal.
func (c *Client) do(method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("farm: encode %s %s: %w", method, path, err)
		}
	}
	delay := c.retryDelay()
	var lastErr error
	for i := 0; i < c.attempts(); i++ {
		if i > 0 {
			time.Sleep(delay)
			if delay *= 2; delay > 2*time.Second {
				delay = 2 * time.Second
			}
		}
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("farm: %s %s: %w", method, path, err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			lastErr = err // dropped connection, refused, timeout: retry
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("farm: decode %s %s: %w", method, path, err)
			}
			return nil
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
			continue
		default:
			return fmt.Errorf("farm: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(data))
		}
	}
	return fmt.Errorf("farm: %s %s failed after %d attempts: %w", method, path, c.attempts(), lastErr)
}

// Submit enqueues one spec (or attaches to its in-flight twin).
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodPost, "/jobs", spec, &st)
	return st, err
}

// SubmitMatrix enqueues a whole campaign.
func (c *Client) SubmitMatrix(req MatrixRequest) (MatrixResponse, error) {
	var resp MatrixResponse
	err := c.do(http.MethodPost, "/matrix", req, &resp)
	return resp, err
}

// Status polls one job.
func (c *Client) Status(key string) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodGet, "/jobs/"+key, nil, &st)
	return st, err
}

// Wait polls the job until it reaches a terminal state, with a growing
// interval and an overall timeout.
func (c *Client) Wait(key string) (JobStatus, error) {
	timeout := c.WaitTimeout
	if timeout <= 0 {
		timeout = 15 * time.Minute
	}
	interval := c.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	pollMax := c.PollMax
	if pollMax <= 0 {
		pollMax = time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(key)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			return JobStatus{}, fmt.Errorf("farm: job %.12s still %s after %v", key, st.State, timeout)
		}
		time.Sleep(interval)
		if interval = interval * 3 / 2; interval > pollMax {
			interval = pollMax
		}
	}
}

// FarmStats fetches the farm-wide counters.
func (c *Client) FarmStats() (Stats, error) {
	var st Stats
	err := c.do(http.MethodGet, "/farm", nil, &st)
	return st, err
}

// QuarantineReport fetches the quarantined specs.
func (c *Client) QuarantineReport() ([]JobStatus, error) {
	var q []JobStatus
	err := c.do(http.MethodGet, "/quarantine", nil, &q)
	return q, err
}

// Telemetry fetches the server's live telemetry snapshot (the same payload
// local -serve mode exposes), for progress streaming during a remote sweep.
func (c *Client) Telemetry() (trace.LiveSnapshot, error) {
	var snap trace.LiveSnapshot
	err := c.do(http.MethodGet, "/telemetry", nil, &snap)
	return snap, err
}

// Runner adapts the client into the harness's per-cell execution seam: a
// RunMatrix configured with this runner submits every cell to the farm and
// decodes the returned CacheRecord — the exact bytes a local warm sweep
// reads — so aggregation, best-of selection, and CSV rendering run on
// identical inputs and the remote CSVs are byte-identical to local ones.
func (c *Client) Runner() harness.RunnerFunc {
	return func(p harness.RunParams) (*harness.RunResult, *harness.RunFailure, bool) {
		failWith := func(format string, args ...any) *harness.RunFailure {
			return &harness.RunFailure{
				Benchmark:  p.Benchmark,
				Config:     p.Config,
				RetryLimit: p.RetryLimit,
				Seed:       p.Seed,
				Reason:     fmt.Sprintf(format, args...),
			}
		}
		st, err := c.Submit(SpecOf(p))
		if err != nil {
			return nil, failWith("farm submit: %v", err), false
		}
		st, err = c.Wait(st.Key)
		if err != nil {
			return nil, failWith("farm wait: %v", err), false
		}
		switch st.State {
		case StateDone:
			rec, err := harness.DecodeCacheRecord(st.Result)
			if err != nil {
				return nil, failWith("farm result: %v", err), false
			}
			return &harness.RunResult{
				Params: p,
				Stats:  rec.Stats,
				Dir:    rec.Dir,
				Energy: rec.Energy,
				Faults: rec.Faults,
				Watch:  rec.Watch,
			}, nil, st.CacheHit
		case StateQuarantined:
			return nil, failWith("farm quarantined after %d attempts: %s", st.Attempts, st.Failure), false
		default:
			return nil, failWith("farm: %s", st.Failure), false
		}
	}
}
