package farm

import (
	"bytes"
	"hash/fnv"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/runstore"
)

// chaosExec wraps the real executor with deterministic fault injection: the
// first execution of every third spec (by key hash) panics mid-job, and the
// poison seed panics on every attempt. Shared across server generations so a
// key that already paid its injected crash does not crash again after a
// restart.
type chaosExec struct {
	mu       sync.Mutex
	attempts map[string]int
	panicked int
}

const poisonSeed = 999

func (c *chaosExec) run(p harness.RunParams) (*harness.RunResult, *harness.RunFailure) {
	if p.Seed == poisonSeed {
		panic("injected: poison spec crashes every attempt")
	}
	key := p.Spec().Key()
	c.mu.Lock()
	c.attempts[key]++
	first := c.attempts[key] == 1
	c.mu.Unlock()
	h := fnv.New64a()
	h.Write([]byte(key))
	if first && h.Sum64()%3 == 0 {
		c.mu.Lock()
		c.panicked++
		c.mu.Unlock()
		panic("injected: worker crash on first execution")
	}
	// Pad each execution so the mid-sweep kill lands while work is genuinely
	// in flight on any host; the pad changes nothing the digest sees.
	time.Sleep(20 * time.Millisecond)
	return harness.RunChecked(p)
}

// TestFarmChaosCampaign is the end-to-end chaos drill the farm exists for:
// a campaign runs against a server with injected worker panics, the server
// is killed mid-sweep, a new server over the same store picks the campaign
// back up, and the finished remote matrix renders CSVs byte-identical to an
// uninterrupted local run — with the poisoned spec sitting in the quarantine
// report instead of wedging anything.
func TestFarmChaosCampaign(t *testing.T) {
	opts := harness.MatrixOptions{
		Benchmarks:   []string{"hashmap", "stack"},
		Configs:      []harness.ConfigID{harness.ConfigB, harness.ConfigC},
		RetryLimits:  []int{1, 2},
		Seeds:        []uint64{1, 2},
		Cores:        4,
		OpsPerThread: 8,
		MaxTicks:     50_000_000,
		Parallelism:  4,
	}

	// The ground truth: the same matrix, executed locally, no farm anywhere.
	local, err := harness.RunMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	var localCSV, localFails bytes.Buffer
	if err := local.WriteCSV(&localCSV); err != nil {
		t.Fatal(err)
	}
	if err := local.WriteFailuresCSV(&localFails); err != nil {
		t.Fatal(err)
	}
	if len(local.Failures) != 0 {
		t.Fatalf("local reference run has failures: %v", local.Failures)
	}

	dir := t.TempDir()
	store, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	chaos := &chaosExec{attempts: map[string]int{}}
	cfg := Config{
		Workers: 4,
		Retry:   RetryPolicy{MaxRetries: 2, InitialBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, JitterFrac: -1},
		Store:   store,
		Exec:    chaos.run,
	}

	// Generation A: submit the whole campaign, let part of it finish under
	// injected panics, then kill the server cold.
	srvA := NewServer(cfg)
	tsA := httptest.NewServer(srvA.Handler())
	cA := NewClient(tsA.URL)
	cA.PollInterval = time.Millisecond
	resp, err := cA.SubmitMatrix(MatrixRequestFrom(opts))
	if err != nil {
		t.Fatal(err)
	}
	total := len(resp.Jobs)
	if total != 16 {
		t.Fatalf("campaign expanded to %d jobs, want 16", total)
	}
	deadline := time.Now().Add(30 * time.Second)
	for srvA.Stats().Done < total/3 {
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached %d done jobs: %+v", total/3, srvA.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	tsA.Close()
	srvA.Close() // kill: queued and backing-off jobs are abandoned
	doneAtKill := srvA.Stats().Done
	if doneAtKill >= total {
		t.Skipf("campaign finished before the kill (%d/%d) — host too fast for a mid-sweep kill", doneAtKill, total)
	}

	// Generation B: a fresh server over the same store. Reopen the store the
	// way a restarted process would.
	store2, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store2
	srvB := NewServer(cfg)
	defer srvB.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	cB := NewClient(tsB.URL)
	cB.PollInterval = time.Millisecond
	cB.WaitTimeout = 60 * time.Second

	// Re-run the campaign through the farm seam: RunMatrix's aggregation and
	// CSV code, the farm's execution.
	remoteOpts := opts
	remoteOpts.Runner = cB.Runner()
	remote, err := harness.RunMatrix(remoteOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Failures) != 0 {
		t.Fatalf("resumed remote run has failures: %v", remote.Failures)
	}
	if remote.CacheHits == 0 {
		t.Fatalf("resumed campaign reports no cache hits — the kill lost the finished cells (done at kill: %d)", doneAtKill)
	}

	var remoteCSV, remoteFails bytes.Buffer
	if err := remote.WriteCSV(&remoteCSV); err != nil {
		t.Fatal(err)
	}
	if err := remote.WriteFailuresCSV(&remoteFails); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localCSV.Bytes(), remoteCSV.Bytes()) {
		t.Fatalf("remote CSV differs from uninterrupted local run:\n--- local ---\n%s\n--- remote ---\n%s",
			localCSV.String(), remoteCSV.String())
	}
	if !bytes.Equal(localFails.Bytes(), remoteFails.Bytes()) {
		t.Fatal("failure CSVs differ between local and remote runs")
	}

	// The poison spec: exhausts its retry budget on generation B and lands in
	// the quarantine report without touching the campaign above.
	poison := quickSpec(poisonSeed)
	st, err := cB.Submit(poison)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cB.Wait(st.Key)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateQuarantined || fin.Attempts != 3 {
		t.Fatalf("poison spec: state=%s attempts=%d, want quarantined after 3 attempts", fin.State, fin.Attempts)
	}
	q, err := cB.QuarantineReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0].Key != st.Key || !strings.Contains(q[0].Failure, "worker panic") {
		t.Fatalf("quarantine report = %+v, want exactly the poison spec with its panic reason", q)
	}

	if chaos.panicked == 0 {
		t.Log("note: no key hashed into the injected-panic class this run")
	}
}
