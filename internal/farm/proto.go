// Package farm turns clearbench into a crash-tolerant sweep farm: an HTTP
// job-queue service (Server) and client (Client) over the content-addressed
// run cache. Runs are pure functions of a canonical RunSpec
// (internal/runstore), so the farm is one giant memoized sweep:
//
//   - a job's identity IS its cache key — identical specs submitted twice
//     attach to one execution (in-flight dedup), and a server restarted over
//     the same store resumes a campaign with only missing cells recomputed;
//   - workers execute through the same harness path as local sweeps and
//     persist the same CacheRecord bytes, so a remote matrix reproduces
//     byte-identical CSVs vs. local execution;
//   - failures follow the bounded-retry discipline the simulated system
//     itself is about: per-job deadline, deterministic exponential backoff
//     with jitter, and a quarantine circuit breaker once the budget is
//     exhausted — retried with bounds, never poisoning the queue.
package farm

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/policy"
	"repro/internal/sim"
)

// JobSpec is the wire form of one run submission: a flat JSON mirror of the
// digest-affecting run parameters (the same field set runstore.RunSpec
// canonicalizes). Host-side knobs — deadlines, telemetry, tracing — are
// deliberately absent: the server owns those, and they never change the
// simulated outcome or the cache key.
type JobSpec struct {
	Benchmark    string `json:"benchmark"`
	Config       string `json:"config"`
	Cores        int    `json:"cores"`
	OpsPerThread int    `json:"ops_per_thread"`
	RetryLimit   int    `json:"retry_limit"`
	Seed         uint64 `json:"seed"`
	// MaxTicks bounds the simulation (livelock guard), carried verbatim —
	// it is part of the cache key, so the server must not substitute a
	// default the submitting side didn't use.
	MaxTicks uint64 `json:"max_ticks,omitempty"`

	SLE    bool `json:"sle,omitempty"`
	Oracle bool `json:"oracle,omitempty"`
	Mesh   bool `json:"mesh,omitempty"`

	DisableDiscoveryContinuation bool `json:"disable_discovery_continuation,omitempty"`
	SCLLockAllReads              bool `json:"scl_lock_all_reads,omitempty"`

	ERTEntries int `json:"ert_entries,omitempty"`
	ALTEntries int `json:"alt_entries,omitempty"`
	CRTEntries int `json:"crt_entries,omitempty"`
	CRTWays    int `json:"crt_ways,omitempty"`

	// Policy is the canonical retry-policy rendering; omitted for the
	// default (which is also how the cache key elides it), so pre-policy
	// clients and servers interoperate.
	Policy string `json:"policy,omitempty"`
}

// SpecOf flattens the digest-affecting parameters of p into its wire form.
// SpecOf and JobSpec.Params are inverses for every parameter that keys the
// cache, which is what keeps client- and server-side keys identical.
func SpecOf(p harness.RunParams) JobSpec {
	return JobSpec{
		Benchmark:                    p.Benchmark,
		Config:                       p.Config.String(),
		Cores:                        p.Cores,
		OpsPerThread:                 p.OpsPerThread,
		RetryLimit:                   p.RetryLimit,
		Seed:                         p.Seed,
		MaxTicks:                     uint64(p.MaxTicks),
		SLE:                          p.SLE,
		Oracle:                       p.Oracle,
		Mesh:                         p.Mesh,
		DisableDiscoveryContinuation: p.DisableDiscoveryContinuation,
		SCLLockAllReads:              p.SCLLockAllReads,
		ERTEntries:                   p.ERTEntries,
		ALTEntries:                   p.ALTEntries,
		CRTEntries:                   p.CRTEntries,
		CRTWays:                      p.CRTWays,
		Policy:                       policyWire(p.Policy),
	}
}

// policyWire renders a policy spec for the wire: canonical, with the default
// elided to keep keys and JSON identical to pre-policy clients.
func policyWire(s policy.Spec) string {
	if s.IsDefault() {
		return ""
	}
	return s.Canonical()
}

// Params validates the spec and resolves it into run parameters. Host-side
// fields (deadline, telemetry) are left zero for the server to fill in.
func (s JobSpec) Params() (harness.RunParams, error) {
	if s.Benchmark == "" {
		return harness.RunParams{}, fmt.Errorf("farm: job spec has no benchmark")
	}
	cfg, err := harness.ParseConfig(s.Config)
	if err != nil {
		return harness.RunParams{}, fmt.Errorf("farm: job spec: %w", err)
	}
	if s.Cores < 1 {
		return harness.RunParams{}, fmt.Errorf("farm: job spec: cores %d < 1", s.Cores)
	}
	if s.OpsPerThread < 1 {
		return harness.RunParams{}, fmt.Errorf("farm: job spec: ops_per_thread %d < 1", s.OpsPerThread)
	}
	if s.RetryLimit < 1 {
		return harness.RunParams{}, fmt.Errorf("farm: job spec: retry_limit %d < 1", s.RetryLimit)
	}
	p := harness.DefaultRunParams(s.Benchmark, cfg)
	p.Cores = s.Cores
	p.OpsPerThread = s.OpsPerThread
	p.RetryLimit = s.RetryLimit
	p.Seed = s.Seed
	p.MaxTicks = sim.Tick(s.MaxTicks)
	p.SLE = s.SLE
	p.Oracle = s.Oracle
	p.Mesh = s.Mesh
	p.DisableDiscoveryContinuation = s.DisableDiscoveryContinuation
	p.SCLLockAllReads = s.SCLLockAllReads
	p.ERTEntries = s.ERTEntries
	p.ALTEntries = s.ALTEntries
	p.CRTEntries = s.CRTEntries
	p.CRTWays = s.CRTWays
	p.Policy, err = policy.Parse(s.Policy)
	if err != nil {
		return harness.RunParams{}, fmt.Errorf("farm: job spec: %w", err)
	}
	return p, nil
}

// MatrixRequest expands server-side into the full benchmark x config x
// retry-limit x seed cross product — one POST enqueues a whole campaign, so
// the farm's worker pool runs ahead of however fast a client polls.
type MatrixRequest struct {
	Benchmarks   []string `json:"benchmarks"`
	Configs      []string `json:"configs"`
	RetryLimits  []int    `json:"retry_limits"`
	Seeds        []uint64 `json:"seeds"`
	Cores        int      `json:"cores"`
	OpsPerThread int      `json:"ops_per_thread"`
	MaxTicks     uint64   `json:"max_ticks,omitempty"`

	DisableDiscoveryContinuation bool `json:"disable_discovery_continuation,omitempty"`
	SCLLockAllReads              bool `json:"scl_lock_all_reads,omitempty"`

	// Policy is the canonical retry policy every expanded job runs under
	// (empty = default).
	Policy string `json:"policy,omitempty"`
}

// MatrixRequestFrom mirrors the sweep dimensions of opts onto the wire. The
// expansion order server-side matches RunMatrix's job order, so the two
// sides enumerate the same cells.
func MatrixRequestFrom(opts harness.MatrixOptions) MatrixRequest {
	req := MatrixRequest{
		Benchmarks:                   opts.Benchmarks,
		RetryLimits:                  opts.RetryLimits,
		Seeds:                        opts.Seeds,
		Cores:                        opts.Cores,
		OpsPerThread:                 opts.OpsPerThread,
		MaxTicks:                     uint64(opts.MaxTicks),
		DisableDiscoveryContinuation: opts.DisableDiscoveryContinuation,
		SCLLockAllReads:              opts.SCLLockAllReads,
		Policy:                       policyWire(opts.Policy),
	}
	for _, c := range opts.Configs {
		req.Configs = append(req.Configs, c.String())
	}
	return req
}

// Specs expands the request into individual job specs (benchmark-major, then
// config, retry limit, seed — RunMatrix's dispatch order).
func (m MatrixRequest) Specs() ([]JobSpec, error) {
	if len(m.Benchmarks) == 0 || len(m.Configs) == 0 || len(m.RetryLimits) == 0 || len(m.Seeds) == 0 {
		return nil, fmt.Errorf("farm: matrix request needs benchmarks, configs, retry_limits, and seeds")
	}
	var specs []JobSpec
	for _, b := range m.Benchmarks {
		for _, c := range m.Configs {
			for _, r := range m.RetryLimits {
				for _, s := range m.Seeds {
					specs = append(specs, JobSpec{
						Benchmark:                    b,
						Config:                       c,
						Cores:                        m.Cores,
						OpsPerThread:                 m.OpsPerThread,
						RetryLimit:                   r,
						Seed:                         s,
						MaxTicks:                     m.MaxTicks,
						DisableDiscoveryContinuation: m.DisableDiscoveryContinuation,
						SCLLockAllReads:              m.SCLLockAllReads,
						Policy:                       m.Policy,
					})
				}
			}
		}
	}
	return specs, nil
}

// State is a job's position in the queue lifecycle.
type State string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing (or consulting the cache for) it.
	StateRunning State = "running"
	// StateBackoff: a retryable failure occurred; the job re-enters the
	// queue after its deterministic backoff delay.
	StateBackoff State = "backoff"
	// StateDone: terminal success; Result carries the CacheRecord JSON.
	StateDone State = "done"
	// StateFailed: terminal non-retryable failure (an oracle violation, a
	// verification failure — deterministic badness a retry cannot fix).
	StateFailed State = "failed"
	// StateQuarantined: terminal; the retry budget is exhausted. The
	// circuit breaker keeps the spec out of the queue — resubmissions
	// attach to this record instead of burning more worker time.
	StateQuarantined State = "quarantined"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateQuarantined
}

// JobStatus is the wire form of one job's current state.
type JobStatus struct {
	// Key is the job id: the content address (runstore key) of its spec.
	Key      string  `json:"key"`
	Spec     JobSpec `json:"spec"`
	State    State   `json:"state"`
	Attempts int     `json:"attempts"`
	// CacheHit reports the result was served from the result store without
	// executing (a resumed campaign, or a spec another campaign already ran).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Result is the harness.CacheRecord JSON of a done job — the exact
	// bytes a local warm sweep would decode.
	Result []byte `json:"result,omitempty"`
	// Failure is the last failure reason (failed/quarantined/backoff).
	Failure string `json:"failure,omitempty"`
	// Retryable classifies Failure under the farm's retry policy.
	Retryable bool `json:"retryable,omitempty"`
	// BackoffMS is the delay before the next attempt (backoff state only).
	BackoffMS int64 `json:"backoff_ms,omitempty"`
}

// MatrixResponse acknowledges a matrix submission.
type MatrixResponse struct {
	Jobs []string `json:"jobs"` // job keys, expansion order
}

// Stats is the farm-wide counter snapshot served at /farm.
type Stats struct {
	Workers  int  `json:"workers"`
	Draining bool `json:"draining"`

	Queued      int `json:"queued"`
	Running     int `json:"running"`
	Backoff     int `json:"backoff"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Quarantined int `json:"quarantined"`

	CacheHits        uint64 `json:"cache_hits"`
	Executed         uint64 `json:"executed"`
	RetriesScheduled uint64 `json:"retries_scheduled"`
	DedupAttached    uint64 `json:"dedup_attached"`
}

// Total returns the number of jobs the farm has accepted.
func (s Stats) Total() int {
	return s.Queued + s.Running + s.Backoff + s.Done + s.Failed + s.Quarantined
}
